#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

namespace fs = std::filesystem;

namespace th_lint {

namespace {

// --------------------------------------------------------------------
// Tokenizer
// --------------------------------------------------------------------

enum class Tok { Ident, Punct };

struct Token
{
    Tok kind = Tok::Punct;
    std::string text;
    int line = 0;
};

/** A parsed `// th_lint: <kind>(<reason>)` comment. */
struct Marker
{
    int line = 0;
    std::string kind;   ///< "excluded" or "guards".
    std::string reason;
    bool malformed = false;
};

struct SourceFile
{
    std::string relPath; ///< Root-relative, for reporting.
    bool loaded = false;
    std::vector<Token> tokens;
    std::map<int, Marker> markers; ///< By line of the comment.
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Parse a th_lint marker out of one comment's text, if present. */
std::optional<Marker>
parseMarker(const std::string &comment, int line)
{
    const std::size_t at = comment.find("th_lint");
    if (at == std::string::npos)
        return std::nullopt;
    Marker m;
    m.line = line;
    std::size_t i = at + 7; // past "th_lint"
    // Expect ':' then a kind identifier, then optional "(reason)".
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i])))
        ++i;
    // No colon: prose mentioning th_lint, not a marker attempt.
    if (i >= comment.size() || comment[i] != ':')
        return std::nullopt;
    ++i;
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i])))
        ++i;
    std::size_t kb = i;
    while (i < comment.size() && (isIdentChar(comment[i]) ||
                                  comment[i] == '-'))
        ++i;
    m.kind = comment.substr(kb, i - kb);
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i])))
        ++i;
    if (i < comment.size() && comment[i] == '(') {
        int depth = 1;
        std::size_t rb = ++i;
        while (i < comment.size() && depth > 0) {
            if (comment[i] == '(')
                ++depth;
            else if (comment[i] == ')')
                --depth;
            if (depth > 0)
                ++i;
        }
        m.reason = comment.substr(rb, i - rb);
        if (depth != 0)
            m.malformed = true;
    }
    if (m.kind != "excluded" && m.kind != "guards")
        m.malformed = true;
    if (!m.malformed && m.reason.empty())
        m.malformed = true; // A marker without a reason is a smell.
    return m;
}

/**
 * Lex one file: preprocessor lines, comments, and literals stripped;
 * identifiers and punctuation kept; `th_lint` comments recorded as
 * markers. `::` and `->` are fused; everything else is one char.
 */
void
lex(const std::string &text, SourceFile &out)
{
    const std::size_t n = text.size();
    std::size_t i = 0;
    int line = 1;
    bool atLineStart = true;

    auto record = [&](const std::string &comment, int cline) {
        if (auto m = parseMarker(comment, cline))
            out.markers[cline] = *m;
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            atLineStart = true;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (atLineStart && c == '#') {
            // Preprocessor directive: skip to end of (continued) line.
            while (i < n) {
                if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                if (text[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        atLineStart = false;
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            const int cline = line;
            std::size_t b = i;
            while (i < n && text[i] != '\n')
                ++i;
            record(text.substr(b, i - b), cline);
            continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            const int cline = line;
            std::size_t b = i;
            i += 2;
            while (i + 1 < n &&
                   !(text[i] == '*' && text[i + 1] == '/')) {
                if (text[i] == '\n')
                    ++line;
                ++i;
            }
            i = std::min(n, i + 2);
            record(text.substr(b, i - b), cline);
            continue;
        }
        if (c == '"' || c == '\'') {
            // Raw strings: the repo doesn't use them; handle the
            // common R"( ... )" form anyway.
            if (c == '"' && i > 0 && text[i - 1] == 'R') {
                std::size_t d = i + 1;
                while (d < n && text[d] != '(')
                    ++d;
                const std::string delim =
                    ")" + text.substr(i + 1, d - i - 1) + "\"";
                const std::size_t e = text.find(delim, d);
                for (std::size_t k = i;
                     k < std::min(n, e == std::string::npos
                                         ? n
                                         : e + delim.size());
                     ++k)
                    if (text[k] == '\n')
                        ++line;
                i = e == std::string::npos ? n : e + delim.size();
                continue;
            }
            const char quote = c;
            ++i;
            while (i < n && text[i] != quote) {
                if (text[i] == '\\')
                    ++i;
                if (i < n && text[i] == '\n')
                    ++line;
                ++i;
            }
            ++i;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            // pp-number (handles 1e-4, 0x1b3ULL, 1.0); emits no token.
            ++i;
            while (i < n) {
                const char d = text[i];
                if (isIdentChar(d) || d == '.') {
                    ++i;
                } else if ((d == '+' || d == '-') && i > 0 &&
                           (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                            text[i - 1] == 'p' || text[i - 1] == 'P')) {
                    ++i;
                } else {
                    break;
                }
            }
            continue;
        }
        if (isIdentStart(c)) {
            std::size_t b = i;
            while (i < n && isIdentChar(text[i]))
                ++i;
            out.tokens.push_back(
                {Tok::Ident, text.substr(b, i - b), line});
            continue;
        }
        if (c == ':' && i + 1 < n && text[i + 1] == ':') {
            out.tokens.push_back({Tok::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && text[i + 1] == '>') {
            out.tokens.push_back({Tok::Punct, "->", line});
            i += 2;
            continue;
        }
        out.tokens.push_back({Tok::Punct, std::string(1, c), line});
        ++i;
    }
}

/** Loader with a per-run cache (several rules share files). */
class FileSet
{
  public:
    explicit FileSet(std::string root) : root_(std::move(root)) {}

    const SourceFile &get(const std::string &rel)
    {
        auto it = cache_.find(rel);
        if (it != cache_.end())
            return it->second;
        SourceFile sf;
        sf.relPath = rel;
        std::ifstream in(fs::path(root_) / rel,
                         std::ios::in | std::ios::binary);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            lex(ss.str(), sf);
            sf.loaded = true;
        }
        return cache_.emplace(rel, std::move(sf)).first->second;
    }

    const std::string &root() const { return root_; }

  private:
    std::string root_;
    std::map<std::string, SourceFile> cache_;
};

/** True when an "excluded" marker covers @p line (itself or above). */
bool
isExcluded(const SourceFile &sf, int line)
{
    for (int l : {line, line - 1}) {
        auto it = sf.markers.find(l);
        if (it != sf.markers.end() && !it->second.malformed &&
            it->second.kind == "excluded")
            return true;
    }
    return false;
}

/** True when a "guards" marker covers @p line (itself or above). */
bool
hasGuardsMarker(const SourceFile &sf, int line)
{
    for (int l : {line, line - 1}) {
        auto it = sf.markers.find(l);
        if (it != sf.markers.end() && !it->second.malformed &&
            (it->second.kind == "guards" ||
             it->second.kind == "excluded"))
            return true;
    }
    return false;
}

// --------------------------------------------------------------------
// Struct field extraction
// --------------------------------------------------------------------

struct Field
{
    std::string name;
    int line = 0;
    bool excluded = false;
};

bool
isTypeIntro(const std::string &t)
{
    return t == "struct" || t == "class" || t == "enum" || t == "union";
}

/** True when @p stmt has a '(' at nesting depth 0 before any '='. */
bool
looksLikeFunction(const std::vector<Token> &stmt)
{
    int depth = 0;
    for (const Token &t : stmt) {
        if (t.kind != Tok::Punct)
            continue;
        if (t.text == "(" && depth == 0)
            return true;
        if (t.text == "=" && depth == 0)
            return false;
        if (t.text == "(" || t.text == "[" || t.text == "<")
            ++depth;
        else if (t.text == ")" || t.text == "]" || t.text == ">")
            depth = std::max(0, depth - 1);
    }
    return false;
}

/** Extract declarator names from one member statement. */
void
namesFromStatement(const std::vector<Token> &stmt, const SourceFile &sf,
                   std::vector<Field> &out)
{
    if (stmt.empty())
        return;
    for (std::size_t k = 0; k < std::min<std::size_t>(2, stmt.size());
         ++k) {
        const std::string &t0 = stmt[k].text;
        if (t0 == "using" || t0 == "typedef" || t0 == "friend" ||
            t0 == "static" || t0 == "template")
            return;
    }
    if (looksLikeFunction(stmt))
        return;

    // Split into declarator chunks at top-level commas.
    std::vector<std::vector<Token>> chunks(1);
    int depth = 0;
    for (const Token &t : stmt) {
        if (t.kind == Tok::Punct) {
            if (t.text == "(" || t.text == "[" || t.text == "<")
                ++depth;
            else if (t.text == ")" || t.text == "]" || t.text == ">")
                depth = std::max(0, depth - 1);
            else if (t.text == "," && depth == 0) {
                chunks.emplace_back();
                continue;
            }
        }
        chunks.back().push_back(t);
    }

    for (const auto &chunk : chunks) {
        const Token *name = nullptr;
        depth = 0;
        for (const Token &t : chunk) {
            if (t.kind == Tok::Punct && depth == 0 &&
                (t.text == "=" || t.text == "{}" || t.text == "["))
                break;
            if (t.kind == Tok::Punct) {
                if (t.text == "(" || t.text == "[" || t.text == "<")
                    ++depth;
                else if (t.text == ")" || t.text == "]" ||
                         t.text == ">")
                    depth = std::max(0, depth - 1);
            }
            if (t.kind == Tok::Ident && depth == 0)
                name = &t;
        }
        if (name == nullptr)
            continue;
        out.push_back(
            {name->text, name->line, isExcluded(sf, name->line)});
    }
}

/**
 * Fields of `struct <name> { ... }` in @p sf. False when no definition
 * of the struct exists in the file.
 */
bool
parseStructFields(const SourceFile &sf, const std::string &name,
                  std::vector<Field> &out)
{
    const auto &toks = sf.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != Tok::Ident || !isTypeIntro(toks[i].text))
            continue;
        if (toks[i + 1].kind != Tok::Ident || toks[i + 1].text != name)
            continue;
        // Find '{' of the definition before any ';' (else: fwd decl).
        std::size_t j = i + 2;
        while (j < toks.size() && toks[j].text != "{" &&
               toks[j].text != ";")
            ++j;
        if (j >= toks.size() || toks[j].text == ";")
            continue;

        // Walk the body at depth 1, accumulating member statements.
        std::vector<Token> stmt;
        int depth = 1;
        ++j;
        while (j < toks.size() && depth > 0) {
            const Token &t = toks[j];
            if (t.kind == Tok::Punct && t.text == "{") {
                const bool discard = looksLikeFunction(stmt) ||
                    (!stmt.empty() && isTypeIntro(stmt[0].text));
                // Skip to the matching '}'.
                int d = 1;
                ++j;
                while (j < toks.size() && d > 0) {
                    if (toks[j].text == "{")
                        ++d;
                    else if (toks[j].text == "}")
                        --d;
                    ++j;
                }
                if (discard) {
                    stmt.clear();
                    // A method body needs no ';'; a nested type does —
                    // either way the next ';' (if adjacent) is noise.
                    if (j < toks.size() && toks[j].text == ";")
                        ++j;
                } else {
                    stmt.push_back({Tok::Punct, "{}", t.line});
                }
                continue;
            }
            if (t.kind == Tok::Punct && t.text == "}") {
                --depth;
                ++j;
                continue;
            }
            if (t.kind == Tok::Punct && t.text == ";") {
                namesFromStatement(stmt, sf, out);
                stmt.clear();
                ++j;
                continue;
            }
            if (t.kind == Tok::Punct && t.text == ":" &&
                stmt.size() == 1 &&
                (stmt[0].text == "public" || stmt[0].text == "private" ||
                 stmt[0].text == "protected")) {
                stmt.clear();
                ++j;
                continue;
            }
            stmt.push_back(t);
            ++j;
        }
        return true;
    }
    return false;
}

// --------------------------------------------------------------------
// Function body extraction
// --------------------------------------------------------------------

/**
 * Identifiers appearing in the body of the first *definition* of
 * @p fn in @p sf (calls — `fn(...)` not followed by a body — are
 * skipped). False when no definition is found.
 */
bool
functionBodyIdents(const SourceFile &sf, const std::string &fn,
                   std::set<std::string> &idents)
{
    const auto &toks = sf.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != Tok::Ident || toks[i].text != fn)
            continue;
        if (toks[i + 1].text != "(")
            continue;
        // Match the parameter list.
        std::size_t j = i + 1;
        int d = 0;
        do {
            if (toks[j].text == "(")
                ++d;
            else if (toks[j].text == ")")
                --d;
            ++j;
        } while (j < toks.size() && d > 0);
        // Definition iff '{' follows (allowing cv/ref qualifiers).
        while (j < toks.size() && toks[j].kind == Tok::Ident &&
               (toks[j].text == "const" || toks[j].text == "noexcept" ||
                toks[j].text == "override" || toks[j].text == "final"))
            ++j;
        if (j >= toks.size() || toks[j].text != "{")
            continue; // A call or a pure declaration; keep looking.
        d = 1;
        ++j;
        while (j < toks.size() && d > 0) {
            if (toks[j].text == "{")
                ++d;
            else if (toks[j].text == "}")
                --d;
            else if (toks[j].kind == Tok::Ident)
                idents.insert(toks[j].text);
            ++j;
        }
        return true;
    }
    return false;
}

// --------------------------------------------------------------------
// Check 1: hash / serializer field coverage
// --------------------------------------------------------------------

struct FnRef
{
    const char *name;
    const char *file;
};

struct CoverageRule
{
    const char *structName;
    const char *structFile;
    std::vector<FnRef> fns;
    const char *check;
};

const std::vector<CoverageRule> &
coverageRules()
{
    // NOTE: paths are repo-root-relative. When a struct or function
    // moves, update this table — in normal mode a stale entry is a
    // diagnostic, never a silently skipped check.
    static const std::vector<CoverageRule> rules = {
        {"CoreConfig", "src/core/params.h",
         {{"configHash", "src/sim/configs.cpp"}},
         "hash-coverage"},
        {"DtmOptions", "src/dtm/engine.h",
         {{"dtmConfigHash", "src/sim/configs.cpp"}},
         "hash-coverage"},
        {"DtmTriggers", "src/dtm/policy.h",
         {{"dtmConfigHash", "src/sim/configs.cpp"}},
         "hash-coverage"},
        {"PerfStats", "src/core/activity.h",
         {{"encodePerfStats", "src/io/serialize.cpp"},
          {"decodePerfStats", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"ActivityStats", "src/core/activity.h",
         {{"encodeActivityStats", "src/io/serialize.cpp"},
          {"decodeActivityStats", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"CoreResult", "src/core/pipeline.h",
         {{"encodeCoreResult", "src/io/serialize.cpp"},
          {"decodeCoreResult", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"DtmReport", "src/dtm/engine.h",
         {{"encodeDtmReport", "src/io/serialize.cpp"},
          {"decodeDtmReport", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"DtmIntervalSample", "src/dtm/engine.h",
         {{"encodeDtmReport", "src/io/serialize.cpp"},
          {"decodeDtmReport", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"IntervalOptions", "src/interval/model.h",
         {{"intervalModelKey", "src/sim/configs.cpp"}},
         "hash-coverage"},
        {"IntervalModel", "src/interval/model.h",
         {{"encodeIntervalModel", "src/io/serialize.cpp"},
          {"decodeIntervalModel", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"IntervalPhase", "src/interval/model.h",
         {{"encodeIntervalModel", "src/io/serialize.cpp"},
          {"decodeIntervalModel", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"IntervalTick", "src/interval/model.h",
         {{"encodeIntervalModel", "src/io/serialize.cpp"},
          {"decodeIntervalModel", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"IntervalThrottlePoint", "src/interval/model.h",
         {{"encodeThrottleTable", "src/io/serialize.cpp"},
          {"decodeThrottleTable", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"IntervalThrottleBin", "src/interval/model.h",
         {{"encodeIntervalModel", "src/io/serialize.cpp"},
          {"decodeIntervalModel", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"SimRequest", "src/io/request.h",
         {{"encodeSimRequest", "src/io/serialize.cpp"},
          {"decodeSimRequest", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"SimResponse", "src/io/request.h",
         {{"encodeSimResponse", "src/io/serialize.cpp"},
          {"decodeSimResponse", "src/io/serialize.cpp"}},
         "serializer-coverage"},
    };
    return rules;
}

void
checkCoverage(FileSet &files, const Options &opts,
              std::vector<Diagnostic> &diags)
{
    for (const CoverageRule &rule : coverageRules()) {
        const SourceFile &sf = files.get(rule.structFile);
        if (!sf.loaded) {
            if (!opts.fixtureMode)
                diags.push_back(
                    {rule.structFile, 0, rule.check,
                     std::string("cannot read '") + rule.structFile +
                         "' for struct " + rule.structName +
                         " — update the rule table in "
                         "tools/th_lint/lint.cpp if it moved"});
            continue;
        }
        std::vector<Field> fields;
        if (!parseStructFields(sf, rule.structName, fields)) {
            if (!opts.fixtureMode)
                diags.push_back(
                    {rule.structFile, 0, rule.check,
                     std::string("struct ") + rule.structName +
                         " not found — update the rule table in "
                         "tools/th_lint/lint.cpp if it moved"});
            continue;
        }
        for (const FnRef &fn : rule.fns) {
            const SourceFile &ff = files.get(fn.file);
            std::set<std::string> idents;
            if (!ff.loaded || !functionBodyIdents(ff, fn.name, idents)) {
                diags.push_back(
                    {fn.file, 0, rule.check,
                     std::string("definition of ") + fn.name +
                         "() not found; " + rule.structName +
                         " coverage cannot be verified"});
                continue;
            }
            for (const Field &f : fields) {
                if (f.excluded || idents.count(f.name))
                    continue;
                diags.push_back(
                    {rule.structFile, f.line, rule.check,
                     std::string(fn.name) + "() (" + fn.file +
                         ") does not reference " + rule.structName +
                         " field '" + f.name +
                         "' — fold/serialize it or mark the field "
                         "// th_lint: excluded(<reason>)"});
            }
        }
    }
}

// --------------------------------------------------------------------
// File walking for checks 2 and 3
// --------------------------------------------------------------------

std::vector<std::string>
sourcesUnder(const std::string &root, const std::string &rel)
{
    std::vector<std::string> out;
    const fs::path base = fs::path(root) / rel;
    std::error_code ec;
    if (!fs::is_directory(base, ec))
        return out;
    for (fs::recursive_directory_iterator it(base, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file())
            continue;
        const std::string ext = it->path().extension().string();
        if (ext != ".h" && ext != ".cpp" && ext != ".inl")
            continue;
        out.push_back(
            fs::relative(it->path(), root, ec).generic_string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

// --------------------------------------------------------------------
// Check 2: determinism in result-producing directories
// --------------------------------------------------------------------

const char *const kResultDirs[] = {"src/core",     "src/thermal",
                                   "src/power",    "src/dtm",
                                   "src/interval", "src/sim"};

bool
isBannedRandomIdent(const std::string &t)
{
    static const std::set<std::string> banned = {
        "rand",          "srand",        "drand48",
        "lrand48",       "mrand48",      "random_device",
        "mt19937",       "mt19937_64",   "minstd_rand",
        "minstd_rand0",  "ranlux24",     "ranlux48",
        "default_random_engine",         "random_shuffle",
    };
    return banned.count(t) != 0;
}

void
checkDeterminism(FileSet &files, const Options &opts,
                 std::vector<Diagnostic> &diags)
{
    for (const char *dir : kResultDirs) {
        const auto sources = sourcesUnder(files.root(), dir);
        if (sources.empty()) {
            if (!opts.fixtureMode)
                diags.push_back(
                    {dir, 0, "determinism",
                     "result-producing directory has no sources — "
                     "update tools/th_lint/lint.cpp if it moved"});
            continue;
        }
        for (const std::string &rel : sources) {
            const SourceFile &sf = files.get(rel);
            const auto &toks = sf.tokens;
            for (std::size_t i = 0; i < toks.size(); ++i) {
                const Token &t = toks[i];
                if (t.kind != Tok::Ident || isExcluded(sf, t.line))
                    continue;
                if (isBannedRandomIdent(t.text)) {
                    diags.push_back(
                        {rel, t.line, "determinism",
                         "non-deterministic randomness '" + t.text +
                             "' in a result-producing directory; use "
                             "th::Rng (common/rng.h)"});
                } else if ((t.text == "time" || t.text == "clock") &&
                           i + 1 < toks.size() &&
                           toks[i + 1].text == "(" &&
                           (i == 0 || (toks[i - 1].text != "." &&
                                       toks[i - 1].text != "->"))) {
                    diags.push_back(
                        {rel, t.line, "determinism",
                         "wall-clock call '" + t.text +
                             "()' in a result-producing directory"});
                } else if (t.text == "unordered_map" ||
                           t.text == "unordered_set") {
                    diags.push_back(
                        {rel, t.line, "determinism",
                         "std::" + t.text +
                             " in a result-producing directory: "
                             "iteration order is unspecified; use an "
                             "ordered container or mark the "
                             "declaration // th_lint: "
                             "excluded(<reason>) if it is lookup-only"});
                }
            }
        }
    }
}

// --------------------------------------------------------------------
// Check 3: mutex annotation completeness
// --------------------------------------------------------------------

bool
isAnnotationMacro(const std::string &t)
{
    static const std::set<std::string> macros = {
        "TH_GUARDED_BY", "TH_PT_GUARDED_BY", "TH_REQUIRES",
        "TH_ACQUIRE",    "TH_RELEASE",       "TH_TRY_ACQUIRE",
        "TH_EXCLUDES",
    };
    return macros.count(t) != 0;
}

/** Names referenced by any TH_* annotation argument list in @p sf. */
std::set<std::string>
annotatedNames(const SourceFile &sf)
{
    std::set<std::string> names;
    const auto &toks = sf.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != Tok::Ident ||
            !isAnnotationMacro(toks[i].text) ||
            toks[i + 1].text != "(")
            continue;
        std::size_t j = i + 2;
        int d = 1;
        while (j < toks.size() && d > 0) {
            if (toks[j].text == "(")
                ++d;
            else if (toks[j].text == ")")
                --d;
            else if (toks[j].kind == Tok::Ident)
                names.insert(toks[j].text);
            ++j;
        }
    }
    return names;
}

void
checkMutexAnnotations(FileSet &files, const Options &,
                      std::vector<Diagnostic> &diags)
{
    for (const std::string &rel : sourcesUnder(files.root(), "src")) {
        const SourceFile &sf = files.get(rel);
        const auto &toks = sf.tokens;
        std::set<std::string> annotated; // Lazily computed.
        bool haveAnnotated = false;
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.kind != Tok::Ident)
                continue;
            const Token &next = toks[i + 1];

            // `std::mutex <name>` members: invisible to the analysis.
            if (t.text == "mutex" && i >= 2 &&
                toks[i - 1].text == "::" && toks[i - 2].text == "std" &&
                next.kind == Tok::Ident) {
                if (!isExcluded(sf, next.line))
                    diags.push_back(
                        {rel, next.line, "mutex-annotation",
                         "std::mutex member '" + next.text +
                             "' is invisible to clang -Wthread-safety; "
                             "use th::Mutex (common/thread_annotations"
                             ".h) with a TH_GUARDED_BY data set"});
                continue;
            }

            // `th::Mutex <name>;` / `Mutex <name>;` members.
            if (t.text == "Mutex" && next.kind == Tok::Ident &&
                i + 2 < toks.size() && toks[i + 2].text == ";" &&
                (i == 0 || !isTypeIntro(toks[i - 1].text))) {
                if (isExcluded(sf, next.line))
                    continue;
                if (!haveAnnotated) {
                    annotated = annotatedNames(sf);
                    haveAnnotated = true;
                }
                if (!annotated.count(next.text))
                    diags.push_back(
                        {rel, next.line, "mutex-annotation",
                         "mutex '" + next.text +
                             "' has no annotated data set: no "
                             "TH_GUARDED_BY/TH_REQUIRES/... in this "
                             "file names it"});
                continue;
            }

            // `std::once_flag <name>`: document what it guards.
            if (t.text == "once_flag" && next.kind == Tok::Ident) {
                if (!hasGuardsMarker(sf, next.line))
                    diags.push_back(
                        {rel, next.line, "mutex-annotation",
                         "once_flag '" + next.text +
                             "' lacks a // th_lint: guards(<what>) "
                             "marker documenting the state it "
                             "initializes"});
                continue;
            }
        }

        // Malformed th_lint markers anywhere under src/.
        for (const auto &[ln, m] : sf.markers) {
            if (m.malformed)
                diags.push_back(
                    {rel, ln, "marker",
                     "unparseable th_lint marker (want "
                     "'th_lint: excluded(<reason>)' or "
                     "'th_lint: guards(<what>)')"});
        }
    }
}

} // namespace

// --------------------------------------------------------------------
// Entry points
// --------------------------------------------------------------------

std::string
formatDiagnostic(const Diagnostic &d)
{
    return d.file + ":" + std::to_string(d.line) + ": th_lint(" +
           d.check + "): " + d.message;
}

std::vector<Diagnostic>
runChecks(const Options &opts)
{
    FileSet files(opts.root);
    std::vector<Diagnostic> diags;
    checkCoverage(files, opts, diags);
    checkDeterminism(files, opts, diags);
    checkMutexAnnotations(files, opts, diags);
    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.message < b.message;
              });
    return diags;
}

int
runSelfTest(const std::string &fixtures_dir)
{
    std::vector<std::string> cases;
    std::error_code ec;
    for (fs::directory_iterator it(fixtures_dir, ec), end;
         !ec && it != end; it.increment(ec))
        if (it->is_directory())
            cases.push_back(it->path().filename().string());
    std::sort(cases.begin(), cases.end());
    if (cases.empty()) {
        std::fprintf(stderr,
                     "th_lint --self-test: no fixture cases in '%s'\n",
                     fixtures_dir.c_str());
        return 1;
    }

    int failures = 0;
    for (const std::string &name : cases) {
        const fs::path dir = fs::path(fixtures_dir) / name;
        std::string expect;
        {
            std::ifstream in(dir / "expect.txt");
            std::ostringstream ss;
            ss << in.rdbuf();
            expect = ss.str();
            while (!expect.empty() &&
                   std::isspace(static_cast<unsigned char>(
                       expect.back())))
                expect.pop_back();
        }
        Options o;
        o.root = dir.string();
        o.fixtureMode = true;
        const auto diags = runChecks(o);

        bool pass;
        if (expect.empty()) {
            pass = diags.empty();
        } else {
            pass = diags.size() == 1 &&
                   formatDiagnostic(diags[0]).find(expect) !=
                       std::string::npos;
        }
        std::printf("[%s] %s\n", pass ? "PASS" : "FAIL", name.c_str());
        if (!pass) {
            ++failures;
            std::printf("  expected %s, got %zu diagnostic(s):\n",
                        expect.empty()
                            ? "no diagnostics"
                            : ("exactly one containing '" + expect +
                               "'").c_str(),
                        diags.size());
            for (const auto &d : diags)
                std::printf("    %s\n", formatDiagnostic(d).c_str());
        }
    }
    std::printf("th_lint self-test: %zu case(s), %d failure(s)\n",
                cases.size(), failures);
    return failures == 0 ? 0 : 1;
}

} // namespace th_lint
