/**
 * @file
 * The original three token-level checks (field coverage, determinism,
 * mutex-annotation completeness) plus the entry points that sequence
 * every pass. The tokenizer and source model live in tokenizer.cpp,
 * the call-graph builder in callgraph.cpp, and the call-graph-aware
 * passes in blocking.cpp / lockorder.cpp / schema.cpp.
 */

#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "callgraph.h"
#include "internal.h"

namespace fs = std::filesystem;

namespace th_lint {

// --------------------------------------------------------------------
// Check 1: hash / serializer field coverage
// --------------------------------------------------------------------

const std::vector<CoverageRule> &
coverageRules()
{
    // NOTE: paths are repo-root-relative. When a struct or function
    // moves, update this table — in normal mode a stale entry is a
    // diagnostic, never a silently skipped check.
    static const std::vector<CoverageRule> rules = {
        {"CoreConfig", "src/core/params.h",
         {{"configHash", "src/sim/configs.cpp"}},
         "hash-coverage"},
        {"DtmOptions", "src/dtm/engine.h",
         {{"dtmConfigHash", "src/sim/configs.cpp"}},
         "hash-coverage"},
        {"DtmTriggers", "src/dtm/policy.h",
         {{"dtmConfigHash", "src/sim/configs.cpp"}},
         "hash-coverage"},
        {"PerfStats", "src/core/activity.h",
         {{"encodePerfStats", "src/io/serialize.cpp"},
          {"decodePerfStats", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"ActivityStats", "src/core/activity.h",
         {{"encodeActivityStats", "src/io/serialize.cpp"},
          {"decodeActivityStats", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"CoreResult", "src/core/pipeline.h",
         {{"encodeCoreResult", "src/io/serialize.cpp"},
          {"decodeCoreResult", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"DtmReport", "src/dtm/engine.h",
         {{"encodeDtmReport", "src/io/serialize.cpp"},
          {"decodeDtmReport", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"DtmIntervalSample", "src/dtm/engine.h",
         {{"encodeDtmReport", "src/io/serialize.cpp"},
          {"decodeDtmReport", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"IntervalOptions", "src/interval/model.h",
         {{"intervalModelKey", "src/sim/configs.cpp"}},
         "hash-coverage"},
        {"IntervalModel", "src/interval/model.h",
         {{"encodeIntervalModel", "src/io/serialize.cpp"},
          {"decodeIntervalModel", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"IntervalPhase", "src/interval/model.h",
         {{"encodeIntervalModel", "src/io/serialize.cpp"},
          {"decodeIntervalModel", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"IntervalTick", "src/interval/model.h",
         {{"encodeIntervalModel", "src/io/serialize.cpp"},
          {"decodeIntervalModel", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"IntervalThrottlePoint", "src/interval/model.h",
         {{"encodeThrottleTable", "src/io/serialize.cpp"},
          {"decodeThrottleTable", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"IntervalThrottleBin", "src/interval/model.h",
         {{"encodeIntervalModel", "src/io/serialize.cpp"},
          {"decodeIntervalModel", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"MulticoreConfig", "src/multicore/multicore.h",
         {{"multicoreConfigHash", "src/sim/configs.cpp"}},
         "hash-coverage"},
        {"MulticoreReport", "src/multicore/multicore.h",
         {{"encodeMulticoreReport", "src/io/serialize.cpp"},
          {"decodeMulticoreReport", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"MulticoreCoreStats", "src/multicore/multicore.h",
         {{"encodeMulticoreReport", "src/io/serialize.cpp"},
          {"decodeMulticoreReport", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"MulticoreBankStats", "src/multicore/multicore.h",
         {{"encodeMulticoreReport", "src/io/serialize.cpp"},
          {"decodeMulticoreReport", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"SimRequest", "src/io/request.h",
         {{"encodeSimRequest", "src/io/serialize.cpp"},
          {"decodeSimRequest", "src/io/serialize.cpp"}},
         "serializer-coverage"},
        {"SimResponse", "src/io/request.h",
         {{"encodeSimResponse", "src/io/serialize.cpp"},
          {"decodeSimResponse", "src/io/serialize.cpp"}},
         "serializer-coverage"},
    };
    return rules;
}

namespace {

void
checkCoverage(FileSet &files, const Options &opts,
              std::vector<Diagnostic> &diags)
{
    for (const CoverageRule &rule : coverageRules()) {
        const SourceFile &sf = files.get(rule.structFile);
        if (!sf.loaded) {
            if (!opts.fixtureMode)
                diags.push_back(
                    {rule.structFile, 0, rule.check,
                     std::string("cannot read '") + rule.structFile +
                         "' for struct " + rule.structName +
                         " — update the rule table in "
                         "tools/th_lint/lint.cpp if it moved"});
            continue;
        }
        std::vector<Field> fields;
        if (!parseStructFields(sf, rule.structName, fields)) {
            if (!opts.fixtureMode)
                diags.push_back(
                    {rule.structFile, 0, rule.check,
                     std::string("struct ") + rule.structName +
                         " not found — update the rule table in "
                         "tools/th_lint/lint.cpp if it moved"});
            continue;
        }
        for (const FnRef &fn : rule.fns) {
            const SourceFile &ff = files.get(fn.file);
            std::set<std::string> idents;
            if (!ff.loaded || !functionBodyIdents(ff, fn.name, idents)) {
                diags.push_back(
                    {fn.file, 0, rule.check,
                     std::string("definition of ") + fn.name +
                         "() not found; " + rule.structName +
                         " coverage cannot be verified"});
                continue;
            }
            for (const Field &f : fields) {
                if (f.excluded || idents.count(f.name))
                    continue;
                diags.push_back(
                    {rule.structFile, f.line, rule.check,
                     std::string(fn.name) + "() (" + fn.file +
                         ") does not reference " + rule.structName +
                         " field '" + f.name +
                         "' — fold/serialize it or mark the field "
                         "// th_lint: excluded(<reason>)"});
            }
        }
    }
}

// --------------------------------------------------------------------
// Check 2: determinism in result-producing directories
// --------------------------------------------------------------------

const char *const kResultDirs[] = {"src/core",     "src/thermal",
                                   "src/power",    "src/dtm",
                                   "src/interval", "src/multicore",
                                   "src/sim"};

bool
isBannedRandomIdent(const std::string &t)
{
    static const std::set<std::string> banned = {
        "rand",          "srand",        "drand48",
        "lrand48",       "mrand48",      "random_device",
        "mt19937",       "mt19937_64",   "minstd_rand",
        "minstd_rand0",  "ranlux24",     "ranlux48",
        "default_random_engine",         "random_shuffle",
    };
    return banned.count(t) != 0;
}

void
checkDeterminism(FileSet &files, const Options &opts,
                 std::vector<Diagnostic> &diags)
{
    for (const char *dir : kResultDirs) {
        const auto sources = sourcesUnder(files.root(), dir);
        if (sources.empty()) {
            if (!opts.fixtureMode)
                diags.push_back(
                    {dir, 0, "determinism",
                     "result-producing directory has no sources — "
                     "update tools/th_lint/lint.cpp if it moved"});
            continue;
        }
        for (const std::string &rel : sources) {
            const SourceFile &sf = files.get(rel);
            const auto &toks = sf.tokens;
            for (std::size_t i = 0; i < toks.size(); ++i) {
                const Token &t = toks[i];
                if (t.kind != Tok::Ident || isExcluded(sf, t.line))
                    continue;
                if (isBannedRandomIdent(t.text)) {
                    diags.push_back(
                        {rel, t.line, "determinism",
                         "non-deterministic randomness '" + t.text +
                             "' in a result-producing directory; use "
                             "th::Rng (common/rng.h)"});
                } else if ((t.text == "time" || t.text == "clock") &&
                           i + 1 < toks.size() &&
                           toks[i + 1].text == "(" &&
                           (i == 0 || (toks[i - 1].text != "." &&
                                       toks[i - 1].text != "->"))) {
                    diags.push_back(
                        {rel, t.line, "determinism",
                         "wall-clock call '" + t.text +
                             "()' in a result-producing directory"});
                } else if (t.text == "unordered_map" ||
                           t.text == "unordered_set") {
                    diags.push_back(
                        {rel, t.line, "determinism",
                         "std::" + t.text +
                             " in a result-producing directory: "
                             "iteration order is unspecified; use an "
                             "ordered container or mark the "
                             "declaration // th_lint: "
                             "excluded(<reason>) if it is lookup-only"});
                }
            }
        }
    }
}

// --------------------------------------------------------------------
// Check 3: mutex annotation completeness
// --------------------------------------------------------------------

bool
isAnnotationMacro(const std::string &t)
{
    static const std::set<std::string> macros = {
        "TH_GUARDED_BY", "TH_PT_GUARDED_BY", "TH_REQUIRES",
        "TH_ACQUIRE",    "TH_RELEASE",       "TH_TRY_ACQUIRE",
        "TH_EXCLUDES",
    };
    return macros.count(t) != 0;
}

/** Names referenced by any TH_* annotation argument list in @p sf. */
std::set<std::string>
annotatedNames(const SourceFile &sf)
{
    std::set<std::string> names;
    const auto &toks = sf.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != Tok::Ident ||
            !isAnnotationMacro(toks[i].text) ||
            toks[i + 1].text != "(")
            continue;
        std::size_t j = i + 2;
        int d = 1;
        while (j < toks.size() && d > 0) {
            if (toks[j].text == "(")
                ++d;
            else if (toks[j].text == ")")
                --d;
            else if (toks[j].kind == Tok::Ident)
                names.insert(toks[j].text);
            ++j;
        }
    }
    return names;
}

void
checkMutexAnnotations(FileSet &files, const Options &,
                      std::vector<Diagnostic> &diags)
{
    for (const std::string &rel : sourcesUnder(files.root(), "src")) {
        const SourceFile &sf = files.get(rel);
        const auto &toks = sf.tokens;
        std::set<std::string> annotated; // Lazily computed.
        bool haveAnnotated = false;
        for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.kind != Tok::Ident)
                continue;
            const Token &next = toks[i + 1];

            // `std::mutex <name>` members: invisible to the analysis.
            if (t.text == "mutex" && i >= 2 &&
                toks[i - 1].text == "::" && toks[i - 2].text == "std" &&
                next.kind == Tok::Ident) {
                if (!isExcluded(sf, next.line))
                    diags.push_back(
                        {rel, next.line, "mutex-annotation",
                         "std::mutex member '" + next.text +
                             "' is invisible to clang -Wthread-safety; "
                             "use th::Mutex (common/thread_annotations"
                             ".h) with a TH_GUARDED_BY data set"});
                continue;
            }

            // `th::Mutex <name>;` / `Mutex <name>;` members.
            if (t.text == "Mutex" && next.kind == Tok::Ident &&
                i + 2 < toks.size() && toks[i + 2].text == ";" &&
                (i == 0 || !isTypeIntro(toks[i - 1].text))) {
                if (isExcluded(sf, next.line))
                    continue;
                if (!haveAnnotated) {
                    annotated = annotatedNames(sf);
                    haveAnnotated = true;
                }
                if (!annotated.count(next.text))
                    diags.push_back(
                        {rel, next.line, "mutex-annotation",
                         "mutex '" + next.text +
                             "' has no annotated data set: no "
                             "TH_GUARDED_BY/TH_REQUIRES/... in this "
                             "file names it"});
                continue;
            }

            // `std::once_flag <name>`: document what it guards.
            if (t.text == "once_flag" && next.kind == Tok::Ident) {
                if (!hasGuardsMarker(sf, next.line))
                    diags.push_back(
                        {rel, next.line, "mutex-annotation",
                         "once_flag '" + next.text +
                             "' lacks a // th_lint: guards(<what>) "
                             "marker documenting the state it "
                             "initializes"});
                continue;
            }

            // Condition variables sit outside -Wthread-safety's model
            // (the _any waits take the annotated th::UniqueLock, but
            // nothing ties the cv to its predicate): document the
            // predicate with a guards marker, like once_flag.
            if ((t.text == "condition_variable" ||
                 t.text == "condition_variable_any") &&
                next.kind == Tok::Ident) {
                if (!hasGuardsMarker(sf, next.line))
                    diags.push_back(
                        {rel, next.line, "mutex-annotation",
                         "condition variable '" + next.text +
                             "' lacks a // th_lint: guards(<what>) "
                             "marker documenting the predicate it "
                             "signals"});
                continue;
            }
        }

        // Malformed th_lint markers anywhere under src/.
        for (const auto &[ln, m] : sf.markers) {
            if (m.malformed)
                diags.push_back(
                    {rel, ln, "marker",
                     "unparseable th_lint marker (want "
                     "'th_lint: excluded(<reason>)', "
                     "'th_lint: guards(<what>)', or "
                     "'th_lint: blocking-ok(<reason>)')"});
        }
    }
}

} // namespace

// --------------------------------------------------------------------
// Entry points
// --------------------------------------------------------------------

std::string
formatDiagnostic(const Diagnostic &d)
{
    return d.file + ":" + std::to_string(d.line) + ": th_lint(" +
           d.check + "): " + d.message;
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
formatFindingsJson(const std::vector<Diagnostic> &diags)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        out << (i ? ",\n " : "\n ") << "{\"file\": \""
            << jsonEscape(d.file) << "\", \"line\": " << d.line
            << ", \"check\": \"" << jsonEscape(d.check)
            << "\", \"message\": \"" << jsonEscape(d.message) << "\"}";
    }
    out << (diags.empty() ? "]" : "\n]");
    return out.str();
}

std::string
formatDiagnosticGithub(const Diagnostic &d)
{
    // GitHub Actions workflow command: newlines and '%' in the
    // message must be URL-encoded; properties also escape ',' / ':'.
    auto escData = [](const std::string &s) {
        std::string out;
        for (const char c : s) {
            if (c == '%')
                out += "%25";
            else if (c == '\n')
                out += "%0A";
            else if (c == '\r')
                out += "%0D";
            else
                out += c;
        }
        return out;
    };
    auto escProp = [&](const std::string &s) {
        std::string out;
        for (const char c : escData(s)) {
            if (c == ',')
                out += "%2C";
            else if (c == ':')
                out += "%3A";
            else
                out += c;
        }
        return out;
    };
    return "::error file=" + escProp(d.file) +
           ",line=" + std::to_string(d.line) +
           ",title=th_lint(" + escProp(d.check) +
           ")::" + escData(d.message);
}

std::vector<Diagnostic>
runChecks(const Options &opts)
{
    FileSet files(opts.root);
    std::vector<Diagnostic> diags;
    checkCoverage(files, opts, diags);
    checkDeterminism(files, opts, diags);
    checkMutexAnnotations(files, opts, diags);
    const CallGraph graph = CallGraph::build(files);
    checkEventLoopBlocking(files, graph, opts, diags);
    checkLockOrder(files, graph, opts, diags);
    checkSchemaDrift(files, opts, diags);
    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.message < b.message;
              });
    return diags;
}

int
runSelfTest(const std::string &fixtures_dir)
{
    std::vector<std::string> cases;
    std::error_code ec;
    for (fs::directory_iterator it(fixtures_dir, ec), end;
         !ec && it != end; it.increment(ec))
        if (it->is_directory())
            cases.push_back(it->path().filename().string());
    std::sort(cases.begin(), cases.end());
    if (cases.empty()) {
        std::fprintf(stderr,
                     "th_lint --self-test: no fixture cases in '%s'\n",
                     fixtures_dir.c_str());
        return 1;
    }

    int failures = 0;
    for (const std::string &name : cases) {
        const fs::path dir = fs::path(fixtures_dir) / name;
        std::string expect;
        {
            std::ifstream in(dir / "expect.txt");
            std::ostringstream ss;
            ss << in.rdbuf();
            expect = ss.str();
            while (!expect.empty() &&
                   std::isspace(static_cast<unsigned char>(
                       expect.back())))
                expect.pop_back();
        }
        Options o;
        o.root = dir.string();
        o.fixtureMode = true;
        const auto diags = runChecks(o);

        bool pass;
        if (expect.empty()) {
            pass = diags.empty();
        } else {
            pass = diags.size() == 1 &&
                   formatDiagnostic(diags[0]).find(expect) !=
                       std::string::npos;
        }
        std::printf("[%s] %s\n", pass ? "PASS" : "FAIL", name.c_str());
        if (!pass) {
            ++failures;
            std::printf("  expected %s, got %zu diagnostic(s):\n",
                        expect.empty()
                            ? "no diagnostics"
                            : ("exactly one containing '" + expect +
                               "'").c_str(),
                        diags.size());
            for (const auto &d : diags)
                std::printf("    %s\n", formatDiagnostic(d).c_str());
        }
    }
    std::printf("th_lint self-test: %zu case(s), %d failure(s)\n",
                cases.size(), failures);
    return failures == 0 ? 0 : 1;
}

} // namespace th_lint
