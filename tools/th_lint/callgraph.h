/**
 * @file
 * Function-level call graph over the tokenized sources. Built once per
 * run and shared by the event-loop-blocking and lock-order passes.
 *
 * The builder is heuristic by design (no name lookup, no overload
 * resolution): a call site `foo(` resolves to *every* definition named
 * `foo`, so reachability is an over-approximation — safe for the
 * passes built on it, which look for "must never happen" facts.
 */

#ifndef TH_LINT_CALLGRAPH_H
#define TH_LINT_CALLGRAPH_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "internal.h"

namespace th_lint {

/** One lock acquisition site inside a function body. */
struct LockSite
{
    std::string lock;  ///< Canonical lock name, e.g. "SimServer::mu_".
    int line = 0;
    std::size_t depth = 0; ///< Brace depth where the guard lives.
    std::size_t tokenIndex = 0; ///< Position within the file's tokens.
};

/** One call site inside a function body. */
struct CallSite
{
    std::string callee; ///< Simple (unqualified) name.
    int line = 0;
    std::size_t tokenIndex = 0;
    /** For `A::callee(...)`: the explicit qualifier A ("std", a class
     *  name, ...). Empty for unqualified calls. */
    std::string qualifier;
    /** True for `expr.callee(...)` / `expr->callee(...)`. */
    bool hasReceiver = false;
    /** The receiver when it is a single identifier ("this", "queue_");
     *  empty for chained/compound receivers. */
    std::string receiver;
};

struct FunctionDef
{
    std::string qualified; ///< "Class::name" or plain "name".
    std::string simple;    ///< Unqualified name.
    std::string klass;     ///< Enclosing/explicit class, or empty.
    std::string file;      ///< Root-relative path.
    int line = 0;

    std::vector<CallSite> calls;
    std::vector<LockSite> locks;
    /** Locks named by TH_REQUIRES on the declaration: held at entry. */
    std::vector<std::string> requires_;
    /** Body token range [begin, end) within the file's token stream. */
    std::size_t bodyBegin = 0;
    std::size_t bodyEnd = 0;
};

class CallGraph
{
  public:
    /** Scan every .h/.cpp under root/src (plus tools/th_serve if
     *  present) and build the graph. */
    static CallGraph build(FileSet &files);

    /** Scan only the given root-relative files (fixture use). */
    static CallGraph buildFrom(FileSet &files,
                               const std::vector<std::string> &rels);

    const std::vector<FunctionDef> &functions() const { return fns_; }

    /** Indices of every definition with this simple name. */
    std::vector<std::size_t>
    lookup(const std::string &simple) const;

    /** Indices of every definition with this qualified name. */
    std::vector<std::size_t>
    lookupQualified(const std::string &qualified) const;

    /**
     * Resolve a call site made from @p caller:
     *  - `A::f(...)` resolves against qualified names only (so
     *    `std::max(...)` resolves to nothing instead of everything);
     *  - `obj.f(...)` with an explicit non-`this` receiver never
     *    resolves back into the caller's own class — calling a
     *    *member object's* method is how `items_.size()` would
     *    otherwise alias `BoundedQueue::size()`;
     *  - plain `f(...)` resolves to every definition named f.
     */
    std::vector<std::size_t>
    resolve(const FunctionDef &caller, const CallSite &site) const;

  private:
    void scanFile(const SourceFile &sf);
    void scanBody(const SourceFile &sf, FunctionDef &fn);

    std::vector<FunctionDef> fns_;
    std::map<std::string, std::vector<std::size_t>> bySimple_;
    std::map<std::string, std::vector<std::size_t>> byQualified_;
    /** TH_REQUIRES collected from body-less declarations, keyed by
     *  qualified name, folded into definitions after the scan. */
    std::map<std::string, std::vector<std::string>> declRequires_;
};

} // namespace th_lint

#endif // TH_LINT_CALLGRAPH_H
