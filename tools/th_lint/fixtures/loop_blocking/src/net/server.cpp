#include "server.h"

namespace th {

void SimServer::onRequest(int conn_id)
{
    slowPath(conn_id);
}

void SimServer::slowPath(int conn_id)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    respond(conn_id);
}

} // namespace th
