// Fixture: folds every non-excluded CoreConfig field.
namespace th {

unsigned long configHash(const CoreConfig &c)
{
    Hasher h;
    h.add(c.fetchWidth);
    h.add(c.robSize);
    return h.value();
}

} // namespace th
