// Fixture: an annotated th::Mutex with its guarded data set.
#include "common/thread_annotations.h"

namespace th {

class State
{
  public:
    int get() const;

  private:
    mutable Mutex mu_;
    int value_ TH_GUARDED_BY(mu_) = 0;
};

} // namespace th
