// Fixture: fully covered config — zero diagnostics expected.
namespace th {

struct CoreConfig
{
    int fetchWidth = 4;
    int robSize = 96;
    // th_lint: excluded(display label; not a simulation input)
    int decorativeTag = 0;
};

} // namespace th
