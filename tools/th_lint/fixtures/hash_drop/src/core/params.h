// Fixture: CoreConfig with a field configHash forgets to fold.
namespace th {

struct CoreConfig
{
    int fetchWidth = 4;
    int robSize = 96;
};

} // namespace th
