// Fixture: folds fetchWidth but not robSize.
namespace th {

unsigned long configHash(const CoreConfig &c)
{
    Hasher h;
    h.add(c.fetchWidth);
    return h.value();
}

} // namespace th
