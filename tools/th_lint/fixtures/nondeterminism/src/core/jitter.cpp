// Fixture: libc randomness in a result-producing directory.
namespace th {

int jitter()
{
    return rand() % 7;
}

} // namespace th
