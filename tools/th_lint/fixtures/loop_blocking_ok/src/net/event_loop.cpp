#include "event_loop.h"

namespace th {

void EventLoop::loop()
{
    while (running_)
        handler_.onRequest(nextConn());
}

} // namespace th
