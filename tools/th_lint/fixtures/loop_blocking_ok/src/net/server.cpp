#include "server.h"

namespace th {

void SimServer::onRequest(int conn_id)
{
    slowPath(conn_id);
}

void SimServer::slowPath(int conn_id)
{
    // th_lint: blocking-ok(retry backoff capped at 10ms; measured harmless)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    respond(conn_id);
}

} // namespace th
