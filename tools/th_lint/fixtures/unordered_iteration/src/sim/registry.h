// Fixture: an unordered container in a result-producing directory
// without a lookup-only exclusion marker.
#include <string>
#include <unordered_map>

namespace th {

struct Registry
{
    std::unordered_map<std::string, int> ids_;
};

} // namespace th
