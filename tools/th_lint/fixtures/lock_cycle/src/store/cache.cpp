#include "cache.h"

namespace th {

void Cache::promote(const std::string &key)
{
    LockGuard index_lock(index_mu_);
    LockGuard data_lock(data_mu_);
    touch(key);
}

void Cache::evict(const std::string &key)
{
    LockGuard data_lock(data_mu_);
    LockGuard index_lock(index_mu_);
    drop(key);
}

} // namespace th
