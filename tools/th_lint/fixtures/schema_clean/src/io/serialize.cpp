#include "serialize.h"

namespace th {

void encodeSimRequest(Encoder &enc, const SimRequest &req)
{
    enc.str(req.config);
    enc.u64(req.insts);
    enc.u64(req.warmup);
}

bool decodeSimRequest(Decoder &dec, SimRequest &req)
{
    req.config = dec.str();
    req.insts = dec.u64();
    req.warmup = dec.u64();
    return true;
}

} // namespace th
