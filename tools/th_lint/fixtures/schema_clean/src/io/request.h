#ifndef FIXTURE_REQUEST_H
#define FIXTURE_REQUEST_H

namespace th {

/// Bump on any wire format change.
inline constexpr std::uint32_t kWireSchemaVersion = 7;

struct SimRequest
{
    std::string config;
    std::uint64_t insts = 0;
    std::uint64_t warmup = 0;
};

} // namespace th

#endif
