// Fixture: a raw std::mutex member, invisible to -Wthread-safety.
#include <mutex>

namespace th {

class Widget
{
  public:
    void poke();

  private:
    std::mutex mu_;
    int count_ = 0;
};

} // namespace th
