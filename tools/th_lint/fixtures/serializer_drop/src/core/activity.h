// Fixture: PerfStats with a field the decoder forgets.
namespace th {

struct PerfStats
{
    unsigned long cycles = 0;
    unsigned long loads = 0;
};

} // namespace th
