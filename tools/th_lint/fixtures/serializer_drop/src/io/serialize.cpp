// Fixture: encode covers both fields, decode drops 'loads'.
namespace th {

void encodePerfStats(Writer &w, const PerfStats &s)
{
    w.u64(s.cycles);
    w.u64(s.loads);
}

void decodePerfStats(Reader &r, PerfStats &s)
{
    s.cycles = r.u64();
}

} // namespace th
