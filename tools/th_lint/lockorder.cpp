/**
 * @file
 * Lock-order pass: builds a global acquired-before relation from the
 * `th::LockGuard`/`th::UniqueLock` sites and TH_REQUIRES clauses in
 * the call graph, propagates may-acquire sets through calls, and
 * reports every strongly connected component of the relation as a
 * potential deadlock.
 *
 * Lock identity is the canonical spelling produced by the call-graph
 * builder ("SimServer::pending_mu_", "flight->mu"); two spellings of
 * one mutex can hide an edge but never invent one, so findings are
 * trustworthy and silence is best-effort — the usual static
 * lock-order trade-off.
 */

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "callgraph.h"
#include "internal.h"

namespace th_lint {

namespace {

struct Witness
{
    std::string file;
    int line = 0;
    std::string fn; ///< Qualified name of the function holding "from".
};

using EdgeMap = std::map<std::pair<std::string, std::string>, Witness>;

/**
 * Fixpoint of MayAcquire(f) = direct guards of f ∪ the union over
 * every resolvable callee g of MayAcquire(g). TH_REQUIRES locks are
 * *held* at entry, not acquired, so they stay out of the set.
 */
std::vector<std::set<std::string>>
mayAcquire(const CallGraph &graph)
{
    const auto &fns = graph.functions();
    std::vector<std::set<std::string>> may(fns.size());
    for (std::size_t i = 0; i < fns.size(); ++i)
        for (const LockSite &site : fns[i].locks)
            may[i].insert(site.lock);

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < fns.size(); ++i) {
            for (const CallSite &call : fns[i].calls) {
                for (std::size_t callee :
                     graph.resolve(fns[i], call)) {
                    for (const std::string &lock : may[callee])
                        if (may[i].insert(lock).second)
                            changed = true;
                }
            }
        }
    }
    return may;
}

/**
 * Walk @p fn's body once, tracking which guards are live at each
 * token, and emit held -> acquired edges for nested guards and for
 * calls made under a guard.
 */
void
collectEdges(const CallGraph &graph,
             const std::vector<std::set<std::string>> &may,
             const SourceFile &sf, const FunctionDef &fn,
             EdgeMap &edges)
{
    std::map<std::size_t, const LockSite *> lockAt;
    for (const LockSite &site : fn.locks)
        lockAt[site.tokenIndex] = &site;
    std::map<std::size_t, const CallSite *> callAt;
    for (const CallSite &site : fn.calls)
        callAt[site.tokenIndex] = &site;

    // Self-edges are kept: acquiring a lock already held means
    // re-entering a non-recursive mutex, reported as a 1-node cycle.
    auto addEdge = [&](const std::string &from, const std::string &to,
                       int line) {
        edges.emplace(std::make_pair(from, to),
                      Witness{fn.file, line, fn.qualified});
    };

    struct Active
    {
        std::string lock;
        std::size_t depth;
    };
    std::vector<Active> held;
    const auto &toks = sf.tokens;
    std::size_t depth = 1;
    for (std::size_t j = fn.bodyBegin; j < fn.bodyEnd; ++j) {
        const Token &t = toks[j];
        if (t.kind == Tok::Punct) {
            if (t.text == "{")
                ++depth;
            else if (t.text == "}") {
                --depth;
                while (!held.empty() && held.back().depth > depth)
                    held.pop_back();
            }
            continue;
        }
        if (auto it = lockAt.find(j); it != lockAt.end()) {
            const LockSite &site = *it->second;
            for (const std::string &req : fn.requires_)
                addEdge(req, site.lock, site.line);
            for (const Active &a : held)
                addEdge(a.lock, site.lock, site.line);
            held.push_back({site.lock, site.depth});
            continue;
        }
        if (auto it = callAt.find(j); it != callAt.end()) {
            if (held.empty() && fn.requires_.empty())
                continue;
            const CallSite &site = *it->second;
            // A call on a *member object* (`items_.size()`) that
            // appears to re-acquire the held lock is, with simple-name
            // resolution, always receiver confusion — true re-entry
            // goes through `this` or an unqualified call, which still
            // produce the self-edge.
            const bool memberRecv =
                site.hasReceiver && site.receiver != "this";
            for (std::size_t callee : graph.resolve(fn, site)) {
                for (const std::string &lock : may[callee]) {
                    for (const std::string &req : fn.requires_)
                        if (!(memberRecv && req == lock))
                            addEdge(req, lock, site.line);
                    for (const Active &a : held)
                        if (!(memberRecv && a.lock == lock))
                            addEdge(a.lock, lock, site.line);
                }
            }
        }
    }
}

/** Tarjan SCC over the lock graph; returns components of size > 1
 *  plus single nodes with a self-edge. */
std::vector<std::vector<std::string>>
stronglyConnected(const std::set<std::string> &nodes,
                  const EdgeMap &edges)
{
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto &[edge, w] : edges)
        adj[edge.first].push_back(edge.second);

    std::map<std::string, int> index, low;
    std::map<std::string, bool> onStack;
    std::vector<std::string> stack;
    std::vector<std::vector<std::string>> sccs;
    int next = 0;

    // Iterative Tarjan (explicit frame stack: node + child cursor).
    struct Frame
    {
        std::string node;
        std::size_t child = 0;
    };
    for (const std::string &start : nodes) {
        if (index.count(start))
            continue;
        std::vector<Frame> frames{{start, 0}};
        index[start] = low[start] = next++;
        stack.push_back(start);
        onStack[start] = true;
        while (!frames.empty()) {
            Frame &f = frames.back();
            const auto &out = adj[f.node];
            if (f.child < out.size()) {
                const std::string &next_node = out[f.child++];
                if (!index.count(next_node)) {
                    index[next_node] = low[next_node] = next++;
                    stack.push_back(next_node);
                    onStack[next_node] = true;
                    frames.push_back({next_node, 0});
                } else if (onStack[next_node]) {
                    low[f.node] =
                        std::min(low[f.node], index[next_node]);
                }
                continue;
            }
            if (low[f.node] == index[f.node]) {
                std::vector<std::string> scc;
                while (true) {
                    const std::string n = stack.back();
                    stack.pop_back();
                    onStack[n] = false;
                    scc.push_back(n);
                    if (n == f.node)
                        break;
                }
                const bool selfLoop =
                    scc.size() == 1 &&
                    edges.count({scc[0], scc[0]}) != 0;
                if (scc.size() > 1 || selfLoop) {
                    std::sort(scc.begin(), scc.end());
                    sccs.push_back(std::move(scc));
                }
            }
            const std::string done = f.node;
            frames.pop_back();
            if (!frames.empty())
                low[frames.back().node] =
                    std::min(low[frames.back().node], low[done]);
        }
    }
    std::sort(sccs.begin(), sccs.end());
    return sccs;
}

} // namespace

void
checkLockOrder(FileSet &files, const CallGraph &graph,
               const Options & /*opts*/,
               std::vector<Diagnostic> &diags)
{
    const auto may = mayAcquire(graph);
    EdgeMap edges;
    std::set<std::string> nodes;
    for (const FunctionDef &fn : graph.functions()) {
        const SourceFile &sf = files.get(fn.file);
        if (isExcluded(sf, fn.line))
            continue;
        collectEdges(graph, may, sf, fn, edges);
    }
    for (const auto &[edge, w] : edges) {
        nodes.insert(edge.first);
        nodes.insert(edge.second);
    }

    for (const auto &scc : stronglyConnected(nodes, edges)) {
        // Describe the component through its internal edges.
        const std::set<std::string> inScc(scc.begin(), scc.end());
        std::ostringstream msg;
        msg << "potential deadlock: lock-order cycle among {";
        for (std::size_t i = 0; i < scc.size(); ++i)
            msg << (i ? ", " : "") << scc[i];
        msg << "}:";
        std::string file;
        int line = 0;
        for (const auto &[edge, w] : edges) {
            if (!inScc.count(edge.first) || !inScc.count(edge.second))
                continue;
            msg << " " << edge.first << " -> " << edge.second << " at "
                << w.file << ":" << w.line << " (in " << w.fn << ");";
            if (file.empty()) {
                file = w.file;
                line = w.line;
            }
        }
        diags.push_back({file, line, "lock-order", msg.str()});
    }
}

} // namespace th_lint
