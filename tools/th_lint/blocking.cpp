/**
 * @file
 * Event-loop blocking pass: everything reachable from the epoll
 * thread — `EventLoop::loop` and the `EventHandler` dispatch
 * callbacks — must never block. One stalled callback stalls every
 * connection, so this pass pins the invariant mechanically: a
 * blocking primitive in loop-reachable code is an error unless a
 * `// th_lint: blocking-ok(<reason>)` marker covers the call site or
 * the function's definition line.
 *
 * Blocking primitives recognised:
 *  - condition-variable waits: `.wait(` / `.wait_for(` /
 *    `.wait_until(` (and the `->` forms);
 *  - thread joins: `.join(` / `->join(`;
 *  - sleeps: `sleep_for`, `sleep_until`, `usleep`, `nanosleep`;
 *  - simulation entry points (seconds of CPU per call): `runCore`,
 *    `runDtm`, `runDtmStudy`, `runTrace`, `runIntervalFit`,
 *    `runIntervalDtm`;
 *  - blocking socket helpers by qualified name: `SimClient::connect`,
 *    `SimClient::call` (the loop's own sockets are non-blocking; the
 *    client wrapper's are not).
 */

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "callgraph.h"
#include "internal.h"

namespace th_lint {

namespace {

/** Dispatch roots: the loop itself plus every handler callback that
 *  the loop invokes on its own thread. */
const std::vector<FnRef> &
loopRoots()
{
    static const std::vector<FnRef> roots = {
        {"EventLoop::loop", "src/net/event_loop.cpp"},
        {"onRequest", ""},
        {"badFrameResponse", ""},
        {"onDeadline", ""},
        {"onConnClosed", ""},
    };
    return roots;
}

bool
isSleepName(const std::string &t)
{
    return t == "sleep_for" || t == "sleep_until" || t == "usleep" ||
           t == "nanosleep";
}

bool
isSimEntryName(const std::string &t)
{
    return t == "runCore" || t == "runDtm" || t == "runDtmStudy" ||
           t == "runTrace" || t == "runIntervalFit" ||
           t == "runIntervalDtm";
}

/** Qualified names whose definitions block internally even though
 *  their bodies show no primitive this pass recognises. */
bool
isBlockingDef(const FunctionDef &fn)
{
    static const std::set<std::string> names = {
        "SimClient::connect",
        "SimClient::call",
        "BoundedQueue::pop",
    };
    return names.count(fn.qualified) != 0;
}

struct Primitive
{
    int line = 0;
    std::string what;
};

/** Direct blocking primitives in @p fn's body (marker-suppressed
 *  sites excluded). */
std::vector<Primitive>
directPrimitives(const SourceFile &sf, const FunctionDef &fn)
{
    std::vector<Primitive> out;
    const auto &toks = sf.tokens;
    auto allowed = [&](int line) {
        return hasMarker(sf, line, "blocking-ok") ||
               hasMarker(sf, fn.line, "blocking-ok");
    };
    for (std::size_t j = fn.bodyBegin; j < fn.bodyEnd; ++j) {
        const Token &t = toks[j];
        if (t.kind != Tok::Ident)
            continue;
        const bool calledOn =
            j > fn.bodyBegin &&
            (toks[j - 1].text == "." || toks[j - 1].text == "->");
        const bool isCall =
            j + 1 < fn.bodyEnd && toks[j + 1].text == "(";
        if (!isCall)
            continue;
        std::string what;
        if (calledOn && (t.text == "wait" || t.text == "wait_for" ||
                         t.text == "wait_until"))
            what = "condition-variable " + t.text + "()";
        else if (calledOn && t.text == "join")
            what = "thread join()";
        else if (isSleepName(t.text))
            what = t.text + "()";
        else if (isSimEntryName(t.text))
            what = "simulation entry point " + t.text + "()";
        if (!what.empty() && !allowed(t.line))
            out.push_back({t.line, what});
    }
    return out;
}

} // namespace

void
checkEventLoopBlocking(FileSet &files, const CallGraph &graph,
                       const Options &opts,
                       std::vector<Diagnostic> &diags)
{
    const auto &fns = graph.functions();

    // Seed the worklist with the dispatch roots.
    std::vector<std::size_t> work;
    std::map<std::size_t, std::size_t> parent; // callee -> caller
    std::set<std::size_t> seen;
    bool anyRoot = false;
    for (const FnRef &root : loopRoots()) {
        const std::string name = root.name;
        const bool qualified = name.find("::") != std::string::npos;
        const auto idx = qualified ? graph.lookupQualified(name)
                                   : graph.lookup(name);
        if (qualified && idx.empty() && !opts.fixtureMode) {
            diags.push_back(
                {root.file, 1, "event-loop-blocking",
                 std::string("dispatch root ") + name +
                     " not found; update the rule table in "
                     "tools/th_lint/blocking.cpp"});
            continue;
        }
        for (std::size_t k : idx) {
            if (seen.insert(k).second)
                work.push_back(k);
            anyRoot = true;
        }
    }
    if (!anyRoot)
        return; // fixture without any loop code: pass is silent

    // BFS over the call graph, keeping one witness parent per node so
    // findings can show how the loop reaches the offender.
    std::deque<std::size_t> queue(work.begin(), work.end());
    while (!queue.empty()) {
        const std::size_t cur = queue.front();
        queue.pop_front();
        const FunctionDef &fn = fns[cur];
        const SourceFile &sf = files.get(fn.file);
        // A blocking-ok marker on the definition stops propagation:
        // the author vouches for everything beneath it.
        if (hasMarker(sf, fn.line, "blocking-ok"))
            continue;
        for (const CallSite &call : fn.calls) {
            for (std::size_t callee : graph.resolve(fn, call)) {
                if (!seen.insert(callee).second)
                    continue;
                parent[callee] = cur;
                queue.push_back(callee);
            }
        }
    }

    auto pathTo = [&](std::size_t idx) {
        std::vector<std::string> hops;
        std::size_t cur = idx;
        hops.push_back(fns[cur].qualified);
        while (parent.count(cur)) {
            cur = parent.at(cur);
            hops.push_back(fns[cur].qualified);
            if (hops.size() > 12)
                break; // defensive: graphs are approximate
        }
        std::reverse(hops.begin(), hops.end());
        std::string s;
        for (std::size_t k = 0; k < hops.size(); ++k)
            s += (k ? " -> " : "") + hops[k];
        return s;
    };

    for (std::size_t idx : seen) {
        const FunctionDef &fn = fns[idx];
        const SourceFile &sf = files.get(fn.file);
        if (hasMarker(sf, fn.line, "blocking-ok"))
            continue;
        if (isBlockingDef(fn)) {
            std::ostringstream msg;
            msg << fn.qualified
                << " blocks internally but is reachable from the "
                   "event loop (" << pathTo(idx)
                << "); move the call to a worker thread or mark it "
                   "// th_lint: blocking-ok(<reason>)";
            diags.push_back(
                {fn.file, fn.line, "event-loop-blocking", msg.str()});
            continue;
        }
        for (const Primitive &p : directPrimitives(sf, fn)) {
            std::ostringstream msg;
            msg << fn.qualified << " calls " << p.what
                << " but is reachable from the event loop ("
                << pathTo(idx)
                << "); move the call to a worker thread or mark it "
                   "// th_lint: blocking-ok(<reason>)";
            diags.push_back(
                {fn.file, p.line, "event-loop-blocking", msg.str()});
        }
    }
}

} // namespace th_lint
