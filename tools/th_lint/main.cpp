/**
 * @file
 * th_lint CLI.
 *
 *   th_lint [--root DIR] [--json] [--github]   lint the repo at DIR
 *   th_lint --root DIR --write-schema-lock     regenerate schema.lock
 *   th_lint --self-test FIXTURES_DIR           run the fixture suite
 *
 * Exit status: 0 clean, 1 on findings (or a failed self-test), 2 on
 * usage errors. `--json` prints the findings as a JSON array instead
 * of the human format; `--github` additionally prints one GitHub
 * Actions `::error` workflow command per finding so CI failures are
 * annotated inline on PRs. See lint.h for what the passes enforce.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "lint.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--json] [--github] "
                 "[--write-schema-lock] | --self-test FIXTURES_DIR\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string fixtures;
    bool json = false;
    bool github = false;
    bool writeLock = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (std::strcmp(argv[i], "--self-test") == 0 &&
                   i + 1 < argc) {
            fixtures = argv[++i];
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--github") == 0) {
            github = true;
        } else if (std::strcmp(argv[i], "--write-schema-lock") == 0) {
            writeLock = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (!fixtures.empty())
        return th_lint::runSelfTest(fixtures);

    th_lint::Options opts;
    opts.root = root;

    if (writeLock) {
        std::string err;
        if (!th_lint::writeSchemaLock(opts, err)) {
            std::fprintf(stderr, "th_lint: %s\n", err.c_str());
            return 1;
        }
        std::printf("th_lint: wrote %s/tools/th_lint/schema.lock\n",
                    root.c_str());
        return 0;
    }

    const auto diags = th_lint::runChecks(opts);
    if (json) {
        std::printf("%s\n", th_lint::formatFindingsJson(diags).c_str());
    } else {
        for (const auto &d : diags)
            std::printf("%s\n", th_lint::formatDiagnostic(d).c_str());
    }
    if (github)
        for (const auto &d : diags)
            std::printf("%s\n",
                        th_lint::formatDiagnosticGithub(d).c_str());
    if (!diags.empty()) {
        if (!json)
            std::printf("th_lint: %zu diagnostic(s)\n", diags.size());
        return 1;
    }
    if (!json)
        std::printf("th_lint: clean\n");
    return 0;
}
