/**
 * @file
 * th_lint CLI. `th_lint --root DIR` lints the repository at DIR (exit
 * 0 clean, 1 on diagnostics); `th_lint --self-test DIR` runs the
 * fixture suite. See lint.h for what the checks enforce.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "lint.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--root DIR] | --self-test FIXTURES_DIR\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string fixtures;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (std::strcmp(argv[i], "--self-test") == 0 &&
                   i + 1 < argc) {
            fixtures = argv[++i];
        } else {
            return usage(argv[0]);
        }
    }

    if (!fixtures.empty())
        return th_lint::runSelfTest(fixtures);

    th_lint::Options opts;
    opts.root = root;
    const auto diags = th_lint::runChecks(opts);
    for (const auto &d : diags)
        std::printf("%s\n", th_lint::formatDiagnostic(d).c_str());
    if (!diags.empty()) {
        std::printf("th_lint: %zu diagnostic(s)\n", diags.size());
        return 1;
    }
    std::printf("th_lint: clean\n");
    return 0;
}
