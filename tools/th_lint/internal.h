/**
 * @file
 * Shared internals of th_lint: the tokenizer's source model, the
 * per-run file cache, marker lookup helpers, struct-field extraction,
 * and the coverage rule table. Everything here is consumed by the pass
 * implementations (lint.cpp, blocking.cpp, lockorder.cpp, schema.cpp)
 * and deliberately stays free of any th_sim dependency.
 */

#ifndef TH_LINT_INTERNAL_H
#define TH_LINT_INTERNAL_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace th_lint {

// --------------------------------------------------------------------
// Token model
// --------------------------------------------------------------------

enum class Tok { Ident, Punct };

struct Token
{
    Tok kind = Tok::Punct;
    std::string text;
    int line = 0;
};

/**
 * A parsed `// th_lint: <kind>(<reason>)` comment. Valid kinds:
 * "excluded" (suppress any check at that declaration), "guards"
 * (document what a once_flag / condition variable protects), and
 * "blocking-ok" (permit a blocking call in event-loop-reachable code).
 */
struct Marker
{
    int line = 0;
    std::string kind;
    std::string reason;
    bool malformed = false;
};

struct SourceFile
{
    std::string relPath; ///< Root-relative, for reporting.
    bool loaded = false;
    std::vector<Token> tokens;
    std::map<int, Marker> markers; ///< By line of the comment.
};

/** Lex @p text into @p out (see tokenizer.cpp for the grammar). */
void lex(const std::string &text, SourceFile &out);

/** Loader with a per-run cache (several passes share files). */
class FileSet
{
  public:
    explicit FileSet(std::string root) : root_(std::move(root)) {}

    const SourceFile &get(const std::string &rel);

    const std::string &root() const { return root_; }

  private:
    std::string root_;
    std::map<std::string, SourceFile> cache_;
};

/** True when a well-formed marker of @p kind covers @p line (the line
 *  itself or the one above). */
bool hasMarker(const SourceFile &sf, int line, const char *kind);

/** True when an "excluded" marker covers @p line. */
bool isExcluded(const SourceFile &sf, int line);

/** True when a "guards" (or "excluded") marker covers @p line. */
bool hasGuardsMarker(const SourceFile &sf, int line);

// --------------------------------------------------------------------
// Struct fields
// --------------------------------------------------------------------

struct Field
{
    std::string name;
    int line = 0;
    bool excluded = false;
};

bool isTypeIntro(const std::string &t);

/** True when @p stmt has a '(' at nesting depth 0 before any '='. */
bool looksLikeFunction(const std::vector<Token> &stmt);

/**
 * Fields of `struct <name> { ... }` in @p sf, in declaration order.
 * False when no definition of the struct exists in the file.
 */
bool parseStructFields(const SourceFile &sf, const std::string &name,
                       std::vector<Field> &out);

/**
 * Identifiers appearing in the body of the first *definition* of
 * @p fn in @p sf. False when no definition is found.
 */
bool functionBodyIdents(const SourceFile &sf, const std::string &fn,
                        std::set<std::string> &idents);

/**
 * Identifiers referenced in @p fn's body, in order of appearance
 * (duplicates kept) — the schema pass fingerprints the ordered
 * sequence so a codec field *reorder* drifts, not just an add/drop.
 */
bool functionBodyIdentSequence(const SourceFile &sf, const std::string &fn,
                               std::vector<std::string> &idents);

/** All .h/.cpp/.inl files under root/rel, sorted, root-relative. */
std::vector<std::string> sourcesUnder(const std::string &root,
                                      const std::string &rel);

// --------------------------------------------------------------------
// Coverage rule table (shared by the coverage and schema passes)
// --------------------------------------------------------------------

struct FnRef
{
    const char *name;
    const char *file;
};

struct CoverageRule
{
    const char *structName;
    const char *structFile;
    std::vector<FnRef> fns;
    const char *check;
};

const std::vector<CoverageRule> &coverageRules();

// --------------------------------------------------------------------
// Pass entry points (each appends diagnostics; sorted by the caller)
// --------------------------------------------------------------------

class CallGraph; // callgraph.h

void checkEventLoopBlocking(FileSet &files, const CallGraph &graph,
                            const Options &opts,
                            std::vector<Diagnostic> &diags);

void checkLockOrder(FileSet &files, const CallGraph &graph,
                    const Options &opts, std::vector<Diagnostic> &diags);

void checkSchemaDrift(FileSet &files, const Options &opts,
                      std::vector<Diagnostic> &diags);

} // namespace th_lint

#endif // TH_LINT_INTERNAL_H
