/**
 * @file
 * The tokenizer and source model shared by every th_lint pass: a
 * lightweight C++ lexer (comments, strings, and preprocessor lines
 * stripped; identifiers and punctuation kept with line numbers),
 * `// th_lint:` marker parsing, struct-field extraction, and the
 * file walker. Deliberately no libclang dependency so the linter
 * builds everywhere the repo builds.
 */

#include "internal.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

namespace fs = std::filesystem;

namespace th_lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Parse a th_lint marker out of one comment's text, if present. */
std::optional<Marker>
parseMarker(const std::string &comment, int line)
{
    const std::size_t at = comment.find("th_lint");
    if (at == std::string::npos)
        return std::nullopt;
    Marker m;
    m.line = line;
    std::size_t i = at + 7; // past "th_lint"
    // Expect ':' then a kind identifier, then optional "(reason)".
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i])))
        ++i;
    // No colon: prose mentioning th_lint, not a marker attempt.
    if (i >= comment.size() || comment[i] != ':')
        return std::nullopt;
    ++i;
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i])))
        ++i;
    std::size_t kb = i;
    while (i < comment.size() && (isIdentChar(comment[i]) ||
                                  comment[i] == '-'))
        ++i;
    m.kind = comment.substr(kb, i - kb);
    while (i < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[i])))
        ++i;
    if (i < comment.size() && comment[i] == '(') {
        int depth = 1;
        std::size_t rb = ++i;
        while (i < comment.size() && depth > 0) {
            if (comment[i] == '(')
                ++depth;
            else if (comment[i] == ')')
                --depth;
            if (depth > 0)
                ++i;
        }
        m.reason = comment.substr(rb, i - rb);
        if (depth != 0)
            m.malformed = true;
    }
    if (m.kind != "excluded" && m.kind != "guards" &&
        m.kind != "blocking-ok")
        m.malformed = true;
    if (!m.malformed && m.reason.empty())
        m.malformed = true; // A marker without a reason is a smell.
    return m;
}

} // namespace

/**
 * Lex one file: preprocessor lines, comments, and literals stripped;
 * identifiers and punctuation kept; `th_lint` comments recorded as
 * markers. `::` and `->` are fused; everything else is one char.
 */
void
lex(const std::string &text, SourceFile &out)
{
    const std::size_t n = text.size();
    std::size_t i = 0;
    int line = 1;
    bool atLineStart = true;

    auto record = [&](const std::string &comment, int cline) {
        if (auto m = parseMarker(comment, cline))
            out.markers[cline] = *m;
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            atLineStart = true;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (atLineStart && c == '#') {
            // Preprocessor directive: skip to end of (continued) line.
            while (i < n) {
                if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                if (text[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        atLineStart = false;
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            const int cline = line;
            std::size_t b = i;
            while (i < n && text[i] != '\n')
                ++i;
            record(text.substr(b, i - b), cline);
            continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            const int cline = line;
            std::size_t b = i;
            i += 2;
            while (i + 1 < n &&
                   !(text[i] == '*' && text[i + 1] == '/')) {
                if (text[i] == '\n')
                    ++line;
                ++i;
            }
            i = std::min(n, i + 2);
            record(text.substr(b, i - b), cline);
            continue;
        }
        if (c == '"' || c == '\'') {
            // Raw strings: the repo doesn't use them; handle the
            // common R"( ... )" form anyway.
            if (c == '"' && i > 0 && text[i - 1] == 'R') {
                std::size_t d = i + 1;
                while (d < n && text[d] != '(')
                    ++d;
                const std::string delim =
                    ")" + text.substr(i + 1, d - i - 1) + "\"";
                const std::size_t e = text.find(delim, d);
                for (std::size_t k = i;
                     k < std::min(n, e == std::string::npos
                                         ? n
                                         : e + delim.size());
                     ++k)
                    if (text[k] == '\n')
                        ++line;
                i = e == std::string::npos ? n : e + delim.size();
                continue;
            }
            const char quote = c;
            ++i;
            while (i < n && text[i] != quote) {
                if (text[i] == '\\')
                    ++i;
                if (i < n && text[i] == '\n')
                    ++line;
                ++i;
            }
            ++i;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            // pp-number (handles 1e-4, 0x1b3ULL, 1.0); emits no token.
            ++i;
            while (i < n) {
                const char d = text[i];
                if (isIdentChar(d) || d == '.') {
                    ++i;
                } else if ((d == '+' || d == '-') && i > 0 &&
                           (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                            text[i - 1] == 'p' || text[i - 1] == 'P')) {
                    ++i;
                } else {
                    break;
                }
            }
            continue;
        }
        if (isIdentStart(c)) {
            std::size_t b = i;
            while (i < n && isIdentChar(text[i]))
                ++i;
            out.tokens.push_back(
                {Tok::Ident, text.substr(b, i - b), line});
            continue;
        }
        if (c == ':' && i + 1 < n && text[i + 1] == ':') {
            out.tokens.push_back({Tok::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && text[i + 1] == '>') {
            out.tokens.push_back({Tok::Punct, "->", line});
            i += 2;
            continue;
        }
        out.tokens.push_back({Tok::Punct, std::string(1, c), line});
        ++i;
    }
}

const SourceFile &
FileSet::get(const std::string &rel)
{
    auto it = cache_.find(rel);
    if (it != cache_.end())
        return it->second;
    SourceFile sf;
    sf.relPath = rel;
    std::ifstream in(fs::path(root_) / rel,
                     std::ios::in | std::ios::binary);
    if (in) {
        std::ostringstream ss;
        ss << in.rdbuf();
        lex(ss.str(), sf);
        sf.loaded = true;
    }
    return cache_.emplace(rel, std::move(sf)).first->second;
}

bool
hasMarker(const SourceFile &sf, int line, const char *kind)
{
    for (int l : {line, line - 1}) {
        auto it = sf.markers.find(l);
        if (it != sf.markers.end() && !it->second.malformed &&
            it->second.kind == kind)
            return true;
    }
    return false;
}

bool
isExcluded(const SourceFile &sf, int line)
{
    return hasMarker(sf, line, "excluded");
}

bool
hasGuardsMarker(const SourceFile &sf, int line)
{
    return hasMarker(sf, line, "guards") || isExcluded(sf, line);
}

// --------------------------------------------------------------------
// Struct field extraction
// --------------------------------------------------------------------

bool
isTypeIntro(const std::string &t)
{
    return t == "struct" || t == "class" || t == "enum" || t == "union";
}

bool
looksLikeFunction(const std::vector<Token> &stmt)
{
    int depth = 0;
    for (const Token &t : stmt) {
        if (t.kind != Tok::Punct)
            continue;
        if (t.text == "(" && depth == 0)
            return true;
        if (t.text == "=" && depth == 0)
            return false;
        if (t.text == "(" || t.text == "[" || t.text == "<")
            ++depth;
        else if (t.text == ")" || t.text == "]" || t.text == ">")
            depth = std::max(0, depth - 1);
    }
    return false;
}

namespace {

/** Extract declarator names from one member statement. */
void
namesFromStatement(const std::vector<Token> &stmt, const SourceFile &sf,
                   std::vector<Field> &out)
{
    if (stmt.empty())
        return;
    for (std::size_t k = 0; k < std::min<std::size_t>(2, stmt.size());
         ++k) {
        const std::string &t0 = stmt[k].text;
        if (t0 == "using" || t0 == "typedef" || t0 == "friend" ||
            t0 == "static" || t0 == "template")
            return;
    }
    if (looksLikeFunction(stmt))
        return;

    // Split into declarator chunks at top-level commas.
    std::vector<std::vector<Token>> chunks(1);
    int depth = 0;
    for (const Token &t : stmt) {
        if (t.kind == Tok::Punct) {
            if (t.text == "(" || t.text == "[" || t.text == "<")
                ++depth;
            else if (t.text == ")" || t.text == "]" || t.text == ">")
                depth = std::max(0, depth - 1);
            else if (t.text == "," && depth == 0) {
                chunks.emplace_back();
                continue;
            }
        }
        chunks.back().push_back(t);
    }

    for (const auto &chunk : chunks) {
        const Token *name = nullptr;
        depth = 0;
        for (const Token &t : chunk) {
            if (t.kind == Tok::Punct && depth == 0 &&
                (t.text == "=" || t.text == "{}" || t.text == "["))
                break;
            if (t.kind == Tok::Punct) {
                if (t.text == "(" || t.text == "[" || t.text == "<")
                    ++depth;
                else if (t.text == ")" || t.text == "]" ||
                         t.text == ">")
                    depth = std::max(0, depth - 1);
            }
            if (t.kind == Tok::Ident && depth == 0)
                name = &t;
        }
        if (name == nullptr)
            continue;
        out.push_back(
            {name->text, name->line, isExcluded(sf, name->line)});
    }
}

} // namespace

bool
parseStructFields(const SourceFile &sf, const std::string &name,
                  std::vector<Field> &out)
{
    const auto &toks = sf.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != Tok::Ident || !isTypeIntro(toks[i].text))
            continue;
        if (toks[i + 1].kind != Tok::Ident || toks[i + 1].text != name)
            continue;
        // Find '{' of the definition before any ';' (else: fwd decl).
        std::size_t j = i + 2;
        while (j < toks.size() && toks[j].text != "{" &&
               toks[j].text != ";")
            ++j;
        if (j >= toks.size() || toks[j].text == ";")
            continue;

        // Walk the body at depth 1, accumulating member statements.
        std::vector<Token> stmt;
        int depth = 1;
        ++j;
        while (j < toks.size() && depth > 0) {
            const Token &t = toks[j];
            if (t.kind == Tok::Punct && t.text == "{") {
                const bool discard = looksLikeFunction(stmt) ||
                    (!stmt.empty() && isTypeIntro(stmt[0].text));
                // Skip to the matching '}'.
                int d = 1;
                ++j;
                while (j < toks.size() && d > 0) {
                    if (toks[j].text == "{")
                        ++d;
                    else if (toks[j].text == "}")
                        --d;
                    ++j;
                }
                if (discard) {
                    stmt.clear();
                    // A method body needs no ';'; a nested type does —
                    // either way the next ';' (if adjacent) is noise.
                    if (j < toks.size() && toks[j].text == ";")
                        ++j;
                } else {
                    stmt.push_back({Tok::Punct, "{}", t.line});
                }
                continue;
            }
            if (t.kind == Tok::Punct && t.text == "}") {
                --depth;
                ++j;
                continue;
            }
            if (t.kind == Tok::Punct && t.text == ";") {
                namesFromStatement(stmt, sf, out);
                stmt.clear();
                ++j;
                continue;
            }
            if (t.kind == Tok::Punct && t.text == ":" &&
                stmt.size() == 1 &&
                (stmt[0].text == "public" || stmt[0].text == "private" ||
                 stmt[0].text == "protected")) {
                stmt.clear();
                ++j;
                continue;
            }
            stmt.push_back(t);
            ++j;
        }
        return true;
    }
    return false;
}

// --------------------------------------------------------------------
// Function body extraction
// --------------------------------------------------------------------

namespace {

/**
 * Locate the body token range [begin, end) of the first definition of
 * @p fn in @p sf (calls — `fn(...)` not followed by a body — are
 * skipped). False when no definition is found.
 */
bool
findBodyRange(const SourceFile &sf, const std::string &fn,
              std::size_t &begin, std::size_t &end)
{
    const auto &toks = sf.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != Tok::Ident || toks[i].text != fn)
            continue;
        if (toks[i + 1].text != "(")
            continue;
        // Match the parameter list.
        std::size_t j = i + 1;
        int d = 0;
        do {
            if (toks[j].text == "(")
                ++d;
            else if (toks[j].text == ")")
                --d;
            ++j;
        } while (j < toks.size() && d > 0);
        // Definition iff '{' follows (allowing cv/ref qualifiers).
        while (j < toks.size() && toks[j].kind == Tok::Ident &&
               (toks[j].text == "const" || toks[j].text == "noexcept" ||
                toks[j].text == "override" || toks[j].text == "final"))
            ++j;
        if (j >= toks.size() || toks[j].text != "{")
            continue; // A call or a pure declaration; keep looking.
        d = 1;
        begin = ++j;
        while (j < toks.size() && d > 0) {
            if (toks[j].text == "{")
                ++d;
            else if (toks[j].text == "}")
                --d;
            ++j;
        }
        end = j > 0 ? j - 1 : j; // exclude the closing '}'
        return true;
    }
    return false;
}

} // namespace

bool
functionBodyIdents(const SourceFile &sf, const std::string &fn,
                   std::set<std::string> &idents)
{
    std::size_t begin = 0, end = 0;
    if (!findBodyRange(sf, fn, begin, end))
        return false;
    for (std::size_t j = begin; j < end; ++j)
        if (sf.tokens[j].kind == Tok::Ident)
            idents.insert(sf.tokens[j].text);
    return true;
}

bool
functionBodyIdentSequence(const SourceFile &sf, const std::string &fn,
                          std::vector<std::string> &idents)
{
    std::size_t begin = 0, end = 0;
    if (!findBodyRange(sf, fn, begin, end))
        return false;
    for (std::size_t j = begin; j < end; ++j)
        if (sf.tokens[j].kind == Tok::Ident)
            idents.push_back(sf.tokens[j].text);
    return true;
}

// --------------------------------------------------------------------
// File walking
// --------------------------------------------------------------------

std::vector<std::string>
sourcesUnder(const std::string &root, const std::string &rel)
{
    std::vector<std::string> out;
    const fs::path base = fs::path(root) / rel;
    std::error_code ec;
    if (!fs::is_directory(base, ec))
        return out;
    for (fs::recursive_directory_iterator it(base, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file())
            continue;
        const std::string ext = it->path().extension().string();
        if (ext != ".h" && ext != ".cpp" && ext != ".inl")
            continue;
        out.push_back(
            fs::relative(it->path(), root, ec).generic_string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace th_lint
