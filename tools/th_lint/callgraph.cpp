/**
 * @file
 * Heuristic call-graph construction over the token streams. One
 * forward scan per file finds function definitions (at namespace and
 * class scope; bodies are skipped wholesale, so statement-level code
 * never confuses the definition matcher), records each body's call
 * sites and `th::LockGuard`/`th::UniqueLock` acquisition sites, and
 * collects `TH_REQUIRES(...)` clauses from both declarations and
 * definitions.
 *
 * Known, accepted approximations:
 *  - call sites resolve by *simple* name to every definition sharing
 *    it (no overload or namespace resolution) — reachability is an
 *    over-approximation, which is the safe direction for the passes;
 *  - lambdas are not separate nodes; their bodies belong to the
 *    enclosing function, which matches how the repo uses them (always
 *    invoked synchronously or on the thread pool by the caller);
 *  - a lock is identified by its canonical spelling: single
 *    identifiers are qualified by the enclosing class
 *    ("SimServer::pending_mu_"), member expressions are kept textually
 *    ("flight->mu"). Two spellings of one mutex can split a node
 *    (missing an edge), never merge two mutexes into one.
 */

#include "callgraph.h"

#include <algorithm>

namespace th_lint {

namespace {

bool
isKeyword(const std::string &t)
{
    static const std::set<std::string> kw = {
        "if",      "while",    "for",        "switch",   "catch",
        "return",  "sizeof",   "alignof",    "new",      "delete",
        "throw",   "do",       "else",       "case",     "default",
        "goto",    "using",    "namespace",  "template", "typename",
        "decltype", "alignas", "static_assert", "operator",
        "constexpr", "requires", "co_await", "co_return", "co_yield",
        "assert",  "defined",
    };
    return kw.count(t) != 0;
}

bool
isTHMacro(const std::string &t)
{
    return t.rfind("TH_", 0) == 0;
}

/** Join an expression's tokens into a canonical lock spelling. */
std::string
canonLock(const std::vector<Token> &expr, const std::string &klass)
{
    std::string s;
    bool plainIdent = true;
    for (const Token &t : expr) {
        if (t.kind == Tok::Punct)
            plainIdent = false;
        if (t.text == "&" || t.text == "*")
            continue; // address-of / deref never disambiguates a lock
        s += t.text;
    }
    if (plainIdent && expr.size() == 1 && !klass.empty())
        return klass + "::" + s;
    return s;
}

/** Skip a balanced (), {}, or [] group; @p j points at the opener on
 *  entry and one past the closer on exit. */
void
skipGroup(const std::vector<Token> &toks, std::size_t &j)
{
    const std::string open = toks[j].text;
    const std::string close =
        open == "(" ? ")" : (open == "{" ? "}" : "]");
    int d = 0;
    while (j < toks.size()) {
        if (toks[j].kind == Tok::Punct) {
            if (toks[j].text == open)
                ++d;
            else if (toks[j].text == close && --d == 0) {
                ++j;
                return;
            }
        }
        ++j;
    }
}

struct Scope
{
    bool isClass = false;
    std::string name;
};

} // namespace

CallGraph
CallGraph::build(FileSet &files)
{
    return buildFrom(files, sourcesUnder(files.root(), "src"));
}

CallGraph
CallGraph::buildFrom(FileSet &files, const std::vector<std::string> &rels)
{
    CallGraph g;
    // Qualified name -> locks required at entry, merged from
    // declarations (headers) and definitions.
    std::map<std::string, std::vector<std::string>> requiresMap;

    for (const std::string &rel : rels) {
        const SourceFile &sf = files.get(rel);
        if (!sf.loaded)
            continue;
        g.scanFile(sf);
    }

    // Second pass: fold TH_REQUIRES collected on body-less
    // declarations (typically in headers) into the definitions.
    for (FunctionDef &fn : g.fns_) {
        for (const std::string &q : {fn.qualified, fn.simple}) {
            auto it = g.declRequires_.find(q);
            if (it == g.declRequires_.end())
                continue;
            for (const std::string &lock : it->second)
                if (std::find(fn.requires_.begin(), fn.requires_.end(),
                              lock) == fn.requires_.end())
                    fn.requires_.push_back(lock);
            break; // qualified match wins; don't also apply simple
        }
    }

    for (std::size_t i = 0; i < g.fns_.size(); ++i) {
        g.bySimple_[g.fns_[i].simple].push_back(i);
        g.byQualified_[g.fns_[i].qualified].push_back(i);
    }
    return g;
}

std::vector<std::size_t>
CallGraph::lookup(const std::string &simple) const
{
    auto it = bySimple_.find(simple);
    return it == bySimple_.end() ? std::vector<std::size_t>{}
                                 : it->second;
}

std::vector<std::size_t>
CallGraph::lookupQualified(const std::string &qualified) const
{
    auto it = byQualified_.find(qualified);
    return it == byQualified_.end() ? std::vector<std::size_t>{}
                                    : it->second;
}

std::vector<std::size_t>
CallGraph::resolve(const FunctionDef &caller, const CallSite &site) const
{
    if (!site.qualifier.empty())
        return lookupQualified(site.qualifier + "::" + site.callee);
    std::vector<std::size_t> out = lookup(site.callee);
    if (site.hasReceiver && site.receiver != "this" &&
        !caller.klass.empty()) {
        out.erase(std::remove_if(out.begin(), out.end(),
                                 [&](std::size_t k) {
                                     return fns_[k].klass ==
                                            caller.klass;
                                 }),
                  out.end());
    }
    return out;
}

void
CallGraph::scanBody(const SourceFile &sf, FunctionDef &fn)
{
    const auto &toks = sf.tokens;
    std::size_t depth = 1;
    for (std::size_t j = fn.bodyBegin; j < fn.bodyEnd; ++j) {
        const Token &t = toks[j];
        if (t.kind == Tok::Punct) {
            if (t.text == "{")
                ++depth;
            else if (t.text == "}")
                --depth;
            continue;
        }
        if (t.text == "LockGuard" || t.text == "UniqueLock") {
            std::size_t k = j + 1;
            if (k < fn.bodyEnd && toks[k].kind == Tok::Ident)
                ++k; // the guard variable's name
            if (k < fn.bodyEnd && toks[k].text == "(") {
                std::vector<Token> expr;
                int d = 1;
                std::size_t e = k + 1;
                while (e < fn.bodyEnd && d > 0) {
                    if (toks[e].text == "(")
                        ++d;
                    else if (toks[e].text == ")" && --d == 0)
                        break;
                    expr.push_back(toks[e]);
                    ++e;
                }
                fn.locks.push_back({canonLock(expr, fn.klass),
                                    t.line, depth, j});
                j = e; // skip the guard's ctor expression
            }
            continue;
        }
        if (j + 1 < fn.bodyEnd && toks[j + 1].text == "(" &&
            !isKeyword(t.text) && !isTHMacro(t.text)) {
            CallSite site;
            site.callee = t.text;
            site.line = t.line;
            site.tokenIndex = j;
            if (j > fn.bodyBegin) {
                const Token &prev = toks[j - 1];
                if (prev.text == "::") {
                    if (j - 1 > fn.bodyBegin &&
                        toks[j - 2].kind == Tok::Ident)
                        site.qualifier = toks[j - 2].text;
                    else
                        continue; // `::f(...)`: a libc/global call
                } else if (prev.text == "." || prev.text == "->") {
                    site.hasReceiver = true;
                    if (j - 1 > fn.bodyBegin &&
                        toks[j - 2].kind == Tok::Ident)
                        site.receiver = toks[j - 2].text;
                }
            }
            fn.calls.push_back(std::move(site));
        }
    }
}

void
CallGraph::scanFile(const SourceFile &sf)
{
    const auto &toks = sf.tokens;
    std::vector<Scope> scopes;

    auto currentClass = [&]() -> std::string {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it)
            if (it->isClass)
                return it->name;
        return {};
    };

    std::size_t i = 0;
    while (i < toks.size()) {
        const Token &t = toks[i];

        if (t.kind == Tok::Punct) {
            if (t.text == "{")
                scopes.push_back({false, ""});
            else if (t.text == "}" && !scopes.empty())
                scopes.pop_back();
            ++i;
            continue;
        }

        // `struct X ... {` opens a class scope; `enum ... { }` bodies
        // are skipped outright (enumerators are not members).
        if (t.text == "enum") {
            std::size_t j = i + 1;
            while (j < toks.size() && toks[j].text != "{" &&
                   toks[j].text != ";")
                ++j;
            if (j < toks.size() && toks[j].text == "{")
                skipGroup(toks, j);
            i = j < toks.size() && toks[j].text == ";" ? j + 1 : j;
            continue;
        }
        if ((t.text == "struct" || t.text == "class" ||
             t.text == "union") &&
            i + 1 < toks.size() && toks[i + 1].kind == Tok::Ident) {
            std::size_t j = i + 2;
            // Skip attributes/base clause up to the body or a ';'
            // (forward declaration) or '(' (a declarator like
            // `struct stat st;` never has one in this repo).
            while (j < toks.size() && toks[j].text != "{" &&
                   toks[j].text != ";" && toks[j].text != "(" &&
                   toks[j].text != ")" && toks[j].text != ",")
                ++j;
            if (j < toks.size() && toks[j].text == "{") {
                scopes.push_back({true, toks[i + 1].text});
                i = j + 1;
                continue;
            }
            i = i + 2;
            continue;
        }

        if (isKeyword(t.text) || isTHMacro(t.text)) {
            ++i;
            continue;
        }

        // Candidate function declarator: Ident '(' ... ')'.
        if (!(i + 1 < toks.size() && toks[i + 1].text == "(")) {
            ++i;
            continue;
        }

        std::size_t j = i + 1;
        skipGroup(toks, j); // parameter list
        const std::size_t afterParams = j;

        // Swallow trailing qualifiers, collecting TH_REQUIRES locks.
        std::vector<std::vector<Token>> reqArgs;
        bool declarator = true;
        while (j < toks.size() && declarator) {
            const Token &q = toks[j];
            if (q.kind == Tok::Ident &&
                (q.text == "const" || q.text == "noexcept" ||
                 q.text == "override" || q.text == "final" ||
                 q.text == "mutable" || q.text == "throw")) {
                ++j;
                if (j < toks.size() && toks[j].text == "(")
                    skipGroup(toks, j);
                continue;
            }
            if (q.kind == Tok::Ident && isTHMacro(q.text)) {
                const bool isReq = q.text == "TH_REQUIRES";
                ++j;
                if (j < toks.size() && toks[j].text == "(") {
                    if (!isReq) {
                        skipGroup(toks, j);
                        continue;
                    }
                    // Split the argument list at top-level commas.
                    int d = 1;
                    std::size_t e = j + 1;
                    reqArgs.emplace_back();
                    while (e < toks.size() && d > 0) {
                        const Token &a = toks[e];
                        if (a.text == "(")
                            ++d;
                        else if (a.text == ")" && --d == 0)
                            break;
                        else if (a.text == "," && d == 1)
                            reqArgs.emplace_back();
                        else
                            reqArgs.back().push_back(a);
                        ++e;
                    }
                    j = e < toks.size() ? e + 1 : e;
                }
                continue;
            }
            if (q.kind == Tok::Punct && q.text == "->") {
                // Trailing return type: skip to the body or ';'.
                ++j;
                while (j < toks.size() && toks[j].text != "{" &&
                       toks[j].text != ";") {
                    if (toks[j].text == "(")
                        skipGroup(toks, j);
                    else
                        ++j;
                }
                continue;
            }
            if (q.kind == Tok::Punct && q.text == ":") {
                // Constructor initializer list: Ident group [, ...] {
                ++j;
                while (j < toks.size()) {
                    while (j < toks.size() &&
                           (toks[j].kind == Tok::Ident ||
                            toks[j].text == "::"))
                        ++j;
                    if (j < toks.size() && (toks[j].text == "(" ||
                                            toks[j].text == "{"))
                        skipGroup(toks, j);
                    else
                        break;
                    if (j < toks.size() && toks[j].text == ",")
                        ++j;
                    else
                        break;
                }
                continue;
            }
            break;
        }

        const bool isDef = j < toks.size() && toks[j].text == "{";
        const bool isDecl =
            !isDef && j < toks.size() && toks[j].text == ";";

        if (!isDef && !(isDecl && !reqArgs.empty())) {
            // Neither a definition nor a declaration we care about
            // (e.g. a macro invocation, an initializer, `= delete`).
            i = afterParams;
            continue;
        }

        // Resolve the name: `A::name` wins over the class scope.
        std::string klass;
        if (i >= 2 && toks[i - 1].text == "::" &&
            toks[i - 2].kind == Tok::Ident)
            klass = toks[i - 2].text;
        else
            klass = currentClass();
        const std::string simple = t.text;
        const std::string qualified =
            klass.empty() ? simple : klass + "::" + simple;

        std::vector<std::string> reqLocks;
        for (const auto &arg : reqArgs)
            if (!arg.empty())
                reqLocks.push_back(canonLock(arg, klass));

        if (isDecl) {
            auto &dst = declRequires_[qualified];
            for (const std::string &lock : reqLocks)
                if (std::find(dst.begin(), dst.end(), lock) ==
                    dst.end())
                    dst.push_back(lock);
            i = j + 1;
            continue;
        }

        FunctionDef fn;
        fn.qualified = qualified;
        fn.simple = simple;
        fn.klass = klass;
        fn.file = sf.relPath;
        fn.line = t.line;
        fn.requires_ = std::move(reqLocks);
        fn.bodyBegin = j + 1;
        std::size_t e = j;
        skipGroup(toks, e);
        fn.bodyEnd = e > 0 ? e - 1 : e; // exclude the closing '}'
        scanBody(sf, fn);
        fns_.push_back(std::move(fn));
        i = e;
    }
}

} // namespace th_lint
