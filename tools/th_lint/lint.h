/**
 * @file
 * th_lint — repo-invariant static analysis over this repository's own
 * sources (see DESIGN.md §9 and §14). Six passes, each guarding an
 * invariant that runtime tests structurally cannot:
 *
 *  1. hash/serializer field coverage — every field of the cache-key
 *     structs (CoreConfig, DtmOptions, DtmTriggers, IntervalOptions)
 *     must be folded into its hash function, and every field of the
 *     persisted structs must be referenced by both its encode and its
 *     decode function. A forgotten fold silently serves stale cache
 *     artifacts; a forgotten serializer field silently loses data on
 *     the round-trip — neither fails any test because the paper's
 *     claims are relative comparisons.
 *
 *  2. determinism — result-producing directories (src/core, thermal,
 *     power, dtm, interval, sim) must not call wall-clock or libc
 *     randomness sources, use std:: random engines (th::Rng is the
 *     only sanctioned generator), or declare std::unordered_{map,set}.
 *
 *  3. mutex annotation completeness — every mutex member under src/
 *     must be a th::Mutex referenced by at least one TH_GUARDED_BY /
 *     TH_REQUIRES / ... annotation in the same file; std::once_flag
 *     and condition-variable members must document what they guard
 *     with a `// th_lint: guards(<what>)` marker.
 *
 *  4. event-loop blocking — nothing reachable from `EventLoop::loop`
 *     or the EventHandler dispatch callbacks may call a blocking
 *     primitive (cv waits, joins, sleeps, the simulation entry
 *     points, blocking SimClient I/O) unless a
 *     `// th_lint: blocking-ok(<reason>)` marker vouches for it.
 *
 *  5. lock order — `th::LockGuard`/`th::UniqueLock` acquisition sites
 *     and TH_REQUIRES clauses feed a global acquired-before relation
 *     (held-lock sets propagate through the call graph); any cycle is
 *     reported as a potential deadlock.
 *
 *  6. schema drift — canonical fingerprints of every serialized
 *     struct's field list and codec field references are checked
 *     against the committed tools/th_lint/schema.lock; a drifted
 *     fingerprint without a bump of the matching schema constant
 *     (kWireSchemaVersion & co.) is an error.
 *
 * Escape hatches: `// th_lint: excluded(<reason>)` on a declaration's
 * line (or the line above) suppresses checks for that declaration;
 * `// th_lint: guards(<what>)` documents a once_flag or condition
 * variable; `// th_lint: blocking-ok(<reason>)` permits a blocking
 * call in loop-reachable code. An unparseable `th_lint` comment is
 * itself a diagnostic, so markers cannot rot.
 *
 * Implementation: a lightweight C++ tokenizer plus a heuristic
 * function-level call graph (tokenizer.cpp, callgraph.cpp) —
 * deliberately no libclang dependency so the linter builds everywhere
 * the repo builds.
 */

#ifndef TH_LINT_LINT_H
#define TH_LINT_LINT_H

#include <string>
#include <vector>

namespace th_lint {

/** One finding. Formatted as "file:line: th_lint(check): message". */
struct Diagnostic
{
    std::string file;
    int line = 0;
    std::string check;
    std::string message;
};

struct Options
{
    /** Repository root (the directory containing src/). */
    std::string root = ".";

    /**
     * Fixture mode (used by --self-test): a coverage rule whose struct
     * file or struct definition is absent is silently skipped, missing
     * determinism directories are ignored, absent event-loop dispatch
     * roots disable the blocking pass, and a missing schema.lock
     * disables the drift pass — so a fixture can be a minimal tree
     * exercising exactly one rule. In normal mode each of these is a
     * diagnostic — a renamed file must not quietly disable a check.
     */
    bool fixtureMode = false;
};

std::string formatDiagnostic(const Diagnostic &d);

/** All findings as a JSON array of {file, line, check, message}. */
std::string formatFindingsJson(const std::vector<Diagnostic> &diags);

/** One finding as a GitHub Actions `::error` workflow command. */
std::string formatDiagnosticGithub(const Diagnostic &d);

/** Run all checks; returns the (deterministically sorted) findings. */
std::vector<Diagnostic> runChecks(const Options &opts);

/**
 * Regenerate <root>/tools/th_lint/schema.lock from the live sources.
 * Returns false (with @p err set) when a struct or codec definition
 * cannot be fingerprinted.
 */
bool writeSchemaLock(const Options &opts, std::string &err);

/**
 * Self-test over a fixtures directory: every subdirectory is a mini
 * repo root whose `expect.txt` names a substring the single expected
 * diagnostic must contain (an empty expect.txt means "no diagnostics").
 * Prints one PASS/FAIL line per case; returns 0 iff all pass.
 */
int runSelfTest(const std::string &fixtures_dir);

} // namespace th_lint

#endif // TH_LINT_LINT_H
