/**
 * @file
 * th_lint — repo-invariant static analysis over this repository's own
 * sources (see DESIGN.md §9). Three checks, each guarding an invariant
 * that runtime tests structurally cannot:
 *
 *  1. hash/serializer field coverage — every field of the cache-key
 *     structs (CoreConfig, DtmOptions, DtmTriggers) must be folded into
 *     its hash function, and every field of the persisted structs
 *     (PerfStats, ActivityStats, CoreResult, DtmReport,
 *     DtmIntervalSample) must be referenced by both its encode and its
 *     decode function. A forgotten fold silently serves stale cache
 *     artifacts; a forgotten serializer field silently loses data on
 *     the round-trip — neither fails any test because the paper's
 *     claims are relative comparisons.
 *
 *  2. determinism — result-producing directories (src/core, thermal,
 *     power, dtm, sim) must not call wall-clock or libc randomness
 *     sources, use std:: random engines (th::Rng is the only sanctioned
 *     generator), or declare std::unordered_{map,set} (iteration order
 *     is unspecified; lookup-only uses carry an exclusion marker).
 *
 *  3. mutex annotation completeness — every mutex member under src/
 *     must be a th::Mutex referenced by at least one TH_GUARDED_BY /
 *     TH_REQUIRES / ... annotation in the same file, and every
 *     std::once_flag member must document what it guards, so clang's
 *     -Wthread-safety analysis actually covers the shared state.
 *
 * Escape hatch: `// th_lint: excluded(<reason>)` on the declaration's
 * line (or the line above) suppresses checks 1–3 for that declaration;
 * `// th_lint: guards(<what>)` documents a once_flag. An unparseable
 * `th_lint` comment is itself a diagnostic, so markers cannot rot.
 *
 * Implementation: a lightweight C++ tokenizer (comments, strings, and
 * preprocessor lines stripped; identifiers and punctuation kept with
 * line numbers) — deliberately no libclang dependency so the linter
 * builds everywhere the repo builds.
 */

#ifndef TH_LINT_LINT_H
#define TH_LINT_LINT_H

#include <string>
#include <vector>

namespace th_lint {

/** One finding. Formatted as "file:line: th_lint(check): message". */
struct Diagnostic
{
    std::string file;
    int line = 0;
    std::string check;
    std::string message;
};

struct Options
{
    /** Repository root (the directory containing src/). */
    std::string root = ".";

    /**
     * Fixture mode (used by --self-test): a coverage rule whose struct
     * file or struct definition is absent is silently skipped, and
     * missing determinism directories are ignored, so a fixture can be
     * a minimal tree exercising exactly one rule. In normal mode both
     * are diagnostics — a renamed file must not quietly disable a
     * check.
     */
    bool fixtureMode = false;
};

std::string formatDiagnostic(const Diagnostic &d);

/** Run all checks; returns the (deterministically sorted) findings. */
std::vector<Diagnostic> runChecks(const Options &opts);

/**
 * Self-test over a fixtures directory: every subdirectory is a mini
 * repo root whose `expect.txt` names a substring the single expected
 * diagnostic must contain (an empty expect.txt means "no diagnostics").
 * Prints one PASS/FAIL line per case; returns 0 iff all pass.
 */
int runSelfTest(const std::string &fixtures_dir);

} // namespace th_lint

#endif // TH_LINT_LINT_H
