/**
 * @file
 * Schema-drift pass: turns the "bump on change" comments next to the
 * wire/store schema constants into an enforced rule. For every
 * serialized struct in the coverage table the pass fingerprints the
 * declared field list *and* the ordered field references inside each
 * encode/decode function (so a reorder drifts, not just an add or
 * drop), then compares fingerprint + guard-constant values against the
 * committed tools/th_lint/schema.lock:
 *
 *  - fingerprint changed, guard constants unchanged  → ERROR naming
 *    the struct and the constant that should have been bumped;
 *  - fingerprint changed, a guard constant bumped    → reminder to
 *    regenerate schema.lock (th_lint --write-schema-lock);
 *  - fingerprint unchanged, a constant changed       → stale lock,
 *    same reminder;
 *  - entry or lock file missing                      → told to run
 *    --write-schema-lock (fixture mode: a missing lock file simply
 *    disables the pass so unrelated fixtures stay single-purpose).
 */

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "internal.h"

namespace fs = std::filesystem;

namespace th_lint {

namespace {

constexpr const char *kLockRelPath = "tools/th_lint/schema.lock";

struct GuardConst
{
    const char *name;
    const char *file;
};

struct SchemaGuard
{
    const char *structName;
    std::vector<GuardConst> consts;
};

/** Which schema constant(s) guard each serialized struct. A drifted
 *  fingerprint is acceptable when ANY of the listed constants moved. */
const std::vector<SchemaGuard> &
schemaGuards()
{
    static const GuardConst wire = {"kWireSchemaVersion",
                                    "src/io/request.h"};
    static const GuardConst store = {"kStoreSchemaVersion",
                                     "src/store/artifact_store.h"};
    static const GuardConst cres = {"kCoreResultSchemaVersion",
                                    "src/io/serialize.h"};
    static const GuardConst dtmr = {"kDtmReportSchemaVersion",
                                    "src/io/serialize.h"};
    static const GuardConst imdl = {"kIntervalModelSchemaVersion",
                                    "src/io/serialize.h"};
    static const GuardConst mcre = {"kMulticoreReportSchemaVersion",
                                    "src/io/serialize.h"};
    static const std::vector<SchemaGuard> guards = {
        {"SimRequest", {wire}},
        {"SimResponse", {wire}},
        {"PerfStats", {store, cres}},
        {"ActivityStats", {store, cres}},
        {"CoreResult", {store, cres}},
        {"DtmReport", {store, dtmr}},
        {"DtmIntervalSample", {store, dtmr}},
        {"IntervalModel", {imdl}},
        {"IntervalPhase", {imdl}},
        {"IntervalTick", {imdl}},
        {"IntervalThrottlePoint", {imdl}},
        {"IntervalThrottleBin", {imdl}},
        {"MulticoreReport", {store, mcre}},
        {"MulticoreCoreStats", {store, mcre}},
        {"MulticoreBankStats", {store, mcre}},
    };
    return guards;
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Value of `<name> = <integer>` in the raw text of root/rel, or ""
 *  when absent (the tokenizer drops numbers, so read the raw file). */
std::string
constantValue(const std::string &root, const std::string &rel,
              const std::string &name)
{
    std::ifstream in(fs::path(root) / rel,
                     std::ios::in | std::ios::binary);
    if (!in)
        return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    std::size_t pos = 0;
    while ((pos = text.find(name, pos)) != std::string::npos) {
        const std::size_t after = pos + name.size();
        const bool wholeWord =
            (pos == 0 || !(std::isalnum(static_cast<unsigned char>(
                               text[pos - 1])) ||
                           text[pos - 1] == '_')) &&
            (after >= text.size() ||
             !(std::isalnum(
                   static_cast<unsigned char>(text[after])) ||
               text[after] == '_'));
        pos = after;
        if (!wholeWord)
            continue;
        std::size_t i = pos;
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        if (i >= text.size() || text[i] != '=')
            continue;
        ++i;
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        std::string digits;
        while (i < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i])))
            digits += text[i++];
        if (!digits.empty())
            return digits;
    }
    return {};
}

struct Entry
{
    std::string structName;
    std::string fingerprint; ///< hex64 of the canonical description.
    /** Guard constant name -> current value, in guard-table order. */
    std::vector<std::pair<std::string, std::string>> consts;
};

/**
 * Compute the current entry for @p guard, or return false when the
 * struct (or a codec definition) is not present — the coverage pass
 * owns reporting rule rot, so the caller skips silently.
 */
bool
computeEntry(FileSet &files, const SchemaGuard &guard, Entry &out,
             std::string *missingConst)
{
    const CoverageRule *rule = nullptr;
    for (const CoverageRule &r : coverageRules())
        if (std::string(r.structName) == guard.structName) {
            rule = &r;
            break;
        }
    if (rule == nullptr)
        return false;

    const SourceFile &sf = files.get(rule->structFile);
    std::vector<Field> fields;
    if (!sf.loaded || !parseStructFields(sf, rule->structName, fields))
        return false;

    std::set<std::string> fieldNames;
    std::string canon = std::string(rule->structName) + "\n";
    for (const Field &f : fields) {
        if (f.excluded)
            continue;
        fieldNames.insert(f.name);
        canon += "field " + f.name + "\n";
    }
    for (const FnRef &fn : rule->fns) {
        const SourceFile &ff = files.get(fn.file);
        std::vector<std::string> seq;
        if (!ff.loaded || !functionBodyIdentSequence(ff, fn.name, seq))
            return false;
        canon += std::string("fn ") + fn.name + "\n";
        for (const std::string &ident : seq)
            if (fieldNames.count(ident))
                canon += ident + "\n";
    }

    out.structName = guard.structName;
    out.fingerprint = hex64(fnv1a(canon));
    for (const GuardConst &c : guard.consts) {
        const std::string v =
            constantValue(files.root(), c.file, c.name);
        if (v.empty() && missingConst != nullptr &&
            missingConst->empty())
            *missingConst = std::string(c.name) + " (" + c.file + ")";
        out.consts.emplace_back(c.name, v);
    }
    return true;
}

struct LockEntry
{
    std::string fingerprint;
    std::map<std::string, std::string> consts;
};

bool
readLock(const std::string &root,
         std::map<std::string, LockEntry> &out)
{
    std::ifstream in(fs::path(root) / kLockRelPath);
    if (!in)
        return false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string structName, fp, kv;
        if (!(ls >> structName >> fp))
            continue;
        LockEntry e;
        e.fingerprint = fp;
        while (ls >> kv) {
            const std::size_t eq = kv.find('=');
            if (eq != std::string::npos)
                e.consts[kv.substr(0, eq)] = kv.substr(eq + 1);
        }
        out[structName] = e;
    }
    return true;
}

std::string
guardList(const Entry &e)
{
    std::string s;
    for (std::size_t i = 0; i < e.consts.size(); ++i)
        s += (i ? " or " : "") + e.consts[i].first;
    return s;
}

} // namespace

void
checkSchemaDrift(FileSet &files, const Options &opts,
                 std::vector<Diagnostic> &diags)
{
    std::map<std::string, LockEntry> lock;
    const bool haveLock = readLock(files.root(), lock);
    if (!haveLock) {
        if (!opts.fixtureMode)
            diags.push_back(
                {kLockRelPath, 0, "schema-drift",
                 "schema.lock is missing; generate it with "
                 "th_lint --root . --write-schema-lock and commit it"});
        return;
    }

    std::set<std::string> known;
    for (const SchemaGuard &guard : schemaGuards()) {
        known.insert(guard.structName);
        Entry now;
        std::string missingConst;
        if (!computeEntry(files, guard, now, &missingConst))
            continue; // coverage pass reports rule rot in normal mode
        if (!missingConst.empty()) {
            if (!opts.fixtureMode)
                diags.push_back(
                    {kLockRelPath, 0, "schema-drift",
                     "schema constant " + missingConst +
                         " not found — update the guard table in "
                         "tools/th_lint/schema.cpp if it moved"});
            continue;
        }

        auto it = lock.find(now.structName);
        if (it == lock.end()) {
            diags.push_back(
                {kLockRelPath, 0, "schema-drift",
                 "no schema.lock entry for " + now.structName +
                     "; regenerate with th_lint --write-schema-lock"});
            continue;
        }
        const LockEntry &old = it->second;

        bool constBumped = false;
        bool constRecorded = true;
        for (const auto &[name, value] : now.consts) {
            auto cit = old.consts.find(name);
            if (cit == old.consts.end()) {
                constRecorded = false;
                continue;
            }
            if (cit->second != value)
                constBumped = true;
        }
        if (!constRecorded) {
            diags.push_back(
                {kLockRelPath, 0, "schema-drift",
                 "schema.lock entry for " + now.structName +
                     " predates the current guard table; regenerate "
                     "with th_lint --write-schema-lock"});
            continue;
        }

        const bool drifted = old.fingerprint != now.fingerprint;
        if (drifted && !constBumped) {
            diags.push_back(
                {kLockRelPath, 0, "schema-drift",
                 "serialized layout of " + now.structName +
                     " drifted (fingerprint " + old.fingerprint +
                     " -> " + now.fingerprint +
                     ") without a bump of " + guardList(now) +
                     "; bump the constant, then regenerate "
                     "schema.lock with th_lint --write-schema-lock"});
        } else if (drifted || constBumped) {
            diags.push_back(
                {kLockRelPath, 0, "schema-drift",
                 "schema.lock entry for " + now.structName +
                     " is stale (the " +
                     std::string(drifted ? "fingerprint"
                                         : "guard constant") +
                     " changed); regenerate with th_lint "
                     "--write-schema-lock"});
        }
    }

    if (!opts.fixtureMode) {
        for (const auto &[name, e] : lock)
            if (!known.count(name))
                diags.push_back(
                    {kLockRelPath, 0, "schema-drift",
                     "stale schema.lock entry for unknown struct " +
                         name + "; regenerate with th_lint "
                                "--write-schema-lock"});
    }
}

bool
writeSchemaLock(const Options &opts, std::string &err)
{
    FileSet files(opts.root);
    std::ostringstream out;
    out << "# th_lint schema.lock — canonical fingerprints of every "
           "serialized struct's\n"
        << "# field list and codec field references, plus the guard "
           "constants recorded\n"
        << "# at generation time. Regenerate after an intentional "
           "schema change with:\n"
        << "#   th_lint --root . --write-schema-lock\n";
    for (const SchemaGuard &guard : schemaGuards()) {
        Entry e;
        std::string missingConst;
        if (!computeEntry(files, guard, e, &missingConst)) {
            if (opts.fixtureMode)
                continue;
            err = std::string("cannot fingerprint ") +
                  guard.structName +
                  " (struct or codec definition not found)";
            return false;
        }
        if (!missingConst.empty() && !opts.fixtureMode) {
            err = "schema constant " + missingConst + " not found";
            return false;
        }
        out << e.structName << " " << e.fingerprint;
        for (const auto &[name, value] : e.consts)
            out << " " << name << "=" << value;
        out << "\n";
    }
    const fs::path path = fs::path(opts.root) / kLockRelPath;
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    std::ofstream f(path, std::ios::out | std::ios::trunc);
    if (!f) {
        err = "cannot write " + path.string();
        return false;
    }
    f << out.str();
    return true;
}

} // namespace th_lint
