/**
 * @file
 * th_serve — the networked simulation service. Binds a TCP port,
 * answers TSRV-protocol requests (see net/protocol.h) with the same
 * reports th_run prints locally, coalesces identical in-flight
 * simulations, and sheds overload as structured busy replies. SIGTERM
 * and SIGINT drain gracefully: admitted simulations finish and their
 * responses are delivered before the process exits.
 *
 * With one or more --backend flags the process runs as a cluster
 * front-end instead (net/router.h): it owns no System and
 * consistent-hashes each request across the given th_serve shards,
 * making their single-flight dedup cluster-wide. Clients connect to
 * either tier with the identical protocol.
 *
 * Usage:
 *   th_serve [--host A] [--port N] [--store DIR] [--workers N]
 *            [--queue N] [--insts N] [--warmup N]
 *   th_serve --backend H:P [--backend H:P ...] [--host A] [--port N]
 *            [--workers N] [--queue N]
 *
 * --port 0 (the default) binds an ephemeral port; the chosen port is
 * printed on the "listening on" line, which scripts can parse.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/version.h"
#include "net/router.h"
#include "net/server.h"

using namespace th;

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "th_serve: %s\n\n", msg);
    std::fprintf(stderr,
        "usage:\n"
        "  th_serve [--host A] [--port N] [--store DIR] [--workers N]\n"
        "           [--queue N] [--insts N] [--warmup N]\n"
        "  th_serve --backend H:P [--backend H:P ...]\n"
        "           [--host A] [--port N] [--workers N] [--queue N]\n"
        "\n"
        "Serves the simulation surface over TCP (th_run --connect).\n"
        "--port 0 binds an ephemeral port, printed on startup.\n"
        "--store enables the persistent artifact store (also honours\n"
        "TH_STORE_DIR). With --backend the process is a cluster router\n"
        "that shards requests across th_serve backends by consistent\n"
        "hash of the request key. SIGTERM/SIGINT drain in-flight work,\n"
        "then exit.\n");
    std::exit(2);
}

std::uint64_t
parseU64(const std::string &s, const char *flag)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0') {
        std::fprintf(stderr, "th_serve: %s expects a number, got '%s'\n",
                     flag, s.c_str());
        std::exit(2);
    }
    return v;
}

/** Park until SIGTERM/SIGINT, then run the tier's drain. */
template <typename ServerT>
int
serveUntilSignalled(ServerT &server)
{
    while (!g_stop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::printf("draining...\n");
    std::fflush(stdout);
    server.shutdown();
    std::printf("drained, exiting\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ServerOptions opts;
    RouterOptions router_opts;
    bool workers_set = false;
    bool queue_set = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                usage((std::string(flag) + " requires a value").c_str());
            return argv[++i];
        };
        if (a == "--host")
            opts.host = value("--host");
        else if (a == "--port")
            opts.port =
                static_cast<std::uint16_t>(parseU64(value("--port"),
                                                    "--port"));
        else if (a == "--store")
            opts.sim.storeDir = value("--store");
        else if (a == "--workers") {
            opts.workers =
                static_cast<int>(parseU64(value("--workers"),
                                          "--workers"));
            workers_set = true;
        } else if (a == "--queue") {
            opts.queueCapacity = parseU64(value("--queue"), "--queue");
            queue_set = true;
        } else if (a == "--backend")
            router_opts.backends.push_back(value("--backend"));
        else if (a == "--insts")
            opts.sim.instructions = parseU64(value("--insts"), "--insts");
        else if (a == "--warmup")
            opts.sim.warmupInstructions =
                parseU64(value("--warmup"), "--warmup");
        else if (a == "--version") {
            std::printf("%s\n", buildInfo());
            return 0;
        } else if (a == "--help" || a == "-h")
            usage();
        else
            usage(("unknown flag '" + a + "'").c_str());
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    if (!router_opts.backends.empty()) {
        if (!opts.sim.storeDir.empty())
            usage("--store is a backend flag (the router owns no "
                  "System); set it on each th_serve backend");
        router_opts.host = opts.host;
        router_opts.port = opts.port;
        if (workers_set)
            router_opts.workers = opts.workers;
        if (queue_set)
            router_opts.queueCapacity = opts.queueCapacity;
        RouterServer router(router_opts);
        std::string err;
        if (!router.start(err)) {
            std::fprintf(stderr, "th_serve: %s\n", err.c_str());
            return 1;
        }
        std::printf("%s\n", buildInfo());
        std::printf("routing on %s:%u (%zu backends, %d workers, "
                    "queue %zu)\n",
                    router_opts.host.c_str(),
                    static_cast<unsigned>(router.port()),
                    router_opts.backends.size(),
                    router_opts.workers < 1 ? 1 : router_opts.workers,
                    router_opts.queueCapacity);
        std::fflush(stdout);
        return serveUntilSignalled(router);
    }

    SimServer server(opts);
    std::string err;
    if (!server.start(err)) {
        std::fprintf(stderr, "th_serve: %s\n", err.c_str());
        return 1;
    }
    std::printf("%s\n", buildInfo());
    std::printf("listening on %s:%u (%d workers, queue %zu%s)\n",
                opts.host.c_str(), static_cast<unsigned>(server.port()),
                opts.workers < 1 ? 1 : opts.workers, opts.queueCapacity,
                server.system().storeEnabled() ? ", store on" : "");
    std::fflush(stdout);
    return serveUntilSignalled(server);
}
