/**
 * @file
 * th_run — the Thermal Herding experiment driver. One binary for
 * running the paper's figure experiments against the persistent
 * artifact store, recording and replaying .thtrace files, and
 * maintaining the store.
 *
 * Usage:
 *   th_run fig8|fig9|fig10|width|sweep [--benchmarks a,b,c]
 *          [--insts N] [--warmup N] [--store DIR]
 *   th_run core [--benchmarks b] [--config NAME]
 *   th_run multicore [--cores N] [--banks N] [--benchmarks a,b]
 *   th_run trace record <benchmark> <out.thtrace> [--records N]
 *   th_run trace info <file.thtrace>
 *   th_run trace run <file.thtrace> [--config NAME] [--insts N]
 *          [--warmup N]
 *   th_run fit [--benchmarks b] [--config NAME]
 *   th_run sweep --fast|--exact [--trigger-lo K] [--trigger-hi K]
 *          [--trigger-steps N] [--anchor-stride N]
 *   th_run store ls|gc|verify [--dir DIR] [--max-bytes N] [--dry-run]
 *   th_run <cmd> --connect host:port   # run against a th_serve server
 *   th_run ping|metrics --connect host:port
 *   th_run --version
 *
 * The experiment commands honour TH_STORE_DIR (or --store): a cold run
 * simulates and persists every (benchmark, config) CoreResult; a warm
 * re-run loads them all from disk and prints matching hit counters.
 *
 * With --connect, the same experiment subcommands are sent to a
 * th_serve server instead of simulated locally; the response body is
 * rendered through the identical report code, so served and local
 * output are byte-identical (counter footers aside — those describe
 * whichever System did the work).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "common/version.h"
#include "io/trace_file.h"
#include "net/client.h"
#include "sim/experiments.h"
#include "sim/report.h"
#include "store/artifact_store.h"
#include "trace/suites.h"

using namespace th;

namespace {

/** Simulation window applied when --insts / --warmup are not given. */
constexpr std::uint64_t kDefaultInsts = 200000;
constexpr std::uint64_t kDefaultWarmup = 100000;

/** Tiny flag parser: positional args + --name value pairs. */
struct Args
{
    std::vector<std::string> pos;

    std::string benchmarks;
    std::string config = "Base";
    std::string dir;
    // 0 = not given: local runs fall back to kDefault*; client mode
    // forwards the 0 so the server applies its own fixed window.
    std::uint64_t insts = 0;
    std::uint64_t warmup = 0;
    std::uint64_t records = 0;
    std::uint64_t maxBytes = 256ULL << 20;

    // DTM knobs (0 / empty = keep the DtmOptions default).
    std::string policy = "clockgate";
    double trigger = 0.0;
    std::uint64_t intervals = 0;
    std::uint64_t intervalCycles = 0;
    double dilation = 0.0;
    std::uint64_t grid = 0;
    std::string solver; ///< "" = DtmOptions default (sor).

    // Interval fast-path knobs.
    bool fast = false;      ///< dtm/sweep: replay fitted models.
    bool exact = false;     ///< sweep: exact family sweep (baseline).
    bool configGiven = false; ///< --config was passed explicitly.
    // 0 = keep the FamilySweepOptions / IntervalOptions default.
    double triggerLo = 0.0;
    double triggerHi = 0.0;
    std::uint64_t triggerSteps = 0;
    std::uint64_t anchorStride = 0;
    std::uint64_t fitCycles = 0;
    std::uint64_t fitInterval = 0;

    // Many-core knobs (0 = multicore runs the full coupling study).
    std::uint64_t cores = 0;
    std::uint64_t banks = 0;

    // Store maintenance.
    bool dryRun = false; ///< store gc: print the plan, evict nothing.

    // Client mode ("" = run locally).
    std::string connect;
    std::uint64_t deadlineMs = 0;
};

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "th_run: %s\n\n", msg);
    std::fprintf(stderr,
        "usage:\n"
        "  th_run fig8|fig9|fig10|width|sweep [--benchmarks a,b,c]\n"
        "         [--insts N] [--warmup N] [--store DIR]\n"
        "  th_run trace record <benchmark> <out.thtrace> [--records N]\n"
        "  th_run trace info <file.thtrace>\n"
        "  th_run trace run <file.thtrace> [--config NAME] [--insts N]\n"
        "         [--warmup N]\n"
        "  th_run dtm [--benchmarks b] [--policy none|clockgate|fetch]\n"
        "         [--trigger K] [--intervals N] [--interval-cycles N]\n"
        "         [--dilation X] [--grid N] [--solver sor|multigrid]\n"
        "         [--store DIR] [--fast]\n"
        "  th_run fit [--benchmarks b] [--config NAME] [--fit-cycles N]\n"
        "         [--fit-interval N] [--store DIR]\n"
        "  th_run sweep --fast|--exact [--benchmarks b] [--config NAME]\n"
        "         [--trigger-lo K] [--trigger-hi K] [--trigger-steps N]\n"
        "         [--anchor-stride N] [--fit-cycles N] [--fit-interval N]\n"
        "         [--intervals N] [--interval-cycles N] [--grid N]\n"
        "  th_run core [--benchmarks b] [--config NAME]\n"
        "  th_run multicore [--cores N] [--banks N] [--benchmarks a,b]\n"
        "         [--config NAME] [--policy ...] [--trigger K]\n"
        "         [--intervals N] [--interval-cycles N] [--grid N]\n"
        "         [--store DIR]\n"
        "  th_run store ls|gc|verify [--dir DIR] [--max-bytes N]\n"
        "         [--dry-run]\n"
        "  th_run <experiment> --connect host:port [--deadline-ms N]\n"
        "  th_run ping|metrics --connect host:port\n"
        "  th_run --version\n"
        "\n"
        "The experiment commands persist CoreResults to --store /\n"
        "TH_STORE_DIR when set; a warm re-run then skips simulation.\n"
        "th_run dtm compares closed-loop thermal throttling on the\n"
        "planar, naive-3D, and 3D+herding designs; with a store, a warm\n"
        "rerun replays the cached reports without any simulation.\n"
        "th_run fit builds a config-family interval model; sweep --fast\n"
        "replays it over a (policy x trigger) DTM grid with measured\n"
        "error bounds; sweep --exact runs the same grid cycle-exactly.\n"
        "th_run multicore --cores N runs one N-core stack (the mix in\n"
        "--benchmarks cycles over the cores); without --cores it runs\n"
        "the full neighbor-coupling study (N=1/2/4/8, herding off/on).\n");
    std::exit(2);
}

std::uint64_t
parseU64(const std::string &s, const char *flag)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        usage(strformat("%s expects a number, got '%s'", flag,
                        s.c_str()).c_str());
    return v;
}

double
parseF64(const std::string &s, const char *flag)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        usage(strformat("%s expects a number, got '%s'", flag,
                        s.c_str()).c_str());
    return v;
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                usage(strformat("%s requires a value", flag).c_str());
            return argv[++i];
        };
        if (a == "--benchmarks")
            args.benchmarks = value("--benchmarks");
        else if (a == "--config") {
            args.config = value("--config");
            args.configGiven = true;
        } else if (a == "--store" || a == "--dir")
            args.dir = value(a.c_str());
        else if (a == "--insts")
            args.insts = parseU64(value("--insts"), "--insts");
        else if (a == "--warmup")
            args.warmup = parseU64(value("--warmup"), "--warmup");
        else if (a == "--records")
            args.records = parseU64(value("--records"), "--records");
        else if (a == "--max-bytes")
            args.maxBytes = parseU64(value("--max-bytes"), "--max-bytes");
        else if (a == "--policy")
            args.policy = value("--policy");
        else if (a == "--solver")
            args.solver = value("--solver");
        else if (a == "--trigger")
            args.trigger = parseF64(value("--trigger"), "--trigger");
        else if (a == "--intervals")
            args.intervals = parseU64(value("--intervals"), "--intervals");
        else if (a == "--interval-cycles")
            args.intervalCycles =
                parseU64(value("--interval-cycles"), "--interval-cycles");
        else if (a == "--dilation")
            args.dilation = parseF64(value("--dilation"), "--dilation");
        else if (a == "--grid")
            args.grid = parseU64(value("--grid"), "--grid");
        else if (a == "--cores")
            args.cores = parseU64(value("--cores"), "--cores");
        else if (a == "--banks")
            args.banks = parseU64(value("--banks"), "--banks");
        else if (a == "--fast")
            args.fast = true;
        else if (a == "--exact")
            args.exact = true;
        else if (a == "--dry-run")
            args.dryRun = true;
        else if (a == "--trigger-lo")
            args.triggerLo = parseF64(value("--trigger-lo"), "--trigger-lo");
        else if (a == "--trigger-hi")
            args.triggerHi = parseF64(value("--trigger-hi"), "--trigger-hi");
        else if (a == "--trigger-steps")
            args.triggerSteps =
                parseU64(value("--trigger-steps"), "--trigger-steps");
        else if (a == "--anchor-stride")
            args.anchorStride =
                parseU64(value("--anchor-stride"), "--anchor-stride");
        else if (a == "--fit-cycles")
            args.fitCycles = parseU64(value("--fit-cycles"), "--fit-cycles");
        else if (a == "--fit-interval")
            args.fitInterval =
                parseU64(value("--fit-interval"), "--fit-interval");
        else if (a == "--connect")
            args.connect = value("--connect");
        else if (a == "--deadline-ms")
            args.deadlineMs =
                parseU64(value("--deadline-ms"), "--deadline-ms");
        else if (a == "--version") {
            std::printf("%s\n", buildInfo());
            std::exit(0);
        } else if (a == "--help" || a == "-h")
            usage();
        else if (!a.empty() && a[0] == '-')
            usage(strformat("unknown flag '%s'", a.c_str()).c_str());
        else
            args.pos.push_back(a);
    }
    return args;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string item = csv.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

ConfigKind
configByName(const std::string &name)
{
    const ConfigKind kinds[] = {ConfigKind::Base,   ConfigKind::TH,
                                ConfigKind::Pipe,   ConfigKind::Fast,
                                ConfigKind::ThreeD, ConfigKind::ThreeDNoTH};
    for (ConfigKind k : kinds)
        if (name == configName(k))
            return k;
    usage(strformat("unknown config '%s' (Base, TH, Pipe, Fast, 3D, "
                    "3D-noTH)", name.c_str()).c_str());
}

System
makeSystem(const Args &args)
{
    SimOptions opts;
    opts.instructions = args.insts ? args.insts : kDefaultInsts;
    opts.warmupInstructions = args.warmup ? args.warmup : kDefaultWarmup;
    opts.storeDir = args.dir; // Empty falls back to TH_STORE_DIR.
    return System(opts);
}

void
printCounters(const System &sys)
{
    std::fputs(renderCounters(sys).c_str(), stdout);
}

// -------------------------------------------------------------------
// Experiment commands. The report bodies come from sim/report.h — the
// same renderers th_serve answers with, which is what keeps local and
// served output byte-identical.
// -------------------------------------------------------------------

int
cmdExperiment(const std::string &what, const Args &args)
{
    System sys = makeSystem(args);
    const std::vector<std::string> benchmarks =
        splitList(args.benchmarks);
    for (const std::string &b : benchmarks)
        if (!hasBenchmark(b))
            usage(strformat("unknown benchmark '%s'", b.c_str()).c_str());

    if (what == "fig8" || what == "sweep")
        std::fputs(renderFig8(runFigure8(sys, benchmarks)).c_str(),
                   stdout);
    if (what == "fig9" || what == "sweep")
        std::fputs(renderFig9(runFigure9(sys, benchmarks)).c_str(),
                   stdout);
    if (what == "fig10" || what == "sweep")
        std::fputs(renderFig10(runFigure10(sys, benchmarks)).c_str(),
                   stdout);
    if (what == "width")
        std::fputs(renderWidth(runWidthStudy(sys, benchmarks)).c_str(),
                   stdout);
    printCounters(sys);
    return 0;
}

int
cmdCore(const Args &args)
{
    const std::vector<std::string> benchmarks =
        splitList(args.benchmarks);
    if (benchmarks.size() > 1)
        usage("core takes a single --benchmarks entry");
    const std::string benchmark =
        benchmarks.empty() ? System::kPowerReferenceBenchmark
                           : benchmarks[0];
    if (!hasBenchmark(benchmark))
        usage(strformat("unknown benchmark '%s'",
                        benchmark.c_str()).c_str());
    System sys = makeSystem(args);
    const CoreResult r =
        sys.runCore(benchmark, configByName(args.config));
    std::fputs(renderCoreRun(benchmark, args.config, r).c_str(), stdout);
    printCounters(sys);
    return 0;
}

// -------------------------------------------------------------------
// DTM command.
// -------------------------------------------------------------------

DtmOptions
dtmOptionsOf(const Args &args)
{
    DtmOptions opts;
    if (!dtmPolicyByName(args.policy, opts.policy))
        usage(strformat("unknown policy '%s' (none, clockgate, fetch)",
                        args.policy.c_str()).c_str());
    if (args.trigger > 0.0)
        opts.triggers.triggerK = args.trigger;
    if (args.intervals > 0)
        opts.maxIntervals = static_cast<int>(args.intervals);
    if (args.intervalCycles > 0)
        opts.intervalCycles = args.intervalCycles;
    if (args.dilation > 0.0)
        opts.timeDilation = args.dilation;
    if (args.grid > 0)
        opts.gridN = static_cast<int>(args.grid);
    if (!args.solver.empty() &&
        !solverKindByName(args.solver, &opts.solver))
        usage(strformat("unknown solver '%s' (sor, multigrid)",
                        args.solver.c_str()).c_str());
    return opts;
}

/** Resolve the single --benchmarks entry of @p cmd (default mpeg2). */
std::string
singleBenchmark(const Args &args, const char *cmd)
{
    const std::vector<std::string> benchmarks =
        splitList(args.benchmarks);
    if (benchmarks.size() > 1)
        usage(strformat("%s takes a single --benchmarks entry",
                        cmd).c_str());
    const std::string benchmark =
        benchmarks.empty() ? System::kPowerReferenceBenchmark
                           : benchmarks[0];
    if (!hasBenchmark(benchmark))
        usage(strformat("unknown benchmark '%s'",
                        benchmark.c_str()).c_str());
    return benchmark;
}

IntervalOptions
intervalOptionsOf(const Args &args)
{
    IntervalOptions iopts;
    if (args.fitCycles > 0)
        iopts.fitCycles = args.fitCycles;
    if (args.fitInterval > 0)
        iopts.fitIntervalCycles = args.fitInterval;
    return iopts;
}

int
cmdDtm(const Args &args)
{
    System sys = makeSystem(args);
    const DtmOptions opts = dtmOptionsOf(args);
    const std::string benchmark = singleBenchmark(args, "dtm");

    // --fast replays fitted interval models instead of stepping the
    // cycle-accurate core; the report grows a measured error line. The
    // default path is byte-identical to before the fast path existed.
    const DtmStudyData data = args.fast
        ? runDtmStudyFast(sys, benchmark, opts, intervalOptionsOf(args))
        : runDtmStudy(sys, benchmark, opts);
    std::fputs(renderDtm(data, opts).c_str(), stdout);
    printCounters(sys);
    return 0;
}

// -------------------------------------------------------------------
// Many-core command.
// -------------------------------------------------------------------

int
cmdMulticore(const Args &args)
{
    if (args.cores > 64)
        usage("--cores out of range (max 64)");
    if (args.banks > 64)
        usage("--banks out of range (max 64)");
    MulticoreConfig mc;
    mc.benchmarks = splitList(args.benchmarks);
    for (const std::string &b : mc.benchmarks)
        if (!hasBenchmark(b))
            usage(strformat("unknown benchmark '%s'", b.c_str()).c_str());
    if (args.banks > 0)
        mc.l2Banks = static_cast<int>(args.banks);
    mc.dtm = dtmOptionsOf(args);

    System sys = makeSystem(args);
    if (args.cores > 0) {
        // One stack at the requested core count (default: full 3D).
        mc.numCores = static_cast<int>(args.cores);
        const ConfigKind kind = args.configGiven
            ? configByName(args.config) : ConfigKind::ThreeD;
        std::fputs(renderMulticore(sys.runMulticore(kind, mc)).c_str(),
                   stdout);
    } else {
        std::fputs(renderMulticoreStudy(runMulticoreStudy(sys, mc))
                       .c_str(),
                   stdout);
    }
    printCounters(sys);
    return 0;
}

// -------------------------------------------------------------------
// Interval fast-path commands.
// -------------------------------------------------------------------

/** The config a family command targets: --config, else the naive 3D
 *  stack (the family that actually trips DTM across the sweep). */
ConfigKind
familyConfigOf(const Args &args)
{
    return args.configGiven ? configByName(args.config)
                            : ConfigKind::ThreeDNoTH;
}

int
cmdFit(const Args &args)
{
    System sys = makeSystem(args);
    const std::string benchmark = singleBenchmark(args, "fit");
    const ConfigKind kind = familyConfigOf(args);
    const IntervalModel m =
        sys.runIntervalFit(benchmark, kind, intervalOptionsOf(args));
    std::printf("fitted %s on %s: %zu phases over %llu cycles "
                "(%llu instructions), family %016llx\n",
                benchmark.c_str(), configName(kind), m.phases.size(),
                (unsigned long long)m.totalCycles,
                (unsigned long long)m.totalInstructions,
                (unsigned long long)m.familyHash);
    printCounters(sys);
    return 0;
}

int
cmdFamilySweep(const Args &args)
{
    System sys = makeSystem(args);
    const std::string benchmark = singleBenchmark(args, "sweep");

    FamilySweepOptions opts;
    opts.fast = !args.exact;
    opts.config = familyConfigOf(args);
    opts.dtm = dtmOptionsOf(args);
    // The family grid steps the transient solver hundreds of times;
    // default to a coarse thermal grid unless --grid asks otherwise
    // (applied to both modes so fast and exact stay comparable).
    if (args.grid == 0)
        opts.dtm.gridN = 8;
    if (args.triggerLo > 0.0)
        opts.triggerLoK = args.triggerLo;
    if (args.triggerHi > 0.0)
        opts.triggerHiK = args.triggerHi;
    if (args.triggerSteps > 0)
        opts.triggerSteps = static_cast<int>(args.triggerSteps);
    if (args.anchorStride > 0)
        opts.anchorStride = static_cast<int>(args.anchorStride);
    opts.interval = intervalOptionsOf(args);

    const auto t0 = std::chrono::steady_clock::now();
    const FamilySweepData data = runFamilySweep(sys, benchmark, opts);
    const auto t1 = std::chrono::steady_clock::now();
    std::fputs(renderFamilySweep(data, opts).c_str(), stdout);
    // Wall-clock lives here in the tools layer, outside the
    // deterministic renderers; CI's speedup assertion greps this line.
    std::printf("sweep wall ms: %lld\n",
                static_cast<long long>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        t1 - t0)
                        .count()));
    printCounters(sys);
    return 0;
}

// -------------------------------------------------------------------
// Trace commands.
// -------------------------------------------------------------------

int
cmdTraceRecord(const Args &args)
{
    if (args.pos.size() != 4)
        usage("trace record needs <benchmark> <out.thtrace>");
    const std::string &benchmark = args.pos[2];
    const std::string &path = args.pos[3];
    if (!hasBenchmark(benchmark))
        usage(strformat("unknown benchmark '%s'", benchmark.c_str())
                  .c_str());
    const BenchmarkProfile &profile = benchmarkByName(benchmark);

    // Record enough of the stream to drive a full simulation window:
    // the core fetches ahead of commit, so pad by the maximum possible
    // in-flight population plus redirect slack.
    const std::uint64_t records = args.records
        ? args.records
        : (args.insts ? args.insts : kDefaultInsts) +
              (args.warmup ? args.warmup : kDefaultWarmup) + 8192;

    SyntheticTrace trace(profile);
    std::string err;
    if (!recordTrace(path, trace, records, profile.name, profile.suite,
                     profile.seed, &err)) {
        std::fprintf(stderr, "th_run: %s\n", err.c_str());
        return 1;
    }
    TraceFileInfo info;
    if (!readTraceInfo(path, info, &err)) {
        std::fprintf(stderr, "th_run: wrote but cannot re-read: %s\n",
                     err.c_str());
        return 1;
    }
    std::printf("recorded %llu records of %s (seed 0x%llx) to %s\n",
                (unsigned long long)info.numRecords, benchmark.c_str(),
                (unsigned long long)info.seed, path.c_str());
    return 0;
}

int
cmdTraceInfo(const Args &args)
{
    if (args.pos.size() != 3)
        usage("trace info needs <file.thtrace>");
    TraceFileInfo info;
    std::string err;
    if (!readTraceInfo(args.pos[2], info, &err)) {
        std::fprintf(stderr, "th_run: %s\n", err.c_str());
        return 1;
    }
    std::printf("benchmark: %s\nsuite:     %s\nseed:      0x%llx\n"
                "records:   %llu\nprefill:   %llu lines\nschema:    "
                "v%u\n",
                info.benchmark.c_str(), info.suite.c_str(),
                (unsigned long long)info.seed,
                (unsigned long long)info.numRecords,
                (unsigned long long)info.numPrefillLines,
                info.schemaVersion);
    return 0;
}

int
cmdTraceRun(const Args &args)
{
    if (args.pos.size() != 3)
        usage("trace run needs <file.thtrace>");
    TraceFileReplay replay;
    std::string err;
    if (!replay.open(args.pos[2], &err)) {
        std::fprintf(stderr, "th_run: %s\n", err.c_str());
        return 1;
    }
    System sys = makeSystem(args);
    const CoreConfig cfg =
        makeConfig(configByName(args.config), sys.circuits());
    const CoreResult r = sys.runTrace(replay, cfg);
    std::fputs(renderCoreRun(replay.info().benchmark, args.config, r)
                   .c_str(),
               stdout);
    return 0;
}

// -------------------------------------------------------------------
// Client mode: ship the request to a th_serve server and print the
// response body. The body is rendered by the server through the same
// sim/report.h functions the local paths use.
// -------------------------------------------------------------------

bool
parseHostPort(const std::string &spec, std::string &host,
              std::uint16_t &port)
{
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= spec.size())
        return false;
    host = spec.substr(0, colon);
    const std::uint64_t p = parseU64(spec.substr(colon + 1), "--connect");
    if (p == 0 || p > 65535)
        return false;
    port = static_cast<std::uint16_t>(p);
    return true;
}

int
callServer(SimClient &client, SimRequest req, const Args &args)
{
    req.insts = args.insts;
    req.warmup = args.warmup;
    req.deadlineMs = static_cast<std::uint32_t>(args.deadlineMs);
    SimResponse rsp;
    std::string err;
    if (!client.call(req, rsp, err)) {
        std::fprintf(stderr, "th_run: %s\n", err.c_str());
        return 1;
    }
    if (rsp.status != SimStatus::Ok) {
        std::fprintf(stderr, "th_run: server replied %s: %s\n",
                     simStatusName(rsp.status), rsp.error.c_str());
        return 1;
    }
    std::fputs(rsp.text.c_str(), stdout);
    return 0;
}

int
cmdClient(const Args &args)
{
    std::string host;
    std::uint16_t port = 0;
    if (!parseHostPort(args.connect, host, port))
        usage("--connect expects host:port");

    SimClient client;
    std::string err;
    if (!client.connect(host, port, err)) {
        std::fprintf(stderr, "th_run: %s\n", err.c_str());
        return 1;
    }

    const std::string &cmd = args.pos[0];
    SimRequest req;
    req.benchmarks = splitList(args.benchmarks);

    if (cmd == "ping") {
        req.kind = SimRequestKind::Ping;
        return callServer(client, req, args);
    }
    if (cmd == "metrics") {
        req.kind = SimRequestKind::Metrics;
        return callServer(client, req, args);
    }
    if (cmd == "fig8" || cmd == "fig9" || cmd == "fig10" ||
        cmd == "width" || cmd == "sweep") {
        const std::vector<std::pair<const char *, SimRequestKind>> kinds =
            {{"fig8", SimRequestKind::Fig8},
             {"fig9", SimRequestKind::Fig9},
             {"fig10", SimRequestKind::Fig10}};
        if (cmd == "width") {
            req.kind = SimRequestKind::Width;
            return callServer(client, req, args);
        }
        for (const auto &[name, kind] : kinds) {
            if (cmd != name && cmd != "sweep")
                continue;
            req.kind = kind;
            const int rc = callServer(client, req, args);
            if (rc != 0)
                return rc;
        }
        return 0;
    }
    if (cmd == "core") {
        req.kind = SimRequestKind::Core;
        if (req.benchmarks.empty())
            req.benchmarks = {System::kPowerReferenceBenchmark};
        req.config = args.config;
        return callServer(client, req, args);
    }
    if (cmd == "dtm" || cmd == "multicore") {
        req.kind = cmd == "dtm" ? SimRequestKind::Dtm
                                : SimRequestKind::Multicore;
        req.dtmPolicy = args.policy;
        req.dtmTriggerK = args.trigger;
        req.dtmIntervals = static_cast<std::uint32_t>(args.intervals);
        req.dtmIntervalCycles = args.intervalCycles;
        req.dtmDilation = args.dilation;
        req.dtmGridN = static_cast<std::uint32_t>(args.grid);
        req.dtmSolver = args.solver;
        if (cmd == "dtm") {
            req.fastPath = args.fast ? 1 : 0;
        } else {
            req.mcCores = static_cast<std::uint32_t>(args.cores);
            req.mcL2Banks = static_cast<std::uint32_t>(args.banks);
            if (args.configGiven)
                req.config = args.config;
        }
        return callServer(client, req, args);
    }
    usage(strformat("command '%s' cannot run against a server",
                    cmd.c_str()).c_str());
}

// -------------------------------------------------------------------
// Store commands.
// -------------------------------------------------------------------

std::string
storeDirOf(const Args &args)
{
    if (!args.dir.empty())
        return args.dir;
    const char *env = std::getenv("TH_STORE_DIR");
    if (env && *env)
        return env;
    usage("store commands need --dir or TH_STORE_DIR");
}

int
cmdStore(const Args &args)
{
    if (args.pos.size() < 2)
        usage("store needs a subcommand (ls, gc, verify)");
    const std::string &what = args.pos[1];
    StoreOptions opts;
    opts.dir = storeDirOf(args);
    opts.maxBytes = args.maxBytes;
    ArtifactStore store(opts);

    if (what == "ls") {
        Table t({"Benchmark", "Config hash", "Format", "Bytes", "State"});
        std::uint64_t total = 0;
        std::size_t entries = 0;
        std::map<std::string, int> kinds; // Sorted: stable output.
        for (const auto &e : store.list()) {
            t.addRow({e.benchmark.empty() ? "?" : e.benchmark,
                      e.quarantined
                          ? "-"
                          : strformat("%016llx",
                                      (unsigned long long)e.cfgHash),
                      e.format.empty() ? "?" : e.format,
                      std::to_string(e.bytes),
                      e.quarantined ? "quarantined" : "ok"});
            ++kinds[e.format.empty() ? "?" : e.format];
            total += e.bytes;
            ++entries;
        }
        t.print(std::cout);
        std::string by_kind;
        for (const auto &[kind, n] : kinds)
            by_kind += strformat("%s%s %d", by_kind.empty() ? "" : ", ",
                                 kind.c_str(), n);
        if (!by_kind.empty())
            std::printf("formats: %s\n", by_kind.c_str());
        std::printf("%zu entries, %llu bytes in %s\n", entries,
                    (unsigned long long)total, opts.dir.c_str());
        return 0;
    }
    if (what == "gc") {
        if (args.dryRun) {
            const auto plan = store.gcPlan(args.maxBytes);
            std::uint64_t bytes = 0;
            for (const auto &e : plan) {
                std::printf("would evict %s (%s, %llu bytes, %s)\n",
                            e.path.c_str(),
                            e.format.empty() ? "?" : e.format.c_str(),
                            (unsigned long long)e.bytes,
                            e.quarantined ? "quarantined" : "ok");
                bytes += e.bytes;
            }
            std::printf("gc --dry-run: would remove %zu files, %llu "
                        "bytes (cap %llu bytes)\n",
                        plan.size(), (unsigned long long)bytes,
                        (unsigned long long)args.maxBytes);
            return 0;
        }
        const int removed = store.gc(args.maxBytes);
        std::printf("gc: removed %d files (cap %llu bytes)\n", removed,
                    (unsigned long long)args.maxBytes);
        return 0;
    }
    if (what == "verify") {
        const int bad = store.verify();
        std::printf("verify: %d invalid entr%s\n", bad,
                    bad == 1 ? "y" : "ies");
        return bad == 0 ? 0 : 1;
    }
    usage(strformat("unknown store subcommand '%s'", what.c_str())
              .c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);
    if (args.pos.empty())
        usage();
    const std::string &cmd = args.pos[0];

    if (!args.connect.empty())
        return cmdClient(args);
    if (cmd == "ping" || cmd == "metrics")
        usage(strformat("'%s' needs --connect host:port",
                        cmd.c_str()).c_str());
    if (cmd == "sweep" && (args.fast || args.exact)) {
        if (args.fast && args.exact)
            usage("sweep takes --fast or --exact, not both");
        return cmdFamilySweep(args);
    }
    if (cmd == "fig8" || cmd == "fig9" || cmd == "fig10" ||
        cmd == "width" || cmd == "sweep")
        return cmdExperiment(cmd, args);
    if (cmd == "core")
        return cmdCore(args);
    if (cmd == "dtm")
        return cmdDtm(args);
    if (cmd == "multicore")
        return cmdMulticore(args);
    if (cmd == "fit")
        return cmdFit(args);
    if (cmd == "trace") {
        if (args.pos.size() < 2)
            usage("trace needs a subcommand (record, info, run)");
        const std::string &what = args.pos[1];
        if (what == "record")
            return cmdTraceRecord(args);
        if (what == "info")
            return cmdTraceInfo(args);
        if (what == "run")
            return cmdTraceRun(args);
        usage(strformat("unknown trace subcommand '%s'",
                        what.c_str()).c_str());
    }
    if (cmd == "store")
        return cmdStore(args);
    usage(strformat("unknown command '%s'", cmd.c_str()).c_str());
}
