/**
 * @file
 * th_run — the Thermal Herding experiment driver. One binary for
 * running the paper's figure experiments against the persistent
 * artifact store, recording and replaying .thtrace files, and
 * maintaining the store.
 *
 * Usage:
 *   th_run fig8|fig9|fig10|width|sweep [--benchmarks a,b,c]
 *          [--insts N] [--warmup N] [--store DIR]
 *   th_run trace record <benchmark> <out.thtrace> [--records N]
 *   th_run trace info <file.thtrace>
 *   th_run trace run <file.thtrace> [--config NAME] [--insts N]
 *          [--warmup N]
 *   th_run store ls|gc|verify [--dir DIR] [--max-bytes N]
 *
 * The experiment commands honour TH_STORE_DIR (or --store): a cold run
 * simulates and persists every (benchmark, config) CoreResult; a warm
 * re-run loads them all from disk and prints matching hit counters.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "io/trace_file.h"
#include "sim/experiments.h"
#include "store/artifact_store.h"
#include "trace/suites.h"

using namespace th;

namespace {

/** Tiny flag parser: positional args + --name value pairs. */
struct Args
{
    std::vector<std::string> pos;

    std::string benchmarks;
    std::string config = "Base";
    std::string dir;
    std::uint64_t insts = 200000;
    std::uint64_t warmup = 100000;
    std::uint64_t records = 0;
    std::uint64_t maxBytes = 256ULL << 20;

    // DTM knobs (0 / empty = keep the DtmOptions default).
    std::string policy = "clockgate";
    double trigger = 0.0;
    std::uint64_t intervals = 0;
    std::uint64_t intervalCycles = 0;
    double dilation = 0.0;
    std::uint64_t grid = 0;
};

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "th_run: %s\n\n", msg);
    std::fprintf(stderr,
        "usage:\n"
        "  th_run fig8|fig9|fig10|width|sweep [--benchmarks a,b,c]\n"
        "         [--insts N] [--warmup N] [--store DIR]\n"
        "  th_run trace record <benchmark> <out.thtrace> [--records N]\n"
        "  th_run trace info <file.thtrace>\n"
        "  th_run trace run <file.thtrace> [--config NAME] [--insts N]\n"
        "         [--warmup N]\n"
        "  th_run dtm [--benchmarks b] [--policy none|clockgate|fetch]\n"
        "         [--trigger K] [--intervals N] [--interval-cycles N]\n"
        "         [--dilation X] [--grid N] [--store DIR]\n"
        "  th_run store ls|gc|verify [--dir DIR] [--max-bytes N]\n"
        "\n"
        "The experiment commands persist CoreResults to --store /\n"
        "TH_STORE_DIR when set; a warm re-run then skips simulation.\n"
        "th_run dtm compares closed-loop thermal throttling on the\n"
        "planar, naive-3D, and 3D+herding designs; with a store, a warm\n"
        "rerun replays the cached reports without any simulation.\n");
    std::exit(2);
}

std::uint64_t
parseU64(const std::string &s, const char *flag)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        usage(strformat("%s expects a number, got '%s'", flag,
                        s.c_str()).c_str());
    return v;
}

double
parseF64(const std::string &s, const char *flag)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        usage(strformat("%s expects a number, got '%s'", flag,
                        s.c_str()).c_str());
    return v;
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                usage(strformat("%s requires a value", flag).c_str());
            return argv[++i];
        };
        if (a == "--benchmarks")
            args.benchmarks = value("--benchmarks");
        else if (a == "--config")
            args.config = value("--config");
        else if (a == "--store" || a == "--dir")
            args.dir = value(a.c_str());
        else if (a == "--insts")
            args.insts = parseU64(value("--insts"), "--insts");
        else if (a == "--warmup")
            args.warmup = parseU64(value("--warmup"), "--warmup");
        else if (a == "--records")
            args.records = parseU64(value("--records"), "--records");
        else if (a == "--max-bytes")
            args.maxBytes = parseU64(value("--max-bytes"), "--max-bytes");
        else if (a == "--policy")
            args.policy = value("--policy");
        else if (a == "--trigger")
            args.trigger = parseF64(value("--trigger"), "--trigger");
        else if (a == "--intervals")
            args.intervals = parseU64(value("--intervals"), "--intervals");
        else if (a == "--interval-cycles")
            args.intervalCycles =
                parseU64(value("--interval-cycles"), "--interval-cycles");
        else if (a == "--dilation")
            args.dilation = parseF64(value("--dilation"), "--dilation");
        else if (a == "--grid")
            args.grid = parseU64(value("--grid"), "--grid");
        else if (a == "--help" || a == "-h")
            usage();
        else if (!a.empty() && a[0] == '-')
            usage(strformat("unknown flag '%s'", a.c_str()).c_str());
        else
            args.pos.push_back(a);
    }
    return args;
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string item = csv.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

ConfigKind
configByName(const std::string &name)
{
    const ConfigKind kinds[] = {ConfigKind::Base,   ConfigKind::TH,
                                ConfigKind::Pipe,   ConfigKind::Fast,
                                ConfigKind::ThreeD, ConfigKind::ThreeDNoTH};
    for (ConfigKind k : kinds)
        if (name == configName(k))
            return k;
    usage(strformat("unknown config '%s' (Base, TH, Pipe, Fast, 3D, "
                    "3D-noTH)", name.c_str()).c_str());
}

System
makeSystem(const Args &args)
{
    SimOptions opts;
    opts.instructions = args.insts;
    opts.warmupInstructions = args.warmup;
    opts.storeDir = args.dir; // Empty falls back to TH_STORE_DIR.
    return System(opts);
}

void
printCounters(const System &sys)
{
    const System::CacheStats cache = sys.coreCacheStats();
    std::printf("\ncore cache: %llu hits, %llu misses\n",
                (unsigned long long)cache.hits,
                (unsigned long long)cache.misses);
    if (sys.storeEnabled()) {
        const StoreStats s = sys.storeStats();
        std::printf("store (%s): %llu hits, %llu misses, %llu stores, "
                    "%llu evictions, %llu corrupt, %llu touch failures\n",
                    sys.storeDir().c_str(), (unsigned long long)s.hits,
                    (unsigned long long)s.misses,
                    (unsigned long long)s.stores,
                    (unsigned long long)s.evictions,
                    (unsigned long long)s.corrupt,
                    (unsigned long long)s.touchFailures);
    } else {
        std::printf("store: disabled (set TH_STORE_DIR or --store)\n");
    }
}

// -------------------------------------------------------------------
// Experiment commands.
// -------------------------------------------------------------------

void
printFig8(const Fig8Data &data)
{
    Table t({"Class", "Base", "TH", "Pipe", "Fast", "3D", "Speedup"});
    for (const auto &g : data.groups)
        t.addRow({g.suite, fmtDouble(g.ipcGeomean[0], 3),
                  fmtDouble(g.ipcGeomean[1], 3),
                  fmtDouble(g.ipcGeomean[2], 3),
                  fmtDouble(g.ipcGeomean[3], 3),
                  fmtDouble(g.ipcGeomean[4], 3), fmtPercent(g.speedup)});
    t.print(std::cout);
    std::printf("mean-of-means speedup: %s (min %s %s, max %s %s)\n",
                fmtPercent(data.speedupMeanOfMeans).c_str(),
                data.minBenchmark.c_str(),
                fmtPercent(data.minSpeedup).c_str(),
                data.maxBenchmark.c_str(),
                fmtPercent(data.maxSpeedup).c_str());
}

void
printFig9(const Fig9Data &data)
{
    Table t({"Config", "Total W", "Clock W", "Leak W", "Dynamic W"});
    for (const PowerBreakdown *b :
         {&data.planar, &data.noTh3d, &data.th3d})
        t.addRow({b->config, fmtDouble(b->totalW, 1),
                  fmtDouble(b->clockW, 1), fmtDouble(b->leakW, 1),
                  fmtDouble(b->dynamicW, 1)});
    t.print(std::cout);
    std::printf("power saving: min %s %s, max %s %s\n",
                data.minSaving.name.c_str(),
                fmtPercent(data.minSaving.saving).c_str(),
                data.maxSaving.name.c_str(),
                fmtPercent(data.maxSaving.saving).c_str());
}

void
printFig10(const Fig10Data &data)
{
    Table t({"Case", "App", "Total W", "Peak K", "Hot block"});
    auto row = [&](const char *label, const ThermalCase &tc) {
        t.addRow({label, tc.app, fmtDouble(tc.totalW, 1),
                  fmtDouble(tc.report.peakK, 1),
                  tc.report.hottestBlock});
    };
    row("worst planar", data.worstPlanar);
    row("worst 3D-noTH", data.worstNoTh3d);
    row("worst 3D-TH", data.worstTh3d);
    row("iso-power", data.isoPower);
    t.print(std::cout);
    std::printf("ROB delta (3D-TH vs planar, %s): %s K\n",
                data.sameApp.c_str(),
                fmtDouble(data.robDeltaK, 2).c_str());
}

void
printWidth(const WidthStudyData &data)
{
    std::printf("width prediction overall accuracy: %s over %zu "
                "benchmarks\n", fmtPercent(data.overallAccuracy).c_str(),
                data.rows.size());
}

int
cmdExperiment(const std::string &what, const Args &args)
{
    System sys = makeSystem(args);
    const std::vector<std::string> benchmarks =
        splitList(args.benchmarks);
    for (const std::string &b : benchmarks)
        if (!hasBenchmark(b))
            usage(strformat("unknown benchmark '%s'", b.c_str()).c_str());

    if (what == "fig8" || what == "sweep") {
        std::printf("=== Figure 8: performance ===\n");
        printFig8(runFigure8(sys, benchmarks));
    }
    if (what == "fig9" || what == "sweep") {
        std::printf("=== Figure 9: power ===\n");
        printFig9(runFigure9(sys, benchmarks));
    }
    if (what == "fig10" || what == "sweep") {
        std::printf("=== Figure 10: thermal ===\n");
        printFig10(runFigure10(sys, benchmarks));
    }
    if (what == "width") {
        std::printf("=== Width prediction study ===\n");
        printWidth(runWidthStudy(sys, benchmarks));
    }
    printCounters(sys);
    return 0;
}

// -------------------------------------------------------------------
// DTM command.
// -------------------------------------------------------------------

DtmOptions
dtmOptionsOf(const Args &args)
{
    DtmOptions opts;
    if (!dtmPolicyByName(args.policy, opts.policy))
        usage(strformat("unknown policy '%s' (none, clockgate, fetch)",
                        args.policy.c_str()).c_str());
    if (args.trigger > 0.0)
        opts.triggers.triggerK = args.trigger;
    if (args.intervals > 0)
        opts.maxIntervals = static_cast<int>(args.intervals);
    if (args.intervalCycles > 0)
        opts.intervalCycles = args.intervalCycles;
    if (args.dilation > 0.0)
        opts.timeDilation = args.dilation;
    if (args.grid > 0)
        opts.gridN = static_cast<int>(args.grid);
    return opts;
}

int
cmdDtm(const Args &args)
{
    System sys = makeSystem(args);
    const DtmOptions opts = dtmOptionsOf(args);

    const std::vector<std::string> benchmarks =
        splitList(args.benchmarks);
    if (benchmarks.size() > 1)
        usage("dtm takes a single --benchmarks entry");
    const std::string benchmark =
        benchmarks.empty() ? System::kPowerReferenceBenchmark
                           : benchmarks[0];
    if (!hasBenchmark(benchmark))
        usage(strformat("unknown benchmark '%s'",
                        benchmark.c_str()).c_str());

    std::printf("=== Closed-loop DTM: %s, policy %s, trigger %s K "
                "===\n", benchmark.c_str(),
                dtmPolicyName(opts.policy),
                fmtDouble(opts.triggers.triggerK, 1).c_str());
    const DtmStudyData data = runDtmStudy(sys, benchmark, opts);

    Table t({"Config", "Start K", "Peak K", "Final K", "Throttle duty",
             "t>trig ms", "Perf lost"});
    for (const DtmCase &c : data.cases)
        t.addRow({configName(c.config),
                  fmtDouble(c.report.startPeakK, 1),
                  fmtDouble(c.report.peakK, 1),
                  fmtDouble(c.report.finalPeakK, 1),
                  fmtPercent(c.report.throttleDuty),
                  fmtDouble(c.report.timeAboveTriggerS * 1e3, 1),
                  fmtPercent(c.report.perfLost)});
    t.print(std::cout);
    printCounters(sys);
    return 0;
}

// -------------------------------------------------------------------
// Trace commands.
// -------------------------------------------------------------------

int
cmdTraceRecord(const Args &args)
{
    if (args.pos.size() != 4)
        usage("trace record needs <benchmark> <out.thtrace>");
    const std::string &benchmark = args.pos[2];
    const std::string &path = args.pos[3];
    if (!hasBenchmark(benchmark))
        usage(strformat("unknown benchmark '%s'", benchmark.c_str())
                  .c_str());
    const BenchmarkProfile &profile = benchmarkByName(benchmark);

    // Record enough of the stream to drive a full simulation window:
    // the core fetches ahead of commit, so pad by the maximum possible
    // in-flight population plus redirect slack.
    const std::uint64_t records = args.records
        ? args.records
        : args.insts + args.warmup + 8192;

    SyntheticTrace trace(profile);
    std::string err;
    if (!recordTrace(path, trace, records, profile.name, profile.suite,
                     profile.seed, &err)) {
        std::fprintf(stderr, "th_run: %s\n", err.c_str());
        return 1;
    }
    TraceFileInfo info;
    if (!readTraceInfo(path, info, &err)) {
        std::fprintf(stderr, "th_run: wrote but cannot re-read: %s\n",
                     err.c_str());
        return 1;
    }
    std::printf("recorded %llu records of %s (seed 0x%llx) to %s\n",
                (unsigned long long)info.numRecords, benchmark.c_str(),
                (unsigned long long)info.seed, path.c_str());
    return 0;
}

int
cmdTraceInfo(const Args &args)
{
    if (args.pos.size() != 3)
        usage("trace info needs <file.thtrace>");
    TraceFileInfo info;
    std::string err;
    if (!readTraceInfo(args.pos[2], info, &err)) {
        std::fprintf(stderr, "th_run: %s\n", err.c_str());
        return 1;
    }
    std::printf("benchmark: %s\nsuite:     %s\nseed:      0x%llx\n"
                "records:   %llu\nprefill:   %llu lines\nschema:    "
                "v%u\n",
                info.benchmark.c_str(), info.suite.c_str(),
                (unsigned long long)info.seed,
                (unsigned long long)info.numRecords,
                (unsigned long long)info.numPrefillLines,
                info.schemaVersion);
    return 0;
}

int
cmdTraceRun(const Args &args)
{
    if (args.pos.size() != 3)
        usage("trace run needs <file.thtrace>");
    TraceFileReplay replay;
    std::string err;
    if (!replay.open(args.pos[2], &err)) {
        std::fprintf(stderr, "th_run: %s\n", err.c_str());
        return 1;
    }
    System sys = makeSystem(args);
    const CoreConfig cfg =
        makeConfig(configByName(args.config), sys.circuits());
    const CoreResult r = sys.runTrace(replay, cfg);
    std::printf("%s on %s: IPC %s, IPns %s, %llu insts in %llu "
                "cycles\n", replay.info().benchmark.c_str(),
                args.config.c_str(), fmtDouble(r.perf.ipc(), 3).c_str(),
                fmtDouble(r.ipns(), 2).c_str(),
                (unsigned long long)r.perf.committedInsts.value(),
                (unsigned long long)r.perf.cycles.value());
    return 0;
}

// -------------------------------------------------------------------
// Store commands.
// -------------------------------------------------------------------

std::string
storeDirOf(const Args &args)
{
    if (!args.dir.empty())
        return args.dir;
    const char *env = std::getenv("TH_STORE_DIR");
    if (env && *env)
        return env;
    usage("store commands need --dir or TH_STORE_DIR");
}

int
cmdStore(const Args &args)
{
    if (args.pos.size() < 2)
        usage("store needs a subcommand (ls, gc, verify)");
    const std::string &what = args.pos[1];
    StoreOptions opts;
    opts.dir = storeDirOf(args);
    opts.maxBytes = args.maxBytes;
    ArtifactStore store(opts);

    if (what == "ls") {
        Table t({"Benchmark", "Config hash", "Format", "Bytes", "State"});
        std::uint64_t total = 0;
        for (const auto &e : store.list()) {
            t.addRow({e.benchmark.empty() ? "?" : e.benchmark,
                      e.quarantined
                          ? "-"
                          : strformat("%016llx",
                                      (unsigned long long)e.cfgHash),
                      e.format.empty() ? "?" : e.format,
                      std::to_string(e.bytes),
                      e.quarantined ? "quarantined" : "ok"});
            total += e.bytes;
        }
        t.print(std::cout);
        std::printf("%zu entries, %llu bytes in %s\n", store.list().size(),
                    (unsigned long long)total, opts.dir.c_str());
        return 0;
    }
    if (what == "gc") {
        const int removed = store.gc(args.maxBytes);
        std::printf("gc: removed %d files (cap %llu bytes)\n", removed,
                    (unsigned long long)args.maxBytes);
        return 0;
    }
    if (what == "verify") {
        const int bad = store.verify();
        std::printf("verify: %d invalid entr%s\n", bad,
                    bad == 1 ? "y" : "ies");
        return bad == 0 ? 0 : 1;
    }
    usage(strformat("unknown store subcommand '%s'", what.c_str())
              .c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parseArgs(argc, argv);
    if (args.pos.empty())
        usage();
    const std::string &cmd = args.pos[0];

    if (cmd == "fig8" || cmd == "fig9" || cmd == "fig10" ||
        cmd == "width" || cmd == "sweep")
        return cmdExperiment(cmd, args);
    if (cmd == "dtm")
        return cmdDtm(args);
    if (cmd == "trace") {
        if (args.pos.size() < 2)
            usage("trace needs a subcommand (record, info, run)");
        const std::string &what = args.pos[1];
        if (what == "record")
            return cmdTraceRecord(args);
        if (what == "info")
            return cmdTraceInfo(args);
        if (what == "run")
            return cmdTraceRun(args);
        usage(strformat("unknown trace subcommand '%s'",
                        what.c_str()).c_str());
    }
    if (cmd == "store")
        return cmdStore(args);
    usage(strformat("unknown command '%s'", cmd.c_str()).c_str());
}
