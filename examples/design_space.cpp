/**
 * @file
 * Design-space exploration example: sweeps microarchitectural knobs of
 * the 3D Thermal Herding processor — scheduler size, width-predictor
 * size, memory-level parallelism, scheduler allocation policy — and
 * reports their performance and herding impact. Demonstrates driving
 * the library's CoreConfig directly rather than through the named
 * paper configurations.
 *
 *   ./build/examples/design_space [benchmark]
 */

#include <iostream>
#include <string>

#include "common/table.h"
#include "sim/system.h"
#include "trace/suites.h"

namespace {

using namespace th;

double
topDieAllocShare(const CoreResult &r)
{
    double top = static_cast<double>(
        r.activity.schedAllocDie[0].value());
    double all = 0.0;
    for (int d = 0; d < kNumDies; ++d)
        all += static_cast<double>(r.activity.schedAllocDie[d].value());
    return all > 0.0 ? top / all : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace th;

    const std::string bench = argc > 1 ? argv[1] : "gzip";
    if (!hasBenchmark(bench)) {
        std::cerr << "unknown benchmark '" << bench << "'\n";
        return 1;
    }

    SimOptions opts;
    opts.instructions = 120000;
    opts.warmupInstructions = 70000;
    System sys(opts);
    const CoreConfig base3d = makeConfig(ConfigKind::ThreeD,
                                         sys.circuits());

    std::cout << "Design-space exploration on " << bench << " (3D)\n\n";

    // --- Reservation station size. ---
    {
        std::cout << "Scheduler (RS) size: wakeup/select is the "
                     "frequency-critical loop,\nso bigger windows "
                     "would also slow the clock — IPC shown at fixed "
                     "frequency.\n\n";
        Table t({"RS entries", "IPC", "Top-die alloc share"});
        for (int rs : {16, 32, 64, 128}) {
            CoreConfig cfg = base3d;
            cfg.rsSize = rs;
            const CoreResult r = sys.runCore(bench, cfg);
            t.addRow({std::to_string(rs), fmtDouble(r.perf.ipc(), 3),
                      fmtPercent(topDieAllocShare(r))});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    // --- Width predictor size. ---
    {
        std::cout << "Width predictor size (PC-indexed 2-bit "
                     "counters):\n\n";
        Table t({"Entries", "Accuracy", "Unsafe preds", "IPC"});
        for (int entries : {64, 256, 1024, 4096}) {
            CoreConfig cfg = base3d;
            cfg.widthPredEntries = entries;
            const CoreResult r = sys.runCore(bench, cfg);
            t.addRow({std::to_string(entries),
                      fmtPercent(r.perf.widthAccuracy()),
                      std::to_string(r.perf.widthUnsafe.value()),
                      fmtDouble(r.perf.ipc(), 3)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    // --- Memory-level parallelism. ---
    {
        std::cout << "Outstanding-miss limit (MLP):\n\n";
        Table t({"Max misses", "IPC"});
        for (int mlp : {1, 2, 4, 8, 16}) {
            CoreConfig cfg = base3d;
            cfg.maxOutstandingMisses = mlp;
            const CoreResult r = sys.runCore(bench, cfg);
            t.addRow({std::to_string(mlp), fmtDouble(r.perf.ipc(), 3)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    // --- Scheduler allocation policy (the thermal ablation). ---
    {
        std::cout << "Scheduler allocation policy:\n\n";
        Table t({"Policy", "IPC", "Top-die allocs",
                 "Die-3 broadcasts"});
        for (auto policy : {SchedAllocPolicy::TopDieFirst,
                            SchedAllocPolicy::RoundRobin}) {
            CoreConfig cfg = base3d;
            cfg.schedAlloc = policy;
            const CoreResult r = sys.runCore(bench, cfg);
            t.addRow({policy == SchedAllocPolicy::TopDieFirst
                          ? "top-die-first" : "round-robin",
                      fmtDouble(r.perf.ipc(), 3),
                      fmtPercent(topDieAllocShare(r)),
                      std::to_string(
                          r.activity.schedWakeupDie[3].value())});
        }
        t.print(std::cout);
        std::cout << "\nTop-die-first allocation herds scheduler "
                     "activity to the heat-sink die\nat no IPC cost — "
                     "the free lunch of Section 3.4.\n";
    }
    return 0;
}
