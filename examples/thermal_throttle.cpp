/**
 * @file
 * Dynamic thermal management example (the paper's conclusions point at
 * trading a slice of the 3D performance gain for temperature — Black
 * et al.'s observation cited in Section 5.3). Uses the transient
 * thermal solver: start the 4-die stack from an idle steady state, hit
 * it with a high-power phase, and compare free-running heating against
 * a simple throttle that sheds 30% of core power whenever the peak
 * crosses a trigger temperature.
 *
 *   ./build/examples/thermal_throttle
 */

#include <iostream>

#include "common/table.h"
#include "sim/system.h"

namespace {

using namespace th;

/** Deposit an evaluation's block powers into a grid. */
void
depositPower(ThermalGrid &grid, const System &sys,
             const ThermalReport &rep, const Floorplan &fp,
             double scale)
{
    grid.clearPower();
    (void)sys;
    for (const auto &b : rep.blocks) {
        const BlockRect *rect = fp.find(b.id, b.core);
        if (rect != nullptr)
            grid.addPower(b.die, rect->x, rect->y, rect->w, rect->h,
                          b.powerW * scale);
    }
}

} // namespace

int
main()
{
    using namespace th;

    SimOptions opts;
    opts.instructions = 120000;
    opts.warmupInstructions = 70000;
    System sys(opts);

    // High-power phase: the max-power app on the 3D-noTH processor
    // (the worst thermal actor).
    Evaluation hot = sys.evaluate("mpeg2enc", ConfigKind::ThreeDNoTH);
    const ThermalReport hot_rep = sys.thermal(hot);
    const Floorplan &fp = sys.stackedFloorplan();

    ThermalParams params = sys.hotspot().params();
    params.gridN = 32; // transient stepping is per-cell; keep it quick
    ThermalGrid grid(params, HotspotModel::stackedStack(), fp.chipW,
                     fp.chipH);

    // Idle steady state: 20% of the active power.
    depositPower(grid, sys, hot_rep, fp, 0.2);
    const ThermalField idle = grid.solve();
    std::cout << "idle steady state: peak "
              << fmtDouble(idle.peak(grid.dieLayers()), 1) << " K\n";

    // Free-running: full power burst for 60 ms.
    depositPower(grid, sys, hot_rep, fp, 1.0);
    const auto free_run = grid.solveTransient(idle, 0.060, 1e-4, 12);

    // Throttled: re-evaluate every 5 ms; if the peak exceeds the
    // trigger, shed 30% of the power for the next interval.
    const double trigger_k = 352.0;
    ThermalField state = idle;
    std::vector<double> throttled_peaks;
    int throttle_events = 0;
    for (int interval = 0; interval < 12; ++interval) {
        const bool too_hot =
            state.peak(grid.dieLayers()) > trigger_k;
        throttle_events += too_hot ? 1 : 0;
        depositPower(grid, sys, hot_rep, fp, too_hot ? 0.7 : 1.0);
        const auto step = grid.solveTransient(state, 0.005, 1e-4, 1);
        state = step.final;
        throttled_peaks.push_back(state.peak(grid.dieLayers()));
    }

    std::cout << "\ntime (ms) | free-running peak (K) | throttled peak "
                 "(K)\n";
    Table t({"t (ms)", "free (K)", "throttled (K)"});
    for (size_t i = 0; i < throttled_peaks.size() &&
         i < free_run.peakK.size(); ++i) {
        t.addRow({fmtDouble((i + 1) * 5.0, 0),
                  fmtDouble(free_run.peakK[i], 1),
                  fmtDouble(throttled_peaks[i], 1)});
    }
    t.print(std::cout);

    std::cout << "\nthrottle trigger: " << fmtDouble(trigger_k, 0)
              << " K; intervals throttled: " << throttle_events
              << "/12 (30% power shed)\n";
    std::cout << "final peaks: free "
              << fmtDouble(free_run.peakK.back(), 1) << " K vs throttled "
              << fmtDouble(throttled_peaks.back(), 1) << " K\n";
    std::cout << "\nThermal Herding attacks the same problem at zero "
                 "performance cost by\nmoving the activity to the "
                 "heat-sink die instead of removing it.\n";
    return 0;
}
