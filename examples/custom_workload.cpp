/**
 * @file
 * Custom-workload example: define your own application profile (here,
 * a hypothetical 16-bit sensor-fusion DSP kernel and a cache-hostile
 * in-memory database), generate its synthetic trace, and evaluate how
 * much a Thermal-Herding 3D processor would buy for it.
 *
 *   ./build/examples/custom_workload
 */

#include <iostream>

#include "common/table.h"
#include "core/pipeline.h"
#include "power/power_model.h"
#include "sim/configs.h"
#include "trace/generator.h"
#include "trace/suites.h"

namespace {

using namespace th;

/** A DSP kernel crunching 16-bit sensor samples: herding heaven. */
BenchmarkProfile
sensorFusionProfile()
{
    BenchmarkProfile p;
    p.name = "sensor-fusion";
    p.suite = "custom";
    p.seed = 2026;
    p.fShift = 0.10;
    p.fMult = 0.06;
    p.fLoad = 0.22;
    p.fStore = 0.10;
    p.fBranch = 0.08;
    p.lowWidthBias = 0.93;   // almost everything fits in 16 bits
    p.takenRate = 0.9;
    p.branchNoise = 0.004;
    p.loopTripMean = 256.0;
    p.warmFrac = 0.04;
    p.coldFrac = 0.0;
    p.depDistMean = 7.0;
    return p;
}

/** An in-memory key-value store: wide pointers, DRAM-resident data. */
BenchmarkProfile
kvStoreProfile()
{
    BenchmarkProfile p;
    p.name = "kv-store";
    p.suite = "custom";
    p.seed = 2027;
    p.fLoad = 0.30;
    p.fStore = 0.08;
    p.fBranch = 0.16;
    p.lowWidthBias = 0.25;   // hashes and pointers are full width
    p.pointerChaseFrac = 0.6;
    p.stackFrac = 0.08;
    p.heapFrac = 0.85;
    p.coldFrac = 0.12;
    p.coldBytes = 96ULL << 20;
    p.warmFrac = 0.20;
    p.depDistMean = 3.0;
    return p;
}

void
evaluateProfile(const BenchmarkProfile &profile, const BlockLibrary &lib,
                PowerModel &power)
{
    std::cout << "=== " << profile.name << " ===\n\n";
    Table t({"Config", "IPC", "Insts/ns", "Width acc.", "Power (W)"});

    double base_ipns = 0.0, base_w = 0.0;
    double full_ipns = 0.0, full_w = 0.0;
    for (ConfigKind kind : {ConfigKind::Base, ConfigKind::TH,
                            ConfigKind::Fast, ConfigKind::ThreeD}) {
        const CoreConfig cfg = makeConfig(kind, lib);
        SyntheticTrace trace(profile);
        Core core(cfg);
        const CoreResult r = core.run(trace, 150000, 90000);
        const PowerResult p = power.compute(r, cfg);
        t.addRow({configName(kind), fmtDouble(r.perf.ipc(), 3),
                  fmtDouble(r.ipns(), 2),
                  cfg.thermalHerding
                      ? fmtPercent(r.perf.widthAccuracy())
                      : std::string("n/a"),
                  fmtDouble(p.totalW(), 1)});
        if (kind == ConfigKind::Base) {
            base_ipns = r.ipns();
            base_w = p.totalW();
        }
        if (kind == ConfigKind::ThreeD) {
            full_ipns = r.ipns();
            full_w = p.totalW();
        }
    }
    t.print(std::cout);
    std::cout << "\n3D vs planar: "
              << fmtPercent(full_ipns / base_ipns - 1.0)
              << " faster at " << fmtPercent(1.0 - full_w / base_w)
              << " less power\n\n";
}

} // namespace

int
main()
{
    using namespace th;

    BlockLibrary lib;
    PowerModel power(lib);

    // Calibrate power against the paper's reference point (dual-core
    // mpeg2 planar = 90 W).
    {
        const CoreConfig base = makeConfig(ConfigKind::Base, lib);
        SyntheticTrace ref(benchmarkByName("mpeg2enc"));
        Core core(base);
        const CoreResult r = core.run(ref, 150000, 90000);
        power.calibrate(r, base);
    }

    evaluateProfile(sensorFusionProfile(), lib, power);
    evaluateProfile(kvStoreProfile(), lib, power);

    std::cout << "Takeaway: narrow-data kernels enjoy both the full 3D "
                 "speedup and the\nlargest herding power savings; "
                 "DRAM-bound pointer chasing gets neither.\n";
    return 0;
}
