/**
 * @file
 * Thermal-map example: renders ASCII heat maps of the processor dies
 * for the planar chip and the 4-die stack (with and without Thermal
 * Herding), the library's equivalent of the paper's Figure 10 plots.
 *
 *   ./build/examples/thermal_map [benchmark]
 */

#include <iostream>
#include <string>

#include "common/table.h"
#include "sim/system.h"
#include "thermal/grid.h"
#include "trace/suites.h"

namespace {

using namespace th;

/** Render one die layer of a solved field as ASCII art. */
void
renderDie(const ThermalGrid &grid, const ThermalField &field, int die,
          double lo_k, double hi_k, double chip_w, double chip_h)
{
    static const char shades[] = " .:-=+*#%@";
    const int cols = 44, rows = 20;
    for (int r = 0; r < rows; ++r) {
        std::cout << "  ";
        for (int c = 0; c < cols; ++c) {
            const double x = (c + 0.5) * chip_w / cols;
            // Row 0 at the top of the floorplan.
            const double y = chip_h - (r + 0.5) * chip_h / rows;
            double avg, peak;
            grid.blockTemps(field, die, x - 0.01, y - 0.01, 0.02, 0.02,
                            avg, peak);
            int idx = static_cast<int>((avg - lo_k) / (hi_k - lo_k) *
                                       9.0);
            idx = std::clamp(idx, 0, 9);
            std::cout << shades[idx];
        }
        std::cout << "\n";
    }
}

void
mapConfig(System &sys, const std::string &bench, ConfigKind kind)
{
    const Evaluation ev = sys.evaluate(bench, kind);
    const CoreConfig cfg = makeConfig(kind, sys.circuits());
    const Floorplan &fp = cfg.stacked ? sys.stackedFloorplan()
                                      : sys.planarFloorplan();

    // Re-run the analysis at grid level so we can render the field.
    ThermalGrid grid(sys.hotspot().params(),
                     cfg.stacked ? HotspotModel::stackedStack()
                                 : HotspotModel::planarStack(),
                     fp.chipW, fp.chipH);
    const ThermalReport rep = sys.thermal(ev);
    const int dies = cfg.stacked ? kNumDies : 1;
    for (const auto &b : rep.blocks) {
        const BlockRect *rect = fp.find(b.id, b.core);
        if (rect != nullptr)
            grid.addPower(b.die, rect->x, rect->y, rect->w, rect->h,
                          b.powerW);
    }
    const ThermalField field = grid.solve();

    std::cout << "=== " << configName(kind) << " on " << bench
              << ": total " << fmtDouble(ev.power.totalW(), 1)
              << " W, peak " << fmtDouble(rep.peakK, 1) << " K at "
              << rep.hottestBlock << " ===\n";
    const double lo = sys.hotspot().params().ambientK + 10.0;
    const double hi = rep.peakK;
    for (int d = 0; d < dies; ++d) {
        std::cout << "\n  die " << d
                  << (d == 0 ? " (closest to heat sink)" : "") << ":\n";
        renderDie(grid, field, d, lo, hi, fp.chipW, fp.chipH);
    }
    std::cout << "\n  scale: ' ' = " << fmtDouble(lo, 0) << " K ... '@' = "
              << fmtDouble(hi, 0) << " K\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace th;

    const std::string bench = argc > 1 ? argv[1] : "mpeg2enc";
    if (!hasBenchmark(bench)) {
        std::cerr << "unknown benchmark '" << bench << "'\n";
        return 1;
    }

    SimOptions opts;
    opts.instructions = 120000;
    opts.warmupInstructions = 70000;
    System sys(opts);

    mapConfig(sys, bench, ConfigKind::Base);
    mapConfig(sys, bench, ConfigKind::ThreeDNoTH);
    mapConfig(sys, bench, ConfigKind::ThreeD);
    return 0;
}
