/**
 * @file
 * Quickstart: run one benchmark through the full Thermal Herding
 * evaluation stack — cycle-level core model, power model, and 3D
 * thermal analysis — on the planar baseline and the 3D processor.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [benchmark]
 */

#include <iostream>
#include <string>

#include "common/table.h"
#include "sim/system.h"
#include "trace/suites.h"

int
main(int argc, char **argv)
{
    using namespace th;

    const std::string bench = argc > 1 ? argv[1] : "mpeg2enc";
    if (!hasBenchmark(bench)) {
        std::cerr << "unknown benchmark '" << bench
                  << "'; try one of:\n";
        for (const auto &p : allBenchmarks())
            std::cerr << "  " << p.name << " (" << p.suite << ")\n";
        return 1;
    }

    // The System owns the circuit models (which set the 2D/3D clock
    // frequencies), the calibrated power model, and the thermal model.
    SimOptions opts;
    opts.instructions = 150000;
    opts.warmupInstructions = 90000;
    System sys(opts);

    std::cout << "Thermal Herding quickstart: " << bench << "\n";
    std::cout << "3D clock: "
              << fmtDouble(sys.circuits().frequency3dGhz(), 2)
              << " GHz (" << fmtPercent(sys.circuits().frequencyGain() - 1)
              << " over the 2.66 GHz planar baseline)\n\n";

    Table t({"Metric", "Planar (Base)", "3D Thermal Herding"});
    const Evaluation base = sys.evaluate(bench, ConfigKind::Base);
    const Evaluation full = sys.evaluate(bench, ConfigKind::ThreeD);
    const ThermalReport tb = sys.thermal(base);
    const ThermalReport tf = sys.thermal(full);

    t.addRow({"IPC", fmtDouble(base.core.perf.ipc(), 3),
              fmtDouble(full.core.perf.ipc(), 3)});
    t.addRow({"Instructions / ns", fmtDouble(base.core.ipns(), 2),
              fmtDouble(full.core.ipns(), 2)});
    t.addRow({"Branch mispredict rate",
              fmtPercent(base.core.perf.branchMispredRate()),
              fmtPercent(full.core.perf.branchMispredRate())});
    t.addRow({"Width prediction accuracy", "n/a",
              fmtPercent(full.core.perf.widthAccuracy())});
    t.addRow({"Chip power (W)", fmtDouble(base.power.totalW(), 1),
              fmtDouble(full.power.totalW(), 1)});
    t.addRow({"Top-die dynamic share", "n/a",
              fmtPercent(full.power.topDieFraction())});
    t.addRow({"Peak temperature (K)", fmtDouble(tb.peakK, 1),
              fmtDouble(tf.peakK, 1)});
    t.addRow({"Hottest block", tb.hottestBlock,
              tf.hottestBlock + " (die " +
                  std::to_string(tf.hottestDie) + ")"});
    t.print(std::cout);

    const double speedup = full.core.ipns() / base.core.ipns() - 1.0;
    std::cout << "\n3D speedup over planar: " << fmtPercent(speedup)
              << ", power saving: "
              << fmtPercent(1.0 - full.power.totalW() /
                            base.power.totalW())
              << "\n";
    return 0;
}
