/**
 * @file
 * Command-line simulation driver: run any benchmark on any
 * configuration and optionally dump the full statistics, power, and
 * thermal breakdowns — the library's gem5-style "one binary to poke
 * everything" entry point.
 *
 * Usage:
 *   simulate [--bench NAME] [--config Base|TH|Pipe|Fast|3D|3D-noTH]
 *            [--insts N] [--warmup N] [--stats] [--power] [--thermal]
 *            [--list]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/stats.h"
#include "common/table.h"
#include "sim/system.h"
#include "trace/suites.h"

namespace {

using namespace th;

ConfigKind
parseConfig(const std::string &name)
{
    if (name == "Base")
        return ConfigKind::Base;
    if (name == "TH")
        return ConfigKind::TH;
    if (name == "Pipe")
        return ConfigKind::Pipe;
    if (name == "Fast")
        return ConfigKind::Fast;
    if (name == "3D")
        return ConfigKind::ThreeD;
    if (name == "3D-noTH")
        return ConfigKind::ThreeDNoTH;
    std::cerr << "unknown config '" << name
              << "' (Base|TH|Pipe|Fast|3D|3D-noTH)\n";
    std::exit(1);
}

void
usage()
{
    std::cout <<
        "usage: simulate [options]\n"
        "  --bench NAME    benchmark to run (default mpeg2enc)\n"
        "  --config NAME   Base|TH|Pipe|Fast|3D|3D-noTH (default 3D)\n"
        "  --insts N       measured instructions (default 150000)\n"
        "  --warmup N      warm-up instructions (default 90000)\n"
        "  --stats         dump every counter\n"
        "  --power         print the power breakdown\n"
        "  --thermal       print the thermal report\n"
        "  --list          list available benchmarks and exit\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace th;

    std::string bench = "mpeg2enc";
    std::string config = "3D";
    SimOptions opts;
    opts.instructions = 150000;
    opts.warmupInstructions = 90000;
    bool dump_stats = false, show_power = false, show_thermal = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--bench") {
            bench = next();
        } else if (arg == "--config") {
            config = next();
        } else if (arg == "--insts") {
            opts.instructions = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--warmup") {
            opts.warmupInstructions =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--power") {
            show_power = true;
        } else if (arg == "--thermal") {
            show_thermal = true;
        } else if (arg == "--list") {
            for (const auto &p : allBenchmarks())
                std::cout << p.name << " (" << p.suite << ")\n";
            return 0;
        } else {
            usage();
            return arg == "--help" || arg == "-h" ? 0 : 1;
        }
    }

    if (!hasBenchmark(bench)) {
        std::cerr << "unknown benchmark '" << bench
                  << "'; use --list\n";
        return 1;
    }

    System sys(opts);
    const ConfigKind kind = parseConfig(config);
    const Evaluation ev = sys.evaluate(bench, kind);

    std::cout << bench << " on " << configName(kind) << " @ "
              << fmtDouble(makeConfig(kind, sys.circuits()).freqGhz, 2)
              << " GHz:\n";
    std::cout << "  IPC " << fmtDouble(ev.core.perf.ipc(), 3)
              << ", " << fmtDouble(ev.core.ipns(), 2) << " insts/ns, "
              << fmtDouble(ev.power.totalW(), 1) << " W\n";

    if (show_power) {
        std::cout << "\npower: clock " << fmtDouble(ev.power.clockW, 1)
                  << " W, leakage " << fmtDouble(ev.power.leakW, 1)
                  << " W, dynamic " << fmtDouble(ev.power.dynamicW(), 1)
                  << " W (top-die share "
                  << fmtPercent(ev.power.topDieFraction()) << ")\n";
        Table t({"Block", "W (per core)", "die0", "die1", "die2",
                 "die3"});
        for (int i = 0; i < kNumCoreBlocks; ++i) {
            const BlockPower &b =
                ev.power.coreBlocks[static_cast<size_t>(i)];
            if (b.total() < 0.005)
                continue;
            t.addRow({blockName(static_cast<BlockId>(i)),
                      fmtDouble(b.total(), 2),
                      fmtDouble(b.dieW[0], 2), fmtDouble(b.dieW[1], 2),
                      fmtDouble(b.dieW[2], 2), fmtDouble(b.dieW[3], 2)});
        }
        t.print(std::cout);
    }

    if (show_thermal) {
        const ThermalReport rep = sys.thermal(ev);
        std::cout << "\nthermal: peak " << fmtDouble(rep.peakK, 1)
                  << " K at " << rep.hottestBlock << " (die "
                  << rep.hottestDie << ")\n";
        Table t({"Block", "Die", "W", "Avg K", "Peak K"});
        for (const auto &b : rep.blocks) {
            if (b.core == 1)
                continue; // cores are symmetric
            t.addRow({blockName(b.id), std::to_string(b.die),
                      fmtDouble(b.powerW, 2), fmtDouble(b.avgK, 1),
                      fmtDouble(b.peakK, 1)});
        }
        t.print(std::cout);
    }

    if (dump_stats) {
        StatRegistry reg;
        ev.core.perf.registerStats(reg, "core");
        ev.core.activity.registerStats(reg, "activity");
        std::cout << "\n";
        reg.dump(std::cout);
    }
    return 0;
}
