#include <gtest/gtest.h>

#include "core/width_predictor.h"

namespace th {
namespace {

TEST(WidthPredictor, DefaultsToSafeFullPrediction)
{
    WidthPredictor wp(256);
    EXPECT_EQ(wp.predict(0x400000), Width::Full);
}

TEST(WidthPredictor, LearnsLowAfterTwoOutcomes)
{
    // Entries start weakly-full (counter 1): one low outcome tips the
    // counter into the predict-low region; a fresh entry never starts
    // there (safe default).
    WidthPredictor wp(256);
    const Addr pc = 0x400010;
    EXPECT_EQ(wp.predict(pc), Width::Full);
    wp.update(pc, Width::Low);
    EXPECT_EQ(wp.predict(pc), Width::Low);
    wp.update(pc, Width::Low);
    EXPECT_EQ(wp.predict(pc), Width::Low);
}

TEST(WidthPredictor, HysteresisResistsOneFlip)
{
    WidthPredictor wp(256);
    const Addr pc = 0x400020;
    for (int i = 0; i < 4; ++i)
        wp.update(pc, Width::Low);
    wp.update(pc, Width::Full);
    EXPECT_EQ(wp.predict(pc), Width::Low) << "saturated counter";
    wp.update(pc, Width::Full);
    EXPECT_EQ(wp.predict(pc), Width::Full);
}

TEST(WidthPredictor, CorrectToFullIsImmediate)
{
    WidthPredictor wp(256);
    const Addr pc = 0x400030;
    for (int i = 0; i < 4; ++i)
        wp.update(pc, Width::Low);
    ASSERT_EQ(wp.predict(pc), Width::Low);
    wp.correctToFull(pc);
    EXPECT_EQ(wp.predict(pc), Width::Full);
    // And takes two low outcomes to flip back (unsafe side is sticky).
    wp.update(pc, Width::Low);
    EXPECT_EQ(wp.predict(pc), Width::Full);
    wp.update(pc, Width::Low);
    EXPECT_EQ(wp.predict(pc), Width::Low);
}

TEST(WidthPredictor, IndependentEntries)
{
    WidthPredictor wp(256);
    const Addr a = 0x400040, b = 0x400044;
    wp.update(a, Width::Low);
    wp.update(a, Width::Low);
    EXPECT_EQ(wp.predict(a), Width::Low);
    EXPECT_EQ(wp.predict(b), Width::Full);
}

TEST(WidthPredictor, AliasedPcsSharEntry)
{
    WidthPredictor wp(16);
    const Addr a = 0x1000;
    const Addr b = a + 16 * 4; // same index after >>2 and mask
    wp.update(a, Width::Low);
    wp.update(a, Width::Low);
    EXPECT_EQ(wp.predict(b), Width::Low);
}

TEST(WidthPredictor, StableUnderAlternation)
{
    // A 50/50 site must not cause mostly-unsafe predictions: counter
    // oscillates in the full region after each correction.
    WidthPredictor wp(256);
    const Addr pc = 0x400050;
    int unsafe = 0;
    bool low = false;
    for (int i = 0; i < 1000; ++i) {
        const Width actual = low ? Width::Low : Width::Full;
        if (wp.predict(pc) == Width::Low && actual == Width::Full)
            ++unsafe;
        wp.update(pc, actual);
        low = !low;
    }
    EXPECT_LT(unsafe, 10);
}

TEST(WidthPredictorDeathTest, RequiresPowerOfTwo)
{
    EXPECT_EXIT((WidthPredictor{100}), ::testing::ExitedWithCode(1),
                "power of two");
}

class WidthAccuracySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(WidthAccuracySweep, TracksBiasedSites)
{
    // For a site that is low with probability p (or full with
    // probability p), a 2-bit counter must be nearly always right.
    const double p = GetParam();
    WidthPredictor wp(64);
    const Addr pc = 0x8000;
    std::uint64_t x = 12345;
    auto rnd = [&] {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        return (x >> 11) * 0x1.0p-53;
    };
    int correct = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const Width actual = rnd() < p ? Width::Low : Width::Full;
        if (wp.predict(pc) == actual)
            ++correct;
        wp.update(pc, actual);
    }
    const double acc = double(correct) / n;
    EXPECT_GT(acc, std::max(p, 1.0 - p) - 0.1);
}

INSTANTIATE_TEST_SUITE_P(Biases, WidthAccuracySweep,
                         ::testing::Values(0.02, 0.1, 0.9, 0.98));

TEST(WidthPredictorKinds, AlwaysFullNeverPredictsLow)
{
    WidthPredictor wp(64, WidthPredKind::AlwaysFull);
    const Addr pc = 0x100;
    for (int i = 0; i < 10; ++i)
        wp.update(pc, Width::Low);
    EXPECT_EQ(wp.predict(pc), Width::Full);
}

TEST(WidthPredictorKinds, OracleAlwaysRight)
{
    WidthPredictor wp(64, WidthPredKind::Oracle);
    EXPECT_EQ(wp.predict(0x100, Width::Low), Width::Low);
    EXPECT_EQ(wp.predict(0x100, Width::Full), Width::Full);
}

TEST(WidthPredictorKinds, LastOutcomeFlipsImmediately)
{
    WidthPredictor wp(64, WidthPredKind::LastOutcome);
    const Addr pc = 0x100;
    EXPECT_EQ(wp.predict(pc), Width::Full) << "safe default";
    wp.update(pc, Width::Low);
    EXPECT_EQ(wp.predict(pc), Width::Low);
    wp.update(pc, Width::Full);
    EXPECT_EQ(wp.predict(pc), Width::Full);
}

TEST(WidthPredictorKinds, LastOutcomeHonoursCorrection)
{
    WidthPredictor wp(64, WidthPredKind::LastOutcome);
    const Addr pc = 0x100;
    wp.update(pc, Width::Low);
    wp.correctToFull(pc);
    EXPECT_EQ(wp.predict(pc), Width::Full);
}

TEST(WidthPredictorKinds, Names)
{
    EXPECT_STREQ(widthPredKindName(WidthPredKind::TwoBit), "2-bit");
    EXPECT_STREQ(widthPredKindName(WidthPredKind::Oracle), "oracle");
}

} // namespace
} // namespace th
