#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "io/serialize.h"
#include "sim/system.h"
#include "store/artifact_store.h"

namespace th {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::path(::testing::TempDir()) /
               ("thstore-" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "-" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    StoreOptions options(std::uint64_t max_bytes = 0) const
    {
        StoreOptions o;
        o.dir = dir_.string();
        o.maxBytes = max_bytes;
        return o;
    }

    SimOptions simOptions() const
    {
        SimOptions o;
        o.instructions = 20000;
        o.warmupInstructions = 5000;
        o.storeDir = dir_.string();
        return o;
    }

    /** The single .cr entry file in the store directory. */
    fs::path onlyEntry() const
    {
        fs::path found;
        for (const auto &de : fs::directory_iterator(dir_)) {
            if (de.path().extension() == ".cr") {
                EXPECT_TRUE(found.empty()) << "more than one entry";
                found = de.path();
            }
        }
        EXPECT_FALSE(found.empty()) << "no store entry found";
        return found;
    }

    static void flipByte(const fs::path &file, std::streamoff offset)
    {
        std::fstream f(file, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekg(offset);
        char c = 0;
        f.get(c);
        f.seekp(offset);
        f.put(static_cast<char>(c ^ 0x40));
    }

    static CoreResult syntheticResult(std::uint64_t salt)
    {
        CoreResult r;
        r.freqGhz = 2.66 + 0.001 * static_cast<double>(salt);
        r.perf.cycles.set(100000 + salt);
        r.perf.committedInsts.set(200000 + salt * 3);
        for (int i = 0; i < 200; ++i)
            r.perf.valueWidthBits.sample(
                static_cast<double>((i + salt) % 64));
        r.activity.rfReadLow.set(salt * 7);
        return r;
    }

    fs::path dir_;
};

TEST_F(StoreTest, StoreThenLoadRoundTrips)
{
    ArtifactStore store(options());
    ASSERT_TRUE(store.enabled());

    const CoreResult r = syntheticResult(1);
    ASSERT_TRUE(store.storeCoreResult("gzip", 0x1234, r));

    CoreResult back;
    ASSERT_TRUE(store.loadCoreResult("gzip", 0x1234, back));
    EXPECT_EQ(serializeCoreResult(back), serializeCoreResult(r));

    const StoreStats s = store.stats();
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.corrupt, 0u);
}

TEST_F(StoreTest, DistinctKeysDoNotCollide)
{
    ArtifactStore store(options());
    ASSERT_TRUE(store.storeCoreResult("gzip", 0x1, syntheticResult(1)));
    ASSERT_TRUE(store.storeCoreResult("gzip", 0x2, syntheticResult(2)));
    ASSERT_TRUE(store.storeCoreResult("mcf", 0x1, syntheticResult(3)));

    CoreResult back;
    ASSERT_TRUE(store.loadCoreResult("gzip", 0x2, back));
    EXPECT_EQ(serializeCoreResult(back),
              serializeCoreResult(syntheticResult(2)));
    EXPECT_FALSE(store.loadCoreResult("gzip", 0x3, back));
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.list().size(), 3u);
}

TEST_F(StoreTest, SecondInstanceReadsFirstInstancesEntries)
{
    const CoreResult r = syntheticResult(9);
    {
        ArtifactStore writer(options());
        ASSERT_TRUE(writer.storeCoreResult("crafty", 0xBEEF, r));
    }
    ArtifactStore reader(options());
    CoreResult back;
    ASSERT_TRUE(reader.loadCoreResult("crafty", 0xBEEF, back));
    EXPECT_EQ(serializeCoreResult(back), serializeCoreResult(r));
}

TEST_F(StoreTest, BitFlippedEntryIsQuarantinedNotServed)
{
    ArtifactStore store(options());
    ASSERT_TRUE(store.storeCoreResult("gzip", 0x77, syntheticResult(4)));
    const fs::path entry = onlyEntry();
    flipByte(entry, static_cast<std::streamoff>(
                        fs::file_size(entry) / 2));

    CoreResult back;
    EXPECT_FALSE(store.loadCoreResult("gzip", 0x77, back));
    const StoreStats s = store.stats();
    EXPECT_EQ(s.corrupt, 1u);
    EXPECT_EQ(s.misses, 1u);

    // The bad file was quarantined, not left to fail again.
    EXPECT_FALSE(fs::exists(entry));
    EXPECT_TRUE(fs::exists(entry.string() + ".bad"));
}

TEST_F(StoreTest, TruncatedEntryIsQuarantinedNotServed)
{
    ArtifactStore store(options());
    ASSERT_TRUE(store.storeCoreResult("mcf", 0x99, syntheticResult(5)));
    const fs::path entry = onlyEntry();
    fs::resize_file(entry, fs::file_size(entry) / 3);

    CoreResult back;
    EXPECT_FALSE(store.loadCoreResult("mcf", 0x99, back));
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_TRUE(fs::exists(entry.string() + ".bad"));
}

TEST_F(StoreTest, SchemaVersionMismatchRejected)
{
    ArtifactStore store(options());
    ASSERT_TRUE(store.storeCoreResult("gzip", 0x11, syntheticResult(6)));
    // Header layout: magic(4) format(4) container(4) schema(4).
    flipByte(onlyEntry(), 12);

    CoreResult back;
    EXPECT_FALSE(store.loadCoreResult("gzip", 0x11, back));
    EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST_F(StoreTest, KeyMismatchRejected)
{
    // A structurally valid artifact sitting under the wrong file name
    // (embedded key != lookup key) must not be served.
    ArtifactStore store(options());
    ASSERT_TRUE(store.storeCoreResult("gzip", 0x42, syntheticResult(7)));
    const fs::path entry42 = onlyEntry();
    ASSERT_TRUE(store.storeCoreResult("gzip", 0x43, syntheticResult(8)));
    fs::path entry43;
    for (const auto &de : fs::directory_iterator(dir_))
        if (de.path().extension() == ".cr" && de.path() != entry42)
            entry43 = de.path();
    ASSERT_FALSE(entry43.empty());
    fs::copy_file(entry42, entry43,
                  fs::copy_options::overwrite_existing);

    CoreResult back;
    EXPECT_FALSE(store.loadCoreResult("gzip", 0x43, back));
    EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST_F(StoreTest, LruCapEvictsOldestEntries)
{
    // Measure one entry's size, then cap the store at ~2.5 entries.
    std::uint64_t entry_bytes = 0;
    {
        ArtifactStore probe(options());
        ASSERT_TRUE(
            probe.storeCoreResult("probe", 0x0, syntheticResult(0)));
        entry_bytes = fs::file_size(onlyEntry());
        fs::remove(onlyEntry());
    }
    ASSERT_GT(entry_bytes, 0u);

    ArtifactStore store(options(entry_bytes * 5 / 2));
    ASSERT_TRUE(store.storeCoreResult("a", 0x1, syntheticResult(1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    ASSERT_TRUE(store.storeCoreResult("b", 0x2, syntheticResult(2)));
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    ASSERT_TRUE(store.storeCoreResult("c", 0x3, syntheticResult(3)));

    EXPECT_GE(store.stats().evictions, 1u);
    CoreResult back;
    EXPECT_FALSE(store.loadCoreResult("a", 0x1, back))
        << "oldest entry should have been evicted";
    EXPECT_TRUE(store.loadCoreResult("c", 0x3, back))
        << "newest entry must survive the sweep";
}

TEST_F(StoreTest, VerifyQuarantinesAndGcRemoves)
{
    ArtifactStore store(options());
    ASSERT_TRUE(store.storeCoreResult("a", 0x1, syntheticResult(1)));
    ASSERT_TRUE(store.storeCoreResult("b", 0x2, syntheticResult(2)));

    // Corrupt one of the two entries.
    fs::path victim;
    for (const auto &de : fs::directory_iterator(dir_))
        if (de.path().extension() == ".cr") {
            victim = de.path();
            break;
        }
    ASSERT_FALSE(victim.empty());
    flipByte(victim, static_cast<std::streamoff>(
                         fs::file_size(victim) - 5));

    EXPECT_EQ(store.verify(), 1);
    EXPECT_TRUE(fs::exists(victim.string() + ".bad"));
    // Quarantined leftovers keep counting as invalid until collected.
    EXPECT_EQ(store.verify(), 1);

    // gc with a generous cap still clears quarantined files...
    EXPECT_GE(store.gc(1ULL << 30), 1);
    EXPECT_FALSE(fs::exists(victim.string() + ".bad"));
    EXPECT_EQ(store.verify(), 0);
    // ...and gc(0) empties the store.
    store.gc(0);
    EXPECT_TRUE(store.list().empty());
}

// ---------------------------------------------------------------------
// LRU recency-touch failures.
// ---------------------------------------------------------------------

/**
 * ArtifactStore with the recency touch forced to fail — the observable
 * behaviour of a read-only store directory (or any filesystem that
 * rejects mtime updates) without needing one: the test process owns
 * its temp files, so utimensat succeeds regardless of file modes (and
 * unconditionally under root), making a chmod-based setup vacuous.
 */
class FailingTouchStore : public ArtifactStore
{
  public:
    using ArtifactStore::ArtifactStore;

  protected:
    bool touchEntry(const std::string &) override { return false; }
};

TEST_F(StoreTest, TouchFailureIsCountedButHitStillServed)
{
    FailingTouchStore store(options());
    const CoreResult r = syntheticResult(3);
    ASSERT_TRUE(store.storeCoreResult("gzip", 0x5, r));

    // The hit must be served bit-identically even though its LRU
    // recency could not be refreshed — touch failure degrades eviction
    // ordering, never correctness.
    CoreResult back;
    ASSERT_TRUE(store.loadCoreResult("gzip", 0x5, back));
    EXPECT_EQ(serializeCoreResult(back), serializeCoreResult(r));

    StoreStats s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.touchFailures, 1u);

    // Every further hit counts its own failure (warned only once).
    ASSERT_TRUE(store.loadCoreResult("gzip", 0x5, back));
    s = store.stats();
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.touchFailures, 2u);
}

TEST_F(StoreTest, HealthyTouchReportsNoFailures)
{
    ArtifactStore store(options());
    ASSERT_TRUE(store.storeCoreResult("gzip", 0x6, syntheticResult(1)));
    CoreResult back;
    ASSERT_TRUE(store.loadCoreResult("gzip", 0x6, back));
    EXPECT_EQ(store.stats().touchFailures, 0u);
}

// ---------------------------------------------------------------------
// Concurrent-process races: entries vanishing mid-transaction.
// ---------------------------------------------------------------------

/**
 * ArtifactStore whose recency touch deletes the entry before failing —
 * the observable shape of losing a race with a concurrent process
 * whose gc/eviction removed the file between our existence check and
 * our utimensat. A real second process can't be steered onto that
 * window deterministically; the override can.
 */
class VanishingTouchStore : public ArtifactStore
{
  public:
    using ArtifactStore::ArtifactStore;

  protected:
    bool touchEntry(const std::string &path) override
    {
        std::error_code ec;
        fs::remove(path, ec);
        return false;
    }
};

TEST_F(StoreTest, VanishedEntryCountsAsRaceLostNotTouchFailure)
{
    VanishingTouchStore store(options());
    const CoreResult r = syntheticResult(8);
    ASSERT_TRUE(store.storeCoreResult("gzip", 0x8, r));

    // The entry was read before the loser's touch saw it vanish, so
    // the hit is still served bit-identically.
    CoreResult back;
    ASSERT_TRUE(store.loadCoreResult("gzip", 0x8, back));
    EXPECT_EQ(serializeCoreResult(back), serializeCoreResult(r));

    const StoreStats s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.raceLost, 1u);
    // A lost race is benign multi-process behaviour, not a broken
    // filesystem: it must not pollute the failure counters.
    EXPECT_EQ(s.touchFailures, 0u);
    EXPECT_EQ(s.corrupt, 0u);

    // The entry is gone now, so the next lookup is a plain miss.
    EXPECT_FALSE(store.loadCoreResult("gzip", 0x8, back));
    EXPECT_EQ(store.stats().misses, 1u);
}

// ---------------------------------------------------------------------
// System integration: the cold/warm contract.
// ---------------------------------------------------------------------

TEST_F(StoreTest, WarmSystemServesEveryCoreFromDisk)
{
    const char *benchmarks[] = {"gzip", "mcf"};
    std::vector<std::vector<std::uint8_t>> cold_bytes;

    {
        System cold(simOptions());
        ASSERT_TRUE(cold.storeEnabled());
        const CoreConfig cfg =
            makeConfig(ConfigKind::TH, cold.circuits());
        for (const char *b : benchmarks)
            cold_bytes.push_back(
                serializeCoreResult(cold.runCore(b, cfg)));
        const StoreStats s = cold.storeStats();
        EXPECT_EQ(s.misses, 2u);
        EXPECT_EQ(s.stores, 2u);
        EXPECT_EQ(s.hits, 0u);
    }

    // A fresh process (fresh System, empty memory cache) must serve
    // everything from disk, bit-identically.
    System warm(simOptions());
    const CoreConfig cfg = makeConfig(ConfigKind::TH, warm.circuits());
    for (std::size_t i = 0; i < 2; ++i) {
        const CoreResult r = warm.runCore(benchmarks[i], cfg);
        EXPECT_EQ(serializeCoreResult(r), cold_bytes[i])
            << benchmarks[i] << " diverged across the store";
    }
    const StoreStats s = warm.storeStats();
    EXPECT_EQ(s.hits, 2u) << "warm run should not simulate";
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.stores, 0u);
}

TEST_F(StoreTest, CorruptEntryRecomputedTransparently)
{
    SimOptions opts = simOptions();
    std::vector<std::uint8_t> want;
    {
        System sys(opts);
        const CoreConfig cfg =
            makeConfig(ConfigKind::Base, sys.circuits());
        want = serializeCoreResult(sys.runCore("gzip", cfg));
    }
    flipByte(onlyEntry(), 64);

    System sys(opts);
    const CoreConfig cfg = makeConfig(ConfigKind::Base, sys.circuits());
    const CoreResult r = sys.runCore("gzip", cfg); // Must not crash.
    EXPECT_EQ(serializeCoreResult(r), want)
        << "recomputed result must match the original simulation";
    const StoreStats s = sys.storeStats();
    EXPECT_EQ(s.corrupt, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.stores, 1u) << "recomputed result is re-persisted";

    // And a third run hits the freshly rewritten entry.
    System again(opts);
    const CoreResult r2 =
        again.runCore("gzip", makeConfig(ConfigKind::Base,
                                         again.circuits()));
    EXPECT_EQ(serializeCoreResult(r2), want);
    EXPECT_EQ(again.storeStats().hits, 1u);
}

TEST_F(StoreTest, StoreDisabledWithoutDirectory)
{
    SimOptions opts;
    opts.instructions = 5000;
    opts.warmupInstructions = 0;
    opts.storeDir.clear();
    // Shield the test from an inherited TH_STORE_DIR.
    ::unsetenv("TH_STORE_DIR");
    System sys(opts);
    EXPECT_FALSE(sys.storeEnabled());
    const CoreConfig cfg = makeConfig(ConfigKind::Base, sys.circuits());
    const CoreResult r = sys.runCore("gzip", cfg);
    EXPECT_GT(r.perf.committedInsts.value(), 0u);
    EXPECT_TRUE(fs::is_empty(dir_));
}

} // namespace
} // namespace th
