#include <gtest/gtest.h>

#include "core/branch_predictor.h"

namespace th {
namespace {

CoreConfig
cfg()
{
    return CoreConfig{};
}

TEST(HybridPredictor, LearnsAlwaysTaken)
{
    HybridPredictor hp(cfg());
    const Addr pc = 0x400100;
    // Enough updates to saturate the local and global histories and
    // train the counters behind them.
    for (int i = 0; i < 32; ++i)
        hp.update(pc, true);
    EXPECT_TRUE(hp.predict(pc));
}

TEST(HybridPredictor, LearnsNeverTaken)
{
    HybridPredictor hp(cfg());
    const Addr pc = 0x400104;
    for (int i = 0; i < 32; ++i)
        hp.update(pc, false);
    EXPECT_FALSE(hp.predict(pc));
}

TEST(HybridPredictor, LearnsShortLoopPattern)
{
    // taken,taken,taken,not-taken repeating: the local-history
    // component should learn to predict the exit.
    HybridPredictor hp(cfg());
    const Addr pc = 0x400108;
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const bool taken = (i % 4) != 3;
        if (hp.predict(pc) == taken)
            ++correct;
        hp.update(pc, taken);
    }
    EXPECT_GT(double(correct) / n, 0.9);
}

TEST(HybridPredictor, LearnsGlobalCorrelation)
{
    // Branch B always equals branch A's outcome: global history
    // captures the correlation even though B alone looks random.
    HybridPredictor hp(cfg());
    const Addr a = 0x400200, b = 0x400204;
    std::uint64_t x = 99;
    auto rnd = [&] {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        return (x & 1) != 0;
    };
    int correct = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const bool o = rnd();
        hp.update(a, o);
        if (hp.predict(b) == o)
            ++correct;
        hp.update(b, o);
    }
    EXPECT_GT(double(correct) / n, 0.8);
}

TEST(HybridPredictor, RandomBranchNearChance)
{
    HybridPredictor hp(cfg());
    const Addr pc = 0x400300;
    std::uint64_t x = 7;
    auto rnd = [&] {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        return ((x >> 13) & 1) != 0;
    };
    int correct = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const bool o = rnd();
        if (hp.predict(pc) == o)
            ++correct;
        hp.update(pc, o);
    }
    EXPECT_NEAR(double(correct) / n, 0.5, 0.07);
}

TEST(Btb, MissOnEmpty)
{
    Btb btb(256, 4);
    EXPECT_FALSE(btb.lookup(0x400000).hit);
}

TEST(Btb, HitAfterInstall)
{
    Btb btb(256, 4);
    btb.update(0x400000, 0x400800);
    const BtbResult r = btb.lookup(0x400000);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.target, 0x400800u);
}

TEST(Btb, UpdateReplacesTarget)
{
    Btb btb(256, 4);
    btb.update(0x400000, 0x400800);
    btb.update(0x400000, 0x400900);
    EXPECT_EQ(btb.lookup(0x400000).target, 0x400900u);
}

TEST(Btb, NearTargetIsMemoized)
{
    // Target shares the PC's upper 48 bits: no extra-die read.
    Btb btb(256, 4);
    btb.update(0x400000, 0x400abc);
    EXPECT_FALSE(btb.lookup(0x400000).needsUpperRead);
}

TEST(Btb, FarTargetNeedsUpperRead)
{
    // Target in a different 64KB region (Section 3.7's slow path).
    Btb btb(256, 4);
    btb.update(0x400000, 0x90000000);
    EXPECT_TRUE(btb.lookup(0x400000).needsUpperRead);
}

TEST(Btb, LruEvictsOldest)
{
    Btb btb(8, 2); // 4 sets, 2 ways
    // Three branches mapping to the same set (stride = sets*4 bytes).
    const Addr a = 0x1000, b = a + 4 * 4, c = a + 8 * 4;
    btb.update(a, 0x2000);
    btb.update(b, 0x3000);
    btb.lookup(a); // refresh a
    btb.update(c, 0x4000); // must evict b
    EXPECT_TRUE(btb.lookup(a).hit);
    EXPECT_FALSE(btb.lookup(b).hit);
    EXPECT_TRUE(btb.lookup(c).hit);
}

TEST(BtbDeathTest, BadGeometry)
{
    EXPECT_EXIT((Btb{10, 4}), ::testing::ExitedWithCode(1), "BTB");
}

} // namespace
} // namespace th
