#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "test_util.h"

namespace th {
namespace {

using test::VectorTrace;

CoreConfig
baseCfg()
{
    CoreConfig cfg;
    return cfg;
}

CoreConfig
thCfg()
{
    CoreConfig cfg;
    cfg.thermalHerding = true;
    return cfg;
}

TEST(Pipeline, IndependentAlusApproachCommitWidth)
{
    VectorTrace trace(test::independentAlus(20000));
    Core core(baseCfg());
    const CoreResult r = core.run(trace, 20000);
    EXPECT_EQ(r.perf.committedInsts.value(), 20000u);
    // Independent single-cycle ALU ops: bounded by the 3 integer
    // ALUs (Table 1), approached closely.
    EXPECT_GT(r.perf.ipc(), 2.5);
    EXPECT_LE(r.perf.ipc(), 3.05);
}

TEST(Pipeline, DependentChainSerializes)
{
    VectorTrace trace(test::dependentChain(5000));
    Core core(baseCfg());
    const CoreResult r = core.run(trace, 5000);
    // One op per cycle through the chain.
    EXPECT_GT(r.perf.ipc(), 0.85);
    EXPECT_LT(r.perf.ipc(), 1.15);
}

TEST(Pipeline, DrainsWhenTraceEnds)
{
    VectorTrace trace(test::independentAlus(100));
    Core core(baseCfg());
    const CoreResult r = core.run(trace, 100000);
    EXPECT_EQ(r.perf.committedInsts.value(), 100u);
}

TEST(Pipeline, NopsCommit)
{
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 200; ++i) {
        TraceRecord r;
        r.pc = 0x1000 + static_cast<Addr>(i) * 4;
        r.op = OpClass::Nop;
        recs.push_back(r);
    }
    VectorTrace trace(std::move(recs));
    Core core(baseCfg());
    const CoreResult r = core.run(trace, 200);
    EXPECT_EQ(r.perf.committedInsts.value(), 200u);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    VectorTrace t1(test::independentAlus(5000));
    VectorTrace t2(test::independentAlus(5000));
    Core c1(baseCfg()), c2(baseCfg());
    EXPECT_EQ(c1.run(t1, 5000).perf.cycles.value(),
              c2.run(t2, 5000).perf.cycles.value());
}

TEST(Pipeline, MispredictedBranchCostsPenalty)
{
    // Alternating taken/not-taken branch with an unpredictable-ish
    // pattern vs no branches at all.
    std::vector<TraceRecord> with_branches;
    std::uint64_t x = 42;
    for (int i = 0; i < 8000; ++i) {
        if (i % 4 == 3) {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            // Random direction, sequential fall-through target so a
            // taken outcome redirects.
            const Addr pc = 0x1000 + static_cast<Addr>(i % 64) * 4;
            with_branches.push_back(
                test::branchOp(pc, (x & 1) != 0, pc + 4));
        } else {
            with_branches.push_back(test::aluOp(
                0x1000 + static_cast<Addr>(i % 64) * 4,
                static_cast<RegIndex>(i % 16), 3));
        }
    }
    VectorTrace bt(std::move(with_branches));
    Core bc(baseCfg());
    const CoreResult br = bc.run(bt, 8000);

    VectorTrace at(test::independentAlus(8000));
    Core ac(baseCfg());
    const CoreResult ar = ac.run(at, 8000);

    EXPECT_GT(br.perf.branchMispredicts.value(), 100u);
    EXPECT_LT(br.perf.ipc(), ar.perf.ipc() * 0.6);

    // Each mispredict costs at least the minimum penalty.
    const double extra_cycles =
        static_cast<double>(br.perf.cycles.value()) -
        static_cast<double>(ar.perf.cycles.value());
    EXPECT_GT(extra_cycles,
              0.8 * baseCfg().bmispredMin() *
              static_cast<double>(br.perf.branchMispredicts.value()));
}

TEST(Pipeline, PredictableBranchesAreCheap)
{
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 8000; ++i) {
        const Addr pc = 0x1000 + static_cast<Addr>(i % 8) * 4;
        if (i % 8 == 7) {
            recs.push_back(test::branchOp(pc, true, 0x1000));
        } else {
            recs.push_back(test::aluOp(
                pc, static_cast<RegIndex>(i % 16), 3));
        }
    }
    VectorTrace trace(std::move(recs));
    Core core(baseCfg());
    const CoreResult r = core.run(trace, 8000);
    EXPECT_LT(r.perf.branchMispredRate(), 0.02);
    EXPECT_GT(r.perf.ipc(), 2.0);
}

TEST(Pipeline, LoadMissesSlowTheCore)
{
    // Strided loads over 16MB: every line misses to DRAM.
    std::vector<TraceRecord> cold, hot;
    for (int i = 0; i < 4000; ++i) {
        cold.push_back(test::loadOp(
            0x1000 + static_cast<Addr>(i % 32) * 4,
            static_cast<RegIndex>(i % 8),
            0x20000000 + static_cast<Addr>(i) * 64));
        hot.push_back(test::loadOp(
            0x1000 + static_cast<Addr>(i % 32) * 4,
            static_cast<RegIndex>(i % 8),
            0x20000000 + static_cast<Addr>(i % 64) * 64));
    }
    VectorTrace cold_t(std::move(cold)), hot_t(std::move(hot));
    Core cold_c(baseCfg()), hot_c(baseCfg());
    const CoreResult rc = cold_c.run(cold_t, 4000);
    const CoreResult rh = hot_c.run(hot_t, 4000);
    EXPECT_GT(rc.perf.dl1Misses.value(), 3000u);
    EXPECT_LT(rc.perf.ipc(), rh.perf.ipc() * 0.5);
}

TEST(Pipeline, StoreForwardingHits)
{
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 3000; ++i) {
        const Addr addr = 0x7000 + static_cast<Addr>((i / 2) % 4) * 8;
        if (i % 2 == 0)
            recs.push_back(test::storeOp(0x1000, addr, 77));
        else
            recs.push_back(test::loadOp(0x1010, 5, addr, 77));
    }
    VectorTrace trace(std::move(recs));
    Core core(baseCfg());
    const CoreResult r = core.run(trace, 3000);
    EXPECT_GT(r.perf.storeForwards.value(), 500u);
}

TEST(Pipeline, WarmupDiscardsStatistics)
{
    VectorTrace trace(test::independentAlus(30000));
    Core core(baseCfg());
    const CoreResult r = core.run(trace, 10000, 5000);
    EXPECT_EQ(r.perf.committedInsts.value(), 10000u);
    // Cycles should reflect only the measured window.
    EXPECT_LT(r.perf.cycles.value(), 10000u);
}

TEST(Pipeline, WidthPredictionOnlyWhenHerding)
{
    VectorTrace t1(test::independentAlus(3000));
    VectorTrace t2(test::independentAlus(3000));
    Core base(baseCfg()), herd(thCfg());
    const CoreResult rb = base.run(t1, 3000);
    const CoreResult rh = herd.run(t2, 3000);
    EXPECT_EQ(rb.perf.widthPredictions.value(), 0u);
    EXPECT_GT(rh.perf.widthPredictions.value(), 2500u);
}

TEST(Pipeline, LowWidthStreamHerdsToTopDie)
{
    VectorTrace trace(test::independentAlus(5000, /*value=*/7));
    Core core(thCfg());
    const CoreResult r = core.run(trace, 5000);
    // All values are low-width: predictor learns, ALU accesses gated.
    EXPECT_GT(r.activity.aluLow.value(), r.activity.aluFull.value());
    EXPECT_GT(r.activity.bypassLow.value(),
              r.activity.bypassFull.value());
    EXPECT_GT(r.perf.widthAccuracy(), 0.95);
}

TEST(Pipeline, FullWidthStreamStaysFull)
{
    VectorTrace trace(test::independentAlus(5000, 0x123456789ULL));
    Core core(thCfg());
    const CoreResult r = core.run(trace, 5000);
    EXPECT_EQ(r.activity.aluLow.value(), 0u);
    EXPECT_GT(r.activity.aluFull.value(), 4000u);
    EXPECT_EQ(r.perf.widthUnsafe.value(), 0u)
        << "full-width prediction is always safe";
}

TEST(Pipeline, WidthFlipsCauseBoundedStalls)
{
    // A site producing low values with occasional full results.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 8000; ++i) {
        const std::uint64_t v = (i % 50 == 49) ? 0xABCDEF012345ULL : 9;
        TraceRecord r = test::aluOp(
            0x1000 + static_cast<Addr>(i % 16) * 4,
            static_cast<RegIndex>(i % 8), v);
        recs.push_back(r);
    }
    VectorTrace trace(std::move(recs));
    Core core(thCfg());
    const CoreResult r = core.run(trace, 8000);
    EXPECT_GT(r.perf.widthUnsafe.value(), 0u);
    EXPECT_GT(r.perf.execReplays.value(), 0u)
        << "low operands producing full results must re-execute";
    EXPECT_GT(r.perf.widthAccuracy(), 0.9);
}

TEST(Pipeline, ThermalHerdingCostsLittleIpc)
{
    VectorTrace t1(test::independentAlus(20000, 7));
    VectorTrace t2(test::independentAlus(20000, 7));
    Core base(baseCfg()), herd(thCfg());
    const double ipc_base = base.run(t1, 20000).perf.ipc();
    const double ipc_th = herd.run(t2, 20000).perf.ipc();
    EXPECT_GT(ipc_th, ipc_base * 0.95);
}

TEST(Pipeline, EncodableLoadValuesCountAsLow)
{
    // Loads returning small negatives (upper bits all ones) are
    // "low" to the D-cache thanks to the 2-bit encoding.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 5000; ++i) {
        recs.push_back(test::loadOp(
            0x1000 + static_cast<Addr>(i % 16) * 4,
            static_cast<RegIndex>(i % 8),
            0x8000 + static_cast<Addr>(i % 32) * 8,
            ~0ULL << 4));
    }
    VectorTrace trace(std::move(recs));
    Core core(thCfg());
    const CoreResult r = core.run(trace, 5000);
    EXPECT_GT(r.perf.pveOnes.value(), 3000u);
    EXPECT_GT(r.activity.dl1ReadLow.value(),
              r.activity.dl1ReadFull.value());
}

TEST(Pipeline, PveAblationNarrowsLowDefinition)
{
    auto make = [] {
        std::vector<TraceRecord> recs;
        for (int i = 0; i < 5000; ++i) {
            recs.push_back(test::loadOp(
                0x1000 + static_cast<Addr>(i % 16) * 4,
                static_cast<RegIndex>(i % 8),
                0x8000 + static_cast<Addr>(i % 32) * 8, ~0ULL << 4));
        }
        return recs;
    };
    CoreConfig narrow = thCfg();
    narrow.pveEnabled = false;
    VectorTrace t1(make()), t2(make());
    Core wide_c(thCfg()), narrow_c(narrow);
    const CoreResult rw = wide_c.run(t1, 5000);
    const CoreResult rn = narrow_c.run(t2, 5000);
    EXPECT_GT(rw.activity.dl1ReadLow.value(),
              rn.activity.dl1ReadLow.value());
}

TEST(Pipeline, RobLimitsInflight)
{
    // A DRAM-missing chain-blocking load at the head of the window
    // keeps at most robSize instructions in flight; a burst of
    // independent ALUs behind it cannot all retire early.
    CoreConfig cfg = baseCfg();
    std::vector<TraceRecord> recs;
    recs.push_back(test::loadOp(0x1000, 1, 0x40000000));
    for (int i = 0; i < 500; ++i)
        recs.push_back(test::aluOp(0x2000, 2, 3));
    VectorTrace trace(std::move(recs));
    Core core(cfg);
    const CoreResult r = core.run(trace, 501);
    // Total time ~ the miss latency: commits gated by the ROB head.
    EXPECT_GT(r.perf.cycles.value(),
              static_cast<Cycle>(cfg.memLatencyCycles()));
}

TEST(Pipeline, BtbUpperReadStallsOnlyWithHerding)
{
    // A branch whose target lives in a distant region: the memoizing
    // BTB pays a one-cycle stall per taken prediction.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 6000; ++i) {
        if (i % 3 == 2) {
            const bool odd = (i / 3) % 2 != 0;
            const Addr pc = odd ? 0x90000000 : 0x1008;
            const Addr tgt = odd ? 0x1000 : 0x90000000;
            recs.push_back(test::branchOp(pc, true, tgt));
        } else {
            recs.push_back(test::aluOp(
                0x1000 + static_cast<Addr>(i % 2) * 4,
                static_cast<RegIndex>(i % 8), 3));
        }
    }
    VectorTrace t1(recs), t2(recs);
    Core base(baseCfg()), herd(thCfg());
    const CoreResult rb = base.run(t1, 6000);
    const CoreResult rh = herd.run(t2, 6000);
    EXPECT_EQ(rb.perf.btbTargetStalls.value(), 0u);
    EXPECT_GT(rh.perf.btbTargetStalls.value(), 1000u);
}

} // namespace
} // namespace th
