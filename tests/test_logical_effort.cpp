#include <gtest/gtest.h>

#include "circuit/logical_effort.h"

namespace th {
namespace {

class LogicTest : public ::testing::Test
{
  protected:
    LogicPath logic{defaultTech()};
};

TEST_F(LogicTest, DelayGrowsWithEffort)
{
    EXPECT_LT(logic.optimalDelay(4.0, 2.0), logic.optimalDelay(64.0, 2.0));
    EXPECT_LT(logic.optimalDelay(64.0, 2.0),
              logic.optimalDelay(4096.0, 2.0));
}

TEST_F(LogicTest, ParasiticAdds)
{
    EXPECT_LT(logic.optimalDelay(16.0, 1.0), logic.optimalDelay(16.0, 8.0));
}

TEST_F(LogicTest, SubUnityEffortClamped)
{
    EXPECT_DOUBLE_EQ(logic.optimalDelay(0.5, 2.0),
                     logic.optimalDelay(1.0, 2.0));
}

TEST_F(LogicTest, FixedStageCount)
{
    // One stage with effort F: delay = tau * (F + p).
    const double d = logic.fixedStageDelay(10.0, 1, 2.0);
    EXPECT_NEAR(d, defaultTech().tau * 12.0, 1e-9);
}

TEST_F(LogicTest, OptimalBeatsBadStaging)
{
    // Forcing one stage for a huge effort is far worse than optimal.
    EXPECT_LT(logic.optimalDelay(4096.0, 2.0),
              logic.fixedStageDelay(4096.0, 1, 2.0));
}

TEST_F(LogicTest, DecoderDelayGrowsWithRows)
{
    const double d32 = logic.decoderDelay(32, 50.0);
    const double d512 = logic.decoderDelay(512, 50.0);
    EXPECT_LT(d32, d512);
}

TEST_F(LogicTest, DecoderDelayGrowsWithLoad)
{
    EXPECT_LT(logic.decoderDelay(128, 20.0),
              logic.decoderDelay(128, 500.0));
}

TEST_F(LogicTest, DecoderEnergyGrowsWithRows)
{
    EXPECT_LT(logic.decoderEnergy(64), logic.decoderEnergy(1024));
    EXPECT_EQ(logic.decoderEnergy(1), 0.0);
}

TEST(LogicalEffortGates, NandNorEfforts)
{
    EXPECT_NEAR(le::nandEffort(2), 4.0 / 3.0, 1e-12);
    EXPECT_NEAR(le::norEffort(2), 5.0 / 3.0, 1e-12);
    // NOR is worse than NAND for the same fan-in (series PMOS).
    for (int n = 2; n <= 4; ++n)
        EXPECT_GT(le::norEffort(n), le::nandEffort(n));
}

TEST(LogicDeathTest, ZeroStagesPanics)
{
    LogicPath logic(defaultTech());
    EXPECT_DEATH(logic.fixedStageDelay(4.0, 0, 1.0), "stage count");
}

} // namespace
} // namespace th
