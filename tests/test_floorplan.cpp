#include <gtest/gtest.h>

#include "floorplan/floorplan.h"

namespace th {
namespace {

TEST(Floorplan, PlanarDimensions)
{
    const Floorplan fp = FloorplanBuilder::planar();
    EXPECT_DOUBLE_EQ(fp.chipW, 12.0);
    EXPECT_DOUBLE_EQ(fp.chipH, 12.0);
    EXPECT_EQ(fp.numCores, 2);
}

TEST(Floorplan, StackedIsQuarterFootprint)
{
    const Floorplan p = FloorplanBuilder::planar();
    const Floorplan s = FloorplanBuilder::stacked();
    EXPECT_NEAR(s.chipW * s.chipH, p.chipW * p.chipH / 4.0, 1e-9);
}

TEST(Floorplan, TwoCoresPlusL2)
{
    const Floorplan fp = FloorplanBuilder::planar();
    int l2 = 0, c0 = 0, c1 = 0;
    for (const auto &b : fp.blocks) {
        if (b.id == BlockId::L2)
            ++l2;
        else if (b.core == 0)
            ++c0;
        else if (b.core == 1)
            ++c1;
    }
    EXPECT_EQ(l2, 1);
    EXPECT_EQ(c0, kNumCoreBlocks);
    EXPECT_EQ(c1, kNumCoreBlocks);
}

TEST(Floorplan, BlocksCoverMostOfTheChip)
{
    const Floorplan fp = FloorplanBuilder::planar();
    const double chip = fp.chipW * fp.chipH;
    EXPECT_GT(fp.blockArea(), 0.90 * chip);
    EXPECT_LE(fp.blockArea(), chip + 1e-9);
}

TEST(Floorplan, BlocksStayInsideChip)
{
    for (const Floorplan &fp :
         {FloorplanBuilder::planar(), FloorplanBuilder::stacked()}) {
        for (const auto &b : fp.blocks) {
            EXPECT_GE(b.x, -1e-9);
            EXPECT_GE(b.y, -1e-9);
            EXPECT_LE(b.x + b.w, fp.chipW + 1e-9) << blockName(b.id);
            EXPECT_LE(b.y + b.h, fp.chipH + 1e-9) << blockName(b.id);
        }
    }
}

TEST(Floorplan, NoBlockOverlaps)
{
    const Floorplan fp = FloorplanBuilder::planar();
    for (size_t i = 0; i < fp.blocks.size(); ++i) {
        for (size_t j = i + 1; j < fp.blocks.size(); ++j) {
            const auto &a = fp.blocks[i];
            const auto &b = fp.blocks[j];
            const double ox = std::min(a.x + a.w, b.x + b.w) -
                std::max(a.x, b.x);
            const double oy = std::min(a.y + a.h, b.y + b.h) -
                std::max(a.y, b.y);
            EXPECT_FALSE(ox > 1e-9 && oy > 1e-9)
                << blockName(a.id) << " overlaps " << blockName(b.id);
        }
    }
}

TEST(Floorplan, FindLocatesBlocks)
{
    const Floorplan fp = FloorplanBuilder::planar();
    EXPECT_NE(fp.find(BlockId::Scheduler, 0), nullptr);
    EXPECT_NE(fp.find(BlockId::Scheduler, 1), nullptr);
    EXPECT_NE(fp.find(BlockId::L2, -1), nullptr);
    EXPECT_EQ(fp.find(BlockId::L2, 0), nullptr);
}

TEST(Floorplan, SchedulerIsCompact)
{
    // The RS must have high power density potential (the paper's 2D
    // hotspot): smallest area among the major datapath blocks.
    const Floorplan fp = FloorplanBuilder::planar();
    const BlockRect *sched = fp.find(BlockId::Scheduler, 0);
    const BlockRect *dcache = fp.find(BlockId::DCache, 0);
    const BlockRect *icache = fp.find(BlockId::ICache, 0);
    ASSERT_NE(sched, nullptr);
    EXPECT_LT(sched->area(), dcache->area());
    EXPECT_LT(sched->area(), icache->area());
}

TEST(Floorplan, StackedBlocksScaleByHalf)
{
    const Floorplan p = FloorplanBuilder::planar();
    const Floorplan s = FloorplanBuilder::stacked();
    const BlockRect *pp = p.find(BlockId::RegFile, 0);
    const BlockRect *ss = s.find(BlockId::RegFile, 0);
    ASSERT_NE(pp, nullptr);
    ASSERT_NE(ss, nullptr);
    EXPECT_NEAR(ss->w, pp->w / 2.0, 1e-9);
    EXPECT_NEAR(ss->h, pp->h / 2.0, 1e-9);
}

TEST(Floorplan, BlockNamesAreStable)
{
    EXPECT_STREQ(blockName(BlockId::Scheduler), "Scheduler");
    EXPECT_STREQ(blockName(BlockId::DCache), "DCache");
    EXPECT_STREQ(blockName(BlockId::L2), "L2");
}

// ------------------------------------------------------------------
// Parameterized generator (many-core stacks)
// ------------------------------------------------------------------

void
expectSameLayout(const Floorplan &a, const Floorplan &b)
{
    EXPECT_DOUBLE_EQ(a.chipW, b.chipW);
    EXPECT_DOUBLE_EQ(a.chipH, b.chipH);
    EXPECT_EQ(a.numCores, b.numCores);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (size_t i = 0; i < a.blocks.size(); ++i) {
        EXPECT_EQ(a.blocks[i].id, b.blocks[i].id) << i;
        EXPECT_EQ(a.blocks[i].core, b.blocks[i].core) << i;
        EXPECT_DOUBLE_EQ(a.blocks[i].x, b.blocks[i].x) << i;
        EXPECT_DOUBLE_EQ(a.blocks[i].y, b.blocks[i].y) << i;
        EXPECT_DOUBLE_EQ(a.blocks[i].w, b.blocks[i].w) << i;
        EXPECT_DOUBLE_EQ(a.blocks[i].h, b.blocks[i].h) << i;
    }
}

TEST(FloorplanGenerator, ReproducesLegacyLayouts)
{
    expectSameLayout(FloorplanBuilder::generate(2, 1, false),
                     FloorplanBuilder::planar());
    expectSameLayout(FloorplanBuilder::generate(2, 1, true),
                     FloorplanBuilder::stacked());
}

TEST(FloorplanGenerator, DeterministicPlacement)
{
    for (int n = 1; n <= 8; ++n)
        expectSameLayout(FloorplanBuilder::generate(n, 4, true),
                         FloorplanBuilder::generate(n, 4, true));
}

TEST(FloorplanGenerator, BlockCountsScaleWithCores)
{
    for (int n = 1; n <= 8; ++n) {
        const int banks = (n + 1) / 2;
        const Floorplan fp = FloorplanBuilder::generate(n, banks, true);
        EXPECT_EQ(fp.numCores, n);
        ASSERT_EQ(fp.blocks.size(),
                  static_cast<size_t>(n * kNumCoreBlocks + banks));
        std::vector<int> per_core(static_cast<size_t>(n), 0);
        int l2 = 0;
        for (const auto &b : fp.blocks) {
            if (b.id == BlockId::L2) {
                EXPECT_EQ(b.core, -1);
                ++l2;
            } else {
                ASSERT_GE(b.core, 0);
                ASSERT_LT(b.core, n);
                ++per_core[static_cast<size_t>(b.core)];
            }
        }
        EXPECT_EQ(l2, banks);
        for (int c = 0; c < n; ++c)
            EXPECT_EQ(per_core[static_cast<size_t>(c)], kNumCoreBlocks)
                << "core " << c << " at N=" << n;
    }
}

TEST(FloorplanGenerator, NoOverlapAtAnyCoreCount)
{
    for (int n = 1; n <= 8; ++n) {
        for (const int banks : {1, 4}) {
            const Floorplan fp =
                FloorplanBuilder::generate(n, banks, n > 2);
            for (size_t i = 0; i < fp.blocks.size(); ++i) {
                for (size_t j = i + 1; j < fp.blocks.size(); ++j) {
                    const auto &a = fp.blocks[i];
                    const auto &b = fp.blocks[j];
                    const double ox = std::min(a.x + a.w, b.x + b.w) -
                        std::max(a.x, b.x);
                    const double oy = std::min(a.y + a.h, b.y + b.h) -
                        std::max(a.y, b.y);
                    EXPECT_FALSE(ox > 1e-9 && oy > 1e-9)
                        << "N=" << n << " banks=" << banks << ": "
                        << blockName(a.id) << "/" << a.core
                        << " overlaps " << blockName(b.id) << "/"
                        << b.core;
                }
            }
        }
    }
}

TEST(FloorplanGenerator, BlocksInsideChipAtAnyCoreCount)
{
    for (int n = 1; n <= 8; ++n) {
        const Floorplan fp = FloorplanBuilder::generate(n, 2, true);
        for (const auto &b : fp.blocks) {
            EXPECT_GE(b.x, -1e-9);
            EXPECT_GE(b.y, -1e-9);
            EXPECT_LE(b.x + b.w, fp.chipW + 1e-9) << blockName(b.id);
            EXPECT_LE(b.y + b.h, fp.chipH + 1e-9) << blockName(b.id);
        }
    }
}

TEST(FloorplanGenerator, AreaConservedPerCore)
{
    // The per-core silicon budget and the coverage fraction of the
    // dual-core Figure 7 chip must carry over to every stack size:
    // tiles are translated copies, never squeezed.
    const Floorplan base = FloorplanBuilder::planar();
    double base_core = 0.0;
    for (const auto &b : base.blocks)
        if (b.core == 0)
            base_core += b.area();
    const double base_frac =
        base.blockArea() / (base.chipW * base.chipH);

    for (int n = 1; n <= 8; ++n) {
        const Floorplan fp = FloorplanBuilder::generate(n, 4, false);
        std::vector<double> core_area(static_cast<size_t>(n), 0.0);
        for (const auto &b : fp.blocks)
            if (b.core >= 0)
                core_area[static_cast<size_t>(b.core)] += b.area();
        for (int c = 0; c < n; ++c)
            EXPECT_NEAR(core_area[static_cast<size_t>(c)], base_core,
                        1e-9)
                << "core " << c << " at N=" << n;
        EXPECT_NEAR(fp.blockArea() / (fp.chipW * fp.chipH), base_frac,
                    1e-9)
            << "coverage fraction at N=" << n;
    }
}

TEST(FloorplanGenerator, BanksSpanTheL2Strip)
{
    const Floorplan fp = FloorplanBuilder::generate(4, 4, true);
    double covered = 0.0;
    for (const auto &b : fp.blocks) {
        if (b.id != BlockId::L2)
            continue;
        EXPECT_DOUBLE_EQ(b.y, 0.0);
        EXPECT_NEAR(b.w, fp.chipW / 4.0, 1e-12);
        covered += b.w;
    }
    EXPECT_NEAR(covered, fp.chipW, 1e-9);
}

} // namespace
} // namespace th
