#include <gtest/gtest.h>

#include "common/rng.h"

namespace th {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, RangeWithinBound)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.range(17), 17u);
}

TEST(Rng, RangeCoversAllValues)
{
    Rng r(11);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.range(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.rangeInclusive(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(15);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        if (r.chance(0.3))
            ++hits;
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, RunLengthMean)
{
    Rng r(19);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.runLength(10.0);
    EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, RunLengthAtLeastOne)
{
    Rng r(21);
    for (int i = 0; i < 1000; ++i)
        ASSERT_GE(r.runLength(1.0), 1);
}

TEST(Rng, SampleCdfDistribution)
{
    Rng r(23);
    const double cdf[3] = {0.2, 0.7, 1.0};
    int counts[3] = {};
    for (int i = 0; i < 100000; ++i)
        ++counts[r.sampleCdf(cdf, 3)];
    EXPECT_NEAR(counts[0] / 100000.0, 0.2, 0.01);
    EXPECT_NEAR(counts[1] / 100000.0, 0.5, 0.01);
    EXPECT_NEAR(counts[2] / 100000.0, 0.3, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng r(25);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = r.gaussian(5.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.2);
}

} // namespace
} // namespace th
