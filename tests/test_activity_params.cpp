#include <gtest/gtest.h>

#include <sstream>

#include "core/activity.h"
#include "core/params.h"
#include "trace/trace.h"

namespace th {
namespace {

TEST(ActivityStats, RegistersAllCounters)
{
    ActivityStats act;
    StatRegistry reg;
    act.registerStats(reg, "a");
    for (const char *name :
         {"a.rf.read_low", "a.rf.read_full", "a.alu.low", "a.alu.full",
          "a.bypass.low", "a.bypass.full", "a.sched.wakeup_die0",
          "a.sched.wakeup_die3", "a.sched.alloc", "a.lsq.search_low",
          "a.dl1.read_low", "a.dl1.fill", "a.il1.access", "a.btb.low",
          "a.bpred.lookup", "a.rob.write_full", "a.l2.access",
          "a.misc.uops"}) {
        EXPECT_TRUE(reg.hasCounter(name)) << name;
    }
}

TEST(ActivityStats, RegistryReflectsLiveCounters)
{
    ActivityStats act;
    StatRegistry reg;
    act.registerStats(reg, "x");
    act.aluLow.inc(7);
    EXPECT_EQ(reg.counterValue("x.alu.low"), 7u);
}

TEST(PerfStats, RegistersAllCounters)
{
    PerfStats perf;
    StatRegistry reg;
    perf.registerStats(reg, "p");
    for (const char *name :
         {"p.cycles", "p.committed", "p.branches",
          "p.branch_mispredicts", "p.width.predictions",
          "p.width.unsafe", "p.width.rf_group_stalls",
          "p.mem.loads", "p.mem.dl1_misses", "p.lsq.pam_hits",
          "p.pve.zeros", "p.pve.explicit"}) {
        EXPECT_TRUE(reg.hasCounter(name)) << name;
    }
}

TEST(PerfStats, DerivedMetrics)
{
    PerfStats perf;
    perf.cycles.set(1000);
    perf.committedInsts.set(2500);
    EXPECT_DOUBLE_EQ(perf.ipc(), 2.5);

    perf.widthPredictions.set(100);
    perf.widthPredCorrect.set(97);
    EXPECT_DOUBLE_EQ(perf.widthAccuracy(), 0.97);

    perf.branches.set(50);
    perf.branchMispredicts.set(5);
    EXPECT_DOUBLE_EQ(perf.branchMispredRate(), 0.1);
}

TEST(PerfStats, DerivedMetricsOnEmptyRun)
{
    PerfStats perf;
    EXPECT_DOUBLE_EQ(perf.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(perf.widthAccuracy(), 1.0);
    EXPECT_DOUBLE_EQ(perf.branchMispredRate(), 0.0);
}

TEST(CoreConfig, Table1Defaults)
{
    const CoreConfig cfg;
    EXPECT_EQ(cfg.fetchWidth, 4);
    EXPECT_EQ(cfg.issueWidth, 6);
    EXPECT_EQ(cfg.robSize, 96);
    EXPECT_EQ(cfg.rsSize, 32);
    EXPECT_EQ(cfg.lqSize, 32);
    EXPECT_EQ(cfg.sqSize, 20);
    EXPECT_EQ(cfg.numIntAlu, 3);
    EXPECT_EQ(cfg.numIntShift, 2);
    EXPECT_EQ(cfg.numIntMult, 1);
    EXPECT_EQ(cfg.il1Bytes, 32 * 1024);
    EXPECT_EQ(cfg.l2Bytes, 4 * 1024 * 1024);
    EXPECT_EQ(cfg.l2Assoc, 16);
    EXPECT_EQ(cfg.btbEntries, 2048);
    EXPECT_EQ(cfg.itlbEntries, 128);
    EXPECT_EQ(cfg.dtlbEntries, 256);
    EXPECT_EQ(cfg.ifqSize, 16);
}

TEST(CoreConfig, DerivedLatencies)
{
    CoreConfig cfg;
    EXPECT_EQ(cfg.bmispredMin(), 14);
    EXPECT_EQ(cfg.redirectCycles(),
              cfg.bmispredMin() - cfg.frontendDepth);
    cfg.pipeOpts = true;
    EXPECT_EQ(cfg.bmispredMin(), 12);
    EXPECT_EQ(cfg.l2Cycles(), 10);
    EXPECT_EQ(cfg.fpLoadExtraCycles(), 0);
}

TEST(CoreConfig, MemLatencyRounding)
{
    CoreConfig cfg;
    cfg.memLatencyNs = 75.0;
    cfg.freqGhz = 2.66;
    EXPECT_EQ(cfg.memLatencyCycles(), 200); // ceil(199.5)
}

TEST(OpClassHelpers, Categories)
{
    EXPECT_TRUE(isMemOp(OpClass::Load));
    EXPECT_TRUE(isMemOp(OpClass::Store));
    EXPECT_FALSE(isMemOp(OpClass::IntAlu));
    EXPECT_TRUE(isControlOp(OpClass::Branch));
    EXPECT_TRUE(isControlOp(OpClass::IndirectJump));
    EXPECT_FALSE(isControlOp(OpClass::Load));
    EXPECT_TRUE(isFpOp(OpClass::FpDiv));
    EXPECT_FALSE(isFpOp(OpClass::IntMult));
    EXPECT_STREQ(opClassName(OpClass::IntAlu), "IntAlu");
    EXPECT_STREQ(opClassName(OpClass::FpDiv), "FpDiv");
    EXPECT_STREQ(widthName(Width::Low), "low");
    EXPECT_STREQ(widthName(Width::Full), "full");
}

TEST(TraceRecordWidths, ResultAndSourceClassification)
{
    TraceRecord r;
    r.resultValue = 0x1234;
    EXPECT_EQ(r.resultWidth(), Width::Low);
    r.resultValue = 0x123456789ULL;
    EXPECT_EQ(r.resultWidth(), Width::Full);

    r.numSrcs = 2;
    r.srcValues[0] = 5;
    r.srcValues[1] = ~0ULL;
    EXPECT_EQ(r.srcWidth(0), Width::Low);
    EXPECT_EQ(r.srcWidth(1), Width::Full);
    EXPECT_EQ(r.srcWidth(2), Width::Low) << "out of range is benign";
}

TEST(PerfStats, ValueWidthHistogramRegistered)
{
    PerfStats perf;
    perf.valueWidthBits.sample(8.0);
    perf.valueWidthBits.sample(40.0);
    StatRegistry reg;
    perf.registerStats(reg, "p");
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("p.value_width_bits.count 2"),
              std::string::npos);
}

} // namespace
} // namespace th
