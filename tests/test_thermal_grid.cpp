#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/threadpool.h"
#include "thermal/grid.h"
#include "thermal/hotspot.h"
#include "thermal/multigrid.h"

namespace th {
namespace {

ThermalParams
fastParams()
{
    ThermalParams p;
    p.gridN = 24;
    p.maxResidualK = 1e-3;
    return p;
}

ThermalGrid
makePlanarGrid(const ThermalParams &p)
{
    return ThermalGrid(p, HotspotModel::planarStack(), 12.0, 12.0);
}

TEST(ThermalGrid, NoPowerStaysAmbient)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = makePlanarGrid(p);
    const ThermalField f = grid.solve();
    EXPECT_NEAR(f.peak(grid.dieLayers()), p.ambientK, 0.5);
}

TEST(ThermalGrid, PowerHeatsTheDie)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = makePlanarGrid(p);
    grid.addPower(0, 4.0, 4.0, 4.0, 4.0, 50.0);
    const ThermalField f = grid.solve();
    EXPECT_GT(f.peak(grid.dieLayers()), p.ambientK + 10.0);
}

TEST(ThermalGrid, MorePowerIsHotter)
{
    const ThermalParams p = fastParams();
    double peaks[2];
    int i = 0;
    for (double w : {30.0, 60.0}) {
        ThermalGrid grid = makePlanarGrid(p);
        grid.addPower(0, 4.0, 4.0, 4.0, 4.0, w);
        peaks[i++] = grid.solve().peak(grid.dieLayers());
    }
    EXPECT_GT(peaks[1], peaks[0] + 5.0);
}

TEST(ThermalGrid, ConcentratedPowerHotterThanSpread)
{
    const ThermalParams p = fastParams();
    ThermalGrid tight = makePlanarGrid(p);
    tight.addPower(0, 5.0, 5.0, 2.0, 2.0, 40.0);
    ThermalGrid spread = makePlanarGrid(p);
    spread.addPower(0, 0.0, 0.0, 12.0, 12.0, 40.0);
    EXPECT_GT(tight.solve().peak(tight.dieLayers()),
              spread.solve().peak(spread.dieLayers()) + 3.0);
}

TEST(ThermalGrid, HotspotIsUnderThePowerSource)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = makePlanarGrid(p);
    grid.addPower(0, 1.0, 1.0, 2.0, 2.0, 30.0);
    const ThermalField f = grid.solve();
    double a_avg, a_peak, b_avg, b_peak;
    grid.blockTemps(f, 0, 1.0, 1.0, 2.0, 2.0, a_avg, a_peak);
    grid.blockTemps(f, 0, 9.0, 9.0, 2.0, 2.0, b_avg, b_peak);
    EXPECT_GT(a_avg, b_avg + 2.0);
}

TEST(ThermalGrid, BlockAvgBelowPeak)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = makePlanarGrid(p);
    grid.addPower(0, 3.0, 3.0, 1.0, 1.0, 25.0);
    const ThermalField f = grid.solve();
    double avg, peak;
    grid.blockTemps(f, 0, 0.0, 0.0, 12.0, 12.0, avg, peak);
    EXPECT_LE(avg, peak);
}

TEST(ThermalGrid, TotalPowerAccounting)
{
    ThermalGrid grid = makePlanarGrid(fastParams());
    grid.addPower(0, 1.0, 1.0, 3.0, 3.0, 12.5);
    grid.addPower(0, 6.0, 6.0, 2.0, 2.0, 7.5);
    EXPECT_NEAR(grid.totalPower(), 20.0, 1e-9);
    grid.clearPower();
    EXPECT_DOUBLE_EQ(grid.totalPower(), 0.0);
}

TEST(ThermalGrid, EdgeClippedRectKeepsItsWatts)
{
    // A block at the chip edge must deposit all its power.
    ThermalGrid grid = makePlanarGrid(fastParams());
    grid.addPower(0, 11.0, 11.0, 1.0, 1.0, 5.0);
    EXPECT_NEAR(grid.totalPower(), 5.0, 1e-9);
}

TEST(ThermalGrid, StackedDeeperDieRunsHotter)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid(p, HotspotModel::stackedStack(), 6.0, 6.0);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 0.0, 0.0, 6.0, 6.0, 15.0);
    const ThermalField f = grid.solve();
    double a0, p0, a3, p3;
    grid.blockTemps(f, 0, 0.0, 0.0, 6.0, 6.0, a0, p0);
    grid.blockTemps(f, 3, 0.0, 0.0, 6.0, 6.0, a3, p3);
    // Die 3 is farthest from the sink.
    EXPECT_GT(a3, a0);
}

TEST(ThermalGrid, HerdingPowerToTopDieIsCooler)
{
    const ThermalParams p = fastParams();
    ThermalGrid herd(p, HotspotModel::stackedStack(), 6.0, 6.0);
    herd.addPower(0, 0.0, 0.0, 6.0, 6.0, 45.0);
    for (int d = 1; d < kNumDies; ++d)
        herd.addPower(d, 0.0, 0.0, 6.0, 6.0, 5.0);

    ThermalGrid flat(p, HotspotModel::stackedStack(), 6.0, 6.0);
    for (int d = 0; d < kNumDies; ++d)
        flat.addPower(d, 0.0, 0.0, 6.0, 6.0, 15.0);

    EXPECT_LT(herd.solve().peak(herd.dieLayers()),
              flat.solve().peak(flat.dieLayers()));
}

TEST(ThermalGrid, DieLayersEnumerated)
{
    ThermalGrid planar = makePlanarGrid(fastParams());
    EXPECT_EQ(planar.dieLayers().size(), 1u);
    EXPECT_EQ(planar.dieLayer(0), 3);
    EXPECT_EQ(planar.dieLayer(7), -1);

    ThermalGrid stacked(fastParams(), HotspotModel::stackedStack(),
                        6.0, 6.0);
    EXPECT_EQ(stacked.dieLayers().size(), 4u);
}

// ---------------------------------------------------------------------
// Multigrid operators and the multigrid steady-state path.
// ---------------------------------------------------------------------

/** Uniform single-layer network: lateral couplings 1, convection 0.1
 *  everywhere — every cell is material, so the operator algebra is
 *  easy to check by hand. */
MgLevel
uniformFineLevel(int n)
{
    const size_t cells = static_cast<size_t>(n) * n;
    std::vector<double> gr(cells, 0.0), gd(cells, 0.0),
        gb(cells, 0.0), ga(cells, 0.1);
    for (int iy = 0; iy < n; ++iy) {
        for (int ix = 0; ix < n; ++ix) {
            const size_t c = static_cast<size_t>(iy) * n + ix;
            if (ix + 1 < n)
                gr[c] = 1.0;
            if (iy + 1 < n)
                gd[c] = 1.0;
        }
    }
    return mgFineLevel(n, 1, gr, gd, gb, ga);
}

TEST(Multigrid, RestrictionSumsBlockResiduals)
{
    MgLevel fine = uniformFineLevel(8);
    MgLevel coarse = mgCoarsen(fine);
    ASSERT_EQ(coarse.n, 4);

    // Distinct residuals per fine cell; each coarse rhs must be the
    // exact sum of its 2x2 block.
    for (int iy = 0; iy < 8; ++iy)
        for (int ix = 0; ix < 8; ++ix)
            fine.res[fine.at(0, ix, iy)] = 1.0 + iy * 8 + ix;
    mgRestrict(fine, coarse, ThreadPool::global());
    for (int cy = 0; cy < 4; ++cy) {
        for (int cx = 0; cx < 4; ++cx) {
            const double want =
                fine.res[fine.at(0, 2 * cx, 2 * cy)] +
                fine.res[fine.at(0, 2 * cx + 1, 2 * cy)] +
                fine.res[fine.at(0, 2 * cx, 2 * cy + 1)] +
                fine.res[fine.at(0, 2 * cx + 1, 2 * cy + 1)];
            EXPECT_DOUBLE_EQ(coarse.rhs[coarse.at(0, cx, cy)], want)
                << "(" << cx << "," << cy << ")";
            // Restriction must also reset the coarse solution.
            EXPECT_EQ(coarse.u[coarse.at(0, cx, cy)], 0.0);
        }
    }
}

TEST(Multigrid, ProlongationReproducesConstants)
{
    // Bilinear weights are premasked and renormalised, so a constant
    // coarse correction must land on every material fine cell exactly
    // (partition of unity) — including edge cells with clamped
    // parents.
    MgLevel fine = uniformFineLevel(8);
    MgLevel coarse = mgCoarsen(fine);
    mgBuildProlongation(fine, coarse);
    for (int cy = 0; cy < 4; ++cy)
        for (int cx = 0; cx < 4; ++cx)
            coarse.u[coarse.at(0, cx, cy)] = 2.5;
    mgProlongAdd(fine, coarse, ThreadPool::global());
    for (int iy = 0; iy < 8; ++iy)
        for (int ix = 0; ix < 8; ++ix)
            EXPECT_NEAR(fine.u[fine.at(0, ix, iy)], 2.5, 1e-12)
                << "(" << ix << "," << iy << ")";
}

TEST(Multigrid, CoarseningConservesCouplingsAndConvection)
{
    MgLevel fine = uniformFineLevel(8);
    MgLevel coarse = mgCoarsen(fine);
    // 2x2 aggregation: each interior block boundary carries the two
    // fine couplings that crossed it; convection sums over the block.
    EXPECT_DOUBLE_EQ(coarse.gRight[coarse.at(0, 0, 0)], 2.0);
    EXPECT_DOUBLE_EQ(coarse.gDown[coarse.at(0, 0, 0)], 2.0);
    EXPECT_DOUBLE_EQ(coarse.gRight[coarse.at(0, 3, 0)], 0.0); // edge
    EXPECT_NEAR(coarse.gAmb[coarse.at(0, 1, 1)], 0.4, 1e-12);
    EXPECT_EQ(coarse.mask[coarse.at(0, 2, 2)], 1.0);
}

TEST(Multigrid, VCycleReducesResidualMonotonically)
{
    // A 3-layer anisotropic problem (vertical couplings 50x lateral,
    // like the real stack) with a point source: every V-cycle must
    // shrink the kelvin-scaled residual.
    const int n = 16, nl = 3;
    const size_t cells = static_cast<size_t>(nl) * n * n;
    std::vector<double> gr(cells, 0.0), gd(cells, 0.0),
        gb(cells, 0.0), ga(cells, 0.0);
    for (int l = 0; l < nl; ++l) {
        for (int iy = 0; iy < n; ++iy) {
            for (int ix = 0; ix < n; ++ix) {
                const size_t c =
                    (static_cast<size_t>(l) * n + iy) * n + ix;
                if (ix + 1 < n)
                    gr[c] = 1.0;
                if (iy + 1 < n)
                    gd[c] = 1.0;
                if (l + 1 < nl)
                    gb[c] = 50.0;
                if (l == 0)
                    ga[c] = 0.05;
            }
        }
    }
    MgParams mp;
    MgSolver solver(mgFineLevel(n, nl, gr, gd, gb, ga), mp);
    EXPECT_GE(solver.numLevels(), 2);

    std::vector<double> rhs(cells, 0.0);
    rhs[(static_cast<size_t>(nl - 1) * n + n / 2) * n + n / 2] = 10.0;
    solver.setProblem(rhs, nullptr);

    double prev = std::numeric_limits<double>::infinity();
    for (int k = 0; k < 5; ++k) {
        solver.cycle();
        const double r = solver.maxScaledResidualK();
        EXPECT_LT(r, prev) << "cycle " << k;
        prev = r;
    }
}

TEST(Multigrid, MatchesSorFieldOnPlanarStack)
{
    ThermalParams p = fastParams();
    p.maxResidualK = 1e-6; // tight so both solvers converge hard
    ThermalParams pmg = p;
    pmg.solver = SolverKind::Multigrid;

    ThermalGrid sor = makePlanarGrid(p);
    ThermalGrid mg = makePlanarGrid(pmg);
    for (ThermalGrid *g : {&sor, &mg}) {
        g->addPower(0, 1.0, 1.0, 4.0, 4.0, 30.0);
        g->addPower(0, 8.0, 8.0, 2.0, 2.0, 15.0);
    }

    const ThermalField fs = sor.solve();
    ThermalGrid::SolveStats stats;
    const ThermalField fm = mg.solve(&stats);
    EXPECT_GT(stats.vcycles, 0);
    EXPECT_LT(stats.vcycles, 100);
    for (int l = 0; l < fs.layers(); ++l)
        for (int iy = 0; iy < p.gridN; ++iy)
            for (int ix = 0; ix < p.gridN; ++ix)
                EXPECT_NEAR(fs.at(l, ix, iy), fm.at(l, ix, iy), 1e-3)
                    << "layer " << l << " (" << ix << "," << iy << ")";
}

TEST(Multigrid, MatchesSorPeakOnStackedStack)
{
    // The fig-10 style 4-die stack with per-die power.
    ThermalParams p;
    p.gridN = 24;
    p.maxResidualK = 1e-6;
    ThermalParams pmg = p;
    pmg.solver = SolverKind::Multigrid;

    ThermalGrid sor(p, HotspotModel::stackedStack(), 6.0, 6.0);
    ThermalGrid mg(pmg, HotspotModel::stackedStack(), 6.0, 6.0);
    for (ThermalGrid *g : {&sor, &mg}) {
        for (int d = 0; d < kNumDies; ++d)
            g->addPower(d, 1.0, 1.0, 3.0, 3.0, 10.0);
    }
    EXPECT_NEAR(sor.solve().peak(sor.dieLayers()),
                mg.solve().peak(mg.dieLayers()), 1e-3);
}

TEST(Multigrid, WarmStartConvergesInFewCycles)
{
    ThermalParams p = fastParams();
    p.solver = SolverKind::Multigrid;
    p.maxResidualK = 1e-6;
    ThermalGrid grid = makePlanarGrid(p);
    grid.addPower(0, 2.0, 2.0, 4.0, 4.0, 40.0);

    ThermalGrid::SolveStats cold;
    const ThermalField f = grid.solve(&cold);
    ThermalGrid::SolveStats warm;
    const ThermalField g = grid.solve(&warm, &f);
    EXPECT_LE(warm.vcycles, cold.vcycles);
    // Re-solving from the converged field stays converged: both fields
    // sit within the stopping error of the same fixed point, so they
    // agree to a few multiples of the (delta-based) tolerance.
    for (int l = 0; l < f.layers(); ++l)
        for (int iy = 0; iy < p.gridN; ++iy)
            for (int ix = 0; ix < p.gridN; ++ix)
                EXPECT_NEAR(f.at(l, ix, iy), g.at(l, ix, iy), 2e-3);
}

TEST(ThermalGridDeathTest, ChipLargerThanSpreaderFatal)
{
    ThermalParams p = fastParams();
    p.spreaderMm = 5.0;
    EXPECT_EXIT((ThermalGrid{p, HotspotModel::planarStack(), 12.0, 12.0}),
                ::testing::ExitedWithCode(1), "spreader");
}

TEST(ThermalGridDeathTest, PowerOnMissingDie)
{
    ThermalGrid grid = makePlanarGrid(fastParams());
    EXPECT_DEATH(grid.addPower(2, 0, 0, 1, 1, 5.0), "die");
}

} // namespace
} // namespace th
