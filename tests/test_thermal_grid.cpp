#include <gtest/gtest.h>

#include "thermal/grid.h"
#include "thermal/hotspot.h"

namespace th {
namespace {

ThermalParams
fastParams()
{
    ThermalParams p;
    p.gridN = 24;
    p.maxResidualK = 1e-3;
    return p;
}

ThermalGrid
makePlanarGrid(const ThermalParams &p)
{
    return ThermalGrid(p, HotspotModel::planarStack(), 12.0, 12.0);
}

TEST(ThermalGrid, NoPowerStaysAmbient)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = makePlanarGrid(p);
    const ThermalField f = grid.solve();
    EXPECT_NEAR(f.peak(grid.dieLayers()), p.ambientK, 0.5);
}

TEST(ThermalGrid, PowerHeatsTheDie)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = makePlanarGrid(p);
    grid.addPower(0, 4.0, 4.0, 4.0, 4.0, 50.0);
    const ThermalField f = grid.solve();
    EXPECT_GT(f.peak(grid.dieLayers()), p.ambientK + 10.0);
}

TEST(ThermalGrid, MorePowerIsHotter)
{
    const ThermalParams p = fastParams();
    double peaks[2];
    int i = 0;
    for (double w : {30.0, 60.0}) {
        ThermalGrid grid = makePlanarGrid(p);
        grid.addPower(0, 4.0, 4.0, 4.0, 4.0, w);
        peaks[i++] = grid.solve().peak(grid.dieLayers());
    }
    EXPECT_GT(peaks[1], peaks[0] + 5.0);
}

TEST(ThermalGrid, ConcentratedPowerHotterThanSpread)
{
    const ThermalParams p = fastParams();
    ThermalGrid tight = makePlanarGrid(p);
    tight.addPower(0, 5.0, 5.0, 2.0, 2.0, 40.0);
    ThermalGrid spread = makePlanarGrid(p);
    spread.addPower(0, 0.0, 0.0, 12.0, 12.0, 40.0);
    EXPECT_GT(tight.solve().peak(tight.dieLayers()),
              spread.solve().peak(spread.dieLayers()) + 3.0);
}

TEST(ThermalGrid, HotspotIsUnderThePowerSource)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = makePlanarGrid(p);
    grid.addPower(0, 1.0, 1.0, 2.0, 2.0, 30.0);
    const ThermalField f = grid.solve();
    double a_avg, a_peak, b_avg, b_peak;
    grid.blockTemps(f, 0, 1.0, 1.0, 2.0, 2.0, a_avg, a_peak);
    grid.blockTemps(f, 0, 9.0, 9.0, 2.0, 2.0, b_avg, b_peak);
    EXPECT_GT(a_avg, b_avg + 2.0);
}

TEST(ThermalGrid, BlockAvgBelowPeak)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = makePlanarGrid(p);
    grid.addPower(0, 3.0, 3.0, 1.0, 1.0, 25.0);
    const ThermalField f = grid.solve();
    double avg, peak;
    grid.blockTemps(f, 0, 0.0, 0.0, 12.0, 12.0, avg, peak);
    EXPECT_LE(avg, peak);
}

TEST(ThermalGrid, TotalPowerAccounting)
{
    ThermalGrid grid = makePlanarGrid(fastParams());
    grid.addPower(0, 1.0, 1.0, 3.0, 3.0, 12.5);
    grid.addPower(0, 6.0, 6.0, 2.0, 2.0, 7.5);
    EXPECT_NEAR(grid.totalPower(), 20.0, 1e-9);
    grid.clearPower();
    EXPECT_DOUBLE_EQ(grid.totalPower(), 0.0);
}

TEST(ThermalGrid, EdgeClippedRectKeepsItsWatts)
{
    // A block at the chip edge must deposit all its power.
    ThermalGrid grid = makePlanarGrid(fastParams());
    grid.addPower(0, 11.0, 11.0, 1.0, 1.0, 5.0);
    EXPECT_NEAR(grid.totalPower(), 5.0, 1e-9);
}

TEST(ThermalGrid, StackedDeeperDieRunsHotter)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid(p, HotspotModel::stackedStack(), 6.0, 6.0);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 0.0, 0.0, 6.0, 6.0, 15.0);
    const ThermalField f = grid.solve();
    double a0, p0, a3, p3;
    grid.blockTemps(f, 0, 0.0, 0.0, 6.0, 6.0, a0, p0);
    grid.blockTemps(f, 3, 0.0, 0.0, 6.0, 6.0, a3, p3);
    // Die 3 is farthest from the sink.
    EXPECT_GT(a3, a0);
}

TEST(ThermalGrid, HerdingPowerToTopDieIsCooler)
{
    const ThermalParams p = fastParams();
    ThermalGrid herd(p, HotspotModel::stackedStack(), 6.0, 6.0);
    herd.addPower(0, 0.0, 0.0, 6.0, 6.0, 45.0);
    for (int d = 1; d < kNumDies; ++d)
        herd.addPower(d, 0.0, 0.0, 6.0, 6.0, 5.0);

    ThermalGrid flat(p, HotspotModel::stackedStack(), 6.0, 6.0);
    for (int d = 0; d < kNumDies; ++d)
        flat.addPower(d, 0.0, 0.0, 6.0, 6.0, 15.0);

    EXPECT_LT(herd.solve().peak(herd.dieLayers()),
              flat.solve().peak(flat.dieLayers()));
}

TEST(ThermalGrid, DieLayersEnumerated)
{
    ThermalGrid planar = makePlanarGrid(fastParams());
    EXPECT_EQ(planar.dieLayers().size(), 1u);
    EXPECT_EQ(planar.dieLayer(0), 3);
    EXPECT_EQ(planar.dieLayer(7), -1);

    ThermalGrid stacked(fastParams(), HotspotModel::stackedStack(),
                        6.0, 6.0);
    EXPECT_EQ(stacked.dieLayers().size(), 4u);
}

TEST(ThermalGridDeathTest, ChipLargerThanSpreaderFatal)
{
    ThermalParams p = fastParams();
    p.spreaderMm = 5.0;
    EXPECT_EXIT((ThermalGrid{p, HotspotModel::planarStack(), 12.0, 12.0}),
                ::testing::ExitedWithCode(1), "spreader");
}

TEST(ThermalGridDeathTest, PowerOnMissingDie)
{
    ThermalGrid grid = makePlanarGrid(fastParams());
    EXPECT_DEATH(grid.addPower(2, 0, 0, 1, 1, 5.0), "die");
}

} // namespace
} // namespace th
