#include <gtest/gtest.h>

#include "thermal/hotspot.h"

namespace th {
namespace {

/** Synthetic power result: spread dynamic watts evenly per block. */
PowerResult
uniformPower(double dyn_per_block, bool stacked, double clock_w = 20.0,
             double leak_w = 18.0)
{
    PowerResult p;
    p.clockW = clock_w;
    p.leakW = leak_w;
    for (auto &b : p.coreBlocks) {
        if (stacked) {
            for (int d = 0; d < kNumDies; ++d)
                b.dieW[static_cast<size_t>(d)] =
                    dyn_per_block / kNumDies;
        } else {
            b.dieW[0] = dyn_per_block;
        }
    }
    if (stacked) {
        for (int d = 0; d < kNumDies; ++d)
            p.l2.dieW[static_cast<size_t>(d)] = dyn_per_block / kNumDies;
    } else {
        p.l2.dieW[0] = dyn_per_block;
    }
    return p;
}

ThermalParams
fastParams()
{
    ThermalParams p;
    p.gridN = 24;
    p.maxResidualK = 1e-3;
    p.leakFeedbackIters = 3;
    return p;
}

TEST(Hotspot, PlanarReportCoversAllBlocks)
{
    HotspotModel model(fastParams());
    const Floorplan fp = FloorplanBuilder::planar();
    const ThermalReport rep =
        model.analyze(fp, uniformPower(1.0, false), false);
    // L2 + two cores' blocks, one die each.
    EXPECT_EQ(rep.blocks.size(), 1u + 2u * kNumCoreBlocks);
    EXPECT_GT(rep.peakK, 318.15);
    EXPECT_FALSE(rep.hottestBlock.empty());
}

TEST(Hotspot, StackedReportHasFourDiesPerBlock)
{
    HotspotModel model(fastParams());
    const Floorplan fp = FloorplanBuilder::stacked();
    const ThermalReport rep =
        model.analyze(fp, uniformPower(1.0, true), true);
    EXPECT_EQ(rep.blocks.size(),
              (1u + 2u * kNumCoreBlocks) * kNumDies);
}

TEST(Hotspot, SamePowerOnQuarterFootprintIsHotter)
{
    HotspotModel model(fastParams());
    const ThermalReport planar = model.analyze(
        FloorplanBuilder::planar(), uniformPower(1.0, false), false);
    const ThermalReport stacked = model.analyze(
        FloorplanBuilder::stacked(), uniformPower(1.0, true), true);
    // Identical wattage, 4x the density: the 3D stack must run hotter
    // (the paper's central thermal concern).
    EXPECT_GT(stacked.peakK, planar.peakK + 5.0);
}

TEST(Hotspot, PowerScaleRaisesTemperature)
{
    HotspotModel model(fastParams());
    const Floorplan fp = FloorplanBuilder::stacked();
    const PowerResult p = uniformPower(1.0, true);
    const ThermalReport base = model.analyze(fp, p, true, 1.0);
    const ThermalReport hot = model.analyze(fp, p, true, 1.3);
    EXPECT_GT(hot.peakK, base.peakK + 2.0);
}

TEST(Hotspot, HighPowerBlockIsHottest)
{
    HotspotModel model(fastParams());
    const Floorplan fp = FloorplanBuilder::planar();
    PowerResult p = uniformPower(0.2, false);
    p.coreBlocks[static_cast<size_t>(BlockId::DCache)].dieW[0] = 18.0;
    const ThermalReport rep = model.analyze(fp, p, false);
    EXPECT_EQ(rep.hottestBlock, "DCache");
}

TEST(Hotspot, BlockPeakLookup)
{
    HotspotModel model(fastParams());
    const Floorplan fp = FloorplanBuilder::planar();
    const ThermalReport rep =
        model.analyze(fp, uniformPower(1.0, false), false);
    EXPECT_GT(rep.blockPeakK(BlockId::Scheduler), 318.15);
    EXPECT_LE(rep.blockPeakK(BlockId::Scheduler), rep.peakK);
}

TEST(Hotspot, LeakageFeedbackAmplifiesHotRuns)
{
    ThermalParams with = fastParams();
    ThermalParams without = fastParams();
    without.leakFeedbackIters = 1; // first pass uses nominal leakage
    const Floorplan fp = FloorplanBuilder::stacked();
    const PowerResult p = uniformPower(1.2, true, 25.0, 18.0);
    const double t_fb =
        HotspotModel(with).analyze(fp, p, true).peakK;
    const double t_no =
        HotspotModel(without).analyze(fp, p, true).peakK;
    EXPECT_GT(t_fb, t_no);
}

TEST(Hotspot, StackLayersOrdered)
{
    const auto planar = HotspotModel::planarStack();
    ASSERT_GE(planar.size(), 4u);
    EXPECT_EQ(planar.front().name, "sink");
    EXPECT_EQ(planar.back().dieIndex, 0);

    const auto stacked = HotspotModel::stackedStack();
    int dies = 0;
    for (const auto &l : stacked)
        if (l.dieIndex >= 0)
            ++dies;
    EXPECT_EQ(dies, kNumDies);
    // Die 0 must be nearer the sink than die 3.
    int l0 = -1, l3 = -1;
    for (size_t i = 0; i < stacked.size(); ++i) {
        if (stacked[i].dieIndex == 0)
            l0 = static_cast<int>(i);
        if (stacked[i].dieIndex == 3)
            l3 = static_cast<int>(i);
    }
    EXPECT_LT(l0, l3);
}

} // namespace
} // namespace th
