#include <gtest/gtest.h>

#include "circuit/adder.h"
#include "circuit/bypass.h"

namespace th {
namespace {

TEST(Adder, StackedNotSlowerThanPlanar)
{
    AdderModel adder(64);
    EXPECT_LE(adder.stacked().total(), adder.planar().total());
}

TEST(Adder, ImprovementIsSmall)
{
    // Section 5.1.1: the adder accounts for only ~3 points of the 36%
    // ALU+bypass improvement — its own gain is a few percent.
    AdderModel adder(64);
    const double gain =
        1.0 - adder.stacked().total() / adder.planar().total();
    EXPECT_GT(gain, 0.0);
    EXPECT_LT(gain, 0.10);
}

TEST(Adder, GateDelayUnchangedByStacking)
{
    AdderModel adder(64);
    EXPECT_DOUBLE_EQ(adder.planar().gateDelay,
                     adder.stacked().gateDelay);
}

TEST(Adder, StackedHasViaDelay)
{
    AdderModel adder(64);
    EXPECT_EQ(adder.planar().viaDelay, 0.0);
    EXPECT_GT(adder.stacked().viaDelay, 0.0);
}

TEST(Adder, LowWidthEnergyIsQuarter)
{
    AdderModel adder(64);
    const AdderResult r = adder.planar();
    EXPECT_NEAR(r.energyLow, r.energyFull * 0.25, 1e-12);
}

TEST(Adder, WiderAdderSlower)
{
    AdderModel a16(16), a64(64);
    EXPECT_LT(a16.planar().total(), a64.planar().total());
}

TEST(Bypass, StackedFaster)
{
    BypassModel byp;
    EXPECT_LT(byp.stacked().total(), byp.planar().total());
}

TEST(Bypass, WireDominatedImprovement)
{
    // The compacted 3D cluster cuts the bus flight time by well over
    // half (Figure 5: width and height to a quarter).
    BypassModel byp;
    EXPECT_LT(byp.stacked().wireDelay, byp.planar().wireDelay * 0.5);
}

TEST(Bypass, PlanarCannotGateLowWidth)
{
    BypassModel byp;
    const BypassResult r = byp.planar();
    EXPECT_DOUBLE_EQ(r.energyLow, r.energyFull);
}

TEST(Bypass, StackedLowWidthQuarterEnergy)
{
    BypassModel byp;
    const BypassResult r = byp.stacked();
    EXPECT_NEAR(r.energyLow, r.energyFull * 16.0 / 64.0, 1e-12);
}

TEST(Bypass, MoreFuncUnitsLongerBus)
{
    BypassParams few, many;
    few.funcUnits = 4;
    many.funcUnits = 10;
    BypassModel a(few), b(many);
    EXPECT_LT(a.planar().wireDelay, b.planar().wireDelay);
}

TEST(Bypass, MuxDelayIndependentOfStacking)
{
    BypassModel byp;
    EXPECT_DOUBLE_EQ(byp.planar().muxDelay, byp.stacked().muxDelay);
}

} // namespace
} // namespace th
