#include <gtest/gtest.h>

#include "common/bitutil.h"

namespace th {
namespace {

TEST(SignificantBits, Zero)
{
    EXPECT_EQ(significantBits(0), 0);
}

TEST(SignificantBits, One)
{
    EXPECT_EQ(significantBits(1), 1);
}

TEST(SignificantBits, PowersOfTwo)
{
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(significantBits(1ULL << i), i + 1) << "bit " << i;
}

TEST(SignificantBits, AllOnes)
{
    EXPECT_EQ(significantBits(~0ULL), 64);
}

TEST(ClassifyWidth, LowValues)
{
    EXPECT_EQ(classifyWidth(0), Width::Low);
    EXPECT_EQ(classifyWidth(1), Width::Low);
    EXPECT_EQ(classifyWidth(0xFFFF), Width::Low);
}

TEST(ClassifyWidth, FullValues)
{
    EXPECT_EQ(classifyWidth(0x10000), Width::Full);
    EXPECT_EQ(classifyWidth(~0ULL), Width::Full);
    EXPECT_EQ(classifyWidth(1ULL << 63), Width::Full);
}

TEST(ClassifyWidth, BoundaryIsExactly16Bits)
{
    EXPECT_EQ(classifyWidth((1ULL << 16) - 1), Width::Low);
    EXPECT_EQ(classifyWidth(1ULL << 16), Width::Full);
}

TEST(PartialValue, UpperZeros)
{
    EXPECT_EQ(encodePartialValue(0x1234, 0xdeadbeef),
              PartialValueCode::UpperZeros);
    EXPECT_EQ(encodePartialValue(0, 0), PartialValueCode::UpperZeros);
}

TEST(PartialValue, UpperOnes)
{
    const std::uint64_t neg = ~0ULL << 3; // small negative
    EXPECT_EQ(encodePartialValue(~0ULL, 0), PartialValueCode::UpperOnes);
    EXPECT_EQ(encodePartialValue(neg | 0xFFFF, 0),
              PartialValueCode::UpperOnes);
}

TEST(PartialValue, UpperMatchesAddress)
{
    const Addr addr = 0x0000200000001230ULL;
    const std::uint64_t ptr = (addr & kUpperMask) | 0x42;
    EXPECT_EQ(encodePartialValue(ptr, addr), PartialValueCode::UpperAddr);
}

TEST(PartialValue, Explicit)
{
    EXPECT_EQ(encodePartialValue(0x123456789abcULL, 0),
              PartialValueCode::Explicit);
}

TEST(PartialValue, ZeroTakesPriorityOverAddr)
{
    // A zero-upper value whose address also has zero uppers must
    // encode as UpperZeros (codes are checked in order).
    EXPECT_EQ(encodePartialValue(0x7, 0x9),
              PartialValueCode::UpperZeros);
}

/** Round-trip property over a spread of values and addresses. */
class PartialValueRoundTrip
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PartialValueRoundTrip, EncodableValuesDecodeExactly)
{
    const std::uint64_t v = GetParam();
    const Addr addrs[] = {0, 0x00007fffff001000ULL,
                          0x0000200000004000ULL, v & kUpperMask};
    for (Addr a : addrs) {
        const PartialValueCode code = encodePartialValue(v, a);
        if (code == PartialValueCode::Explicit)
            continue;
        EXPECT_EQ(decodePartialValue(v & kTopDieMask, code, a), v)
            << "value " << std::hex << v << " addr " << a;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ValueSweep, PartialValueRoundTrip,
    ::testing::Values(0ULL, 1ULL, 0xFFFFULL, 0x10000ULL, ~0ULL,
                      0xFFFFFFFFFFFF0000ULL, 0x00007fffff001008ULL,
                      0x0000200000004242ULL, 0x123456789abcdef0ULL,
                      0x8000000000000000ULL));

TEST(IsTriviallyEncodable, CoversThreeCheapCodes)
{
    EXPECT_TRUE(isTriviallyEncodable(0x12, 0));
    EXPECT_TRUE(isTriviallyEncodable(~0ULL, 0));
    const Addr a = 0x0000200000001000ULL;
    EXPECT_TRUE(isTriviallyEncodable((a & kUpperMask) | 0x8, a));
    EXPECT_FALSE(isTriviallyEncodable(0xABCD00000001ULL, 0));
}

TEST(ActiveDies, LowUsesOnlyTopDie)
{
    EXPECT_EQ(activeDies(Width::Low), 1);
    EXPECT_EQ(activeDies(Width::Full), kNumDies);
}

TEST(Log2Exact, Powers)
{
    EXPECT_EQ(log2Exact(1), 0);
    EXPECT_EQ(log2Exact(2), 1);
    EXPECT_EQ(log2Exact(4096), 12);
}

TEST(NextPow2, RoundsUp)
{
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(3), 4u);
    EXPECT_EQ(nextPow2(64), 64u);
    EXPECT_EQ(nextPow2(65), 128u);
}

TEST(Masks, Consistent)
{
    EXPECT_EQ(kTopDieMask, 0xFFFFULL);
    EXPECT_EQ(kTopDieMask | kUpperMask, ~0ULL);
    EXPECT_EQ(kTopDieMask & kUpperMask, 0ULL);
}

} // namespace
} // namespace th
