/**
 * Loopback tests of the th_serve stack: a real SimServer on an
 * ephemeral 127.0.0.1 port, driven by real SimClients. Covers the
 * acceptance contract of the serving layer — served responses are
 * byte-identical to direct local runs, identical concurrent requests
 * coalesce onto one simulation, overload is a structured reject,
 * deadlines cancel abandoned work, and shutdown drains admitted work.
 *
 * The startWorkersPaused seam makes the concurrency tests
 * deterministic: requests stack up against a parked worker pool, the
 * test asserts the queue/flight state it arranged, then releases the
 * workers.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/version.h"
#include "net/client.h"
#include "net/server.h"
#include "sim/report.h"

namespace th {
namespace {

/**
 * Server options sized for test speed: a tiny simulation window, no
 * persistent store. TH_STORE_DIR is scrubbed from the environment —
 * a leaked store would make "how many simulations ran" depend on what
 * a previous run persisted.
 */
ServerOptions
testOptionsNoStore()
{
    ::unsetenv("TH_STORE_DIR");
    ServerOptions opts;
    opts.host = "127.0.0.1";
    opts.port = 0; // Ephemeral; parallel test runs must not collide.
    opts.sim.instructions = 20000;
    opts.sim.warmupInstructions = 5000;
    return opts;
}

/** A Core request for @p benchmark on @p config. */
SimRequest
coreRequest(const std::string &benchmark, const std::string &config)
{
    SimRequest req;
    req.kind = SimRequestKind::Core;
    req.benchmarks = {benchmark};
    req.config = config;
    return req;
}

/** Spin until @p cond or @p ms elapse; true when the condition held. */
template <typename Cond>
bool
waitFor(Cond cond, int ms = 5000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    while (!cond()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

TEST(NetTest, HandshakeEchoesBuildInfo)
{
    SimServer server(testOptionsNoStore());
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;
    ASSERT_NE(server.port(), 0);

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;
    EXPECT_EQ(client.serverBuild(), buildInfo());

    SimRequest ping;
    ping.kind = SimRequestKind::Ping;
    SimResponse rsp;
    ASSERT_TRUE(client.call(ping, rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::Ok);
    EXPECT_EQ(rsp.text, std::string(buildInfo()) + "\n");
}

TEST(NetTest, ServedCoreRunIsByteIdenticalToDirectRun)
{
    ServerOptions opts = testOptionsNoStore();
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;
    SimResponse rsp;
    ASSERT_TRUE(client.call(coreRequest("gcc", "Base"), rsp, err)) << err;
    ASSERT_EQ(rsp.status, SimStatus::Ok) << rsp.error;

    // A direct System under the same options must render the same
    // bytes — the served path adds nothing and loses nothing.
    System direct(opts.sim);
    const CoreResult r = direct.runCore("gcc", ConfigKind::Base);
    EXPECT_EQ(rsp.text, renderCoreRun("gcc", "Base", r));
}

TEST(NetTest, ServedWidthStudyIsByteIdenticalToDirectRun)
{
    ServerOptions opts = testOptionsNoStore();
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;
    SimRequest req;
    req.kind = SimRequestKind::Width;
    req.benchmarks = {"gcc"};
    SimResponse rsp;
    ASSERT_TRUE(client.call(req, rsp, err)) << err;
    ASSERT_EQ(rsp.status, SimStatus::Ok) << rsp.error;

    System direct(opts.sim);
    EXPECT_EQ(rsp.text, renderWidth(runWidthStudy(direct, {"gcc"})));
}

TEST(NetTest, ValidationRejectsBadRequestsStructurally)
{
    SimServer server(testOptionsNoStore());
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;
    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;

    SimResponse rsp;
    // Unknown benchmark.
    ASSERT_TRUE(client.call(coreRequest("no-such-app", "Base"), rsp, err));
    EXPECT_EQ(rsp.status, SimStatus::BadRequest);
    EXPECT_NE(rsp.error.find("unknown benchmark"), std::string::npos);

    // Unknown config.
    ASSERT_TRUE(client.call(coreRequest("gcc", "Bogus"), rsp, err));
    EXPECT_EQ(rsp.status, SimStatus::BadRequest);

    // Window mismatch: the store keys omit insts/warmup, so the server
    // must refuse rather than serve a result from a different window.
    SimRequest req = coreRequest("gcc", "Base");
    req.insts = 999999;
    ASSERT_TRUE(client.call(req, rsp, err));
    EXPECT_EQ(rsp.status, SimStatus::BadRequest);
    EXPECT_NE(rsp.error.find("window"), std::string::npos);

    // Config on a sweep request is a client bug, not a simulation.
    SimRequest fig;
    fig.kind = SimRequestKind::Fig8;
    fig.config = "Base";
    ASSERT_TRUE(client.call(fig, rsp, err));
    EXPECT_EQ(rsp.status, SimStatus::BadRequest);

    EXPECT_GE(server.metrics().badRequests(), 4u);
    // The connection survives structured errors.
    SimRequest ping;
    ping.kind = SimRequestKind::Ping;
    ASSERT_TRUE(client.call(ping, rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::Ok);
}

TEST(NetTest, IdenticalConcurrentRequestsCoalesceOntoOneSimulation)
{
    ServerOptions opts = testOptionsNoStore();
    opts.workers = 2;
    opts.startWorkersPaused = true;
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    constexpr int kClients = 4;
    std::vector<std::thread> threads;
    std::vector<SimResponse> responses(kClients);
    std::vector<std::string> errors(kClients);
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            SimClient client;
            std::string cerr;
            if (!client.connect("127.0.0.1", server.port(), cerr)) {
                errors[i] = cerr;
                return;
            }
            SimResponse rsp;
            if (!client.call(coreRequest("gcc", "Base"), rsp, cerr))
                errors[i] = cerr;
            else
                responses[i] = rsp;
        });
    }

    // With the workers parked, all four requests must pile onto one
    // flight: three dedup hits, zero simulations so far.
    ASSERT_TRUE(waitFor([&] {
        return server.metrics().dedupHits() == kClients - 1;
    })) << "requests did not coalesce; dedupHits="
        << server.metrics().dedupHits();
    EXPECT_EQ(server.metrics().simulationsRun(), 0u);

    server.resumeWorkers();
    for (std::thread &t : threads)
        t.join();

    // Exactly one simulation ran...
    EXPECT_EQ(server.metrics().simulationsRun(), 1u);
    const System::CacheStats cache = server.system().coreCacheStats();
    EXPECT_EQ(cache.misses, 1u);

    // ...and every waiter got the same bytes, which are the bytes a
    // direct System::runCore would have produced.
    System direct(opts.sim);
    const std::string expect =
        renderCoreRun("gcc", "Base", direct.runCore("gcc", ConfigKind::Base));
    for (int i = 0; i < kClients; ++i) {
        ASSERT_TRUE(errors[i].empty()) << errors[i];
        EXPECT_EQ(responses[i].status, SimStatus::Ok) << responses[i].error;
        EXPECT_EQ(responses[i].text, expect);
    }
}

TEST(NetTest, FullQueueRejectsWithStructuredOverload)
{
    ServerOptions opts = testOptionsNoStore();
    opts.workers = 1;
    opts.queueCapacity = 1;
    opts.startWorkersPaused = true;
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;

    // Occupy the whole queue with a request whose waiter gives up
    // almost immediately: the reply is DeadlineExceeded, the work item
    // stays queued (cancelled), and the pool is parked so it cannot
    // drain.
    SimRequest occupant = coreRequest("gcc", "Base");
    occupant.deadlineMs = 1;
    SimResponse rsp;
    ASSERT_TRUE(client.call(occupant, rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::DeadlineExceeded);
    EXPECT_EQ(server.metrics().deadlineExpired(), 1u);

    // A different simulation now finds the queue full: a structured
    // busy reply, not a hang and not a dropped connection.
    ASSERT_TRUE(client.call(coreRequest("mcf", "Base"), rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::Overloaded);
    EXPECT_NE(rsp.error.find("queue full"), std::string::npos);
    EXPECT_EQ(server.metrics().rejectedOverload(), 1u);

    // Release the pool: it discards the cancelled occupant without
    // simulating (nobody is waiting) and the server is healthy again.
    // Wait for the pop before re-submitting — admission races the
    // worker's dequeue, and losing that race is just another honest
    // Overloaded.
    server.resumeWorkers();
    ASSERT_TRUE(waitFor([&] {
        SimRequest m;
        m.kind = SimRequestKind::Metrics;
        SimResponse mrsp;
        std::string merr;
        return client.call(m, mrsp, merr) &&
               mrsp.text.find("queue_depth 0\n") != std::string::npos;
    }));
    ASSERT_TRUE(client.call(coreRequest("mcf", "Base"), rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::Ok) << rsp.error;
    EXPECT_EQ(server.metrics().simulationsRun(), 1u)
        << "the abandoned occupant must not have been simulated";
}

TEST(NetTest, ShutdownDrainsAdmittedWorkBeforeExiting)
{
    ServerOptions opts = testOptionsNoStore();
    opts.workers = 1;
    opts.startWorkersPaused = true;
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    SimResponse admitted_rsp;
    std::string admitted_err;
    std::thread waiter([&] {
        SimClient client;
        std::string cerr;
        if (!client.connect("127.0.0.1", server.port(), cerr)) {
            admitted_err = cerr;
            return;
        }
        SimResponse rsp;
        if (!client.call(coreRequest("gcc", "Base"), rsp, cerr))
            admitted_err = cerr;
        else
            admitted_rsp = rsp;
    });

    // Wait until the request is admitted (it is the flight creator, so
    // one queued item and zero dedup hits mark the admission).
    SimClient probe;
    ASSERT_TRUE(probe.connect("127.0.0.1", server.port(), err)) << err;
    ASSERT_TRUE(waitFor([&] {
        SimRequest m;
        m.kind = SimRequestKind::Metrics;
        SimResponse rsp;
        std::string perr;
        if (!probe.call(m, rsp, perr))
            return false;
        return rsp.text.find("queue_depth 1\n") != std::string::npos;
    }));

    // shutdown() resumes the pool, finishes the admitted simulation,
    // delivers its response, then tears the connections down.
    server.shutdown();
    waiter.join();
    ASSERT_TRUE(admitted_err.empty()) << admitted_err;
    EXPECT_EQ(admitted_rsp.status, SimStatus::Ok) << admitted_rsp.error;
    EXPECT_FALSE(admitted_rsp.text.empty());
    EXPECT_EQ(server.metrics().simulationsRun(), 1u);

    // The port no longer accepts new connections.
    SimClient late;
    EXPECT_FALSE(late.connect("127.0.0.1", server.port(), err));
}

TEST(NetTest, RepeatedRequestIsServedFromTheCoreCache)
{
    ServerOptions opts = testOptionsNoStore();
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;
    SimResponse first, second;
    ASSERT_TRUE(client.call(coreRequest("gcc", "Base"), first, err));
    ASSERT_EQ(first.status, SimStatus::Ok) << first.error;
    ASSERT_TRUE(client.call(coreRequest("gcc", "Base"), second, err));
    ASSERT_EQ(second.status, SimStatus::Ok) << second.error;

    EXPECT_EQ(first.text, second.text);
    const System::CacheStats cache = server.system().coreCacheStats();
    EXPECT_EQ(cache.misses, 1u) << "warm repeat must not re-simulate";
    EXPECT_EQ(cache.hits, 1u);
}

TEST(NetTest, MetricsSnapshotExposesTheServingCounters)
{
    SimServer server(testOptionsNoStore());
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;
    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;

    SimResponse rsp;
    ASSERT_TRUE(client.call(coreRequest("gcc", "Base"), rsp, err));
    ASSERT_EQ(rsp.status, SimStatus::Ok) << rsp.error;

    SimRequest m;
    m.kind = SimRequestKind::Metrics;
    ASSERT_TRUE(client.call(m, rsp, err)) << err;
    ASSERT_EQ(rsp.status, SimStatus::Ok);
    for (const char *key :
         {"requests_served ", "queue_depth ", "dedup_hits ",
          "simulations_run ", "rejected_overload ", "latency_p50_us_le ",
          "latency_p99_us_le ", "core_cache_hits ", "store_race_lost "})
        EXPECT_NE(rsp.text.find(key), std::string::npos)
            << "metrics text lacks '" << key << "':\n" << rsp.text;
    EXPECT_NE(rsp.text.find("simulations_run 1\n"), std::string::npos);
}

} // namespace
} // namespace th
