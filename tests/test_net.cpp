/**
 * Loopback tests of the th_serve stack: a real SimServer on an
 * ephemeral 127.0.0.1 port, driven by real SimClients. Covers the
 * acceptance contract of the serving layer — served responses are
 * byte-identical to direct local runs, identical concurrent requests
 * coalesce onto one simulation, overload is a structured reject,
 * deadlines cancel abandoned work, and shutdown drains admitted work.
 *
 * The startWorkersPaused seam makes the concurrency tests
 * deterministic: requests stack up against a parked worker pool, the
 * test asserts the queue/flight state it arranged, then releases the
 * workers.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <climits>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/resource.h>

#include "common/version.h"
#include "io/serialize.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "sim/report.h"

namespace th {
namespace {

/**
 * Server options sized for test speed: a tiny simulation window, no
 * persistent store. TH_STORE_DIR is scrubbed from the environment —
 * a leaked store would make "how many simulations ran" depend on what
 * a previous run persisted.
 */
ServerOptions
testOptionsNoStore()
{
    ::unsetenv("TH_STORE_DIR");
    ServerOptions opts;
    opts.host = "127.0.0.1";
    opts.port = 0; // Ephemeral; parallel test runs must not collide.
    opts.sim.instructions = 20000;
    opts.sim.warmupInstructions = 5000;
    return opts;
}

/** A Core request for @p benchmark on @p config. */
SimRequest
coreRequest(const std::string &benchmark, const std::string &config)
{
    SimRequest req;
    req.kind = SimRequestKind::Core;
    req.benchmarks = {benchmark};
    req.config = config;
    return req;
}

/** Spin until @p cond or @p ms elapse; true when the condition held. */
template <typename Cond>
bool
waitFor(Cond cond, int ms = 5000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    while (!cond()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

TEST(NetTest, HandshakeEchoesBuildInfo)
{
    SimServer server(testOptionsNoStore());
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;
    ASSERT_NE(server.port(), 0);

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;
    EXPECT_EQ(client.serverBuild(), buildInfo());

    SimRequest ping;
    ping.kind = SimRequestKind::Ping;
    SimResponse rsp;
    ASSERT_TRUE(client.call(ping, rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::Ok);
    EXPECT_EQ(rsp.text, std::string(buildInfo()) + "\n");
}

TEST(NetTest, ServedCoreRunIsByteIdenticalToDirectRun)
{
    ServerOptions opts = testOptionsNoStore();
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;
    SimResponse rsp;
    ASSERT_TRUE(client.call(coreRequest("gcc", "Base"), rsp, err)) << err;
    ASSERT_EQ(rsp.status, SimStatus::Ok) << rsp.error;

    // A direct System under the same options must render the same
    // bytes — the served path adds nothing and loses nothing.
    System direct(opts.sim);
    const CoreResult r = direct.runCore("gcc", ConfigKind::Base);
    EXPECT_EQ(rsp.text, renderCoreRun("gcc", "Base", r));
}

TEST(NetTest, ServedWidthStudyIsByteIdenticalToDirectRun)
{
    ServerOptions opts = testOptionsNoStore();
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;
    SimRequest req;
    req.kind = SimRequestKind::Width;
    req.benchmarks = {"gcc"};
    SimResponse rsp;
    ASSERT_TRUE(client.call(req, rsp, err)) << err;
    ASSERT_EQ(rsp.status, SimStatus::Ok) << rsp.error;

    System direct(opts.sim);
    EXPECT_EQ(rsp.text, renderWidth(runWidthStudy(direct, {"gcc"})));
}

TEST(NetTest, ValidationRejectsBadRequestsStructurally)
{
    SimServer server(testOptionsNoStore());
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;
    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;

    SimResponse rsp;
    // Unknown benchmark.
    ASSERT_TRUE(client.call(coreRequest("no-such-app", "Base"), rsp, err));
    EXPECT_EQ(rsp.status, SimStatus::BadRequest);
    EXPECT_NE(rsp.error.find("unknown benchmark"), std::string::npos);

    // Unknown config.
    ASSERT_TRUE(client.call(coreRequest("gcc", "Bogus"), rsp, err));
    EXPECT_EQ(rsp.status, SimStatus::BadRequest);

    // Window mismatch: the store keys omit insts/warmup, so the server
    // must refuse rather than serve a result from a different window.
    SimRequest req = coreRequest("gcc", "Base");
    req.insts = 999999;
    ASSERT_TRUE(client.call(req, rsp, err));
    EXPECT_EQ(rsp.status, SimStatus::BadRequest);
    EXPECT_NE(rsp.error.find("window"), std::string::npos);

    // Config on a sweep request is a client bug, not a simulation.
    SimRequest fig;
    fig.kind = SimRequestKind::Fig8;
    fig.config = "Base";
    ASSERT_TRUE(client.call(fig, rsp, err));
    EXPECT_EQ(rsp.status, SimStatus::BadRequest);

    EXPECT_GE(server.metrics().badRequests(), 4u);
    // The connection survives structured errors.
    SimRequest ping;
    ping.kind = SimRequestKind::Ping;
    ASSERT_TRUE(client.call(ping, rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::Ok);
}

TEST(NetTest, IdenticalConcurrentRequestsCoalesceOntoOneSimulation)
{
    ServerOptions opts = testOptionsNoStore();
    opts.workers = 2;
    opts.startWorkersPaused = true;
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    constexpr int kClients = 4;
    std::vector<std::thread> threads;
    std::vector<SimResponse> responses(kClients);
    std::vector<std::string> errors(kClients);
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            SimClient client;
            std::string cerr;
            if (!client.connect("127.0.0.1", server.port(), cerr)) {
                errors[i] = cerr;
                return;
            }
            SimResponse rsp;
            if (!client.call(coreRequest("gcc", "Base"), rsp, cerr))
                errors[i] = cerr;
            else
                responses[i] = rsp;
        });
    }

    // With the workers parked, all four requests must pile onto one
    // flight: three dedup hits, zero simulations so far.
    ASSERT_TRUE(waitFor([&] {
        return server.metrics().dedupHits() == kClients - 1;
    })) << "requests did not coalesce; dedupHits="
        << server.metrics().dedupHits();
    EXPECT_EQ(server.metrics().simulationsRun(), 0u);

    server.resumeWorkers();
    for (std::thread &t : threads)
        t.join();

    // Exactly one simulation ran...
    EXPECT_EQ(server.metrics().simulationsRun(), 1u);
    const System::CacheStats cache = server.system().coreCacheStats();
    EXPECT_EQ(cache.misses, 1u);

    // ...and every waiter got the same bytes, which are the bytes a
    // direct System::runCore would have produced.
    System direct(opts.sim);
    const std::string expect =
        renderCoreRun("gcc", "Base", direct.runCore("gcc", ConfigKind::Base));
    for (int i = 0; i < kClients; ++i) {
        ASSERT_TRUE(errors[i].empty()) << errors[i];
        EXPECT_EQ(responses[i].status, SimStatus::Ok) << responses[i].error;
        EXPECT_EQ(responses[i].text, expect);
    }
}

TEST(NetTest, FullQueueRejectsWithStructuredOverload)
{
    ServerOptions opts = testOptionsNoStore();
    opts.workers = 1;
    opts.queueCapacity = 1;
    opts.startWorkersPaused = true;
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;

    // Occupy the whole queue with a request whose waiter gives up
    // almost immediately: the reply is DeadlineExceeded, the work item
    // stays queued (cancelled), and the pool is parked so it cannot
    // drain.
    SimRequest occupant = coreRequest("gcc", "Base");
    occupant.deadlineMs = 1;
    SimResponse rsp;
    ASSERT_TRUE(client.call(occupant, rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::DeadlineExceeded);
    EXPECT_EQ(server.metrics().deadlineExpired(), 1u);

    // A different simulation now finds the queue full: a structured
    // busy reply, not a hang and not a dropped connection.
    ASSERT_TRUE(client.call(coreRequest("mcf", "Base"), rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::Overloaded);
    EXPECT_NE(rsp.error.find("queue full"), std::string::npos);
    EXPECT_EQ(server.metrics().rejectedOverload(), 1u);

    // Release the pool: it discards the cancelled occupant without
    // simulating (nobody is waiting) and the server is healthy again.
    // Wait for the pop before re-submitting — admission races the
    // worker's dequeue, and losing that race is just another honest
    // Overloaded.
    server.resumeWorkers();
    ASSERT_TRUE(waitFor([&] {
        SimRequest m;
        m.kind = SimRequestKind::Metrics;
        SimResponse mrsp;
        std::string merr;
        return client.call(m, mrsp, merr) &&
               mrsp.text.find("queue_depth 0\n") != std::string::npos;
    }));
    ASSERT_TRUE(client.call(coreRequest("mcf", "Base"), rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::Ok) << rsp.error;
    EXPECT_EQ(server.metrics().simulationsRun(), 1u)
        << "the abandoned occupant must not have been simulated";
}

TEST(NetTest, ShutdownDrainsAdmittedWorkBeforeExiting)
{
    ServerOptions opts = testOptionsNoStore();
    opts.workers = 1;
    opts.startWorkersPaused = true;
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    SimResponse admitted_rsp;
    std::string admitted_err;
    std::thread waiter([&] {
        SimClient client;
        std::string cerr;
        if (!client.connect("127.0.0.1", server.port(), cerr)) {
            admitted_err = cerr;
            return;
        }
        SimResponse rsp;
        if (!client.call(coreRequest("gcc", "Base"), rsp, cerr))
            admitted_err = cerr;
        else
            admitted_rsp = rsp;
    });

    // Wait until the request is admitted (it is the flight creator, so
    // one queued item and zero dedup hits mark the admission).
    SimClient probe;
    ASSERT_TRUE(probe.connect("127.0.0.1", server.port(), err)) << err;
    ASSERT_TRUE(waitFor([&] {
        SimRequest m;
        m.kind = SimRequestKind::Metrics;
        SimResponse rsp;
        std::string perr;
        if (!probe.call(m, rsp, perr))
            return false;
        return rsp.text.find("queue_depth 1\n") != std::string::npos;
    }));

    // shutdown() resumes the pool, finishes the admitted simulation,
    // delivers its response, then tears the connections down.
    server.shutdown();
    waiter.join();
    ASSERT_TRUE(admitted_err.empty()) << admitted_err;
    EXPECT_EQ(admitted_rsp.status, SimStatus::Ok) << admitted_rsp.error;
    EXPECT_FALSE(admitted_rsp.text.empty());
    EXPECT_EQ(server.metrics().simulationsRun(), 1u);

    // The port no longer accepts new connections.
    SimClient late;
    EXPECT_FALSE(late.connect("127.0.0.1", server.port(), err));
}

TEST(NetTest, RepeatedRequestIsServedFromTheCoreCache)
{
    ServerOptions opts = testOptionsNoStore();
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;
    SimResponse first, second;
    ASSERT_TRUE(client.call(coreRequest("gcc", "Base"), first, err));
    ASSERT_EQ(first.status, SimStatus::Ok) << first.error;
    ASSERT_TRUE(client.call(coreRequest("gcc", "Base"), second, err));
    ASSERT_EQ(second.status, SimStatus::Ok) << second.error;

    EXPECT_EQ(first.text, second.text);
    const System::CacheStats cache = server.system().coreCacheStats();
    EXPECT_EQ(cache.misses, 1u) << "warm repeat must not re-simulate";
    EXPECT_EQ(cache.hits, 1u);
}

TEST(NetTest, MetricsSnapshotExposesTheServingCounters)
{
    SimServer server(testOptionsNoStore());
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;
    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;

    SimResponse rsp;
    ASSERT_TRUE(client.call(coreRequest("gcc", "Base"), rsp, err));
    ASSERT_EQ(rsp.status, SimStatus::Ok) << rsp.error;

    SimRequest m;
    m.kind = SimRequestKind::Metrics;
    ASSERT_TRUE(client.call(m, rsp, err)) << err;
    ASSERT_EQ(rsp.status, SimStatus::Ok);
    for (const char *key :
         {"requests_served ", "queue_depth ", "dedup_hits ",
          "simulations_run ", "rejected_overload ", "latency_p50_us_le ",
          "latency_p99_us_le ", "core_cache_hits ", "store_race_lost "})
        EXPECT_NE(rsp.text.find(key), std::string::npos)
            << "metrics text lacks '" << key << "':\n" << rsp.text;
    EXPECT_NE(rsp.text.find("simulations_run 1\n"), std::string::npos);
}

TEST(NetTest, HostileDtmKnobsAreRejectedNotWrapped)
{
    // Workers stay parked: validation rejects run inline on the event
    // loop, and the boundary probe below must never actually execute.
    ServerOptions opts = testOptionsNoStore();
    opts.startWorkersPaused = true;
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;
    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;

    // Regression: dtmIntervals/dtmGridN ride the wire as u32 but land
    // in int-typed DtmOptions fields. A value above INT_MAX used to
    // wrap negative through the narrowing cast, sail past the "> 0"
    // default-selection guards, and reach the engine. It must be a
    // structured reject instead.
    SimRequest req;
    req.kind = SimRequestKind::Dtm;
    req.dtmIntervals = static_cast<std::uint32_t>(INT_MAX) + 1u;
    SimResponse rsp;
    ASSERT_TRUE(client.call(req, rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::BadRequest);
    EXPECT_NE(rsp.error.find("out of range"), std::string::npos)
        << rsp.error;

    req.dtmIntervals = 0;
    req.dtmGridN = 0xFFFFFFFFu;
    ASSERT_TRUE(client.call(req, rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::BadRequest);
    EXPECT_NE(rsp.error.find("out of range"), std::string::npos)
        << rsp.error;

    // Nothing hostile reached the worker pool.
    EXPECT_EQ(server.metrics().simulationsRun(), 0u);

    // The exact INT_MAX boundary passes validation (the guard rejects
    // only values that would wrap). The request is admitted against
    // the parked pool and its 1 ms deadline abandons it — cancelled,
    // never executed — so the probe is cheap.
    req.dtmGridN = static_cast<std::uint32_t>(INT_MAX);
    req.deadlineMs = 1;
    ASSERT_TRUE(client.call(req, rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::DeadlineExceeded) << rsp.error;
    EXPECT_EQ(server.metrics().simulationsRun(), 0u);
}

TEST(NetTest, ShutdownDoesNotTruncateErrorReplyInFlight)
{
    SimServer server(testOptionsNoStore());
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    Socket sock = Socket::connectTo("127.0.0.1", server.port(), err);
    ASSERT_TRUE(sock.valid()) << err;

    // Handshake plus one deliberately corrupted request frame, crafted
    // as raw bytes: flipping the last payload byte breaks the CRC.
    MemSink out;
    ChunkWriter writer(out);
    ASSERT_TRUE(writer.begin(kServerFormatTag, kWireSchemaVersion));
    Encoder hello;
    hello.str("drain-race-regression");
    ASSERT_TRUE(writer.chunk(kHelloTag, hello));
    Encoder body;
    encodeSimRequest(body, SimRequest{});
    ASSERT_TRUE(writer.chunk(kRequestTag, body));
    out.data().back() ^= 0x01;
    SocketSink sink(sock);
    ASSERT_TRUE(sink.write(out.data().data(), out.data().size()));

    // The loop counts the bad request before the error reply reaches
    // the connection's write buffer; once the counter ticks the reply
    // is in flight.
    ASSERT_TRUE(waitFor([&] {
        return server.metrics().badRequests() == 1;
    }));

    // Regression: the reply write used to run with the connection not
    // marked busy, so a concurrent drain could cut the socket mid-way
    // through the error reply. The drain must flush it completely.
    server.shutdown();

    // Read the server's whole stream (header + HELO + the reply); the
    // drain's teardown provides the EOF.
    std::vector<std::uint8_t> bytes(64 * 1024);
    SocketSource source(sock);
    bytes.resize(source.read(bytes.data(), bytes.size()));
    ASSERT_GT(bytes.size(), 0u) << "error reply was dropped entirely";

    MemSource replay(bytes);
    ChunkReader reader(replay);
    std::uint32_t schema = 0;
    ASSERT_TRUE(reader.readHeader(kServerFormatTag, schema, err)) << err;
    std::string tag;
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(reader.next(tag, payload, err), ChunkReader::Next::Chunk)
        << err;
    ASSERT_EQ(tag, kHelloTag);
    ASSERT_EQ(reader.next(tag, payload, err), ChunkReader::Next::Chunk)
        << "error reply truncated by the drain: " << err;
    ASSERT_EQ(tag, kResponseTag);
    Decoder dec(payload);
    SimResponse rsp;
    ASSERT_TRUE(decodeSimResponse(dec, rsp));
    EXPECT_EQ(rsp.status, SimStatus::BadRequest);
    EXPECT_FALSE(rsp.error.empty());
}

/** Live thread count of this process (Linux: /proc/self/task). */
int
countThreads()
{
    DIR *dir = ::opendir("/proc/self/task");
    if (dir == nullptr)
        return -1;
    int n = 0;
    while (dirent *entry = ::readdir(dir))
        if (entry->d_name[0] != '.')
            ++n;
    ::closedir(dir);
    return n;
}

TEST(NetTest, IdleConnectionsCostNoThreads)
{
    // ~1000 client sockets plus their server-side peers; make sure the
    // fd budget allows it before committing to the assertion.
    constexpr int kConns = 1000;
    rlimit rl{};
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &rl), 0);
    if (rl.rlim_cur < 2 * kConns + 128) {
        rl.rlim_cur = 2 * kConns + 128;
        if (rl.rlim_max != RLIM_INFINITY && rl.rlim_cur > rl.rlim_max)
            rl.rlim_cur = rl.rlim_max;
        if (::setrlimit(RLIMIT_NOFILE, &rl) != 0 ||
            rl.rlim_cur < 2 * kConns + 128)
            GTEST_SKIP() << "RLIMIT_NOFILE too low for " << kConns
                         << " connections";
    }

    ServerOptions opts = testOptionsNoStore();
    opts.workers = 2;
    SimServer server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    const int threads_before = countThreads();
    ASSERT_GT(threads_before, 0);

    std::vector<Socket> conns;
    conns.reserve(kConns);
    for (int i = 0; i < kConns; ++i) {
        Socket s = Socket::connectTo("127.0.0.1", server.port(), err);
        ASSERT_TRUE(s.valid()) << "connection " << i << ": " << err;
        conns.push_back(std::move(s));
    }
    ASSERT_TRUE(waitFor([&] {
        return server.connCount() >= static_cast<std::uint64_t>(kConns);
    })) << "accepted " << server.connCount() << " of " << kConns;

    // The whole point of the event loop: an idle connection is a
    // registered fd, not a parked thread.
    EXPECT_EQ(countThreads(), threads_before);

    // And the loop still serves real traffic among the idle herd.
    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), err)) << err;
    SimRequest ping;
    ping.kind = SimRequestKind::Ping;
    SimResponse rsp;
    ASSERT_TRUE(client.call(ping, rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::Ok);
}

} // namespace
} // namespace th
