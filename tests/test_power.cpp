#include <gtest/gtest.h>

#include "power/power_model.h"
#include "sim/configs.h"
#include "trace/generator.h"
#include "trace/suites.h"

namespace th {
namespace {

/** Shared fixture: one calibrated power model + reference runs. */
class PowerTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        lib_ = new BlockLibrary();
        model_ = new PowerModel(*lib_);

        base_cfg_ = makeConfig(ConfigKind::Base, *lib_);
        base_run_ = new CoreResult(run("mpeg2enc", base_cfg_));
        model_->calibrate(*base_run_, base_cfg_);
    }

    static void TearDownTestSuite()
    {
        delete base_run_;
        delete model_;
        delete lib_;
        base_run_ = nullptr;
        model_ = nullptr;
        lib_ = nullptr;
    }

    static CoreResult run(const std::string &bench, const CoreConfig &cfg)
    {
        SyntheticTrace trace(benchmarkByName(bench));
        Core core(cfg);
        return core.run(trace, 60000, 40000);
    }

    static BlockLibrary *lib_;
    static PowerModel *model_;
    static CoreConfig base_cfg_;
    static CoreResult *base_run_;
};

BlockLibrary *PowerTest::lib_ = nullptr;
PowerModel *PowerTest::model_ = nullptr;
CoreConfig PowerTest::base_cfg_;
CoreResult *PowerTest::base_run_ = nullptr;

TEST_F(PowerTest, CalibrationHitsBaselineTotal)
{
    const PowerResult r = model_->compute(*base_run_, base_cfg_);
    EXPECT_NEAR(r.totalW(), 90.0, 0.5);
}

TEST_F(PowerTest, BaselineSplitMatchesAssumptions)
{
    // 35% clock, 20% leakage (Section 4).
    const PowerResult r = model_->compute(*base_run_, base_cfg_);
    EXPECT_NEAR(r.clockW, 0.35 * 90.0, 1e-6);
    EXPECT_NEAR(r.leakW, 0.20 * 90.0, 1e-6);
    EXPECT_NEAR(r.dynamicW(), 0.45 * 90.0, 0.5);
}

TEST_F(PowerTest, PlanarPowerAllOnDie0)
{
    const PowerResult r = model_->compute(*base_run_, base_cfg_);
    for (const auto &b : r.coreBlocks) {
        EXPECT_DOUBLE_EQ(b.dieW[1], 0.0);
        EXPECT_DOUBLE_EQ(b.dieW[2], 0.0);
        EXPECT_DOUBLE_EQ(b.dieW[3], 0.0);
    }
}

TEST_F(PowerTest, ThreeDReducesTotalPower)
{
    const CoreConfig cfg = makeConfig(ConfigKind::ThreeDNoTH, *lib_);
    const CoreResult run3d = run("mpeg2enc", cfg);
    const PowerResult r = model_->compute(run3d, cfg);
    // Paper: 72.7 W (19% below 90 W) despite the 48% clock increase.
    EXPECT_LT(r.totalW(), 80.0);
    EXPECT_GT(r.totalW(), 66.0);
}

TEST_F(PowerTest, HerdingSavesFurtherPower)
{
    const CoreConfig no_th = makeConfig(ConfigKind::ThreeDNoTH, *lib_);
    const CoreConfig th = makeConfig(ConfigKind::ThreeD, *lib_);
    const PowerResult rn = model_->compute(run("mpeg2enc", no_th), no_th);
    const PowerResult rt = model_->compute(run("mpeg2enc", th), th);
    // Paper: 72.7 -> 64.3 W.
    EXPECT_LT(rt.totalW(), rn.totalW() - 4.0);
}

TEST_F(PowerTest, HerdingRaisesTopDieShare)
{
    const CoreConfig no_th = makeConfig(ConfigKind::ThreeDNoTH, *lib_);
    const CoreConfig th = makeConfig(ConfigKind::ThreeD, *lib_);
    const PowerResult rn = model_->compute(run("mpeg2enc", no_th), no_th);
    const PowerResult rt = model_->compute(run("mpeg2enc", th), th);
    EXPECT_GT(rt.topDieFraction(), rn.topDieFraction() + 0.1);
}

TEST_F(PowerTest, ClockPowerHalvedIn3d)
{
    const CoreConfig cfg3d = makeConfig(ConfigKind::ThreeDNoTH, *lib_);
    const PowerResult r2 = model_->compute(*base_run_, base_cfg_);
    const PowerResult r3 =
        model_->compute(run("mpeg2enc", cfg3d), cfg3d);
    // Halved footprint power, scaled up by the frequency gain.
    const double expect = r2.clockW * 0.5 *
        (cfg3d.freqGhz / base_cfg_.freqGhz);
    EXPECT_NEAR(r3.clockW, expect, 1e-6);
}

TEST_F(PowerTest, LeakageIsConstant)
{
    const CoreConfig cfg3d = makeConfig(ConfigKind::ThreeD, *lib_);
    const PowerResult r3 =
        model_->compute(run("mpeg2enc", cfg3d), cfg3d);
    EXPECT_NEAR(r3.leakW, 18.0, 1e-6);
}

TEST_F(PowerTest, SusanSavesMoreThanYacr2)
{
    // Paper: susan 30% total-power saving (max), yacr2 15% (min).
    auto saving = [&](const std::string &bench) {
        const CoreConfig b = makeConfig(ConfigKind::Base, *lib_);
        const CoreConfig t = makeConfig(ConfigKind::ThreeD, *lib_);
        const double wb = model_->compute(run(bench, b), b).totalW();
        const double wt = model_->compute(run(bench, t), t).totalW();
        return 1.0 - wt / wb;
    };
    const double s_susan = saving("susan");
    const double s_yacr2 = saving("yacr2");
    EXPECT_GT(s_susan, s_yacr2);
    EXPECT_GT(s_susan, 0.20);
    EXPECT_LT(s_yacr2, 0.27);
    EXPECT_GT(s_yacr2, 0.08);
}

TEST_F(PowerTest, BlockPowersNonNegative)
{
    const PowerResult r = model_->compute(*base_run_, base_cfg_);
    for (const auto &b : r.coreBlocks)
        for (double w : b.dieW)
            EXPECT_GE(w, 0.0);
    EXPECT_GT(r.l2.total(), 0.0);
}

TEST(PowerModelDeathTest, ComputeBeforeCalibrateFatal)
{
    BlockLibrary lib;
    PowerModel model(lib);
    CoreResult dummy;
    dummy.freqGhz = 2.66;
    dummy.perf.cycles.set(100);
    EXPECT_EXIT(model.compute(dummy, CoreConfig{}),
                ::testing::ExitedWithCode(1), "calibrate");
}

TEST(PowerModelDeathTest, CalibrateOn3dFatal)
{
    BlockLibrary lib;
    PowerModel model(lib);
    CoreConfig cfg;
    cfg.stacked = true;
    CoreResult dummy;
    EXPECT_EXIT(model.calibrate(dummy, cfg),
                ::testing::ExitedWithCode(1), "planar");
}

} // namespace
} // namespace th
