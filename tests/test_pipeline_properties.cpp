/**
 * @file
 * Property-based tests: randomly generated benchmark profiles run
 * through the full core model must uphold structural invariants
 * regardless of the workload's shape.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pipeline.h"
#include "trace/generator.h"

namespace th {
namespace {

/** Build a random-but-valid profile from a seed. */
BenchmarkProfile
randomProfile(std::uint64_t seed)
{
    Rng rng(seed);
    BenchmarkProfile p;
    p.name = "fuzz-" + std::to_string(seed);
    p.seed = seed * 77 + 5;
    p.fShift = 0.10 * rng.uniform();
    p.fMult = 0.03 * rng.uniform();
    p.fFpAdd = rng.chance(0.3) ? 0.15 * rng.uniform() : 0.0;
    p.fFpMult = p.fFpAdd > 0 ? 0.10 * rng.uniform() : 0.0;
    p.fFpDiv = p.fFpAdd > 0 ? 0.02 * rng.uniform() : 0.0;
    p.fLoad = 0.10 + 0.25 * rng.uniform();
    p.fStore = 0.04 + 0.12 * rng.uniform();
    p.fBranch = 0.05 + 0.15 * rng.uniform();
    p.fJump = 0.02 * rng.uniform();
    p.fIndirect = 0.01 * rng.uniform();
    p.lowWidthBias = rng.uniform();
    p.widthNoise = 0.05 * rng.uniform();
    p.branchNoise = 0.05 * rng.uniform();
    p.takenRate = 0.3 + 0.6 * rng.uniform();
    p.numKernels = 4 + static_cast<int>(rng.range(24));
    p.kernelSize = 8 + static_cast<int>(rng.range(32));
    p.loopTripMean = 4.0 + 120.0 * rng.uniform();
    p.pointerChaseFrac = 0.5 * rng.uniform();
    p.stackFrac = 0.4 * rng.uniform();
    p.heapFrac = (1.0 - p.stackFrac) * rng.uniform();
    p.warmFrac = 0.3 * rng.uniform();
    p.coldFrac = rng.chance(0.2) ? 0.2 * rng.uniform()
                                 : 0.01 * rng.uniform();
    p.depDistMean = 1.5 + 8.0 * rng.uniform();
    return p;
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PipelineFuzz, InvariantsHoldOnRandomWorkloads)
{
    const BenchmarkProfile profile = randomProfile(GetParam());
    SyntheticTrace trace(profile);

    CoreConfig cfg;
    cfg.thermalHerding = true;
    Core core(cfg);
    const std::uint64_t want = 30000;
    const CoreResult r = core.run(trace, want, 10000);

    const PerfStats &perf = r.perf;
    const ActivityStats &act = r.activity;
    const std::uint64_t committed = perf.committedInsts.value();
    const std::uint64_t cycles = perf.cycles.value();

    // Forward progress and bounded overshoot.
    ASSERT_GE(committed, want);
    ASSERT_LE(committed, want + 3);
    ASSERT_GT(cycles, 0u);

    // IPC bounded by machine width.
    const double ipc = perf.ipc();
    EXPECT_GT(ipc, 0.0);
    EXPECT_LE(ipc, static_cast<double>(cfg.commitWidth));

    // Prediction accounting: correct + unsafe + safe-miss covers all.
    EXPECT_EQ(perf.widthPredictions.value(),
              perf.widthPredCorrect.value() + perf.widthUnsafe.value() +
                  perf.widthSafeMiss.value());
    EXPECT_LE(perf.widthPredictions.value(), committed + 160);

    // Branch accounting.
    EXPECT_LE(perf.branchMispredicts.value(),
              perf.branches.value() + committed / 10);

    // Memory accounting: every load searched the store queue once.
    EXPECT_EQ(perf.loads.value(),
              perf.pamHits.value() + perf.pamMisses.value() -
                  perf.stores.value());
    // Each load is either forwarded or classified by the PVE census.
    EXPECT_EQ(perf.loads.value() - perf.storeForwards.value(),
              perf.pveZeros.value() + perf.pveOnes.value() +
                  perf.pveAddr.value() + perf.pveExplicit.value());

    // Cache sanity: misses never exceed accesses.
    EXPECT_LE(perf.dl1Misses.value(),
              perf.loads.value() + perf.stores.value());
    EXPECT_LE(perf.l2Misses.value(),
              act.l2Access.value());

    // Activity sanity: register file traffic tracks commit volume.
    const std::uint64_t rf_reads =
        act.rfReadLow.value() + act.rfReadFull.value() +
        act.robReadLow.value() + act.robReadFull.value();
    EXPECT_LE(rf_reads, 3 * committed + 256);

    // Scheduler conservation: every alloc lands on exactly one die.
    std::uint64_t allocs = 0;
    for (int d = 0; d < kNumDies; ++d)
        allocs += act.schedAllocDie[d].value();
    EXPECT_EQ(allocs, act.schedAlloc.value());

    // Issue events match executed (non-nop) instructions, including
    // retried loads only once.
    EXPECT_LE(act.schedSelect.value(), committed + 160);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST_P(PipelineFuzz, BaseAndHerdingCommitTheSameInstructions)
{
    // Thermal Herding must never change *what* executes, only when.
    const BenchmarkProfile profile = randomProfile(GetParam());
    SyntheticTrace t1(profile), t2(profile);
    CoreConfig base, herd;
    herd.thermalHerding = true;
    Core c1(base), c2(herd);
    const CoreResult r1 = c1.run(t1, 20000);
    const CoreResult r2 = c2.run(t2, 20000);
    // Commit-width overshoot on the last cycle may differ by a few
    // instructions between configurations; everything else must track.
    auto near = [](std::uint64_t a, std::uint64_t b, std::uint64_t tol) {
        return a > b ? a - b <= tol : b - a <= tol;
    };
    EXPECT_TRUE(near(r1.perf.committedInsts.value(),
                     r2.perf.committedInsts.value(), 3));
    EXPECT_TRUE(near(r1.perf.loads.value(), r2.perf.loads.value(), 8));
    EXPECT_TRUE(near(r1.perf.stores.value(), r2.perf.stores.value(), 8));
    EXPECT_TRUE(near(r1.perf.branches.value(),
                     r2.perf.branches.value(), 8));
    // And the herded run is never more than modestly slower.
    EXPECT_GE(r2.perf.ipc(), r1.perf.ipc() * 0.85);
}

} // namespace
} // namespace th
