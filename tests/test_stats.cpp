#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.h"

namespace th {
namespace {

TEST(Counter, StartsAtZero)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, IncrementAndSet)
{
    Counter c;
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.set(100);
    EXPECT_EQ(c.value(), 100u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, CountsAndMean)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(1.0);
    h.sample(3.0);
    h.sample(5.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(Histogram, BucketPlacement)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.5);
    h.sample(9.5);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(Histogram, OutOfRangeClamped)
{
    Histogram h(0.0, 1.0, 4);
    h.sample(-5.0);
    h.sample(42.0);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(Histogram, FractionSumsToOne)
{
    Histogram h(0.0, 1.0, 5);
    for (int i = 0; i < 100; ++i)
        h.sample(i / 100.0);
    double total = 0.0;
    for (int b = 0; b < 5; ++b)
        total += h.fraction(b);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, Reset)
{
    Histogram h(0.0, 1.0, 2);
    h.sample(0.3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatRegistry, LookupAndNames)
{
    StatRegistry reg;
    Counter a, b;
    a.inc(3);
    b.inc(7);
    reg.registerCounter("core.a", &a);
    reg.registerCounter("core.b", &b);
    EXPECT_TRUE(reg.hasCounter("core.a"));
    EXPECT_FALSE(reg.hasCounter("core.c"));
    EXPECT_EQ(reg.counterValue("core.b"), 7u);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
    const auto names = reg.counterNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "core.a");
}

TEST(StatRegistry, DumpFormat)
{
    StatRegistry reg;
    Counter a;
    a.inc(9);
    reg.registerCounter("x", &a);
    std::ostringstream os;
    reg.dump(os);
    EXPECT_EQ(os.str(), "x 9\n");
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Mean, KnownValues)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Geomean, BelowArithmeticMean)
{
    const std::vector<double> v{1.0, 10.0, 100.0};
    EXPECT_LT(geomean(v), mean(v));
}

} // namespace
} // namespace th
