#include <gtest/gtest.h>

#include <sstream>

#include "common/table.h"

namespace th {
namespace {

TEST(Table, AlignsColumns)
{
    Table t({"A", "LongHeader"});
    t.addRow({"xx", "y"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("A"), std::string::npos);
    EXPECT_NE(out.find("LongHeader"), std::string::npos);
    EXPECT_NE(out.find("xx"), std::string::npos);
    // Header, separator, one row.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Table, RowCount)
{
    Table t({"a"});
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TableDeathTest, ArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(FmtDouble, Decimals)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(FmtPercent, Formats)
{
    EXPECT_EQ(fmtPercent(0.479, 1), "47.9%");
    EXPECT_EQ(fmtPercent(-0.05, 0), "-5%");
}

} // namespace
} // namespace th
