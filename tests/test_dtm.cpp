#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dtm/engine.h"
#include "dtm/policy.h"
#include "io/serialize.h"
#include "sim/configs.h"
#include "sim/experiments.h"
#include "sim/system.h"
#include "store/artifact_store.h"

namespace th {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Policies.
// ---------------------------------------------------------------------

DtmTriggers
triggers()
{
    DtmTriggers t;
    t.triggerK = 350.0;
    t.hysteresisK = 1.5;
    return t;
}

TEST(DtmPolicy, Names)
{
    EXPECT_STREQ(dtmPolicyName(DtmPolicyKind::None), "none");
    EXPECT_STREQ(dtmPolicyName(DtmPolicyKind::ClockGate), "clockgate");
    EXPECT_STREQ(dtmPolicyName(DtmPolicyKind::FetchThrottle), "fetch");

    DtmPolicyKind k = DtmPolicyKind::None;
    EXPECT_TRUE(dtmPolicyByName("clockgate", k));
    EXPECT_EQ(k, DtmPolicyKind::ClockGate);
    EXPECT_TRUE(dtmPolicyByName("fetch", k));
    EXPECT_EQ(k, DtmPolicyKind::FetchThrottle);
    EXPECT_TRUE(dtmPolicyByName("none", k));
    EXPECT_EQ(k, DtmPolicyKind::None);
    k = DtmPolicyKind::ClockGate;
    EXPECT_FALSE(dtmPolicyByName("bogus", k));
    EXPECT_EQ(k, DtmPolicyKind::ClockGate) << "out untouched on failure";
}

TEST(DtmPolicy, NoneNeverThrottles)
{
    auto p = makeDtmPolicy(DtmPolicyKind::None, triggers());
    for (double t : {300.0, 350.0, 400.0, 1000.0}) {
        const DtmControl c = p->decide(t);
        EXPECT_FALSE(c.throttled()) << t;
        EXPECT_EQ(c.dutyFraction(), 1.0);
    }
}

TEST(DtmPolicy, ClockGateLadderEscalatesOneLevelPerInterval)
{
    auto p = makeDtmPolicy(DtmPolicyKind::ClockGate, triggers());
    EXPECT_EQ(p->decide(340.0).clockDuty, 1.0);
    // Above trigger: one rung per decision, down to the floor.
    EXPECT_EQ(p->decide(351.0).clockDuty, 0.75);
    EXPECT_EQ(p->decide(351.0).clockDuty, 0.5);
    EXPECT_EQ(p->decide(351.0).clockDuty, 0.25);
    EXPECT_EQ(p->decide(351.0).clockDuty, 0.25) << "floor holds";
}

TEST(DtmPolicy, ClockGateHysteresisHoldsInTheDeadBand)
{
    auto p = makeDtmPolicy(DtmPolicyKind::ClockGate, triggers());
    p->decide(351.0); // -> 0.75
    p->decide(351.0); // -> 0.5

    // Inside (trigger - hysteresis, trigger]: hold the current level.
    EXPECT_EQ(p->decide(349.5).clockDuty, 0.5);
    EXPECT_EQ(p->decide(348.6).clockDuty, 0.5);

    // Below trigger - hysteresis: release one rung per decision.
    EXPECT_EQ(p->decide(348.0).clockDuty, 0.75);
    EXPECT_EQ(p->decide(348.0).clockDuty, 1.0);
    EXPECT_EQ(p->decide(348.0).clockDuty, 1.0) << "unthrottled holds";
}

TEST(DtmPolicy, FetchThrottleLadderAndDuty)
{
    auto p = makeDtmPolicy(DtmPolicyKind::FetchThrottle, triggers());
    const DtmControl free = p->decide(340.0);
    EXPECT_FALSE(free.throttled());
    EXPECT_EQ(free.fetchOn, free.fetchPeriod);

    const DtmControl l1 = p->decide(351.0);
    EXPECT_TRUE(l1.throttled());
    EXPECT_EQ(l1.clockDuty, 1.0) << "fetch policy leaves the clock on";
    EXPECT_NEAR(l1.dutyFraction(), 0.75, 1e-12);
    EXPECT_NEAR(p->decide(351.0).dutyFraction(), 0.5, 1e-12);
    EXPECT_NEAR(p->decide(351.0).dutyFraction(), 0.25, 1e-12);
    EXPECT_NEAR(p->decide(351.0).dutyFraction(), 0.25, 1e-12);
}

// ---------------------------------------------------------------------
// DtmReport serialization.
// ---------------------------------------------------------------------

DtmReport
sampleReport()
{
    DtmReport r;
    r.benchmark = "mpeg2enc";
    r.config = "3D-noTH";
    r.policy = "clockgate";
    r.triggerK = 360.0;
    r.freqGhz = 3.875;
    r.startPeakK = 364.8;
    r.peakK = 365.1;
    r.finalPeakK = 356.2;
    r.totalTimeS = 0.3;
    r.timeAboveTriggerS = 0.08;
    r.throttleDuty = 0.36;
    r.perfLost = 0.21;
    r.ipcFree = 1.9;
    r.ipcEffective = 1.5;
    r.wallCycles = 2000000;
    r.committed = 3000000;
    for (int i = 0; i < 5; ++i) {
        DtmIntervalSample s;
        s.timeS = 0.0076 * (i + 1);
        s.peakK = 360.0 + i;
        s.clockDuty = i % 2 ? 0.75 : 1.0;
        s.fetchOn = 1;
        s.fetchPeriod = 1;
        s.cycles = 50000 - static_cast<std::uint64_t>(i);
        s.committed = 90000 + static_cast<std::uint64_t>(i) * 7;
        s.powerW = 88.5 - i;
        s.throttled = (i % 2) != 0;
        r.intervals.push_back(s);
    }
    return r;
}

TEST(DtmSerialize, ReportRoundTripsBitIdentical)
{
    const DtmReport r = sampleReport();
    Encoder enc;
    encodeDtmReport(enc, r);

    Decoder dec(enc.data());
    DtmReport back;
    ASSERT_TRUE(decodeDtmReport(dec, back));
    EXPECT_TRUE(dec.atEnd());
    EXPECT_EQ(serializeDtmReport(back), serializeDtmReport(r));
    EXPECT_EQ(back.benchmark, r.benchmark);
    EXPECT_EQ(back.policy, r.policy);
    ASSERT_EQ(back.intervals.size(), r.intervals.size());
    EXPECT_EQ(back.intervals[3].cycles, r.intervals[3].cycles);
    EXPECT_EQ(back.intervals[1].throttled, r.intervals[1].throttled);
    EXPECT_EQ(back.wallCycles, r.wallCycles);
}

TEST(DtmSerialize, TruncatedReportFailsDecodeAtEveryLength)
{
    Encoder enc;
    encodeDtmReport(enc, sampleReport());
    const std::vector<std::uint8_t> bytes = enc.data();
    for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
        std::vector<std::uint8_t> prefix(bytes.begin(),
                                         bytes.begin() +
                                             static_cast<long>(cut));
        Decoder dec(prefix);
        DtmReport back;
        EXPECT_FALSE(decodeDtmReport(dec, back)) << "cut=" << cut;
    }
}

TEST(DtmSerialize, AbsurdIntervalCountRejected)
{
    // A corrupt count must not trigger a giant allocation: the decoder
    // cross-checks the claimed count against the remaining payload.
    Encoder enc;
    encodeDtmReport(enc, sampleReport());
    std::vector<std::uint8_t> bytes = enc.data();
    // The interval count is the u32 right before the first sample:
    // find it by re-encoding with zero intervals and diffing lengths.
    DtmReport empty = sampleReport();
    empty.intervals.clear();
    Encoder enc0;
    encodeDtmReport(enc0, empty);
    const std::size_t count_off = enc0.size() - 4;
    bytes[count_off + 3] = 0x7F; // count |= 0x7F000000
    Decoder dec(bytes);
    DtmReport back;
    EXPECT_FALSE(decodeDtmReport(dec, back));
}

// ---------------------------------------------------------------------
// Store keys.
// ---------------------------------------------------------------------

TEST(DtmConfigHash, SensitiveToEveryKnob)
{
    const CoreConfig cfg;
    const DtmOptions base;
    const std::uint64_t h0 = dtmConfigHash(cfg, base);

    DtmOptions o = base;
    o.intervalCycles += 1;
    EXPECT_NE(dtmConfigHash(cfg, o), h0) << "intervalCycles";
    o = base;
    o.maxIntervals += 1;
    EXPECT_NE(dtmConfigHash(cfg, o), h0) << "maxIntervals";
    o = base;
    o.warmupInstructions += 1;
    EXPECT_NE(dtmConfigHash(cfg, o), h0) << "warmupInstructions";
    o = base;
    o.policy = DtmPolicyKind::FetchThrottle;
    EXPECT_NE(dtmConfigHash(cfg, o), h0) << "policy";
    o = base;
    o.triggers.triggerK += 0.5;
    EXPECT_NE(dtmConfigHash(cfg, o), h0) << "triggerK";
    o = base;
    o.triggers.hysteresisK += 0.5;
    EXPECT_NE(dtmConfigHash(cfg, o), h0) << "hysteresisK";
    o = base;
    o.timeDilation *= 2.0;
    EXPECT_NE(dtmConfigHash(cfg, o), h0) << "timeDilation";
    o = base;
    o.gridN += 4;
    EXPECT_NE(dtmConfigHash(cfg, o), h0) << "gridN";
    o = base;
    o.maxDtS *= 0.5;
    EXPECT_NE(dtmConfigHash(cfg, o), h0) << "maxDtS";

    // And to the underlying core configuration.
    CoreConfig other = cfg;
    other.robSize += 8;
    EXPECT_NE(dtmConfigHash(other, base), h0) << "core config";
}

// ---------------------------------------------------------------------
// Store round trip of DTMR artifacts.
// ---------------------------------------------------------------------

class DtmStoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::path(::testing::TempDir()) /
               ("thdtm-" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    StoreOptions options() const
    {
        StoreOptions o;
        o.dir = dir_.string();
        o.maxBytes = 0;
        return o;
    }

    fs::path onlyDtmEntry() const
    {
        fs::path found;
        for (const auto &de : fs::directory_iterator(dir_))
            if (de.path().extension() == ".dtm") {
                EXPECT_TRUE(found.empty()) << "more than one entry";
                found = de.path();
            }
        EXPECT_FALSE(found.empty()) << "no .dtm entry found";
        return found;
    }

    fs::path dir_;
};

TEST_F(DtmStoreTest, StoreThenLoadRoundTrips)
{
    ArtifactStore store(options());
    const DtmReport r = sampleReport();
    ASSERT_TRUE(store.storeDtmReport("mpeg2enc", 0xD7D7, r));

    DtmReport back;
    ASSERT_TRUE(store.loadDtmReport("mpeg2enc", 0xD7D7, back));
    EXPECT_EQ(serializeDtmReport(back), serializeDtmReport(r));
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(store.stats().misses, 0u);

    // Wrong key and wrong benchmark both miss without crashing.
    EXPECT_FALSE(store.loadDtmReport("mpeg2enc", 0xBEEF, back));
    EXPECT_FALSE(store.loadDtmReport("gzip", 0xD7D7, back));
    EXPECT_EQ(store.stats().misses, 2u);
}

TEST_F(DtmStoreTest, CorruptDtmEntryQuarantined)
{
    ArtifactStore store(options());
    ASSERT_TRUE(store.storeDtmReport("mpeg2enc", 0x1, sampleReport()));
    const fs::path entry = onlyDtmEntry();
    {
        std::fstream f(entry, std::ios::in | std::ios::out |
                                  std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekp(static_cast<std::streamoff>(fs::file_size(entry) / 2));
        f.put('\x55');
    }

    DtmReport back;
    EXPECT_FALSE(store.loadDtmReport("mpeg2enc", 0x1, back));
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_FALSE(fs::exists(entry));
    EXPECT_TRUE(fs::exists(entry.string() + ".bad"));
}

TEST_F(DtmStoreTest, ListAndVerifyUnderstandBothFormats)
{
    ArtifactStore store(options());
    ASSERT_TRUE(store.storeDtmReport("mpeg2enc", 0x2, sampleReport()));
    CoreResult cr;
    cr.freqGhz = 2.66;
    cr.perf.cycles.set(1000);
    ASSERT_TRUE(store.storeCoreResult("mpeg2enc", 0x3, cr));

    const auto entries = store.list();
    ASSERT_EQ(entries.size(), 2u);
    int cres = 0, dtmr = 0;
    for (const auto &e : entries) {
        if (e.format == kCoreResultFormatTag)
            ++cres;
        if (e.format == kDtmReportFormatTag)
            ++dtmr;
        EXPECT_EQ(e.benchmark, "mpeg2enc");
    }
    EXPECT_EQ(cres, 1);
    EXPECT_EQ(dtmr, 1);
    EXPECT_EQ(store.verify(), 0) << "both formats re-validate";
}

// ---------------------------------------------------------------------
// Engine integration (small windows to stay fast).
// ---------------------------------------------------------------------

class DtmEngineTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        SimOptions opts;
        opts.instructions = 20000;
        opts.warmupInstructions = 5000;
        ::unsetenv("TH_STORE_DIR");
        sys_ = new System(opts);
    }

    static void TearDownTestSuite()
    {
        delete sys_;
        sys_ = nullptr;
    }

    static DtmOptions tinyOptions()
    {
        DtmOptions o;
        o.intervalCycles = 20000;
        o.maxIntervals = 6;
        o.warmupInstructions = 5000;
        o.gridN = 8;
        return o;
    }

    static System *sys_;
};

System *DtmEngineTest::sys_ = nullptr;

TEST_F(DtmEngineTest, FreeRunReportIsConsistent)
{
    DtmOptions o = tinyOptions();
    o.policy = DtmPolicyKind::None;
    const DtmReport r =
        sys_->runDtm("mpeg2enc", ConfigKind::ThreeDNoTH, o);

    EXPECT_EQ(r.benchmark, "mpeg2enc");
    EXPECT_EQ(r.config, "3D-noTH");
    EXPECT_EQ(r.policy, "none");
    EXPECT_GT(r.freqGhz, 0.0);
    EXPECT_GT(r.startPeakK, 300.0);
    EXPECT_GE(r.peakK, r.finalPeakK - 1e-9);
    ASSERT_GT(r.intervals.size(), 0u);
    ASSERT_LE(r.intervals.size(), 6u);
    EXPECT_EQ(r.throttleDuty, 0.0) << "none policy never throttles";
    // ipcFree is measured on the first interval alone, so ordinary
    // interval-to-interval IPC variation keeps perfLost near (not
    // necessarily exactly) zero for an unthrottled run.
    EXPECT_LT(r.perfLost, 0.15);
    EXPECT_GT(r.ipcFree, 0.0);
    EXPECT_GT(r.committed, 0u);
    EXPECT_EQ(r.wallCycles,
              o.intervalCycles * r.intervals.size());
    for (const auto &s : r.intervals) {
        EXPECT_FALSE(s.throttled);
        EXPECT_EQ(s.clockDuty, 1.0);
        EXPECT_GT(s.powerW, 0.0);
        EXPECT_GT(s.peakK, 300.0);
    }
    // Sample times advance monotonically.
    for (std::size_t i = 1; i < r.intervals.size(); ++i)
        EXPECT_GT(r.intervals[i].timeS, r.intervals[i - 1].timeS);
    EXPECT_NEAR(r.totalTimeS, r.intervals.back().timeS, 1e-12);
}

TEST_F(DtmEngineTest, LowTriggerForcesThrottlingAndCostsPerformance)
{
    DtmOptions o = tinyOptions();
    o.policy = DtmPolicyKind::ClockGate;
    o.triggers.triggerK = 310.0; // Far below any operating point.
    const DtmReport r = sys_->runDtm("mpeg2enc", ConfigKind::ThreeD, o);

    EXPECT_GT(r.throttleDuty, 0.0);
    EXPECT_GT(r.perfLost, 0.0);
    EXPECT_GT(r.timeAboveTriggerS, 0.0);
    EXPECT_LT(r.ipcEffective, r.ipcFree);
    bool any_throttled = false;
    for (const auto &s : r.intervals)
        any_throttled = any_throttled || s.throttled;
    EXPECT_TRUE(any_throttled);
}

TEST_F(DtmEngineTest, HighTriggerNeverEngages)
{
    DtmOptions o = tinyOptions();
    o.policy = DtmPolicyKind::ClockGate;
    o.triggers.triggerK = 1000.0;
    const DtmReport r = sys_->runDtm("mpeg2enc", ConfigKind::Base, o);
    EXPECT_EQ(r.throttleDuty, 0.0);
    EXPECT_EQ(r.timeAboveTriggerS, 0.0);
    for (const auto &s : r.intervals)
        EXPECT_FALSE(s.throttled);
}

TEST_F(DtmEngineTest, RepeatRunsAreDeterministic)
{
    DtmOptions o = tinyOptions();
    o.policy = DtmPolicyKind::FetchThrottle;
    o.triggers.triggerK = 330.0;
    const DtmReport a = sys_->runDtm("gzip", ConfigKind::ThreeD, o);
    const DtmReport b = sys_->runDtm("gzip", ConfigKind::ThreeD, o);
    EXPECT_EQ(serializeDtmReport(a), serializeDtmReport(b));
}

TEST_F(DtmEngineTest, StudyCoversTheThreeThermalConfigs)
{
    DtmOptions o = tinyOptions();
    o.maxIntervals = 3;
    const DtmStudyData data = runDtmStudy(*sys_, "mpeg2enc", o);
    ASSERT_EQ(data.cases.size(), 3u);
    EXPECT_EQ(data.cases[0].config, ConfigKind::Base);
    EXPECT_EQ(data.cases[1].config, ConfigKind::ThreeDNoTH);
    EXPECT_EQ(data.cases[2].config, ConfigKind::ThreeD);
    for (const auto &c : data.cases) {
        EXPECT_EQ(c.report.benchmark, "mpeg2enc");
        EXPECT_FALSE(c.report.intervals.empty());
    }
}

} // namespace
} // namespace th
