#include <gtest/gtest.h>

#include <cstdint>

#include "io/chunkio.h"
#include "io/crc32.h"
#include "io/serialize.h"

namespace th {
namespace {

// ---------------------------------------------------------------------
// CRC32.
// ---------------------------------------------------------------------

TEST(Crc32Test, KnownVectors)
{
    // Standard test vectors for the IEEE/zlib CRC-32.
    EXPECT_EQ(crc32("", 0), 0x00000000u);
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog", 43),
              0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot)
{
    const char msg[] = "123456789";
    const std::uint32_t part = crc32(msg, 4);
    EXPECT_EQ(crc32(msg + 4, 5, part), crc32(msg, 9));
}

TEST(Crc32Test, DetectsSingleBitFlip)
{
    std::uint8_t buf[64];
    for (int i = 0; i < 64; ++i)
        buf[i] = static_cast<std::uint8_t>(i * 7);
    const std::uint32_t clean = crc32(buf, sizeof(buf));
    buf[17] ^= 0x20;
    EXPECT_NE(crc32(buf, sizeof(buf)), clean);
}

// ---------------------------------------------------------------------
// Encoder / Decoder.
// ---------------------------------------------------------------------

TEST(CodecTest, PrimitivesRoundTrip)
{
    Encoder enc;
    enc.u8(0xAB);
    enc.u16(0xBEEF);
    enc.u32(0xDEADBEEFu);
    enc.u64(0x0123456789ABCDEFULL);
    enc.f64(-2.5e-7);
    enc.str("thermal herding");
    enc.str("");

    Decoder dec(enc.data());
    EXPECT_EQ(dec.u8(), 0xAB);
    EXPECT_EQ(dec.u16(), 0xBEEF);
    EXPECT_EQ(dec.u32(), 0xDEADBEEFu);
    EXPECT_EQ(dec.u64(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(dec.f64(), -2.5e-7);
    EXPECT_EQ(dec.str(), "thermal herding");
    EXPECT_EQ(dec.str(), "");
    EXPECT_TRUE(dec.ok());
    EXPECT_TRUE(dec.atEnd());
}

TEST(CodecTest, LittleEndianLayout)
{
    Encoder enc;
    enc.u32(0x11223344u);
    ASSERT_EQ(enc.size(), 4u);
    EXPECT_EQ(enc.data()[0], 0x44);
    EXPECT_EQ(enc.data()[3], 0x11);
}

TEST(CodecTest, UnderflowFlagsNotOk)
{
    Encoder enc;
    enc.u16(7);
    Decoder dec(enc.data());
    EXPECT_EQ(dec.u64(), 0u); // Short read returns zero...
    EXPECT_FALSE(dec.ok());   // ...and poisons the decoder.
    EXPECT_EQ(dec.u8(), 0u);  // Stays poisoned.
    EXPECT_FALSE(dec.ok());
}

TEST(CodecTest, StringLengthBeyondPayloadIsRejected)
{
    Encoder enc;
    enc.u32(1000); // Claims 1000 bytes follow...
    enc.u8('x');   // ...but only one does.
    Decoder dec(enc.data());
    EXPECT_EQ(dec.str(), "");
    EXPECT_FALSE(dec.ok());
}

TEST(CodecTest, PatchU32OverwritesInPlace)
{
    Encoder enc;
    enc.u32(0);
    enc.u64(42);
    enc.patchU32(0, 7);
    Decoder dec(enc.data());
    EXPECT_EQ(dec.u32(), 7u);
    EXPECT_EQ(dec.u64(), 42u);
}

// ---------------------------------------------------------------------
// Chunk container over memory.
// ---------------------------------------------------------------------

TEST(ChunkTest, WriteReadRoundTrip)
{
    MemSink sink;
    ChunkWriter writer(sink);
    ASSERT_TRUE(writer.begin("TEST", 3));
    Encoder a;
    a.str("alpha");
    Encoder b;
    b.u64(99);
    ASSERT_TRUE(writer.chunk("AAAA", a));
    ASSERT_TRUE(writer.chunk("BBBB", b));

    MemSource src(sink.data());
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string err;
    ASSERT_TRUE(reader.readHeader("TEST", schema, err)) << err;
    EXPECT_EQ(schema, 3u);

    std::string tag;
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(reader.next(tag, payload, err), ChunkReader::Next::Chunk);
    EXPECT_EQ(tag, "AAAA");
    EXPECT_EQ(Decoder(payload).str(), "alpha");
    ASSERT_EQ(reader.next(tag, payload, err), ChunkReader::Next::Chunk);
    EXPECT_EQ(tag, "BBBB");
    EXPECT_EQ(Decoder(payload).u64(), 99u);
    EXPECT_EQ(reader.next(tag, payload, err), ChunkReader::Next::End);
}

TEST(ChunkTest, WrongFormatTagRejected)
{
    MemSink sink;
    ChunkWriter writer(sink);
    ASSERT_TRUE(writer.begin("TEST", 1));

    MemSource src(sink.data());
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string err;
    EXPECT_FALSE(reader.readHeader("OTHR", schema, err));
    EXPECT_NE(err.find("format tag"), std::string::npos);
}

TEST(ChunkTest, GarbageHeaderRejected)
{
    const std::uint8_t junk[16] = {'n', 'o', 'p', 'e'};
    MemSource src(junk, sizeof(junk));
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string err;
    EXPECT_FALSE(reader.readHeader("TEST", schema, err));
}

std::vector<std::uint8_t>
oneChunkContainer()
{
    MemSink sink;
    ChunkWriter writer(sink);
    writer.begin("TEST", 1);
    Encoder payload;
    for (int i = 0; i < 64; ++i)
        payload.u32(static_cast<std::uint32_t>(i));
    writer.chunk("DATA", payload);
    return sink.data();
}

TEST(ChunkTest, BitFlipInPayloadIsCorrupt)
{
    std::vector<std::uint8_t> bytes = oneChunkContainer();
    bytes[bytes.size() - 10] ^= 0x01; // Flip one payload bit.

    MemSource src(bytes);
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string tag, err;
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(reader.readHeader("TEST", schema, err));
    EXPECT_EQ(reader.next(tag, payload, err),
              ChunkReader::Next::Corrupt);
    EXPECT_NE(err.find("CRC"), std::string::npos);
}

TEST(ChunkTest, TruncationIsCorrupt)
{
    std::vector<std::uint8_t> bytes = oneChunkContainer();
    bytes.resize(bytes.size() - 20); // Drop the payload tail.

    MemSource src(bytes);
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string tag, err;
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(reader.readHeader("TEST", schema, err));
    EXPECT_EQ(reader.next(tag, payload, err),
              ChunkReader::Next::Corrupt);
}

TEST(ChunkTest, TruncatedChunkHeaderIsCorrupt)
{
    std::vector<std::uint8_t> bytes = oneChunkContainer();
    bytes.resize(16 + 6); // Container header + half a chunk header.

    MemSource src(bytes);
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string tag, err;
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(reader.readHeader("TEST", schema, err));
    EXPECT_EQ(reader.next(tag, payload, err),
              ChunkReader::Next::Corrupt);
}

// ---------------------------------------------------------------------
// Hostile-input hardening: explicit error codes, the payload-size cap,
// and zero-length-record rejection.
// ---------------------------------------------------------------------

/** Append a little-endian u32 to a raw byte buffer. */
void
appendU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
    buf.push_back(static_cast<std::uint8_t>(v >> 16));
    buf.push_back(static_cast<std::uint8_t>(v >> 24));
}

TEST(ChunkHardeningTest, ErrorCodesNameEachFailureMode)
{
    std::uint32_t schema = 0;
    std::string tag, err;
    std::vector<std::uint8_t> payload;

    { // Header cut short.
        std::vector<std::uint8_t> bytes = oneChunkContainer();
        bytes.resize(7);
        MemSource src(bytes);
        ChunkReader reader(src);
        EXPECT_FALSE(reader.readHeader("TEST", schema, err));
        EXPECT_EQ(reader.lastError(), ChunkError::ShortHeader);
    }
    { // Wrong magic.
        std::vector<std::uint8_t> bytes = oneChunkContainer();
        bytes[0] = 'X';
        MemSource src(bytes);
        ChunkReader reader(src);
        EXPECT_FALSE(reader.readHeader("TEST", schema, err));
        EXPECT_EQ(reader.lastError(), ChunkError::BadMagic);
    }
    { // Right container, wrong artifact kind.
        std::vector<std::uint8_t> bytes = oneChunkContainer();
        MemSource src(bytes);
        ChunkReader reader(src);
        EXPECT_FALSE(reader.readHeader("OTHR", schema, err));
        EXPECT_EQ(reader.lastError(), ChunkError::FormatMismatch);
    }
    { // Chunk header cut mid-length.
        std::vector<std::uint8_t> bytes = oneChunkContainer();
        bytes.resize(16 + 6);
        MemSource src(bytes);
        ChunkReader reader(src);
        ASSERT_TRUE(reader.readHeader("TEST", schema, err));
        EXPECT_EQ(reader.next(tag, payload, err),
                  ChunkReader::Next::Corrupt);
        EXPECT_EQ(reader.lastError(), ChunkError::TruncatedHeader);
    }
    { // Payload shorter than declared.
        std::vector<std::uint8_t> bytes = oneChunkContainer();
        bytes.resize(bytes.size() - 20);
        MemSource src(bytes);
        ChunkReader reader(src);
        ASSERT_TRUE(reader.readHeader("TEST", schema, err));
        EXPECT_EQ(reader.next(tag, payload, err),
                  ChunkReader::Next::Corrupt);
        EXPECT_EQ(reader.lastError(), ChunkError::TruncatedPayload);
    }
    { // Payload bit flip.
        std::vector<std::uint8_t> bytes = oneChunkContainer();
        bytes[bytes.size() - 10] ^= 0x01;
        MemSource src(bytes);
        ChunkReader reader(src);
        ASSERT_TRUE(reader.readHeader("TEST", schema, err));
        EXPECT_EQ(reader.next(tag, payload, err),
                  ChunkReader::Next::Corrupt);
        EXPECT_EQ(reader.lastError(), ChunkError::CrcMismatch);
    }
    { // Success clears the code.
        std::vector<std::uint8_t> bytes = oneChunkContainer();
        MemSource src(bytes);
        ChunkReader reader(src);
        ASSERT_TRUE(reader.readHeader("TEST", schema, err));
        EXPECT_EQ(reader.lastError(), ChunkError::None);
        ASSERT_EQ(reader.next(tag, payload, err),
                  ChunkReader::Next::Chunk);
        EXPECT_EQ(reader.lastError(), ChunkError::None);
    }
}

TEST(ChunkHardeningTest, HostileLengthFieldRejectedBeforeAllocation)
{
    // A four-byte frame claiming a ~4 GiB payload. The reader must
    // reject it from the length field alone — long before any read or
    // resize could be driven by it.
    MemSink sink;
    ChunkWriter writer(sink);
    ASSERT_TRUE(writer.begin("TEST", 1));
    std::vector<std::uint8_t> bytes = sink.data();
    bytes.insert(bytes.end(), {'E', 'V', 'I', 'L'});
    appendU32(bytes, 0xFFFFFFF0u); // Declared length, way over any cap.
    appendU32(bytes, 0);           // CRC (never reached).

    MemSource src(bytes);
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string tag, err;
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(reader.readHeader("TEST", schema, err));
    EXPECT_EQ(reader.next(tag, payload, err), ChunkReader::Next::Corrupt);
    EXPECT_EQ(reader.lastError(), ChunkError::Oversize);
    EXPECT_NE(err.find("exceeds cap"), std::string::npos);
}

TEST(ChunkHardeningTest, MaxChunkBytesIsConfigurable)
{
    // A perfectly valid container whose one payload is 256 bytes.
    const std::vector<std::uint8_t> bytes = oneChunkContainer();

    std::uint32_t schema = 0;
    std::string tag, err;
    std::vector<std::uint8_t> payload;
    { // Cap below the payload: rejected as oversize.
        MemSource src(bytes);
        ChunkReader reader(src);
        reader.setMaxChunkBytes(64);
        EXPECT_EQ(reader.maxChunkBytes(), 64u);
        ASSERT_TRUE(reader.readHeader("TEST", schema, err));
        EXPECT_EQ(reader.next(tag, payload, err),
                  ChunkReader::Next::Corrupt);
        EXPECT_EQ(reader.lastError(), ChunkError::Oversize);
    }
    { // Cap at the payload size: accepted.
        MemSource src(bytes);
        ChunkReader reader(src);
        reader.setMaxChunkBytes(256);
        ASSERT_TRUE(reader.readHeader("TEST", schema, err));
        EXPECT_EQ(reader.next(tag, payload, err),
                  ChunkReader::Next::Chunk);
        EXPECT_EQ(payload.size(), 256u);
    }
    { // A zero cap clamps to one byte rather than rejecting everything.
        MemSource src(bytes);
        ChunkReader reader(src);
        reader.setMaxChunkBytes(0);
        EXPECT_EQ(reader.maxChunkBytes(), 1u);
    }
}

TEST(ChunkHardeningTest, ZeroLengthChunkRejected)
{
    // No THIO format writes an empty record, so one on the wire can
    // only be garbage or an attack frame.
    MemSink sink;
    ChunkWriter writer(sink);
    ASSERT_TRUE(writer.begin("TEST", 1));
    std::vector<std::uint8_t> bytes = sink.data();
    bytes.insert(bytes.end(), {'V', 'O', 'I', 'D'});
    appendU32(bytes, 0); // Zero-length payload...
    appendU32(bytes, 0); // ...whose empty-CRC is 0 (would verify!).

    MemSource src(bytes);
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string tag, err;
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(reader.readHeader("TEST", schema, err));
    EXPECT_EQ(reader.next(tag, payload, err), ChunkReader::Next::Corrupt);
    EXPECT_EQ(reader.lastError(), ChunkError::EmptyChunk);
}

TEST(ChunkHardeningTest, ErrorNamesAreStable)
{
    EXPECT_STREQ(chunkErrorName(ChunkError::None), "none");
    EXPECT_STREQ(chunkErrorName(ChunkError::Oversize), "oversize");
    EXPECT_STREQ(chunkErrorName(ChunkError::EmptyChunk), "empty-chunk");
    EXPECT_STREQ(chunkErrorName(ChunkError::CrcMismatch), "crc-mismatch");
}

// ---------------------------------------------------------------------
// SimRequest / SimResponse wire codecs (the th_serve protocol records).
// ---------------------------------------------------------------------

TEST(WireCodecTest, SimRequestRoundTripsEveryField)
{
    SimRequest req;
    req.kind = SimRequestKind::Dtm;
    req.benchmarks = {"mpeg2enc", "gcc"};
    req.config = "3D";
    req.insts = 123456;
    req.warmup = 7890;
    req.deadlineMs = 2500;
    req.dtmPolicy = "fetch";
    req.dtmTriggerK = 356.5;
    req.dtmIntervals = 12;
    req.dtmIntervalCycles = 40000;
    req.dtmDilation = 250.0;
    req.dtmGridN = 24;
    req.dtmSolver = "multigrid";

    Encoder enc;
    encodeSimRequest(enc, req);
    Decoder dec(enc.data());
    SimRequest back;
    ASSERT_TRUE(decodeSimRequest(dec, back));
    EXPECT_TRUE(dec.atEnd());
    EXPECT_EQ(back.kind, req.kind);
    EXPECT_EQ(back.benchmarks, req.benchmarks);
    EXPECT_EQ(back.config, req.config);
    EXPECT_EQ(back.insts, req.insts);
    EXPECT_EQ(back.warmup, req.warmup);
    EXPECT_EQ(back.deadlineMs, req.deadlineMs);
    EXPECT_EQ(back.dtmPolicy, req.dtmPolicy);
    EXPECT_EQ(back.dtmTriggerK, req.dtmTriggerK);
    EXPECT_EQ(back.dtmIntervals, req.dtmIntervals);
    EXPECT_EQ(back.dtmIntervalCycles, req.dtmIntervalCycles);
    EXPECT_EQ(back.dtmDilation, req.dtmDilation);
    EXPECT_EQ(back.dtmGridN, req.dtmGridN);
    EXPECT_EQ(back.dtmSolver, req.dtmSolver);
}

TEST(WireCodecTest, SimResponseRoundTrips)
{
    SimResponse rsp;
    rsp.status = SimStatus::Overloaded;
    rsp.error = "admission queue full";
    rsp.text = "=== Figure 8 ===\nsome table\n";

    Encoder enc;
    encodeSimResponse(enc, rsp);
    Decoder dec(enc.data());
    SimResponse back;
    ASSERT_TRUE(decodeSimResponse(dec, back));
    EXPECT_TRUE(dec.atEnd());
    EXPECT_EQ(back.status, rsp.status);
    EXPECT_EQ(back.error, rsp.error);
    EXPECT_EQ(back.text, rsp.text);
}

TEST(WireCodecTest, BadEnumValuesRejected)
{
    Encoder enc;
    enc.u8(0xEE); // No such SimRequestKind.
    Decoder dec(enc.data());
    SimRequest req;
    EXPECT_FALSE(decodeSimRequest(dec, req));

    Encoder enc2;
    enc2.u8(0xEE); // No such SimStatus.
    enc2.str("");
    enc2.str("");
    Decoder dec2(enc2.data());
    SimResponse rsp;
    EXPECT_FALSE(decodeSimResponse(dec2, rsp));
}

TEST(WireCodecTest, HostileBenchmarkCountRejected)
{
    // A count field claiming 2^31 strings with two bytes of payload
    // behind it must fail fast, not loop on allocations.
    Encoder enc;
    enc.u8(static_cast<std::uint8_t>(SimRequestKind::Fig8));
    enc.u32(0x80000000u);
    enc.u8(0);
    Decoder dec(enc.data());
    SimRequest req;
    EXPECT_FALSE(decodeSimRequest(dec, req));
}

TEST(WireCodecTest, FlightKeyIgnoresDeadlineOnly)
{
    SimRequest a;
    a.kind = SimRequestKind::Fig8;
    a.benchmarks = {"gcc"};
    a.deadlineMs = 0;
    SimRequest b = a;
    b.deadlineMs = 9999;
    // Same simulation, different patience: one flight.
    EXPECT_EQ(flightKeyOf(a), flightKeyOf(b));

    // Any simulation-affecting difference must split the flight.
    SimRequest c = a;
    c.benchmarks = {"mcf"};
    EXPECT_NE(flightKeyOf(a), flightKeyOf(c));
    SimRequest d = a;
    d.kind = SimRequestKind::Fig9;
    EXPECT_NE(flightKeyOf(a), flightKeyOf(d));
    SimRequest e = a;
    e.dtmSolver = "multigrid";
    EXPECT_NE(flightKeyOf(a), flightKeyOf(e));
}

// ---------------------------------------------------------------------
// Exhaustive truncation sweep over a store-style container.
// ---------------------------------------------------------------------

TEST(ChunkTest, EveryTruncationOfTheFirst64BytesFailsCleanly)
{
    // Build a container shaped exactly like a persisted CoreResult
    // artifact, then replay the reader against every prefix of its
    // first 64 bytes. Whatever the cut point — mid-magic, mid-schema,
    // mid-chunk-header, mid-payload — the reader must reject it
    // without crashing and without handing back a decodable chunk.
    MemSink sink;
    ChunkWriter writer(sink);
    ASSERT_TRUE(writer.begin("CRES", 1));
    Encoder payload;
    {
        CoreResult r;
        r.freqGhz = 2.66;
        r.perf.cycles.set(424242);
        r.perf.committedInsts.set(99999);
        encodeCoreResult(payload, r);
    }
    ASSERT_TRUE(writer.chunk("CRES", payload));
    const std::vector<std::uint8_t> full = sink.data();
    ASSERT_GT(full.size(), 64u) << "container too small for the sweep";

    for (std::size_t cut = 0; cut < 64; ++cut) {
        const std::vector<std::uint8_t> prefix(full.begin(),
                                               full.begin() +
                                                   static_cast<long>(cut));
        MemSource src(prefix);
        ChunkReader reader(src);
        std::uint32_t schema = 0;
        std::string tag, err;
        std::vector<std::uint8_t> chunk_payload;

        if (!reader.readHeader("CRES", schema, err)) {
            ASSERT_LT(cut, 16u)
                << "a complete 16-byte header must parse (cut=" << cut
                << "): " << err;
            continue;
        }
        ASSERT_GE(cut, 16u) << "short header accepted (cut=" << cut
                            << ")";
        // The chunk itself is longer than the sweep window, so no
        // prefix may ever produce a whole verified chunk. A cut at
        // exactly the header boundary is indistinguishable from a
        // legitimately empty container (Next::End — the entry reader
        // above this layer rejects it for missing its META chunk);
        // any cut inside the chunk must be an explicit corruption
        // report, never a silent End.
        const auto next = reader.next(tag, chunk_payload, err);
        if (cut == 16u)
            EXPECT_EQ(next, ChunkReader::Next::End);
        else
            EXPECT_EQ(next, ChunkReader::Next::Corrupt)
                << "cut=" << cut;
    }

    // Sanity: the untruncated container still round-trips.
    MemSource src(full);
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string tag, err;
    std::vector<std::uint8_t> chunk_payload;
    ASSERT_TRUE(reader.readHeader("CRES", schema, err)) << err;
    ASSERT_EQ(reader.next(tag, chunk_payload, err),
              ChunkReader::Next::Chunk);
    CoreResult back;
    Decoder dec(chunk_payload);
    EXPECT_TRUE(decodeCoreResult(dec, back));
    EXPECT_EQ(back.perf.cycles.value(), 424242u);
}

// ---------------------------------------------------------------------
// Stats serialization.
// ---------------------------------------------------------------------

CoreResult
sampleResult()
{
    CoreResult r;
    r.freqGhz = 3.875;
    r.perf.cycles.set(123456);
    r.perf.committedInsts.set(200000);
    r.perf.branches.set(30123);
    r.perf.pveExplicit.set(17);
    for (int i = 0; i < 1000; ++i)
        r.perf.valueWidthBits.sample(static_cast<double>(i % 64));
    r.activity.rfReadLow.set(42);
    r.activity.schedWakeupDie[kNumDies - 1].set(7);
    r.activity.miscUops.set(987654321);
    return r;
}

TEST(SerializeTest, HistogramRoundTrip)
{
    Histogram h(0.0, 64.0, 16);
    h.sample(1.0);
    h.sample(63.0);
    h.sample(17.5);

    Encoder enc;
    encodeHistogram(enc, h);
    Decoder dec(enc.data());
    Histogram back;
    ASSERT_TRUE(decodeHistogram(dec, back));
    EXPECT_EQ(back.count(), h.count());
    EXPECT_EQ(back.buckets(), h.buckets());
    EXPECT_EQ(back.mean(), h.mean());
    EXPECT_EQ(back.min(), h.min());
    EXPECT_EQ(back.max(), h.max());
    EXPECT_EQ(back.lo(), h.lo());
    EXPECT_EQ(back.hi(), h.hi());
}

TEST(SerializeTest, CoreResultRoundTripsBitIdentical)
{
    const CoreResult r = sampleResult();
    Encoder enc;
    encodeCoreResult(enc, r);

    Decoder dec(enc.data());
    CoreResult back;
    ASSERT_TRUE(decodeCoreResult(dec, back));
    EXPECT_TRUE(dec.atEnd());
    EXPECT_EQ(serializeCoreResult(back), serializeCoreResult(r));
    EXPECT_EQ(back.freqGhz, r.freqGhz);
    EXPECT_EQ(back.perf.cycles.value(), 123456u);
    EXPECT_EQ(back.activity.schedWakeupDie[kNumDies - 1].value(), 7u);
}

TEST(SerializeTest, TruncatedCoreResultFailsDecode)
{
    Encoder enc;
    encodeCoreResult(enc, sampleResult());
    std::vector<std::uint8_t> bytes = enc.data();
    bytes.resize(bytes.size() / 2);

    Decoder dec(bytes);
    CoreResult back;
    EXPECT_FALSE(decodeCoreResult(dec, back));
}

TEST(SerializeTest, AbsurdHistogramBucketCountRejected)
{
    Encoder enc;
    enc.f64(0.0);
    enc.f64(1.0);
    enc.u32(0x7FFFFFFFu); // Bucket count beyond any sane histogram.
    enc.u64(0);
    enc.f64(0.0);
    enc.f64(0.0);
    enc.f64(0.0);
    Decoder dec(enc.data());
    Histogram h;
    EXPECT_FALSE(decodeHistogram(dec, h));
}

} // namespace
} // namespace th
