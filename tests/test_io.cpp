#include <gtest/gtest.h>

#include <cstdint>

#include "io/chunkio.h"
#include "io/crc32.h"
#include "io/serialize.h"

namespace th {
namespace {

// ---------------------------------------------------------------------
// CRC32.
// ---------------------------------------------------------------------

TEST(Crc32Test, KnownVectors)
{
    // Standard test vectors for the IEEE/zlib CRC-32.
    EXPECT_EQ(crc32("", 0), 0x00000000u);
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog", 43),
              0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot)
{
    const char msg[] = "123456789";
    const std::uint32_t part = crc32(msg, 4);
    EXPECT_EQ(crc32(msg + 4, 5, part), crc32(msg, 9));
}

TEST(Crc32Test, DetectsSingleBitFlip)
{
    std::uint8_t buf[64];
    for (int i = 0; i < 64; ++i)
        buf[i] = static_cast<std::uint8_t>(i * 7);
    const std::uint32_t clean = crc32(buf, sizeof(buf));
    buf[17] ^= 0x20;
    EXPECT_NE(crc32(buf, sizeof(buf)), clean);
}

// ---------------------------------------------------------------------
// Encoder / Decoder.
// ---------------------------------------------------------------------

TEST(CodecTest, PrimitivesRoundTrip)
{
    Encoder enc;
    enc.u8(0xAB);
    enc.u16(0xBEEF);
    enc.u32(0xDEADBEEFu);
    enc.u64(0x0123456789ABCDEFULL);
    enc.f64(-2.5e-7);
    enc.str("thermal herding");
    enc.str("");

    Decoder dec(enc.data());
    EXPECT_EQ(dec.u8(), 0xAB);
    EXPECT_EQ(dec.u16(), 0xBEEF);
    EXPECT_EQ(dec.u32(), 0xDEADBEEFu);
    EXPECT_EQ(dec.u64(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(dec.f64(), -2.5e-7);
    EXPECT_EQ(dec.str(), "thermal herding");
    EXPECT_EQ(dec.str(), "");
    EXPECT_TRUE(dec.ok());
    EXPECT_TRUE(dec.atEnd());
}

TEST(CodecTest, LittleEndianLayout)
{
    Encoder enc;
    enc.u32(0x11223344u);
    ASSERT_EQ(enc.size(), 4u);
    EXPECT_EQ(enc.data()[0], 0x44);
    EXPECT_EQ(enc.data()[3], 0x11);
}

TEST(CodecTest, UnderflowFlagsNotOk)
{
    Encoder enc;
    enc.u16(7);
    Decoder dec(enc.data());
    EXPECT_EQ(dec.u64(), 0u); // Short read returns zero...
    EXPECT_FALSE(dec.ok());   // ...and poisons the decoder.
    EXPECT_EQ(dec.u8(), 0u);  // Stays poisoned.
    EXPECT_FALSE(dec.ok());
}

TEST(CodecTest, StringLengthBeyondPayloadIsRejected)
{
    Encoder enc;
    enc.u32(1000); // Claims 1000 bytes follow...
    enc.u8('x');   // ...but only one does.
    Decoder dec(enc.data());
    EXPECT_EQ(dec.str(), "");
    EXPECT_FALSE(dec.ok());
}

TEST(CodecTest, PatchU32OverwritesInPlace)
{
    Encoder enc;
    enc.u32(0);
    enc.u64(42);
    enc.patchU32(0, 7);
    Decoder dec(enc.data());
    EXPECT_EQ(dec.u32(), 7u);
    EXPECT_EQ(dec.u64(), 42u);
}

// ---------------------------------------------------------------------
// Chunk container over memory.
// ---------------------------------------------------------------------

TEST(ChunkTest, WriteReadRoundTrip)
{
    MemSink sink;
    ChunkWriter writer(sink);
    ASSERT_TRUE(writer.begin("TEST", 3));
    Encoder a;
    a.str("alpha");
    Encoder b;
    b.u64(99);
    ASSERT_TRUE(writer.chunk("AAAA", a));
    ASSERT_TRUE(writer.chunk("BBBB", b));

    MemSource src(sink.data());
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string err;
    ASSERT_TRUE(reader.readHeader("TEST", schema, err)) << err;
    EXPECT_EQ(schema, 3u);

    std::string tag;
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(reader.next(tag, payload, err), ChunkReader::Next::Chunk);
    EXPECT_EQ(tag, "AAAA");
    EXPECT_EQ(Decoder(payload).str(), "alpha");
    ASSERT_EQ(reader.next(tag, payload, err), ChunkReader::Next::Chunk);
    EXPECT_EQ(tag, "BBBB");
    EXPECT_EQ(Decoder(payload).u64(), 99u);
    EXPECT_EQ(reader.next(tag, payload, err), ChunkReader::Next::End);
}

TEST(ChunkTest, WrongFormatTagRejected)
{
    MemSink sink;
    ChunkWriter writer(sink);
    ASSERT_TRUE(writer.begin("TEST", 1));

    MemSource src(sink.data());
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string err;
    EXPECT_FALSE(reader.readHeader("OTHR", schema, err));
    EXPECT_NE(err.find("format tag"), std::string::npos);
}

TEST(ChunkTest, GarbageHeaderRejected)
{
    const std::uint8_t junk[16] = {'n', 'o', 'p', 'e'};
    MemSource src(junk, sizeof(junk));
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string err;
    EXPECT_FALSE(reader.readHeader("TEST", schema, err));
}

std::vector<std::uint8_t>
oneChunkContainer()
{
    MemSink sink;
    ChunkWriter writer(sink);
    writer.begin("TEST", 1);
    Encoder payload;
    for (int i = 0; i < 64; ++i)
        payload.u32(static_cast<std::uint32_t>(i));
    writer.chunk("DATA", payload);
    return sink.data();
}

TEST(ChunkTest, BitFlipInPayloadIsCorrupt)
{
    std::vector<std::uint8_t> bytes = oneChunkContainer();
    bytes[bytes.size() - 10] ^= 0x01; // Flip one payload bit.

    MemSource src(bytes);
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string tag, err;
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(reader.readHeader("TEST", schema, err));
    EXPECT_EQ(reader.next(tag, payload, err),
              ChunkReader::Next::Corrupt);
    EXPECT_NE(err.find("CRC"), std::string::npos);
}

TEST(ChunkTest, TruncationIsCorrupt)
{
    std::vector<std::uint8_t> bytes = oneChunkContainer();
    bytes.resize(bytes.size() - 20); // Drop the payload tail.

    MemSource src(bytes);
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string tag, err;
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(reader.readHeader("TEST", schema, err));
    EXPECT_EQ(reader.next(tag, payload, err),
              ChunkReader::Next::Corrupt);
}

TEST(ChunkTest, TruncatedChunkHeaderIsCorrupt)
{
    std::vector<std::uint8_t> bytes = oneChunkContainer();
    bytes.resize(16 + 6); // Container header + half a chunk header.

    MemSource src(bytes);
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string tag, err;
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(reader.readHeader("TEST", schema, err));
    EXPECT_EQ(reader.next(tag, payload, err),
              ChunkReader::Next::Corrupt);
}

// ---------------------------------------------------------------------
// Exhaustive truncation sweep over a store-style container.
// ---------------------------------------------------------------------

TEST(ChunkTest, EveryTruncationOfTheFirst64BytesFailsCleanly)
{
    // Build a container shaped exactly like a persisted CoreResult
    // artifact, then replay the reader against every prefix of its
    // first 64 bytes. Whatever the cut point — mid-magic, mid-schema,
    // mid-chunk-header, mid-payload — the reader must reject it
    // without crashing and without handing back a decodable chunk.
    MemSink sink;
    ChunkWriter writer(sink);
    ASSERT_TRUE(writer.begin("CRES", 1));
    Encoder payload;
    {
        CoreResult r;
        r.freqGhz = 2.66;
        r.perf.cycles.set(424242);
        r.perf.committedInsts.set(99999);
        encodeCoreResult(payload, r);
    }
    ASSERT_TRUE(writer.chunk("CRES", payload));
    const std::vector<std::uint8_t> full = sink.data();
    ASSERT_GT(full.size(), 64u) << "container too small for the sweep";

    for (std::size_t cut = 0; cut < 64; ++cut) {
        const std::vector<std::uint8_t> prefix(full.begin(),
                                               full.begin() +
                                                   static_cast<long>(cut));
        MemSource src(prefix);
        ChunkReader reader(src);
        std::uint32_t schema = 0;
        std::string tag, err;
        std::vector<std::uint8_t> chunk_payload;

        if (!reader.readHeader("CRES", schema, err)) {
            ASSERT_LT(cut, 16u)
                << "a complete 16-byte header must parse (cut=" << cut
                << "): " << err;
            continue;
        }
        ASSERT_GE(cut, 16u) << "short header accepted (cut=" << cut
                            << ")";
        // The chunk itself is longer than the sweep window, so no
        // prefix may ever produce a whole verified chunk. A cut at
        // exactly the header boundary is indistinguishable from a
        // legitimately empty container (Next::End — the entry reader
        // above this layer rejects it for missing its META chunk);
        // any cut inside the chunk must be an explicit corruption
        // report, never a silent End.
        const auto next = reader.next(tag, chunk_payload, err);
        if (cut == 16u)
            EXPECT_EQ(next, ChunkReader::Next::End);
        else
            EXPECT_EQ(next, ChunkReader::Next::Corrupt)
                << "cut=" << cut;
    }

    // Sanity: the untruncated container still round-trips.
    MemSource src(full);
    ChunkReader reader(src);
    std::uint32_t schema = 0;
    std::string tag, err;
    std::vector<std::uint8_t> chunk_payload;
    ASSERT_TRUE(reader.readHeader("CRES", schema, err)) << err;
    ASSERT_EQ(reader.next(tag, chunk_payload, err),
              ChunkReader::Next::Chunk);
    CoreResult back;
    Decoder dec(chunk_payload);
    EXPECT_TRUE(decodeCoreResult(dec, back));
    EXPECT_EQ(back.perf.cycles.value(), 424242u);
}

// ---------------------------------------------------------------------
// Stats serialization.
// ---------------------------------------------------------------------

CoreResult
sampleResult()
{
    CoreResult r;
    r.freqGhz = 3.875;
    r.perf.cycles.set(123456);
    r.perf.committedInsts.set(200000);
    r.perf.branches.set(30123);
    r.perf.pveExplicit.set(17);
    for (int i = 0; i < 1000; ++i)
        r.perf.valueWidthBits.sample(static_cast<double>(i % 64));
    r.activity.rfReadLow.set(42);
    r.activity.schedWakeupDie[kNumDies - 1].set(7);
    r.activity.miscUops.set(987654321);
    return r;
}

TEST(SerializeTest, HistogramRoundTrip)
{
    Histogram h(0.0, 64.0, 16);
    h.sample(1.0);
    h.sample(63.0);
    h.sample(17.5);

    Encoder enc;
    encodeHistogram(enc, h);
    Decoder dec(enc.data());
    Histogram back;
    ASSERT_TRUE(decodeHistogram(dec, back));
    EXPECT_EQ(back.count(), h.count());
    EXPECT_EQ(back.buckets(), h.buckets());
    EXPECT_EQ(back.mean(), h.mean());
    EXPECT_EQ(back.min(), h.min());
    EXPECT_EQ(back.max(), h.max());
    EXPECT_EQ(back.lo(), h.lo());
    EXPECT_EQ(back.hi(), h.hi());
}

TEST(SerializeTest, CoreResultRoundTripsBitIdentical)
{
    const CoreResult r = sampleResult();
    Encoder enc;
    encodeCoreResult(enc, r);

    Decoder dec(enc.data());
    CoreResult back;
    ASSERT_TRUE(decodeCoreResult(dec, back));
    EXPECT_TRUE(dec.atEnd());
    EXPECT_EQ(serializeCoreResult(back), serializeCoreResult(r));
    EXPECT_EQ(back.freqGhz, r.freqGhz);
    EXPECT_EQ(back.perf.cycles.value(), 123456u);
    EXPECT_EQ(back.activity.schedWakeupDie[kNumDies - 1].value(), 7u);
}

TEST(SerializeTest, TruncatedCoreResultFailsDecode)
{
    Encoder enc;
    encodeCoreResult(enc, sampleResult());
    std::vector<std::uint8_t> bytes = enc.data();
    bytes.resize(bytes.size() / 2);

    Decoder dec(bytes);
    CoreResult back;
    EXPECT_FALSE(decodeCoreResult(dec, back));
}

TEST(SerializeTest, AbsurdHistogramBucketCountRejected)
{
    Encoder enc;
    enc.f64(0.0);
    enc.f64(1.0);
    enc.u32(0x7FFFFFFFu); // Bucket count beyond any sane histogram.
    enc.u64(0);
    enc.f64(0.0);
    enc.f64(0.0);
    enc.f64(0.0);
    Decoder dec(enc.data());
    Histogram h;
    EXPECT_FALSE(decodeHistogram(dec, h));
}

} // namespace
} // namespace th
