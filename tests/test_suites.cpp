#include <gtest/gtest.h>

#include <set>

#include "trace/suites.h"

namespace th {
namespace {

TEST(Suites, HasFullRoster)
{
    // 59 benchmarks standing in for the paper's 106 traces.
    EXPECT_EQ(allBenchmarks().size(), 59u);
}

TEST(Suites, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &p : allBenchmarks())
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(Suites, SevenSuitesInPaperOrder)
{
    const auto suites = suiteNames();
    ASSERT_EQ(suites.size(), 7u);
    EXPECT_EQ(suites[0], "SPECint2000");
    EXPECT_EQ(suites[1], "SPECfp2000");
}

TEST(Suites, AnchorBenchmarksPresent)
{
    for (const char *name :
         {"mcf", "crafty", "patricia", "susan", "yacr2", "mpeg2enc",
          "swim"}) {
        EXPECT_TRUE(hasBenchmark(name)) << name;
    }
    EXPECT_FALSE(hasBenchmark("not-a-benchmark"));
}

TEST(Suites, LookupReturnsRightProfile)
{
    const auto &p = benchmarkByName("mcf");
    EXPECT_EQ(p.name, "mcf");
    EXPECT_EQ(p.suite, "SPECint2000");
}

TEST(SuitesDeathTest, UnknownNameFatal)
{
    EXPECT_EXIT(benchmarkByName("zzz"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(Suites, OpMixFractionsValid)
{
    for (const auto &p : allBenchmarks()) {
        const double sum = p.fShift + p.fMult + p.fFpAdd + p.fFpMult +
            p.fFpDiv + p.fLoad + p.fStore + p.fBranch + p.fJump +
            p.fIndirect + p.fNop;
        EXPECT_GT(sum, 0.2) << p.name;
        EXPECT_LE(sum, 1.0) << p.name;
        EXPECT_GE(p.lowWidthBias, 0.0) << p.name;
        EXPECT_LE(p.lowWidthBias, 1.0) << p.name;
        EXPECT_LE(p.stackFrac + p.heapFrac, 1.0) << p.name;
        EXPECT_LE(p.warmFrac + p.coldFrac, 1.0) << p.name;
    }
}

TEST(Suites, WorkingSetsOrdered)
{
    for (const auto &p : allBenchmarks()) {
        EXPECT_LE(p.hotBytes, p.warmBytes) << p.name;
        EXPECT_LE(p.warmBytes, p.coldBytes) << p.name;
    }
}

TEST(Suites, McfIsMemoryBound)
{
    // The paper's minimum-speedup application must stress DRAM.
    const auto &p = benchmarkByName("mcf");
    EXPECT_GT(p.coldFrac, 0.1);
    EXPECT_GT(p.pointerChaseFrac, 0.5);
}

TEST(Suites, SusanIsLowWidthHeavy)
{
    // The maximum Thermal Herding power saver works on 8-bit pixels.
    EXPECT_GT(benchmarkByName("susan").lowWidthBias, 0.8);
}

TEST(Suites, Yacr2IsFullWidthHeavy)
{
    // The minimum power saver is pointer-heavy.
    EXPECT_LT(benchmarkByName("yacr2").lowWidthBias, 0.4);
}

TEST(Suites, MediaBenchHasHighLowWidthBias)
{
    for (const auto &p : benchmarksInSuite("MediaBench")) {
        if (p.name == "pegwit")
            continue; // crypto: wide arithmetic, the suite outlier
        EXPECT_GT(p.lowWidthBias, 0.6) << p.name;
    }
}

TEST(Suites, SpecFpStreamsThroughDram)
{
    double mean_cold = 0.0;
    const auto fp = benchmarksInSuite("SPECfp2000");
    ASSERT_EQ(fp.size(), 11u);
    for (const auto &p : fp)
        mean_cold += p.coldFrac;
    mean_cold /= static_cast<double>(fp.size());
    // FP codes have the biggest DRAM appetite outside mcf.
    EXPECT_GT(mean_cold, 0.004);
}

TEST(Suites, EveryProfileBuildsATrace)
{
    for (const auto &p : allBenchmarks()) {
        SyntheticTrace t(p);
        TraceRecord r;
        for (int i = 0; i < 100; ++i)
            ASSERT_TRUE(t.next(r)) << p.name;
    }
}

} // namespace
} // namespace th
