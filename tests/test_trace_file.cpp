#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/serialize.h"
#include "io/trace_file.h"
#include "sim/system.h"
#include "trace/suites.h"

namespace th {
namespace {

namespace fs = std::filesystem;

class TraceFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::path(::testing::TempDir()) /
               ("thtrace-" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "-" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string path(const char *name) const
    {
        return (dir_ / name).string();
    }

    fs::path dir_;
};

TEST_F(TraceFileTest, RecordAndInfo)
{
    const BenchmarkProfile &profile = benchmarkByName("gzip");
    SyntheticTrace trace(profile);
    const std::string file = path("gzip.thtrace");
    std::string err;
    ASSERT_TRUE(recordTrace(file, trace, 20000, profile.name,
                            profile.suite, profile.seed, &err))
        << err;

    TraceFileInfo info;
    ASSERT_TRUE(readTraceInfo(file, info, &err)) << err;
    EXPECT_EQ(info.benchmark, "gzip");
    EXPECT_EQ(info.suite, profile.suite);
    EXPECT_EQ(info.seed, profile.seed);
    EXPECT_EQ(info.numRecords, 20000u);
    EXPECT_GT(info.numPrefillLines, 0u);
    EXPECT_EQ(info.schemaVersion, kTraceSchemaVersion);
}

TEST_F(TraceFileTest, ReplayStreamsTheRecordedRecords)
{
    const BenchmarkProfile &profile = benchmarkByName("susan");
    const std::string file = path("susan.thtrace");
    std::string err;
    {
        SyntheticTrace trace(profile);
        ASSERT_TRUE(recordTrace(file, trace, 5000, profile.name,
                                profile.suite, profile.seed, &err))
            << err;
    }

    // An independent generator replays the identical dynamic stream.
    SyntheticTrace fresh(profile);
    TraceFileReplay replay;
    ASSERT_TRUE(replay.open(file, &err)) << err;

    TraceRecord want, got;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(fresh.next(want));
        ASSERT_TRUE(replay.next(got)) << "replay ended early at " << i;
        ASSERT_EQ(got.pc, want.pc) << "record " << i;
        ASSERT_EQ(got.op, want.op) << "record " << i;
        ASSERT_EQ(got.resultValue, want.resultValue) << "record " << i;
        ASSERT_EQ(got.effAddr, want.effAddr) << "record " << i;
        ASSERT_EQ(got.taken, want.taken) << "record " << i;
        ASSERT_EQ(got.target, want.target) << "record " << i;
    }
    EXPECT_FALSE(replay.next(got)) << "replay should end after 5000";

    // reset() rewinds to the first record.
    replay.reset();
    ASSERT_TRUE(replay.next(got));
    SyntheticTrace first(profile);
    ASSERT_TRUE(first.next(want));
    EXPECT_EQ(got.pc, want.pc);

    // Prefill lines survive the round trip.
    std::vector<PrefillLine> live_lines, replay_lines;
    SyntheticTrace(profile).prefillLines(live_lines);
    replay.prefillLines(replay_lines);
    ASSERT_EQ(replay_lines.size(), live_lines.size());
    for (std::size_t i = 0; i < live_lines.size(); ++i) {
        EXPECT_EQ(replay_lines[i].addr, live_lines[i].addr);
        EXPECT_EQ(replay_lines[i].intoL1, live_lines[i].intoL1);
    }
}

// The round-trip determinism contract: simulating a replayed .thtrace
// produces a CoreResult bit-identical to simulating the live
// generator with the same seed.
TEST_F(TraceFileTest, ReplayedRunIsBitIdenticalToLiveRun)
{
    SimOptions opts;
    opts.instructions = 20000;
    opts.warmupInstructions = 10000;
    System sys(opts);

    const BenchmarkProfile &profile = benchmarkByName("crafty");
    const std::string file = path("crafty.thtrace");
    std::string err;
    {
        SyntheticTrace trace(profile);
        // The core fetches ahead of commit, so record past the window.
        ASSERT_TRUE(recordTrace(
            file, trace,
            opts.instructions + opts.warmupInstructions + 8192,
            profile.name, profile.suite, profile.seed, &err))
            << err;
    }

    const CoreConfig cfg = makeConfig(ConfigKind::ThreeD, sys.circuits());
    const CoreResult live = sys.runCore("crafty", cfg);

    TraceFileReplay replay;
    ASSERT_TRUE(replay.open(file, &err)) << err;
    const CoreResult replayed = sys.runTrace(replay, cfg);

    EXPECT_EQ(serializeCoreResult(replayed), serializeCoreResult(live))
        << "replayed CoreResult diverged from the live generator";
}

TEST_F(TraceFileTest, ShortTraceEndsRunGracefully)
{
    SimOptions opts;
    opts.instructions = 20000;
    opts.warmupInstructions = 0;
    System sys(opts);

    const BenchmarkProfile &profile = benchmarkByName("gzip");
    const std::string file = path("short.thtrace");
    std::string err;
    {
        SyntheticTrace trace(profile);
        ASSERT_TRUE(recordTrace(file, trace, 3000, profile.name,
                                profile.suite, profile.seed, &err));
    }
    TraceFileReplay replay;
    ASSERT_TRUE(replay.open(file, &err)) << err;
    const CoreConfig cfg = makeConfig(ConfigKind::Base, sys.circuits());
    const CoreResult r = sys.runTrace(replay, cfg);
    EXPECT_GT(r.perf.committedInsts.value(), 0u);
    EXPECT_LE(r.perf.committedInsts.value(), 3000u);
}

TEST_F(TraceFileTest, BitFlipDetectedOnOpen)
{
    const BenchmarkProfile &profile = benchmarkByName("gzip");
    const std::string file = path("flip.thtrace");
    std::string err;
    {
        SyntheticTrace trace(profile);
        ASSERT_TRUE(recordTrace(file, trace, 2000, profile.name,
                                profile.suite, profile.seed, &err));
    }
    // Flip one bit deep inside a RECS payload.
    {
        std::fstream f(file, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(500);
        char c = 0;
        f.seekg(500);
        f.get(c);
        f.seekp(500);
        f.put(static_cast<char>(c ^ 0x10));
    }
    TraceFileReplay replay;
    EXPECT_FALSE(replay.open(file, &err));
    EXPECT_FALSE(err.empty());

    TraceFileInfo info;
    EXPECT_FALSE(readTraceInfo(file, info, &err));
}

TEST_F(TraceFileTest, TruncationDetectedOnOpen)
{
    const BenchmarkProfile &profile = benchmarkByName("gzip");
    const std::string file = path("trunc.thtrace");
    std::string err;
    {
        SyntheticTrace trace(profile);
        ASSERT_TRUE(recordTrace(file, trace, 2000, profile.name,
                                profile.suite, profile.seed, &err));
    }
    fs::resize_file(file, fs::file_size(file) / 2);
    TraceFileReplay replay;
    EXPECT_FALSE(replay.open(file, &err));
}

TEST_F(TraceFileTest, MissingFileFailsCleanly)
{
    TraceFileReplay replay;
    std::string err;
    EXPECT_FALSE(replay.open(path("nonexistent.thtrace"), &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos);
}

} // namespace
} // namespace th
