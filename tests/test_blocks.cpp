#include <gtest/gtest.h>

#include "circuit/blocks.h"
#include "sim/paper_targets.h"

namespace th {
namespace {

class BlockLibraryTest : public ::testing::Test
{
  protected:
    static const BlockLibrary &lib()
    {
        static BlockLibrary instance;
        return instance;
    }
};

TEST_F(BlockLibraryTest, TableHasAllMajorBlocks)
{
    for (const char *name :
         {"Scheduler (wakeup-select)", "ALU + bypass loop",
          "Integer adder", "Register file", "Reorder buffer",
          "L1 I-cache", "L1 D-cache", "L2 cache", "I-TLB", "D-TLB",
          "Branch target buffer", "Branch predictor", "Load queue",
          "Store queue"}) {
        EXPECT_NE(lib().find(name), nullptr) << name;
    }
    EXPECT_EQ(lib().find("No such block"), nullptr);
}

TEST_F(BlockLibraryTest, Every3dBlockFaster)
{
    for (const auto &b : lib().table2()) {
        EXPECT_LT(b.lat3dPs, b.lat2dPs) << b.name;
        EXPECT_GT(b.improvement(), 0.0) << b.name;
        EXPECT_LT(b.improvement(), 0.8) << b.name;
    }
}

TEST_F(BlockLibraryTest, WakeupSelectImprovementNearPaper)
{
    // Paper: 32% improvement in the wakeup-select loop.
    const BlockTiming *b = lib().find("Scheduler (wakeup-select)");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->critical);
    EXPECT_NEAR(b->improvement(), paper::kWakeupSelectImprovement, 0.03);
}

TEST_F(BlockLibraryTest, AluBypassImprovementNearPaper)
{
    // Paper: 36% improvement in the ALU+bypass loop.
    const BlockTiming *b = lib().find("ALU + bypass loop");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->critical);
    EXPECT_NEAR(b->improvement(), paper::kAluBypassImprovement, 0.04);
}

TEST_F(BlockLibraryTest, AdderContributionSmall)
{
    // The adder alone contributes only a few points (3 of 36 in the
    // paper) of the loop improvement.
    const BlockTiming *adder = lib().find("Integer adder");
    const BlockTiming *loop = lib().find("ALU + bypass loop");
    ASSERT_NE(adder, nullptr);
    ASSERT_NE(loop, nullptr);
    const double adder_points =
        (adder->lat2dPs - adder->lat3dPs) / loop->lat2dPs;
    EXPECT_LT(adder_points, 0.08);
    EXPECT_LT(adder->improvement(), loop->improvement());
}

TEST_F(BlockLibraryTest, FrequencyGainNearPaper)
{
    // Paper: 2.66 GHz -> 3.93 GHz (+47.9%).
    EXPECT_NEAR(lib().frequencyGain(), paper::kFreqGain, 0.04);
    EXPECT_NEAR(lib().frequency2dGhz(), paper::kFreq2dGhz, 1e-9);
    EXPECT_NEAR(lib().frequency3dGhz(), paper::kFreq3dGhz, 0.12);
}

TEST_F(BlockLibraryTest, CycleTimeMatchesBaseFrequency)
{
    // The modelled critical loop should be close to the 2.66 GHz
    // period (376 ps).
    EXPECT_NEAR(lib().clockPeriod2dPs(), 1000.0 / 2.66, 15.0);
}

TEST_F(BlockLibraryTest, CriticalLoopsSetThePeriod)
{
    const BlockTiming *sched = lib().find("Scheduler (wakeup-select)");
    const BlockTiming *alu = lib().find("ALU + bypass loop");
    EXPECT_DOUBLE_EQ(lib().clockPeriod2dPs(),
                     std::max(sched->lat2dPs, alu->lat2dPs));
    EXPECT_DOUBLE_EQ(lib().clockPeriod3dPs(),
                     std::max(sched->lat3dPs, alu->lat3dPs));
}

TEST_F(BlockLibraryTest, LargeArraysSeeSubstantialGains)
{
    // "Large arrays (caches, register files, TLBs) observe
    // substantial latency improvements."
    for (const char *name : {"Register file", "L1 D-cache", "L2 cache",
                             "Branch target buffer"}) {
        const BlockTiming *b = lib().find(name);
        ASSERT_NE(b, nullptr) << name;
        EXPECT_GT(b->improvement(), 0.15) << name;
    }
}

TEST_F(BlockLibraryTest, Energies3dCheaperThan2d)
{
    const CoreEnergies &e2 = lib().energies2d();
    const CoreEnergies &e3 = lib().energies3d();
    EXPECT_LT(e3.rfReadFull, e2.rfReadFull);
    EXPECT_LT(e3.dl1ReadFull, e2.dl1ReadFull);
    EXPECT_LT(e3.aluFull, e2.aluFull);
    EXPECT_LT(e3.bypassFull, e2.bypassFull);
    EXPECT_LT(e3.l2Access, e2.l2Access);
    EXPECT_LT(e3.miscPerUop, e2.miscPerUop);
}

TEST_F(BlockLibraryTest, PlanarHasNoLowWidthDiscount)
{
    const CoreEnergies &e2 = lib().energies2d();
    EXPECT_DOUBLE_EQ(e2.rfReadLow, e2.rfReadFull);
    EXPECT_DOUBLE_EQ(e2.dl1ReadLow, e2.dl1ReadFull);
    EXPECT_DOUBLE_EQ(e2.aluLow, e2.aluFull);
}

TEST_F(BlockLibraryTest, HerdedAccessesMuchCheaper)
{
    const CoreEnergies &e3 = lib().energies3d();
    EXPECT_LT(e3.rfReadLow, e3.rfReadFull * 0.5);
    EXPECT_LT(e3.dl1ReadLow, e3.dl1ReadFull * 0.5);
    EXPECT_LT(e3.bypassLow, e3.bypassFull * 0.5);
    EXPECT_LT(e3.aluLow, e3.aluFull * 0.5);
}

TEST_F(BlockLibraryTest, EnergiesArePositive)
{
    const CoreEnergies &e = lib().energies2d();
    for (double v : {e.rfReadFull, e.rfWriteFull, e.aluFull, e.fpOp,
                     e.bypassFull, e.schedWakeupPerDie, e.schedSelect,
                     e.schedAlloc, e.lsqSearchFull, e.lsqWrite,
                     e.dl1ReadFull, e.dl1WriteFull, e.dl1Fill,
                     e.il1Access, e.itlbAccess, e.dtlbAccess,
                     e.btbFull, e.bpredLookup, e.bpredUpdate,
                     e.robReadFull, e.robWriteFull, e.decodeUop,
                     e.renameUop, e.l2Access, e.miscPerUop}) {
        EXPECT_GT(v, 0.0);
    }
}

TEST(SchedulerLoopModel, StackedLoopFaster)
{
    const double d2 = SchedulerLoop::latencyPs(32, false);
    const double d3 = SchedulerLoop::latencyPs(32, true);
    EXPECT_LT(d3, d2);
}

TEST(SchedulerLoopModel, MoreEntriesSlower)
{
    EXPECT_LT(SchedulerLoop::latencyPs(16, false),
              SchedulerLoop::latencyPs(64, false));
}

} // namespace
} // namespace th
