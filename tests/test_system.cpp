#include <gtest/gtest.h>

#include "sim/system.h"

namespace th {
namespace {

class SystemTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        SimOptions opts;
        opts.instructions = 50000;
        opts.warmupInstructions = 30000;
        sys_ = new System(opts);
    }

    static void TearDownTestSuite()
    {
        delete sys_;
        sys_ = nullptr;
    }

    static System *sys_;
};

System *SystemTest::sys_ = nullptr;

TEST_F(SystemTest, CircuitFrequenciesExposed)
{
    EXPECT_NEAR(sys_->circuits().frequency2dGhz(), 2.66, 1e-9);
    EXPECT_GT(sys_->circuits().frequency3dGhz(), 3.7);
}

TEST_F(SystemTest, RunCoreProducesCommits)
{
    const CoreResult r = sys_->runCore("gzip", ConfigKind::Base);
    // The commit stage retires up to 4 per cycle, so the run may
    // overshoot the target by a fraction of one group.
    EXPECT_GE(r.perf.committedInsts.value(), 50000u);
    EXPECT_LE(r.perf.committedInsts.value(), 50003u);
    EXPECT_GT(r.perf.ipc(), 0.05);
}

TEST_F(SystemTest, EvaluateProducesPower)
{
    System &sys = *sys_;
    const Evaluation ev = sys.evaluate("gzip", ConfigKind::Base);
    EXPECT_GT(ev.power.totalW(), 20.0);
    EXPECT_LT(ev.power.totalW(), 150.0);
    EXPECT_EQ(ev.benchmark, "gzip");
}

TEST_F(SystemTest, ThermalReportSane)
{
    System &sys = *sys_;
    const Evaluation ev = sys.evaluate("gzip", ConfigKind::Base);
    const ThermalReport rep = sys.thermal(ev);
    EXPECT_GT(rep.peakK, sys.hotspot().params().ambientK);
    EXPECT_LT(rep.peakK, 500.0);
}

TEST_F(SystemTest, FloorplansMatchConfigs)
{
    EXPECT_GT(sys_->planarFloorplan().chipW,
              sys_->stackedFloorplan().chipW);
}

TEST_F(SystemTest, IpnsCombinesIpcAndClock)
{
    const CoreResult base = sys_->runCore("susan", ConfigKind::Base);
    EXPECT_NEAR(base.ipns(), base.perf.ipc() * 2.66, 1e-9);
}

} // namespace
} // namespace th
