#include <gtest/gtest.h>

#include <filesystem>

#include "common/threadpool.h"
#include "io/serialize.h"
#include "multicore/contention.h"
#include "multicore/multicore.h"
#include "sim/configs.h"
#include "sim/experiments.h"
#include "sim/report.h"
#include "sim/system.h"
#include "store/artifact_store.h"

namespace th {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Banked-L2 contention model.
// ---------------------------------------------------------------------

TEST(BankedL2, SingleCoreSeesNoContention)
{
    BankedL2Model m(4, 4, 8);
    for (const std::uint64_t load : {0ull, 100ull, 5000ull}) {
        const auto c = m.step({load}, 20000);
        ASSERT_EQ(c.size(), 1u);
        EXPECT_EQ(c[0].extraPerAccess, 0.0) << load;
        EXPECT_EQ(c[0].stallCycles, 0.0) << load;
    }
}

TEST(BankedL2, ContentionGrowsWithSharers)
{
    const auto extra_at = [](int cores) {
        BankedL2Model m(4, 4, 8);
        const std::vector<std::uint64_t> acc(
            static_cast<size_t>(cores), 2000);
        return m.step(acc, 20000)[0].extraPerAccess;
    };
    const double two = extra_at(2);
    const double four = extra_at(4);
    const double eight = extra_at(8);
    EXPECT_GT(two, 0.0);
    EXPECT_GT(four, two);
    EXPECT_GT(eight, four);
}

TEST(BankedL2, MoreBanksRelieveContention)
{
    const auto extra_with = [](int banks) {
        BankedL2Model m(banks, 4, 8);
        return m.step({2000, 2000, 2000, 2000}, 20000)[0].extraPerAccess;
    };
    EXPECT_GT(extra_with(1), extra_with(4));
    EXPECT_GT(extra_with(4), extra_with(16));
}

TEST(BankedL2, RoundRobinSplitConservesAccesses)
{
    BankedL2Model m(4, 4, 8);
    m.step({10, 11}, 20000); // 21 = 4*5 + 1: one bank gets the extra.
    std::uint64_t total = 0;
    for (int b = 0; b < m.banks(); ++b) {
        total += m.bankAccesses(b);
        EXPECT_GE(m.bankAccesses(b), 5u);
        EXPECT_LE(m.bankAccesses(b), 6u);
    }
    EXPECT_EQ(total, 21u);
}

TEST(BankedL2, OccupancyStatsAccumulate)
{
    BankedL2Model m(2, 4, 8);
    m.step({4000, 4000}, 20000); // busy: 8000*4/2 per bank = 16000/20000
    m.step({0, 0}, 20000);
    for (int b = 0; b < 2; ++b) {
        EXPECT_NEAR(m.bankPeakOccupancy(b), 0.8, 1e-12);
        EXPECT_NEAR(m.bankOccupancy(b), 0.4, 1e-12);
    }
}

TEST(BankedL2, PureFunctionOfAccessCounts)
{
    BankedL2Model a(4, 4, 8), b(4, 4, 8);
    const std::vector<std::uint64_t> acc = {1234, 0, 987, 4321};
    const auto ca = a.step(acc, 20000);
    const auto cb = b.step(acc, 20000);
    ASSERT_EQ(ca.size(), cb.size());
    for (size_t i = 0; i < ca.size(); ++i) {
        EXPECT_EQ(ca[i].extraPerAccess, cb[i].extraPerAccess) << i;
        EXPECT_EQ(ca[i].stallCycles, cb[i].stallCycles) << i;
    }
}

// ---------------------------------------------------------------------
// MulticoreReport serialization + store round trip.
// ---------------------------------------------------------------------

MulticoreReport
sampleReport()
{
    MulticoreReport r;
    r.config = "3D";
    r.policy = "fetch";
    r.triggerK = 360.0;
    r.freqGhz = 3.875;
    r.numCores = 2;
    r.l2Banks = 2;
    r.intervals = 6;
    r.startPeakK = 355.2;
    r.peakK = 364.9;
    r.finalPeakK = 358.3;
    r.totalTimeS = 0.12;
    r.timeAboveTriggerS = 0.03;
    r.throughputIpc = 3.1;
    for (int c = 0; c < 2; ++c) {
        MulticoreCoreStats cs;
        cs.benchmark = c ? "gzip" : "mpeg2enc";
        cs.ipcFree = 1.8 - c * 0.3;
        cs.ipcEffective = 1.6 - c * 0.3;
        cs.throttleDuty = 0.1 * c;
        cs.perfLost = 0.05 * c;
        cs.startPeakK = 352.0 + c;
        cs.peakK = 362.0 + c;
        cs.finalPeakK = 356.0 + c;
        cs.timeAboveTriggerS = 0.01 * c;
        cs.wallCycles = 120000 + static_cast<std::uint64_t>(c);
        cs.committed = 190000 - static_cast<std::uint64_t>(c) * 7;
        cs.l2Accesses = 4200 + static_cast<std::uint64_t>(c) * 13;
        cs.extraMissCycles = 1.7 + c;
        cs.contentionStallFrac = 0.02 * (c + 1);
        r.cores.push_back(cs);
    }
    for (int b = 0; b < 2; ++b) {
        MulticoreBankStats bs;
        bs.accesses = 2100 + static_cast<std::uint64_t>(b);
        bs.occupancy = 0.3 + 0.1 * b;
        bs.peakOccupancy = 0.6 + 0.1 * b;
        r.banks.push_back(bs);
    }
    return r;
}

TEST(MulticoreSerialize, ReportRoundTripsBitIdentical)
{
    const MulticoreReport r = sampleReport();
    Encoder enc;
    encodeMulticoreReport(enc, r);

    Decoder dec(enc.data());
    MulticoreReport back;
    ASSERT_TRUE(decodeMulticoreReport(dec, back));
    EXPECT_TRUE(dec.atEnd());
    EXPECT_EQ(serializeMulticoreReport(back), serializeMulticoreReport(r));
    ASSERT_EQ(back.cores.size(), 2u);
    ASSERT_EQ(back.banks.size(), 2u);
    EXPECT_EQ(back.cores[1].benchmark, "gzip");
    EXPECT_EQ(back.cores[1].l2Accesses, r.cores[1].l2Accesses);
    EXPECT_EQ(back.cores[0].timeAboveTriggerS, r.cores[0].timeAboveTriggerS);
    EXPECT_EQ(back.banks[1].accesses, r.banks[1].accesses);
}

TEST(MulticoreSerialize, TruncatedReportFailsDecodeAtEveryLength)
{
    Encoder enc;
    encodeMulticoreReport(enc, sampleReport());
    const std::vector<std::uint8_t> bytes = enc.data();
    for (std::size_t cut = 0; cut < bytes.size(); cut += 5) {
        std::vector<std::uint8_t> prefix(bytes.begin(),
                                         bytes.begin() +
                                             static_cast<long>(cut));
        Decoder dec(prefix);
        MulticoreReport back;
        EXPECT_FALSE(decodeMulticoreReport(dec, back)) << "cut=" << cut;
    }
}

TEST(MulticoreStore, StoreThenLoadRoundTrips)
{
    const fs::path dir = fs::path(::testing::TempDir()) / "thmc-store";
    fs::remove_all(dir);
    fs::create_directories(dir);
    StoreOptions o;
    o.dir = dir.string();
    o.maxBytes = 0;
    {
        ArtifactStore store(o);
        const MulticoreReport r = sampleReport();
        ASSERT_TRUE(store.storeMulticoreReport("mpeg2enc+gzip", 0x3C, r));
    }
    ArtifactStore store(o);
    MulticoreReport back;
    ASSERT_TRUE(store.loadMulticoreReport("mpeg2enc+gzip", 0x3C, back));
    EXPECT_EQ(serializeMulticoreReport(back),
              serializeMulticoreReport(sampleReport()));
    EXPECT_FALSE(store.loadMulticoreReport("mpeg2enc+gzip", 0x1, back));
    EXPECT_FALSE(store.loadMulticoreReport("gzip", 0x3C, back));

    const auto entries = store.list();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].format, kMulticoreReportFormatTag);
    EXPECT_EQ(entries[0].benchmark, "mpeg2enc+gzip");
    EXPECT_EQ(store.verify(), 0);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Config hash.
// ---------------------------------------------------------------------

TEST(MulticoreConfigHash, SensitiveToEveryKnob)
{
    const CoreConfig cfg;
    const MulticoreConfig base;
    const std::uint64_t h0 = multicoreConfigHash(cfg, base);

    MulticoreConfig m = base;
    m.numCores += 1;
    EXPECT_NE(multicoreConfigHash(cfg, m), h0) << "numCores";
    m = base;
    m.l2Banks += 1;
    EXPECT_NE(multicoreConfigHash(cfg, m), h0) << "l2Banks";
    m = base;
    m.l2BankServiceCycles += 1;
    EXPECT_NE(multicoreConfigHash(cfg, m), h0) << "l2BankServiceCycles";
    m = base;
    m.l2MshrPerCore += 1;
    EXPECT_NE(multicoreConfigHash(cfg, m), h0) << "l2MshrPerCore";
    m = base;
    m.benchmarks = {"gzip"};
    EXPECT_NE(multicoreConfigHash(cfg, m), h0) << "benchmarks";
    m = base;
    m.dtm.triggers.triggerK += 0.5;
    EXPECT_NE(multicoreConfigHash(cfg, m), h0) << "dtm knobs";

    CoreConfig other = cfg;
    other.robSize += 8;
    EXPECT_NE(multicoreConfigHash(other, base), h0) << "core config";
}

// ---------------------------------------------------------------------
// Engine integration (small windows to stay fast).
// ---------------------------------------------------------------------

class MulticoreEngineTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        SimOptions opts;
        opts.instructions = 20000;
        opts.warmupInstructions = 5000;
        ::unsetenv("TH_STORE_DIR");
        sys_ = new System(opts);
    }

    static void TearDownTestSuite()
    {
        delete sys_;
        sys_ = nullptr;
    }

    static MulticoreConfig tinyConfig(int cores)
    {
        MulticoreConfig mc;
        mc.numCores = cores;
        mc.benchmarks = {"mpeg2enc"};
        mc.dtm.intervalCycles = 20000;
        mc.dtm.maxIntervals = 6;
        mc.dtm.warmupInstructions = 5000;
        mc.dtm.gridN = 8;
        mc.dtm.policy = DtmPolicyKind::None;
        return mc;
    }

    static System *sys_;
};

System *MulticoreEngineTest::sys_ = nullptr;

TEST_F(MulticoreEngineTest, SingleCoreRunsContentionFree)
{
    const MulticoreReport r =
        sys_->runMulticore(ConfigKind::ThreeDNoTH, tinyConfig(1));
    EXPECT_EQ(r.numCores, 1u);
    ASSERT_EQ(r.cores.size(), 1u);
    ASSERT_EQ(r.banks.size(), 4u);
    EXPECT_EQ(r.cores[0].benchmark, "mpeg2enc");
    EXPECT_EQ(r.cores[0].extraMissCycles, 0.0)
        << "a core alone on the stack must queue behind nobody";
    EXPECT_EQ(r.cores[0].contentionStallFrac, 0.0);
    EXPECT_GT(r.cores[0].ipcFree, 0.0);
    EXPECT_GT(r.peakK, 300.0);
    EXPECT_GE(r.peakK, r.finalPeakK - 1e-9);
}

TEST_F(MulticoreEngineTest, DegenerateDualCoreMatchesDtmPerfStats)
{
    // The N=2 stack is the paper's dual-core chip: with contention
    // never perturbing the cycle cores and the same trace stream, the
    // per-core perf stats must be byte-identical to the single-core
    // DTM engine's run of the same benchmark.
    DtmOptions o;
    o.intervalCycles = 20000;
    o.maxIntervals = 6;
    o.warmupInstructions = 5000;
    o.gridN = 8;
    o.policy = DtmPolicyKind::None;
    const DtmReport d =
        sys_->runDtm("mpeg2enc", ConfigKind::ThreeDNoTH, o);
    const MulticoreReport m =
        sys_->runMulticore(ConfigKind::ThreeDNoTH, tinyConfig(2));

    ASSERT_EQ(m.cores.size(), 2u);
    for (const auto &c : m.cores) {
        EXPECT_EQ(c.committed, d.committed);
        EXPECT_EQ(c.wallCycles, d.wallCycles);
        EXPECT_EQ(c.ipcFree, d.ipcFree);
        EXPECT_EQ(c.ipcEffective, d.ipcEffective);
        EXPECT_EQ(c.throttleDuty, 0.0);
    }
}

TEST_F(MulticoreEngineTest, NeighborCouplingHeatsTheStack)
{
    const MulticoreReport one =
        sys_->runMulticore(ConfigKind::ThreeDNoTH, tinyConfig(1));
    const MulticoreReport four =
        sys_->runMulticore(ConfigKind::ThreeDNoTH, tinyConfig(4));
    double hot1 = 0.0, hot4 = 0.0;
    for (const auto &c : one.cores)
        hot1 = std::max(hot1, c.peakK);
    for (const auto &c : four.cores)
        hot4 = std::max(hot4, c.peakK);
    EXPECT_GT(hot4, hot1 + 1.0)
        << "neighbour cores must be visible through the silicon";
}

TEST_F(MulticoreEngineTest, BitIdenticalAcrossThreadCounts)
{
    const int restore = ThreadPool::global().threads();
    MulticoreConfig mc = tinyConfig(4);
    mc.benchmarks = {"mpeg2enc", "gzip"};

    SimOptions opts;
    opts.instructions = 20000;
    opts.warmupInstructions = 5000;

    ThreadPool::setGlobalThreads(1);
    System s1(opts);
    const MulticoreReport r1 =
        s1.runMulticore(ConfigKind::ThreeD, mc);

    ThreadPool::setGlobalThreads(4);
    System s4(opts);
    const MulticoreReport r4 =
        s4.runMulticore(ConfigKind::ThreeD, mc);

    ThreadPool::setGlobalThreads(restore);
    EXPECT_EQ(serializeMulticoreReport(r1), serializeMulticoreReport(r4));
}

TEST_F(MulticoreEngineTest, RepeatRunsHitTheMemoryCache)
{
    const MulticoreReport a =
        sys_->runMulticore(ConfigKind::ThreeD, tinyConfig(2));
    const MulticoreReport b =
        sys_->runMulticore(ConfigKind::ThreeD, tinyConfig(2));
    EXPECT_EQ(serializeMulticoreReport(a), serializeMulticoreReport(b));
}

TEST_F(MulticoreEngineTest, StudyGridIsCountMajorConfigMinor)
{
    MulticoreConfig mc = tinyConfig(1);
    const MulticoreStudyData data =
        runMulticoreStudy(*sys_, mc, {1, 2});
    ASSERT_EQ(data.cases.size(), 4u);
    EXPECT_EQ(data.cases[0].cores, 1);
    EXPECT_EQ(data.cases[0].config, ConfigKind::ThreeDNoTH);
    EXPECT_EQ(data.cases[1].cores, 1);
    EXPECT_EQ(data.cases[1].config, ConfigKind::ThreeD);
    EXPECT_EQ(data.cases[2].cores, 2);
    EXPECT_EQ(data.cases[3].cores, 2);

    const std::string text = renderMulticoreStudy(data);
    EXPECT_NE(text.find("Many-core neighbor coupling"), std::string::npos);
    EXPECT_NE(text.find("neighbor coupling (no herding)"),
              std::string::npos);
}

TEST_F(MulticoreEngineTest, RenderListsEveryCoreAndBank)
{
    const MulticoreReport r =
        sys_->runMulticore(ConfigKind::ThreeD, tinyConfig(2));
    const std::string text = renderMulticore(r);
    EXPECT_NE(text.find("Many-core stack"), std::string::npos);
    EXPECT_NE(text.find("0:mpeg2enc"), std::string::npos);
    EXPECT_NE(text.find("1:mpeg2enc"), std::string::npos);
    EXPECT_NE(text.find("stack"), std::string::npos);
    EXPECT_NE(text.find("Bank"), std::string::npos);
}

} // namespace
} // namespace th
