#include <gtest/gtest.h>

#include "core/lsq.h"

namespace th {
namespace {

TEST(StoreQueue, CapacityTracking)
{
    StoreQueue sq(2);
    EXPECT_FALSE(sq.full());
    sq.insert(1, 0x1000, 8, 7);
    sq.insert(2, 0x2000, 8, 9);
    EXPECT_TRUE(sq.full());
    sq.commitOldest();
    EXPECT_FALSE(sq.full());
    EXPECT_EQ(sq.size(), 1);
}

TEST(StoreQueue, ForwardExactMatch)
{
    StoreQueue sq(8);
    sq.insert(1, 0x1000, 8, 0xABCD);
    sq.setAddressKnown(1, 5);
    const LsqSearchResult r = sq.searchForLoad(2, 0x1000, 8, 10);
    EXPECT_TRUE(r.forward);
    EXPECT_EQ(r.value, 0xABCDu);
    EXPECT_FALSE(r.mustWait);
}

TEST(StoreQueue, NoForwardFromYoungerStore)
{
    StoreQueue sq(8);
    sq.insert(5, 0x1000, 8, 1);
    sq.setAddressKnown(5, 1);
    const LsqSearchResult r = sq.searchForLoad(3, 0x1000, 8, 10);
    EXPECT_FALSE(r.forward);
    EXPECT_FALSE(r.mustWait);
}

TEST(StoreQueue, YoungestOlderStoreWins)
{
    StoreQueue sq(8);
    sq.insert(1, 0x1000, 8, 111);
    sq.insert(2, 0x1000, 8, 222);
    sq.setAddressKnown(1, 1);
    sq.setAddressKnown(2, 2);
    const LsqSearchResult r = sq.searchForLoad(9, 0x1000, 8, 10);
    EXPECT_TRUE(r.forward);
    EXPECT_EQ(r.value, 222u);
}

TEST(StoreQueue, WaitsForConflictingUnresolvedStore)
{
    StoreQueue sq(8);
    sq.insert(1, 0x1000, 8, 7); // address not yet "known"
    const LsqSearchResult r = sq.searchForLoad(2, 0x1000, 8, 10);
    EXPECT_TRUE(r.mustWait);
}

TEST(StoreQueue, WaitsUntilAguCycle)
{
    StoreQueue sq(8);
    sq.insert(1, 0x1000, 8, 7);
    sq.setAddressKnown(1, 20);
    EXPECT_TRUE(sq.searchForLoad(2, 0x1000, 8, 10).mustWait);
    EXPECT_TRUE(sq.searchForLoad(2, 0x1000, 8, 10).waitUntil == 20);
    EXPECT_TRUE(sq.searchForLoad(2, 0x1000, 8, 25).forward);
}

TEST(StoreQueue, OracleIgnoresNonConflictingUnresolved)
{
    // An unresolved store to a *different* address does not block
    // (ideal memory dependence prediction).
    StoreQueue sq(8);
    sq.insert(1, 0x9000, 8, 7);
    const LsqSearchResult r = sq.searchForLoad(2, 0x1000, 8, 10);
    EXPECT_FALSE(r.mustWait);
    EXPECT_FALSE(r.forward);
}

TEST(StoreQueue, PartialOverlapDoesNotForward)
{
    StoreQueue sq(8);
    sq.insert(1, 0x1004, 4, 7);
    sq.setAddressKnown(1, 1);
    const LsqSearchResult r = sq.searchForLoad(2, 0x1000, 8, 10);
    EXPECT_FALSE(r.forward);
    EXPECT_FALSE(r.mustWait);
}

TEST(StoreQueue, PamMemoizesSameRegion)
{
    StoreQueue sq(8);
    ActivityStats act;
    PerfStats perf;
    const Addr stack1 = 0x00007fffff000010ULL;
    const Addr stack2 = 0x00007fffff000020ULL; // same upper 48 bits
    const Addr heap = 0x0000200000000000ULL;

    // First broadcast: nothing memoized yet.
    EXPECT_FALSE(sq.recordBroadcast(stack1, true, act, perf, true));
    // Same-region load: memoized (top-die-only search).
    EXPECT_TRUE(sq.recordBroadcast(stack2, false, act, perf, true));
    // Cross-region access breaks the memoization.
    EXPECT_FALSE(sq.recordBroadcast(heap, true, act, perf, true));
    // Back to the stack: the last *store* was the heap one.
    EXPECT_FALSE(sq.recordBroadcast(stack1, false, act, perf, true));

    EXPECT_EQ(perf.pamHits.value(), 1u);
    EXPECT_EQ(perf.pamMisses.value(), 3u);
    EXPECT_EQ(act.lsqSearchLow.value(), 1u);
    EXPECT_EQ(act.lsqSearchFull.value(), 3u);
}

TEST(StoreQueue, LoadsDoNotUpdatePamReference)
{
    StoreQueue sq(8);
    ActivityStats act;
    PerfStats perf;
    const Addr stack = 0x00007fffff000010ULL;
    const Addr heap1 = 0x0000200000000000ULL;
    const Addr heap2 = 0x0000200000000040ULL;
    sq.recordBroadcast(stack, true, act, perf, true);
    // A heap LOAD misses but must not change the reference...
    EXPECT_FALSE(sq.recordBroadcast(heap1, false, act, perf, true));
    // ...so a stack access still memoizes.
    EXPECT_TRUE(sq.recordBroadcast(stack + 8, false, act, perf, true));
    // While a heap STORE does change it.
    sq.recordBroadcast(heap1, true, act, perf, true);
    EXPECT_TRUE(sq.recordBroadcast(heap2, false, act, perf, true));
}

TEST(StoreQueue, PamDisabledCountsFull)
{
    StoreQueue sq(8);
    ActivityStats act;
    PerfStats perf;
    const Addr stack = 0x00007fffff000010ULL;
    sq.recordBroadcast(stack, true, act, perf, false);
    EXPECT_FALSE(sq.recordBroadcast(stack + 8, false, act, perf, false));
    EXPECT_EQ(act.lsqSearchFull.value(), 2u);
    EXPECT_EQ(act.lsqSearchLow.value(), 0u);
}

TEST(StoreQueueDeathTest, OverflowPanics)
{
    StoreQueue sq(1);
    sq.insert(1, 0x0, 8, 0);
    EXPECT_DEATH(sq.insert(2, 0x8, 8, 0), "full");
}

TEST(StoreQueueDeathTest, CommitEmptyPanics)
{
    StoreQueue sq(1);
    EXPECT_DEATH(sq.commitOldest(), "empty");
}

TEST(StoreQueueDeathTest, UnknownSeqPanics)
{
    StoreQueue sq(2);
    sq.insert(1, 0x0, 8, 0);
    EXPECT_DEATH(sq.setAddressKnown(7, 1), "not found");
}

} // namespace
} // namespace th
