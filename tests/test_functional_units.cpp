#include <gtest/gtest.h>

#include "core/functional_units.h"

namespace th {
namespace {

class FuTest : public ::testing::Test
{
  protected:
    CoreConfig cfg_;
    FuLatencies lat_;
};

TEST_F(FuTest, ThreeAlusPerCycle)
{
    FuPool fus(cfg_, lat_);
    EXPECT_EQ(fus.tryIssue(OpClass::IntAlu, 10), lat_.intAlu);
    EXPECT_EQ(fus.tryIssue(OpClass::IntAlu, 10), lat_.intAlu);
    EXPECT_EQ(fus.tryIssue(OpClass::IntAlu, 10), lat_.intAlu);
    EXPECT_EQ(fus.tryIssue(OpClass::IntAlu, 10), -1)
        << "Table 1: only 3 ALUs";
    EXPECT_EQ(fus.tryIssue(OpClass::IntAlu, 11), lat_.intAlu)
        << "pipelined: free next cycle";
}

TEST_F(FuTest, TwoShiftersOneMultiplier)
{
    FuPool fus(cfg_, lat_);
    EXPECT_GE(fus.tryIssue(OpClass::IntShift, 1), 0);
    EXPECT_GE(fus.tryIssue(OpClass::IntShift, 1), 0);
    EXPECT_EQ(fus.tryIssue(OpClass::IntShift, 1), -1);
    EXPECT_EQ(fus.tryIssue(OpClass::IntMult, 1), lat_.intMult);
    EXPECT_EQ(fus.tryIssue(OpClass::IntMult, 1), -1);
}

TEST_F(FuTest, MultiplierIsPipelined)
{
    FuPool fus(cfg_, lat_);
    EXPECT_GE(fus.tryIssue(OpClass::IntMult, 1), 0);
    EXPECT_GE(fus.tryIssue(OpClass::IntMult, 2), 0)
        << "new mult each cycle despite 4-cycle latency";
}

TEST_F(FuTest, FpDivideIsUnpipelined)
{
    FuPool fus(cfg_, lat_);
    EXPECT_EQ(fus.tryIssue(OpClass::FpDiv, 1), lat_.fpDiv);
    EXPECT_EQ(fus.tryIssue(OpClass::FpDiv, 2), -1);
    EXPECT_EQ(fus.tryIssue(OpClass::FpDiv, 1 + lat_.fpDiv), lat_.fpDiv);
}

TEST_F(FuTest, MemoryPortMix)
{
    // One load/store port + one load-only port (Table 1).
    FuPool fus(cfg_, lat_);
    EXPECT_GE(fus.tryIssue(OpClass::Load, 1), 0);
    EXPECT_GE(fus.tryIssue(OpClass::Load, 1), 0);
    EXPECT_EQ(fus.tryIssue(OpClass::Load, 1), -1);
    EXPECT_GE(fus.tryIssue(OpClass::Store, 1), 0);
    EXPECT_EQ(fus.tryIssue(OpClass::Store, 1), -1);
}

TEST_F(FuTest, BranchesUseAlus)
{
    FuPool fus(cfg_, lat_);
    fus.tryIssue(OpClass::IntAlu, 5);
    fus.tryIssue(OpClass::Branch, 5);
    fus.tryIssue(OpClass::Jump, 5);
    EXPECT_EQ(fus.tryIssue(OpClass::IndirectJump, 5), -1)
        << "branches share the 3 ALUs";
}

TEST_F(FuTest, NopsNeedNoUnit)
{
    FuPool fus(cfg_, lat_);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fus.tryIssue(OpClass::Nop, 1), 0);
}

TEST_F(FuTest, LatencyQuery)
{
    FuPool fus(cfg_, lat_);
    EXPECT_EQ(fus.latency(OpClass::IntAlu), lat_.intAlu);
    EXPECT_EQ(fus.latency(OpClass::FpAdd), lat_.fpAdd);
    EXPECT_EQ(fus.latency(OpClass::FpMult), lat_.fpMult);
    EXPECT_EQ(fus.latency(OpClass::Nop), 0);
}

} // namespace
} // namespace th
