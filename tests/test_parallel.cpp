/**
 * @file
 * Tests for the parallel execution layer: thread-pool determinism,
 * the memoizing CoreResult cache, red-black SOR equivalence, and the
 * transient-sampling regression (no duplicated final sample).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/threadpool.h"
#include "sim/experiments.h"
#include "thermal/hotspot.h"

namespace th {
namespace {

TEST(ThreadPool, MapIsIndexOrdered)
{
    ThreadPool pool(4);
    const auto out = pool.parallelMap(
        1000, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> counts(257);
    pool.parallelFor(counts.size(), [&](std::size_t i) {
        counts[i].fetch_add(1);
    });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1);
    int sum = 0; // no synchronisation: must run on this thread
    pool.parallelFor(100, [&](std::size_t i) {
        sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, NestedCallsRunInline)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](std::size_t) {
        // Nested fan-out from a worker must not deadlock.
        pool.parallelFor(16, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(64,
                         [](std::size_t i) {
                             if (i == 33)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
}

TEST(ThreadPool, ParseThreadsEnvOverride)
{
    // Unset/empty means "use the default" and is not an error.
    EXPECT_EQ(ThreadPool::parseThreads(nullptr, 7), 7);
    EXPECT_EQ(ThreadPool::parseThreads("", 7), 7);

    // In-range values, including both ends of the accepted interval.
    EXPECT_EQ(ThreadPool::parseThreads("4", 7), 4);
    EXPECT_EQ(ThreadPool::parseThreads("1", 7), 1);
    EXPECT_EQ(ThreadPool::parseThreads("1024", 7), 1024);

    // Rejected values fall back (and warn, once per process).
    EXPECT_EQ(ThreadPool::parseThreads("1025", 7), 7);
    EXPECT_EQ(ThreadPool::parseThreads("0", 7), 7);
    EXPECT_EQ(ThreadPool::parseThreads("-2", 7), 7);
    EXPECT_EQ(ThreadPool::parseThreads("-3", 7), 7);
    EXPECT_EQ(ThreadPool::parseThreads("abc", 7), 7);
    EXPECT_EQ(ThreadPool::parseThreads("4x", 7), 7);
    EXPECT_EQ(ThreadPool::parseThreads("99999999999999999999", 7), 7);
}

class ParallelExperimentsTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        SimOptions opts;
        opts.instructions = 20000;
        opts.warmupInstructions = 10000;
        sys_ = new System(opts);
    }

    static void TearDownTestSuite()
    {
        delete sys_;
        sys_ = nullptr;
    }

    static System *sys_;
};

System *ParallelExperimentsTest::sys_ = nullptr;

TEST_F(ParallelExperimentsTest, Figure8MatchesSerialBitExact)
{
    const std::vector<std::string> names = {"gzip", "crafty", "swim"};
    const Fig8Data par = runFigure8(*sys_, names);

    // Hand-rolled serial sweep over the same grid: the pooled figure
    // must be bit-identical regardless of thread count.
    const auto configs = figure8Configs();
    ASSERT_EQ(par.benchmarks.size(), names.size());
    for (size_t b = 0; b < names.size(); ++b) {
        for (size_t c = 0; c < configs.size(); ++c) {
            const CoreResult r = sys_->runCore(names[b], configs[c]);
            EXPECT_EQ(par.benchmarks[b].ipc[c], r.perf.ipc())
                << names[b] << " config " << c;
            EXPECT_EQ(par.benchmarks[b].ipns[c], r.ipns())
                << names[b] << " config " << c;
        }
    }

    // And a repeat of the whole figure is bit-identical too.
    const Fig8Data again = runFigure8(*sys_, names);
    for (size_t b = 0; b < names.size(); ++b)
        for (size_t c = 0; c < configs.size(); ++c)
            EXPECT_EQ(par.benchmarks[b].ipc[c],
                      again.benchmarks[b].ipc[c]);
    EXPECT_EQ(par.speedupMeanOfMeans, again.speedupMeanOfMeans);
}

TEST_F(ParallelExperimentsTest, CoreCacheHitsAndMisses)
{
    SimOptions opts;
    opts.instructions = 20000;
    opts.warmupInstructions = 10000;
    System sys(opts);

    EXPECT_EQ(sys.coreCacheStats().hits, 0u);
    EXPECT_EQ(sys.coreCacheStats().misses, 0u);

    sys.runCore("gzip", ConfigKind::Base);
    auto s = sys.coreCacheStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 0u);

    sys.runCore("gzip", ConfigKind::Base);
    s = sys.coreCacheStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);

    // A different config is a different key...
    sys.runCore("gzip", ConfigKind::ThreeD);
    s = sys.coreCacheStats();
    EXPECT_EQ(s.misses, 2u);

    // ...and so is a tweaked explicit config (ablation variants).
    CoreConfig cfg = makeConfig(ConfigKind::ThreeD, sys.circuits());
    cfg.pamEnabled = false;
    sys.runCore("gzip", cfg);
    s = sys.coreCacheStats();
    EXPECT_EQ(s.misses, 3u);

    sys.clearCoreCache();
    EXPECT_EQ(sys.coreCacheStats().hits, 0u);
    EXPECT_EQ(sys.coreCacheStats().misses, 0u);
    sys.runCore("gzip", ConfigKind::Base);
    EXPECT_EQ(sys.coreCacheStats().misses, 1u);
}

TEST_F(ParallelExperimentsTest, FiguresShareCachedRuns)
{
    // Fig 9 and Fig 10 re-evaluate configurations Fig 8 already ran;
    // the memoizing cache must turn those into hits.
    SimOptions opts;
    opts.instructions = 20000;
    opts.warmupInstructions = 10000;
    System sys(opts);

    runFigure8(sys, {"mpeg2enc"});
    const auto after8 = sys.coreCacheStats();
    runFigure9(sys, {"mpeg2enc"});
    const auto after9 = sys.coreCacheStats();
    // Base and 3D were cached by Fig 8; calibration reuses Base too.
    EXPECT_GT(after9.hits, after8.hits);
    runFigure10(sys, {"mpeg2enc"});
    const auto after10 = sys.coreCacheStats();
    EXPECT_GT(after10.hits, after9.hits);
    // Fig 10's three configs all hit (Base/3D from Fig 8, 3D-noTH
    // from Fig 9): no new simulations at all.
    EXPECT_EQ(after10.misses, after9.misses);
}

TEST(RedBlackSor, MatchesLexicographicField)
{
    ThermalParams p;
    p.gridN = 24;
    p.maxResidualK = 1e-6; // tight so both orderings converge hard
    ThermalParams prb = p;
    prb.sorOrdering = SorOrdering::RedBlack;

    const auto stack = HotspotModel::stackedStack();
    ThermalGrid lex(p, stack, 6.0, 6.0);
    ThermalGrid rb(prb, stack, 6.0, 6.0);
    for (int d = 0; d < kNumDies; ++d) {
        lex.addPower(d, 1.0, 1.0, 3.0, 3.0, 10.0);
        rb.addPower(d, 1.0, 1.0, 3.0, 3.0, 10.0);
    }

    const ThermalField fl = lex.solve();
    const ThermalField fr = rb.solve();
    for (int l = 0; l < fl.layers(); ++l)
        for (int iy = 0; iy < p.gridN; ++iy)
            for (int ix = 0; ix < p.gridN; ++ix)
                EXPECT_NEAR(fl.at(l, ix, iy), fr.at(l, ix, iy), 1e-3)
                    << "layer " << l << " (" << ix << "," << iy << ")";
    EXPECT_NEAR(fl.peak(lex.dieLayers()), fr.peak(rb.dieLayers()),
                1e-3);
}

TEST(RedBlackSor, SolveStatsReported)
{
    ThermalParams p;
    p.gridN = 16;
    p.sorOrdering = SorOrdering::RedBlack;
    ThermalGrid grid(p, HotspotModel::planarStack(), 6.0, 6.0);
    grid.addPower(0, 0.0, 0.0, 6.0, 6.0, 30.0);
    ThermalGrid::SolveStats stats;
    grid.solve(&stats);
    EXPECT_GT(stats.iterations, 1);
    EXPECT_LT(stats.residualK, p.maxResidualK);
}

/** Solve one multigrid steady state at a given global-pool size. */
ThermalField
solveMultigridAt(int threads, ThermalGrid::SolveStats *stats = nullptr)
{
    ThreadPool::setGlobalThreads(threads);
    ThermalParams p;
    p.gridN = 48; // big enough that the solver actually fans out
    p.solver = SolverKind::Multigrid;
    ThermalGrid grid(p, HotspotModel::stackedStack(), 6.0, 6.0);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 1.0, 1.0, 3.0, 3.0, 10.0);
    grid.addPower(kNumDies - 1, 4.0, 4.0, 1.5, 1.5, 8.0);
    return grid.solve(stats);
}

TEST(Multigrid, BitIdenticalAcrossThreadCounts)
{
    // The red-black line smoother's colour sweeps are race-free and
    // every reduction is index-ordered, so a 1-thread and a 4-thread
    // solve must agree to the last bit.
    ThermalGrid::SolveStats s1, s4;
    const ThermalField f1 = solveMultigridAt(1, &s1);
    const ThermalField f4 = solveMultigridAt(4, &s4);
    ThreadPool::setGlobalThreads(ThreadPool::configuredThreads());

    EXPECT_EQ(s1.vcycles, s4.vcycles);
    ASSERT_EQ(f1.layers(), f4.layers());
    for (int l = 0; l < f1.layers(); ++l)
        for (int iy = 0; iy < f1.gridN(); ++iy)
            for (int ix = 0; ix < f1.gridN(); ++ix)
                ASSERT_EQ(f1.at(l, ix, iy), f4.at(l, ix, iy))
                    << "layer " << l << " (" << ix << "," << iy << ")";
}

TEST(Multigrid, SolveStatsReportVCycles)
{
    ThermalParams p;
    p.gridN = 16;
    p.solver = SolverKind::Multigrid;
    ThermalGrid grid(p, HotspotModel::planarStack(), 6.0, 6.0);
    grid.addPower(0, 0.0, 0.0, 6.0, 6.0, 30.0);
    ThermalGrid::SolveStats stats;
    grid.solve(&stats);
    EXPECT_GT(stats.vcycles, 0);
    EXPECT_EQ(stats.iterations, stats.vcycles);
    EXPECT_LT(stats.residualK, p.maxResidualK);
}

TEST(TransientSampling, NoDuplicateSamples)
{
    ThermalParams p;
    p.gridN = 12;
    p.maxResidualK = 1e-3;
    ThermalGrid grid(p, HotspotModel::stackedStack(), 6.0, 6.0);
    grid.addPower(0, 0.0, 0.0, 6.0, 6.0, 10.0);
    const ThermalField init(
        p.gridN, static_cast<int>(HotspotModel::stackedStack().size()),
        p.ambientK);

    // Several duration/samples shapes, including ones where the step
    // count is an exact multiple of the sampling stride.
    for (int samples : {1, 2, 3, 7, 50}) {
        const auto tr = grid.solveTransient(init, 0.004, 1e-4, samples);
        ASSERT_FALSE(tr.timeS.empty());
        EXPECT_EQ(tr.timeS.size(), tr.peakK.size());
        std::set<double> unique(tr.timeS.begin(), tr.timeS.end());
        EXPECT_EQ(unique.size(), tr.timeS.size())
            << "duplicate sample at samples=" << samples;
        for (size_t i = 1; i < tr.timeS.size(); ++i)
            EXPECT_GT(tr.timeS[i], tr.timeS[i - 1]);
    }
}

} // namespace
} // namespace th
