/**
 * @file
 * Tier-1 coverage for th_lint's schema-drift pass (DESIGN.md §14):
 *
 *  - the committed tools/th_lint/schema.lock must match fingerprints
 *    regenerated from the live sources (so an unintentional codec
 *    change fails ctest, not just the lint CI job);
 *  - a perturbation test proves the teeth: reordering two codec field
 *    writes without bumping kWireSchemaVersion produces a finding that
 *    names both the struct and the constant, while the same edit
 *    *with* a bump asks only for a lock regeneration.
 *
 * The tests drive the linter in-process through th_lint_lib rather
 * than shelling out, so failures carry the full diagnostic text.
 */

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

#ifndef TH_REPO_ROOT
#error "TH_REPO_ROOT must be defined by the build"
#endif

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::in | std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const fs::path &p, const std::string &text)
{
    fs::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::out | std::ios::trunc |
                             std::ios::binary);
    out << text;
}

/** Findings of the given check, formatted, one per line. */
std::string
findingsOf(const std::vector<th_lint::Diagnostic> &diags,
           const std::string &check)
{
    std::string out;
    for (const auto &d : diags)
        if (d.check == check)
            out += th_lint::formatDiagnostic(d) + "\n";
    return out;
}

/**
 * A scratch repo holding copies of the real SimRequest sources. Uses
 * fixture mode so the passes whose rule targets are absent from the
 * mini tree stay silent, exactly like the --self-test fixtures.
 */
class SchemaPerturbation : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root_ = fs::path(testing::TempDir()) /
                ("schema_lock_" +
                 std::to_string(::getpid()) + "_" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
        fs::remove_all(root_);
        const fs::path repo = TH_REPO_ROOT;
        writeFile(root_ / "src/io/request.h",
                  readFile(repo / "src/io/request.h"));
        writeFile(root_ / "src/io/serialize.cpp",
                  readFile(repo / "src/io/serialize.cpp"));

        opts_.root = root_.string();
        opts_.fixtureMode = true;
        std::string err;
        ASSERT_TRUE(th_lint::writeSchemaLock(opts_, err)) << err;
        // Sanity: the untouched copy is drift-free.
        ASSERT_EQ("", findingsOf(th_lint::runChecks(opts_),
                                 "schema-drift"));
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(root_, ec);
    }

    /** Swap the encode lines for req.insts / req.warmup — a wire
     *  format change that field-set coverage cannot see. */
    void reorderCodecFields()
    {
        const fs::path p = root_ / "src/io/serialize.cpp";
        std::string text = readFile(p);
        const std::string a = "    enc.u64(req.insts);\n";
        const std::string b = "    enc.u64(req.warmup);\n";
        const std::size_t pos = text.find(a + b);
        ASSERT_NE(pos, std::string::npos)
            << "encodeSimRequest no longer writes insts then warmup "
               "back-to-back; update this test's perturbation";
        text.replace(pos, a.size() + b.size(), b + a);
        writeFile(p, text);
    }

    void bumpWireSchemaVersion()
    {
        const fs::path p = root_ / "src/io/request.h";
        std::string text = readFile(p);
        const std::string pat = "kWireSchemaVersion = ";
        const std::size_t pos = text.find(pat);
        ASSERT_NE(pos, std::string::npos);
        std::size_t d = pos + pat.size();
        std::string digits;
        while (d < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[d])) != 0)
            digits += text[d++];
        ASSERT_FALSE(digits.empty());
        const int bumped = std::stoi(digits) + 1;
        text.replace(pos + pat.size(), digits.size(),
                     std::to_string(bumped));
        writeFile(p, text);
    }

    fs::path root_;
    th_lint::Options opts_;
};

} // namespace

/** The committed lock must match fingerprints regenerated from the
 *  live sources. On failure: either revert the codec change or bump
 *  the schema constant and run `th_lint --root . --write-schema-lock`. */
TEST(SchemaLock, CommittedLockMatchesLiveSources)
{
    th_lint::Options opts;
    opts.root = TH_REPO_ROOT;
    ASSERT_TRUE(fs::exists(fs::path(TH_REPO_ROOT) /
                           "tools/th_lint/schema.lock"))
        << "tools/th_lint/schema.lock is not committed";
    const auto diags = th_lint::runChecks(opts);
    EXPECT_EQ("", findingsOf(diags, "schema-drift"));
}

TEST_F(SchemaPerturbation, ReorderWithoutBumpIsAnError)
{
    reorderCodecFields();
    const auto diags = th_lint::runChecks(opts_);
    const std::string drift = findingsOf(diags, "schema-drift");
    EXPECT_NE(drift.find("SimRequest"), std::string::npos) << drift;
    EXPECT_NE(drift.find("without a bump of kWireSchemaVersion"),
              std::string::npos)
        << drift;
}

TEST_F(SchemaPerturbation, ReorderWithBumpAsksForRegeneration)
{
    reorderCodecFields();
    bumpWireSchemaVersion();
    const auto diags = th_lint::runChecks(opts_);
    const std::string drift = findingsOf(diags, "schema-drift");
    EXPECT_EQ(drift.find("without a bump"), std::string::npos) << drift;
    EXPECT_NE(drift.find("regenerate"), std::string::npos) << drift;
    // And regeneration settles it.
    std::string err;
    ASSERT_TRUE(th_lint::writeSchemaLock(opts_, err)) << err;
    EXPECT_EQ("", findingsOf(th_lint::runChecks(opts_),
                             "schema-drift"));
}
