/**
 * @file
 * Integration tests asserting tolerance bands around the paper's
 * published anchors (see paper_targets.h and EXPERIMENTS.md). These
 * run shortened simulation windows, so the bands are generous; the
 * bench binaries print the full-length numbers.
 */

#include <gtest/gtest.h>

#include "sim/experiments.h"
#include "sim/paper_targets.h"

namespace th {
namespace {

class AnchorTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        SimOptions opts;
        opts.instructions = 100000;
        opts.warmupInstructions = 60000;
        sys_ = new System(opts);
    }

    static void TearDownTestSuite()
    {
        delete sys_;
        sys_ = nullptr;
    }

    static System *sys_;
};

System *AnchorTest::sys_ = nullptr;

TEST_F(AnchorTest, FrequencyGain)
{
    // Paper: +47.9% (2.66 -> 3.93 GHz).
    EXPECT_NEAR(sys_->circuits().frequencyGain(), paper::kFreqGain,
                0.05);
}

TEST_F(AnchorTest, McfIsTheSpeedupMinimum)
{
    // Paper: min 7% (mcf), because DRAM latency does not shrink.
    const Fig8Data data = runFigure8(
        *sys_, {"mcf", "crafty", "susan", "gzip", "swim"});
    EXPECT_EQ(data.minBenchmark, "mcf");
    EXPECT_NEAR(data.minSpeedup, paper::kMinSpeedup, 0.05);
}

TEST_F(AnchorTest, CraftySpeedupNearPaper)
{
    // Paper: 65%.
    const Fig8Data data = runFigure8(*sys_, {"crafty"});
    EXPECT_NEAR(data.benchmarks[0].speedup, paper::kCraftySpeedup, 0.12);
}

TEST_F(AnchorTest, SpecFpGainsLessThanInt)
{
    // Paper: SPECfp 29.5% vs ~50% for the other groups.
    const Fig8Data data = runFigure8(
        *sys_, {"swim", "art", "equake", "gzip", "vortex", "gap"});
    double fp = 0.0, intg = 0.0;
    for (const auto &g : data.groups) {
        if (g.suite == "SPECfp2000")
            fp = g.speedup;
        if (g.suite == "SPECint2000")
            intg = g.speedup;
    }
    EXPECT_LT(fp, intg - 0.1);
    EXPECT_NEAR(fp, paper::kSpecFpSpeedup, 0.14);
}

TEST_F(AnchorTest, FastConfigLosesIpc)
{
    // Figure 8(a): higher clock alone lowers IPC (more DRAM cycles).
    const Fig8Data data = runFigure8(*sys_, {"swim", "gzip"});
    for (const auto &b : data.benchmarks) {
        EXPECT_LE(b.ipc[3], b.ipc[0] * 1.001) << b.name;
    }
}

TEST_F(AnchorTest, PipeOptsGainIpc)
{
    const Fig8Data data = runFigure8(*sys_, {"crafty", "patricia"});
    for (const auto &b : data.benchmarks)
        EXPECT_GE(b.ipc[2], b.ipc[0]) << b.name;
}

TEST_F(AnchorTest, ThermalHerdingIpcCostIsSmall)
{
    const Fig8Data data =
        runFigure8(*sys_, {"mpeg2enc", "gzip", "susan"});
    for (const auto &b : data.benchmarks) {
        EXPECT_LE(b.ipc[1], b.ipc[0] * 1.001) << b.name;
        EXPECT_GE(b.ipc[1], b.ipc[0] * 0.90) << b.name;
    }
}

TEST_F(AnchorTest, WidthPredictionAccuracyNear97)
{
    // Section 3.8: "97% of all instructions fetched have their widths
    // correctly predicted".
    const WidthStudyData data = runWidthStudy(
        *sys_, {"mpeg2enc", "gzip", "crafty", "susan", "yacr2", "swim"});
    EXPECT_GT(data.overallAccuracy, 0.95);
    for (const auto &row : data.rows)
        EXPECT_GT(row.accuracy, 0.88) << row.name;
}

TEST_F(AnchorTest, PowerBreakdownMatchesFigure9)
{
    const Fig9Data data = runFigure9(*sys_, {"susan", "yacr2"});
    // Fig 9(a): 90 W planar baseline.
    EXPECT_NEAR(data.planar.totalW, paper::kBaselinePowerW, 1.0);
    // Fig 9(b): ~72.7 W without herding.
    EXPECT_NEAR(data.noTh3d.totalW, paper::k3dNoThPowerW, 5.0);
    // Fig 9(c): ~64.3 W with Thermal Herding.
    EXPECT_NEAR(data.th3d.totalW, paper::k3dThPowerW, 5.0);
    EXPECT_LT(data.th3d.totalW, data.noTh3d.totalW);
    EXPECT_LT(data.noTh3d.totalW, data.planar.totalW);
}

TEST_F(AnchorTest, PowerSavingRangeOrdered)
{
    // Paper: 15% (yacr2) .. 30% (susan).
    const Fig9Data data = runFigure9(*sys_, {"susan", "yacr2", "gzip"});
    EXPECT_EQ(data.maxSaving.name, "susan");
    EXPECT_EQ(data.minSaving.name, "yacr2");
    EXPECT_GT(data.maxSaving.saving, 0.2);
    EXPECT_LT(data.minSaving.saving, 0.27);
}

TEST_F(AnchorTest, ThermalOrderingMatchesFigure10)
{
    const Fig10Data data =
        runFigure10(*sys_, {"mpeg2enc", "yacr2", "susan"});
    // Peak ordering: planar < 3D-TH < 3D-noTH << iso-power.
    EXPECT_GT(data.worstNoTh3d.report.peakK,
              data.worstPlanar.report.peakK + 5.0);
    EXPECT_LT(data.worstTh3d.report.peakK,
              data.worstNoTh3d.report.peakK - 2.0);
    EXPECT_GT(data.isoPower.report.peakK,
              data.worstNoTh3d.report.peakK + 10.0);
}

TEST_F(AnchorTest, PlanarPeakNear360K)
{
    const Fig10Data data = runFigure10(*sys_, {"mpeg2enc"});
    EXPECT_NEAR(data.worstPlanar.report.peakK, paper::kPeak2dK, 8.0);
}

TEST_F(AnchorTest, Yacr2HotspotIsTheDataCache)
{
    // Section 5.3: under Thermal Herding, yacr2's D-cache becomes the
    // hottest block.
    const Fig10Data data = runFigure10(*sys_, {"yacr2"});
    EXPECT_EQ(data.worstTh3d.report.hottestBlock, "DCache");
}

TEST_F(AnchorTest, HerdingReducesTheIncrease)
{
    // Paper: the 3D temperature increase shrinks from +17 K to +12 K
    // (a 29% reduction). We assert the direction and a meaningful
    // magnitude.
    const Fig10Data data =
        runFigure10(*sys_, {"mpeg2enc", "yacr2", "susan"});
    const double inc_no_th = data.worstNoTh3d.report.peakK -
        data.worstPlanar.report.peakK;
    const double inc_th = data.worstTh3d.report.peakK -
        data.worstPlanar.report.peakK;
    EXPECT_GT(inc_no_th, inc_th);
    EXPECT_GT((inc_no_th - inc_th) / inc_no_th, 0.2);
}

} // namespace
} // namespace th
