#include <gtest/gtest.h>

#include "sim/configs.h"

namespace th {
namespace {

class ConfigTest : public ::testing::Test
{
  protected:
    BlockLibrary lib_;
};

TEST_F(ConfigTest, FiveFigure8Configs)
{
    const auto cfgs = figure8Configs();
    ASSERT_EQ(cfgs.size(), 5u);
    EXPECT_EQ(cfgs.front(), ConfigKind::Base);
    EXPECT_EQ(cfgs.back(), ConfigKind::ThreeD);
}

TEST_F(ConfigTest, Names)
{
    EXPECT_STREQ(configName(ConfigKind::Base), "Base");
    EXPECT_STREQ(configName(ConfigKind::TH), "TH");
    EXPECT_STREQ(configName(ConfigKind::Pipe), "Pipe");
    EXPECT_STREQ(configName(ConfigKind::Fast), "Fast");
    EXPECT_STREQ(configName(ConfigKind::ThreeD), "3D");
    EXPECT_STREQ(configName(ConfigKind::ThreeDNoTH), "3D-noTH");
}

TEST_F(ConfigTest, BaseIsVanilla)
{
    const CoreConfig c = makeConfig(ConfigKind::Base, lib_);
    EXPECT_FALSE(c.thermalHerding);
    EXPECT_FALSE(c.pipeOpts);
    EXPECT_FALSE(c.stacked);
    EXPECT_NEAR(c.freqGhz, 2.66, 1e-9);
    EXPECT_EQ(c.bmispredMin(), 14);
    EXPECT_EQ(c.l2Cycles(), 12);
    EXPECT_EQ(c.fpLoadExtraCycles(), 1);
}

TEST_F(ConfigTest, ThIsolatesHerding)
{
    const CoreConfig c = makeConfig(ConfigKind::TH, lib_);
    EXPECT_TRUE(c.thermalHerding);
    EXPECT_FALSE(c.pipeOpts);
    EXPECT_NEAR(c.freqGhz, 2.66, 1e-9)
        << "TH keeps the baseline clock to isolate the IPC impact";
}

TEST_F(ConfigTest, PipeIsolatesPipelineOpts)
{
    const CoreConfig c = makeConfig(ConfigKind::Pipe, lib_);
    EXPECT_TRUE(c.pipeOpts);
    EXPECT_FALSE(c.thermalHerding);
    EXPECT_EQ(c.bmispredMin(), 12);
    EXPECT_EQ(c.l2Cycles(), 10);
    EXPECT_EQ(c.fpLoadExtraCycles(), 0);
}

TEST_F(ConfigTest, FastOnlyRaisesClock)
{
    const CoreConfig c = makeConfig(ConfigKind::Fast, lib_);
    EXPECT_FALSE(c.thermalHerding);
    EXPECT_FALSE(c.pipeOpts);
    EXPECT_NEAR(c.freqGhz, lib_.frequency3dGhz(), 1e-9);
}

TEST_F(ConfigTest, ThreeDCombinesEverything)
{
    const CoreConfig c = makeConfig(ConfigKind::ThreeD, lib_);
    EXPECT_TRUE(c.thermalHerding);
    EXPECT_TRUE(c.pipeOpts);
    EXPECT_TRUE(c.stacked);
    EXPECT_NEAR(c.freqGhz, lib_.frequency3dGhz(), 1e-9);
}

TEST_F(ConfigTest, ThreeDNoThDisablesHerdingOnly)
{
    const CoreConfig c = makeConfig(ConfigKind::ThreeDNoTH, lib_);
    EXPECT_FALSE(c.thermalHerding);
    EXPECT_TRUE(c.pipeOpts);
    EXPECT_TRUE(c.stacked);
}

TEST_F(ConfigTest, MemoryLatencyInCyclesGrowsWithClock)
{
    const CoreConfig base = makeConfig(ConfigKind::Base, lib_);
    const CoreConfig fast = makeConfig(ConfigKind::Fast, lib_);
    EXPECT_GT(fast.memLatencyCycles(), base.memLatencyCycles());
}

} // namespace
} // namespace th
