#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/configs.h"

namespace th {
namespace {

class ConfigTest : public ::testing::Test
{
  protected:
    BlockLibrary lib_;
};

TEST_F(ConfigTest, FiveFigure8Configs)
{
    const auto cfgs = figure8Configs();
    ASSERT_EQ(cfgs.size(), 5u);
    EXPECT_EQ(cfgs.front(), ConfigKind::Base);
    EXPECT_EQ(cfgs.back(), ConfigKind::ThreeD);
}

TEST_F(ConfigTest, Names)
{
    EXPECT_STREQ(configName(ConfigKind::Base), "Base");
    EXPECT_STREQ(configName(ConfigKind::TH), "TH");
    EXPECT_STREQ(configName(ConfigKind::Pipe), "Pipe");
    EXPECT_STREQ(configName(ConfigKind::Fast), "Fast");
    EXPECT_STREQ(configName(ConfigKind::ThreeD), "3D");
    EXPECT_STREQ(configName(ConfigKind::ThreeDNoTH), "3D-noTH");
}

TEST_F(ConfigTest, BaseIsVanilla)
{
    const CoreConfig c = makeConfig(ConfigKind::Base, lib_);
    EXPECT_FALSE(c.thermalHerding);
    EXPECT_FALSE(c.pipeOpts);
    EXPECT_FALSE(c.stacked);
    EXPECT_NEAR(c.freqGhz, 2.66, 1e-9);
    EXPECT_EQ(c.bmispredMin(), 14);
    EXPECT_EQ(c.l2Cycles(), 12);
    EXPECT_EQ(c.fpLoadExtraCycles(), 1);
}

TEST_F(ConfigTest, ThIsolatesHerding)
{
    const CoreConfig c = makeConfig(ConfigKind::TH, lib_);
    EXPECT_TRUE(c.thermalHerding);
    EXPECT_FALSE(c.pipeOpts);
    EXPECT_NEAR(c.freqGhz, 2.66, 1e-9)
        << "TH keeps the baseline clock to isolate the IPC impact";
}

TEST_F(ConfigTest, PipeIsolatesPipelineOpts)
{
    const CoreConfig c = makeConfig(ConfigKind::Pipe, lib_);
    EXPECT_TRUE(c.pipeOpts);
    EXPECT_FALSE(c.thermalHerding);
    EXPECT_EQ(c.bmispredMin(), 12);
    EXPECT_EQ(c.l2Cycles(), 10);
    EXPECT_EQ(c.fpLoadExtraCycles(), 0);
}

TEST_F(ConfigTest, FastOnlyRaisesClock)
{
    const CoreConfig c = makeConfig(ConfigKind::Fast, lib_);
    EXPECT_FALSE(c.thermalHerding);
    EXPECT_FALSE(c.pipeOpts);
    EXPECT_NEAR(c.freqGhz, lib_.frequency3dGhz(), 1e-9);
}

TEST_F(ConfigTest, ThreeDCombinesEverything)
{
    const CoreConfig c = makeConfig(ConfigKind::ThreeD, lib_);
    EXPECT_TRUE(c.thermalHerding);
    EXPECT_TRUE(c.pipeOpts);
    EXPECT_TRUE(c.stacked);
    EXPECT_NEAR(c.freqGhz, lib_.frequency3dGhz(), 1e-9);
}

TEST_F(ConfigTest, ThreeDNoThDisablesHerdingOnly)
{
    const CoreConfig c = makeConfig(ConfigKind::ThreeDNoTH, lib_);
    EXPECT_FALSE(c.thermalHerding);
    EXPECT_TRUE(c.pipeOpts);
    EXPECT_TRUE(c.stacked);
}

TEST_F(ConfigTest, MemoryLatencyInCyclesGrowsWithClock)
{
    const CoreConfig base = makeConfig(ConfigKind::Base, lib_);
    const CoreConfig fast = makeConfig(ConfigKind::Fast, lib_);
    EXPECT_GT(fast.memLatencyCycles(), base.memLatencyCycles());
}

// Golden configHash values for every preset. These hashes key the
// persistent artifact store (store/artifact_store.h), so they must not
// silently change meaning between builds: a change here invalidates or
// — worse — misinterprets every on-disk CoreResult. If a hash change
// is INTENTIONAL (new CoreConfig field folded into configHash, changed
// default), update this table AND bump kStoreSchemaVersion in
// store/artifact_store.h so stale artifacts are rejected rather than
// misread.
TEST_F(ConfigTest, GoldenConfigHashes)
{
    const struct
    {
        ConfigKind kind;
        std::uint64_t hash;
    } golden[] = {
        {ConfigKind::Base,       0x452cd60ddfb4205dULL},
        {ConfigKind::TH,         0x6517a30db77549dcULL},
        {ConfigKind::Pipe,       0x1099ffc40823dfbcULL},
        {ConfigKind::Fast,       0x4b28d4e4856ae390ULL},
        {ConfigKind::ThreeD,     0x1f51a48071a92031ULL},
        {ConfigKind::ThreeDNoTH, 0x57153848c16b7d70ULL},
    };
    for (const auto &g : golden) {
        EXPECT_EQ(configHash(makeConfig(g.kind, lib_)), g.hash)
            << "configHash(" << configName(g.kind) << ") drifted — "
            << "on-disk store keys changed meaning. If intentional, "
            << "update the golden table and bump kStoreSchemaVersion.";
    }
}

TEST_F(ConfigTest, ConfigHashDistinguishesPresets)
{
    const auto kinds = {ConfigKind::Base,   ConfigKind::TH,
                        ConfigKind::Pipe,   ConfigKind::Fast,
                        ConfigKind::ThreeD, ConfigKind::ThreeDNoTH};
    std::vector<std::uint64_t> hashes;
    for (ConfigKind k : kinds)
        hashes.push_back(configHash(makeConfig(k, lib_)));
    std::sort(hashes.begin(), hashes.end());
    EXPECT_EQ(std::unique(hashes.begin(), hashes.end()), hashes.end())
        << "two presets share a cache key";
}

} // namespace
} // namespace th
