/**
 * @file
 * Interval fast-path tests: model fitting invariants, IMDL store
 * round-trips, replay determinism across worker-thread counts, the
 * exact sweep path's byte-identity with the legacy DTM entry point,
 * and regression pins on the fast-vs-exact error bounds.
 *
 * Windows are kept tiny (hundreds of thousands of cycles) so the whole
 * file stays inside tier-1 budgets; the full-scale accuracy numbers
 * live in EXPERIMENTS.md and the interval-smoke CI job.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "common/threadpool.h"
#include "io/serialize.h"
#include "sim/configs.h"
#include "sim/experiments.h"
#include "sim/system.h"

namespace th {
namespace {

namespace fs = std::filesystem;

class IntervalTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        SimOptions opts;
        opts.instructions = 20000;
        opts.warmupInstructions = 5000;
        ::unsetenv("TH_STORE_DIR");
        sys_ = new System(opts);
    }

    static void TearDownTestSuite()
    {
        delete sys_;
        sys_ = nullptr;
    }

    /** Small windows; fitCycles covers tinyDtm()'s run with slack. */
    static IntervalOptions tinyInterval()
    {
        IntervalOptions io;
        io.fitIntervalCycles = 5000;
        io.fitCycles = 200000;
        io.warmupInstructions = 5000;
        return io;
    }

    static DtmOptions tinyDtm()
    {
        DtmOptions o;
        o.intervalCycles = 20000;
        o.maxIntervals = 6;
        o.warmupInstructions = 5000;
        o.gridN = 8;
        return o;
    }

    static System *sys_;
};

System *IntervalTest::sys_ = nullptr;

TEST_F(IntervalTest, FitProducesConsistentModel)
{
    const IntervalModel m = sys_->runIntervalFit(
        "mpeg2enc", ConfigKind::ThreeDNoTH, tinyInterval());

    EXPECT_EQ(m.benchmark, "mpeg2enc");
    EXPECT_GT(m.totalCycles, 0u);
    EXPECT_GT(m.totalInstructions, 0u);
    ASSERT_FALSE(m.phases.empty());
    ASSERT_FALSE(m.ticks.empty());

    // The tick texture partitions the fitted run exactly.
    std::uint64_t tick_cycles = 0;
    std::uint64_t tick_insts = 0;
    for (const IntervalTick &t : m.ticks) {
        ASSERT_LT(t.phase, m.phases.size());
        tick_cycles += t.cycles;
        tick_insts += t.insts;
    }
    EXPECT_EQ(tick_cycles, m.totalCycles);
    EXPECT_EQ(tick_insts, m.totalInstructions);

    // So do the phases.
    std::uint64_t phase_cycles = 0;
    std::uint64_t phase_insts = 0;
    for (const IntervalPhase &p : m.phases) {
        phase_cycles += p.cycles;
        phase_insts += p.stats.perf.committedInsts.value();
    }
    EXPECT_EQ(phase_cycles, m.totalCycles);
    EXPECT_EQ(phase_insts, m.totalInstructions);

    // Calibrated throttle response: the workload table covers the
    // three ladder cadences in ascending duty order, scales in (0, 1].
    ASSERT_EQ(m.throttle.size(), 3u);
    double prev_duty = 0.0;
    for (const IntervalThrottlePoint &p : m.throttle) {
        EXPECT_GT(p.duty, prev_duty);
        EXPECT_LT(p.duty, 1.0);
        EXPECT_GT(p.ipcScale, 0.0);
        EXPECT_LE(p.ipcScale, 1.0);
        prev_duty = p.duty;
    }
}

TEST_F(IntervalTest, SerializedModelRoundTripsExactly)
{
    const IntervalModel m = sys_->runIntervalFit(
        "mpeg2enc", ConfigKind::ThreeDNoTH, tinyInterval());

    const std::vector<std::uint8_t> bytes = serializeIntervalModel(m);
    Decoder dec(bytes);
    IntervalModel back;
    ASSERT_TRUE(decodeIntervalModel(dec, back));
    EXPECT_EQ(serializeIntervalModel(back), bytes);
    EXPECT_EQ(back.phases.size(), m.phases.size());
    EXPECT_EQ(back.ticks.size(), m.ticks.size());
}

TEST_F(IntervalTest, ModelRoundTripsThroughStore)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) /
        ("thimdl-" + std::to_string(::testing::UnitTest::GetInstance()
                                        ->random_seed()));
    fs::create_directories(dir);

    SimOptions opts;
    opts.instructions = 20000;
    opts.warmupInstructions = 5000;
    opts.storeDir = dir.string();

    std::vector<std::uint8_t> cold_bytes;
    {
        System cold(opts);
        const IntervalModel m = cold.runIntervalFit(
            "mpeg2enc", ConfigKind::ThreeDNoTH, tinyInterval());
        cold_bytes = serializeIntervalModel(m);
        EXPECT_GE(cold.storeStats().stores, 1u);
    }
    {
        System warm(opts);
        const IntervalModel m = warm.runIntervalFit(
            "mpeg2enc", ConfigKind::ThreeDNoTH, tinyInterval());
        EXPECT_GE(warm.storeStats().hits, 1u);
        EXPECT_EQ(warm.coreCacheStats().misses, 0u)
            << "a warm fit must not re-run the cycle core";
        EXPECT_EQ(serializeIntervalModel(m), cold_bytes);
    }

    std::error_code ec;
    fs::remove_all(dir, ec);
}

TEST_F(IntervalTest, ReplayIsBitIdenticalAcrossThreadCounts)
{
    DtmOptions o = tinyDtm();
    o.policy = DtmPolicyKind::FetchThrottle;
    o.triggers.triggerK = 356.0;

    ThreadPool::setGlobalThreads(1);
    const DtmReport one = sys_->runIntervalDtm(
        "mpeg2enc", ConfigKind::ThreeDNoTH, o, tinyInterval());
    ThreadPool::setGlobalThreads(4);
    const DtmReport four = sys_->runIntervalDtm(
        "mpeg2enc", ConfigKind::ThreeDNoTH, o, tinyInterval());
    ThreadPool::setGlobalThreads(ThreadPool::configuredThreads());

    EXPECT_EQ(serializeDtmReport(one), serializeDtmReport(four));
}

TEST_F(IntervalTest, ExactSweepMatchesLegacyDtmByteForByte)
{
    FamilySweepOptions fo;
    fo.fast = false;
    fo.dtm = tinyDtm();
    fo.triggerLoK = 358.0;
    fo.triggerHiK = 364.0;
    fo.triggerSteps = 2;
    fo.policies = {DtmPolicyKind::ClockGate,
                   DtmPolicyKind::FetchThrottle};

    const FamilySweepData data =
        runFamilySweep(*sys_, "mpeg2enc", fo);
    ASSERT_EQ(data.points.size(), 4u);
    EXPECT_FALSE(data.fast);
    EXPECT_EQ(data.anchors, 0);

    for (const FamilySweepPoint &pt : data.points) {
        DtmOptions d = fo.dtm;
        d.policy = pt.policy;
        d.triggers.triggerK = pt.triggerK;
        const DtmReport legacy =
            sys_->runDtm("mpeg2enc", fo.config, d);
        EXPECT_EQ(serializeDtmReport(pt.report),
                  serializeDtmReport(legacy));
        EXPECT_FALSE(pt.anchor);
    }
}

TEST_F(IntervalTest, FastSweepErrorBoundsStayPinned)
{
    FamilySweepOptions fo;
    fo.fast = true;
    fo.dtm = tinyDtm();
    fo.interval = tinyInterval();
    fo.triggerLoK = 358.0;
    fo.triggerHiK = 364.0;
    fo.triggerSteps = 3;
    fo.anchorStride = 1; // Every point gets an exact anchor.
    fo.policies = {DtmPolicyKind::ClockGate,
                   DtmPolicyKind::FetchThrottle};

    const FamilySweepData data =
        runFamilySweep(*sys_, "mpeg2enc", fo);
    EXPECT_TRUE(data.fast);
    EXPECT_EQ(data.anchors, 6);

    // Regression pins, not aspirations: measured on these tiny
    // windows the errors sit well below the ISSUE's full-scale
    // acceptance bounds (ipc 2%, peak 1 K, duty 2 pp); a model or
    // replay regression shows up here long before the CI smoke job.
    EXPECT_LE(data.maxIpcErr, 0.02);
    EXPECT_LE(data.maxPeakErrK, 1.0);
    EXPECT_LE(data.maxDutyErrPp, 2.0);
}

TEST_F(IntervalTest, FastStudySetsErrorFields)
{
    DtmOptions o = tinyDtm();
    o.policy = DtmPolicyKind::FetchThrottle;
    const DtmStudyData data =
        runDtmStudyFast(*sys_, "mpeg2enc", o, tinyInterval());

    EXPECT_TRUE(data.fast);
    EXPECT_EQ(data.anchors, 1);
    ASSERT_EQ(data.cases.size(), 3u);
    EXPECT_LE(data.maxIpcErr, 0.05);
    EXPECT_LE(data.maxPeakErrK, 1.0);
}

TEST_F(IntervalTest, ModelKeyCoversEveryFittingKnob)
{
    BlockLibrary lib;
    const CoreConfig cfg = makeConfig(ConfigKind::ThreeDNoTH, lib);
    const IntervalOptions base;
    const std::uint64_t k0 = intervalModelKey(cfg, base);

    IntervalOptions o = base;
    o.fitIntervalCycles += 1;
    EXPECT_NE(intervalModelKey(cfg, o), k0);
    o = base;
    o.fitCycles += 1;
    EXPECT_NE(intervalModelKey(cfg, o), k0);
    o = base;
    o.phaseIpcTolerance += 0.001;
    EXPECT_NE(intervalModelKey(cfg, o), k0);
    o = base;
    o.warmupInstructions += 1;
    EXPECT_NE(intervalModelKey(cfg, o), k0);
    o = base;
    o.throttleFitCycles += 1;
    EXPECT_NE(intervalModelKey(cfg, o), k0);
}

TEST_F(IntervalTest, FamilyHashIgnoresOnlyRetargetedAxes)
{
    BlockLibrary lib;
    const CoreConfig base = makeConfig(ConfigKind::ThreeDNoTH, lib);
    const std::uint64_t h0 = intervalFamilyHash(base);

    // Replay retargets frequency, stacking, and pipeline widths: those
    // axes must share one family (one fit serves the whole sweep).
    CoreConfig c = base;
    c.freqGhz *= 1.25;
    c.stacked = !c.stacked;
    c.fetchWidth += 1;
    c.issueWidth += 1;
    c.commitWidth += 1;
    c.decodeWidth += 1;
    EXPECT_EQ(intervalFamilyHash(c), h0);

    // Anything else changes the family (and forces a refit).
    c = base;
    c.robSize += 8;
    EXPECT_NE(intervalFamilyHash(c), h0);
    c = base;
    c.memLatencyNs *= 2.0;
    EXPECT_NE(intervalFamilyHash(c), h0);
}

} // namespace
} // namespace th
