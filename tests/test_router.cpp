/**
 * Cluster-mode loopback tests: real SimServer backends plus a real
 * RouterServer front-end, all in-process on ephemeral ports. Covers
 * the cluster acceptance contract — routed responses are byte-
 * identical to direct local runs, identical requests from many clients
 * coalesce onto one shard's single flight (cluster-wide dedup), a dead
 * shard is a structured Unavailable reply with reconnect backoff
 * (never a hang), and the router aggregates every shard's metrics.
 *
 * routeOf() makes the placement tests deterministic: the test asks the
 * ring where a request will land instead of guessing.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "sim/report.h"
#include "trace/suites.h"

namespace th {
namespace {

/** Backend options sized for test speed (see test_net.cpp). */
ServerOptions
backendOptions()
{
    ::unsetenv("TH_STORE_DIR");
    ServerOptions opts;
    opts.host = "127.0.0.1";
    opts.port = 0;
    opts.sim.instructions = 20000;
    opts.sim.warmupInstructions = 5000;
    return opts;
}

/** A Core request for @p benchmark on @p config. */
SimRequest
coreRequest(const std::string &benchmark, const std::string &config)
{
    SimRequest req;
    req.kind = SimRequestKind::Core;
    req.benchmarks = {benchmark};
    req.config = config;
    return req;
}

/** Spin until @p cond or @p ms elapse; true when the condition held. */
template <typename Cond>
bool
waitFor(Cond cond, int ms = 5000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    while (!cond()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

/** Two started backends plus a started router in front of them. */
struct Cluster
{
    std::unique_ptr<SimServer> backends[2];
    std::unique_ptr<RouterServer> router;

    bool start(ServerOptions backend_opts, RouterOptions router_opts,
               std::string &err)
    {
        for (auto &b : backends) {
            b = std::make_unique<SimServer>(backend_opts);
            if (!b->start(err))
                return false;
            router_opts.backends.push_back(
                "127.0.0.1:" + std::to_string(b->port()));
        }
        router_opts.host = "127.0.0.1";
        router_opts.port = 0;
        router = std::make_unique<RouterServer>(router_opts);
        return router->start(err);
    }
};

/**
 * A registered benchmark whose Core/@p config request the router
 * places on shard @p want. The ring hashes the backends' ephemeral
 * ports, so placement varies per run — scanning the full registry
 * (~100 profiles) makes a miss practically impossible.
 */
std::string
benchmarkOnShard(const RouterServer &router, std::size_t want,
                 const std::string &config)
{
    for (const BenchmarkProfile &p : allBenchmarks())
        if (router.routeOf(coreRequest(p.name, config)) == want)
            return p.name;
    return "";
}

TEST(RouterTest, RoutedRunIsByteIdenticalToDirectRun)
{
    const ServerOptions opts = backendOptions();
    Cluster cluster;
    std::string err;
    ASSERT_TRUE(cluster.start(opts, RouterOptions{}, err)) << err;

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", cluster.router->port(), err))
        << err;

    // One benchmark per shard, so the test exercises both routes.
    for (std::size_t shard : {std::size_t{0}, std::size_t{1}}) {
        const std::string bench =
            benchmarkOnShard(*cluster.router, shard, "TH");
        ASSERT_FALSE(bench.empty()) << "no candidate routed to " << shard;
        SimResponse rsp;
        ASSERT_TRUE(client.call(coreRequest(bench, "TH"), rsp, err)) << err;
        ASSERT_EQ(rsp.status, SimStatus::Ok) << rsp.error;

        System direct(opts.sim);
        const CoreResult r = direct.runCore(bench, ConfigKind::TH);
        EXPECT_EQ(rsp.text, renderCoreRun(bench, "TH", r))
            << "routed bytes diverge for " << bench;
        EXPECT_EQ(cluster.backends[shard]->metrics().simulationsRun(), 1u)
            << bench << " did not land on the predicted shard";
    }

    // A structured backend error also passes through byte-exactly.
    SimResponse rsp;
    ASSERT_TRUE(client.call(coreRequest("no-such-app", "Base"), rsp, err));
    EXPECT_EQ(rsp.status, SimStatus::BadRequest);
    EXPECT_NE(rsp.error.find("unknown benchmark"), std::string::npos);
}

TEST(RouterTest, IdenticalRequestsFromManyClientsCoalesceOnOneShard)
{
    ServerOptions opts = backendOptions();
    opts.startWorkersPaused = true; // park both shards' pools
    Cluster cluster;
    std::string err;
    ASSERT_TRUE(cluster.start(opts, RouterOptions{}, err)) << err;

    const SimRequest req = coreRequest("gcc", "Base");
    const std::size_t shard = cluster.router->routeOf(req);

    constexpr int kClients = 4;
    std::vector<std::thread> threads;
    std::vector<SimResponse> responses(kClients);
    std::vector<std::string> errors(kClients);
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            SimClient client;
            std::string cerr;
            if (!client.connect("127.0.0.1", cluster.router->port(),
                                cerr)) {
                errors[i] = cerr;
                return;
            }
            SimResponse rsp;
            if (!client.call(req, rsp, cerr))
                errors[i] = cerr;
            else
                responses[i] = rsp;
        });
    }

    // Every client hashed to the same shard, whose single-flight layer
    // stacked them onto one parked flight — dedup is cluster-wide.
    ASSERT_TRUE(waitFor([&] {
        return cluster.backends[shard]->metrics().dedupHits() ==
               kClients - 1;
    })) << "dedupHits=" << cluster.backends[shard]->metrics().dedupHits();
    EXPECT_EQ(cluster.backends[0]->metrics().simulationsRun(), 0u);
    EXPECT_EQ(cluster.backends[1]->metrics().simulationsRun(), 0u);

    for (auto &b : cluster.backends)
        b->resumeWorkers();
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(cluster.backends[shard]->metrics().simulationsRun(), 1u);
    EXPECT_EQ(cluster.backends[1 - shard]->metrics().simulationsRun(), 0u);
    for (int i = 0; i < kClients; ++i) {
        ASSERT_TRUE(errors[i].empty()) << errors[i];
        EXPECT_EQ(responses[i].status, SimStatus::Ok) << responses[i].error;
        EXPECT_EQ(responses[i].text, responses[0].text);
    }
}

TEST(RouterTest, DeadShardIsStructuredUnavailableNotAHang)
{
    RouterOptions ropts;
    ropts.backoffInitialMs = 60000; // the shard must stay benched
    Cluster cluster;
    std::string err;
    ASSERT_TRUE(cluster.start(backendOptions(), ropts, err)) << err;

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", cluster.router->port(), err))
        << err;

    // Kill one shard, then aim a request straight at the corpse.
    const std::string dead_bench =
        benchmarkOnShard(*cluster.router, 0, "Base");
    const std::string live_bench =
        benchmarkOnShard(*cluster.router, 1, "Base");
    ASSERT_FALSE(dead_bench.empty());
    ASSERT_FALSE(live_bench.empty());
    cluster.backends[0]->shutdown();

    SimResponse rsp;
    ASSERT_TRUE(client.call(coreRequest(dead_bench, "Base"), rsp, err))
        << err;
    EXPECT_EQ(rsp.status, SimStatus::Unavailable) << rsp.error;
    EXPECT_NE(rsp.error.find("unavailable"), std::string::npos)
        << rsp.error;

    // Within the backoff window the shard is not even dialled: the
    // reject is immediate and says the shard is benched.
    ASSERT_TRUE(client.call(coreRequest(dead_bench, "Base"), rsp, err))
        << err;
    EXPECT_EQ(rsp.status, SimStatus::Unavailable);
    EXPECT_NE(rsp.error.find("down"), std::string::npos) << rsp.error;

    // The healthy shard keeps serving around the outage.
    ASSERT_TRUE(client.call(coreRequest(live_bench, "Base"), rsp, err))
        << err;
    EXPECT_EQ(rsp.status, SimStatus::Ok) << rsp.error;
}

TEST(RouterTest, BackoffExpiryRedialsTheShard)
{
    RouterOptions ropts;
    ropts.backoffInitialMs = 30;
    Cluster cluster;
    std::string err;
    ASSERT_TRUE(cluster.start(backendOptions(), ropts, err)) << err;

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", cluster.router->port(), err))
        << err;

    const std::string bench = benchmarkOnShard(*cluster.router, 0, "Base");
    ASSERT_FALSE(bench.empty());
    cluster.backends[0]->shutdown();

    SimResponse rsp;
    ASSERT_TRUE(client.call(coreRequest(bench, "Base"), rsp, err)) << err;
    EXPECT_EQ(rsp.status, SimStatus::Unavailable);

    // After the backoff elapses the router dials again (and fails
    // again — the shard is still dead — but the error proves a fresh
    // connect was attempted rather than the benched fast-reject).
    ASSERT_TRUE(waitFor([&] {
        SimResponse probe;
        std::string perr;
        if (!client.call(coreRequest(bench, "Base"), probe, perr))
            return false;
        return probe.status == SimStatus::Unavailable &&
               probe.error.find("unavailable:") != std::string::npos;
    })) << "backoff never expired into a redial";
}

TEST(RouterTest, MetricsAggregateEveryShard)
{
    Cluster cluster;
    std::string err;
    ASSERT_TRUE(cluster.start(backendOptions(), RouterOptions{}, err))
        << err;

    SimClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", cluster.router->port(), err))
        << err;
    SimResponse rsp;
    ASSERT_TRUE(client.call(coreRequest("gcc", "Base"), rsp, err)) << err;
    ASSERT_EQ(rsp.status, SimStatus::Ok) << rsp.error;

    SimRequest m;
    m.kind = SimRequestKind::Metrics;
    ASSERT_TRUE(client.call(m, rsp, err)) << err;
    ASSERT_EQ(rsp.status, SimStatus::Ok);
    for (const char *key :
         {"requests_served ", "queue_depth ", "backends 2",
          "backend_0_up 1", "backend_0_requests_served ",
          "backend_0_simulations_run ", "backend_0_core_cache_hits ",
          "backend_1_up 1", "backend_1_simulations_run "})
        EXPECT_NE(rsp.text.find(key), std::string::npos)
            << "aggregated metrics lack '" << key << "':\n" << rsp.text;
}

} // namespace
} // namespace th
