/**
 * @file
 * Perturbation tests of the artifact-store cache keys: every CoreConfig
 * and DtmOptions field must actually move configHash / dtmConfigHash
 * when it changes. tools/th_lint statically proves each field is
 * *referenced* by the hash function; these tests prove the reference is
 * *effective* (folded into the digest, not e.g. dead code) — together
 * they close the stale-cache-artifact hole from both sides.
 */

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dtm/engine.h"
#include "sim/configs.h"

namespace th {
namespace {

struct CfgMutator
{
    const char *field;
    std::function<void(CoreConfig &)> apply;
};

std::vector<CfgMutator>
coreConfigMutators()
{
    // One entry per CoreConfig simulation-input field, in declaration
    // order (params.h). `name` is deliberately absent: it is a display
    // label and must NOT perturb the hash (asserted separately below).
    return {
        {"fetchWidth", [](CoreConfig &c) { c.fetchWidth += 1; }},
        {"decodeWidth", [](CoreConfig &c) { c.decodeWidth += 1; }},
        {"commitWidth", [](CoreConfig &c) { c.commitWidth += 1; }},
        {"issueWidth", [](CoreConfig &c) { c.issueWidth += 1; }},
        {"ifqSize", [](CoreConfig &c) { c.ifqSize += 1; }},
        {"robSize", [](CoreConfig &c) { c.robSize += 1; }},
        {"rsSize", [](CoreConfig &c) { c.rsSize += 1; }},
        {"lqSize", [](CoreConfig &c) { c.lqSize += 1; }},
        {"sqSize", [](CoreConfig &c) { c.sqSize += 1; }},
        {"numIntAlu", [](CoreConfig &c) { c.numIntAlu += 1; }},
        {"numIntShift", [](CoreConfig &c) { c.numIntShift += 1; }},
        {"numIntMult", [](CoreConfig &c) { c.numIntMult += 1; }},
        {"numFpAdd", [](CoreConfig &c) { c.numFpAdd += 1; }},
        {"numFpMult", [](CoreConfig &c) { c.numFpMult += 1; }},
        {"numFpDiv", [](CoreConfig &c) { c.numFpDiv += 1; }},
        {"numLoadPorts", [](CoreConfig &c) { c.numLoadPorts += 1; }},
        {"numStorePorts", [](CoreConfig &c) { c.numStorePorts += 1; }},
        {"il1Bytes", [](CoreConfig &c) { c.il1Bytes *= 2; }},
        {"il1Assoc", [](CoreConfig &c) { c.il1Assoc *= 2; }},
        {"il1LineBytes", [](CoreConfig &c) { c.il1LineBytes *= 2; }},
        {"dl1Bytes", [](CoreConfig &c) { c.dl1Bytes *= 2; }},
        {"dl1Assoc", [](CoreConfig &c) { c.dl1Assoc *= 2; }},
        {"dl1LineBytes", [](CoreConfig &c) { c.dl1LineBytes *= 2; }},
        {"l2Bytes", [](CoreConfig &c) { c.l2Bytes *= 2; }},
        {"l2Assoc", [](CoreConfig &c) { c.l2Assoc *= 2; }},
        {"l2LineBytes", [](CoreConfig &c) { c.l2LineBytes *= 2; }},
        {"il1Cycles", [](CoreConfig &c) { c.il1Cycles += 1; }},
        {"dl1Cycles", [](CoreConfig &c) { c.dl1Cycles += 1; }},
        {"itlbEntries", [](CoreConfig &c) { c.itlbEntries *= 2; }},
        {"itlbAssoc", [](CoreConfig &c) { c.itlbAssoc *= 2; }},
        {"dtlbEntries", [](CoreConfig &c) { c.dtlbEntries *= 2; }},
        {"dtlbAssoc", [](CoreConfig &c) { c.dtlbAssoc *= 2; }},
        {"tlbMissCycles", [](CoreConfig &c) { c.tlbMissCycles += 1; }},
        {"bimodalEntries",
         [](CoreConfig &c) { c.bimodalEntries *= 2; }},
        {"localHistEntries",
         [](CoreConfig &c) { c.localHistEntries *= 2; }},
        {"localHistBits", [](CoreConfig &c) { c.localHistBits += 1; }},
        {"localCounterEntries",
         [](CoreConfig &c) { c.localCounterEntries *= 2; }},
        {"globalHistBits",
         [](CoreConfig &c) { c.globalHistBits += 1; }},
        {"chooserEntries",
         [](CoreConfig &c) { c.chooserEntries *= 2; }},
        {"btbEntries", [](CoreConfig &c) { c.btbEntries *= 2; }},
        {"btbAssoc", [](CoreConfig &c) { c.btbAssoc *= 2; }},
        {"ibtbEntries", [](CoreConfig &c) { c.ibtbEntries *= 2; }},
        {"ibtbAssoc", [](CoreConfig &c) { c.ibtbAssoc *= 2; }},
        {"freqGhz", [](CoreConfig &c) { c.freqGhz *= 1.25; }},
        {"memLatencyNs", [](CoreConfig &c) { c.memLatencyNs *= 1.5; }},
        {"maxOutstandingMisses",
         [](CoreConfig &c) { c.maxOutstandingMisses += 1; }},
        {"frontendDepth", [](CoreConfig &c) { c.frontendDepth += 1; }},
        {"thermalHerding",
         [](CoreConfig &c) { c.thermalHerding = !c.thermalHerding; }},
        {"pipeOpts", [](CoreConfig &c) { c.pipeOpts = !c.pipeOpts; }},
        {"stacked", [](CoreConfig &c) { c.stacked = !c.stacked; }},
        {"schedAlloc",
         [](CoreConfig &c) {
             c.schedAlloc = c.schedAlloc == SchedAllocPolicy::TopDieFirst
                                ? SchedAllocPolicy::RoundRobin
                                : SchedAllocPolicy::TopDieFirst;
         }},
        {"pamEnabled",
         [](CoreConfig &c) { c.pamEnabled = !c.pamEnabled; }},
        {"pveEnabled",
         [](CoreConfig &c) { c.pveEnabled = !c.pveEnabled; }},
        {"btbMemoEnabled",
         [](CoreConfig &c) { c.btbMemoEnabled = !c.btbMemoEnabled; }},
        {"widthPredEntries",
         [](CoreConfig &c) { c.widthPredEntries *= 2; }},
        {"widthPredKind",
         [](CoreConfig &c) { c.widthPredKind = WidthPredKind::Oracle; }},
    };
}

struct DtmMutator
{
    const char *field;
    std::function<void(DtmOptions &)> apply;
};

std::vector<DtmMutator>
dtmOptionsMutators()
{
    return {
        {"intervalCycles",
         [](DtmOptions &o) { o.intervalCycles += 1000; }},
        {"maxIntervals", [](DtmOptions &o) { o.maxIntervals += 1; }},
        {"warmupInstructions",
         [](DtmOptions &o) { o.warmupInstructions += 1000; }},
        {"policy",
         [](DtmOptions &o) { o.policy = DtmPolicyKind::FetchThrottle; }},
        {"triggers.triggerK",
         [](DtmOptions &o) { o.triggers.triggerK += 1.0; }},
        {"triggers.hysteresisK",
         [](DtmOptions &o) { o.triggers.hysteresisK += 0.5; }},
        {"timeDilation", [](DtmOptions &o) { o.timeDilation *= 2.0; }},
        {"gridN", [](DtmOptions &o) { o.gridN += 8; }},
        {"maxDtS", [](DtmOptions &o) { o.maxDtS *= 0.5; }},
        {"solver",
         [](DtmOptions &o) { o.solver = SolverKind::Multigrid; }},
    };
}

TEST(HashCoverage, EveryCoreConfigFieldPerturbsConfigHash)
{
    const CoreConfig base;
    const std::uint64_t base_hash = configHash(base);
    std::set<std::uint64_t> seen{base_hash};
    for (const CfgMutator &m : coreConfigMutators()) {
        CoreConfig cfg;
        m.apply(cfg);
        const std::uint64_t h = configHash(cfg);
        EXPECT_NE(h, base_hash)
            << "configHash ignores CoreConfig field " << m.field;
        EXPECT_TRUE(seen.insert(h).second)
            << "perturbing " << m.field
            << " collides with an earlier perturbation";
    }
}

TEST(HashCoverage, DisplayNameDoesNotPerturbConfigHash)
{
    const CoreConfig base;
    CoreConfig renamed;
    renamed.name = "a completely different label";
    EXPECT_EQ(configHash(base), configHash(renamed))
        << "the display name must never key cache artifacts: ablation "
           "variants deliberately share it";
}

TEST(HashCoverage, EveryDtmOptionsFieldPerturbsDtmConfigHash)
{
    const CoreConfig cfg;
    const DtmOptions base;
    const std::uint64_t base_hash = dtmConfigHash(cfg, base);
    std::set<std::uint64_t> seen{base_hash};
    for (const DtmMutator &m : dtmOptionsMutators()) {
        DtmOptions o;
        m.apply(o);
        const std::uint64_t h = dtmConfigHash(cfg, o);
        EXPECT_NE(h, base_hash)
            << "dtmConfigHash ignores DtmOptions field " << m.field;
        EXPECT_TRUE(seen.insert(h).second)
            << "perturbing " << m.field
            << " collides with an earlier perturbation";
    }
}

TEST(HashCoverage, DtmHashFoldsTheCoreConfig)
{
    const DtmOptions opts;
    CoreConfig a;
    CoreConfig b;
    b.robSize += 1;
    EXPECT_NE(dtmConfigHash(a, opts), dtmConfigHash(b, opts));
}

} // namespace
} // namespace th
