#include <gtest/gtest.h>

#include "core/cache.h"

namespace th {
namespace {

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c(4096, 2, 64);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1038)); // same line
    EXPECT_FALSE(c.access(0x1040)); // next line
}

TEST(SetAssocCache, ProbeDoesNotFill)
{
    SetAssocCache c(4096, 2, 64);
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_FALSE(c.access(0x2000));
    EXPECT_TRUE(c.probe(0x2000));
}

TEST(SetAssocCache, LruEviction)
{
    // 2-way, 2 sets: lines mapping to set 0 are multiples of 128.
    SetAssocCache c(256, 2, 64);
    c.access(0x0000);
    c.access(0x0100);
    c.access(0x0000);      // refresh first
    c.access(0x0200);      // evicts 0x0100
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x0100));
    EXPECT_TRUE(c.probe(0x0200));
}

TEST(SetAssocCache, AssociativityHoldsConflicts)
{
    SetAssocCache c(512, 4, 64); // 2 sets, 4 ways
    for (Addr a = 0; a < 4; ++a)
        c.access(a * 128); // all to set 0
    for (Addr a = 0; a < 4; ++a)
        EXPECT_TRUE(c.probe(a * 128)) << a;
}

TEST(SetAssocCache, Flush)
{
    SetAssocCache c(4096, 2, 64);
    c.access(0x1000);
    c.flush();
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(SetAssocCacheDeathTest, BadGeometry)
{
    EXPECT_EXIT((SetAssocCache{0, 1, 64}),
                ::testing::ExitedWithCode(1), "geometry");
}

TEST(Tlb, PageGranularity)
{
    Tlb tlb(16, 4);
    EXPECT_FALSE(tlb.access(0x10000));
    EXPECT_TRUE(tlb.access(0x10FFF)); // same 4KB page
    EXPECT_FALSE(tlb.access(0x11000)); // next page
}

class HierarchyTest : public ::testing::Test
{
  protected:
    CoreConfig cfg_;
};

TEST_F(HierarchyTest, L1HitLatency)
{
    MemoryHierarchy mem(cfg_);
    mem.dataAccess(0x1000); // fill
    const MemAccessResult r = mem.dataAccess(0x1000);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.cycles, cfg_.dl1Cycles);
}

TEST_F(HierarchyTest, L2HitLatency)
{
    MemoryHierarchy mem(cfg_);
    mem.prefill(0x5000, false); // L2 only
    const MemAccessResult r = mem.dataAccess(0x5000);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
    EXPECT_EQ(r.cycles, cfg_.dl1Cycles + cfg_.l2Cycles());
}

TEST_F(HierarchyTest, DramLatency)
{
    MemoryHierarchy mem(cfg_);
    const MemAccessResult r = mem.dataAccess(0x9000);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_FALSE(r.l2Hit);
    EXPECT_EQ(r.cycles, cfg_.dl1Cycles + cfg_.l2Cycles() +
              cfg_.memLatencyCycles());
}

TEST_F(HierarchyTest, DramCyclesScaleWithFrequency)
{
    CoreConfig fast = cfg_;
    fast.freqGhz = 3.93;
    // Fixed nanoseconds -> more cycles at a higher clock (the "Fast"
    // configuration's IPC penalty).
    EXPECT_GT(fast.memLatencyCycles(), cfg_.memLatencyCycles());
    EXPECT_NEAR(double(fast.memLatencyCycles()) /
                cfg_.memLatencyCycles(), 3.93 / 2.66, 0.02);
}

TEST_F(HierarchyTest, PipeOptsShortenL2)
{
    CoreConfig pipe = cfg_;
    pipe.pipeOpts = true;
    EXPECT_EQ(cfg_.l2Cycles(), 12);
    EXPECT_EQ(pipe.l2Cycles(), 10);
}

TEST_F(HierarchyTest, PrefillIntoL1)
{
    MemoryHierarchy mem(cfg_);
    mem.prefill(0x3000, true);
    EXPECT_TRUE(mem.dataAccess(0x3000).l1Hit);
}

TEST_F(HierarchyTest, InstAndDataSidesIndependent)
{
    MemoryHierarchy mem(cfg_);
    mem.instAccess(0x400000);
    // The D-side L1 must not hold the I-side line (shared L2 does).
    const MemAccessResult r = mem.dataAccess(0x400000);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
}

TEST_F(HierarchyTest, TlbMissCosts)
{
    MemoryHierarchy mem(cfg_);
    bool miss = false;
    EXPECT_EQ(mem.dtlbAccess(0x77000, miss), cfg_.tlbMissCycles);
    EXPECT_TRUE(miss);
    EXPECT_EQ(mem.dtlbAccess(0x77008, miss), 0);
    EXPECT_FALSE(miss);
}

} // namespace
} // namespace th
