#include <gtest/gtest.h>

#include "thermal/grid.h"
#include "thermal/hotspot.h"

namespace th {
namespace {

ThermalParams
fastParams()
{
    ThermalParams p;
    p.gridN = 16;
    p.maxResidualK = 1e-3;
    return p;
}

ThermalGrid
stackedGrid(const ThermalParams &p)
{
    return ThermalGrid(p, HotspotModel::stackedStack(), 6.0, 6.0);
}

TEST(Transient, NoPowerStaysAtInitial)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    const ThermalField init(p.gridN,
                            static_cast<int>(
                                HotspotModel::stackedStack().size()),
                            p.ambientK);
    const auto tr = grid.solveTransient(init, 0.001, 1e-5, 5);
    EXPECT_NEAR(tr.final.peak(grid.dieLayers()), p.ambientK, 0.01);
}

TEST(Transient, HeatsMonotonicallyFromAmbient)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 0.0, 0.0, 6.0, 6.0, 15.0);
    const ThermalField init(p.gridN, 10, p.ambientK);
    const auto tr = grid.solveTransient(init, 0.02, 1e-4, 10);
    ASSERT_GE(tr.peakK.size(), 5u);
    for (size_t i = 1; i < tr.peakK.size(); ++i)
        EXPECT_GE(tr.peakK[i], tr.peakK[i - 1] - 1e-6) << i;
    EXPECT_GT(tr.peakK.back(), p.ambientK + 5.0);
}

TEST(Transient, ApproachesSteadyState)
{
    // After a long transient the field must approach the SOR solution.
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 1.0, 1.0, 4.0, 4.0, 12.0);
    const ThermalField steady = grid.solve();
    const ThermalField init(p.gridN, 10, p.ambientK);
    // Die layers have millisecond-scale constants; the sink itself is
    // slower, so compare die peaks only loosely.
    const auto tr = grid.solveTransient(init, 0.5, 1e-3, 5);
    const double steady_peak = steady.peak(grid.dieLayers());
    const double trans_peak = tr.final.peak(grid.dieLayers());
    EXPECT_LE(trans_peak, steady_peak + 0.5);
    EXPECT_GT(trans_peak, p.ambientK +
              (steady_peak - p.ambientK) * 0.3);
}

TEST(Transient, CoolsBackDownWhenPowerRemoved)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 0.0, 0.0, 6.0, 6.0, 20.0);
    const ThermalField init(p.gridN, 10, p.ambientK);
    const auto heated = grid.solveTransient(init, 0.02, 1e-4, 2);

    grid.clearPower();
    const auto cooled =
        grid.solveTransient(heated.final, 0.02, 1e-4, 2);
    EXPECT_LT(cooled.final.peak(grid.dieLayers()),
              heated.final.peak(grid.dieLayers()));
}

TEST(Transient, DeeperDieHeatsFasterThanSink)
{
    // Power in the dies raises die temperatures long before the bulky
    // copper sink warms: early peak rise outpaces the sink-side rise.
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 0.0, 0.0, 6.0, 6.0, 15.0);
    const ThermalField init(p.gridN, 10, p.ambientK);
    const auto tr = grid.solveTransient(init, 0.005, 1e-4, 2);
    const double die_peak = tr.final.peak(grid.dieLayers());
    // Sink layer 0 centre cell:
    const double sink_t = tr.final.at(0, p.gridN / 2, p.gridN / 2);
    EXPECT_GT(die_peak - p.ambientK, 2.0 * (sink_t - p.ambientK));
}

TEST(Transient, SampleTimesMonotonic)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    grid.addPower(0, 0.0, 0.0, 6.0, 6.0, 10.0);
    const ThermalField init(p.gridN, 10, p.ambientK);
    const auto tr = grid.solveTransient(init, 0.01, 1e-4, 8);
    ASSERT_FALSE(tr.timeS.empty());
    for (size_t i = 1; i < tr.timeS.size(); ++i)
        EXPECT_GT(tr.timeS[i], tr.timeS[i - 1]);
    EXPECT_NEAR(tr.timeS.back(), 0.01, 0.002);
}

// ---------------------------------------------------------------------
// TransientStepper: resumable transient runs.
// ---------------------------------------------------------------------

TEST(TransientStepper, SplitAdvancesMatchOneLongAdvanceBitForBit)
{
    // The DTM engine relies on N short advances being the same
    // computation as one long solve: the stepper tracks an accumulated
    // time target, so interval boundaries never change step count,
    // step size, or arithmetic order.
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 0.0, 0.0, 6.0, 6.0, 15.0);
    const ThermalField init(p.gridN, 10, p.ambientK);

    TransientStepper one(grid, init, 1e-4);
    one.advance(0.02);

    TransientStepper split(grid, init, 1e-4);
    for (int i = 0; i < 10; ++i)
        split.advance(0.002);

    EXPECT_EQ(one.steps(), split.steps());
    const ThermalField &a = one.field();
    const ThermalField &b = split.field();
    for (int l = 0; l < 10; ++l)
        for (int y = 0; y < p.gridN; ++y)
            for (int x = 0; x < p.gridN; ++x)
                ASSERT_EQ(a.at(l, y, x), b.at(l, y, x))
                    << "layer " << l << " y " << y << " x " << x;
}

TEST(TransientStepper, UnevenSplitsStillMatch)
{
    // Durations that are not multiples of dt must not drop or double
    // steps across the seam (the classic per-interval rounding bug).
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    grid.addPower(1, 0.0, 0.0, 6.0, 6.0, 20.0);
    const ThermalField init(p.gridN, 10, p.ambientK);

    TransientStepper one(grid, init, 3e-4);
    one.advance(0.02);

    TransientStepper split(grid, init, 3e-4);
    split.advance(0.0131);
    split.advance(0.0007);
    split.advance(0.0062);

    EXPECT_EQ(one.steps(), split.steps());
    EXPECT_NEAR(one.field().peak(grid.dieLayers()),
                split.field().peak(grid.dieLayers()), 1e-9);
}

TEST(TransientStepper, MatchesSolveTransientFinalField)
{
    // Same dt, same duration: the stepper is the same Euler kernel the
    // batch API runs, so the end states agree to round-off.
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 1.0, 1.0, 4.0, 4.0, 10.0);
    const ThermalField init(p.gridN, 10, p.ambientK);

    const auto tr = grid.solveTransient(init, 0.01, 1e-4, 4);
    TransientStepper stepper(grid, init, 1e-4);
    stepper.advance(0.01);

    EXPECT_NEAR(stepper.field().peak(grid.dieLayers()),
                tr.final.peak(grid.dieLayers()), 1e-9);
}

TEST(TransientStepper, VerticalImplicitSplitAdvancesMatchBitForBit)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 0.0, 0.0, 6.0, 6.0, 15.0);
    const ThermalField init(p.gridN, 10, p.ambientK);

    TransientStepper one(grid, init, 5e-4,
                         TransientScheme::VerticalImplicit);
    one.advance(0.02);

    TransientStepper split(grid, init, 5e-4,
                           TransientScheme::VerticalImplicit);
    for (int i = 0; i < 10; ++i)
        split.advance(0.002);

    EXPECT_EQ(one.steps(), split.steps());
    const ThermalField &a = one.field();
    const ThermalField &b = split.field();
    for (int l = 0; l < 10; ++l)
        for (int y = 0; y < p.gridN; ++y)
            for (int x = 0; x < p.gridN; ++x)
                ASSERT_EQ(a.at(l, y, x), b.at(l, y, x))
                    << "layer " << l << " y " << y << " x " << x;
}

TEST(TransientStepper, VerticalImplicitTracksExplicitTrajectory)
{
    // The implicit scheme exists so DTM replay can take control-
    // interval-scale steps instead of stability-bound microsecond
    // ones; it only earns that if the resolved trajectory matches in
    // the regime the engine actually runs it: starting from the
    // free-running steady field with modest per-interval power deltas
    // (not a from-ambient shock, whose initial ramp a large first-
    // order step legitimately smooths). Perturb the power 25% up from
    // steady and march both schemes, the implicit one at ~20x the
    // explicit stability step, requiring die-peak agreement well
    // under the fast path's 1 K anchor bound.
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 1.0, 1.0, 4.0, 4.0, 12.0);
    const ThermalField steady = grid.solve();
    const std::vector<int> dies = grid.dieLayers();

    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 1.0, 1.0, 4.0, 4.0, 3.0); // +25%
    TransientStepper explicit_s(grid, steady, 1e-4);
    TransientStepper implicit_s(grid, steady, 5e-4,
                                TransientScheme::VerticalImplicit);
    EXPECT_GT(implicit_s.dtS(), 20 * explicit_s.dtS())
        << "implicit step should dwarf the explicit stability clamp";
    for (int i = 0; i < 5; ++i) {
        explicit_s.advance(0.004);
        implicit_s.advance(0.004);
        EXPECT_NEAR(implicit_s.field().peak(dies),
                    explicit_s.field().peak(dies), 0.1)
            << "diverged by " << implicit_s.timeS() << " s";
    }
}

TEST(TransientStepper, VerticalImplicitHoldsSteadyState)
{
    // Same fixed-point property as the explicit scheme: backward
    // Euler's fixed points are exactly the steady equations', so
    // starting on the SOR answer must stay there even at a step far
    // beyond the explicit stability limit.
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 1.0, 1.0, 4.0, 4.0, 12.0);
    const ThermalField steady = grid.solve();
    const double steady_peak = steady.peak(grid.dieLayers());

    TransientStepper stepper(grid, steady, 1e-3,
                             TransientScheme::VerticalImplicit);
    for (int i = 0; i < 10; ++i) {
        stepper.advance(0.005);
        EXPECT_NEAR(stepper.field().peak(grid.dieLayers()),
                    steady_peak, 0.25)
            << "drifted after " << stepper.timeS() << " s";
    }
}

TEST(TransientStepper, SteadyStateIsAFixedPointUnderConstantPower)
{
    // The copper sink's time constant is tens of seconds, so marching
    // from ambient to convergence is impractical in a unit test. The
    // equivalent property, checked from the other side: the SOR
    // steady-state answer must be a fixed point of the Euler kernel —
    // start the resumable run there under the same constant power map
    // and it must hold that temperature (to within the solver's
    // residual tolerance), not drift or blow up.
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    for (int d = 0; d < kNumDies; ++d)
        grid.addPower(d, 1.0, 1.0, 4.0, 4.0, 12.0);
    const ThermalField steady = grid.solve();
    const double steady_peak = steady.peak(grid.dieLayers());

    TransientStepper stepper(grid, steady, 1e-3);
    for (int i = 0; i < 10; ++i) { // Resumed in 10 chunks.
        stepper.advance(0.005);
        EXPECT_NEAR(stepper.field().peak(grid.dieLayers()),
                    steady_peak, 0.25)
            << "drifted after " << stepper.timeS() << " s";
    }
}

TEST(TransientStepper, TracksTimeAndClampsDt)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    const ThermalField init(p.gridN, 10, p.ambientK);

    TransientStepper stepper(grid, init, 1e30);
    EXPECT_LT(stepper.dtS(), 1.0) << "stability clamp must engage";
    EXPECT_EQ(stepper.steps(), 0u);
    EXPECT_EQ(stepper.timeS(), 0.0);

    stepper.advance(stepper.dtS() * 7);
    EXPECT_EQ(stepper.steps(), 7u);
    EXPECT_NEAR(stepper.timeS(), stepper.dtS() * 7,
                stepper.dtS() * 1e-6);

    stepper.advance(0.0); // A zero advance is a no-op, not an error.
    EXPECT_EQ(stepper.steps(), 7u);
}

TEST(TransientStepperDeathTest, RejectsNegativeAdvance)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    const ThermalField init(p.gridN, 10, p.ambientK);
    TransientStepper stepper(grid, init, 1e-4);
    EXPECT_EXIT(stepper.advance(-0.001),
                ::testing::ExitedWithCode(1), "backwards");
}

TEST(TransientDeathTest, RejectsBadArguments)
{
    const ThermalParams p = fastParams();
    ThermalGrid grid = stackedGrid(p);
    const ThermalField init(p.gridN, 10, p.ambientK);
    EXPECT_EXIT(grid.solveTransient(init, -1.0, 1e-4, 2),
                ::testing::ExitedWithCode(1), "positive");
    const ThermalField wrong(4, 2, p.ambientK);
    EXPECT_EXIT(grid.solveTransient(wrong, 0.01, 1e-4, 2),
                ::testing::ExitedWithCode(1), "geometry");
}

} // namespace
} // namespace th
