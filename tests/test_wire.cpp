#include <gtest/gtest.h>

#include "circuit/wire.h"

namespace th {
namespace {

class WireTest : public ::testing::Test
{
  protected:
    WireModel wires{defaultTech()};
};

TEST_F(WireTest, RepeatedDelayLinearInLength)
{
    const double d1 = wires.repeatedDelay(1.0, WireLayer::Intermediate);
    const double d2 = wires.repeatedDelay(2.0, WireLayer::Intermediate);
    EXPECT_NEAR(d2, 2.0 * d1, 1e-9);
}

TEST_F(WireTest, GlobalLayerFasterPerMm)
{
    // Thicker global wires have lower resistance per mm.
    EXPECT_LT(wires.repeatedDelayPerMm(WireLayer::Global),
              wires.repeatedDelayPerMm(WireLayer::Intermediate));
}

TEST_F(WireTest, UnrepeatedQuadraticGrowth)
{
    // With a fixed driver, doubling length should more than double the
    // delay (distributed RC term is quadratic).
    const double d1 =
        wires.unrepeatedDelay(1.0, WireLayer::Intermediate, 100.0, 0.0);
    const double d2 =
        wires.unrepeatedDelay(2.0, WireLayer::Intermediate, 100.0, 0.0);
    EXPECT_GT(d2, 2.0 * d1);
}

TEST_F(WireTest, StrongerDriverIsFaster)
{
    const double weak =
        wires.unrepeatedDelay(1.0, WireLayer::Intermediate, 1000.0, 10.0);
    const double strong =
        wires.unrepeatedDelay(1.0, WireLayer::Intermediate, 100.0, 10.0);
    EXPECT_LT(strong, weak);
}

TEST_F(WireTest, LoadedBusSlower)
{
    const double bare = wires.repeatedDelay(1.5, WireLayer::Intermediate);
    const double loaded = wires.repeatedDelayLoaded(
        1.5, WireLayer::Intermediate, 300.0);
    EXPECT_GT(loaded, bare);
}

TEST_F(WireTest, ZeroLoadMatchesBareBus)
{
    EXPECT_NEAR(
        wires.repeatedDelayLoaded(1.0, WireLayer::Intermediate, 0.0),
        wires.repeatedDelay(1.0, WireLayer::Intermediate), 1e-9);
}

TEST_F(WireTest, EnergyScalesWithLength)
{
    const double e1 = wires.wireEnergy(1.0, WireLayer::Intermediate);
    const double e3 = wires.wireEnergy(3.0, WireLayer::Intermediate);
    EXPECT_NEAR(e3, 3.0 * e1, 1e-9);
}

TEST_F(WireTest, RepeatedWireCostsMoreEnergy)
{
    EXPECT_GT(wires.wireEnergy(1.0, WireLayer::Intermediate, true),
              wires.wireEnergy(1.0, WireLayer::Intermediate, false));
}

TEST_F(WireTest, PlausibleDelayPerMm)
{
    // Sanity: 65nm repeated intermediate wires run tens of ps per mm.
    const double d = wires.repeatedDelayPerMm(WireLayer::Intermediate);
    EXPECT_GT(d, 20.0);
    EXPECT_LT(d, 120.0);
}

TEST(Technology, Fo4IsReasonable)
{
    // 65nm FO4 is around 20-30 ps.
    EXPECT_GT(defaultTech().fo4(), 15.0);
    EXPECT_LT(defaultTech().fo4(), 40.0);
}

TEST(Technology, SwitchEnergyMatchesCV2)
{
    const Technology &t = defaultTech();
    // 1000 fF at Vdd: E = C*V^2 in pJ (the model charges full swing).
    EXPECT_NEAR(t.switchEnergy(1000.0), 1e-3 * 1000.0 * t.vdd * t.vdd,
                1e-12);
}

TEST(Technology, ViaDelayUnderOneFo4)
{
    // Prior 3D work: d2d via delay is below one FO4 (Section 2.1).
    EXPECT_LT(defaultTech().d2dViaDelay, defaultTech().fo4());
}

} // namespace
} // namespace th
