#include <gtest/gtest.h>

#include "sim/experiments.h"

namespace th {
namespace {

class ExperimentsTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        SimOptions opts;
        opts.instructions = 40000;
        opts.warmupInstructions = 25000;
        sys_ = new System(opts);
    }

    static void TearDownTestSuite()
    {
        delete sys_;
        sys_ = nullptr;
    }

    static System *sys_;
};

System *ExperimentsTest::sys_ = nullptr;

TEST_F(ExperimentsTest, Figure8ShapesAndGroups)
{
    const Fig8Data data =
        runFigure8(*sys_, {"gzip", "crafty", "swim", "susan"});
    ASSERT_EQ(data.benchmarks.size(), 4u);
    // Two SPECint, one SPECfp, one MiBench group.
    ASSERT_EQ(data.groups.size(), 3u);
    for (const auto &b : data.benchmarks) {
        for (int c = 0; c < kNumFig8Configs; ++c) {
            EXPECT_GT(b.ipc[static_cast<size_t>(c)], 0.0) << b.name;
            EXPECT_GT(b.ipns[static_cast<size_t>(c)], 0.0) << b.name;
        }
        EXPECT_GT(b.speedup, 0.0) << b.name;
    }
    EXPECT_GT(data.speedupMeanOfMeans, 0.0);
    EXPECT_GE(data.maxSpeedup, data.minSpeedup);
}

TEST_F(ExperimentsTest, Figure8GroupGeomeanBetweenMembers)
{
    const Fig8Data data = runFigure8(*sys_, {"gzip", "crafty"});
    ASSERT_EQ(data.groups.size(), 1u);
    const double lo = std::min(data.benchmarks[0].ipc[0],
                               data.benchmarks[1].ipc[0]);
    const double hi = std::max(data.benchmarks[0].ipc[0],
                               data.benchmarks[1].ipc[0]);
    EXPECT_GE(data.groups[0].ipcGeomean[0], lo);
    EXPECT_LE(data.groups[0].ipcGeomean[0], hi);
}

TEST_F(ExperimentsTest, Figure9BreakdownSumsUp)
{
    const Fig9Data data = runFigure9(*sys_, {"gzip"});
    const PowerBreakdown &b = data.planar;
    double block_sum = b.l2W;
    for (double w : b.blockW)
        block_sum += w;
    EXPECT_NEAR(b.totalW, b.clockW + b.leakW + b.dynamicW, 1e-6);
    EXPECT_NEAR(b.dynamicW, block_sum, 1e-6);
    ASSERT_EQ(data.savings.size(), 1u);
    EXPECT_EQ(data.minSaving.name, data.maxSaving.name);
}

TEST_F(ExperimentsTest, Figure10CasesPopulated)
{
    const Fig10Data data = runFigure10(*sys_, {"mpeg2enc"});
    EXPECT_EQ(data.worstPlanar.app, "mpeg2enc");
    EXPECT_EQ(data.worstPlanar.config, "Base");
    EXPECT_EQ(data.worstNoTh3d.config, "3D-noTH");
    EXPECT_EQ(data.worstTh3d.config, "3D");
    EXPECT_EQ(data.isoPower.config, "3D-isoPower");
    EXPECT_GT(data.worstPlanar.report.peakK, 320.0);
    // Iso-power case burns the planar wattage on the 3D stack.
    EXPECT_NEAR(data.isoPower.totalW, data.worstPlanar.totalW, 0.5);
    EXPECT_EQ(data.sameApp, data.worstPlanar.app);
}

TEST_F(ExperimentsTest, WidthStudyRowsComplete)
{
    const WidthStudyData data =
        runWidthStudy(*sys_, {"mpeg2enc", "yacr2"});
    ASSERT_EQ(data.rows.size(), 2u);
    for (const auto &row : data.rows) {
        EXPECT_GT(row.accuracy, 0.5);
        EXPECT_LE(row.accuracy, 1.0);
        EXPECT_GE(row.pamHitRate, 0.0);
        EXPECT_LE(row.pamHitRate, 1.0);
        EXPECT_GE(row.pveEncodable, 0.0);
        EXPECT_LE(row.pveEncodable, 1.0);
    }
    // The media benchmark herds far more D-cache reads than the
    // pointer benchmark.
    EXPECT_GT(data.rows[0].lowWidthFrac, data.rows[1].lowWidthFrac);
}

TEST_F(ExperimentsTest, SchedulerAblationChangesTopDieShare)
{
    // Top-die-first allocation is what herds scheduler activity; the
    // round-robin ablation spreads it out.
    System &sys = *sys_;
    CoreConfig herd = makeConfig(ConfigKind::ThreeD, sys.circuits());
    CoreConfig rr = herd;
    rr.schedAlloc = SchedAllocPolicy::RoundRobin;
    const CoreResult r_herd = sys.runCore("gzip", herd);
    const CoreResult r_rr = sys.runCore("gzip", rr);
    EXPECT_GT(r_herd.activity.schedAllocDie[0].value(),
              r_rr.activity.schedAllocDie[0].value());
    // Broadcast gating: herded runs touch lower dies far less often.
    EXPECT_LT(r_herd.activity.schedWakeupDie[3].value(),
              r_rr.activity.schedWakeupDie[3].value());
}

TEST_F(ExperimentsTest, PamAblationLosesMemoization)
{
    System &sys = *sys_;
    CoreConfig on = makeConfig(ConfigKind::ThreeD, sys.circuits());
    CoreConfig off = on;
    off.pamEnabled = false;
    const CoreResult r_on = sys.runCore("gzip", on);
    const CoreResult r_off = sys.runCore("gzip", off);
    EXPECT_GT(r_on.perf.pamHits.value(), 0u);
    EXPECT_EQ(r_off.perf.pamHits.value(), 0u);
    EXPECT_GT(r_on.activity.lsqSearchLow.value(),
              r_off.activity.lsqSearchLow.value());
}

} // namespace
} // namespace th
