#include <gtest/gtest.h>

#include "core/scheduler.h"

namespace th {
namespace {

TEST(Scheduler, TopDieFirstHerdsToDie0)
{
    SchedulerEntries s(32, SchedAllocPolicy::TopDieFirst);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(s.allocate(), 0) << i;
    EXPECT_EQ(s.allocate(), 1) << "die 0 full, spill to die 1";
    EXPECT_EQ(s.occupancy(0), 8);
    EXPECT_EQ(s.occupancy(1), 1);
}

TEST(Scheduler, TopDieFirstRefillsFreedTopSlots)
{
    SchedulerEntries s(32, SchedAllocPolicy::TopDieFirst);
    for (int i = 0; i < 9; ++i)
        s.allocate();
    s.release(0);
    // The freed top-die entry is preferred over die 1.
    EXPECT_EQ(s.allocate(), 0);
}

TEST(Scheduler, RoundRobinSpreads)
{
    SchedulerEntries s(32, SchedAllocPolicy::RoundRobin);
    int counts[kNumDies] = {};
    for (int i = 0; i < 16; ++i)
        ++counts[s.allocate()];
    for (int d = 0; d < kNumDies; ++d)
        EXPECT_EQ(counts[d], 4) << d;
}

TEST(Scheduler, FullReturnsMinusOne)
{
    SchedulerEntries s(8, SchedAllocPolicy::TopDieFirst);
    for (int i = 0; i < 8; ++i)
        EXPECT_GE(s.allocate(), 0);
    EXPECT_EQ(s.allocate(), -1);
    EXPECT_EQ(s.freeEntries(), 0);
}

TEST(Scheduler, OccupancyBookkeeping)
{
    SchedulerEntries s(32, SchedAllocPolicy::TopDieFirst);
    const int d1 = s.allocate();
    const int d2 = s.allocate();
    EXPECT_EQ(s.totalOccupancy(), 2);
    s.release(d1);
    s.release(d2);
    EXPECT_EQ(s.totalOccupancy(), 0);
    EXPECT_EQ(s.freeEntries(), 32);
}

TEST(Scheduler, BroadcastGatesEmptyDies)
{
    SchedulerEntries s(32, SchedAllocPolicy::TopDieFirst);
    ActivityStats act;
    for (int i = 0; i < 3; ++i)
        s.allocate(); // only die 0 occupied
    s.recordBroadcast(act);
    EXPECT_EQ(act.schedWakeupDie[0].value(), 1u);
    EXPECT_EQ(act.schedWakeupDie[1].value(), 0u);
    EXPECT_EQ(act.schedWakeupDie[2].value(), 0u);
    EXPECT_EQ(act.schedWakeupDie[3].value(), 0u);
}

TEST(Scheduler, BroadcastReachesOccupiedDies)
{
    SchedulerEntries s(32, SchedAllocPolicy::RoundRobin);
    ActivityStats act;
    for (int i = 0; i < 4; ++i)
        s.allocate(); // one on each die
    s.recordBroadcast(act);
    for (int d = 0; d < kNumDies; ++d)
        EXPECT_EQ(act.schedWakeupDie[d].value(), 1u) << d;
}

TEST(Scheduler, HerdingReducesBroadcastEnergyProxy)
{
    // With the same occupancy, top-die-first touches fewer dies.
    SchedulerEntries herd(32, SchedAllocPolicy::TopDieFirst);
    SchedulerEntries rr(32, SchedAllocPolicy::RoundRobin);
    ActivityStats a_herd, a_rr;
    for (int i = 0; i < 6; ++i) {
        herd.allocate();
        rr.allocate();
    }
    herd.recordBroadcast(a_herd);
    rr.recordBroadcast(a_rr);
    auto dies_touched = [](const ActivityStats &a) {
        int n = 0;
        for (int d = 0; d < kNumDies; ++d)
            n += a.schedWakeupDie[d].value() > 0 ? 1 : 0;
        return n;
    };
    EXPECT_EQ(dies_touched(a_herd), 1);
    EXPECT_EQ(dies_touched(a_rr), 4);
}

TEST(SchedulerDeathTest, ReleaseUnoccupiedPanics)
{
    SchedulerEntries s(32, SchedAllocPolicy::TopDieFirst);
    EXPECT_DEATH(s.release(2), "unoccupied");
}

TEST(SchedulerDeathTest, IndivisibleEntriesFatal)
{
    EXPECT_EXIT((SchedulerEntries{30, SchedAllocPolicy::TopDieFirst}),
                ::testing::ExitedWithCode(1), "divide evenly");
}

} // namespace
} // namespace th
