#include <gtest/gtest.h>

#include "common/log.h"

namespace th {
namespace {

TEST(Log, StrformatBasics)
{
    EXPECT_EQ(strformat("x=%d", 5), "x=5");
    EXPECT_EQ(strformat("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(strformat("%.2f", 1.005), "1.00");
}

TEST(Log, LevelRoundTrip)
{
    const LogLevel old = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(old);
}

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 3), "boom 3");
}

TEST(LogDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}

} // namespace
} // namespace th
