/**
 * @file
 * Shared test helpers: a scripted trace source and builders for
 * common instruction patterns.
 */

#ifndef TH_TESTS_TEST_UTIL_H
#define TH_TESTS_TEST_UTIL_H

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace th {
namespace test {

/** A TraceSource that replays a fixed vector of records. */
class VectorTrace : public TraceSource
{
  public:
    VectorTrace() = default;
    explicit VectorTrace(std::vector<TraceRecord> recs)
        : recs_(std::move(recs))
    {
    }

    void push(const TraceRecord &rec) { recs_.push_back(rec); }

    bool next(TraceRecord &rec) override
    {
        if (pos_ >= recs_.size())
            return false;
        rec = recs_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    size_t size() const { return recs_.size(); }

  private:
    std::vector<TraceRecord> recs_;
    size_t pos_ = 0;
};

/** Simple integer ALU op writing @p dst = @p value, reading @p srcs. */
inline TraceRecord
aluOp(Addr pc, RegIndex dst, std::uint64_t value,
      std::initializer_list<RegIndex> srcs = {})
{
    TraceRecord r;
    r.pc = pc;
    r.op = OpClass::IntAlu;
    r.hasDst = true;
    r.dstReg = dst;
    r.resultValue = value;
    r.numSrcs = 0;
    for (RegIndex s : srcs) {
        r.srcRegs[r.numSrcs] = s;
        ++r.numSrcs;
        if (r.numSrcs >= kMaxSrcs)
            break;
    }
    return r;
}

/** Load from @p addr into @p dst (value @p value). */
inline TraceRecord
loadOp(Addr pc, RegIndex dst, Addr addr, std::uint64_t value = 1,
       RegIndex base_reg = 30)
{
    TraceRecord r;
    r.pc = pc;
    r.op = OpClass::Load;
    r.hasDst = true;
    r.dstReg = dst;
    r.numSrcs = 1;
    r.srcRegs[0] = base_reg;
    r.effAddr = addr;
    r.memSize = 8;
    r.resultValue = value;
    return r;
}

/** Store @p value to @p addr. */
inline TraceRecord
storeOp(Addr pc, Addr addr, std::uint64_t value,
        RegIndex base_reg = 30, RegIndex data_reg = 29)
{
    TraceRecord r;
    r.pc = pc;
    r.op = OpClass::Store;
    r.numSrcs = 2;
    r.srcRegs[0] = base_reg;
    r.srcRegs[1] = data_reg;
    r.effAddr = addr;
    r.memSize = 8;
    r.resultValue = value;
    return r;
}

/** Conditional branch at @p pc with outcome @p taken. */
inline TraceRecord
branchOp(Addr pc, bool taken, Addr target)
{
    TraceRecord r;
    r.pc = pc;
    r.op = OpClass::Branch;
    r.numSrcs = 1;
    r.srcRegs[0] = 28;
    r.taken = taken;
    r.target = target;
    return r;
}

/** A stream of @p n independent single-cycle ALU ops. */
inline std::vector<TraceRecord>
independentAlus(int n, std::uint64_t value = 5)
{
    std::vector<TraceRecord> v;
    v.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        v.push_back(aluOp(0x1000 + static_cast<Addr>(i % 64) * 4,
                          static_cast<RegIndex>(i % 24), value));
    }
    return v;
}

/** A serial dependency chain: each op reads the previous result. */
inline std::vector<TraceRecord>
dependentChain(int n, std::uint64_t value = 5)
{
    std::vector<TraceRecord> v;
    v.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        TraceRecord r = aluOp(0x2000 + static_cast<Addr>(i % 64) * 4,
                              1, value, {1});
        r.srcValues[0] = value;
        v.push_back(r);
    }
    return v;
}

} // namespace test
} // namespace th

#endif // TH_TESTS_TEST_UTIL_H
