#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/bitutil.h"
#include "trace/generator.h"
#include "trace/suites.h"

namespace th {
namespace {

BenchmarkProfile
testProfile()
{
    BenchmarkProfile p;
    p.name = "unit-test";
    p.seed = 1234;
    return p;
}

TEST(Generator, DeterministicForSameProfile)
{
    SyntheticTrace a(testProfile());
    SyntheticTrace b(testProfile());
    TraceRecord ra, rb;
    for (int i = 0; i < 5000; ++i) {
        a.next(ra);
        b.next(rb);
        ASSERT_EQ(ra.pc, rb.pc) << "at " << i;
        ASSERT_EQ(ra.resultValue, rb.resultValue);
        ASSERT_EQ(ra.effAddr, rb.effAddr);
        ASSERT_EQ(ra.taken, rb.taken);
    }
}

TEST(Generator, ResetReproducesStream)
{
    SyntheticTrace t(testProfile());
    std::vector<Addr> first;
    TraceRecord r;
    for (int i = 0; i < 1000; ++i) {
        t.next(r);
        first.push_back(r.pc);
    }
    t.reset();
    for (int i = 0; i < 1000; ++i) {
        t.next(r);
        ASSERT_EQ(r.pc, first[static_cast<size_t>(i)]) << i;
    }
}

TEST(Generator, DifferentSeedsDifferentPrograms)
{
    auto p1 = testProfile(), p2 = testProfile();
    p2.seed = 99;
    SyntheticTrace a(p1), b(p2);
    TraceRecord ra, rb;
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        a.next(ra);
        b.next(rb);
        if (ra.pc == rb.pc && ra.op == rb.op)
            ++same;
    }
    EXPECT_LT(same, 900);
}

TEST(Generator, OpMixApproximatesProfile)
{
    auto p = testProfile();
    p.numKernels = 48; // large sample for tight tolerance
    SyntheticTrace t(p);
    TraceRecord r;
    const int n = 200000;
    std::map<OpClass, int> counts;
    for (int i = 0; i < n; ++i) {
        t.next(r);
        counts[r.op]++;
    }
    EXPECT_NEAR(counts[OpClass::Load] / double(n), p.fLoad, 0.05);
    EXPECT_NEAR(counts[OpClass::Store] / double(n), p.fStore, 0.04);
    EXPECT_NEAR(counts[OpClass::IntShift] / double(n), p.fShift, 0.03);
    // Branches: sampled sites plus the mandatory loop-back branch.
    EXPECT_GT(counts[OpClass::Branch] / double(n), p.fBranch * 0.7);
}

TEST(Generator, BranchTargetsAreValidPcs)
{
    SyntheticTrace t(testProfile());
    TraceRecord r;
    std::set<Addr> pcs;
    for (int i = 0; i < 50000; ++i) {
        t.next(r);
        pcs.insert(r.pc);
    }
    t.reset();
    for (int i = 0; i < 50000; ++i) {
        t.next(r);
        if (r.isControl() && r.taken) {
            ASSERT_TRUE(pcs.count(r.target)) << std::hex << r.target;
        }
    }
}

TEST(Generator, PerPcWidthLocality)
{
    // An oracle last-outcome predictor per PC must approach the
    // paper's 97% accuracy — width behaviour is a site property.
    SyntheticTrace t(testProfile());
    TraceRecord r;
    std::map<Addr, bool> last;
    int predicted = 0, correct = 0;
    for (int i = 0; i < 100000; ++i) {
        t.next(r);
        if (!r.hasDst || isFpOp(r.op))
            continue;
        const bool low = r.resultWidth() == Width::Low;
        auto it = last.find(r.pc);
        if (it != last.end()) {
            ++predicted;
            if (it->second == low)
                ++correct;
            it->second = low;
        } else {
            last[r.pc] = low;
        }
    }
    ASSERT_GT(predicted, 1000);
    EXPECT_GT(double(correct) / predicted, 0.95);
}

TEST(Generator, MemoryRegionsHaveDistinctUpperBits)
{
    SyntheticTrace t(testProfile());
    TraceRecord r;
    std::set<Addr> uppers;
    for (int i = 0; i < 50000; ++i) {
        t.next(r);
        if (r.isMem())
            uppers.insert(r.effAddr >> 40);
    }
    // Stack / heap / global prefixes.
    EXPECT_GE(uppers.size(), 2u);
}

TEST(Generator, AddressesAligned)
{
    SyntheticTrace t(testProfile());
    TraceRecord r;
    for (int i = 0; i < 20000; ++i) {
        t.next(r);
        if (r.isMem()) {
            ASSERT_EQ(r.effAddr % 8, 0u);
        }
    }
}

TEST(Generator, ChaseLoadsSelfDependent)
{
    auto p = testProfile();
    p.pointerChaseFrac = 1.0;
    p.heapFrac = 0.9;
    p.stackFrac = 0.05;
    SyntheticTrace t(p);
    TraceRecord r;
    int chase_like = 0, loads = 0;
    for (int i = 0; i < 50000; ++i) {
        t.next(r);
        if (r.op != OpClass::Load)
            continue;
        ++loads;
        if (r.numSrcs == 1 && r.srcRegs[0] == r.dstReg)
            ++chase_like;
    }
    ASSERT_GT(loads, 100);
    // Most heap loads should be r = load [r] chains.
    EXPECT_GT(double(chase_like) / loads, 0.5);
}

TEST(Generator, ColdFractionTracksProfile)
{
    auto p = testProfile();
    p.coldFrac = 0.02;
    p.numKernels = 32;
    SyntheticTrace t(p);
    TraceRecord r;
    long mem = 0, cold = 0;
    for (int i = 0; i < 200000; ++i) {
        t.next(r);
        if (!r.isMem())
            continue;
        ++mem;
        Addr off;
        if (r.effAddr >= 0x00007fffff000000ULL)
            off = r.effAddr - 0x00007fffff000000ULL;
        else if (r.effAddr >= 0x0000200000000000ULL)
            off = r.effAddr - 0x0000200000000000ULL;
        else
            off = r.effAddr - 0x0000000040000000ULL;
        if (off >= p.warmBytes)
            ++cold;
    }
    EXPECT_NEAR(double(cold) / mem, p.coldFrac, 0.012);
}

TEST(Generator, PrefillCoversHotAndWarmSets)
{
    auto p = testProfile();
    SyntheticTrace t(p);
    std::vector<PrefillLine> lines;
    t.prefillLines(lines);
    ASSERT_FALSE(lines.empty());
    std::uint64_t l1_lines = 0, l2_lines = 0;
    for (const auto &l : lines)
        (l.intoL1 ? l1_lines : l2_lines) += 1;
    // Hot set on three regions, L1-resident.
    EXPECT_EQ(l1_lines, 3 * p.hotBytes / 64);
    // Warm set on two regions, L2 only.
    EXPECT_EQ(l2_lines, 2 * (p.warmBytes - p.hotBytes) / 64);
}

TEST(Generator, FpProfileProducesFpOps)
{
    auto p = testProfile();
    p.fFpAdd = 0.2;
    p.fFpMult = 0.1;
    SyntheticTrace t(p);
    TraceRecord r;
    int fp = 0;
    for (int i = 0; i < 20000; ++i) {
        t.next(r);
        if (isFpOp(r.op))
            ++fp;
    }
    EXPECT_GT(fp, 3000);
}

TEST(Generator, FpResultsAreFullWidth)
{
    auto p = testProfile();
    p.fFpAdd = 0.3;
    SyntheticTrace t(p);
    TraceRecord r;
    for (int i = 0; i < 20000; ++i) {
        t.next(r);
        if (isFpOp(r.op) && r.hasDst) {
            ASSERT_EQ(r.resultWidth(), Width::Full);
        }
    }
}

TEST(GeneratorDeathTest, RejectsEmptyProgram)
{
    auto p = testProfile();
    p.numKernels = 0;
    EXPECT_EXIT((SyntheticTrace{p}), ::testing::ExitedWithCode(1),
                "kernel");
}

} // namespace
} // namespace th
