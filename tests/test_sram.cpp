#include <gtest/gtest.h>

#include "circuit/sram.h"

namespace th {
namespace {

SramParams
rfParams()
{
    SramParams p;
    p.entries = 128;
    p.bitsPerEntry = 64;
    p.readPorts = 6;
    p.writePorts = 3;
    return p;
}

TEST(Sram, LatencyGrowsWithEntries)
{
    SramParams small, big;
    small.entries = 64;
    big.entries = 1024;
    small.bitsPerEntry = big.bitsPerEntry = 64;
    SramArray a(small, Partition3D::None);
    SramArray b(big, Partition3D::None);
    EXPECT_LT(a.readLatency(), b.readLatency());
}

TEST(Sram, MorePortsSlower)
{
    SramParams one, many;
    one.entries = many.entries = 128;
    one.bitsPerEntry = many.bitsPerEntry = 64;
    many.readPorts = 6;
    many.writePorts = 3;
    SramArray a(one, Partition3D::None);
    SramArray b(many, Partition3D::None);
    EXPECT_LT(a.readLatency(), b.readLatency());
}

TEST(Sram, WordSliceFasterThanPlanarForMultiported)
{
    SramArray planar(rfParams(), Partition3D::None);
    SramArray sliced(rfParams(), Partition3D::WordSlice);
    EXPECT_LT(sliced.readLatency(), planar.readLatency());
}

TEST(Sram, WordSliceImprovementSubstantial)
{
    // The paper reports substantial latency gains for large arrays;
    // the 3D register file literature sees ~25-35%.
    SramArray planar(rfParams(), Partition3D::None);
    SramArray sliced(rfParams(), Partition3D::WordSlice);
    const double gain = 1.0 - sliced.readLatency() / planar.readLatency();
    EXPECT_GT(gain, 0.15);
    EXPECT_LT(gain, 0.50);
}

TEST(Sram, RouteAddsLatency)
{
    SramParams with = rfParams(), without = rfParams();
    with.routeLenMm = 3.0;
    SramArray a(without, Partition3D::None);
    SramArray b(with, Partition3D::None);
    EXPECT_GT(b.readLatency(), a.readLatency());
}

TEST(Sram, TimingComponentsPositive)
{
    SramArray arr(rfParams(), Partition3D::None);
    const ArrayTiming t = arr.readTiming();
    EXPECT_GT(t.decode, 0.0);
    EXPECT_GT(t.wordline, 0.0);
    EXPECT_GT(t.bitline, 0.0);
    EXPECT_GT(t.sense, 0.0);
    EXPECT_NEAR(t.total(), t.decode + t.wordline + t.bitline + t.sense +
                t.output + t.route + t.via, 1e-9);
}

TEST(Sram, ViasOnlyIn3d)
{
    SramArray planar(rfParams(), Partition3D::None);
    SramArray sliced(rfParams(), Partition3D::WordSlice);
    EXPECT_EQ(planar.readTiming().via, 0.0);
    EXPECT_GT(sliced.readTiming().via, 0.0);
}

TEST(Sram, TopSliceEnergyQuarterish)
{
    SramArray sliced(rfParams(), Partition3D::WordSlice);
    const ArrayEnergy full = sliced.accessEnergy();
    const ArrayEnergy top = sliced.topSliceEnergy();
    EXPECT_LT(top.read, full.read);
    EXPECT_NEAR(top.read / full.read, 0.25, 0.05);
    EXPECT_LT(top.write, full.write);
}

TEST(Sram, TopSliceOfPlanarIsFullAccess)
{
    SramArray planar(rfParams(), Partition3D::None);
    EXPECT_DOUBLE_EQ(planar.topSliceEnergy().read,
                     planar.accessEnergy().read);
}

TEST(Sram, WriteCostsMoreThanRead)
{
    // Full-swing differential writes vs partial-swing reads.
    SramArray arr(rfParams(), Partition3D::None);
    const ArrayEnergy e = arr.accessEnergy();
    EXPECT_GT(e.write, e.read);
}

TEST(Sram, GeometryAfterFolding)
{
    SramParams p = rfParams();
    SramArray word(p, Partition3D::WordSlice);
    EXPECT_EQ(word.physCols(), 16);
    EXPECT_EQ(word.physRows(), 128);
    SramArray row(p, Partition3D::RowSlice);
    EXPECT_EQ(row.physRows(), 32);
    EXPECT_EQ(row.physCols(), 64);
    SramArray quad(p, Partition3D::Quad);
    EXPECT_EQ(quad.physRows(), 64);
    EXPECT_EQ(quad.physCols(), 32);
}

TEST(Sram, SliceAreaShrinksWhenFolded)
{
    SramArray planar(rfParams(), Partition3D::None);
    SramArray sliced(rfParams(), Partition3D::WordSlice);
    EXPECT_NEAR(sliced.sliceArea(), planar.sliceArea() / 4.0,
                planar.sliceArea() * 0.01);
}

TEST(SramDeathTest, InvalidGeometry)
{
    SramParams p;
    p.entries = 0;
    EXPECT_EXIT((SramArray{p, Partition3D::None}),
                ::testing::ExitedWithCode(1), "positive");
}

/** Latency must be monotonic across a capacity sweep. */
class SramCapacitySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SramCapacitySweep, BiggerIsNeverFaster)
{
    SramParams a, b;
    a.entries = GetParam();
    b.entries = GetParam() * 4;
    a.bitsPerEntry = b.bitsPerEntry = 64;
    SramArray sa(a, Partition3D::None);
    SramArray sb(b, Partition3D::None);
    EXPECT_LE(sa.readLatency(), sb.readLatency());
    EXPECT_LE(sa.accessEnergy().read, sb.accessEnergy().read);
}

INSTANTIATE_TEST_SUITE_P(Capacities, SramCapacitySweep,
                         ::testing::Values(32, 64, 128, 256, 512, 1024));

/** Every partition style must produce positive, finite results. */
class SramPartitionSweep
    : public ::testing::TestWithParam<Partition3D>
{
};

TEST_P(SramPartitionSweep, SaneTimingAndEnergy)
{
    SramArray arr(rfParams(), GetParam());
    EXPECT_GT(arr.readLatency(), 0.0);
    EXPECT_LT(arr.readLatency(), 5000.0);
    const ArrayEnergy e = arr.accessEnergy();
    EXPECT_GT(e.read, 0.0);
    EXPECT_GT(e.write, 0.0);
    EXPECT_LT(e.read, 1000.0);
}

INSTANTIATE_TEST_SUITE_P(Partitions, SramPartitionSweep,
                         ::testing::Values(Partition3D::None,
                                           Partition3D::WordSlice,
                                           Partition3D::RowSlice,
                                           Partition3D::Quad));

} // namespace
} // namespace th
