file(REMOVE_RECURSE
  "CMakeFiles/thermal_throttle.dir/thermal_throttle.cpp.o"
  "CMakeFiles/thermal_throttle.dir/thermal_throttle.cpp.o.d"
  "thermal_throttle"
  "thermal_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
