# Empty compiler generated dependencies file for thermal_throttle.
# This may be replaced when dependencies are built.
