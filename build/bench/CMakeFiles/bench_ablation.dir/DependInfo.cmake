
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/th_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/th_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/th_power.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/th_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/th_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/th_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/th_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/th_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
