# Empty dependencies file for bench_width_prediction.
# This may be replaced when dependencies are built.
