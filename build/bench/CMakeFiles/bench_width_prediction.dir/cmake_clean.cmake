file(REMOVE_RECURSE
  "CMakeFiles/bench_width_prediction.dir/bench_width_prediction.cpp.o"
  "CMakeFiles/bench_width_prediction.dir/bench_width_prediction.cpp.o.d"
  "bench_width_prediction"
  "bench_width_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_width_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
