# Empty dependencies file for th_thermal.
# This may be replaced when dependencies are built.
