file(REMOVE_RECURSE
  "libth_thermal.a"
)
