file(REMOVE_RECURSE
  "CMakeFiles/th_thermal.dir/grid.cpp.o"
  "CMakeFiles/th_thermal.dir/grid.cpp.o.d"
  "CMakeFiles/th_thermal.dir/hotspot.cpp.o"
  "CMakeFiles/th_thermal.dir/hotspot.cpp.o.d"
  "libth_thermal.a"
  "libth_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/th_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
