file(REMOVE_RECURSE
  "libth_power.a"
)
