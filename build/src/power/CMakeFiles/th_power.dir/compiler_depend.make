# Empty compiler generated dependencies file for th_power.
# This may be replaced when dependencies are built.
