file(REMOVE_RECURSE
  "CMakeFiles/th_power.dir/power_model.cpp.o"
  "CMakeFiles/th_power.dir/power_model.cpp.o.d"
  "libth_power.a"
  "libth_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/th_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
