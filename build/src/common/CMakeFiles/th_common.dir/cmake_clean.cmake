file(REMOVE_RECURSE
  "CMakeFiles/th_common.dir/log.cpp.o"
  "CMakeFiles/th_common.dir/log.cpp.o.d"
  "CMakeFiles/th_common.dir/rng.cpp.o"
  "CMakeFiles/th_common.dir/rng.cpp.o.d"
  "CMakeFiles/th_common.dir/stats.cpp.o"
  "CMakeFiles/th_common.dir/stats.cpp.o.d"
  "CMakeFiles/th_common.dir/table.cpp.o"
  "CMakeFiles/th_common.dir/table.cpp.o.d"
  "CMakeFiles/th_common.dir/types.cpp.o"
  "CMakeFiles/th_common.dir/types.cpp.o.d"
  "libth_common.a"
  "libth_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/th_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
