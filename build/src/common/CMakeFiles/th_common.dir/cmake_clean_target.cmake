file(REMOVE_RECURSE
  "libth_common.a"
)
