file(REMOVE_RECURSE
  "libth_core.a"
)
