file(REMOVE_RECURSE
  "CMakeFiles/th_core.dir/activity.cpp.o"
  "CMakeFiles/th_core.dir/activity.cpp.o.d"
  "CMakeFiles/th_core.dir/branch_predictor.cpp.o"
  "CMakeFiles/th_core.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/th_core.dir/cache.cpp.o"
  "CMakeFiles/th_core.dir/cache.cpp.o.d"
  "CMakeFiles/th_core.dir/functional_units.cpp.o"
  "CMakeFiles/th_core.dir/functional_units.cpp.o.d"
  "CMakeFiles/th_core.dir/lsq.cpp.o"
  "CMakeFiles/th_core.dir/lsq.cpp.o.d"
  "CMakeFiles/th_core.dir/pipeline.cpp.o"
  "CMakeFiles/th_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/th_core.dir/scheduler.cpp.o"
  "CMakeFiles/th_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/th_core.dir/width_predictor.cpp.o"
  "CMakeFiles/th_core.dir/width_predictor.cpp.o.d"
  "libth_core.a"
  "libth_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/th_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
