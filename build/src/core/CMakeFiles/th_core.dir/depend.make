# Empty dependencies file for th_core.
# This may be replaced when dependencies are built.
