
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/activity.cpp" "src/core/CMakeFiles/th_core.dir/activity.cpp.o" "gcc" "src/core/CMakeFiles/th_core.dir/activity.cpp.o.d"
  "/root/repo/src/core/branch_predictor.cpp" "src/core/CMakeFiles/th_core.dir/branch_predictor.cpp.o" "gcc" "src/core/CMakeFiles/th_core.dir/branch_predictor.cpp.o.d"
  "/root/repo/src/core/cache.cpp" "src/core/CMakeFiles/th_core.dir/cache.cpp.o" "gcc" "src/core/CMakeFiles/th_core.dir/cache.cpp.o.d"
  "/root/repo/src/core/functional_units.cpp" "src/core/CMakeFiles/th_core.dir/functional_units.cpp.o" "gcc" "src/core/CMakeFiles/th_core.dir/functional_units.cpp.o.d"
  "/root/repo/src/core/lsq.cpp" "src/core/CMakeFiles/th_core.dir/lsq.cpp.o" "gcc" "src/core/CMakeFiles/th_core.dir/lsq.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/th_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/th_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/th_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/th_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/width_predictor.cpp" "src/core/CMakeFiles/th_core.dir/width_predictor.cpp.o" "gcc" "src/core/CMakeFiles/th_core.dir/width_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/th_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/th_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
