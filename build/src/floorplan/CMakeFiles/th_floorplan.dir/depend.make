# Empty dependencies file for th_floorplan.
# This may be replaced when dependencies are built.
