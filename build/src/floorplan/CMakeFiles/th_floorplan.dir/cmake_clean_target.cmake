file(REMOVE_RECURSE
  "libth_floorplan.a"
)
