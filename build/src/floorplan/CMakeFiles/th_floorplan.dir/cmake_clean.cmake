file(REMOVE_RECURSE
  "CMakeFiles/th_floorplan.dir/floorplan.cpp.o"
  "CMakeFiles/th_floorplan.dir/floorplan.cpp.o.d"
  "libth_floorplan.a"
  "libth_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/th_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
