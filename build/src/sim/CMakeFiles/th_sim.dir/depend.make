# Empty dependencies file for th_sim.
# This may be replaced when dependencies are built.
