file(REMOVE_RECURSE
  "CMakeFiles/th_sim.dir/configs.cpp.o"
  "CMakeFiles/th_sim.dir/configs.cpp.o.d"
  "CMakeFiles/th_sim.dir/experiments.cpp.o"
  "CMakeFiles/th_sim.dir/experiments.cpp.o.d"
  "CMakeFiles/th_sim.dir/system.cpp.o"
  "CMakeFiles/th_sim.dir/system.cpp.o.d"
  "libth_sim.a"
  "libth_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/th_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
