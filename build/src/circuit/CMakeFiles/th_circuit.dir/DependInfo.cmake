
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/adder.cpp" "src/circuit/CMakeFiles/th_circuit.dir/adder.cpp.o" "gcc" "src/circuit/CMakeFiles/th_circuit.dir/adder.cpp.o.d"
  "/root/repo/src/circuit/blocks.cpp" "src/circuit/CMakeFiles/th_circuit.dir/blocks.cpp.o" "gcc" "src/circuit/CMakeFiles/th_circuit.dir/blocks.cpp.o.d"
  "/root/repo/src/circuit/bypass.cpp" "src/circuit/CMakeFiles/th_circuit.dir/bypass.cpp.o" "gcc" "src/circuit/CMakeFiles/th_circuit.dir/bypass.cpp.o.d"
  "/root/repo/src/circuit/logical_effort.cpp" "src/circuit/CMakeFiles/th_circuit.dir/logical_effort.cpp.o" "gcc" "src/circuit/CMakeFiles/th_circuit.dir/logical_effort.cpp.o.d"
  "/root/repo/src/circuit/sram.cpp" "src/circuit/CMakeFiles/th_circuit.dir/sram.cpp.o" "gcc" "src/circuit/CMakeFiles/th_circuit.dir/sram.cpp.o.d"
  "/root/repo/src/circuit/technology.cpp" "src/circuit/CMakeFiles/th_circuit.dir/technology.cpp.o" "gcc" "src/circuit/CMakeFiles/th_circuit.dir/technology.cpp.o.d"
  "/root/repo/src/circuit/wire.cpp" "src/circuit/CMakeFiles/th_circuit.dir/wire.cpp.o" "gcc" "src/circuit/CMakeFiles/th_circuit.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/th_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
