file(REMOVE_RECURSE
  "CMakeFiles/th_circuit.dir/adder.cpp.o"
  "CMakeFiles/th_circuit.dir/adder.cpp.o.d"
  "CMakeFiles/th_circuit.dir/blocks.cpp.o"
  "CMakeFiles/th_circuit.dir/blocks.cpp.o.d"
  "CMakeFiles/th_circuit.dir/bypass.cpp.o"
  "CMakeFiles/th_circuit.dir/bypass.cpp.o.d"
  "CMakeFiles/th_circuit.dir/logical_effort.cpp.o"
  "CMakeFiles/th_circuit.dir/logical_effort.cpp.o.d"
  "CMakeFiles/th_circuit.dir/sram.cpp.o"
  "CMakeFiles/th_circuit.dir/sram.cpp.o.d"
  "CMakeFiles/th_circuit.dir/technology.cpp.o"
  "CMakeFiles/th_circuit.dir/technology.cpp.o.d"
  "CMakeFiles/th_circuit.dir/wire.cpp.o"
  "CMakeFiles/th_circuit.dir/wire.cpp.o.d"
  "libth_circuit.a"
  "libth_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/th_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
