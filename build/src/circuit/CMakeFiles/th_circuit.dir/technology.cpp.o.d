src/circuit/CMakeFiles/th_circuit.dir/technology.cpp.o: \
 /root/repo/src/circuit/technology.cpp /usr/include/stdc-predef.h \
 /root/repo/src/common/../circuit/technology.h
