# Empty compiler generated dependencies file for th_circuit.
# This may be replaced when dependencies are built.
