file(REMOVE_RECURSE
  "libth_circuit.a"
)
