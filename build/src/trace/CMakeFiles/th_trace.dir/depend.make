# Empty dependencies file for th_trace.
# This may be replaced when dependencies are built.
