file(REMOVE_RECURSE
  "CMakeFiles/th_trace.dir/generator.cpp.o"
  "CMakeFiles/th_trace.dir/generator.cpp.o.d"
  "CMakeFiles/th_trace.dir/suites.cpp.o"
  "CMakeFiles/th_trace.dir/suites.cpp.o.d"
  "CMakeFiles/th_trace.dir/trace.cpp.o"
  "CMakeFiles/th_trace.dir/trace.cpp.o.d"
  "libth_trace.a"
  "libth_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/th_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
