file(REMOVE_RECURSE
  "libth_trace.a"
)
