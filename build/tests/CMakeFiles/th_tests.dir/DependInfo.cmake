
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_activity_params.cpp" "tests/CMakeFiles/th_tests.dir/test_activity_params.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_activity_params.cpp.o.d"
  "/root/repo/tests/test_adder_bypass.cpp" "tests/CMakeFiles/th_tests.dir/test_adder_bypass.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_adder_bypass.cpp.o.d"
  "/root/repo/tests/test_bitutil.cpp" "tests/CMakeFiles/th_tests.dir/test_bitutil.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_bitutil.cpp.o.d"
  "/root/repo/tests/test_blocks.cpp" "tests/CMakeFiles/th_tests.dir/test_blocks.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_blocks.cpp.o.d"
  "/root/repo/tests/test_branch_predictor.cpp" "tests/CMakeFiles/th_tests.dir/test_branch_predictor.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_branch_predictor.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/th_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_configs.cpp" "tests/CMakeFiles/th_tests.dir/test_configs.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_configs.cpp.o.d"
  "/root/repo/tests/test_experiments.cpp" "tests/CMakeFiles/th_tests.dir/test_experiments.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_experiments.cpp.o.d"
  "/root/repo/tests/test_floorplan.cpp" "tests/CMakeFiles/th_tests.dir/test_floorplan.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_floorplan.cpp.o.d"
  "/root/repo/tests/test_functional_units.cpp" "tests/CMakeFiles/th_tests.dir/test_functional_units.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_functional_units.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/th_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_hotspot.cpp" "tests/CMakeFiles/th_tests.dir/test_hotspot.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_hotspot.cpp.o.d"
  "/root/repo/tests/test_log.cpp" "tests/CMakeFiles/th_tests.dir/test_log.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_log.cpp.o.d"
  "/root/repo/tests/test_logical_effort.cpp" "tests/CMakeFiles/th_tests.dir/test_logical_effort.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_logical_effort.cpp.o.d"
  "/root/repo/tests/test_lsq.cpp" "tests/CMakeFiles/th_tests.dir/test_lsq.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_lsq.cpp.o.d"
  "/root/repo/tests/test_paper_anchors.cpp" "tests/CMakeFiles/th_tests.dir/test_paper_anchors.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_paper_anchors.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/th_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_pipeline_properties.cpp" "tests/CMakeFiles/th_tests.dir/test_pipeline_properties.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_pipeline_properties.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/th_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/th_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/th_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_sram.cpp" "tests/CMakeFiles/th_tests.dir/test_sram.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_sram.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/th_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_suites.cpp" "tests/CMakeFiles/th_tests.dir/test_suites.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_suites.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/th_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/th_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_thermal_grid.cpp" "tests/CMakeFiles/th_tests.dir/test_thermal_grid.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_thermal_grid.cpp.o.d"
  "/root/repo/tests/test_transient.cpp" "tests/CMakeFiles/th_tests.dir/test_transient.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_transient.cpp.o.d"
  "/root/repo/tests/test_width_predictor.cpp" "tests/CMakeFiles/th_tests.dir/test_width_predictor.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_width_predictor.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/th_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/th_tests.dir/test_wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/th_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/th_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/th_power.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/th_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/th_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/th_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/th_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/th_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
