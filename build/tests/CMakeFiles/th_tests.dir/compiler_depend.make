# Empty compiler generated dependencies file for th_tests.
# This may be replaced when dependencies are built.
