/**
 * @file
 * Counter-zip helper shared by the interval fitter and replay engine:
 * applies one operation to every corresponding Counter pair of two
 * CoreResults (the valueWidthBits histogram is handled separately by
 * both callers). The field list deliberately mirrors
 * encodePerfStats/encodeActivityStats in io/serialize.cpp — a counter
 * added to the stats structs must be added here too, or fitting would
 * silently drop it from the model (test_interval pins a full-coverage
 * round trip against the serializer to catch that).
 */

#ifndef TH_INTERVAL_STATS_OPS_H
#define TH_INTERVAL_STATS_OPS_H

#include "core/pipeline.h"

namespace th {

/** Call fn(into_counter, from_counter) for every CoreResult counter. */
template <class Fn>
void
zipCoreCounters(CoreResult &into, const CoreResult &from, Fn &&fn)
{
    PerfStats &p = into.perf;
    const PerfStats &q = from.perf;
    fn(p.cycles, q.cycles);
    fn(p.committedInsts, q.committedInsts);
    fn(p.fetchedInsts, q.fetchedInsts);
    fn(p.branches, q.branches);
    fn(p.branchMispredicts, q.branchMispredicts);
    fn(p.btbMisses, q.btbMisses);
    fn(p.btbTargetStalls, q.btbTargetStalls);
    fn(p.widthPredictions, q.widthPredictions);
    fn(p.widthPredCorrect, q.widthPredCorrect);
    fn(p.widthUnsafe, q.widthUnsafe);
    fn(p.widthSafeMiss, q.widthSafeMiss);
    fn(p.rfGroupStalls, q.rfGroupStalls);
    fn(p.execInputStalls, q.execInputStalls);
    fn(p.execReplays, q.execReplays);
    fn(p.dcacheWidthStalls, q.dcacheWidthStalls);
    fn(p.loads, q.loads);
    fn(p.stores, q.stores);
    fn(p.storeForwards, q.storeForwards);
    fn(p.dl1Misses, q.dl1Misses);
    fn(p.il1Misses, q.il1Misses);
    fn(p.l2Misses, q.l2Misses);
    fn(p.itlbMisses, q.itlbMisses);
    fn(p.dtlbMisses, q.dtlbMisses);
    fn(p.pamHits, q.pamHits);
    fn(p.pamMisses, q.pamMisses);
    fn(p.pveZeros, q.pveZeros);
    fn(p.pveOnes, q.pveOnes);
    fn(p.pveAddr, q.pveAddr);
    fn(p.pveExplicit, q.pveExplicit);

    ActivityStats &a = into.activity;
    const ActivityStats &b = from.activity;
    fn(a.rfReadLow, b.rfReadLow);
    fn(a.rfReadFull, b.rfReadFull);
    fn(a.rfWriteLow, b.rfWriteLow);
    fn(a.rfWriteFull, b.rfWriteFull);
    fn(a.aluLow, b.aluLow);
    fn(a.aluFull, b.aluFull);
    fn(a.shiftLow, b.shiftLow);
    fn(a.shiftFull, b.shiftFull);
    fn(a.multLow, b.multLow);
    fn(a.multFull, b.multFull);
    fn(a.fpOps, b.fpOps);
    fn(a.bypassLow, b.bypassLow);
    fn(a.bypassFull, b.bypassFull);
    for (int d = 0; d < kNumDies; ++d)
        fn(a.schedWakeupDie[d], b.schedWakeupDie[d]);
    fn(a.schedSelect, b.schedSelect);
    fn(a.schedAlloc, b.schedAlloc);
    for (int d = 0; d < kNumDies; ++d)
        fn(a.schedAllocDie[d], b.schedAllocDie[d]);
    fn(a.lsqSearchLow, b.lsqSearchLow);
    fn(a.lsqSearchFull, b.lsqSearchFull);
    fn(a.lsqWrite, b.lsqWrite);
    fn(a.dl1ReadLow, b.dl1ReadLow);
    fn(a.dl1ReadFull, b.dl1ReadFull);
    fn(a.dl1WriteLow, b.dl1WriteLow);
    fn(a.dl1WriteFull, b.dl1WriteFull);
    fn(a.dl1Fill, b.dl1Fill);
    fn(a.il1Access, b.il1Access);
    fn(a.itlbAccess, b.itlbAccess);
    fn(a.dtlbAccess, b.dtlbAccess);
    fn(a.btbLow, b.btbLow);
    fn(a.btbFull, b.btbFull);
    fn(a.bpredLookup, b.bpredLookup);
    fn(a.bpredUpdate, b.bpredUpdate);
    fn(a.decodeUops, b.decodeUops);
    fn(a.renameUops, b.renameUops);
    fn(a.robReadLow, b.robReadLow);
    fn(a.robReadFull, b.robReadFull);
    fn(a.robWriteLow, b.robWriteLow);
    fn(a.robWriteFull, b.robWriteFull);
    fn(a.l2Access, b.l2Access);
    fn(a.miscUops, b.miscUops);
}

} // namespace th

#endif // TH_INTERVAL_STATS_OPS_H
