/**
 * @file
 * IntervalModel fitter: one cycle-accurate core run, segmented into
 * phases of stable IPC. The expensive half of the fast path — run once
 * per (benchmark, config-family), then replay (interval/replay.h)
 * serves every other family member from the fitted phases.
 */

#ifndef TH_INTERVAL_FITTER_H
#define TH_INTERVAL_FITTER_H

#include "common/cancel.h"
#include "core/params.h"
#include "interval/model.h"
#include "trace/generator.h"

namespace th {

/**
 * Fit an interval model by stepping a cycle-accurate core over
 * @p profile in fitIntervalCycles chunks until fitCycles are consumed
 * (or the trace drains), merging adjacent chunks whose IPC stays
 * within phaseIpcTolerance of the growing phase's mean.
 *
 * @p family_hash / @p fit_config_hash record provenance in the model
 * (computed by the caller via intervalFamilyHash()/configHash() —
 * sim/configs.h — which this library does not link).
 * @p cancel is polled between fit intervals; a fired token aborts the
 * fit with a Cancelled throw before any model is produced.
 */
IntervalModel fitIntervalModel(const BenchmarkProfile &profile,
                               const CoreConfig &cfg,
                               const IntervalOptions &opts,
                               std::uint64_t family_hash,
                               std::uint64_t fit_config_hash,
                               const CancelToken *cancel = nullptr);

} // namespace th

#endif // TH_INTERVAL_FITTER_H
