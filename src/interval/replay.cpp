#include "interval/replay.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "interval/stats_ops.h"

namespace th {

namespace {

/** Smallest effective IPC replay will progress at (guards div-by-0). */
constexpr double kMinEffIpc = 1e-9;

} // namespace

ReplayIntervalSource::ReplayIntervalSource(const IntervalModel &model,
                                           const CoreConfig &target)
    : model_(model), target_(target)
{
    if (model_.phases.empty() || model_.ticks.empty())
        fatal("interval replay of '%s': model has no fitted work",
              model_.benchmark.c_str());
    for (const IntervalTick &t : model_.ticks)
        if (t.phase >= model_.phases.size())
            fatal("interval replay of '%s': tick phase %u out of "
                  "range (%zu phases)",
                  model_.benchmark.c_str(), t.phase,
                  model_.phases.size());
    const int narrowest =
        std::min({target_.fetchWidth, target_.issueWidth,
                  target_.commitWidth});
    widthCap_ = std::max(1, narrowest);
    remInsts_ = model_.ticks[0].insts;
    remCycles_ = model_.ticks[0].cycles;
}

void
ReplayIntervalSource::setFetchThrottle(int on, int period)
{
    fetchOn_ = std::max(1, on);
    fetchPeriod_ = std::max(fetchOn_, period);
}

void
ReplayIntervalSource::advanceTick()
{
    ++tick_;
    if (tick_ < model_.ticks.size()) {
        remInsts_ = model_.ticks[tick_].insts;
        remCycles_ = model_.ticks[tick_].cycles;
    } else {
        remInsts_ = 0;
        remCycles_ = 0;
    }
}

bool
ReplayIntervalSource::done() const
{
    return tick_ >= model_.ticks.size();
}

double
ReplayIntervalSource::throttleScale(std::size_t phase, double duty) const
{
    if (duty >= 1.0)
        return 1.0;
    // Piecewise-linear through (0, 0), the measured ladder points, and
    // (1, 1) — preferring the phase's own response over the
    // workload-level fallback. An unfitted table degrades to
    // scale = duty (the proportional-slowdown assumption).
    const std::vector<IntervalThrottlePoint> &table =
        phase < model_.phases.size() &&
                !model_.phases[phase].throttle.empty()
            ? model_.phases[phase].throttle
            : model_.throttle;
    double lo_d = 0.0, lo_s = 0.0, hi_d = 1.0, hi_s = 1.0;
    for (const IntervalThrottlePoint &p : table) {
        if (p.duty <= duty && p.duty >= lo_d) {
            lo_d = p.duty;
            lo_s = p.ipcScale;
        }
        if (p.duty >= duty && p.duty <= hi_d) {
            hi_d = p.duty;
            hi_s = p.ipcScale;
        }
    }
    if (hi_d <= lo_d)
        return lo_s;
    const double t = (duty - lo_d) / (hi_d - lo_d);
    return lo_s + t * (hi_s - lo_s);
}

CoreResult
ReplayIntervalSource::runFor(std::uint64_t cycles)
{
    CoreResult out;
    out.freqGhz = target_.freqGhz;

    // Scaled valueWidthBits accumulation (restored at the end so the
    // synthesized histogram matches the synthesized instruction count).
    std::vector<std::uint64_t> hbuckets;
    double hlo = 0.0, hhi = 0.0, hsum = 0.0, hmin = 0.0, hmax = 0.0;
    bool hany = false;

    std::uint64_t budget = cycles;
    std::uint64_t cycles_done = 0;
    std::uint64_t insts_done = 0;

    while (budget > 0 && tick_ < model_.ticks.size()) {
        const IntervalTick &tk = model_.ticks[tick_];
        const IntervalPhase &ph = model_.phases[tk.phase];
        const bool exhausted =
            tk.insts > 0 ? remInsts_ == 0 : remCycles_ == 0;
        if (exhausted) {
            advanceTick();
            continue;
        }

        std::uint64_t step = 0;
        std::uint64_t committed = 0;
        double frac = 0.0;
        const CoreResult *src = &ph.stats;
        if (tk.insts == 0) {
            // Stall tick: committed nothing at fit time; progresses in
            // cycle space, activity at the phase's per-cycle rate.
            step = std::min(budget, remCycles_);
            remCycles_ -= step;
            frac = static_cast<double>(step) /
                   static_cast<double>(ph.cycles);
        } else {
            // Working tick: progresses in instruction space at the
            // tick's fitted IPC, capped by the target's narrowest
            // width and scaled by the owning phase's measured response
            // of the active fetch-throttle duty.
            const double tick_ipc =
                static_cast<double>(tk.insts) /
                static_cast<double>(tk.cycles);
            double eff = std::min(tick_ipc, widthCap_);
            if (fetchOn_ < fetchPeriod_)
                eff *= throttleScale(
                    tk.phase, static_cast<double>(fetchOn_) /
                                  static_cast<double>(fetchPeriod_));
            eff = std::max(eff, kMinEffIpc);

            const double need = std::ceil(
                static_cast<double>(remInsts_) / eff);
            if (need <= static_cast<double>(budget)) {
                step = static_cast<std::uint64_t>(need);
                committed = remInsts_;
            } else {
                step = budget;
                committed = std::min<std::uint64_t>(
                    remInsts_,
                    static_cast<std::uint64_t>(std::llround(
                        eff * static_cast<double>(step))));
            }
            remInsts_ -= committed;
            frac = static_cast<double>(committed) /
                   static_cast<double>(
                       ph.stats.perf.committedInsts.value());

            // Under an active throttle, emit activity from the
            // phase's measured throttled aggregate (nearest calibrated
            // cadence) — the real throttled pipeline does measurably
            // less fetch-side work per committed instruction than the
            // free-running rates imply.
            if (fetchOn_ < fetchPeriod_) {
                const double d = static_cast<double>(fetchOn_) /
                                 static_cast<double>(fetchPeriod_);
                const IntervalThrottleBin *bin = nullptr;
                double bin_dist = 0.0;
                for (const IntervalThrottleBin &b : ph.bins) {
                    if (b.stats.perf.committedInsts.value() == 0)
                        continue;
                    const double dist = std::fabs(b.duty - d);
                    if (bin == nullptr || dist < bin_dist) {
                        bin = &b;
                        bin_dist = dist;
                    }
                }
                if (bin != nullptr) {
                    src = &bin->stats;
                    frac = static_cast<double>(committed) /
                           static_cast<double>(
                               bin->stats.perf.committedInsts.value());
                }
            }
        }

        if (frac > 0.0) {
            zipCoreCounters(
                out, *src,
                [frac](Counter &into, const Counter &from) {
                    into.inc(static_cast<std::uint64_t>(std::llround(
                        frac * static_cast<double>(from.value()))));
                });
            const Histogram &phh = src->perf.valueWidthBits;
            if (phh.count() > 0) {
                if (hbuckets.empty())
                    hbuckets.assign(phh.buckets().size(), 0);
                for (std::size_t i = 0; i < hbuckets.size(); ++i)
                    hbuckets[i] += static_cast<std::uint64_t>(
                        std::llround(frac * static_cast<double>(
                                                phh.buckets()[i])));
                hlo = phh.lo();
                hhi = phh.hi();
                hsum += frac * phh.sum();
                hmin = hany ? std::min(hmin, phh.min()) : phh.min();
                hmax = hany ? std::max(hmax, phh.max()) : phh.max();
                hany = true;
            }
        }

        budget -= step;
        cycles_done += step;
        insts_done += committed;
    }

    // Normalize so done() flips as soon as the final tick drains.
    while (tick_ < model_.ticks.size()) {
        const bool exhausted = model_.ticks[tick_].insts > 0
            ? remInsts_ == 0
            : remCycles_ == 0;
        if (!exhausted)
            break;
        advanceTick();
    }

    out.perf.cycles.set(cycles_done);
    out.perf.committedInsts.set(insts_done);
    if (hany) {
        std::uint64_t hcount = 0;
        for (std::uint64_t b : hbuckets)
            hcount += b;
        out.perf.valueWidthBits.restore(hlo, hhi, std::move(hbuckets),
                                        hcount, hsum, hmin, hmax);
    }
    return out;
}

} // namespace th
