/**
 * @file
 * Interval performance model — the fitted artifact behind the fast
 * simulation path (the CoMeT direction in ROADMAP.md). One
 * cycle-accurate core run per (benchmark, config-family) is segmented
 * into phases of stable IPC; each phase stores the aggregate
 * performance and activity counters the cycle core produced over it.
 * The replay engine (interval/replay.h) re-synthesizes per-interval
 * CoreResult streams from these phases under different configurations
 * in the same family, at 100-1000x cycle-accurate throughput.
 *
 * Models are serialized as the `IMDL` THIO artifact kind
 * (io/serialize.h, kIntervalModelSchemaVersion) and cached in the
 * ArtifactStore keyed by intervalModelKey() (sim/configs.h).
 */

#ifndef TH_INTERVAL_MODEL_H
#define TH_INTERVAL_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace th {

/**
 * One measured point of a fetch-throttle response: at a pinned
 * cadence of @c duty (= on/period), the core committed @c ipcScale of
 * its free-running IPC over the same instruction span. A single
 * analytic cap (fetchWidth * duty) is far too optimistic — the real
 * pipeline loses fetch groups to taken branches and redirects, so the
 * response is measured, not derived.
 */
struct IntervalThrottlePoint
{
    double duty = 1.0;
    double ipcScale = 1.0;
};

/**
 * One phase's aggregate counters measured with the fetch throttle
 * pinned at @c duty — what the real pipeline actually did under that
 * cadence over the phase's instruction span. Throttled replay emits
 * activity from these instead of rescaling the free-running phase
 * stats: the throttled frontend runs less far ahead of mispredicted
 * branches, so its fetch-side activity per committed instruction is
 * measurably lower than the free-running rate, and rescaled free
 * stats overestimate throttled power by ~1% — enough to skew a
 * hysteresis ladder's release points.
 */
struct IntervalThrottleBin
{
    double duty = 1.0;
    CoreResult stats;
};

/**
 * One fitted phase: a maximal run of adjacent fit intervals whose IPC
 * stayed within IntervalOptions::phaseIpcTolerance of the phase mean.
 * `stats` aggregates every perf/activity counter the cycle core
 * produced over the phase, so replay can derive per-instruction (or,
 * for committed-nothing stall phases, per-cycle) event rates.
 */
struct IntervalPhase
{
    std::uint64_t cycles = 0; ///< Fit-config cycles spent in the phase.
    CoreResult stats;         ///< Aggregate counters over the phase.

    /**
     * This phase's measured fetch-throttle response (ascending by
     * duty; may be empty if calibration never reached the phase, in
     * which case replay falls back to the workload-level
     * IntervalModel::throttle). Per-phase because a DTM ladder's limit
     * cycle dwells in specific phases whose throttled IPC can differ
     * several percent from the workload mean.
     */
    std::vector<IntervalThrottlePoint> throttle;

    /**
     * Measured throttled counter aggregates, one per calibrated
     * cadence that reached this phase (ascending by duty; possibly
     * empty, in which case throttled replay falls back to rescaling
     * the free-running stats). See IntervalThrottleBin.
     */
    std::vector<IntervalThrottleBin> bins;
};

/**
 * One fit interval's progression record: the raw per-interval texture
 * underneath the phase segmentation. Replay advances tick by tick —
 * each at its own fitted IPC — while drawing activity rates from the
 * owning phase's compressed counters. Keeping the texture matters for
 * closed-loop DTM fidelity: a hysteresis ladder's release points ride
 * on interval-scale power fluctuations, and replaying phase-mean IPC
 * smooths exactly the fluctuations that trip them.
 */
struct IntervalTick
{
    std::uint64_t cycles = 0; ///< Fit-config cycles in the interval.
    std::uint64_t insts = 0;  ///< Instructions committed over them.
    std::uint32_t phase = 0;  ///< Index into IntervalModel::phases.
};

/** A fitted interval model for one (benchmark, config-family). */
struct IntervalModel
{
    std::string benchmark;

    /** intervalFamilyHash() of the family the model is valid for. */
    std::uint64_t familyHash = 0;

    // Fit provenance: the exact configuration the cycle-accurate
    // fitting run used. Replay retargets freq/width differences
    // between this and the requested config; the error bound against
    // exact anchors reports how well that held.
    std::uint64_t fitConfigHash = 0;
    double fitFreqGhz = 0.0;
    int fitFetchWidth = 0;
    int fitIssueWidth = 0;
    int fitCommitWidth = 0;

    /** Fit granularity (IntervalOptions::fitIntervalCycles). */
    std::uint64_t intervalCycles = 0;

    std::uint64_t totalCycles = 0;       ///< Post-warm-up cycles fitted.
    std::uint64_t totalInstructions = 0; ///< Committed over the fit.

    std::vector<IntervalPhase> phases;

    /** Per-interval progression texture, in fit order (see
     *  IntervalTick). Every tick's @c phase indexes @c phases. */
    std::vector<IntervalTick> ticks;

    /**
     * Workload-level fetch-throttle response at the DTM ladder's
     * throttled cadences (dtm/policy.cpp: 1/4, 1/2, 3/4), ascending by
     * duty — the fallback for phases whose own table is empty. Replay
     * interpolates between (0, 0), the points, and (1, 1).
     */
    std::vector<IntervalThrottlePoint> throttle;
};

/**
 * Fitting knobs. Every field feeds intervalModelKey() (th_lint
 * enforces the coverage), so two fits with different options never
 * collide in the store.
 */
struct IntervalOptions
{
    /** Sampling granularity of the fitting run, in core cycles. */
    std::uint64_t fitIntervalCycles = 10000;

    /**
     * Total cycles to fit. Sized to cover the default DTM study
     * (one measurement + 40 control intervals of 50K cycles ~ 2.05M
     * cycles) with slack; replay of longer runs ends when the model
     * is exhausted, mirroring a drained trace.
     */
    std::uint64_t fitCycles = 2600000;

    /** Relative IPC tolerance for merging intervals into a phase. */
    double phaseIpcTolerance = 0.02;

    /** Core warm-up window before measurement (instructions). */
    std::uint64_t warmupInstructions = 20000;

    /**
     * Cycle safety cap of each fetch-throttle calibration run (one per
     * ladder cadence). Runs normally end once they reach the fitting
     * run's instruction count — so each phase's throttled IPC is
     * measured against that phase's fitted free-running IPC over the
     * same instruction span — and the cap only guards against a
     * pathologically slow throttled core. 0 disables calibration
     * (replay then treats throttling as an ideal duty-cycle scale).
     */
    std::uint64_t throttleFitCycles = 26000000;
};

} // namespace th

#endif // TH_INTERVAL_MODEL_H
