/**
 * @file
 * IntervalReplay engine: an IntervalSource that re-synthesizes
 * per-interval CoreResult streams from a fitted IntervalModel instead
 * of stepping the cycle-accurate core — the cheap half of the fast
 * path, 100-1000x cycle-accurate throughput.
 *
 * Replay walks the fitted per-interval ticks in instruction space.
 * Each tick progresses at an effective IPC: the tick's fitted IPC,
 * capped by the target configuration's narrowest pipeline width and
 * scaled by the owning phase's measured fetch-throttle response (the
 * DTM actuator). Every other counter is emitted at the owning phase's
 * fitted per-instruction rate (per-cycle for committed-nothing stall
 * ticks), so the power model sees activity consistent with the
 * synthesized progress — including the interval-scale power
 * fluctuations closed-loop hysteresis policies react to. All
 * arithmetic is plain single-threaded double + llround —
 * bit-identical at any TH_THREADS.
 */

#ifndef TH_INTERVAL_REPLAY_H
#define TH_INTERVAL_REPLAY_H

#include "core/params.h"
#include "dtm/engine.h"
#include "interval/model.h"

namespace th {

/**
 * Drives DtmEngine (or any interval consumer) from a fitted model
 * under a target configuration in the same family. The model must
 * outlive the source. Single-use, like a warmed-up Core: construct a
 * fresh one per replayed run.
 */
class ReplayIntervalSource : public IntervalSource
{
  public:
    ReplayIntervalSource(const IntervalModel &model,
                         const CoreConfig &target);

    void setFetchThrottle(int on, int period) override;
    CoreResult runFor(std::uint64_t cycles) override;
    bool done() const override;

  private:
    /** Move to the next tick and reload its remaining work. */
    void advanceTick();
    /** Measured IPC scale of @p phase at a fetch duty (interpolated
     *  through the phase's table, or the workload fallback). */
    double throttleScale(std::size_t phase, double duty) const;

    const IntervalModel &model_;
    const CoreConfig &target_;

    std::size_t tick_ = 0;
    std::uint64_t remInsts_ = 0;  ///< Committed insts left in tick.
    std::uint64_t remCycles_ = 0; ///< Cycles left (stall ticks).

    /** IPC ceiling from the target's narrowest pipeline width. */
    double widthCap_ = 1.0;

    int fetchOn_ = 1;
    int fetchPeriod_ = 1;
};

} // namespace th

#endif // TH_INTERVAL_REPLAY_H
