#include "interval/fitter.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "interval/stats_ops.h"

namespace th {

namespace {

/** Add @p from's buckets/moments into @p into (same-shape histograms). */
void
accumulateHistogram(Histogram &into, const Histogram &from)
{
    if (from.count() == 0)
        return;
    std::vector<std::uint64_t> buckets = into.buckets();
    if (buckets.size() != from.buckets().size())
        fatal("interval fit: histogram shape mismatch (%zu vs %zu)",
              buckets.size(), from.buckets().size());
    for (std::size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += from.buckets()[i];
    const bool was_empty = into.count() == 0;
    const double mn =
        was_empty ? from.min() : std::min(into.min(), from.min());
    const double mx =
        was_empty ? from.max() : std::max(into.max(), from.max());
    into.restore(from.lo(), from.hi(), std::move(buckets),
                 into.count() + from.count(), into.sum() + from.sum(),
                 mn, mx);
}

/** Fold one fit interval's delta stats into an aggregate CoreResult. */
void
accumulateResult(CoreResult &into, const CoreResult &r)
{
    zipCoreCounters(into, r, [](Counter &acc, const Counter &from) {
        acc.inc(from.value());
    });
    accumulateHistogram(into.perf.valueWidthBits, r.perf.valueWidthBits);
    into.freqGhz = r.freqGhz;
}

/** Fold one fit interval's delta stats into a phase aggregate. */
void
accumulateInterval(IntervalPhase &phase, const CoreResult &r)
{
    phase.cycles += r.perf.cycles.value();
    accumulateResult(phase.stats, r);
}

/** What one calibration run attributed to one phase: pro-rated
 *  progression totals plus the chunk-granular counter aggregate. */
struct PhaseProbe
{
    double cycles = 0.0;
    double insts = 0.0;
    CoreResult stats; ///< Whole chunks, attributed by midpoint.
    bool any = false; ///< Whether any chunk landed in `stats`.
};

/**
 * Fresh run with the fetch throttle pinned at @p on / @p period,
 * stepped in fit-interval chunks until it reaches the fitting run's
 * instruction count (or @p opts.throttleFitCycles, the safety cap).
 * The throttled core walks the same instruction stream as the fit, so
 * each chunk's cycles/instructions are attributed to the fitted
 * phases by the phases' cumulative instruction boundaries — an
 * equal-cycles comparison would grade the throttled core on an
 * earlier (and differently-behaved) stretch of the trace.
 */
std::vector<PhaseProbe>
runThrottleProbe(const BenchmarkProfile &profile, const CoreConfig &cfg,
                 const IntervalOptions &opts, const IntervalModel &m,
                 int on, int period, const CancelToken *cancel)
{
    std::vector<double> bound(m.phases.size());
    double cum = 0.0;
    for (std::size_t i = 0; i < m.phases.size(); ++i) {
        cum += static_cast<double>(
            m.phases[i].stats.perf.committedInsts.value());
        bound[i] = cum;
    }

    SyntheticTrace trace(profile);
    Core core(cfg);
    core.beginRun(trace, opts.warmupInstructions);
    core.setFetchThrottle(on, period);

    std::vector<PhaseProbe> acc(m.phases.size());
    double insts = 0.0;
    std::uint64_t cycles = 0;
    std::size_t pi = 0;
    while (insts < static_cast<double>(m.totalInstructions) &&
           cycles < opts.throttleFitCycles && !core.runDone()) {
        if (cancel != nullptr && cancel->cancelled())
            throw Cancelled();
        const CoreResult r = core.runFor(opts.fitIntervalCycles);
        const double cc = static_cast<double>(r.perf.cycles.value());
        const double ci =
            static_cast<double>(r.perf.committedInsts.value());
        if (cc <= 0.0)
            break;
        cycles += r.perf.cycles.value();
        // Counters are kept chunk-granular: the whole chunk goes to
        // the phase holding its midpoint instruction.
        {
            const double mid = insts + ci * 0.5;
            std::size_t mp = pi;
            while (mp + 1 < acc.size() && mid >= bound[mp])
                ++mp;
            accumulateResult(acc[mp].stats, r);
            acc[mp].any = true;
        }
        if (ci <= 0.0) { // Fully stalled chunk: charge where we stand.
            acc[pi].cycles += cc;
            continue;
        }
        // Split the chunk across phase boundaries, cycles pro-rated by
        // the instructions each phase received.
        double left = ci;
        while (left > 0.0) {
            // Skip phases already filled (zero-commit stall phases
            // share a boundary with their predecessor and are skipped
            // in the same stride).
            while (pi + 1 < acc.size() && insts >= bound[pi])
                ++pi;
            const double room =
                pi + 1 < acc.size() ? bound[pi] - insts : left;
            const double take = std::min(left, room);
            acc[pi].insts += take;
            acc[pi].cycles += cc * take / ci;
            insts += take;
            left -= take;
        }
    }
    return acc;
}

} // namespace

IntervalModel
fitIntervalModel(const BenchmarkProfile &profile, const CoreConfig &cfg,
                 const IntervalOptions &opts, std::uint64_t family_hash,
                 std::uint64_t fit_config_hash, const CancelToken *cancel)
{
    if (opts.fitIntervalCycles == 0 || opts.fitCycles == 0)
        fatal("interval fit needs positive fitIntervalCycles/fitCycles");
    if (opts.phaseIpcTolerance < 0.0)
        fatal("interval fit needs a non-negative phase IPC tolerance");

    IntervalModel m;
    m.benchmark = profile.name;
    m.familyHash = family_hash;
    m.fitConfigHash = fit_config_hash;
    m.fitFreqGhz = cfg.freqGhz;
    m.fitFetchWidth = cfg.fetchWidth;
    m.fitIssueWidth = cfg.issueWidth;
    m.fitCommitWidth = cfg.commitWidth;
    m.intervalCycles = opts.fitIntervalCycles;

    SyntheticTrace trace(profile);
    Core core(cfg);
    core.beginRun(trace, opts.warmupInstructions);

    while (m.totalCycles < opts.fitCycles && !core.runDone()) {
        if (cancel != nullptr && cancel->cancelled())
            throw Cancelled();
        const std::uint64_t want = std::min<std::uint64_t>(
            opts.fitIntervalCycles, opts.fitCycles - m.totalCycles);
        const CoreResult r = core.runFor(want);
        if (r.perf.cycles.value() == 0)
            break; // Trace drained exactly at the boundary.
        m.totalCycles += r.perf.cycles.value();
        m.totalInstructions += r.perf.committedInsts.value();

        // Merge into the trailing phase while the interval's IPC stays
        // within tolerance of the phase mean; otherwise open a phase.
        bool merged = false;
        if (!m.phases.empty()) {
            IntervalPhase &phase = m.phases.back();
            const double phase_ipc = phase.stats.perf.ipc();
            const double tol = opts.phaseIpcTolerance *
                               std::max(phase_ipc, 1e-9);
            if (std::fabs(r.perf.ipc() - phase_ipc) <= tol) {
                accumulateInterval(phase, r);
                merged = true;
            }
        }
        if (!merged) {
            m.phases.emplace_back();
            accumulateInterval(m.phases.back(), r);
        }
        m.ticks.push_back(
            {r.perf.cycles.value(), r.perf.committedInsts.value(),
             static_cast<std::uint32_t>(m.phases.size() - 1)});
    }

    if (m.phases.empty())
        fatal("interval fit of '%s' saw no work (trace drained before "
              "the first fit interval)",
              profile.name.c_str());

    // Fetch-throttle response at the DTM ladder's throttled cadences
    // (dtm/policy.cpp), ascending by duty. Measured, not derived: the
    // pipeline loses fetch groups to taken branches and redirects, so
    // an analytic fetchWidth * duty cap badly overestimates throttled
    // throughput. Each fitted phase's own free-running IPC is the
    // reference for that phase's throttled IPC over the same
    // instruction span.
    if (m.totalInstructions > 0 && opts.throttleFitCycles > 0) {
        const int kOn[] = {1, 1, 3};
        const int kPeriod[] = {4, 2, 4};
        for (std::size_t i = 0; i < 3; ++i) {
            const double duty = static_cast<double>(kOn[i]) /
                                static_cast<double>(kPeriod[i]);
            const std::vector<PhaseProbe> acc = runThrottleProbe(
                profile, cfg, opts, m, kOn[i], kPeriod[i], cancel);
            double tot_cycles = 0.0;
            double tot_insts = 0.0;
            for (std::size_t p = 0; p < acc.size(); ++p) {
                tot_cycles += acc[p].cycles;
                tot_insts += acc[p].insts;
                if (acc[p].any &&
                    acc[p].stats.perf.committedInsts.value() > 0)
                    m.phases[p].bins.push_back({duty, acc[p].stats});
                const double free_ipc = m.phases[p].stats.perf.ipc();
                if (acc[p].cycles <= 0.0 || acc[p].insts <= 0.0 ||
                    free_ipc <= 0.0)
                    continue; // Not reached (or a stall phase).
                const double thr_ipc = acc[p].insts / acc[p].cycles;
                m.phases[p].throttle.push_back(
                    {duty, std::min(1.0, std::max(0.0,
                                                  thr_ipc / free_ipc))});
            }
            const double fit_ipc =
                static_cast<double>(m.totalInstructions) /
                static_cast<double>(m.totalCycles);
            IntervalThrottlePoint agg{duty, duty};
            if (tot_cycles > 0.0 && fit_ipc > 0.0)
                agg.ipcScale = std::min(
                    1.0, std::max(0.0, tot_insts / tot_cycles / fit_ipc));
            m.throttle.push_back(agg);
        }
    }
    return m;
}

} // namespace th
