/**
 * @file
 * Many-core 3D stack simulation: N independent cycle cores (private
 * L1s, per-core trace streams so mixed benchmarks share one stack)
 * over a banked shared L2 contention model and a generated floorplan,
 * closed-loop per-core DTM on top.
 *
 * Each control interval the engine steps every core for its policy's
 * share of the interval (fanned across th::ThreadPool — cores are
 * independent, results reduce in core order, so any TH_THREADS value
 * is bit-identical), converts each core's activity delta into that
 * core's block powers, deposits the per-core map plus the
 * access-weighted L2 bank powers onto one shared thermal grid, and
 * marches the transient stepper. Every core then gets its own ladder
 * decision from its own block-peak temperature: only the hot core
 * throttles, and neighbour cores feel it purely through the silicon.
 */

#ifndef TH_MULTICORE_MULTICORE_H
#define TH_MULTICORE_MULTICORE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "core/params.h"
#include "dtm/engine.h"
#include "power/power_model.h"
#include "thermal/hotspot.h"
#include "trace/generator.h"

namespace th {

/** Knobs of one many-core run (hashed by multicoreConfigHash). */
struct MulticoreConfig
{
    /** Cores on the stack. */
    int numCores = 2;
    /** Shared-L2 banks in the generated floorplan and queue model. */
    int l2Banks = 4;
    /** Bank busy cycles per L2 access (queue model service time). */
    int l2BankServiceCycles = 4;
    /** Outstanding-miss window per core (overlap hides queue delay). */
    int l2MshrPerCore = 8;
    /**
     * Per-core benchmark mix, cycled over the cores (core c runs
     * benchmarks[c % size]); empty = the caller's default benchmark
     * on every core.
     */
    std::vector<std::string> benchmarks;
    /** Per-core DTM knobs (each core owns a policy ladder instance). */
    DtmOptions dtm;
};

/** Final per-core row of a many-core run. */
struct MulticoreCoreStats
{
    std::string benchmark;
    double ipcFree = 0.0;      ///< Unthrottled interval-0 IPC.
    double ipcEffective = 0.0; ///< Committed / wall cycles.
    double throttleDuty = 0.0; ///< Mean capacity removed by DTM.
    double perfLost = 0.0;     ///< 1 - effective / free IPC.
    double startPeakK = 0.0;   ///< Core block peak, free-running field.
    double peakK = 0.0;        ///< Hottest core block peak over the run.
    double finalPeakK = 0.0;   ///< Core block peak at run end.
    /** Dilated time this core's block peak spent above the trigger. */
    double timeAboveTriggerS = 0.0;
    std::uint64_t wallCycles = 0;
    std::uint64_t committed = 0;
    std::uint64_t l2Accesses = 0;
    /** Mean shared-L2 queueing latency per access (cycles). */
    double extraMissCycles = 0.0;
    /** Contention stall cycles / wall cycles. */
    double contentionStallFrac = 0.0;
};

/** Final per-bank row of the shared-L2 model. */
struct MulticoreBankStats
{
    std::uint64_t accesses = 0;
    double occupancy = 0.0;     ///< Mean busy fraction.
    double peakOccupancy = 0.0; ///< Hottest single interval.
};

/** Results of one many-core run (serialized by io/serialize.h). */
struct MulticoreReport
{
    std::string config; ///< Configuration display name.
    std::string policy; ///< dtmPolicyName() of the per-core policies.
    double triggerK = 0.0;
    double freqGhz = 0.0;
    std::uint32_t numCores = 0;
    std::uint32_t l2Banks = 0;
    std::uint32_t intervals = 0; ///< Control intervals completed.

    double startPeakK = 0.0; ///< Stack peak of the free-running field.
    double peakK = 0.0;      ///< Hottest instantaneous stack peak.
    double finalPeakK = 0.0;

    double totalTimeS = 0.0;        ///< Dilated time simulated.
    double timeAboveTriggerS = 0.0; ///< Dilated time above trigger.
    double throughputIpc = 0.0;     ///< Sum of per-core effective IPCs.

    std::vector<MulticoreCoreStats> cores;
    std::vector<MulticoreBankStats> banks;
};

/**
 * The many-core interval-coupling engine. Stateless across runs, like
 * DtmEngine: construct once per System, call run() per configuration.
 * The power model must already be calibrated.
 */
class MulticoreSystem
{
  public:
    MulticoreSystem(const PowerModel &power, const HotspotModel &hotspot);

    /**
     * Run the closed loop. @p profiles holds one benchmark profile per
     * core (size must equal mc.numCores); @p cfg supplies the core
     * microarchitecture, frequency, and planar/stacked selection the
     * generated floorplan follows.
     *
     * @p scheme selects the transient integrator exactly as in
     * DtmEngine::run — the cycle-accurate default keeps the explicit
     * stepper.
     */
    MulticoreReport run(const std::vector<BenchmarkProfile> &profiles,
                        const CoreConfig &cfg,
                        const std::string &config_name,
                        const MulticoreConfig &mc,
                        const CancelToken *cancel = nullptr,
                        TransientScheme scheme =
                            TransientScheme::Explicit) const;

  private:
    const PowerModel &power_;
    const HotspotModel &hotspot_;
};

} // namespace th

#endif // TH_MULTICORE_MULTICORE_H
