/**
 * @file
 * Banked shared-L2 contention model for the many-core stack.
 *
 * The cycle cores keep their private hierarchies (coherence-free
 * sharing: no inter-core invalidations exist in the trace-driven
 * model), so sharing cost is modelled analytically per control
 * interval from each core's observed L2 access count: accesses
 * interleave across @c banks equal banks, each bank serves one access
 * per @c serviceCycles cycles, and a core's requests queue behind the
 * other cores' bank occupancy. The model never perturbs the cycle
 * cores — contention surfaces as per-core extra miss latency and
 * per-bank occupancy statistics, and is exactly zero when a core has
 * the stack to itself (the single-core and, per bank-private slicing,
 * the dual-core paper baseline).
 */

#ifndef TH_MULTICORE_CONTENTION_H
#define TH_MULTICORE_CONTENTION_H

#include <cstdint>
#include <vector>

namespace th {

/** One interval's contention outcome for a single core. */
struct CoreContention
{
    /** Mean extra queueing latency per L2 access (cycles). */
    double extraPerAccess = 0.0;
    /** Stall cycles charged to the core after MSHR overlap hiding. */
    double stallCycles = 0.0;
};

/**
 * Deterministic queueing model of a banked shared L2. Feed it one
 * vector of per-core L2 access counts per control interval; it
 * returns the per-core contention share and accumulates per-bank
 * occupancy statistics across the run. Pure arithmetic on the access
 * counts — bit-identical for any thread count or evaluation order.
 */
class BankedL2Model
{
  public:
    /**
     * @param banks            Number of L2 banks (>= 1).
     * @param service_cycles   Bank busy cycles per access.
     * @param mshr_per_core    Outstanding-miss window per core; the
     *                         memory-level parallelism that overlaps
     *                         queueing delay (>= 1).
     */
    BankedL2Model(int banks, int service_cycles, int mshr_per_core);

    /**
     * Account one control interval. @p accesses holds each core's L2
     * access count for the interval; @p interval_cycles its length.
     * Returns one CoreContention per core, in core order.
     */
    std::vector<CoreContention>
    step(const std::vector<std::uint64_t> &accesses,
         std::uint64_t interval_cycles);

    int banks() const { return banks_; }

    /** Total accesses routed to bank @p b so far (round-robin split). */
    std::uint64_t bankAccesses(int b) const;
    /** Mean busy fraction of bank @p b over the stepped intervals. */
    double bankOccupancy(int b) const;
    /** Highest single-interval busy fraction of bank @p b. */
    double bankPeakOccupancy(int b) const;
    /** Share of the last interval's accesses landing on bank @p b
     *  (1/banks when the interval had no accesses). */
    double bankShare(int b) const;

  private:
    int banks_;
    double service_;
    double mshr_;
    std::uint64_t intervals_ = 0;
    std::vector<std::uint64_t> bank_accesses_;
    std::vector<double> occ_sum_;
    std::vector<double> occ_peak_;
    std::vector<double> last_share_;
};

} // namespace th

#endif // TH_MULTICORE_CONTENTION_H
