#include "multicore/contention.h"

#include <algorithm>

#include "common/log.h"

namespace th {

BankedL2Model::BankedL2Model(int banks, int service_cycles,
                             int mshr_per_core)
    : banks_(banks), service_(static_cast<double>(service_cycles)),
      mshr_(static_cast<double>(mshr_per_core))
{
    if (banks < 1)
        fatal("banked L2 needs at least 1 bank (got %d)", banks);
    if (service_cycles < 1)
        fatal("banked L2 needs a positive service time (got %d)",
              service_cycles);
    if (mshr_per_core < 1)
        fatal("banked L2 needs at least 1 MSHR per core (got %d)",
              mshr_per_core);
    bank_accesses_.assign(static_cast<size_t>(banks), 0);
    occ_sum_.assign(static_cast<size_t>(banks), 0.0);
    occ_peak_.assign(static_cast<size_t>(banks), 0.0);
    last_share_.assign(static_cast<size_t>(banks),
                       1.0 / static_cast<double>(banks));
}

std::vector<CoreContention>
BankedL2Model::step(const std::vector<std::uint64_t> &accesses,
                    std::uint64_t interval_cycles)
{
    if (interval_cycles == 0)
        fatal("banked L2 stepped over an empty interval");

    std::uint64_t total = 0;
    for (const std::uint64_t a : accesses)
        total += a;

    // Address-interleaved banking: the aggregate stream splits evenly
    // across banks, with the integer remainder assigned to the lowest
    // bank indices (a fixed round-robin, so reruns are bit-identical).
    const auto nb = static_cast<std::uint64_t>(banks_);
    const double cyc = static_cast<double>(interval_cycles);
    for (std::uint64_t b = 0; b < nb; ++b) {
        const std::uint64_t share = total / nb + (b < total % nb ? 1 : 0);
        bank_accesses_[b] += share;
        const double occ = std::min(
            1.0, static_cast<double>(share) * service_ / cyc);
        occ_sum_[b] += occ;
        occ_peak_[b] = std::max(occ_peak_[b], occ);
        last_share_[b] = total > 0
            ? static_cast<double>(share) / static_cast<double>(total)
            : 1.0 / static_cast<double>(banks_);
    }
    ++intervals_;

    // Per-core queueing delay: a request of core c arrives at a bank
    // that is busy with *other* cores' traffic for rho_other of the
    // time, and waits half a residual service slot plus the M/D/1-ish
    // queue growth term 1/(1 - rho). The MSHR window overlaps
    // outstanding misses, so only 1/mshr of the aggregate delay
    // surfaces as pipeline stall. rho_other == 0 (no other traffic)
    // gives exactly zero — the degenerate single-owner case.
    const double denom = static_cast<double>(banks_) * cyc;
    const double rho_all =
        std::min(0.95, static_cast<double>(total) * service_ / denom);
    std::vector<CoreContention> out(accesses.size());
    for (size_t c = 0; c < accesses.size(); ++c) {
        const double others =
            static_cast<double>(total - accesses[c]) * service_ / denom;
        const double rho_other = std::min(0.95, others);
        CoreContention cc;
        cc.extraPerAccess =
            service_ * rho_other / (2.0 * (1.0 - rho_all));
        cc.stallCycles = static_cast<double>(accesses[c]) *
            cc.extraPerAccess / mshr_;
        out[c] = cc;
    }
    return out;
}

std::uint64_t
BankedL2Model::bankAccesses(int b) const
{
    return bank_accesses_[static_cast<size_t>(b)];
}

double
BankedL2Model::bankOccupancy(int b) const
{
    return intervals_ > 0
        ? occ_sum_[static_cast<size_t>(b)] /
              static_cast<double>(intervals_)
        : 0.0;
}

double
BankedL2Model::bankPeakOccupancy(int b) const
{
    return occ_peak_[static_cast<size_t>(b)];
}

double
BankedL2Model::bankShare(int b) const
{
    return last_share_[static_cast<size_t>(b)];
}

} // namespace th
