#include "multicore/multicore.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/log.h"
#include "common/threadpool.h"
#include "core/pipeline.h"
#include "floorplan/floorplan.h"
#include "multicore/contention.h"
#include "thermal/grid.h"

namespace th {

namespace {

/**
 * Deposit one interval's many-core power map. Per-core block powers
 * land on that core's tile scaled by that core's duty; the shared L2
 * strip receives every core's (duty-scaled) L2 contribution split
 * across banks by access share. Chip-level clock and leakage scale
 * from the calibrated reference chip by the core-count ratio (the
 * generated chip area scales the same way); the clock over the shared
 * L2 region gates with the mean core duty.
 */
void
depositMulticorePower(ThermalGrid &grid, const Floorplan &fp,
                      const std::vector<PowerResult> &powers,
                      const std::vector<double> &duties,
                      const BankedL2Model &l2, bool stacked)
{
    const int dies = stacked ? kNumDies : 1;
    const double total_area = fp.blockArea();
    const double ref_cores = static_cast<double>(powers[0].numCores);
    const double n = static_cast<double>(powers.size());
    const double clock_w = powers[0].clockW * n / ref_cores;
    const double leak_w = powers[0].leakW * n / ref_cores;
    double duty_mean = 0.0;
    for (const double d : duties)
        duty_mean += d;
    duty_mean /= n;

    int bank = 0;
    for (const BlockRect &rect : fp.blocks) {
        const double area_frac = rect.area() / total_area;
        const bool is_l2 = rect.id == BlockId::L2;
        const double share = is_l2 ? l2.bankShare(bank) : 0.0;
        for (int d = 0; d < dies; ++d) {
            double watts;
            if (is_l2) {
                double dyn = 0.0;
                for (size_t c = 0; c < powers.size(); ++c) {
                    dyn += duties[c] *
                        powers[c].l2.dieW[static_cast<size_t>(d)] /
                        ref_cores;
                }
                watts = dyn * share +
                    duty_mean * clock_w * area_frac / dies +
                    leak_w * area_frac / dies;
            } else {
                const auto c = static_cast<size_t>(rect.core);
                const double dyn =
                    powers[c].coreBlocks[static_cast<size_t>(rect.id)]
                        .dieW[static_cast<size_t>(d)];
                watts = duties[c] *
                        (dyn + clock_w * area_frac / dies) +
                    leak_w * area_frac / dies;
            }
            grid.addPower(d, rect.x, rect.y, rect.w, rect.h, watts);
        }
        if (is_l2)
            ++bank;
    }
}

/** Peak temperature over one core's block rectangles, all dies. */
double
corePeakK(const ThermalGrid &grid, const ThermalField &field,
          const Floorplan &fp, int core, int dies)
{
    double peak = 0.0;
    for (const BlockRect &rect : fp.blocks) {
        if (rect.core != core)
            continue;
        for (int d = 0; d < dies; ++d) {
            double avg_k = 0.0;
            double peak_k = 0.0;
            grid.blockTemps(field, d, rect.x, rect.y, rect.w, rect.h,
                            avg_k, peak_k);
            peak = std::max(peak, peak_k);
        }
    }
    return peak;
}

} // namespace

MulticoreSystem::MulticoreSystem(const PowerModel &power,
                                 const HotspotModel &hotspot)
    : power_(power), hotspot_(hotspot)
{
}

MulticoreReport
MulticoreSystem::run(const std::vector<BenchmarkProfile> &profiles,
                     const CoreConfig &cfg,
                     const std::string &config_name,
                     const MulticoreConfig &mc,
                     const CancelToken *cancel,
                     TransientScheme scheme) const
{
    if (!power_.calibrated())
        fatal("multicore engine needs a calibrated power model");
    const int n = mc.numCores;
    if (n < 1)
        fatal("multicore run needs at least 1 core (got %d)", n);
    if (profiles.size() != static_cast<size_t>(n))
        fatal("multicore run got %zu profiles for %d cores",
              profiles.size(), n);
    const DtmOptions &opts = mc.dtm;
    if (opts.intervalCycles == 0 || opts.maxIntervals < 1)
        fatal("multicore DTM needs a positive interval length and count");
    if (opts.gridN < 4)
        fatal("multicore thermal grid too coarse (gridN %d)", opts.gridN);

    const Floorplan fp =
        FloorplanBuilder::generate(n, mc.l2Banks, cfg.stacked);
    ThermalParams tp = hotspot_.params();
    tp.gridN = opts.gridN;
    tp.solver = opts.solver;
    // Keep the dual-core chip-to-spreader ratio (12 mm under 20 mm)
    // when the generated chip outgrows the default package.
    tp.spreaderMm = std::max(
        tp.spreaderMm,
        std::max(fp.chipW, fp.chipH) * 5.0 / 3.0);
    ThermalGrid grid(tp,
                     cfg.stacked ? HotspotModel::stackedStack()
                                 : HotspotModel::planarStack(),
                     fp.chipW, fp.chipH);
    const std::vector<int> die_layers = grid.dieLayers();
    const int dies = cfg.stacked ? kNumDies : 1;

    const double wall_interval_s =
        static_cast<double>(opts.intervalCycles) / (cfg.freqGhz * 1e9);
    const double thermal_interval_s =
        wall_interval_s * opts.timeDilation;

    MulticoreReport rep;
    rep.config = config_name;
    rep.policy = dtmPolicyName(opts.policy);
    rep.triggerK = opts.triggers.triggerK;
    rep.freqGhz = cfg.freqGhz;
    rep.numCores = static_cast<std::uint32_t>(n);
    rep.l2Banks = static_cast<std::uint32_t>(mc.l2Banks);
    rep.cores.resize(static_cast<size_t>(n));

    // Per-core trace streams and cycle cores; each core owns its
    // private hierarchy, so the interval fan-outs below are
    // independent and reduce in core order (bit-identical for any
    // TH_THREADS).
    std::vector<std::unique_ptr<SyntheticTrace>> traces;
    std::vector<std::unique_ptr<Core>> cores;
    traces.reserve(static_cast<size_t>(n));
    cores.reserve(static_cast<size_t>(n));
    for (int c = 0; c < n; ++c) {
        traces.push_back(std::make_unique<SyntheticTrace>(
            profiles[static_cast<size_t>(c)]));
        cores.push_back(std::make_unique<Core>(cfg));
        cores.back()->beginRun(*traces.back(), opts.warmupInstructions);
        rep.cores[static_cast<size_t>(c)].benchmark =
            profiles[static_cast<size_t>(c)].name;
    }
    const auto nsize = static_cast<size_t>(n);

    // Measurement interval: every core free-runs one interval to
    // establish the sustained power map and each core's baseline IPC.
    const std::vector<CoreResult> firsts =
        ThreadPool::global().parallelMap(nsize, [&](size_t c) {
            return cores[c]->runFor(opts.intervalCycles);
        });
    std::vector<PowerResult> powers(nsize);
    for (size_t c = 0; c < nsize; ++c) {
        if (firsts[c].perf.cycles.value() == 0)
            fatal("trace of '%s' drained before the first multicore "
                  "interval",
                  profiles[c].name.c_str());
        powers[c] = power_.compute(firsts[c], cfg);
        rep.cores[c].ipcFree = firsts[c].perf.ipc();
    }

    BankedL2Model l2(mc.l2Banks, mc.l2BankServiceCycles,
                     mc.l2MshrPerCore);
    std::vector<double> duties(nsize, 1.0);
    depositMulticorePower(grid, fp, powers, duties, l2, cfg.stacked);
    const ThermalField init = grid.solve();
    rep.startPeakK = init.peak(die_layers);
    rep.peakK = rep.startPeakK;

    std::vector<double> core_peak_now(nsize);
    for (size_t c = 0; c < nsize; ++c) {
        core_peak_now[c] =
            corePeakK(grid, init, fp, static_cast<int>(c), dies);
        rep.cores[c].startPeakK = core_peak_now[c];
        rep.cores[c].peakK = core_peak_now[c];
    }

    // Same integrator policy as DtmEngine::run.
    constexpr double kImplicitStepsPerInterval = 16.0;
    const double dt_request =
        scheme == TransientScheme::VerticalImplicit
            ? thermal_interval_s / kImplicitStepsPerInterval
            : opts.maxDtS;
    TransientStepper stepper(grid, init, dt_request, scheme);

    std::vector<std::unique_ptr<DtmPolicy>> policies;
    policies.reserve(nsize);
    for (int c = 0; c < n; ++c)
        policies.push_back(makeDtmPolicy(opts.policy, opts.triggers));

    double stack_peak_now = rep.startPeakK;
    std::vector<double> duty_removed(nsize, 0.0);
    std::vector<double> extra_sum(nsize, 0.0);
    std::vector<double> stall_sum(nsize, 0.0);
    std::vector<std::uint64_t> accesses(nsize, 0);

    for (int i = 0; i < opts.maxIntervals; ++i) {
        bool done = false;
        for (size_t c = 0; c < nsize; ++c)
            done = done || cores[c]->runDone();
        if (done)
            break;
        if (cancel != nullptr && cancel->cancelled())
            throw Cancelled();

        // Per-core ladder decisions: each core's policy sees only its
        // own block peak, so only the hot core throttles.
        std::vector<std::uint64_t> run_cycles(nsize);
        std::vector<DtmControl> ctls(nsize);
        for (size_t c = 0; c < nsize; ++c) {
            ctls[c] = policies[c]->decide(core_peak_now[c]);
            cores[c]->setFetchThrottle(ctls[c].fetchOn,
                                       ctls[c].fetchPeriod);
            run_cycles[c] = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(std::llround(
                       ctls[c].clockDuty *
                       static_cast<double>(opts.intervalCycles))));
            duties[c] = ctls[c].clockDuty;
        }

        const std::vector<CoreResult> results =
            ThreadPool::global().parallelMap(nsize, [&](size_t c) {
                return cores[c]->runFor(run_cycles[c]);
            });
        bool drained = false;
        for (size_t c = 0; c < nsize; ++c)
            drained = drained || results[c].perf.cycles.value() == 0;
        if (drained)
            break; // A trace drained exactly at the boundary.

        for (size_t c = 0; c < nsize; ++c) {
            powers[c] = power_.compute(results[c], cfg);
            accesses[c] = results[c].activity.l2Access.value();
        }
        const std::vector<CoreContention> cont =
            l2.step(accesses, opts.intervalCycles);

        grid.clearPower();
        depositMulticorePower(grid, fp, powers, duties, l2,
                              cfg.stacked);
        stepper.advance(thermal_interval_s);
        stack_peak_now = stepper.field().peak(die_layers);

        for (size_t c = 0; c < nsize; ++c) {
            MulticoreCoreStats &row = rep.cores[c];
            row.wallCycles += opts.intervalCycles;
            row.committed += results[c].perf.committedInsts.value();
            row.l2Accesses += accesses[c];
            duty_removed[c] += 1.0 - ctls[c].dutyFraction();
            extra_sum[c] += cont[c].extraPerAccess *
                static_cast<double>(accesses[c]);
            stall_sum[c] += cont[c].stallCycles;
            core_peak_now[c] = corePeakK(grid, stepper.field(), fp,
                                         static_cast<int>(c), dies);
            row.peakK = std::max(row.peakK, core_peak_now[c]);
            if (core_peak_now[c] > opts.triggers.triggerK)
                row.timeAboveTriggerS += thermal_interval_s;
        }
        rep.peakK = std::max(rep.peakK, stack_peak_now);
        ++rep.intervals;
        if (stack_peak_now > opts.triggers.triggerK)
            rep.timeAboveTriggerS += thermal_interval_s;
    }

    rep.finalPeakK = stack_peak_now;
    rep.totalTimeS = stepper.timeS();
    const double ni = static_cast<double>(rep.intervals);
    for (size_t c = 0; c < nsize; ++c) {
        MulticoreCoreStats &row = rep.cores[c];
        row.finalPeakK = core_peak_now[c];
        row.throttleDuty = ni > 0.0 ? duty_removed[c] / ni : 0.0;
        row.ipcEffective = row.wallCycles > 0
            ? static_cast<double>(row.committed) /
                  static_cast<double>(row.wallCycles)
            : 0.0;
        row.perfLost = row.ipcFree > 0.0
            ? std::max(0.0, 1.0 - row.ipcEffective / row.ipcFree)
            : 0.0;
        row.extraMissCycles = row.l2Accesses > 0
            ? extra_sum[c] / static_cast<double>(row.l2Accesses)
            : 0.0;
        row.contentionStallFrac = row.wallCycles > 0
            ? stall_sum[c] / static_cast<double>(row.wallCycles)
            : 0.0;
        rep.throughputIpc += row.ipcEffective;
    }

    rep.banks.resize(static_cast<size_t>(mc.l2Banks));
    for (int b = 0; b < mc.l2Banks; ++b) {
        MulticoreBankStats &row = rep.banks[static_cast<size_t>(b)];
        row.accesses = l2.bankAccesses(b);
        row.occupancy = l2.bankOccupancy(b);
        row.peakOccupancy = l2.bankPeakOccupancy(b);
    }
    return rep;
}

} // namespace th
