/**
 * @file
 * Disk-backed artifact store: persists CoreResults across processes so
 * a warm re-run of a full figure sweep skips core simulation entirely.
 *
 * Entries are keyed by (benchmark, configHash(cfg), schema version);
 * the schema version covers both the CoreResult encoding
 * (io/serialize.h) and the meaning of configHash — bump
 * kStoreSchemaVersion whenever either changes and every stale artifact
 * is invalidated instead of silently misread.
 *
 * Durability contract:
 *  - Commits are atomic: artifacts are written to a temp file in the
 *    store directory and rename()d into place, so readers never see a
 *    half-written entry and concurrent writers of the same key settle
 *    on one complete file.
 *  - Corruption (truncation, bit flips, wrong schema, key mismatch) is
 *    detected by the container's CRC/header checks; bad entries are
 *    quarantined (renamed to *.bad) and the caller recomputes — a
 *    corrupt store degrades performance, never correctness.
 *  - The store is size-capped: after each insert an LRU sweep (by file
 *    mtime) evicts the oldest entries until the cap is respected.
 *
 * Thread model: all methods are safe to call concurrently (one mutex
 * around filesystem transactions; counters are atomics).
 */

#ifndef TH_STORE_ARTIFACT_STORE_H
#define TH_STORE_ARTIFACT_STORE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "core/pipeline.h"
#include "dtm/engine.h"
#include "interval/model.h"
#include "multicore/multicore.h"

namespace th {

/**
 * On-disk schema version. Covers the CoreResult/DtmReport field
 * encodings AND the configHash key semantics: bump it when
 * io/serialize.h changes shape or when sim/configs.cpp's configHash
 * gains/loses/reorders fields (the golden-hash test in
 * tests/test_configs.cpp pins the latter).
 */
inline constexpr std::uint32_t kStoreSchemaVersion = 1;

/** Container format tag of persisted CoreResult artifacts. */
inline constexpr const char *kCoreResultFormatTag = "CRES";

/** Container format tag of persisted DtmReport artifacts. */
inline constexpr const char *kDtmReportFormatTag = "DTMR";

/** Container format tag of persisted IntervalModel artifacts. */
inline constexpr const char *kIntervalModelFormatTag = "IMDL";

/** Container format tag of persisted MulticoreReport artifacts. */
inline constexpr const char *kMulticoreReportFormatTag = "MCRE";

/** Store configuration. */
struct StoreOptions
{
    /** Store directory; empty disables the store. Created on demand. */
    std::string dir;
    /** LRU size cap over all entries; 0 = unlimited. */
    std::uint64_t maxBytes = 256ULL << 20;
};

/** Monotonic operation counters (mirrors System::CacheStats). */
struct StoreStats
{
    std::uint64_t hits = 0;      ///< Loads served from disk.
    std::uint64_t misses = 0;    ///< Key absent (or entry unreadable).
    std::uint64_t stores = 0;    ///< Artifacts committed.
    std::uint64_t evictions = 0; ///< Entries removed by the LRU cap.
    std::uint64_t corrupt = 0;   ///< Entries quarantined as invalid.
    /** LRU recency touches that failed (read-only store dir or a
     *  filesystem rejecting mtime updates): hits stop refreshing
     *  recency, so gc may evict hot entries first. */
    std::uint64_t touchFailures = 0;
    /** Transactions that lost a race with a concurrent process — the
     *  entry vanished (evicted/gc'd elsewhere) between our check and
     *  our operation. Benign: the caller recomputes or skips; counted
     *  separately from touchFailures/corrupt so a shared store under
     *  multi-process load is distinguishable from a broken one. */
    std::uint64_t raceLost = 0;
};

class ArtifactStore
{
  public:
    explicit ArtifactStore(const StoreOptions &opts);
    virtual ~ArtifactStore() = default;

    /** False when constructed with an empty directory. */
    bool enabled() const { return !opts_.dir.empty(); }
    const std::string &dir() const { return opts_.dir; }

    /**
     * Look up the result of (benchmark, cfg_hash). True on a verified
     * hit; false on absence or on a corrupt entry (which is counted,
     * quarantined, and warned about — the caller just recomputes).
     */
    bool loadCoreResult(const std::string &benchmark,
                        std::uint64_t cfg_hash, CoreResult &out);

    /** Persist a result (atomic commit + LRU sweep). */
    bool storeCoreResult(const std::string &benchmark,
                         std::uint64_t cfg_hash, const CoreResult &r);

    /**
     * DtmReport variants — same contract as the CoreResult pair.
     * @p key folds the config hash with every DtmOptions knob (see
     * System::runDtm), so distinct DTM setups never alias.
     */
    bool loadDtmReport(const std::string &benchmark, std::uint64_t key,
                       DtmReport &out);
    bool storeDtmReport(const std::string &benchmark, std::uint64_t key,
                        const DtmReport &rep);

    /**
     * IntervalModel variants — same contract as the CoreResult pair.
     * @p key is intervalModelKey(cfg, opts) (sim/configs.h): the
     * config-family hash folded with every fitting knob.
     */
    bool loadIntervalModel(const std::string &benchmark,
                           std::uint64_t key, IntervalModel &out);
    bool storeIntervalModel(const std::string &benchmark,
                            std::uint64_t key, const IntervalModel &m);

    /**
     * MulticoreReport variants — same contract as the CoreResult pair.
     * @p key is multicoreConfigHash(cfg, mc) (sim/configs.h); the
     * @p benchmark string names the whole per-core mix (the resolved
     * benchmark names joined with '+'), so distinct mixes never alias.
     */
    bool loadMulticoreReport(const std::string &benchmark,
                             std::uint64_t key, MulticoreReport &out);
    bool storeMulticoreReport(const std::string &benchmark,
                              std::uint64_t key,
                              const MulticoreReport &rep);

    StoreStats stats() const;

    /** One store entry as seen by maintenance commands. */
    struct Entry
    {
        std::string path;
        std::string benchmark; ///< Empty when unreadable.
        std::uint64_t cfgHash = 0;
        std::uint64_t bytes = 0;
        std::int64_t mtimeNs = 0; ///< For LRU ordering / display.
        bool quarantined = false; ///< *.bad leftover.
        /** "CRES"/"DTMR"/"IMDL"/"MCRE"; "" if unreadable. */
        std::string format;
    };

    /** All entries (valid and quarantined), oldest first. */
    std::vector<Entry> list() const;

    /**
     * Evict quarantined files, then oldest entries, until the live
     * total is <= @p max_bytes. Returns the number of files removed.
     */
    int gc(std::uint64_t max_bytes);

    /**
     * What gc(@p max_bytes) would evict, in eviction order
     * (quarantined files first, then oldest live entries until the
     * live total fits), without removing anything — the `store gc
     * --dry-run` view. Best-effort snapshot: a concurrent writer can
     * change the real gc's choices.
     */
    std::vector<Entry> gcPlan(std::uint64_t max_bytes) const;

    /**
     * Re-validate every entry, quarantining corrupt ones.
     * @return The number of entries found invalid.
     */
    int verify();

  protected:
    /**
     * Refresh @p path's mtime so the LRU sweep sees this hit as
     * recent. Virtual as a failure-injection seam: tests override it
     * to exercise the touch-failure accounting without needing a
     * filesystem that rejects mtime updates. True on success. Called
     * with mu_ held (part of the load transaction).
     */
    virtual bool touchEntry(const std::string &path) TH_REQUIRES(mu_);

  private:
    std::string entryPath(const std::string &benchmark,
                          std::uint64_t cfg_hash) const;
    std::string dtmEntryPath(const std::string &benchmark,
                             std::uint64_t key) const;
    std::string intervalEntryPath(const std::string &benchmark,
                                  std::uint64_t key) const;
    std::string multicoreEntryPath(const std::string &benchmark,
                                   std::uint64_t key) const;
    bool readEntry(const std::string &path, const std::string &benchmark,
                   std::uint64_t cfg_hash, CoreResult *out) const
        TH_REQUIRES(mu_);
    bool readDtmEntry(const std::string &path,
                      const std::string &benchmark, std::uint64_t key,
                      DtmReport *out) const TH_REQUIRES(mu_);
    bool readIntervalEntry(const std::string &path,
                           const std::string &benchmark,
                           std::uint64_t key, IntervalModel *out) const
        TH_REQUIRES(mu_);
    bool readMulticoreEntry(const std::string &path,
                            const std::string &benchmark,
                            std::uint64_t key, MulticoreReport *out)
        const TH_REQUIRES(mu_);
    void quarantine(const std::string &path) TH_REQUIRES(mu_);
    /** Count a failed touchEntry and warn the first time. */
    void noteTouchFailure(const std::string &path) TH_REQUIRES(mu_);
    /** True when @p path no longer exists — a concurrent process won
     *  the race; the failure is benign and counted under raceLost. */
    bool noteIfRaceLost(const std::string &path) TH_REQUIRES(mu_);
    /** Enforce opts_.maxBytes; caller holds mu_. */
    void enforceCapLocked() TH_REQUIRES(mu_);

    StoreOptions opts_;
    /** Serializes filesystem transactions: the guarded state is the
     *  store directory itself (lookup/commit/quarantine/evict must not
     *  interleave); the TH_REQUIRES methods above are its data set. */
    mutable Mutex mu_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> stores_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> corrupt_{0};
    std::atomic<std::uint64_t> touch_failures_{0};
    std::atomic<std::uint64_t> race_lost_{0};
    std::atomic<bool> touch_warned_{false};
};

} // namespace th

#endif // TH_STORE_ARTIFACT_STORE_H
