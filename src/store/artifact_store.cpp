#include "store/artifact_store.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <system_error>

#include <unistd.h>

#include "common/log.h"
#include "io/serialize.h"

namespace fs = std::filesystem;

namespace th {

namespace {

/** Extension of committed CoreResult artifacts. */
constexpr const char *kEntryExt = ".cr";
/** Extension of committed DtmReport artifacts. */
constexpr const char *kDtmExt = ".dtm";
/** Extension of committed IntervalModel artifacts. */
constexpr const char *kIntervalExt = ".imdl";
/** Extension of committed MulticoreReport artifacts. */
constexpr const char *kMulticoreExt = ".mc";
/** Extension quarantined (corrupt) artifacts are renamed to. */
constexpr const char *kBadExt = ".bad";

/** Monotonic discriminator for temp-file names within a process. */
std::atomic<std::uint64_t> tmp_counter{0};

std::string
sanitize(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                        c == '.';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::int64_t
mtimeNsOf(const fs::path &p)
{
    std::error_code ec;
    const auto t = fs::last_write_time(p, ec);
    if (ec)
        return 0;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
}

} // namespace

ArtifactStore::ArtifactStore(const StoreOptions &opts) : opts_(opts)
{
    if (opts_.dir.empty())
        return;
    std::error_code ec;
    fs::create_directories(opts_.dir, ec);
    if (ec) {
        warn("artifact store: cannot create '%s' (%s); store disabled",
             opts_.dir.c_str(), ec.message().c_str());
        opts_.dir.clear();
    }
}

std::string
ArtifactStore::entryPath(const std::string &benchmark,
                         std::uint64_t cfg_hash) const
{
    return (fs::path(opts_.dir) /
            strformat("%s-%016llx%s", sanitize(benchmark).c_str(),
                      static_cast<unsigned long long>(cfg_hash),
                      kEntryExt))
        .string();
}

std::string
ArtifactStore::dtmEntryPath(const std::string &benchmark,
                            std::uint64_t key) const
{
    return (fs::path(opts_.dir) /
            strformat("%s-%016llx%s", sanitize(benchmark).c_str(),
                      static_cast<unsigned long long>(key), kDtmExt))
        .string();
}

std::string
ArtifactStore::intervalEntryPath(const std::string &benchmark,
                                 std::uint64_t key) const
{
    return (fs::path(opts_.dir) /
            strformat("%s-%016llx%s", sanitize(benchmark).c_str(),
                      static_cast<unsigned long long>(key),
                      kIntervalExt))
        .string();
}

std::string
ArtifactStore::multicoreEntryPath(const std::string &benchmark,
                                  std::uint64_t key) const
{
    return (fs::path(opts_.dir) /
            strformat("%s-%016llx%s", sanitize(benchmark).c_str(),
                      static_cast<unsigned long long>(key),
                      kMulticoreExt))
        .string();
}

bool
ArtifactStore::readEntry(const std::string &path,
                         const std::string &benchmark,
                         std::uint64_t cfg_hash, CoreResult *out) const
{
    std::uint32_t schema = 0;
    std::string err;
    ChunkFileReader reader;
    if (!reader.open(path, kCoreResultFormatTag, schema, err))
        return false;
    if (schema != kStoreSchemaVersion)
        return false;

    bool meta_ok = false, result_ok = false;
    std::string tag;
    std::vector<std::uint8_t> payload;
    for (;;) {
        const ChunkReader::Next what = reader.next(tag, payload, err);
        if (what == ChunkReader::Next::End)
            break;
        if (what == ChunkReader::Next::Corrupt)
            return false;
        if (tag == "META") {
            Decoder d(payload);
            const std::string bench = d.str();
            const std::uint64_t hash = d.u64();
            if (!d.ok() || bench != benchmark || hash != cfg_hash)
                return false;
            meta_ok = true;
        } else if (tag == "CRES") {
            Decoder d(payload);
            CoreResult r;
            if (!decodeCoreResult(d, r) || !d.atEnd())
                return false;
            if (out)
                *out = r;
            result_ok = true;
        }
    }
    return meta_ok && result_ok;
}

bool
ArtifactStore::readDtmEntry(const std::string &path,
                            const std::string &benchmark,
                            std::uint64_t key, DtmReport *out) const
{
    std::uint32_t schema = 0;
    std::string err;
    ChunkFileReader reader;
    if (!reader.open(path, kDtmReportFormatTag, schema, err))
        return false;
    if (schema != kStoreSchemaVersion)
        return false;

    bool meta_ok = false, result_ok = false;
    std::string tag;
    std::vector<std::uint8_t> payload;
    for (;;) {
        const ChunkReader::Next what = reader.next(tag, payload, err);
        if (what == ChunkReader::Next::End)
            break;
        if (what == ChunkReader::Next::Corrupt)
            return false;
        if (tag == "META") {
            Decoder d(payload);
            const std::string bench = d.str();
            const std::uint64_t hash = d.u64();
            if (!d.ok() || bench != benchmark || hash != key)
                return false;
            meta_ok = true;
        } else if (tag == "DTMR") {
            Decoder d(payload);
            DtmReport r;
            if (!decodeDtmReport(d, r) || !d.atEnd())
                return false;
            if (out)
                *out = r;
            result_ok = true;
        }
    }
    return meta_ok && result_ok;
}

bool
ArtifactStore::readIntervalEntry(const std::string &path,
                                 const std::string &benchmark,
                                 std::uint64_t key,
                                 IntervalModel *out) const
{
    std::uint32_t schema = 0;
    std::string err;
    ChunkFileReader reader;
    if (!reader.open(path, kIntervalModelFormatTag, schema, err))
        return false;
    if (schema != kStoreSchemaVersion)
        return false;

    bool meta_ok = false, result_ok = false;
    std::string tag;
    std::vector<std::uint8_t> payload;
    for (;;) {
        const ChunkReader::Next what = reader.next(tag, payload, err);
        if (what == ChunkReader::Next::End)
            break;
        if (what == ChunkReader::Next::Corrupt)
            return false;
        if (tag == "META") {
            Decoder d(payload);
            const std::string bench = d.str();
            const std::uint64_t hash = d.u64();
            if (!d.ok() || bench != benchmark || hash != key)
                return false;
            meta_ok = true;
        } else if (tag == "IMDL") {
            Decoder d(payload);
            IntervalModel m;
            if (!decodeIntervalModel(d, m) || !d.atEnd())
                return false;
            if (out)
                *out = std::move(m);
            result_ok = true;
        }
    }
    return meta_ok && result_ok;
}

bool
ArtifactStore::readMulticoreEntry(const std::string &path,
                                  const std::string &benchmark,
                                  std::uint64_t key,
                                  MulticoreReport *out) const
{
    std::uint32_t schema = 0;
    std::string err;
    ChunkFileReader reader;
    if (!reader.open(path, kMulticoreReportFormatTag, schema, err))
        return false;
    if (schema != kStoreSchemaVersion)
        return false;

    bool meta_ok = false, result_ok = false;
    std::string tag;
    std::vector<std::uint8_t> payload;
    for (;;) {
        const ChunkReader::Next what = reader.next(tag, payload, err);
        if (what == ChunkReader::Next::End)
            break;
        if (what == ChunkReader::Next::Corrupt)
            return false;
        if (tag == "META") {
            Decoder d(payload);
            const std::string bench = d.str();
            const std::uint64_t hash = d.u64();
            if (!d.ok() || bench != benchmark || hash != key)
                return false;
            meta_ok = true;
        } else if (tag == "MCRE") {
            Decoder d(payload);
            MulticoreReport r;
            if (!decodeMulticoreReport(d, r) || !d.atEnd())
                return false;
            if (out)
                *out = std::move(r);
            result_ok = true;
        }
    }
    return meta_ok && result_ok;
}

bool
ArtifactStore::touchEntry(const std::string &path)
{
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return !ec;
}

void
ArtifactStore::noteTouchFailure(const std::string &path)
{
    touch_failures_.fetch_add(1, std::memory_order_relaxed);
    if (!touch_warned_.exchange(true)) {
        warn("artifact store: cannot refresh recency of '%s'; LRU "
             "eviction may drop recently used entries first",
             path.c_str());
    }
}

bool
ArtifactStore::noteIfRaceLost(const std::string &path)
{
    std::error_code ec;
    if (fs::exists(path, ec))
        return false;
    race_lost_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
ArtifactStore::quarantine(const std::string &path)
{
    std::error_code ec;
    fs::rename(path, path + kBadExt, ec);
    if (ec)
        fs::remove(path, ec); // Last resort: drop the bad entry.
    corrupt_.fetch_add(1, std::memory_order_relaxed);
}

bool
ArtifactStore::loadCoreResult(const std::string &benchmark,
                              std::uint64_t cfg_hash, CoreResult &out)
{
    if (!enabled())
        return false;
    const std::string path = entryPath(benchmark, cfg_hash);

    LockGuard lock(mu_);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (!readEntry(path, benchmark, cfg_hash, &out)) {
        // Distinguish a concurrent eviction (the file vanished under
        // us — benign, another process gc'd it) from real corruption
        // before quarantining: quarantine on ENOENT would manufacture
        // phantom corrupt counts on a shared store.
        if (noteIfRaceLost(path)) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        warn("artifact store: corrupt entry '%s'; quarantined, "
             "recomputing", path.c_str());
        quarantine(path);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    // Touch for LRU: a hit makes the entry recently used. A failed
    // touch does not invalidate the hit, but it is counted — silent
    // failure here makes gc evict the hottest entries first. A touch
    // that failed because the entry vanished is a lost race, not a
    // broken filesystem (the result in hand is still valid).
    if (!touchEntry(path) && !noteIfRaceLost(path))
        noteTouchFailure(path);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
ArtifactStore::loadDtmReport(const std::string &benchmark,
                             std::uint64_t key, DtmReport &out)
{
    if (!enabled())
        return false;
    const std::string path = dtmEntryPath(benchmark, key);

    LockGuard lock(mu_);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (!readDtmEntry(path, benchmark, key, &out)) {
        if (noteIfRaceLost(path)) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        warn("artifact store: corrupt entry '%s'; quarantined, "
             "recomputing", path.c_str());
        quarantine(path);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (!touchEntry(path) && !noteIfRaceLost(path))
        noteTouchFailure(path);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
ArtifactStore::loadIntervalModel(const std::string &benchmark,
                                 std::uint64_t key, IntervalModel &out)
{
    if (!enabled())
        return false;
    const std::string path = intervalEntryPath(benchmark, key);

    LockGuard lock(mu_);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (!readIntervalEntry(path, benchmark, key, &out)) {
        if (noteIfRaceLost(path)) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        warn("artifact store: corrupt entry '%s'; quarantined, "
             "recomputing", path.c_str());
        quarantine(path);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (!touchEntry(path) && !noteIfRaceLost(path))
        noteTouchFailure(path);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
ArtifactStore::loadMulticoreReport(const std::string &benchmark,
                                   std::uint64_t key,
                                   MulticoreReport &out)
{
    if (!enabled())
        return false;
    const std::string path = multicoreEntryPath(benchmark, key);

    LockGuard lock(mu_);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (!readMulticoreEntry(path, benchmark, key, &out)) {
        if (noteIfRaceLost(path)) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        warn("artifact store: corrupt entry '%s'; quarantined, "
             "recomputing", path.c_str());
        quarantine(path);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (!touchEntry(path) && !noteIfRaceLost(path))
        noteTouchFailure(path);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
ArtifactStore::storeMulticoreReport(const std::string &benchmark,
                                    std::uint64_t key,
                                    const MulticoreReport &rep)
{
    if (!enabled())
        return false;
    const std::string path = multicoreEntryPath(benchmark, key);
    const std::string tmp = strformat(
        "%s.tmp.%d.%llu", path.c_str(), static_cast<int>(getpid()),
        static_cast<unsigned long long>(
            tmp_counter.fetch_add(1, std::memory_order_relaxed)));

    Encoder meta;
    meta.str(benchmark);
    meta.u64(key);
    Encoder body;
    encodeMulticoreReport(body, rep);

    LockGuard lock(mu_);
    ChunkFileWriter writer;
    bool ok = writer.open(tmp, kMulticoreReportFormatTag,
                          kStoreSchemaVersion);
    ok = ok && writer.chunk("META", meta);
    ok = ok && writer.chunk("MCRE", body);
    ok = writer.close() && ok;
    if (!ok) {
        warn("artifact store: failed to write '%s'", tmp.c_str());
        std::error_code ec;
        fs::remove(tmp, ec);
        return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec); // Atomic commit.
    if (ec) {
        warn("artifact store: cannot commit '%s' (%s)", path.c_str(),
             ec.message().c_str());
        fs::remove(tmp, ec);
        return false;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    enforceCapLocked();
    return true;
}

bool
ArtifactStore::storeIntervalModel(const std::string &benchmark,
                                  std::uint64_t key,
                                  const IntervalModel &m)
{
    if (!enabled())
        return false;
    const std::string path = intervalEntryPath(benchmark, key);
    const std::string tmp = strformat(
        "%s.tmp.%d.%llu", path.c_str(), static_cast<int>(getpid()),
        static_cast<unsigned long long>(
            tmp_counter.fetch_add(1, std::memory_order_relaxed)));

    Encoder meta;
    meta.str(benchmark);
    meta.u64(key);
    Encoder body;
    encodeIntervalModel(body, m);

    LockGuard lock(mu_);
    ChunkFileWriter writer;
    bool ok =
        writer.open(tmp, kIntervalModelFormatTag, kStoreSchemaVersion);
    ok = ok && writer.chunk("META", meta);
    ok = ok && writer.chunk("IMDL", body);
    ok = writer.close() && ok;
    if (!ok) {
        warn("artifact store: failed to write '%s'", tmp.c_str());
        std::error_code ec;
        fs::remove(tmp, ec);
        return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec); // Atomic commit.
    if (ec) {
        warn("artifact store: cannot commit '%s' (%s)", path.c_str(),
             ec.message().c_str());
        fs::remove(tmp, ec);
        return false;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    enforceCapLocked();
    return true;
}

bool
ArtifactStore::storeDtmReport(const std::string &benchmark,
                              std::uint64_t key, const DtmReport &rep)
{
    if (!enabled())
        return false;
    const std::string path = dtmEntryPath(benchmark, key);
    const std::string tmp = strformat(
        "%s.tmp.%d.%llu", path.c_str(), static_cast<int>(getpid()),
        static_cast<unsigned long long>(
            tmp_counter.fetch_add(1, std::memory_order_relaxed)));

    Encoder meta;
    meta.str(benchmark);
    meta.u64(key);
    Encoder body;
    encodeDtmReport(body, rep);

    LockGuard lock(mu_);
    ChunkFileWriter writer;
    bool ok = writer.open(tmp, kDtmReportFormatTag, kStoreSchemaVersion);
    ok = ok && writer.chunk("META", meta);
    ok = ok && writer.chunk("DTMR", body);
    ok = writer.close() && ok;
    if (!ok) {
        warn("artifact store: failed to write '%s'", tmp.c_str());
        std::error_code ec;
        fs::remove(tmp, ec);
        return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec); // Atomic commit.
    if (ec) {
        warn("artifact store: cannot commit '%s' (%s)", path.c_str(),
             ec.message().c_str());
        fs::remove(tmp, ec);
        return false;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    enforceCapLocked();
    return true;
}

bool
ArtifactStore::storeCoreResult(const std::string &benchmark,
                               std::uint64_t cfg_hash,
                               const CoreResult &r)
{
    if (!enabled())
        return false;
    const std::string path = entryPath(benchmark, cfg_hash);
    const std::string tmp = strformat(
        "%s.tmp.%d.%llu", path.c_str(), static_cast<int>(getpid()),
        static_cast<unsigned long long>(
            tmp_counter.fetch_add(1, std::memory_order_relaxed)));

    Encoder meta;
    meta.str(benchmark);
    meta.u64(cfg_hash);
    Encoder cres;
    encodeCoreResult(cres, r);

    LockGuard lock(mu_);
    ChunkFileWriter writer;
    bool ok = writer.open(tmp, kCoreResultFormatTag, kStoreSchemaVersion);
    ok = ok && writer.chunk("META", meta);
    ok = ok && writer.chunk("CRES", cres);
    ok = writer.close() && ok;
    if (!ok) {
        warn("artifact store: failed to write '%s'", tmp.c_str());
        std::error_code ec;
        fs::remove(tmp, ec);
        return false;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec); // Atomic commit.
    if (ec) {
        warn("artifact store: cannot commit '%s' (%s)", path.c_str(),
             ec.message().c_str());
        fs::remove(tmp, ec);
        return false;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    enforceCapLocked();
    return true;
}

StoreStats
ArtifactStore::stats() const
{
    StoreStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.stores = stores_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.corrupt = corrupt_.load(std::memory_order_relaxed);
    s.touchFailures = touch_failures_.load(std::memory_order_relaxed);
    s.raceLost = race_lost_.load(std::memory_order_relaxed);
    return s;
}

std::vector<ArtifactStore::Entry>
ArtifactStore::list() const
{
    std::vector<Entry> entries;
    if (!enabled())
        return entries;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(opts_.dir, ec)) {
        const fs::path &p = de.path();
        const std::string name = p.filename().string();
        const bool bad = name.size() > 4 &&
            name.compare(name.size() - 4, 4, kBadExt) == 0;
        const bool core = !bad && p.extension() == kEntryExt;
        const bool dtm = !bad && p.extension() == kDtmExt;
        const bool imdl = !bad && p.extension() == kIntervalExt;
        const bool mcre = !bad && p.extension() == kMulticoreExt;
        if (!bad && !core && !dtm && !imdl && !mcre)
            continue; // Temp files and strangers.
        Entry e;
        e.path = p.string();
        e.quarantined = bad;
        std::error_code sec;
        e.bytes = fs::file_size(p, sec);
        e.mtimeNs = mtimeNsOf(p);
        if (core || dtm || imdl || mcre) {
            // Best-effort metadata read (for display only).
            const char *format = core ? kCoreResultFormatTag
                                 : dtm  ? kDtmReportFormatTag
                                 : imdl ? kIntervalModelFormatTag
                                        : kMulticoreReportFormatTag;
            std::uint32_t schema = 0;
            std::string err, tag;
            std::vector<std::uint8_t> payload;
            ChunkFileReader reader;
            if (reader.open(e.path, format, schema, err) &&
                reader.next(tag, payload, err) ==
                    ChunkReader::Next::Chunk &&
                tag == "META") {
                Decoder d(payload);
                e.benchmark = d.str();
                e.cfgHash = d.u64();
                if (!d.ok()) {
                    e.benchmark.clear();
                    e.cfgHash = 0;
                } else {
                    e.format = format;
                }
            }
        }
        entries.push_back(std::move(e));
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtimeNs != b.mtimeNs ? a.mtimeNs < b.mtimeNs
                                                : a.path < b.path;
              });
    return entries;
}

int
ArtifactStore::gc(std::uint64_t max_bytes)
{
    if (!enabled())
        return 0;
    LockGuard lock(mu_);
    int removed = 0;
    std::uint64_t live_bytes = 0;
    std::vector<Entry> live;
    for (Entry &e : list()) {
        if (e.quarantined) {
            std::error_code ec;
            if (fs::remove(e.path, ec)) {
                ++removed;
                evictions_.fetch_add(1, std::memory_order_relaxed);
            } else if (!ec) {
                // Already gone: a concurrent process removed it first.
                race_lost_.fetch_add(1, std::memory_order_relaxed);
            }
        } else {
            live_bytes += e.bytes;
            live.push_back(std::move(e));
        }
    }
    // Oldest-first eviction until the live set fits.
    for (const Entry &e : live) {
        if (live_bytes <= max_bytes)
            break;
        std::error_code ec;
        if (fs::remove(e.path, ec)) {
            live_bytes -= e.bytes;
            ++removed;
            evictions_.fetch_add(1, std::memory_order_relaxed);
        } else if (!ec) {
            // A concurrent gc won this eviction; its bytes are gone
            // from disk either way, so the cap math still counts them.
            live_bytes -= e.bytes;
            race_lost_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return removed;
}

int
ArtifactStore::verify()
{
    if (!enabled())
        return 0;
    LockGuard lock(mu_);
    int bad = 0;
    for (const Entry &e : list()) {
        if (e.quarantined) {
            ++bad;
            continue;
        }
        // Validate against the key encoded in the filename-independent
        // META chunk; an unreadable META yields an empty benchmark and
        // fails the check below. DTMR/IMDL entries validate with their
        // own readers (the format tag dispatches).
        bool valid;
        if (e.format == kDtmReportFormatTag)
            valid = readDtmEntry(e.path, e.benchmark, e.cfgHash, nullptr);
        else if (e.format == kIntervalModelFormatTag)
            valid = readIntervalEntry(e.path, e.benchmark, e.cfgHash,
                                      nullptr);
        else if (e.format == kMulticoreReportFormatTag)
            valid = readMulticoreEntry(e.path, e.benchmark, e.cfgHash,
                                       nullptr);
        else
            valid = readEntry(e.path, e.benchmark, e.cfgHash, nullptr);
        if (!valid) {
            warn("artifact store: '%s' failed verification; "
                 "quarantined", e.path.c_str());
            quarantine(e.path);
            ++bad;
        }
    }
    return bad;
}

std::vector<ArtifactStore::Entry>
ArtifactStore::gcPlan(std::uint64_t max_bytes) const
{
    std::vector<Entry> plan;
    if (!enabled())
        return plan;
    LockGuard lock(mu_);
    std::uint64_t live_bytes = 0;
    std::vector<Entry> live;
    for (Entry &e : list()) {
        if (e.quarantined) {
            plan.push_back(std::move(e));
        } else {
            live_bytes += e.bytes;
            live.push_back(std::move(e));
        }
    }
    for (Entry &e : live) {
        if (live_bytes <= max_bytes)
            break;
        live_bytes -= e.bytes;
        plan.push_back(std::move(e));
    }
    return plan;
}

void
ArtifactStore::enforceCapLocked()
{
    if (opts_.maxBytes == 0)
        return;
    std::uint64_t total = 0;
    std::vector<Entry> entries = list();
    for (const Entry &e : entries)
        total += e.quarantined ? 0 : e.bytes;
    if (total <= opts_.maxBytes)
        return;
    for (const Entry &e : entries) {
        if (e.quarantined)
            continue;
        std::error_code ec;
        if (fs::remove(e.path, ec)) {
            total -= e.bytes;
            evictions_.fetch_add(1, std::memory_order_relaxed);
        } else if (!ec) {
            // Entry vanished between list() and remove(): another
            // process evicted it. Its bytes left the store regardless.
            total -= e.bytes;
            race_lost_.fetch_add(1, std::memory_order_relaxed);
        }
        if (total <= opts_.maxBytes)
            break;
    }
}

} // namespace th
