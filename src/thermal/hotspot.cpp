#include "thermal/hotspot.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace th {

namespace {

/** Conductivities, W/(m*K). */
constexpr double kCopper = 400.0;
constexpr double kSilicon = 120.0;
/** Phase-change metallic alloy TIM (Section 4). */
constexpr double kTim = 34.0;
/**
 * d2d interface: the via layer itself is 25% copper / 75% air
 * (Section 4), but heat must also cross the bonded BEOL dielectric
 * stacks of both dies; the effective through-plane conductivity of
 * the composite interface is a few W/(m*K).
 */
constexpr double kD2d = 80.0;

} // namespace

double
ThermalReport::blockPeakK(BlockId id) const
{
    double p = 0.0;
    for (const auto &b : blocks)
        if (b.id == id)
            p = std::max(p, b.peakK);
    return p;
}

HotspotModel::HotspotModel(const ThermalParams &params)
    : params_(params)
{
}

std::vector<ThermalLayer>
HotspotModel::planarStack()
{
    return {
        {"sink", 6.9, kCopper, kCopper, -1},
        {"spreader", 0.7, kCopper, kCopper, -1},
        {"tim", 0.075, kTim, 0.0, -1},
        {"die0", 0.30, kSilicon, 0.0, 0},
    };
}

std::vector<ThermalLayer>
HotspotModel::stackedStack()
{
    return {
        {"sink", 6.9, kCopper, kCopper, -1},
        {"spreader", 0.7, kCopper, kCopper, -1},
        {"tim", 0.075, kTim, 0.0, -1},
        {"die0", 0.20, kSilicon, 0.0, 0},
        {"d2d01", 0.010, kD2d, 0.0, -1},
        {"die1", 0.02, kSilicon, 0.0, 1},
        {"d2d12", 0.010, kD2d, 0.0, -1},
        {"die2", 0.02, kSilicon, 0.0, 2},
        {"d2d23", 0.010, kD2d, 0.0, -1},
        {"die3", 0.02, kSilicon, 0.0, 3},
    };
}

ThermalReport
HotspotModel::analyze(const Floorplan &fp, const PowerResult &power,
                      bool stacked, double power_scale) const
{
    const std::vector<ThermalLayer> stack =
        stacked ? stackedStack() : planarStack();
    const int num_layers = static_cast<int>(stack.size());
    ThermalGrid grid(params_, stack, fp.chipW, fp.chipH);

    const int dies = stacked ? kNumDies : 1;
    const double clock_w = power.clockW * power_scale;
    const double leak_nominal_w = power.leakW * power_scale;
    const double total_area = fp.blockArea();

    // Each placed rectangle carries its dynamic power, an
    // area-proportional share of the clock network, and a leakage
    // share that the feedback loop rescales with local temperature.
    struct Placed
    {
        const BlockRect *rect;
        int die;
        double dynClockW = 0.0;
        double leakNomW = 0.0;
        double leakW = 0.0;
        double avgK = 0.0;
        double peakK = 0.0;
    };
    std::vector<Placed> placed;
    for (const auto &rect : fp.blocks) {
        const double area_frac = rect.area() / total_area;
        for (int d = 0; d < dies; ++d) {
            double dyn;
            if (rect.id == BlockId::L2) {
                dyn = power.l2.dieW[static_cast<size_t>(d)];
            } else {
                dyn = power.coreBlocks[static_cast<size_t>(rect.id)]
                          .dieW[static_cast<size_t>(d)];
            }
            Placed p;
            p.rect = &rect;
            p.die = d;
            p.dynClockW = dyn * power_scale +
                clock_w * area_frac / dies;
            p.leakNomW = leak_nominal_w * area_frac / dies;
            p.leakW = p.leakNomW;
            placed.push_back(p);
        }
    }

    // Power/temperature fixed point: subthreshold leakage rises
    // exponentially with the block's temperature. Each round re-solves
    // under a slightly perturbed power map, so rounds after the first
    // warm-start from the previous field (a handful of SOR iterations
    // instead of a full cold solve).
    const int rounds = std::max(1, params_.leakFeedbackIters);
    ThermalField field(params_.gridN, num_layers, params_.ambientK);
    for (int round = 0; round < rounds; ++round) {
        grid.clearPower();
        for (const auto &p : placed) {
            grid.addPower(p.die, p.rect->x, p.rect->y, p.rect->w,
                          p.rect->h, p.dynClockW + p.leakW);
        }
        field = grid.solve(nullptr, round > 0 ? &field : nullptr);
        double max_shift = 0.0;
        for (auto &p : placed) {
            grid.blockTemps(field, p.die, p.rect->x, p.rect->y,
                            p.rect->w, p.rect->h, p.avgK, p.peakK);
            // Damped update with a physical cap on the multiplier
            // (gate/junction leakage saturates well before the
            // subthreshold exponential alone would suggest).
            const double mult = std::min(3.2,
                std::exp((p.avgK - params_.leakRefK) /
                         params_.leakThetaK));
            const double new_leak =
                0.4 * p.leakW + 0.6 * p.leakNomW * mult;
            max_shift = std::max(max_shift,
                                 std::fabs(new_leak - p.leakW));
            p.leakW = new_leak;
        }
        if (max_shift < 1e-3)
            break;
    }

    ThermalReport rep;
    rep.blocks.reserve(placed.size());
    for (const auto &p : placed) {
        BlockTemp bt;
        bt.id = p.rect->id;
        bt.core = p.rect->core;
        bt.die = p.die;
        bt.powerW = p.dynClockW + p.leakW;
        bt.avgK = p.avgK;
        bt.peakK = p.peakK;
        if (bt.peakK > rep.peakK) {
            rep.peakK = bt.peakK;
            rep.hottestBlock = blockName(bt.id);
            rep.hottestDie = bt.die;
        }
        rep.blocks.push_back(bt);
    }
    return rep;
}

} // namespace th
