#include "thermal/grid.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace th {

ThermalField::ThermalField(int grid_n, int layers, double ambient_k)
    : n_(grid_n), layers_(layers),
      t_(static_cast<size_t>(grid_n) * grid_n * layers, ambient_k)
{
}

double &
ThermalField::at(int layer, int ix, int iy)
{
    return t_[(static_cast<size_t>(layer) * n_ + iy) * n_ + ix];
}

double
ThermalField::at(int layer, int ix, int iy) const
{
    return t_[(static_cast<size_t>(layer) * n_ + iy) * n_ + ix];
}

double
ThermalField::peak(const std::vector<int> &die_layers) const
{
    double p = 0.0;
    for (int l : die_layers)
        for (int iy = 0; iy < n_; ++iy)
            for (int ix = 0; ix < n_; ++ix)
                p = std::max(p, at(l, ix, iy));
    return p;
}

ThermalGrid::ThermalGrid(const ThermalParams &params,
                         std::vector<ThermalLayer> layers,
                         double chip_w, double chip_h)
    : params_(params), layers_(std::move(layers)),
      chip_w_(chip_w), chip_h_(chip_h)
{
    if (layers_.empty())
        fatal("thermal stack needs at least one layer");
    if (chip_w_ > params_.spreaderMm || chip_h_ > params_.spreaderMm)
        fatal("chip (%.1f x %.1f mm) larger than spreader (%.1f mm)",
              chip_w_, chip_h_, params_.spreaderMm);
    chip_x0_ = (params_.spreaderMm - chip_w_) / 2.0;
    chip_y0_ = (params_.spreaderMm - chip_h_) / 2.0;
    cell_mm_ = params_.spreaderMm / static_cast<double>(params_.gridN);

    int dies = 0;
    for (const auto &l : layers_)
        if (l.dieIndex >= 0)
            dies = std::max(dies, l.dieIndex + 1);
    power_.assign(static_cast<size_t>(dies),
                  std::vector<double>(
                      static_cast<size_t>(params_.gridN) * params_.gridN,
                      0.0));
}

bool
ThermalGrid::insideChip(int ix, int iy) const
{
    const double cx = (static_cast<double>(ix) + 0.5) * cell_mm_;
    const double cy = (static_cast<double>(iy) + 0.5) * cell_mm_;
    return cx >= chip_x0_ && cx < chip_x0_ + chip_w_ &&
           cy >= chip_y0_ && cy < chip_y0_ + chip_h_;
}

double
ThermalGrid::cellK(int layer, int ix, int iy) const
{
    const ThermalLayer &l = layers_[static_cast<size_t>(layer)];
    return insideChip(ix, iy) ? l.kChip : l.kOutside;
}

void
ThermalGrid::forEachCellInRect(
    double x, double y, double w, double h,
    const std::function<void(int, int, double)> &fn) const
{
    // Chip coordinates -> spreader coordinates.
    const double x0 = x + chip_x0_, y0 = y + chip_y0_;
    const double x1 = x0 + w, y1 = y0 + h;
    const int ix0 = std::max(0, static_cast<int>(x0 / cell_mm_));
    const int iy0 = std::max(0, static_cast<int>(y0 / cell_mm_));
    const int ix1 = std::min(params_.gridN - 1,
                             static_cast<int>(x1 / cell_mm_));
    const int iy1 = std::min(params_.gridN - 1,
                             static_cast<int>(y1 / cell_mm_));
    for (int iy = iy0; iy <= iy1; ++iy) {
        for (int ix = ix0; ix <= ix1; ++ix) {
            const double cx0 = static_cast<double>(ix) * cell_mm_;
            const double cy0 = static_cast<double>(iy) * cell_mm_;
            const double ox = std::max(0.0,
                std::min(x1, cx0 + cell_mm_) - std::max(x0, cx0));
            const double oy = std::max(0.0,
                std::min(y1, cy0 + cell_mm_) - std::max(y0, cy0));
            const double frac = (ox * oy) / (cell_mm_ * cell_mm_);
            if (frac > 0.0)
                fn(ix, iy, frac);
        }
    }
}

void
ThermalGrid::addPower(int die, double x, double y, double w, double h,
                      double watts)
{
    if (die < 0 || die >= static_cast<int>(power_.size()))
        fatal("addPower to die %d of %zu", die, power_.size());
    if (watts <= 0.0 || w <= 0.0 || h <= 0.0)
        return;
    // Normalise by the rect's own area so the whole wattage lands even
    // when the rect is clipped at the chip edge.
    double covered = 0.0;
    forEachCellInRect(x, y, w, h, [&](int, int, double f) {
        covered += f;
    });
    if (covered <= 0.0)
        return;
    auto &p = power_[static_cast<size_t>(die)];
    forEachCellInRect(x, y, w, h, [&](int ix, int iy, double f) {
        p[static_cast<size_t>(iy) * params_.gridN + ix] +=
            watts * f / covered;
    });
}

void
ThermalGrid::clearPower()
{
    for (auto &p : power_)
        std::fill(p.begin(), p.end(), 0.0);
}

double
ThermalGrid::totalPower() const
{
    double t = 0.0;
    for (const auto &p : power_)
        for (double w : p)
            t += w;
    return t;
}

int
ThermalGrid::dieLayer(int die) const
{
    for (size_t l = 0; l < layers_.size(); ++l)
        if (layers_[l].dieIndex == die)
            return static_cast<int>(l);
    return -1;
}

std::vector<int>
ThermalGrid::dieLayers() const
{
    std::vector<int> v;
    for (size_t l = 0; l < layers_.size(); ++l)
        if (layers_[l].dieIndex >= 0)
            v.push_back(static_cast<int>(l));
    return v;
}

namespace {

/** Precomputed grid conductances and injected power. */
struct GridNetwork
{
    std::vector<double> gRight, gDown, gBelow, gAmb, pIn;
    int n = 0;
    int nl = 0;

    size_t idx(int l, int ix, int iy) const
    {
        return (static_cast<size_t>(l) * n + iy) * n + ix;
    }
};

} // namespace

/**
 * Build the RC network for the current geometry and power map. Shared
 * by the steady-state and transient solvers.
 */
static GridNetwork
buildNetwork(const ThermalParams &params,
             const std::vector<ThermalLayer> &layers, double cell_mm,
             const std::function<double(int, int, int)> &cell_k,
             const std::function<int(int)> &die_layer,
             const std::vector<std::vector<double>> &power)
{
    GridNetwork net;
    net.n = params.gridN;
    net.nl = static_cast<int>(layers.size());
    const int n = net.n;
    const int nl = net.nl;
    const double cell_m = cell_mm * 1e-3;
    const double area_m2 = cell_m * cell_m;

    const size_t cells = static_cast<size_t>(nl) * n * n;
    net.gRight.assign(cells, 0.0);
    net.gDown.assign(cells, 0.0);
    net.gBelow.assign(cells, 0.0);
    net.gAmb.assign(cells, 0.0);
    net.pIn.assign(cells, 0.0);

    for (int l = 0; l < nl; ++l) {
        const double t_m = layers[static_cast<size_t>(l)].thicknessMm * 1e-3;
        for (int iy = 0; iy < n; ++iy) {
            for (int ix = 0; ix < n; ++ix) {
                const double k1 = cell_k(l, ix, iy);
                // Lateral (square cells: G = k * t).
                if (ix + 1 < n) {
                    const double k2 = cell_k(l, ix + 1, iy);
                    if (k1 > 0.0 && k2 > 0.0)
                        net.gRight[net.idx(l, ix, iy)] =
                            t_m * 2.0 * k1 * k2 / (k1 + k2);
                }
                if (iy + 1 < n) {
                    const double k2 = cell_k(l, ix, iy + 1);
                    if (k1 > 0.0 && k2 > 0.0)
                        net.gDown[net.idx(l, ix, iy)] =
                            t_m * 2.0 * k1 * k2 / (k1 + k2);
                }
                // Vertical to the next layer down.
                if (l + 1 < nl) {
                    const double k2 = cell_k(l + 1, ix, iy);
                    const double t2_m =
                        layers[static_cast<size_t>(l + 1)].thicknessMm *
                        1e-3;
                    if (k1 > 0.0 && k2 > 0.0) {
                        const double r = t_m / (2.0 * k1 * area_m2) +
                            t2_m / (2.0 * k2 * area_m2);
                        net.gBelow[net.idx(l, ix, iy)] = 1.0 / r;
                    }
                }
            }
        }
    }

    // Distributed convection from the top (sink) layer.
    const double g_cell_conv =
        (1.0 / params.convectionKPerW) / static_cast<double>(n * n);
    for (int iy = 0; iy < n; ++iy)
        for (int ix = 0; ix < n; ++ix)
            net.gAmb[net.idx(0, ix, iy)] = g_cell_conv;

    // Power injection.
    for (size_t die = 0; die < power.size(); ++die) {
        const int l = die_layer(static_cast<int>(die));
        if (l < 0)
            panic("power deposited on missing die %zu", die);
        for (int iy = 0; iy < n; ++iy)
            for (int ix = 0; ix < n; ++ix)
                net.pIn[net.idx(l, ix, iy)] +=
                    power[die][static_cast<size_t>(iy) * n + ix];
    }
    return net;
}

ThermalField
ThermalGrid::solve() const
{
    const int n = params_.gridN;
    const int nl = static_cast<int>(layers_.size());

    const GridNetwork net = buildNetwork(
        params_, layers_, cell_mm_,
        [this](int l, int ix, int iy) { return cellK(l, ix, iy); },
        [this](int die) { return dieLayer(die); }, power_);
    const auto &g_right = net.gRight;
    const auto &g_down = net.gDown;
    const auto &g_below = net.gBelow;
    const auto &g_amb = net.gAmb;
    const auto &p_in = net.pIn;
    auto idx = [&](int l, int ix, int iy) {
        return net.idx(l, ix, iy);
    };

    // SOR sweep.
    ThermalField field(n, nl, params_.ambientK);
    const double t_amb = params_.ambientK;
    double omega = params_.sorOmega;
    int iter = 0;
    for (; iter < params_.maxIterations; ++iter) {
        double max_delta = 0.0;
        for (int l = 0; l < nl; ++l) {
            for (int iy = 0; iy < n; ++iy) {
                for (int ix = 0; ix < n; ++ix) {
                    const size_t c = idx(l, ix, iy);
                    double gsum = g_amb[c];
                    double flow = g_amb[c] * t_amb + p_in[c];
                    if (ix > 0) {
                        const double g = g_right[idx(l, ix - 1, iy)];
                        gsum += g;
                        flow += g * field.at(l, ix - 1, iy);
                    }
                    if (ix + 1 < n) {
                        const double g = g_right[c];
                        gsum += g;
                        flow += g * field.at(l, ix + 1, iy);
                    }
                    if (iy > 0) {
                        const double g = g_down[idx(l, ix, iy - 1)];
                        gsum += g;
                        flow += g * field.at(l, ix, iy - 1);
                    }
                    if (iy + 1 < n) {
                        const double g = g_down[c];
                        gsum += g;
                        flow += g * field.at(l, ix, iy + 1);
                    }
                    if (l > 0) {
                        const double g = g_below[idx(l - 1, ix, iy)];
                        gsum += g;
                        flow += g * field.at(l - 1, ix, iy);
                    }
                    if (l + 1 < nl) {
                        const double g = g_below[c];
                        gsum += g;
                        flow += g * field.at(l + 1, ix, iy);
                    }
                    if (gsum <= 0.0)
                        continue; // isolated (air) cell
                    const double t_new = flow / gsum;
                    double &t_cur = field.at(l, ix, iy);
                    const double updated =
                        t_cur + omega * (t_new - t_cur);
                    max_delta = std::max(max_delta,
                                         std::fabs(updated - t_cur));
                    t_cur = updated;
                }
            }
        }
        if (max_delta < params_.maxResidualK)
            break;
    }
    if (iter >= params_.maxIterations)
        warn("thermal solve hit the iteration cap (%d); residual above "
             "%g K", params_.maxIterations, params_.maxResidualK);
    return field;
}

ThermalGrid::Transient
ThermalGrid::solveTransient(const ThermalField &initial,
                            double duration_s, double dt_s,
                            int samples) const
{
    const int n = params_.gridN;
    const int nl = static_cast<int>(layers_.size());
    if (initial.gridN() != n || initial.layers() != nl)
        fatal("transient initial field has the wrong geometry");
    if (duration_s <= 0.0 || dt_s <= 0.0 || samples < 1)
        fatal("transient needs positive duration, step, and samples");

    const GridNetwork net = buildNetwork(
        params_, layers_, cell_mm_,
        [this](int l, int ix, int iy) { return cellK(l, ix, iy); },
        [this](int die) { return dieLayer(die); }, power_);

    // Per-cell thermal capacitance (J/K) and explicit stability bound
    // dt < min(C / sum(G)).
    const double cell_m = cell_mm_ * 1e-3;
    const size_t cells = static_cast<size_t>(nl) * n * n;
    std::vector<double> cap(cells, 0.0);
    std::vector<double> gsum(cells, 0.0);
    for (int l = 0; l < nl; ++l) {
        const ThermalLayer &layer = layers_[static_cast<size_t>(l)];
        const double vol = cell_m * cell_m * layer.thicknessMm * 1e-3;
        for (int iy = 0; iy < n; ++iy) {
            for (int ix = 0; ix < n; ++ix) {
                const size_t c = net.idx(l, ix, iy);
                if (cellK(l, ix, iy) > 0.0)
                    cap[c] = vol * layer.volHeatCapacity;
                double g = net.gAmb[c];
                if (ix > 0)
                    g += net.gRight[net.idx(l, ix - 1, iy)];
                if (ix + 1 < n)
                    g += net.gRight[c];
                if (iy > 0)
                    g += net.gDown[net.idx(l, ix, iy - 1)];
                if (iy + 1 < n)
                    g += net.gDown[c];
                if (l > 0)
                    g += net.gBelow[net.idx(l - 1, ix, iy)];
                if (l + 1 < nl)
                    g += net.gBelow[c];
                gsum[c] = g;
            }
        }
    }
    double dt = dt_s;
    for (size_t c = 0; c < cells; ++c)
        if (cap[c] > 0.0 && gsum[c] > 0.0)
            dt = std::min(dt, 0.4 * cap[c] / gsum[c]);

    const auto steps =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(
            duration_s / dt));
    const std::int64_t sample_every =
        std::max<std::int64_t>(1, steps / samples);

    Transient out(n, nl, params_.ambientK);
    out.final = initial;
    const std::vector<int> die_layers = dieLayers();
    std::vector<double> delta(cells, 0.0);

    for (std::int64_t step = 0; step < steps; ++step) {
        // Explicit Euler: dT = dt/C * (sum G*(Tn - T) + P).
        for (int l = 0; l < nl; ++l) {
            for (int iy = 0; iy < n; ++iy) {
                for (int ix = 0; ix < n; ++ix) {
                    const size_t c = net.idx(l, ix, iy);
                    if (cap[c] <= 0.0)
                        continue;
                    const double t = out.final.at(l, ix, iy);
                    double flow = net.gAmb[c] *
                        (params_.ambientK - t) + net.pIn[c];
                    if (ix > 0)
                        flow += net.gRight[net.idx(l, ix - 1, iy)] *
                            (out.final.at(l, ix - 1, iy) - t);
                    if (ix + 1 < n)
                        flow += net.gRight[c] *
                            (out.final.at(l, ix + 1, iy) - t);
                    if (iy > 0)
                        flow += net.gDown[net.idx(l, ix, iy - 1)] *
                            (out.final.at(l, ix, iy - 1) - t);
                    if (iy + 1 < n)
                        flow += net.gDown[c] *
                            (out.final.at(l, ix, iy + 1) - t);
                    if (l > 0)
                        flow += net.gBelow[net.idx(l - 1, ix, iy)] *
                            (out.final.at(l - 1, ix, iy) - t);
                    if (l + 1 < nl)
                        flow += net.gBelow[c] *
                            (out.final.at(l + 1, ix, iy) - t);
                    delta[c] = dt / cap[c] * flow;
                }
            }
        }
        for (int l = 0; l < nl; ++l)
            for (int iy = 0; iy < n; ++iy)
                for (int ix = 0; ix < n; ++ix) {
                    const size_t c = net.idx(l, ix, iy);
                    if (cap[c] > 0.0)
                        out.final.at(l, ix, iy) += delta[c];
                }

        if ((step + 1) % sample_every == 0 || step == steps - 1) {
            out.timeS.push_back(static_cast<double>(step + 1) * dt);
            out.peakK.push_back(out.final.peak(die_layers));
        }
    }
    return out;
}

void
ThermalGrid::blockTemps(const ThermalField &field, int die, double x,
                        double y, double w, double h, double &avg_k,
                        double &peak_k) const
{
    const int l = dieLayer(die);
    if (l < 0)
        fatal("blockTemps on missing die %d", die);
    double wsum = 0.0, tsum = 0.0, pk = 0.0;
    forEachCellInRect(x, y, w, h, [&](int ix, int iy, double f) {
        const double t = field.at(l, ix, iy);
        wsum += f;
        tsum += f * t;
        pk = std::max(pk, t);
    });
    avg_k = wsum > 0.0 ? tsum / wsum : params_.ambientK;
    peak_k = pk > 0.0 ? pk : params_.ambientK;
}

} // namespace th
