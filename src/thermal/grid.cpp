#include "thermal/grid.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/threadpool.h"
#include "thermal/multigrid.h"

namespace th {

const char *
solverKindName(SolverKind kind)
{
    switch (kind) {
    case SolverKind::Sor:
        return "sor";
    case SolverKind::Multigrid:
        return "multigrid";
    }
    return "sor";
}

bool
solverKindByName(const std::string &name, SolverKind *out)
{
    if (name == "sor")
        *out = SolverKind::Sor;
    else if (name == "multigrid")
        *out = SolverKind::Multigrid;
    else
        return false;
    return true;
}

ThermalField::ThermalField(int grid_n, int layers, double ambient_k)
    : n_(grid_n), layers_(layers),
      t_(static_cast<size_t>(grid_n) * grid_n * layers, ambient_k)
{
}

double &
ThermalField::at(int layer, int ix, int iy)
{
    return t_[(static_cast<size_t>(layer) * n_ + iy) * n_ + ix];
}

double
ThermalField::at(int layer, int ix, int iy) const
{
    return t_[(static_cast<size_t>(layer) * n_ + iy) * n_ + ix];
}

double
ThermalField::peak(const std::vector<int> &die_layers) const
{
    double p = 0.0;
    for (int l : die_layers)
        for (int iy = 0; iy < n_; ++iy)
            for (int ix = 0; ix < n_; ++ix)
                p = std::max(p, at(l, ix, iy));
    return p;
}

ThermalGrid::ThermalGrid(const ThermalParams &params,
                         std::vector<ThermalLayer> layers,
                         double chip_w, double chip_h)
    : params_(params), layers_(std::move(layers)),
      chip_w_(chip_w), chip_h_(chip_h)
{
    if (layers_.empty())
        fatal("thermal stack needs at least one layer");
    if (chip_w_ > params_.spreaderMm || chip_h_ > params_.spreaderMm)
        fatal("chip (%.1f x %.1f mm) larger than spreader (%.1f mm)",
              chip_w_, chip_h_, params_.spreaderMm);
    chip_x0_ = (params_.spreaderMm - chip_w_) / 2.0;
    chip_y0_ = (params_.spreaderMm - chip_h_) / 2.0;
    cell_mm_ = params_.spreaderMm / static_cast<double>(params_.gridN);

    int dies = 0;
    for (const auto &l : layers_)
        if (l.dieIndex >= 0)
            dies = std::max(dies, l.dieIndex + 1);
    power_.assign(static_cast<size_t>(dies),
                  std::vector<double>(
                      static_cast<size_t>(params_.gridN) * params_.gridN,
                      0.0));
}

// Out of line: MgSolver is incomplete in the header.
ThermalGrid::~ThermalGrid() = default;
ThermalGrid::ThermalGrid(ThermalGrid &&) noexcept = default;
ThermalGrid &ThermalGrid::operator=(ThermalGrid &&) noexcept = default;

bool
ThermalGrid::insideChip(int ix, int iy) const
{
    const double cx = (static_cast<double>(ix) + 0.5) * cell_mm_;
    const double cy = (static_cast<double>(iy) + 0.5) * cell_mm_;
    return cx >= chip_x0_ && cx < chip_x0_ + chip_w_ &&
           cy >= chip_y0_ && cy < chip_y0_ + chip_h_;
}

double
ThermalGrid::cellK(int layer, int ix, int iy) const
{
    const ThermalLayer &l = layers_[static_cast<size_t>(layer)];
    return insideChip(ix, iy) ? l.kChip : l.kOutside;
}

void
ThermalGrid::forEachCellInRect(
    double x, double y, double w, double h,
    const std::function<void(int, int, double)> &fn) const
{
    // Chip coordinates -> spreader coordinates.
    const double x0 = x + chip_x0_, y0 = y + chip_y0_;
    const double x1 = x0 + w, y1 = y0 + h;
    const int ix0 = std::max(0, static_cast<int>(x0 / cell_mm_));
    const int iy0 = std::max(0, static_cast<int>(y0 / cell_mm_));
    const int ix1 = std::min(params_.gridN - 1,
                             static_cast<int>(x1 / cell_mm_));
    const int iy1 = std::min(params_.gridN - 1,
                             static_cast<int>(y1 / cell_mm_));
    for (int iy = iy0; iy <= iy1; ++iy) {
        for (int ix = ix0; ix <= ix1; ++ix) {
            const double cx0 = static_cast<double>(ix) * cell_mm_;
            const double cy0 = static_cast<double>(iy) * cell_mm_;
            const double ox = std::max(0.0,
                std::min(x1, cx0 + cell_mm_) - std::max(x0, cx0));
            const double oy = std::max(0.0,
                std::min(y1, cy0 + cell_mm_) - std::max(y0, cy0));
            const double frac = (ox * oy) / (cell_mm_ * cell_mm_);
            if (frac > 0.0)
                fn(ix, iy, frac);
        }
    }
}

void
ThermalGrid::addPower(int die, double x, double y, double w, double h,
                      double watts)
{
    if (die < 0 || die >= static_cast<int>(power_.size()))
        fatal("addPower to die %d of %zu", die, power_.size());
    if (watts <= 0.0 || w <= 0.0 || h <= 0.0)
        return;
    // Normalise by the rect's own area so the whole wattage lands even
    // when the rect is clipped at the chip edge.
    double covered = 0.0;
    forEachCellInRect(x, y, w, h, [&](int, int, double f) {
        covered += f;
    });
    if (covered <= 0.0)
        return;
    auto &p = power_[static_cast<size_t>(die)];
    forEachCellInRect(x, y, w, h, [&](int ix, int iy, double f) {
        p[static_cast<size_t>(iy) * params_.gridN + ix] +=
            watts * f / covered;
    });
    power_dirty_ = true;
}

void
ThermalGrid::clearPower()
{
    for (auto &p : power_)
        std::fill(p.begin(), p.end(), 0.0);
    power_dirty_ = true;
}

double
ThermalGrid::totalPower() const
{
    double t = 0.0;
    for (const auto &p : power_)
        for (double w : p)
            t += w;
    return t;
}

int
ThermalGrid::dieLayer(int die) const
{
    for (size_t l = 0; l < layers_.size(); ++l)
        if (layers_[l].dieIndex == die)
            return static_cast<int>(l);
    return -1;
}

std::vector<int>
ThermalGrid::dieLayers() const
{
    std::vector<int> v;
    for (size_t l = 0; l < layers_.size(); ++l)
        if (layers_[l].dieIndex >= 0)
            v.push_back(static_cast<int>(l));
    return v;
}

/**
 * Build the geometry-dependent half of the RC network: conductances,
 * capacitances, and the per-cell conductance sums. These never change
 * after construction, so they are computed once and shared by every
 * steady-state and transient solve (and every leakage-feedback round).
 */
void
ThermalGrid::buildConductances() const
{
    Network &net = net_;
    net.n = params_.gridN;
    net.nl = static_cast<int>(layers_.size());
    const int n = net.n;
    const int nl = net.nl;
    const double cell_m = cell_mm_ * 1e-3;
    const double area_m2 = cell_m * cell_m;

    const size_t cells = static_cast<size_t>(nl) * n * n;
    net.gRight.assign(cells, 0.0);
    net.gDown.assign(cells, 0.0);
    net.gBelow.assign(cells, 0.0);
    net.gAmb.assign(cells, 0.0);
    net.gSum.assign(cells, 0.0);
    net.invG.assign(cells, 0.0);
    net.cap.assign(cells, 0.0);
    net.pIn.assign(cells, 0.0);

    for (int l = 0; l < nl; ++l) {
        const ThermalLayer &layer = layers_[static_cast<size_t>(l)];
        const double t_m = layer.thicknessMm * 1e-3;
        const double cell_vol = area_m2 * t_m;
        for (int iy = 0; iy < n; ++iy) {
            for (int ix = 0; ix < n; ++ix) {
                const double k1 = cellK(l, ix, iy);
                const size_t c = net.idx(l, ix, iy);
                if (k1 > 0.0)
                    net.cap[c] = cell_vol * layer.volHeatCapacity;
                // Lateral (square cells: G = k * t).
                if (ix + 1 < n) {
                    const double k2 = cellK(l, ix + 1, iy);
                    if (k1 > 0.0 && k2 > 0.0)
                        net.gRight[c] = t_m * 2.0 * k1 * k2 / (k1 + k2);
                }
                if (iy + 1 < n) {
                    const double k2 = cellK(l, ix, iy + 1);
                    if (k1 > 0.0 && k2 > 0.0)
                        net.gDown[c] = t_m * 2.0 * k1 * k2 / (k1 + k2);
                }
                // Vertical to the next layer down.
                if (l + 1 < nl) {
                    const double k2 = cellK(l + 1, ix, iy);
                    const double t2_m =
                        layers_[static_cast<size_t>(l + 1)].thicknessMm *
                        1e-3;
                    if (k1 > 0.0 && k2 > 0.0) {
                        const double r = t_m / (2.0 * k1 * area_m2) +
                            t2_m / (2.0 * k2 * area_m2);
                        net.gBelow[c] = 1.0 / r;
                    }
                }
            }
        }
    }

    // Distributed convection from the top (sink) layer.
    const double g_cell_conv =
        (1.0 / params_.convectionKPerW) / static_cast<double>(n * n);
    for (int iy = 0; iy < n; ++iy)
        for (int ix = 0; ix < n; ++ix)
            net.gAmb[net.idx(0, ix, iy)] = g_cell_conv;

    // Per-cell conductance sums are loop-invariant: hoist them out of
    // the solver sweeps (the seed recomputed them every SOR iteration).
    const size_t plane = static_cast<size_t>(n) * n;
    for (int l = 0; l < nl; ++l) {
        for (int iy = 0; iy < n; ++iy) {
            for (int ix = 0; ix < n; ++ix) {
                const size_t c = net.idx(l, ix, iy);
                double g = net.gAmb[c];
                if (ix > 0)
                    g += net.gRight[c - 1];
                if (ix + 1 < n)
                    g += net.gRight[c];
                if (iy > 0)
                    g += net.gDown[c - n];
                if (iy + 1 < n)
                    g += net.gDown[c];
                if (l > 0)
                    g += net.gBelow[c - plane];
                if (l + 1 < nl)
                    g += net.gBelow[c];
                net.gSum[c] = g;
                net.invG[c] = g > 0.0 ? 1.0 / g : 0.0;
            }
        }
    }
}

/** Rebuild only the injected-power vector from the deposited map. */
void
ThermalGrid::refreshPower() const
{
    Network &net = net_;
    const int n = net.n;
    std::fill(net.pIn.begin(), net.pIn.end(), 0.0);
    for (size_t die = 0; die < power_.size(); ++die) {
        const int l = dieLayer(static_cast<int>(die));
        if (l < 0)
            panic("power deposited on missing die %zu", die);
        for (int iy = 0; iy < n; ++iy)
            for (int ix = 0; ix < n; ++ix)
                net.pIn[net.idx(l, ix, iy)] +=
                    power_[die][static_cast<size_t>(iy) * n + ix];
    }
}

const ThermalGrid::Network &
ThermalGrid::network() const
{
    if (!net_built_) {
        buildConductances();
        net_built_ = true;
    }
    if (power_dirty_) {
        refreshPower();
        power_dirty_ = false;
    }
    return net_;
}

ThermalField
ThermalGrid::solve(SolveStats *stats, const ThermalField *warm_start) const
{
    if (params_.solver == SolverKind::Multigrid)
        return solveMultigrid(stats, warm_start);
    const int n = params_.gridN;
    const int nl = static_cast<int>(layers_.size());
    const Network &net = network();
    const size_t plane = static_cast<size_t>(n) * n;

    ThermalField field(n, nl, params_.ambientK);
    if (warm_start != nullptr) {
        if (warm_start->gridN() != n || warm_start->layers() != nl)
            fatal("warm-start field has the wrong geometry");
        field = *warm_start;
    }
    const double t_amb = params_.ambientK;
    const double omega = params_.sorOmega;

    // One SOR cell update; gSum is precomputed, so the inner loop is
    // a pure gather + multiply. Returns |update| for the residual.
    auto updateCell = [&](int l, int ix, int iy) -> double {
        const size_t c = net.idx(l, ix, iy);
        const double ig = net.invG[c];
        if (ig == 0.0)
            return 0.0; // isolated (air) cell
        double flow = net.gAmb[c] * t_amb + net.pIn[c];
        if (ix > 0)
            flow += net.gRight[c - 1] * field.at(l, ix - 1, iy);
        if (ix + 1 < n)
            flow += net.gRight[c] * field.at(l, ix + 1, iy);
        if (iy > 0)
            flow += net.gDown[c - n] * field.at(l, ix, iy - 1);
        if (iy + 1 < n)
            flow += net.gDown[c] * field.at(l, ix, iy + 1);
        if (l > 0)
            flow += net.gBelow[c - plane] * field.at(l - 1, ix, iy);
        if (l + 1 < nl)
            flow += net.gBelow[c] * field.at(l + 1, ix, iy);
        const double t_new = flow * ig;
        double &t_cur = field.at(l, ix, iy);
        const double delta = omega * (t_new - t_cur);
        t_cur += delta;
        return std::fabs(delta);
    };

    const bool red_black =
        params_.sorOrdering == SorOrdering::RedBlack;
    ThreadPool &pool = ThreadPool::global();
    const int rows = nl * n; // (layer, iy) pairs
    std::vector<double> row_delta(
        red_black ? static_cast<size_t>(rows) : 0, 0.0);

    // Half-sweep over one colour class. Cells of a colour only read
    // neighbours of the other colour, so rows are processed in
    // parallel; per-row maxima are reduced in index order afterwards,
    // keeping the result bit-identical for any thread count.
    auto sweepColor = [&](int color) {
        pool.parallelFor(static_cast<size_t>(rows), [&](size_t r) {
            const int l = static_cast<int>(r) / n;
            const int iy = static_cast<int>(r) % n;
            double md = 0.0;
            for (int ix = (color + l + iy) % 2; ix < n; ix += 2)
                md = std::max(md, updateCell(l, ix, iy));
            row_delta[r] = md;
        });
        double md = 0.0;
        for (double d : row_delta)
            md = std::max(md, d);
        return md;
    };

    int iter = 0;
    double max_delta = 0.0;
    for (; iter < params_.maxIterations; ++iter) {
        if (red_black) {
            max_delta = sweepColor(0);
            max_delta = std::max(max_delta, sweepColor(1));
        } else {
            max_delta = 0.0;
            for (int l = 0; l < nl; ++l)
                for (int iy = 0; iy < n; ++iy)
                    for (int ix = 0; ix < n; ++ix)
                        max_delta = std::max(max_delta,
                                             updateCell(l, ix, iy));
        }
        if (max_delta < params_.maxResidualK)
            break;
    }
    if (iter >= params_.maxIterations)
        warn("thermal solve hit the iteration cap (%d); residual above "
             "%g K", params_.maxIterations, params_.maxResidualK);
    if (stats != nullptr) {
        stats->iterations = std::min(iter + 1, params_.maxIterations);
        stats->residualK = max_delta;
        stats->vcycles = 0;
        stats->contraction = 0.0;
        stats->estErrorK = max_delta;
    }
    return field;
}

/**
 * Multigrid steady state: solve A u = P for u = T - T_ambient (the
 * convection term folds into the diagonal) over the cached V-cycle
 * hierarchy. Shares the solve() contract — same stopping measure
 * (max kelvin move of a relaxation pass < maxResidualK), same
 * warm-start semantics, air cells pinned at ambient.
 */
ThermalField
ThermalGrid::solveMultigrid(SolveStats *stats,
                            const ThermalField *warm_start) const
{
    const int n = params_.gridN;
    const int nl = static_cast<int>(layers_.size());
    const Network &net = network();
    const size_t cells = static_cast<size_t>(nl) * n * n;

    if (!mg_) {
        MgParams mp;
        mp.preSmooth = params_.mgPreSmooth;
        mp.postSmooth = params_.mgPostSmooth;
        mp.coarseSweeps = params_.mgCoarseSweeps;
        mp.coarsestN = params_.mgCoarsestN;
        mp.maxCycles = params_.maxIterations;
        mp.toleranceK = params_.maxResidualK;
        mg_ = std::make_unique<MgSolver>(
            mgFineLevel(n, nl, net.gRight, net.gDown, net.gBelow,
                        net.gAmb),
            mp);
    }

    std::vector<double> u0;
    if (warm_start != nullptr) {
        if (warm_start->gridN() != n || warm_start->layers() != nl)
            fatal("warm-start field has the wrong geometry");
        u0.resize(cells);
        for (size_t c = 0; c < cells; ++c)
            u0[c] = warm_start->t(c) - params_.ambientK;
    }
    mg_->setProblem(net.pIn, warm_start != nullptr ? &u0 : nullptr);

    const MgSolver::Stats ms = mg_->solve();
    if (ms.cycles >= params_.maxIterations &&
        ms.residualK >= params_.maxResidualK)
        warn("thermal solve hit the iteration cap (%d); residual above "
             "%g K", params_.maxIterations, params_.maxResidualK);

    std::vector<double> u;
    mg_->solution(u);
    ThermalField field(n, nl, params_.ambientK);
    for (size_t c = 0; c < cells; ++c)
        field.t(c) = params_.ambientK + u[c];
    if (stats != nullptr) {
        stats->iterations = ms.cycles;
        stats->residualK = ms.residualK;
        stats->vcycles = ms.cycles;
        stats->contraction = ms.contraction;
        stats->estErrorK = ms.estErrorK;
    }
    return field;
}

ThermalGrid::Transient
ThermalGrid::solveTransient(const ThermalField &initial,
                            double duration_s, double dt_s,
                            int samples) const
{
    const int n = params_.gridN;
    const int nl = static_cast<int>(layers_.size());
    if (initial.gridN() != n || initial.layers() != nl)
        fatal("transient initial field has the wrong geometry");
    if (duration_s <= 0.0 || dt_s <= 0.0 || samples < 1)
        fatal("transient needs positive duration, step, and samples");

    const double dt = transientDt(dt_s);

    const auto steps =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(
            duration_s / dt));
    const std::int64_t sample_every =
        std::max<std::int64_t>(1, steps / samples);

    Transient out(n, nl, params_.ambientK);
    out.final = initial;
    const std::vector<int> die_layers = dieLayers();
    std::vector<double> delta;

    for (std::int64_t step = 0; step < steps; ++step) {
        stepOnce(out.final, delta, dt);

        // Intermediate samples only; the final one is recorded once
        // below so it can never be duplicated (previously both the
        // modulo branch and the last-step branch targeted step
        // steps - 1 when steps was a multiple of sample_every).
        if ((step + 1) % sample_every == 0 && step != steps - 1) {
            out.timeS.push_back(static_cast<double>(step + 1) * dt);
            out.peakK.push_back(out.final.peak(die_layers));
        }
    }
    out.timeS.push_back(static_cast<double>(steps) * dt);
    out.peakK.push_back(out.final.peak(die_layers));
    return out;
}

double
ThermalGrid::transientDt(double dt_s) const
{
    if (dt_s <= 0.0)
        fatal("transient step must be positive (got %g)", dt_s);
    const Network &net = network();
    const size_t cells =
        static_cast<size_t>(net.nl) * net.n * net.n;
    // Explicit stability bound dt < min(C / sum(G)).
    double dt = dt_s;
    for (size_t c = 0; c < cells; ++c)
        if (net.cap[c] > 0.0 && net.gSum[c] > 0.0)
            dt = std::min(dt, 0.4 * net.cap[c] / net.gSum[c]);
    return dt;
}

double
ThermalGrid::transientDtLateral(double dt_s) const
{
    if (dt_s <= 0.0)
        fatal("transient step must be positive (got %g)", dt_s);
    const Network &net = network();
    const int n = net.n;
    double dt = dt_s;
    for (int l = 0; l < net.nl; ++l) {
        for (int iy = 0; iy < n; ++iy) {
            for (int ix = 0; ix < n; ++ix) {
                const size_t c = net.idx(l, ix, iy);
                if (net.cap[c] <= 0.0)
                    continue;
                // Only the explicitly-integrated lateral couplings
                // constrain the step; vertical conduction and ambient
                // convection are handled implicitly.
                double g = 0.0;
                if (ix > 0)
                    g += net.gRight[c - 1];
                if (ix + 1 < n)
                    g += net.gRight[c];
                if (iy > 0)
                    g += net.gDown[c - n];
                if (iy + 1 < n)
                    g += net.gDown[c];
                if (g > 0.0)
                    dt = std::min(dt, 0.4 * net.cap[c] / g);
            }
        }
    }
    return dt;
}

void
ThermalGrid::stepOnce(ThermalField &field, std::vector<double> &scratch,
                      double dt_s) const
{
    const int n = params_.gridN;
    const int nl = static_cast<int>(layers_.size());
    if (field.gridN() != n || field.layers() != nl)
        fatal("transient field has the wrong geometry");

    // The conductance/capacitance arrays are cached on the grid, so
    // back-to-back steady and transient solves (and repeated transient
    // steps in throttling loops) share one network build; only the
    // injected-power vector refreshes after addPower()/clearPower().
    const Network &net = network();
    const size_t cells = static_cast<size_t>(nl) * n * n;
    const size_t plane = static_cast<size_t>(n) * n;
    const double dt = dt_s;
    if (scratch.size() != cells)
        scratch.assign(cells, 0.0);

    // Explicit Euler: dT = dt/C * (sum G*(Tn - T) + P).
    for (int l = 0; l < nl; ++l) {
        for (int iy = 0; iy < n; ++iy) {
            for (int ix = 0; ix < n; ++ix) {
                const size_t c = net.idx(l, ix, iy);
                if (net.cap[c] <= 0.0)
                    continue;
                const double t = field.at(l, ix, iy);
                double flow = net.gAmb[c] *
                    (params_.ambientK - t) + net.pIn[c];
                if (ix > 0)
                    flow += net.gRight[c - 1] *
                        (field.at(l, ix - 1, iy) - t);
                if (ix + 1 < n)
                    flow += net.gRight[c] *
                        (field.at(l, ix + 1, iy) - t);
                if (iy > 0)
                    flow += net.gDown[c - n] *
                        (field.at(l, ix, iy - 1) - t);
                if (iy + 1 < n)
                    flow += net.gDown[c] *
                        (field.at(l, ix, iy + 1) - t);
                if (l > 0)
                    flow += net.gBelow[c - plane] *
                        (field.at(l - 1, ix, iy) - t);
                if (l + 1 < nl)
                    flow += net.gBelow[c] *
                        (field.at(l + 1, ix, iy) - t);
                scratch[c] = dt / net.cap[c] * flow;
            }
        }
    }
    for (size_t c = 0; c < cells; ++c)
        if (net.cap[c] > 0.0)
            field.t(c) += scratch[c];
}

void
ThermalGrid::stepOnceVerticalImplicit(ThermalField &field,
                                      std::vector<double> &scratch,
                                      double dt_s) const
{
    const int n = params_.gridN;
    const int nl = static_cast<int>(layers_.size());
    if (field.gridN() != n || field.layers() != nl)
        fatal("transient field has the wrong geometry");

    const Network &net = network();
    const size_t cells = static_cast<size_t>(nl) * n * n;
    const size_t plane = static_cast<size_t>(n) * n;
    const double inv_dt = 1.0 / dt_s;
    if (scratch.size() != cells)
        scratch.assign(cells, 0.0);

    // Explicit right-hand side from the pre-step field: storage term,
    // lateral flux, the implicit terms' constant parts (ambient sink,
    // injected power). Evaluated for every material cell before any
    // column updates, so the scheme reads a consistent time level.
    for (int l = 0; l < nl; ++l) {
        for (int iy = 0; iy < n; ++iy) {
            for (int ix = 0; ix < n; ++ix) {
                const size_t c = net.idx(l, ix, iy);
                if (net.cap[c] <= 0.0)
                    continue;
                const double t = field.at(l, ix, iy);
                double rhs = net.cap[c] * inv_dt * t +
                    net.gAmb[c] * params_.ambientK + net.pIn[c];
                if (ix > 0)
                    rhs += net.gRight[c - 1] *
                        (field.at(l, ix - 1, iy) - t);
                if (ix + 1 < n)
                    rhs += net.gRight[c] *
                        (field.at(l, ix + 1, iy) - t);
                if (iy > 0)
                    rhs += net.gDown[c - n] *
                        (field.at(l, ix, iy - 1) - t);
                if (iy + 1 < n)
                    rhs += net.gDown[c] *
                        (field.at(l, ix, iy + 1) - t);
                scratch[c] = rhs;
            }
        }
    }

    // Backward-Euler solve of each column's vertical chain:
    //   (C/dt + gAmb + gUp + gDown) T' - gUp T'_up - gDown T'_dn = rhs.
    // Air cells become identity rows (their couplings are zero, so the
    // chain decouples across them exactly like the explicit stepper's
    // skip). Thomas algorithm; columns are independent and the loop is
    // serial, so the result is bit-identical for any thread count.
    std::vector<double> diag(static_cast<size_t>(nl));
    std::vector<double> upper(static_cast<size_t>(nl));
    std::vector<double> rhs(static_cast<size_t>(nl));
    for (int iy = 0; iy < n; ++iy) {
        for (int ix = 0; ix < n; ++ix) {
            for (int l = 0; l < nl; ++l) {
                const size_t c = net.idx(l, ix, iy);
                const auto li = static_cast<size_t>(l);
                if (net.cap[c] <= 0.0) {
                    diag[li] = 1.0;
                    upper[li] = 0.0;
                    rhs[li] = field.at(l, ix, iy);
                    continue;
                }
                double d = net.cap[c] * inv_dt + net.gAmb[c];
                if (l > 0)
                    d += net.gBelow[c - plane];
                if (l + 1 < nl)
                    d += net.gBelow[c];
                diag[li] = d;
                upper[li] = l + 1 < nl ? -net.gBelow[c] : 0.0;
                rhs[li] = scratch[c];
            }
            // Forward elimination (the sub-diagonal of row l is the
            // upper coupling of row l-1 by symmetry), then
            // back-substitution straight into the field.
            for (int l = 1; l < nl; ++l) {
                const auto li = static_cast<size_t>(l);
                const double w = -upper[li - 1] / diag[li - 1];
                // w is -sub/diag_prev; sub == upper[li - 1].
                diag[li] += w * upper[li - 1];
                rhs[li] += w * rhs[li - 1];
            }
            double t_below = rhs[static_cast<size_t>(nl - 1)] /
                diag[static_cast<size_t>(nl - 1)];
            field.at(nl - 1, ix, iy) = t_below;
            for (int l = nl - 2; l >= 0; --l) {
                const auto li = static_cast<size_t>(l);
                t_below = (rhs[li] - upper[li] * t_below) / diag[li];
                field.at(l, ix, iy) = t_below;
            }
        }
    }
}

// ---------------------------------------------------------------------
// TransientStepper.
// ---------------------------------------------------------------------

TransientStepper::TransientStepper(const ThermalGrid &grid,
                                   const ThermalField &initial,
                                   double dt_s, TransientScheme scheme)
    : grid_(&grid), field_(initial),
      dt_(scheme == TransientScheme::VerticalImplicit
              ? grid.transientDtLateral(dt_s)
              : grid.transientDt(dt_s)),
      scheme_(scheme)
{
    if (initial.gridN() != grid.params().gridN)
        fatal("stepper initial field has the wrong geometry");
}

void
TransientStepper::advance(double duration_s)
{
    if (duration_s < 0.0)
        fatal("cannot step time backwards (%g s)", duration_s);
    targetS_ += duration_s;
    // Derive the step count from the accumulated target so split and
    // unsplit runs take identical step sequences; the epsilon absorbs
    // float error when the target is an exact multiple of dt.
    const auto want =
        static_cast<std::int64_t>(targetS_ / dt_ + 1e-9);
    for (; steps_ < want; ++steps_) {
        if (scheme_ == TransientScheme::VerticalImplicit)
            grid_->stepOnceVerticalImplicit(field_, scratch_, dt_);
        else
            grid_->stepOnce(field_, scratch_, dt_);
    }
}

double
TransientStepper::timeS() const
{
    return static_cast<double>(steps_) * dt_;
}

void
ThermalGrid::blockTemps(const ThermalField &field, int die, double x,
                        double y, double w, double h, double &avg_k,
                        double &peak_k) const
{
    const int l = dieLayer(die);
    if (l < 0)
        fatal("blockTemps on missing die %d", die);
    double wsum = 0.0, tsum = 0.0, pk = 0.0;
    forEachCellInRect(x, y, w, h, [&](int ix, int iy, double f) {
        const double t = field.at(l, ix, iy);
        wsum += f;
        tsum += f * t;
        pk = std::max(pk, t);
    });
    avg_k = wsum > 0.0 ? tsum / wsum : params_.ambientK;
    peak_k = pk > 0.0 ? pk : params_.ambientK;
}

} // namespace th
