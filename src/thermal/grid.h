/**
 * @file
 * Layered thermal RC grid and steady-state solver — the HotSpot 3.0
 * substitute. The chip (one silicon die, or the 4-die stack with its
 * die-to-die interface layers) sits centred under a larger copper
 * spreader and heat sink; each layer is discretised into a uniform
 * grid of cells connected by lateral and vertical thermal
 * conductances, with distributed convection from the sink to ambient.
 * Steady-state temperatures come from SOR iteration.
 */

#ifndef TH_THERMAL_GRID_H
#define TH_THERMAL_GRID_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace th {

class MgSolver;

/** One material layer of the stack (top = closest to the heat sink). */
struct ThermalLayer
{
    std::string name;
    double thicknessMm = 0.1;
    /** Conductivity inside the chip footprint, W/(m*K). */
    double kChip = 100.0;
    /** Conductivity outside the chip footprint (0 = no material). */
    double kOutside = 0.0;
    /** Power-injection die index (>= 0 for active silicon layers). */
    int dieIndex = -1;
    /** Volumetric heat capacity, J/(m^3*K) — used by the transient
     *  solver; silicon ~1.63e6, copper ~3.45e6. */
    double volHeatCapacity = 1.63e6;
};

/** SOR sweep ordering. */
enum class SorOrdering {
    /** Classic in-place lexicographic sweep; strictly serial. */
    Lexicographic,
    /**
     * Two-colour (red/black) sweep: cells of one parity only read
     * cells of the other, so each half-sweep is parallelised across
     * the global thread pool with bit-identical results for any
     * thread count.
     */
    RedBlack
};

/** Steady-state solution algorithm. */
enum class SolverKind {
    /** Point successive over-relaxation (ordering per sorOrdering). */
    Sor,
    /**
     * Geometric multigrid V-cycles (lateral 2x2 coarsening of the
     * conductance network, red-black vertical-line Gauss-Seidel
     * smoothing, see thermal/multigrid.h): near-resolution-independent
     * iteration counts, bit-identical for any fixed thread count.
     */
    Multigrid
};

/** Transient time-integration scheme. */
enum class TransientScheme {
    /**
     * Explicit Euler over every coupling. Stability clamps the step to
     * ~C/sum(G) of the stiffest cell; the 70-1000x vertical-to-lateral
     * conductance ratio of a thinned 3D stack makes that microseconds,
     * so a millisecond-scale DTM interval costs thousands of steps.
     */
    Explicit,
    /**
     * IMEX splitting: vertical conduction and ambient convection are
     * integrated implicitly (one exact tridiagonal solve per (ix, iy)
     * column — the same line idiom as the multigrid smoother), lateral
     * conduction explicitly. Unconditionally stable in the stiff
     * vertical direction, so the step is bounded only by the lateral
     * stability limit (milliseconds) and accuracy; the DTM replay path
     * steps at a fixed fraction of its control interval and cuts
     * transient cost by ~100x. First-order in time like the explicit
     * scheme; backward-Euler damping drives the fast vertical modes to
     * their quasi-steady profile, which is also the exact limit.
     */
    VerticalImplicit
};

/** Canonical lowercase wire/CLI name ("sor" / "multigrid"). */
const char *solverKindName(SolverKind kind);

/** Parse a wire/CLI name; returns false (out untouched) when unknown. */
bool solverKindByName(const std::string &name, SolverKind *out);

/** Solver and geometry parameters. */
struct ThermalParams
{
    double ambientK = 318.15;  ///< 45 C ambient (HotSpot default).
    int gridN = 48;            ///< Cells per side over the spreader.
    double spreaderMm = 20.0;  ///< Lateral size of spreader/sink.
    /** Effective sink-to-ambient convection resistance (K/W). */
    double convectionKPerW = 0.33;
    double sorOmega = 1.88;
    double maxResidualK = 1e-4;
    int maxIterations = 200000;
    SorOrdering sorOrdering = SorOrdering::Lexicographic;
    SolverKind solver = SolverKind::Sor;

    // --- Multigrid knobs (ignored by the SOR path). maxIterations
    // caps V-cycles and maxResidualK is the shared stopping
    // tolerance, so switching solvers keeps one convergence
    // contract. ---
    int mgPreSmooth = 2;    ///< Smoothing passes before restriction.
    int mgPostSmooth = 2;   ///< Smoothing passes after prolongation.
    int mgCoarseSweeps = 50; ///< Relaxations on the coarsest level.
    int mgCoarsestN = 4;    ///< Stop coarsening below this lateral size.

    // --- Leakage-temperature feedback (subthreshold leakage grows
    // exponentially with temperature; the solver iterates power and
    // temperature to equilibrium, which is what makes the paper's
    // iso-power 4x-density experiment run away to 418 K). ---
    /** Reference temperature at which nominal leakage is quoted (K). */
    double leakRefK = 365.0;
    /** Exponential slope: leakage doubles every ~theta*ln2 kelvin. */
    double leakThetaK = 26.0;
    /** Power/temperature fixed-point iterations (0 = no feedback). */
    int leakFeedbackIters = 8;
};

/** Solved temperature field. */
class ThermalField
{
  public:
    ThermalField(int grid_n, int layers, double ambient_k);

    double &at(int layer, int ix, int iy);
    double at(int layer, int ix, int iy) const;

    /** Flat access in (layer, iy, ix) order — the at() layout. */
    double &t(std::size_t flat) { return t_[flat]; }
    double t(std::size_t flat) const { return t_[flat]; }

    /** Maximum temperature over all power-bearing (die) layers. */
    double peak(const std::vector<int> &die_layers) const;

    int gridN() const { return n_; }
    int layers() const { return layers_; }

  private:
    int n_;
    int layers_;
    std::vector<double> t_;
};

/**
 * The layered grid model. Construct with the layer stack and chip
 * footprint, deposit block powers, then solve.
 */
class ThermalGrid
{
  public:
    /**
     * @param params  Geometry/solver parameters.
     * @param layers  Stack from the heat sink downwards.
     * @param chip_w  Chip width (mm); centred on the spreader.
     * @param chip_h  Chip height (mm).
     */
    ThermalGrid(const ThermalParams &params,
                std::vector<ThermalLayer> layers,
                double chip_w, double chip_h);
    ~ThermalGrid();
    ThermalGrid(ThermalGrid &&) noexcept;
    ThermalGrid &operator=(ThermalGrid &&) noexcept;

    /**
     * Deposit @p watts uniformly over a rectangle in chip coordinates
     * (mm, origin at the chip's lower-left corner) on die @p die.
     */
    void addPower(int die, double x, double y, double w, double h,
                  double watts);

    /** Remove all deposited power. */
    void clearPower();

    /** Total deposited power (W). */
    double totalPower() const;

    /** Convergence diagnostics of one steady-state solve. */
    struct SolveStats
    {
        /** SOR sweeps, or V-cycles under SolverKind::Multigrid. */
        int iterations = 0;
        double residualK = 0.0;
        /** V-cycle count (0 under SolverKind::Sor). */
        int vcycles = 0;

        /** Final-cycle delta contraction factor (multigrid only; the
         *  SOR stop test already measures the true max cell move). */
        double contraction = 0.0;
        /** Geometric-series error-to-fixed-point bound in kelvin:
         *  residualK under SOR, delta * rho / (1 - rho) under
         *  multigrid (see MgSolver::Stats). */
        double estErrorK = 0.0;
    };

    /**
     * Solve the steady state. @p warm_start seeds the iteration with
     * a previous field (same geometry) instead of ambient — e.g. the
     * leakage-feedback loop re-solves with slightly perturbed power,
     * where the previous solution is a few iterations from the new
     * fixed point.
     */
    ThermalField solve(SolveStats *stats = nullptr,
                       const ThermalField *warm_start = nullptr) const;

    /** Time/peak trace plus the final field of a transient run. */
    struct Transient
    {
        std::vector<double> timeS;
        std::vector<double> peakK;
        ThermalField final;

        Transient(int n, int layers, double ambient)
            : final(n, layers, ambient)
        {
        }
    };

    /**
     * Transient simulation: march the field forward from @p initial by
     * explicit time stepping under the currently deposited power.
     *
     * @param initial     Starting temperature field (e.g. a steady
     *                    solve under a previous power map).
     * @param duration_s  Simulated time span (seconds).
     * @param dt_s        Requested time step; clamped down to the
     *                    explicit-stability limit automatically.
     * @param samples     Number of (time, peak) samples to record.
     */
    Transient solveTransient(const ThermalField &initial,
                             double duration_s, double dt_s,
                             int samples = 50) const;

    /**
     * Stability-clamped explicit step: the largest dt <= @p dt_s that
     * satisfies dt <= 0.4 * C / sum(G) for every material cell. Both
     * solveTransient() and TransientStepper step at this size.
     */
    double transientDt(double dt_s) const;

    /**
     * Step bound of TransientScheme::VerticalImplicit: only the
     * explicitly-integrated lateral conductances constrain dt, so the
     * bound is dt <= 0.4 * C / sum(G_lateral) per material cell —
     * typically 1000x the full explicit bound on a thinned stack.
     */
    double transientDtLateral(double dt_s) const;

    /**
     * One explicit-Euler step of @p dt_s seconds under the currently
     * deposited power: T += dt/C * (sum G*(Tn - T) + P). @p scratch is
     * resized on demand and reused across calls. @p dt_s must respect
     * the stability bound — pass the result of transientDt().
     */
    void stepOnce(ThermalField &field, std::vector<double> &scratch,
                  double dt_s) const;

    /**
     * One TransientScheme::VerticalImplicit step of @p dt_s seconds:
     * lateral flux from the pre-step field plus injected power form
     * the explicit right-hand side, then every (ix, iy) column is
     * advanced by one backward-Euler solve of its vertical
     * conduction + ambient convection chain (Thomas algorithm). Air
     * cells hold their temperature, exactly like stepOnce(). @p dt_s
     * must respect transientDtLateral(). Deterministic for any thread
     * count (the column loop is serial; columns are independent).
     */
    void stepOnceVerticalImplicit(ThermalField &field,
                                  std::vector<double> &scratch,
                                  double dt_s) const;

    /**
     * Area-weighted average and peak temperature of a chip-coordinate
     * rectangle on die @p die in a solved field.
     */
    void blockTemps(const ThermalField &field, int die, double x,
                    double y, double w, double h, double &avg_k,
                    double &peak_k) const;

    /** Layer index of die @p die; -1 when absent. */
    int dieLayer(int die) const;

    /** All die layer indices. */
    std::vector<int> dieLayers() const;

    const ThermalParams &params() const { return params_; }

  private:
    /**
     * Precomputed RC network. The conductance, capacitance, and
     * conductance-sum arrays depend only on geometry, so they are
     * built once per grid (lazily) and shared by every steady-state
     * and transient solve; only the injected-power vector is refreshed
     * after addPower()/clearPower(). A ThermalGrid instance is NOT
     * safe for concurrent use — parallel callers each own a grid.
     */
    struct Network
    {
        std::vector<double> gRight, gDown, gBelow, gAmb, pIn;
        /** Loop-invariant total conductance per cell (incl. ambient). */
        std::vector<double> gSum;
        /** 1 / gSum, or 0 for isolated (air) cells. */
        std::vector<double> invG;
        /** Thermal capacitance per cell (J/K); 0 outside material. */
        std::vector<double> cap;
        int n = 0;
        int nl = 0;

        size_t idx(int l, int ix, int iy) const
        {
            return (static_cast<size_t>(l) * n + iy) * n + ix;
        }
    };

    /** Build-once/refresh accessor for the cached network. */
    const Network &network() const;
    void buildConductances() const;
    void refreshPower() const;

    /** Multigrid dispatch target of solve(). */
    ThermalField solveMultigrid(SolveStats *stats,
                                const ThermalField *warm_start) const;

    /** Cell conductivity of @p layer at grid cell (ix, iy). */
    double cellK(int layer, int ix, int iy) const;
    bool insideChip(int ix, int iy) const;
    void forEachCellInRect(double x, double y, double w, double h,
                           const std::function<void(int, int, double)>
                               &fn) const;

    ThermalParams params_;
    std::vector<ThermalLayer> layers_;
    double chip_w_, chip_h_;
    double chip_x0_, chip_y0_; ///< Chip origin on the spreader (mm).
    double cell_mm_;
    /** Power per cell for each die layer [die][cell]. */
    std::vector<std::vector<double>> power_;

    mutable Network net_;
    mutable bool net_built_ = false;
    mutable bool power_dirty_ = true;
    /** Lazily built multigrid hierarchy; geometry-only, so it is
     *  reused across solves like net_ (rhs reloads per solve). */
    mutable std::unique_ptr<MgSolver> mg_;
};

/**
 * Resumable transient state: marches a field forward in arbitrary
 * increments, e.g. one DTM control interval at a time with the grid's
 * deposited power changing between calls. The step size is clamped
 * once at construction and held for the whole run, and the step count
 * derives from the *accumulated* target time rather than per-call
 * durations — so a run split into N short advance() calls executes
 * exactly the same step sequence (bit-for-bit) as one long call.
 *
 * The grid must outlive the stepper. Power edits (addPower/clearPower)
 * between advance() calls take effect on the next step; geometry is
 * fixed at construction.
 */
class TransientStepper
{
  public:
    /**
     * @param grid     The network to step (borrowed).
     * @param initial  Starting field; must match the grid's geometry.
     * @param dt_s     Requested step, clamped via transientDt() (or
     *                 transientDtLateral() under VerticalImplicit).
     * @param scheme   Time integrator (see TransientScheme).
     */
    TransientStepper(const ThermalGrid &grid, const ThermalField &initial,
                     double dt_s,
                     TransientScheme scheme = TransientScheme::Explicit);

    /** March forward by @p duration_s seconds of simulated time. */
    void advance(double duration_s);

    const ThermalField &field() const { return field_; }
    /** Simulated time actually stepped so far (steps * dt). */
    double timeS() const;
    double dtS() const { return dt_; }
    std::int64_t steps() const { return steps_; }

  private:
    const ThermalGrid *grid_;
    ThermalField field_;
    std::vector<double> scratch_;
    double dt_;
    TransientScheme scheme_;
    double targetS_ = 0.0;
    std::int64_t steps_ = 0;
};

} // namespace th

#endif // TH_THERMAL_GRID_H
