#include "thermal/multigrid.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/log.h"
#include "common/threadpool.h"

namespace th {

namespace {

/**
 * Dispatch per-row work inline when the level is small (the pool's
 * job handoff would dominate the coarse sweeps) or across the pool
 * otherwise. Rows write disjoint cells, so both paths produce
 * bit-identical results.
 */
void
forEachRow(ThreadPool &pool, int rows, std::size_t level_cells,
           const std::function<void(std::size_t)> &body)
{
    if (level_cells < 4096) {
        for (int r = 0; r < rows; ++r)
            body(static_cast<std::size_t>(r));
        return;
    }
    pool.parallelFor(static_cast<std::size_t>(rows), body);
}

/** Rebuild diag (>= 1.0 identity on air) and mask from the coupling
 *  arrays; ghosts keep diag 1 / mask 0 from alloc(). */
void
computeDiagMask(MgLevel &L)
{
    const std::size_t plane = L.plane;
    const int pn = L.pn;
    for (int l = 0; l < L.nl; ++l) {
        for (int iy = 0; iy < L.n; ++iy) {
            const std::size_t row = L.at(l, 0, iy);
            for (int ix = 0; ix < L.n; ++ix) {
                const std::size_t c = row + ix;
                const double g = L.gAmb[c] + L.gRight[c - 1] +
                    L.gRight[c] + L.gDown[c - pn] + L.gDown[c] +
                    L.gBelow[c - plane] + L.gBelow[c];
                L.mask[c] = g > 0.0 ? 1.0 : 0.0;
                L.diag[c] = g > 0.0 ? g : 1.0;
            }
        }
    }
}

} // namespace

void
MgLevel::alloc(int lateral_n, int layers_nl)
{
    n = lateral_n;
    nl = layers_nl;
    pn = n + 2;
    plane = static_cast<std::size_t>(pn) * pn;
    cells = static_cast<std::size_t>(nl + 2) * plane;
    gRight.assign(cells, 0.0);
    gDown.assign(cells, 0.0);
    gBelow.assign(cells, 0.0);
    gAmb.assign(cells, 0.0);
    diag.assign(cells, 1.0);
    mask.assign(cells, 0.0);
    u.assign(cells, 0.0);
    rhs.assign(cells, 0.0);
    res.assign(cells, 0.0);
    cp.assign(cells, 0.0);
    dp.assign(cells, 0.0);
    rowDelta.assign(static_cast<std::size_t>(n), 0.0);
}

MgLevel
mgFineLevel(int n, int nl, const std::vector<double> &g_right,
            const std::vector<double> &g_down,
            const std::vector<double> &g_below,
            const std::vector<double> &g_amb)
{
    if (n < 2 || nl < 1)
        fatal("multigrid fine level needs n >= 2, nl >= 1 (got %d, %d)",
              n, nl);
    MgLevel L;
    L.alloc(n, nl);
    const auto flat = [n](int l, int ix, int iy) {
        return (static_cast<std::size_t>(l) * n + iy) * n + ix;
    };
    for (int l = 0; l < nl; ++l) {
        for (int iy = 0; iy < n; ++iy) {
            const std::size_t row = L.at(l, 0, iy);
            for (int ix = 0; ix < n; ++ix) {
                const std::size_t f = flat(l, ix, iy);
                L.gRight[row + ix] = g_right[f];
                L.gDown[row + ix] = g_down[f];
                L.gBelow[row + ix] = g_below[f];
                L.gAmb[row + ix] = g_amb[f];
            }
        }
    }
    computeDiagMask(L);
    return L;
}

MgLevel
mgCoarsen(const MgLevel &fine)
{
    if (fine.n % 2 != 0)
        fatal("cannot coarsen an odd lateral grid (n = %d)", fine.n);
    MgLevel C;
    C.alloc(fine.n / 2, fine.nl);
    for (int l = 0; l < C.nl; ++l) {
        for (int cy = 0; cy < C.n; ++cy) {
            const std::size_t crow = C.at(l, 0, cy);
            const std::size_t f0 = fine.at(l, 0, 2 * cy);
            const std::size_t f1 = fine.at(l, 0, 2 * cy + 1);
            for (int cx = 0; cx < C.n; ++cx) {
                const std::size_t a = f0 + 2 * cx;     // (2cx,   2cy)
                const std::size_t b = f0 + 2 * cx + 1; // (2cx+1, 2cy)
                const std::size_t c = f1 + 2 * cx;     // (2cx,   2cy+1)
                const std::size_t d = f1 + 2 * cx + 1; // (2cx+1, 2cy+1)
                // Couplings crossing the block's +x / +y boundary;
                // fine boundary entries are zero, so the last coarse
                // column/row comes out zero without branching.
                C.gRight[crow + cx] = fine.gRight[b] + fine.gRight[d];
                C.gDown[crow + cx] = fine.gDown[c] + fine.gDown[d];
                C.gBelow[crow + cx] = fine.gBelow[a] + fine.gBelow[b] +
                    fine.gBelow[c] + fine.gBelow[d];
                C.gAmb[crow + cx] = fine.gAmb[a] + fine.gAmb[b] +
                    fine.gAmb[c] + fine.gAmb[d];
            }
        }
    }
    computeDiagMask(C);
    return C;
}

void
mgBuildProlongation(MgLevel &fine, const MgLevel &coarse)
{
    fine.pIdx.assign(4 * fine.cells, 0);
    fine.pW.assign(4 * fine.cells, 0.0);
    const int cn = coarse.n;
    for (int l = 0; l < fine.nl; ++l) {
        for (int iy = 0; iy < fine.n; ++iy) {
            for (int ix = 0; ix < fine.n; ++ix) {
                const std::size_t c = fine.at(l, ix, iy);
                if (fine.mask[c] == 0.0)
                    continue; // air receives no correction
                const int cx = ix >> 1, cy = iy >> 1;
                // Cell-centred bilinear: the second parent lies on the
                // side this fine cell sits in its block, clamped at
                // the grid edge (Neumann-consistent).
                const int cx2 =
                    std::clamp(cx + ((ix & 1) != 0 ? 1 : -1), 0, cn - 1);
                const int cy2 =
                    std::clamp(cy + ((iy & 1) != 0 ? 1 : -1), 0, cn - 1);
                const std::size_t p[4] = {
                    coarse.at(l, cx, cy), coarse.at(l, cx2, cy),
                    coarse.at(l, cx, cy2), coarse.at(l, cx2, cy2)};
                double w[4] = {0.75 * 0.75, 0.25 * 0.75, 0.75 * 0.25,
                               0.25 * 0.25};
                double sum = 0.0;
                for (int k = 0; k < 4; ++k) {
                    w[k] *= coarse.mask[p[k]];
                    sum += w[k];
                }
                if (sum <= 0.0)
                    continue; // no material parent: leave zero weights
                for (int k = 0; k < 4; ++k) {
                    fine.pIdx[4 * c + k] =
                        static_cast<std::int32_t>(p[k]);
                    fine.pW[4 * c + k] = w[k] / sum;
                }
            }
        }
    }
}

double
mgSmooth(MgLevel &L, ThreadPool &pool)
{
    const int n = L.n, nl = L.nl, pn = L.pn;
    const std::size_t plane = L.plane;
    const double *gR = L.gRight.data();
    const double *gD = L.gDown.data();
    const double *gB = L.gBelow.data();
    const double *diag = L.diag.data();
    const double *rhs = L.rhs.data();
    double *u = L.u.data();
    double *cp = L.cp.data();
    double *dp = L.dp.data();

    // One colour class of one row: every column of parity
    // (iy + colour) is solved exactly in the vertical direction via
    // the Thomas algorithm, reading only opposite-colour neighbours
    // laterally. Ghost cells hold zero g/u/cp/dp, so no phase
    // branches on boundaries and every inner loop vectorizes.
    auto sweepRow = [&](int iy, int color) -> double {
        const int ix0 = (iy + color) & 1;
        // Lateral gather: dp <- rhs + flows from the frozen colour.
        for (int l = 0; l < nl; ++l) {
            const std::size_t row = L.at(l, 0, iy);
            for (int ix = ix0; ix < n; ix += 2) {
                const std::size_t c = row + ix;
                dp[c] = rhs[c] + gR[c - 1] * u[c - 1] +
                    gR[c] * u[c + 1] + gD[c - pn] * u[c - pn] +
                    gD[c] * u[c + pn];
            }
        }
        // Thomas forward elimination down the stack.
        for (int l = 0; l < nl; ++l) {
            const std::size_t row = L.at(l, 0, iy);
            for (int ix = ix0; ix < n; ix += 2) {
                const std::size_t c = row + ix;
                const double a = gB[c - plane]; // coupling to l - 1
                const double inv =
                    1.0 / (diag[c] + a * cp[c - plane]);
                cp[c] = -gB[c] * inv;
                dp[c] = (dp[c] + a * dp[c - plane]) * inv;
            }
        }
        // Back-substitution, recording the largest move in kelvin.
        double md = 0.0;
        for (int l = nl - 1; l >= 0; --l) {
            const std::size_t row = L.at(l, 0, iy);
            for (int ix = ix0; ix < n; ix += 2) {
                const std::size_t c = row + ix;
                const double t = dp[c] - cp[c] * u[c + plane];
                md = std::max(md, std::fabs(t - u[c]));
                u[c] = t;
            }
        }
        return md;
    };

    double max_delta = 0.0;
    for (int color = 0; color < 2; ++color) {
        forEachRow(pool, n, L.cells, [&](std::size_t r) {
            L.rowDelta[r] = sweepRow(static_cast<int>(r), color);
        });
        // Index-ordered reduction keeps the result independent of the
        // pool's scheduling.
        for (int iy = 0; iy < n; ++iy)
            max_delta = std::max(max_delta, L.rowDelta[iy]);
    }
    return max_delta;
}

void
mgResidual(MgLevel &L, ThreadPool &pool)
{
    const int n = L.n, nl = L.nl, pn = L.pn;
    const std::size_t plane = L.plane;
    const double *gR = L.gRight.data();
    const double *gD = L.gDown.data();
    const double *gB = L.gBelow.data();
    const double *diag = L.diag.data();
    const double *mask = L.mask.data();
    const double *rhs = L.rhs.data();
    const double *u = L.u.data();
    double *res = L.res.data();
    forEachRow(pool, n, L.cells, [&](std::size_t r) {
        const int iy = static_cast<int>(r);
        for (int l = 0; l < nl; ++l) {
            const std::size_t row = L.at(l, 0, iy);
            for (int ix = 0; ix < n; ++ix) {
                const std::size_t c = row + ix;
                res[c] = mask[c] *
                    (rhs[c] + gR[c - 1] * u[c - 1] + gR[c] * u[c + 1] +
                     gD[c - pn] * u[c - pn] + gD[c] * u[c + pn] +
                     gB[c - plane] * u[c - plane] +
                     gB[c] * u[c + plane] - diag[c] * u[c]);
            }
        }
    });
}

void
mgRestrict(const MgLevel &fine, MgLevel &coarse, ThreadPool &pool)
{
    std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
    const double *res = fine.res.data();
    double *crhs = coarse.rhs.data();
    const int cn = coarse.n, nl = coarse.nl;
    forEachRow(pool, cn, coarse.cells, [&](std::size_t r) {
        const int cy = static_cast<int>(r);
        for (int l = 0; l < nl; ++l) {
            const std::size_t crow = coarse.at(l, 0, cy);
            const std::size_t f0 = fine.at(l, 0, 2 * cy);
            const std::size_t f1 = fine.at(l, 0, 2 * cy + 1);
            for (int cx = 0; cx < cn; ++cx) {
                // Fixed-order sum of the block's four residuals.
                crhs[crow + cx] = res[f0 + 2 * cx] +
                    res[f0 + 2 * cx + 1] + res[f1 + 2 * cx] +
                    res[f1 + 2 * cx + 1];
            }
        }
    });
}

void
mgProlongAdd(MgLevel &fine, const MgLevel &coarse, ThreadPool &pool)
{
    const double *cu = coarse.u.data();
    const std::int32_t *pi = fine.pIdx.data();
    const double *pw = fine.pW.data();
    double *u = fine.u.data();
    const int n = fine.n, nl = fine.nl;
    forEachRow(pool, n, fine.cells, [&](std::size_t r) {
        const int iy = static_cast<int>(r);
        for (int l = 0; l < nl; ++l) {
            const std::size_t row = fine.at(l, 0, iy);
            for (int ix = 0; ix < n; ++ix) {
                const std::size_t c = row + ix;
                const std::size_t k = 4 * c;
                u[c] += pw[k] * cu[pi[k]] + pw[k + 1] * cu[pi[k + 1]] +
                    pw[k + 2] * cu[pi[k + 2]] +
                    pw[k + 3] * cu[pi[k + 3]];
            }
        }
    });
}

MgSolver::MgSolver(MgLevel fine, const MgParams &mp) : mp_(mp)
{
    mp_.preSmooth = std::max(0, mp_.preSmooth);
    mp_.postSmooth = std::max(1, mp_.postSmooth);
    mp_.coarseSweeps = std::max(1, mp_.coarseSweeps);
    mp_.coarsestN = std::max(2, mp_.coarsestN);
    mp_.maxCycles = std::max(1, mp_.maxCycles);
    mp_.gamma = std::min(2, std::max(1, mp_.gamma));
    levels_.push_back(std::move(fine));
    while (levels_.back().n % 2 == 0 &&
           levels_.back().n / 2 >= mp_.coarsestN) {
        levels_.push_back(mgCoarsen(levels_.back()));
        mgBuildProlongation(levels_[levels_.size() - 2],
                            levels_.back());
    }
    if (numLevels() == 1 && levels_.front().n > mp_.coarsestN)
        warn("multigrid on a %d-wide grid that cannot be coarsened "
             "(odd size); falling back to plain line relaxation",
             levels_.front().n);
}

void
MgSolver::setProblem(const std::vector<double> &power_w,
                     const std::vector<double> *u0)
{
    MgLevel &f = levels_.front();
    const int n = f.n, nl = f.nl;
    const std::size_t want =
        static_cast<std::size_t>(nl) * n * n;
    if (power_w.size() != want || (u0 != nullptr && u0->size() != want))
        fatal("multigrid problem arrays have the wrong size");
    if (u0 == nullptr)
        std::fill(f.u.begin(), f.u.end(), 0.0);
    for (int l = 0; l < nl; ++l) {
        for (int iy = 0; iy < n; ++iy) {
            const std::size_t row = f.at(l, 0, iy);
            const std::size_t flat =
                (static_cast<std::size_t>(l) * n + iy) * n;
            for (int ix = 0; ix < n; ++ix) {
                // Masked so air cells keep rhs = u = 0 exactly.
                f.rhs[row + ix] = power_w[flat + ix] * f.mask[row + ix];
                if (u0 != nullptr)
                    f.u[row + ix] =
                        (*u0)[flat + ix] * f.mask[row + ix];
            }
        }
    }
}

double
MgSolver::cycleAt(int k, ThreadPool &pool)
{
    MgLevel &L = levels_[static_cast<std::size_t>(k)];
    if (k == numLevels() - 1) {
        // Coarsest level: a fixed (deterministic) relaxation count
        // stands in for a direct solve — at <= coarsestN^2 columns it
        // is cheap and accurate far beyond the smoother's needs.
        double d = 0.0;
        for (int s = 0; s < mp_.coarseSweeps; ++s)
            d = mgSmooth(L, pool);
        return d;
    }
    for (int s = 0; s < mp_.preSmooth; ++s)
        mgSmooth(L, pool);
    mgResidual(L, pool);
    mgRestrict(L, levels_[static_cast<std::size_t>(k) + 1], pool);
    // gamma = 2 (a W-cycle) visits the coarse problem twice per pass.
    // The aggregation coarse operator is not spectrally equivalent to
    // the fine one, so a plain V-cycle stalls near convergence factor
    // ~0.9 on large grids; the second visit restores ~0.35 at ~1.5x
    // the per-cycle cost. Coarse-level work shrinks 4x per level while
    // visits only double, so the recursion cost stays geometric.
    for (int g = 0; g < mp_.gamma; ++g)
        cycleAt(k + 1, pool);
    mgProlongAdd(L, levels_[static_cast<std::size_t>(k) + 1], pool);
    double delta = 0.0;
    for (int s = 0; s < mp_.postSmooth; ++s)
        delta = mgSmooth(L, pool);
    return delta;
}

double
MgSolver::cycle()
{
    ThreadPool &pool = ThreadPool::global();
    if (numLevels() == 1) {
        double d = 0.0;
        for (int s = 0; s < mp_.preSmooth + mp_.postSmooth; ++s)
            d = mgSmooth(levels_[0], pool);
        return d;
    }
    return cycleAt(0, pool);
}

MgSolver::Stats
MgSolver::solve()
{
    Stats s;
    double delta = 0.0;
    double prev = 0.0;
    for (int k = 0; k < mp_.maxCycles; ++k) {
        delta = cycle();
        s.cycles = k + 1;
        // Geometric-series error bound: with per-cycle contraction
        // rho, the remaining distance to the fixed point is at most
        // delta * rho / (1 - rho). Requiring the bound (not just the
        // raw delta) under toleranceK makes the stop test never
        // looser than the legacy delta test. rho is clamped below 1
        // so a transient non-contracting cycle keeps iterating
        // instead of dividing by zero.
        const double rho = prev > 0.0
            ? std::min(std::max(delta / prev, 0.0), 0.99)
            : 0.0;
        s.contraction = rho;
        s.estErrorK = delta * rho / (1.0 - rho);
        if (delta < mp_.toleranceK && s.estErrorK < mp_.toleranceK)
            break;
        prev = delta;
    }
    s.residualK = delta;
    return s;
}

void
MgSolver::solution(std::vector<double> &out) const
{
    const MgLevel &f = levels_.front();
    const int n = f.n, nl = f.nl;
    out.assign(static_cast<std::size_t>(nl) * n * n, 0.0);
    for (int l = 0; l < nl; ++l) {
        for (int iy = 0; iy < n; ++iy) {
            const std::size_t row = f.at(l, 0, iy);
            const std::size_t flat =
                (static_cast<std::size_t>(l) * n + iy) * n;
            for (int ix = 0; ix < n; ++ix)
                out[flat + ix] = f.u[row + ix];
        }
    }
}

double
MgSolver::maxScaledResidualK()
{
    MgLevel &f = levels_.front();
    mgResidual(f, ThreadPool::global());
    double m = 0.0;
    for (int l = 0; l < f.nl; ++l) {
        for (int iy = 0; iy < f.n; ++iy) {
            const std::size_t row = f.at(l, 0, iy);
            for (int ix = 0; ix < f.n; ++ix)
                m = std::max(
                    m, std::fabs(f.res[row + ix]) / f.diag[row + ix]);
        }
    }
    return m;
}

} // namespace th
