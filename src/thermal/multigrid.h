/**
 * @file
 * Geometric multigrid for the layered thermal RC grid: a V-cycle over
 * a hierarchy of lateral 2x2 aggregations of the conductance network
 * (layers are never coarsened — the stack is only a handful of dies
 * thick but strongly coupled vertically), smoothed at every level by
 * red-black *vertical-line* Gauss-Seidel: each (ix, iy) column is
 * solved exactly with the Thomas algorithm, columns coloured by
 * (ix + iy) parity. Point smoothers barely damp the lateral error
 * modes here because vertical conductances exceed lateral ones by
 * 2-3 orders of magnitude (thin dies under square cells); line
 * relaxation in the strong direction restores textbook O(1) V-cycle
 * counts.
 *
 * The solver works in u = T - T_ambient space so the convection term
 * folds into the diagonal, and every per-level array is ghost-padded
 * (one zero ring in x, y, and layer) so the sweeps are branch-free
 * and auto-vectorizable. Air cells carry an identity row (diag 1,
 * couplings 0, mask 0) and never move from u = 0.
 *
 * Determinism: colour half-sweeps only read the other colour, rows
 * are distributed over th::ThreadPool and their maxima reduced in
 * index order, and restriction/prolongation are fixed-order gathers —
 * so results are bit-identical for any fixed thread count.
 */

#ifndef TH_THERMAL_MULTIGRID_H
#define TH_THERMAL_MULTIGRID_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace th {

class ThreadPool;

/** Multigrid cycle knobs (mirrored from ThermalParams by the grid). */
struct MgParams
{
    int preSmooth = 2;    ///< Smoothing passes on the way down.
    int postSmooth = 2;   ///< Smoothing passes on the way up.
    int coarseSweeps = 50; ///< Fixed relaxation count on the coarsest level.
    int coarsestN = 4;    ///< Stop coarsening below this lateral size.
    int maxCycles = 1000; ///< V-cycle cap.
    double toleranceK = 1e-4; ///< Stop when the fine smoothing delta drops below.
    /**
     * Coarse visits per cycle: 1 = V-cycle, 2 = W-cycle. W is the
     * default: the aggregation coarse operator under-corrects smooth
     * error, and the second visit cuts the cycle convergence factor
     * from ~0.9 to ~0.35 for ~1.5x the per-cycle work.
     */
    int gamma = 2;
};

/**
 * One level of the hierarchy. All field arrays use a ghost-padded
 * (nl + 2) x (n + 2) x (n + 2) layout in (layer, iy, ix) order; ghost
 * entries hold zero conductance/solution so sweeps never branch on
 * boundaries. The solution u is in kelvin above ambient.
 */
struct MgLevel
{
    int n = 0;  ///< Lateral cells per side.
    int nl = 0; ///< Layers (identical on every level).

    int pn = 0;             ///< Padded row stride, n + 2.
    std::size_t plane = 0;  ///< Padded plane size, pn * pn.
    std::size_t cells = 0;  ///< Padded total, (nl + 2) * plane.

    /** Padded flat index of real cell (l, ix, iy). */
    std::size_t at(int l, int ix, int iy) const
    {
        return (static_cast<std::size_t>(l + 1) * pn + (iy + 1)) * pn +
               (ix + 1);
    }

    /** Conductances to the +x / +y / +layer neighbour; 0 on ghosts. */
    std::vector<double> gRight, gDown, gBelow;
    /** Convection to ambient (top layer only on the fine grid). */
    std::vector<double> gAmb;
    /** Row diagonal: total conductance, or exactly 1.0 on air/ghost
     *  cells so the tridiagonal solves never divide by zero. */
    std::vector<double> diag;
    /** Exactly 1.0 on material cells, 0.0 on air and ghosts. */
    std::vector<double> mask;

    std::vector<double> u, rhs, res;

    /** Thomas-algorithm scratch (forward coefficients per cell). */
    std::vector<double> cp, dp;

    /** Per-row smoothing deltas, reduced in index order (one per iy). */
    std::vector<double> rowDelta;

    /**
     * Prolongation from the next-coarser level: per fine cell, 4
     * parent indices into the coarse padded arrays and 4 weights.
     * Weights are premasked (zero towards air parents, renormalised
     * over the material ones, zero entirely on fine air cells), so
     * prolongAdd is a pure 4-point gather.
     */
    std::vector<std::int32_t> pIdx;
    std::vector<double> pW;

    /** Size and zero every array from n/nl; diag preset to 1.0. */
    void alloc(int lateral_n, int layers_nl);
};

/**
 * Build the finest level from the grid's unpadded conductance arrays
 * (ThermalGrid::Network layout, (layer, iy, ix) order, size nl*n*n).
 */
MgLevel mgFineLevel(int n, int nl, const std::vector<double> &g_right,
                    const std::vector<double> &g_down,
                    const std::vector<double> &g_below,
                    const std::vector<double> &g_amb);

/**
 * Aggregate lateral 2x2 blocks into the next-coarser conductance
 * network (requires fine.n even): coarse couplings are sums of the
 * fine couplings crossing each block boundary, coarse convection is
 * the block sum, and the diagonal is rebuilt from the retained
 * couplings — the Galerkin coarse operator for piecewise-constant
 * aggregation.
 */
MgLevel mgCoarsen(const MgLevel &fine);

/** Precompute fine.pIdx/pW: masked cell-centred bilinear weights
 *  (9/16, 3/16, 3/16, 1/16; clamped at edges) towards coarse. */
void mgBuildProlongation(MgLevel &fine, const MgLevel &coarse);

/**
 * One red-black pass of vertical-line Gauss-Seidel (both colours).
 * Returns the maximum |u change| in kelvin, reduced in index order.
 */
double mgSmooth(MgLevel &lev, ThreadPool &pool);

/** res = mask * (rhs + sum g*u_neighbour - diag*u). */
void mgResidual(MgLevel &lev, ThreadPool &pool);

/** coarse.rhs[block] = sum of its 4 fine residuals; coarse.u = 0. */
void mgRestrict(const MgLevel &fine, MgLevel &coarse, ThreadPool &pool);

/** fine.u += interpolated coarse.u via the precomputed weights. */
void mgProlongAdd(MgLevel &fine, const MgLevel &coarse, ThreadPool &pool);

/**
 * V-cycle driver. Owns the level hierarchy; the conductance part is
 * built once per grid geometry, while rhs/initial guess are reloaded
 * per solve via setProblem(). Not safe for concurrent use (the grid
 * that owns it is documented single-threaded per instance).
 */
class MgSolver
{
  public:
    MgSolver(MgLevel fine, const MgParams &mp);

    int numLevels() const { return static_cast<int>(levels_.size()); }
    const MgLevel &level(int k) const
    {
        return levels_[static_cast<std::size_t>(k)];
    }

    struct Stats
    {
        int cycles = 0;
        double residualK = 0.0; ///< Final fine smoothing delta (K).

        /**
         * Per-cycle delta contraction factor rho observed at the final
         * cycle (0 when only one cycle ran). For a linearly converging
         * iteration the distance to the fixed point is bounded by
         * delta * rho / (1 - rho), so estErrorK — that bound — is
         * what solve() tests against toleranceK: the raw delta alone
         * understates the true error by 1 / (1 - rho), a ~1.5x gap at
         * the W-cycle's typical rho ~0.35.
         */
        double contraction = 0.0;
        double estErrorK = 0.0; ///< delta * rho / (1 - rho) bound (K).
    };

    /**
     * Load a new right-hand side (injected watts per fine cell,
     * unpadded nl*n*n) and initial guess (kelvin above ambient, same
     * layout; nullptr = start from ambient).
     */
    void setProblem(const std::vector<double> &power_w,
                    const std::vector<double> *u0);

    /** One V-cycle; returns the final fine post-smoothing delta (K). */
    double cycle();

    /** Cycle until the delta drops below toleranceK (or maxCycles). */
    Stats solve();

    /** Copy the fine solution (K above ambient) into unpadded @p out. */
    void solution(std::vector<double> &out) const;

    /** Max |residual| / diag over fine material cells — the same
     *  kelvin-scaled measure the stopping test bounds; for tests. */
    double maxScaledResidualK();

  private:
    double cycleAt(int k, ThreadPool &pool);

    MgParams mp_;
    std::vector<MgLevel> levels_;
};

} // namespace th

#endif // TH_THERMAL_MULTIGRID_H
