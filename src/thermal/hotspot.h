/**
 * @file
 * Thermal analysis facade: builds the layer stacks for the planar chip
 * and the 4-die stack, maps a PowerResult onto a Floorplan, solves the
 * grid, and reports per-block and worst-case temperatures — the
 * machinery behind the paper's Figure 10 thermal maps.
 */

#ifndef TH_THERMAL_HOTSPOT_H
#define TH_THERMAL_HOTSPOT_H

#include <string>
#include <vector>

#include "floorplan/floorplan.h"
#include "power/power_model.h"
#include "thermal/grid.h"

namespace th {

/** Temperature of one floorplanned block instance. */
struct BlockTemp
{
    BlockId id = BlockId::MiscLogic;
    int core = -1;
    int die = 0;
    double powerW = 0.0;
    double avgK = 0.0;
    double peakK = 0.0;
};

/** Results of one thermal analysis. */
struct ThermalReport
{
    double peakK = 0.0;
    std::string hottestBlock;
    int hottestDie = 0;
    std::vector<BlockTemp> blocks;

    /** Peak temperature of a given block kind across cores/dies. */
    double blockPeakK(BlockId id) const;
};

/** The HotSpot-substitute thermal model. */
class HotspotModel
{
  public:
    explicit HotspotModel(const ThermalParams &params = ThermalParams{});

    /**
     * Analyse a configuration. @p stacked selects the 4-die stack;
     * the floorplan must match (planar() or stacked()).
     * @p powerScale multiplies all block powers — used by the paper's
     * iso-power experiment (3D stack burning the full planar 90 W).
     */
    ThermalReport analyze(const Floorplan &fp, const PowerResult &power,
                          bool stacked, double power_scale = 1.0) const;

    /** Layer stack of the planar chip (sink at the front). */
    static std::vector<ThermalLayer> planarStack();

    /**
     * Layer stack of the 4-die chip. Die 0 (the LSB/top die Thermal
     * Herding targets) is adjacent to the TIM/heat sink; die 3 is
     * farthest (Section 2.1: thinned dies, d2d via interfaces at 25%
     * copper occupancy).
     */
    static std::vector<ThermalLayer> stackedStack();

    const ThermalParams &params() const { return params_; }

  private:
    ThermalParams params_;
};

} // namespace th

#endif // TH_THERMAL_HOTSPOT_H
