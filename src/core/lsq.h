/**
 * @file
 * Load and store queues with partial address memoization (PAM,
 * Section 3.5): the low 16 address bits are always broadcast on the
 * top die; one extra bit says whether the upper 48 bits are identical
 * to the most recent store address, herding most address comparisons
 * to the top die.
 */

#ifndef TH_CORE_LSQ_H
#define TH_CORE_LSQ_H

#include <cstdint>
#include <deque>

#include "common/types.h"
#include "core/activity.h"

namespace th {

/** One store-queue entry. */
struct StoreEntry
{
    std::uint64_t seq = 0;   ///< Program-order sequence number.
    Addr addr = 0;
    std::uint8_t size = 8;
    std::uint64_t value = 0;
    bool addrKnown = false;
    Cycle addrKnownAt = 0;   ///< Cycle the AGU produced the address.
    bool committed = false;
};

/** Result of a load's store-queue search. */
struct LsqSearchResult
{
    /** True when an older store to an overlapping address can forward. */
    bool forward = false;
    std::uint64_t value = 0;
    /**
     * True when some older store's address is still unknown — the load
     * must wait (conservative memory disambiguation).
     */
    bool mustWait = false;
    Cycle waitUntil = 0;
};

/**
 * Store queue + PAM accounting. The load queue proper only needs
 * occupancy tracking (held in the pipeline); the interesting machinery
 * — forwarding, disambiguation, and the PAM broadcasts — lives here.
 */
class StoreQueue
{
  public:
    explicit StoreQueue(int capacity);

    bool full() const
    {
        return static_cast<int>(entries_.size()) >= capacity_;
    }
    int size() const { return static_cast<int>(entries_.size()); }

    /**
     * Insert at dispatch. The final address/value are recorded for the
     * simulator's oracle disambiguation (modelling an ideal memory
     * dependence predictor, as in aggressive cores of this era), but
     * are not architecturally "known" until the AGU executes.
     */
    void insert(std::uint64_t seq, Addr addr, std::uint8_t size,
                std::uint64_t value);

    /** The store's AGU executed: address becomes known at @p when. */
    void setAddressKnown(std::uint64_t seq, Cycle when);

    /**
     * Search on behalf of a load at @p now: oracle disambiguation —
     * only genuinely conflicting older stores block — plus
     * store-to-load forwarding.
     */
    LsqSearchResult searchForLoad(std::uint64_t load_seq, Addr addr,
                                  std::uint8_t size, Cycle now) const;

    /** Pop the oldest entry at commit. */
    void commitOldest();

    /**
     * Record a PAM address broadcast: returns true when the upper 48
     * bits matched the most recent store address (top-die-only search).
     */
    bool recordBroadcast(Addr addr, bool is_store, ActivityStats &act,
                         PerfStats &perf, bool herding);

  private:
    int capacity_;
    std::deque<StoreEntry> entries_;
    Addr last_store_upper_ = 0;
    bool has_last_store_ = false;
};

} // namespace th

#endif // TH_CORE_LSQ_H
