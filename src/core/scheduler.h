/**
 * @file
 * Entry-stacked instruction scheduler bookkeeping (Section 3.4): the
 * 32 reservation-station entries are distributed 8 per die; the
 * allocator herds instructions towards the top die, and tag broadcasts
 * to dies with no occupied entries are gated.
 *
 * The actual wakeup/select timing lives in the pipeline model; this
 * class owns entry allocation, per-die occupancy, and the broadcast
 * gating accounting.
 */

#ifndef TH_CORE_SCHEDULER_H
#define TH_CORE_SCHEDULER_H

#include <array>

#include "common/types.h"
#include "core/activity.h"
#include "core/params.h"

namespace th {

/** Die-aware reservation station allocator. */
class SchedulerEntries
{
  public:
    /**
     * @param total_entries Total RS entries (split evenly over dies).
     * @param policy        Allocation policy.
     */
    SchedulerEntries(int total_entries, SchedAllocPolicy policy);

    /**
     * Allocate one entry.
     * @return The die index the entry landed on, or -1 when full.
     */
    int allocate();

    /** Release an entry on @p die (at issue time). */
    void release(int die);

    /** Entries currently occupied on @p die. */
    int occupancy(int die) const;

    /** Total occupied entries. */
    int totalOccupancy() const;

    /** Total free entries. */
    int freeEntries() const;

    /**
     * Record a tag broadcast: dies with at least one occupied entry
     * receive the broadcast; empty dies are gated (Section 3.4).
     */
    void recordBroadcast(ActivityStats &act) const;

    int entriesPerDie() const { return per_die_; }

  private:
    int per_die_;
    SchedAllocPolicy policy_;
    std::array<int, kNumDies> occupied_{};
    int rr_next_ = 0;
};

} // namespace th

#endif // TH_CORE_SCHEDULER_H
