#include "core/branch_predictor.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace th {

namespace {

std::size_t
checkPow2(int n, const char *what)
{
    if (n < 1 || (static_cast<unsigned>(n) & (n - 1)) != 0)
        fatal("%s must be a power of two (got %d)", what, n);
    return static_cast<std::size_t>(n);
}

} // namespace

HybridPredictor::HybridPredictor(const CoreConfig &cfg)
    : bimodal_(checkPow2(cfg.bimodalEntries, "bimodal entries"), 1),
      localHist_(checkPow2(cfg.localHistEntries, "local hist entries"), 0),
      localCounters_(checkPow2(cfg.localCounterEntries,
                               "local counter entries"), 1),
      global_(static_cast<std::size_t>(1) << cfg.globalHistBits, 1),
      chooser_(checkPow2(cfg.chooserEntries, "chooser entries"), 1),
      ghrMask_((1u << cfg.globalHistBits) - 1),
      localHistMask_(static_cast<std::uint16_t>(
          (1u << cfg.localHistBits) - 1))
{
}

std::size_t
HybridPredictor::bimodalIndex(Addr pc) const
{
    return (pc >> 2) & (bimodal_.size() - 1);
}

std::size_t
HybridPredictor::localHistIndex(Addr pc) const
{
    return (pc >> 2) & (localHist_.size() - 1);
}

std::size_t
HybridPredictor::globalIndex(Addr pc) const
{
    return ((pc >> 2) ^ ghr_) & (global_.size() - 1);
}

std::size_t
HybridPredictor::chooserIndex(Addr pc) const
{
    return (pc >> 2) & (chooser_.size() - 1);
}

bool
HybridPredictor::localPredict(Addr pc) const
{
    const std::uint16_t hist = localHist_[localHistIndex(pc)];
    const std::size_t idx =
        (static_cast<std::size_t>(hist) ^ (pc >> 2)) &
        (localCounters_.size() - 1);
    return counterTaken(localCounters_[idx]);
}

bool
HybridPredictor::globalPredict(Addr pc) const
{
    return counterTaken(global_[globalIndex(pc)]);
}

bool
HybridPredictor::predict(Addr pc) const
{
    // Hybrid: when the history-based components agree, trust them
    // (the bimodal table serves as warm-up bias through training);
    // when they disagree, the chooser arbitrates.
    const bool g = globalPredict(pc);
    const bool l = localPredict(pc);
    if (g == l)
        return g;
    return counterTaken(chooser_[chooserIndex(pc)]) ? g : l;
}

void
HybridPredictor::update(Addr pc, bool taken)
{
    const bool g_correct = globalPredict(pc) == taken;
    const bool l_correct = localPredict(pc) == taken;

    // Train the chooser towards whichever side was right.
    if (g_correct != l_correct)
        bump(chooser_[chooserIndex(pc)], g_correct);

    bump(global_[globalIndex(pc)], taken);
    bump(bimodal_[bimodalIndex(pc)], taken);

    const std::uint16_t hist = localHist_[localHistIndex(pc)];
    const std::size_t lidx =
        (static_cast<std::size_t>(hist) ^ (pc >> 2)) &
        (localCounters_.size() - 1);
    bump(localCounters_[lidx], taken);
    localHist_[localHistIndex(pc)] = static_cast<std::uint16_t>(
        ((hist << 1) | (taken ? 1 : 0)) & localHistMask_);

    ghr_ = ((ghr_ << 1) | (taken ? 1u : 0u)) & ghrMask_;
}

Btb::Btb(int entries, int assoc)
    : assoc_(assoc)
{
    if (assoc < 1 || entries < assoc || entries % assoc != 0)
        fatal("bad BTB geometry: %d entries, %d-way", entries, assoc);
    numSets_ = checkPow2(entries / assoc, "BTB sets");
    entries_.assign(static_cast<std::size_t>(entries), Entry{});
}

std::size_t
Btb::setIndex(Addr pc) const
{
    return (pc >> 2) & (numSets_ - 1);
}

BtbResult
Btb::lookup(Addr pc)
{
    BtbResult r;
    const std::size_t base = setIndex(pc) * static_cast<std::size_t>(assoc_);
    for (int w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + static_cast<std::size_t>(w)];
        if (e.valid && e.tag == pc) {
            e.lru = ++lruClock_;
            r.hit = true;
            r.target = e.target;
            r.needsUpperRead =
                (e.target & kUpperMask) != (pc & kUpperMask);
            return r;
        }
    }
    return r;
}

void
Btb::update(Addr pc, Addr target)
{
    const std::size_t base = setIndex(pc) * static_cast<std::size_t>(assoc_);
    ++lruClock_;

    int victim = 0;
    std::uint64_t oldest = UINT64_MAX;
    for (int w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + static_cast<std::size_t>(w)];
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lru = lruClock_;
            return;
        }
        if (!e.valid) {
            victim = w;
            oldest = 0;
        } else if (e.lru < oldest) {
            victim = w;
            oldest = e.lru;
        }
    }
    Entry &e = entries_[base + static_cast<std::size_t>(victim)];
    e.valid = true;
    e.tag = pc;
    e.target = target;
    e.lru = lruClock_;
}

} // namespace th
