#include "core/functional_units.h"

#include "common/log.h"

namespace th {

FuPool::FuPool(const CoreConfig &cfg, const FuLatencies &lat)
    : lat_(lat)
{
    auto init = [](UnitClass &uc, int count, int latency, bool pipelined) {
        uc.busyUntil.assign(static_cast<size_t>(count), 0);
        uc.latency = latency;
        uc.pipelined = pipelined;
    };
    init(alu_, cfg.numIntAlu, lat.intAlu, true);
    init(shift_, cfg.numIntShift, lat.intShift, true);
    init(mult_, cfg.numIntMult, lat.intMult, true);
    init(fpAdd_, cfg.numFpAdd, lat.fpAdd, true);
    init(fpMult_, cfg.numFpMult, lat.fpMult, true);
    init(fpDiv_, cfg.numFpDiv, lat.fpDiv, false);
    // Memory ports: AGU occupancy, one cycle per issue.
    init(loadPorts_, cfg.numLoadPorts, lat.agu, true);
    init(storePorts_, cfg.numStorePorts, lat.agu, true);
}

FuPool::UnitClass *
FuPool::classFor(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Jump:
      case OpClass::IndirectJump:
        return &alu_;
      case OpClass::IntShift:  return &shift_;
      case OpClass::IntMult:   return &mult_;
      case OpClass::FpAdd:     return &fpAdd_;
      case OpClass::FpMult:    return &fpMult_;
      case OpClass::FpDiv:     return &fpDiv_;
      case OpClass::Load:      return &loadPorts_;
      case OpClass::Store:     return &storePorts_;
      default:                 return nullptr;
    }
}

const FuPool::UnitClass *
FuPool::classFor(OpClass op) const
{
    return const_cast<FuPool *>(this)->classFor(op);
}

int
FuPool::tryIssue(OpClass op, Cycle cycle)
{
    UnitClass *uc = classFor(op);
    if (uc == nullptr)
        return 0; // Nops execute nowhere.
    for (auto &busy : uc->busyUntil) {
        if (busy <= cycle) {
            // Pipelined units accept a new op next cycle; unpipelined
            // ones block for the full latency.
            busy = cycle + (uc->pipelined
                            ? 1
                            : static_cast<Cycle>(uc->latency));
            return uc->latency;
        }
    }
    return -1;
}

int
FuPool::latency(OpClass op) const
{
    const UnitClass *uc = classFor(op);
    return uc == nullptr ? 0 : uc->latency;
}

} // namespace th
