#include "core/cache.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace th {

SetAssocCache::SetAssocCache(int bytes, int assoc, int line_bytes)
    : assoc_(assoc)
{
    if (bytes <= 0 || assoc <= 0 || line_bytes <= 0)
        fatal("bad cache geometry: %dB %d-way %dB lines",
              bytes, assoc, line_bytes);
    const int lines = bytes / line_bytes;
    if (lines % assoc != 0)
        fatal("cache lines (%d) not divisible by assoc (%d)",
              lines, assoc);
    num_sets_ = static_cast<std::size_t>(lines / assoc);
    if ((num_sets_ & (num_sets_ - 1)) != 0)
        fatal("cache sets must be a power of two (got %zu)", num_sets_);
    line_shift_ = log2Exact(static_cast<std::uint64_t>(line_bytes));
    lines_.assign(static_cast<std::size_t>(lines), Line{});
}

std::size_t
SetAssocCache::setOf(Addr addr) const
{
    return (addr >> line_shift_) & (num_sets_ - 1);
}

bool
SetAssocCache::access(Addr addr)
{
    const Addr tag = addr >> line_shift_;
    const std::size_t base = setOf(addr) * static_cast<std::size_t>(assoc_);
    ++clock_;

    int victim = 0;
    std::uint64_t oldest = UINT64_MAX;
    for (int w = 0; w < assoc_; ++w) {
        Line &l = lines_[base + static_cast<std::size_t>(w)];
        if (l.valid && l.tag == tag) {
            l.lru = clock_;
            return true;
        }
        if (!l.valid) {
            victim = w;
            oldest = 0;
        } else if (l.lru < oldest) {
            victim = w;
            oldest = l.lru;
        }
    }
    Line &l = lines_[base + static_cast<std::size_t>(victim)];
    l.valid = true;
    l.tag = tag;
    l.lru = clock_;
    return false;
}

bool
SetAssocCache::probe(Addr addr) const
{
    const Addr tag = addr >> line_shift_;
    const std::size_t base = setOf(addr) * static_cast<std::size_t>(assoc_);
    for (int w = 0; w < assoc_; ++w) {
        const Line &l = lines_[base + static_cast<std::size_t>(w)];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (auto &l : lines_)
        l.valid = false;
}

Tlb::Tlb(int entries, int assoc)
    : cache_(entries * 4096, assoc, 4096)
{
}

bool
Tlb::access(Addr vaddr)
{
    return cache_.access(vaddr);
}

MemoryHierarchy::MemoryHierarchy(const CoreConfig &cfg)
    : cfg_(cfg),
      il1_(cfg.il1Bytes, cfg.il1Assoc, cfg.il1LineBytes),
      dl1_(cfg.dl1Bytes, cfg.dl1Assoc, cfg.dl1LineBytes),
      l2_(cfg.l2Bytes, cfg.l2Assoc, cfg.l2LineBytes),
      itlb_(cfg.itlbEntries, cfg.itlbAssoc),
      dtlb_(cfg.dtlbEntries, cfg.dtlbAssoc)
{
}

MemAccessResult
MemoryHierarchy::throughL2(Addr addr, int l1_cycles, bool l1_hit)
{
    MemAccessResult r;
    r.l1Hit = l1_hit;
    if (l1_hit) {
        r.cycles = l1_cycles;
        return r;
    }
    r.l2Hit = l2_.access(addr);
    if (r.l2Hit) {
        r.cycles = l1_cycles + cfg_.l2Cycles();
    } else {
        r.cycles = l1_cycles + cfg_.l2Cycles() + cfg_.memLatencyCycles();
    }
    return r;
}

MemAccessResult
MemoryHierarchy::dataAccess(Addr addr)
{
    return throughL2(addr, cfg_.dl1Cycles, dl1_.access(addr));
}

MemAccessResult
MemoryHierarchy::instAccess(Addr addr)
{
    return throughL2(addr, cfg_.il1Cycles, il1_.access(addr));
}

void
MemoryHierarchy::prefill(Addr addr, bool into_l1)
{
    l2_.access(addr);
    if (into_l1)
        dl1_.access(addr);
}

int
MemoryHierarchy::dtlbAccess(Addr addr, bool &miss)
{
    miss = !dtlb_.access(addr);
    return miss ? cfg_.tlbMissCycles : 0;
}

int
MemoryHierarchy::itlbAccess(Addr addr, bool &miss)
{
    miss = !itlb_.access(addr);
    return miss ? cfg_.tlbMissCycles : 0;
}

} // namespace th
