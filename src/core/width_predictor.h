/**
 * @file
 * PC-indexed width predictor (Section 3): a table of two-bit saturating
 * counters predicting whether an instruction's result is low-width
 * (<= 16 significant bits) or full-width. The paper reports 97% of
 * fetched instructions have their widths correctly predicted.
 */

#ifndef TH_CORE_WIDTH_PREDICTOR_H
#define TH_CORE_WIDTH_PREDICTOR_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace th {

/**
 * Width-predictor policies (the paper uses TwoBit; the others exist
 * for ablation and bounding studies).
 */
enum class WidthPredKind {
    TwoBit,      ///< PC-indexed 2-bit counters (the paper's design).
    LastOutcome, ///< PC-indexed 1-bit last-outcome.
    AlwaysFull,  ///< Never predict low: no herding, no stalls.
    Oracle       ///< Perfect width knowledge (upper bound).
};

/** Display name for a predictor kind. */
const char *widthPredKindName(WidthPredKind kind);

/**
 * Two-bit saturating counter width predictor.
 *
 * Counter semantics: 0-1 predict full width (safe default), 2-3
 * predict low width. Mispredicting low-as-full is safe (missed power
 * opportunity); full-as-low is unsafe (pipeline stalls), so training
 * towards "low" requires repeated low-width outcomes.
 */
class WidthPredictor
{
  public:
    /**
     * @param entries Table size; must be a power of two.
     * @param kind    Prediction policy (see WidthPredKind).
     */
    explicit WidthPredictor(int entries = 4096,
                            WidthPredKind kind = WidthPredKind::TwoBit);

    /**
     * Predict the width class for the instruction at @p pc. The
     * Oracle policy needs the actual outcome, supplied via @p actual.
     */
    Width predict(Addr pc, Width actual = Width::Full) const;

    /** Train with the actual outcome. */
    void update(Addr pc, Width actual);

    /**
     * Immediate correction after an unsafe misprediction: the paper's
     * register file "corrects the instruction's width prediction to
     * prevent any further stalls" (Section 3.1) — force the entry
     * towards full.
     */
    void correctToFull(Addr pc);

    int entries() const { return static_cast<int>(table_.size()); }
    WidthPredKind kind() const { return kind_; }

  private:
    std::size_t index(Addr pc) const;

    WidthPredKind kind_;
    std::vector<std::uint8_t> table_;
    std::size_t mask_;
};

} // namespace th

#endif // TH_CORE_WIDTH_PREDICTOR_H
