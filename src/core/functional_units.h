/**
 * @file
 * Functional-unit pool: availability tracking for the Table 1 unit mix
 * (3 ALU, 2 shift, 1 mult/complex; FP add/mult/div; 1 load/store port
 * plus 1 load-only port).
 */

#ifndef TH_CORE_FUNCTIONAL_UNITS_H
#define TH_CORE_FUNCTIONAL_UNITS_H

#include <vector>

#include "common/types.h"
#include "core/params.h"

namespace th {

/** Pool of functional units, tracking per-unit busy-until cycles. */
class FuPool
{
  public:
    FuPool(const CoreConfig &cfg, const FuLatencies &lat);

    /**
     * Try to claim a unit for @p op at @p cycle.
     * @return Execution latency in cycles, or -1 when no unit is free.
     */
    int tryIssue(OpClass op, Cycle cycle);

    /** Execution latency of @p op (ignoring availability). */
    int latency(OpClass op) const;

    const FuLatencies &latencies() const { return lat_; }

  private:
    struct UnitClass
    {
        std::vector<Cycle> busyUntil; ///< Per-unit next-free cycle.
        int latency = 1;
        bool pipelined = true;
    };

    UnitClass *classFor(OpClass op);
    const UnitClass *classFor(OpClass op) const;

    FuLatencies lat_;
    UnitClass alu_, shift_, mult_, fpAdd_, fpMult_, fpDiv_;
    UnitClass loadPorts_, storePorts_;
};

} // namespace th

#endif // TH_CORE_FUNCTIONAL_UNITS_H
