/**
 * @file
 * Functional set-associative cache and TLB models with LRU replacement,
 * and the two-level memory hierarchy used by the core model. Timing is
 * expressed in cycles at the configured core frequency; DRAM latency is
 * fixed in nanoseconds, so faster clocks see more cycles per miss —
 * the effect behind the paper's "Fast" configuration IPC drop.
 */

#ifndef TH_CORE_CACHE_H
#define TH_CORE_CACHE_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/params.h"

namespace th {

/** Functional set-associative cache with true-LRU replacement. */
class SetAssocCache
{
  public:
    /**
     * @param bytes      Total capacity.
     * @param assoc      Associativity.
     * @param line_bytes Line size.
     */
    SetAssocCache(int bytes, int assoc, int line_bytes);

    /**
     * Access the line containing @p addr; fills on miss (no writeback
     * modelling — timing only).
     * @return True on hit.
     */
    bool access(Addr addr);

    /** Probe without updating state. */
    bool probe(Addr addr) const;

    /** Invalidate everything. */
    void flush();

    int numSets() const { return static_cast<int>(num_sets_); }
    int assoc() const { return assoc_; }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lru = 0;
    };

    std::size_t setOf(Addr addr) const;

    int assoc_;
    int line_shift_;
    std::size_t num_sets_;
    std::vector<Line> lines_;
    std::uint64_t clock_ = 0;
};

/** TLB: a set-associative cache of 4KB page translations. */
class Tlb
{
  public:
    Tlb(int entries, int assoc);

    /** @return True on TLB hit; fills on miss. */
    bool access(Addr vaddr);

  private:
    SetAssocCache cache_;
};

/** Outcome of one memory-hierarchy access. */
struct MemAccessResult
{
    int cycles = 0;     ///< Total access latency.
    bool l1Hit = false;
    bool l2Hit = false; ///< Meaningful only when !l1Hit.
};

/**
 * L1 (I or D) + shared L2 + DRAM hierarchy timing model.
 * The L2 is shared: construct one L2 and pass it to both L1 wrappers.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const CoreConfig &cfg);

    /** Data-side access (loads and committed stores). */
    MemAccessResult dataAccess(Addr addr);

    /** Instruction-side access. */
    MemAccessResult instAccess(Addr addr);

    /** D-TLB lookup: returns extra cycles (0 on hit). */
    int dtlbAccess(Addr addr, bool &miss);

    /** I-TLB lookup: returns extra cycles (0 on hit). */
    int itlbAccess(Addr addr, bool &miss);

    /**
     * Install @p addr's line as already-resident (steady-state
     * prefill): always into the L2, and into the L1 D-cache when
     * @p into_l1 is set.
     */
    void prefill(Addr addr, bool into_l1);

  private:
    MemAccessResult throughL2(Addr addr, int l1_cycles, bool l1_hit);

    const CoreConfig &cfg_;
    SetAssocCache il1_;
    SetAssocCache dl1_;
    SetAssocCache l2_;
    Tlb itlb_;
    Tlb dtlb_;
};

} // namespace th

#endif // TH_CORE_CACHE_H
