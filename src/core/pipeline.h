/**
 * @file
 * Cycle-level out-of-order core model (the SimpleScalar/MASE
 * substitute). Trace-driven: dynamic instructions stream in from a
 * TraceSource; branch mispredictions are modelled as fetch stalls of
 * the resolved-redirect length (wrong-path instructions are not
 * simulated — the standard trace-driven approximation).
 *
 * All Thermal Herding mechanisms are integrated here: width prediction
 * with unsafe-misprediction stalls in the register file, execution
 * units and data cache; the die-aware scheduler allocation; PAM in the
 * store queue; the target-memoizing BTB; and per-die activity
 * accounting for the power model.
 */

#ifndef TH_CORE_PIPELINE_H
#define TH_CORE_PIPELINE_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/cancel.h"
#include "common/types.h"
#include "core/activity.h"
#include "core/branch_predictor.h"
#include "core/cache.h"
#include "core/functional_units.h"
#include "core/lsq.h"
#include "core/params.h"
#include "core/scheduler.h"
#include "core/width_predictor.h"
#include "trace/trace.h"

namespace th {

/** One in-flight dynamic instruction. */
struct DynInst
{
    TraceRecord rec;
    std::uint64_t seq = 0;

    // Width prediction state.
    bool widthPredicted = false; ///< This op participates in prediction.
    bool predLow = false;
    bool actualLow = false;
    bool widthCorrected = false; ///< Unsafe pred corrected at RF read.

    // Pipeline timestamps.
    Cycle fetchedAt = 0;
    Cycle decodedAt = 0;
    Cycle dispatchedAt = 0;
    Cycle issuedAt = 0;
    Cycle completeAt = 0;
    bool inRs = false;
    bool issued = false;
    int rsDie = -1;
    bool hasSqEntry = false;
    bool hasLqEntry = false;
    bool rfStallCharged = false;

    // Dependencies.
    DynInst *producers[kMaxSrcs] = {nullptr, nullptr};
    bool wbDone = false; ///< Writeback accounting performed.

    // Branch state.
    bool mispredicted = false;
    bool btbHit = false;

    bool isNop() const { return rec.op == OpClass::Nop; }
};

/** Results of a core run. */
struct CoreResult
{
    PerfStats perf;
    ActivityStats activity;
    double freqGhz = 0.0;

    /** Committed instructions per nanosecond (the paper's IPns). */
    double ipns() const { return perf.ipc() * freqGhz; }

    /** Wall-clock seconds simulated. */
    double seconds() const
    {
        return static_cast<double>(perf.cycles.value()) / (freqGhz * 1e9);
    }
};

/**
 * The core model. Construct with a configuration, then run() a trace.
 * Single-use: construct a fresh Core for each run.
 */
class Core
{
  public:
    explicit Core(const CoreConfig &cfg);
    ~Core();

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /**
     * Simulate until @p max_insts commit (or the trace ends), after a
     * warm-up period of @p warmup_insts whose statistics are discarded
     * (caches, predictors, and queues stay warm).
     *
     * @p cancel, when non-null, is polled every few thousand cycles;
     * once it fires the run throws Cancelled. The throw happens before
     * any result is produced, so callers never cache a partial run.
     * @return Performance and activity statistics for the measured
     *         portion only.
     */
    CoreResult run(TraceSource &trace, std::uint64_t max_insts,
                   std::uint64_t warmup_insts = 0,
                   const CancelToken *cancel = nullptr);

    /**
     * Start an incremental run for interval-stepped simulation (the
     * DTM engine): prefills the memory hierarchy, attaches the trace,
     * and executes the warm-up window (statistics discarded, machine
     * state kept). Follow with runFor() calls. @p trace must outlive
     * the stepping. Mutually exclusive with run() on the same Core.
     */
    void beginRun(TraceSource &trace, std::uint64_t warmup_insts = 0);

    /**
     * Advance up to @p cycles cycles (fewer only when the trace ends
     * and the pipeline drains). Statistics are measured over this
     * interval alone: the returned CoreResult is a per-interval delta
     * whose activity counters feed the interval power computation.
     */
    CoreResult runFor(std::uint64_t cycles);

    /** True once the trace ended and the pipeline fully drained. */
    bool runDone() const;

    /** Instructions committed since construction (includes warm-up). */
    std::uint64_t totalCommitted() const { return committed_; }

    /**
     * Front-end throttling actuator for DTM: fetch is enabled for
     * @p on cycles out of every @p period (1/1 = full speed). Takes
     * effect on the next cycle; activity drops track the gating.
     */
    void setFetchThrottle(int on, int period);

    const CoreConfig &config() const { return cfg_; }

    // Accessors used by unit tests.
    const PerfStats &perf() const { return perf_; }
    const ActivityStats &activity() const { return act_; }

  private:
    /** Prefill the hierarchy and attach @p trace for stepping. */
    void attach(TraceSource &trace, std::uint64_t warmup_insts);
    /**
     * Execute one cycle (all six stages, warm-up stat reset, deadlock
     * watchdog). False when the machine is drained: trace over and
     * every queue empty. The shared loop body of run() and runFor().
     */
    bool stepCycle();

    // Pipeline stages (called in reverse order each cycle).
    void commitStage();
    void completeStage();
    void issueStage();
    void dispatchStage();
    void decodeStage();
    void fetchStage(TraceSource &trace);

    // Helpers.
    void fetchOne(TraceSource &trace);
    bool tryIssueInst(DynInst *inst, int &issued_this_cycle);
    bool issueMemOp(DynInst *inst);
    void finishIssue(DynInst *inst, Cycle complete_at);
    bool srcsReady(const DynInst *inst) const;
    void readRegisterOperands(DynInst *inst, bool &unsafe);
    void countExecActivity(const DynInst *inst);
    void commitStoreToCache(DynInst *inst);
    void onCommitCleanup(DynInst *inst);
    int dcacheLatency(DynInst *inst, Cycle start);
    bool herding() const { return cfg_.thermalHerding; }

    CoreConfig cfg_;
    FuLatencies fuLat_;

    // Structures.
    MemoryHierarchy mem_;
    HybridPredictor bpred_;
    Btb btb_;
    Btb ibtb_; ///< Indirect-target BTB (Table 1: 512 entries, 4-way).
    WidthPredictor wpred_;
    SchedulerEntries sched_;
    StoreQueue sq_;
    FuPool fus_;

    // Queues. unique_ptr ownership travels IFQ -> decode -> ROB; the
    // RS holds raw pointers into ROB-owned instructions.
    std::deque<std::unique_ptr<DynInst>> rob_;
    std::deque<std::unique_ptr<DynInst>> ifq_;
    std::deque<std::unique_ptr<DynInst>> decodeQ_;
    std::vector<DynInst *> rs_;
    int lqCount_ = 0;

    // Register rename state: last in-flight writer per arch register.
    std::vector<DynInst *> lastWriter_;

    // Fetch state.
    Cycle fetchResumeAt_ = 0;
    bool waitingRedirect_ = false;
    bool traceEnded_ = false;
    Addr lastFetchLine_ = ~Addr{0};
    Addr lastFetchPage_ = ~Addr{0};

    // Dispatch group stall (unsafe RF width mispredictions).
    Cycle dispatchBlockedUntil_ = 0;

    // Outstanding cache misses (MLP limit).
    std::vector<Cycle> missSlots_;

    Cycle cycle_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t committed_ = 0;

    // Incremental-run state (attach()/stepCycle()).
    TraceSource *trace_ = nullptr;
    std::uint64_t warmupInsts_ = 0;
    bool warm_ = true;          ///< Warm-up window finished.
    Cycle measureStart_ = 0;    ///< Cycle at which stats last reset.
    Cycle lastCommitCycle_ = 0; ///< Deadlock watchdog.

    // Fetch-throttle cadence (DTM actuator); 1/1 = no gating.
    int fetchOn_ = 1;
    int fetchPeriod_ = 1;

    PerfStats perf_;
    ActivityStats act_;
};

} // namespace th

#endif // TH_CORE_PIPELINE_H
