/**
 * @file
 * Core configuration: the Table 1 microarchitecture parameters of the
 * paper's Core-2-class baseline, plus the feature switches that define
 * the five evaluated configurations (Base / TH / Pipe / Fast / 3D).
 */

#ifndef TH_CORE_PARAMS_H
#define TH_CORE_PARAMS_H

#include <cmath>
#include <cstdint>
#include <string>

#include "core/width_predictor.h"

namespace th {

/** Scheduler allocation policy across the four dies (Section 3.4). */
enum class SchedAllocPolicy {
    TopDieFirst, ///< Herd active entries towards the heat-sink die.
    RoundRobin   ///< Thermally-unaware baseline (ablation).
};

/** Full configuration of one simulated core. */
struct CoreConfig
{
    /** Display label only — never affects simulation, and ablation
     *  variants deliberately share the base name, so configHash must
     *  not fold it. */
    std::string name = "base"; // th_lint: excluded(display label; not a simulation input)

    // --- Table 1 parameters. ---
    int fetchWidth = 4;
    int decodeWidth = 4;
    int commitWidth = 4;
    int issueWidth = 6;
    int ifqSize = 16;
    int robSize = 96;
    int rsSize = 32;
    int lqSize = 32;
    int sqSize = 20;

    int numIntAlu = 3;
    int numIntShift = 2;
    int numIntMult = 1;
    int numFpAdd = 1;
    int numFpMult = 1;
    int numFpDiv = 1;
    /** Memory ports: one load/store + one load-only. */
    int numLoadPorts = 2;
    int numStorePorts = 1;

    // Caches / TLBs.
    int il1Bytes = 32 * 1024, il1Assoc = 8, il1LineBytes = 64;
    int dl1Bytes = 32 * 1024, dl1Assoc = 8, dl1LineBytes = 64;
    int l2Bytes = 4 * 1024 * 1024, l2Assoc = 16, l2LineBytes = 64;
    int il1Cycles = 3;
    int dl1Cycles = 3;
    int itlbEntries = 128, itlbAssoc = 4;
    int dtlbEntries = 256, dtlbAssoc = 4;
    int tlbMissCycles = 30;

    // Branch prediction (10KB hybrid + BTB).
    int bimodalEntries = 4096;
    int localHistEntries = 1024, localHistBits = 10;
    int localCounterEntries = 4096;
    int globalHistBits = 12;
    int chooserEntries = 4096;
    int btbEntries = 2048, btbAssoc = 4;
    /** Separate indirect-target BTB (Table 1's iBTB). */
    int ibtbEntries = 512, ibtbAssoc = 4;

    // --- Timing. ---
    double freqGhz = 2.66;
    /** DRAM access latency in nanoseconds (frequency-independent). */
    double memLatencyNs = 75.0;
    /** Maximum overlapped cache misses (MLP). */
    int maxOutstandingMisses = 8;
    /** Depth of the fetch..execute path (cycles) for mispredict math:
     *  fetch -> decode -> dispatch -> issue -> resolve in this model,
     *  so the redirect bubble makes up the rest of the Table 1
     *  minimum penalty. */
    int frontendDepth = 5;

    // --- Feature switches. ---
    /** Thermal Herding: width prediction + partitioned structures. */
    bool thermalHerding = false;
    /** 3D pipeline optimisations: shorter mispredict path, faster L2
     *  (in cycles), no extra FP-load forwarding cycle. */
    bool pipeOpts = false;
    /** 4-die stacked implementation (affects power/thermal mapping). */
    bool stacked = false;
    SchedAllocPolicy schedAlloc = SchedAllocPolicy::TopDieFirst;

    // --- Ablation switches (all on when thermalHerding is on). ---
    /** Partial address memoization in the LSQ (Section 3.5). */
    bool pamEnabled = true;
    /** 2-bit partial value encoding in the L1D (Section 3.6); when
     *  off, only upper-zero values count as low-width (1-bit memo). */
    bool pveEnabled = true;
    /** BTB target memoization (Section 3.7). */
    bool btbMemoEnabled = true;

    // Width predictor.
    int widthPredEntries = 4096;
    WidthPredKind widthPredKind = WidthPredKind::TwoBit;

    // --- Derived latencies. ---
    /** Branch mispredict minimum penalty: 14 baseline / 12 with the 3D
     *  pipeline optimisations (Section 3.8). */
    int bmispredMin() const { return pipeOpts ? 12 : 14; }

    /** Redirect cycles after branch resolution. */
    int redirectCycles() const { return bmispredMin() - frontendDepth; }

    /** L2 hit latency: 12 baseline / 10 with 3D (Section 5.1.2). */
    int l2Cycles() const { return pipeOpts ? 10 : 12; }

    /** Extra forwarding cycle for loads feeding FP registers, removed
     *  by the compacted 3D bypass (Section 3.8). */
    int fpLoadExtraCycles() const { return pipeOpts ? 0 : 1; }

    /** DRAM latency in cycles at this configuration's frequency. */
    int memLatencyCycles() const
    {
        return static_cast<int>(std::ceil(memLatencyNs * freqGhz));
    }
};

/** Functional unit execution latencies (cycles). */
struct FuLatencies
{
    int intAlu = 1;
    int intShift = 1;
    int intMult = 4;
    int fpAdd = 3;
    int fpMult = 4;
    int fpDiv = 20;   ///< Unpipelined.
    int agu = 1;      ///< Address generation before cache access.
    int storeFwd = 1; ///< Store-to-load forwarding latency.
};

} // namespace th

#endif // TH_CORE_PARAMS_H
