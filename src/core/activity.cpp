#include "core/activity.h"

#include "common/log.h"

namespace th {

void
ActivityStats::registerStats(StatRegistry &reg,
                             const std::string &prefix) const
{
    auto r = [&](const std::string &n, const Counter &c) {
        reg.registerCounter(prefix + "." + n, &c);
    };
    r("rf.read_low", rfReadLow);
    r("rf.read_full", rfReadFull);
    r("rf.write_low", rfWriteLow);
    r("rf.write_full", rfWriteFull);
    r("alu.low", aluLow);
    r("alu.full", aluFull);
    r("shift.low", shiftLow);
    r("shift.full", shiftFull);
    r("mult.low", multLow);
    r("mult.full", multFull);
    r("fp.ops", fpOps);
    r("bypass.low", bypassLow);
    r("bypass.full", bypassFull);
    for (int d = 0; d < kNumDies; ++d) {
        r("sched.wakeup_die" + std::to_string(d), schedWakeupDie[d]);
        r("sched.alloc_die" + std::to_string(d), schedAllocDie[d]);
    }
    r("sched.select", schedSelect);
    r("sched.alloc", schedAlloc);
    r("lsq.search_low", lsqSearchLow);
    r("lsq.search_full", lsqSearchFull);
    r("lsq.write", lsqWrite);
    r("dl1.read_low", dl1ReadLow);
    r("dl1.read_full", dl1ReadFull);
    r("dl1.write_low", dl1WriteLow);
    r("dl1.write_full", dl1WriteFull);
    r("dl1.fill", dl1Fill);
    r("il1.access", il1Access);
    r("itlb.access", itlbAccess);
    r("dtlb.access", dtlbAccess);
    r("btb.low", btbLow);
    r("btb.full", btbFull);
    r("bpred.lookup", bpredLookup);
    r("bpred.update", bpredUpdate);
    r("decode.uops", decodeUops);
    r("rename.uops", renameUops);
    r("rob.read_low", robReadLow);
    r("rob.read_full", robReadFull);
    r("rob.write_low", robWriteLow);
    r("rob.write_full", robWriteFull);
    r("l2.access", l2Access);
    r("misc.uops", miscUops);
}

void
PerfStats::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    auto r = [&](const std::string &n, const Counter &c) {
        reg.registerCounter(prefix + "." + n, &c);
    };
    r("cycles", cycles);
    r("committed", committedInsts);
    r("fetched", fetchedInsts);
    r("branches", branches);
    r("branch_mispredicts", branchMispredicts);
    r("btb_misses", btbMisses);
    r("btb_target_stalls", btbTargetStalls);
    r("width.predictions", widthPredictions);
    r("width.correct", widthPredCorrect);
    r("width.unsafe", widthUnsafe);
    r("width.safe_miss", widthSafeMiss);
    r("width.rf_group_stalls", rfGroupStalls);
    r("width.exec_input_stalls", execInputStalls);
    r("width.exec_replays", execReplays);
    r("width.dcache_stalls", dcacheWidthStalls);
    r("mem.loads", loads);
    r("mem.stores", stores);
    r("mem.store_forwards", storeForwards);
    r("mem.dl1_misses", dl1Misses);
    r("mem.il1_misses", il1Misses);
    r("mem.l2_misses", l2Misses);
    r("mem.itlb_misses", itlbMisses);
    r("mem.dtlb_misses", dtlbMisses);
    r("lsq.pam_hits", pamHits);
    r("lsq.pam_misses", pamMisses);
    r("pve.zeros", pveZeros);
    r("pve.ones", pveOnes);
    r("pve.addr", pveAddr);
    r("pve.explicit", pveExplicit);
    reg.registerHistogram(prefix + ".value_width_bits",
                          &valueWidthBits);
}

} // namespace th
