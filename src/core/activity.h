/**
 * @file
 * Per-structure activity accounting. Every counter corresponds to an
 * energy entry in circuit::CoreEnergies; the power model multiplies the
 * two. "Low" counters are accesses that Thermal Herding confines to the
 * top die; in non-herding configurations all accesses count as "full".
 */

#ifndef TH_CORE_ACTIVITY_H
#define TH_CORE_ACTIVITY_H

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"

namespace th {

/** Activity counts gathered by one core over a run. */
struct ActivityStats
{
    // Register file.
    Counter rfReadLow, rfReadFull, rfWriteLow, rfWriteFull;
    // Execution.
    Counter aluLow, aluFull;
    Counter shiftLow, shiftFull;
    Counter multLow, multFull;
    Counter fpOps;
    Counter bypassLow, bypassFull;
    // Scheduler: tag broadcasts per die (gated when a die is empty),
    // select grants, allocations.
    Counter schedWakeupDie[kNumDies];
    Counter schedSelect, schedAlloc;
    /** Allocations landing on each die (herding effectiveness). */
    Counter schedAllocDie[kNumDies];
    // Load/store queues.
    Counter lsqSearchLow, lsqSearchFull, lsqWrite;
    // L1 data cache.
    Counter dl1ReadLow, dl1ReadFull, dl1WriteLow, dl1WriteFull;
    Counter dl1Fill;
    // Front end.
    Counter il1Access, itlbAccess, dtlbAccess;
    Counter btbLow, btbFull;
    Counter bpredLookup, bpredUpdate;
    Counter decodeUops, renameUops;
    // ROB (holds the physical registers in this microarchitecture).
    Counter robReadLow, robReadFull, robWriteLow, robWriteFull;
    // L2.
    Counter l2Access;
    // Everything else (control logic, global wiring) per uop.
    Counter miscUops;

    /** Register all counters under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;
};

/** Performance statistics for one run. */
struct PerfStats
{
    Counter cycles;
    Counter committedInsts;
    Counter fetchedInsts;

    /**
     * Distribution of significant bits in committed integer results —
     * the paper's motivating observation that most 64-bit values need
     * 16 bits or fewer (Section 3). 16 buckets of 4 bits each.
     */
    Histogram valueWidthBits{0.0, 64.0, 16};

    // Branches.
    Counter branches, branchMispredicts, btbMisses, btbTargetStalls;

    // Width prediction (Section 3.8: 97% of fetched insts correct).
    Counter widthPredictions, widthPredCorrect;
    Counter widthUnsafe;     ///< Predicted low, actually full.
    Counter widthSafeMiss;   ///< Predicted full, actually low.
    Counter rfGroupStalls;   ///< Dispatch-group stalls from unsafe preds.
    Counter execInputStalls; ///< 1-cycle re-enable stalls at execute.
    Counter execReplays;     ///< Output-width re-executions.
    Counter dcacheWidthStalls;

    // Memory system.
    Counter loads, stores, storeForwards;
    Counter dl1Misses, il1Misses, l2Misses;
    Counter itlbMisses, dtlbMisses;

    // LSQ partial address memoization (Section 3.5).
    Counter pamHits, pamMisses;

    // D-cache partial value encoding mix (Section 3.6).
    Counter pveZeros, pveOnes, pveAddr, pveExplicit;

    double ipc() const
    {
        return cycles.value() == 0 ? 0.0 :
            static_cast<double>(committedInsts.value()) /
            static_cast<double>(cycles.value());
    }

    double widthAccuracy() const
    {
        return widthPredictions.value() == 0 ? 1.0 :
            static_cast<double>(widthPredCorrect.value()) /
            static_cast<double>(widthPredictions.value());
    }

    double branchMispredRate() const
    {
        return branches.value() == 0 ? 0.0 :
            static_cast<double>(branchMispredicts.value()) /
            static_cast<double>(branches.value());
    }

    void registerStats(StatRegistry &reg, const std::string &prefix) const;
};

} // namespace th

#endif // TH_CORE_ACTIVITY_H
