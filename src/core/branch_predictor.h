/**
 * @file
 * Hybrid branch direction predictor (bimodal/local/global with a
 * chooser, ~10KB as in Table 1) and a set-associative branch target
 * buffer with the paper's target-memoization bit (Section 3.7): the
 * BTB stores the low 16 target bits on the top die plus one bit saying
 * whether the upper 48 bits match the branch PC's upper bits; when they
 * do not, reading the full target costs an extra prediction-pipeline
 * stall cycle.
 */

#ifndef TH_CORE_BRANCH_PREDICTOR_H
#define TH_CORE_BRANCH_PREDICTOR_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/params.h"

namespace th {

/** Result of a BTB lookup. */
struct BtbResult
{
    bool hit = false;
    Addr target = 0;
    /**
     * True when the stored target's upper 48 bits differ from the
     * branch PC's upper bits, requiring a second cycle to read the
     * lower dies (3D Thermal Herding BTB only).
     */
    bool needsUpperRead = false;
};

/**
 * Hybrid direction predictor: bimodal + local-history + global-history
 * components with a global chooser, modelled after the Table 1
 * "10KB Bimodal/Local/Global hybrid".
 *
 * The direction (MSB) and hysteresis (LSB) bits of every counter are
 * physically split into separate arrays in the 3D organisation
 * (Section 3.7); this affects power mapping, not prediction behaviour,
 * so the functional model is shared by all configurations.
 */
class HybridPredictor
{
  public:
    explicit HybridPredictor(const CoreConfig &cfg);

    /** Predict taken/not-taken for the branch at @p pc. */
    bool predict(Addr pc) const;

    /** Update all component tables and histories with the outcome. */
    void update(Addr pc, bool taken);

  private:
    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static void bump(std::uint8_t &c, bool taken)
    {
        if (taken) {
            if (c < 3)
                ++c;
        } else {
            if (c > 0)
                --c;
        }
    }

    std::size_t bimodalIndex(Addr pc) const;
    std::size_t localHistIndex(Addr pc) const;
    std::size_t globalIndex(Addr pc) const;
    std::size_t chooserIndex(Addr pc) const;
    bool localPredict(Addr pc) const;
    bool globalPredict(Addr pc) const;

    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint16_t> localHist_;
    std::vector<std::uint8_t> localCounters_;
    std::vector<std::uint8_t> global_;
    std::vector<std::uint8_t> chooser_;
    std::uint32_t ghr_ = 0;
    std::uint32_t ghrMask_;
    std::uint16_t localHistMask_;
};

/**
 * Set-associative BTB with LRU replacement and target memoization.
 */
class Btb
{
  public:
    Btb(int entries, int assoc);

    /** Look up the target for the control instruction at @p pc.
     *  Refreshes the entry's recency on a hit. */
    BtbResult lookup(Addr pc);

    /** Install or update the target after resolution. */
    void update(Addr pc, Addr target);

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lru = 0;
    };

    std::size_t setIndex(Addr pc) const;

    int assoc_;
    std::size_t numSets_;
    std::vector<Entry> entries_;
    std::uint64_t lruClock_ = 0;
};

} // namespace th

#endif // TH_CORE_BRANCH_PREDICTOR_H
