#include "core/lsq.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace th {

StoreQueue::StoreQueue(int capacity)
    : capacity_(capacity)
{
}

void
StoreQueue::insert(std::uint64_t seq, Addr addr, std::uint8_t size,
                   std::uint64_t value)
{
    if (full())
        panic("StoreQueue::insert when full");
    StoreEntry e;
    e.seq = seq;
    e.addr = addr;
    e.size = size;
    e.value = value;
    entries_.push_back(e);
}

void
StoreQueue::setAddressKnown(std::uint64_t seq, Cycle when)
{
    for (auto &e : entries_) {
        if (e.seq == seq) {
            e.addrKnown = true;
            e.addrKnownAt = when;
            return;
        }
    }
    panic("StoreQueue::setAddressKnown: seq %llu not found",
          static_cast<unsigned long long>(seq));
}

LsqSearchResult
StoreQueue::searchForLoad(std::uint64_t load_seq, Addr addr,
                          std::uint8_t size, Cycle now) const
{
    LsqSearchResult r;
    // Scan youngest-to-oldest among stores older than the load; only a
    // genuinely conflicting store matters (oracle disambiguation).
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        const StoreEntry &e = *it;
        if (e.seq >= load_seq)
            continue;
        const Addr lo = addr, hi = addr + size;
        const Addr slo = e.addr, shi = e.addr + e.size;
        if (!(lo < shi && slo < hi))
            continue;
        if (!e.addrKnown || e.addrKnownAt > now) {
            // The conflicting store hasn't produced its address/data
            // yet: the load must wait and retry.
            r.mustWait = true;
            r.waitUntil = e.addrKnown ? e.addrKnownAt : 0;
            return r;
        }
        if (slo == lo && e.size >= size) {
            r.forward = true;
            r.value = e.value;
        }
        return r;
    }
    return r;
}

void
StoreQueue::commitOldest()
{
    if (entries_.empty())
        panic("StoreQueue::commitOldest on empty queue");
    entries_.pop_front();
}

bool
StoreQueue::recordBroadcast(Addr addr, bool is_store, ActivityStats &act,
                            PerfStats &perf, bool herding)
{
    const Addr upper = addr & kUpperMask;
    const bool memoized = herding && has_last_store_ &&
        upper == last_store_upper_;

    if (memoized) {
        act.lsqSearchLow.inc();
        perf.pamHits.inc();
    } else {
        act.lsqSearchFull.inc();
        perf.pamMisses.inc();
    }

    if (is_store) {
        last_store_upper_ = upper;
        has_last_store_ = true;
    }
    return memoized;
}

} // namespace th
