#include "core/pipeline.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/log.h"

namespace th {

namespace {

/** FP architectural registers start here (see trace generator). */
constexpr RegIndex kFpRegBase = 32;

/** Sentinel for "fetch stalled until a branch resolves". */
constexpr Cycle kFetchBlocked = ~Cycle{0};

bool
isFpDest(const DynInst &inst)
{
    return inst.rec.hasDst && inst.rec.dstReg >= kFpRegBase;
}

} // namespace

Core::Core(const CoreConfig &cfg)
    : cfg_(cfg),
      mem_(cfg_),
      bpred_(cfg_),
      btb_(cfg_.btbEntries, cfg_.btbAssoc),
      ibtb_(cfg_.ibtbEntries, cfg_.ibtbAssoc),
      wpred_(cfg_.widthPredEntries, cfg_.widthPredKind),
      sched_(cfg_.rsSize, cfg_.schedAlloc),
      sq_(cfg_.sqSize),
      fus_(cfg_, fuLat_),
      lastWriter_(64, nullptr)
{
}

Core::~Core() = default;

void
Core::attach(TraceSource &trace, std::uint64_t warmup_insts)
{
    // Steady-state prefill (stands in for the long warmup windows
    // SimPoint-selected traces get in the paper's methodology).
    std::vector<PrefillLine> prefill;
    trace.prefillLines(prefill);
    for (const PrefillLine &line : prefill)
        mem_.prefill(line.addr, line.intoL1);

    trace_ = &trace;
    warmupInsts_ = warmup_insts;
    warm_ = warmup_insts == 0;
}

bool
Core::stepCycle()
{
    if (traceEnded_ && rob_.empty() && ifq_.empty() && decodeQ_.empty())
        return false;
    ++cycle_;
    const std::uint64_t before = committed_;

    commitStage();
    completeStage();
    issueStage();
    dispatchStage();
    decodeStage();
    fetchStage(*trace_);

    if (!warm_ && committed_ >= warmupInsts_) {
        // Discard warm-up statistics; keep all machine state.
        warm_ = true;
        measureStart_ = cycle_;
        perf_ = PerfStats{};
        act_ = ActivityStats{};
    }

    if (committed_ != before) {
        lastCommitCycle_ = cycle_;
    } else if (cycle_ - lastCommitCycle_ > 200000) {
        panic("core deadlock: no commit for 200k cycles "
              "(cycle %llu, committed %llu)",
              static_cast<unsigned long long>(cycle_),
              static_cast<unsigned long long>(committed_));
    }
    return true;
}

CoreResult
Core::run(TraceSource &trace, std::uint64_t max_insts,
          std::uint64_t warmup_insts, const CancelToken *cancel)
{
    attach(trace, warmup_insts);

    const std::uint64_t total = max_insts + warmup_insts;
    const Cycle limit = 500 * total + 100000;

    while (committed_ < total && cycle_ < limit) {
        // Cooperative cancellation: poll at a cadence cheap enough to
        // be invisible in the cycle loop, responsive enough that a
        // server deadline aborts within microseconds of firing.
        if (cancel != nullptr && (cycle_ & 0xFFF) == 0 &&
            cancel->cancelled())
            throw Cancelled();
        if (!stepCycle())
            break;
    }

    perf_.cycles.set(cycle_ - measureStart_);
    perf_.committedInsts.set(
        committed_ > warmup_insts ? committed_ - warmup_insts : 0);

    CoreResult r;
    r.perf = perf_;
    r.activity = act_;
    r.freqGhz = cfg_.freqGhz;
    return r;
}

void
Core::beginRun(TraceSource &trace, std::uint64_t warmup_insts)
{
    attach(trace, warmup_insts);

    // Run the warm-up window eagerly so the first runFor() interval
    // starts measuring from a warmed machine. The limit mirrors run()
    // (the deadlock watchdog inside stepCycle fires long before it on
    // genuinely stuck pipelines).
    const Cycle limit = cycle_ + 500 * warmup_insts + 100000;
    while (!warm_ && cycle_ < limit) {
        if (!stepCycle())
            break;
    }
    if (!warm_) {
        // Trace shorter than the warm-up window: measure what's left.
        warm_ = true;
        measureStart_ = cycle_;
        perf_ = PerfStats{};
        act_ = ActivityStats{};
    }
}

CoreResult
Core::runFor(std::uint64_t cycles)
{
    if (trace_ == nullptr)
        panic("runFor() before beginRun()");

    // Each interval measures from a clean slate; the caller
    // accumulates deltas across intervals as needed.
    perf_ = PerfStats{};
    act_ = ActivityStats{};
    const Cycle start = cycle_;
    const std::uint64_t commit_base = committed_;
    measureStart_ = cycle_;

    const Cycle end = cycle_ + cycles;
    while (cycle_ < end) {
        if (!stepCycle())
            break;
    }

    perf_.cycles.set(cycle_ - start);
    perf_.committedInsts.set(committed_ - commit_base);

    CoreResult r;
    r.perf = perf_;
    r.activity = act_;
    r.freqGhz = cfg_.freqGhz;
    return r;
}

bool
Core::runDone() const
{
    return traceEnded_ && rob_.empty() && ifq_.empty() &&
           decodeQ_.empty();
}

void
Core::setFetchThrottle(int on, int period)
{
    if (period < 1 || on < 1 || on > period)
        panic("invalid fetch throttle %d/%d", on, period);
    fetchOn_ = on;
    fetchPeriod_ = period;
}

// --------------------------------------------------------------------
// Fetch
// --------------------------------------------------------------------

void
Core::fetchStage(TraceSource &trace)
{
    // DTM fetch-throttle cadence: fetch only fetchOn_ of every
    // fetchPeriod_ cycles (downstream stages keep draining).
    if (fetchPeriod_ > 1 &&
        static_cast<int>(cycle_ % static_cast<Cycle>(fetchPeriod_)) >=
            fetchOn_)
        return;

    if (waitingRedirect_ || cycle_ < fetchResumeAt_)
        return;

    for (int i = 0; i < cfg_.fetchWidth; ++i) {
        if (static_cast<int>(ifq_.size()) >= cfg_.ifqSize)
            return;
        const Cycle before = fetchResumeAt_;
        fetchOne(trace);
        if (waitingRedirect_ || fetchResumeAt_ > cycle_ ||
            fetchResumeAt_ != before) {
            return; // taken branch, stall, or miss ended the group
        }
    }
}

void
Core::fetchOne(TraceSource &trace)
{
    TraceRecord rec;
    if (!trace.next(rec)) {
        fetchResumeAt_ = kFetchBlocked;
        waitingRedirect_ = false; // trace over; drain
        traceEnded_ = true;
        return;
    }

    // Instruction cache / ITLB at line and page granularity.
    const Addr line = rec.pc >> 6;
    if (line != lastFetchLine_) {
        lastFetchLine_ = line;
        act_.il1Access.inc();
        const Addr page = rec.pc >> 12;
        if (page != lastFetchPage_) {
            lastFetchPage_ = page;
            act_.itlbAccess.inc();
            bool tlb_miss = false;
            const int extra = mem_.itlbAccess(rec.pc, tlb_miss);
            if (tlb_miss) {
                perf_.itlbMisses.inc();
                fetchResumeAt_ = cycle_ + static_cast<Cycle>(extra);
            }
        }
        const MemAccessResult r = mem_.instAccess(rec.pc);
        if (!r.l1Hit) {
            perf_.il1Misses.inc();
            act_.l2Access.inc();
            if (!r.l2Hit)
                perf_.l2Misses.inc();
            fetchResumeAt_ = std::max(fetchResumeAt_,
                cycle_ + static_cast<Cycle>(r.cycles - cfg_.il1Cycles));
        }
    }

    auto inst = std::make_unique<DynInst>();
    inst->rec = rec;
    inst->seq = nextSeq_++;
    // A miss on this line delays the instruction's arrival in the IFQ.
    inst->fetchedAt = std::max(cycle_, fetchResumeAt_ == kFetchBlocked
                               ? cycle_ : fetchResumeAt_);
    perf_.fetchedInsts.inc();

    if (rec.isControl()) {
        bool pred_taken;
        if (rec.op == OpClass::Branch) {
            perf_.branches.inc();
            act_.bpredLookup.inc();
            pred_taken = bpred_.predict(rec.pc);
        } else {
            pred_taken = true;
        }

        // Indirect jumps consult the dedicated iBTB (Table 1);
        // direct branches and jumps use the main BTB.
        const bool indirect = rec.op == OpClass::IndirectJump;
        const BtbResult bres =
            indirect ? ibtb_.lookup(rec.pc) : btb_.lookup(rec.pc);
        inst->btbHit = bres.hit;

        // Effective front-end decision: a taken prediction without a
        // BTB target falls through sequentially.
        const bool eff_taken = pred_taken && bres.hit;

        if (eff_taken) {
            if (herding() && cfg_.btbMemoEnabled && bres.needsUpperRead) {
                // The memoization bit says the upper target bits live
                // on the lower dies: one-cycle prediction-pipeline
                // stall (Section 3.7).
                act_.btbFull.inc();
                perf_.btbTargetStalls.inc();
                fetchResumeAt_ = cycle_ + 2;
            } else {
                act_.btbLow.inc();
                fetchResumeAt_ = cycle_ + 1; // taken ends fetch group
            }
        } else {
            act_.btbLow.inc();
            if (!bres.hit)
                perf_.btbMisses.inc();
        }

        inst->mispredicted =
            (eff_taken != rec.taken) ||
            (eff_taken && rec.taken && bres.target != rec.target);
        if (inst->mispredicted) {
            perf_.branchMispredicts.inc();
            waitingRedirect_ = true;
        }

        // Train at fetch with the trace outcome: equivalent to
        // speculative history update with perfect mispredict fixup
        // (wrong-path fetches are not simulated). The energy of the
        // architectural update is accounted at commit.
        if (rec.op == OpClass::Branch)
            bpred_.update(rec.pc, rec.taken);
        if (rec.taken)
            (indirect ? ibtb_ : btb_).update(rec.pc, rec.target);
    }

    ifq_.push_back(std::move(inst));
}

// --------------------------------------------------------------------
// Decode
// --------------------------------------------------------------------

void
Core::decodeStage()
{
    const int cap = 2 * cfg_.decodeWidth;
    for (int i = 0; i < cfg_.decodeWidth; ++i) {
        if (ifq_.empty() ||
            static_cast<int>(decodeQ_.size()) >= cap)
            return;
        DynInst *front = ifq_.front().get();
        if (front->fetchedAt >= cycle_)
            return; // fetched this very cycle

        front->decodedAt = cycle_;
        act_.decodeUops.inc();

        // Width prediction (Section 3): integer results and store data.
        const TraceRecord &rec = front->rec;
        const bool predicts =
            (rec.hasDst && rec.dstReg < kFpRegBase &&
             !isControlOp(rec.op)) ||
            rec.op == OpClass::Store || rec.op == OpClass::Load;
        if (herding() && predicts) {
            front->widthPredicted = true;
            if (rec.isMem()) {
                // The D-cache's 2-bit encoding broadens "low" to any
                // trivially encodable upper bits (Section 3.6); the
                // 1-bit ablation only covers upper-zero values.
                front->actualLow = cfg_.pveEnabled
                    ? isTriviallyEncodable(rec.resultValue, rec.effAddr)
                    : rec.resultWidth() == Width::Low;
            } else {
                front->actualLow = rec.resultWidth() == Width::Low;
            }
            front->predLow = wpred_.predict(
                rec.pc, front->actualLow ? Width::Low : Width::Full) ==
                Width::Low;
            perf_.widthPredictions.inc();
            if (front->predLow == front->actualLow) {
                perf_.widthPredCorrect.inc();
            } else if (front->predLow) {
                perf_.widthUnsafe.inc();
            } else {
                perf_.widthSafeMiss.inc();
            }
        }

        decodeQ_.push_back(std::move(ifq_.front()));
        ifq_.pop_front();
    }
}

// --------------------------------------------------------------------
// Dispatch
// --------------------------------------------------------------------

void
Core::readRegisterOperands(DynInst *inst, bool &unsafe)
{
    unsafe = false;
    for (int s = 0; s < inst->rec.numSrcs; ++s) {
        DynInst *producer = lastWriter_[inst->rec.srcRegs[s]];
        inst->producers[s] = producer;

        const bool from_rf = producer == nullptr ||
            (producer->issued && producer->completeAt <= cycle_);
        if (!from_rf)
            continue; // operand arrives via bypass/wakeup later

        const bool src_low =
            classifyWidth(inst->rec.srcValues[s]) == Width::Low;

        // Producer completed but not committed: value read from the
        // ROB (which holds the physical registers); otherwise from the
        // architected register file.
        const bool from_rob = producer != nullptr;
        if (herding()) {
            if (from_rob) {
                (src_low ? act_.robReadLow : act_.robReadFull).inc();
            } else {
                (src_low ? act_.rfReadLow : act_.rfReadFull).inc();
            }
            // Unsafe width misprediction detected via the memoization
            // bit (Section 3.1): predicted low but the RF operand is
            // actually full width. Memory ops are excluded: their
            // width prediction governs the *data* access (PVE), while
            // addresses — almost always full width — are handled by
            // the LSQ's partial address memoization (Section 3.5).
            if (!inst->rec.isMem() && inst->predLow &&
                !inst->widthCorrected && !src_low)
                unsafe = true;
        } else {
            (from_rob ? act_.robReadFull : act_.rfReadFull).inc();
        }
    }
}

void
Core::dispatchStage()
{
    if (cycle_ < dispatchBlockedUntil_)
        return;

    for (int i = 0; i < cfg_.decodeWidth; ++i) {
        if (decodeQ_.empty())
            return;
        DynInst *inst = decodeQ_.front().get();
        if (inst->decodedAt >= cycle_)
            return;

        // Structural resources.
        if (static_cast<int>(rob_.size()) >= cfg_.robSize)
            return;
        const bool needs_rs = !inst->isNop();
        if (needs_rs && sched_.freeEntries() == 0)
            return;
        if (inst->rec.op == OpClass::Load && lqCount_ >= cfg_.lqSize)
            return;
        if (inst->rec.op == OpClass::Store && sq_.full())
            return;

        bool unsafe = false;
        readRegisterOperands(inst, unsafe);
        if (unsafe && !inst->rfStallCharged) {
            // One stall covers every unsafe misprediction in this
            // dispatch group (Section 3.1): charge the group, correct
            // the offending predictions, retry next cycle.
            perf_.rfGroupStalls.inc();
            dispatchBlockedUntil_ = cycle_ + 1;
            int marked = 0;
            for (auto &qp : decodeQ_) {
                if (marked++ >= cfg_.decodeWidth)
                    break;
                qp->rfStallCharged = true;
                if (qp->widthPredicted && qp->predLow &&
                    !qp->actualLow) {
                    qp->widthCorrected = true;
                    wpred_.correctToFull(qp->rec.pc);
                }
            }
            return;
        }

        inst->dispatchedAt = cycle_;
        act_.renameUops.inc();

        if (needs_rs) {
            const int die = sched_.allocate();
            if (die < 0)
                panic("RS allocation failed despite free entries");
            inst->rsDie = die;
            inst->inRs = true;
            act_.schedAlloc.inc();
            act_.schedAllocDie[die].inc();
            rs_.push_back(inst);
        } else {
            // Nops complete trivially next cycle.
            inst->issued = true;
            inst->issuedAt = cycle_;
            inst->completeAt = cycle_ + 1;
        }

        if (inst->rec.op == OpClass::Load)
            ++lqCount_;
        if (inst->rec.op == OpClass::Store) {
            sq_.insert(inst->seq, inst->rec.effAddr, inst->rec.memSize,
                       inst->rec.resultValue);
            act_.lsqWrite.inc();
        }

        if (inst->rec.hasDst)
            lastWriter_[inst->rec.dstReg] = inst;

        rob_.push_back(std::move(decodeQ_.front()));
        decodeQ_.pop_front();
    }
}

// --------------------------------------------------------------------
// Issue / execute
// --------------------------------------------------------------------

bool
Core::srcsReady(const DynInst *inst) const
{
    for (int s = 0; s < inst->rec.numSrcs; ++s) {
        const DynInst *p = inst->producers[s];
        if (p != nullptr && (!p->issued || p->completeAt > cycle_))
            return false;
    }
    return true;
}

int
Core::dcacheLatency(DynInst *inst, Cycle start)
{
    const TraceRecord &rec = inst->rec;
    const MemAccessResult res = mem_.dataAccess(rec.effAddr);

    // Partial value encoding census (Section 3.6).
    switch (encodePartialValue(rec.resultValue, rec.effAddr)) {
      case PartialValueCode::UpperZeros: perf_.pveZeros.inc(); break;
      case PartialValueCode::UpperOnes: perf_.pveOnes.inc(); break;
      case PartialValueCode::UpperAddr: perf_.pveAddr.inc(); break;
      case PartialValueCode::Explicit: perf_.pveExplicit.inc(); break;
    }

    int lat;
    if (res.l1Hit) {
        lat = cfg_.dl1Cycles;
    } else {
        perf_.dl1Misses.inc();
        act_.l2Access.inc();
        act_.dl1Fill.inc();
        if (!res.l2Hit)
            perf_.l2Misses.inc();

        // Bound memory-level parallelism: at most maxOutstandingMisses
        // misses in flight.
        std::erase_if(missSlots_, [&](Cycle c) { return c <= start; });
        Cycle begin = start;
        if (static_cast<int>(missSlots_.size()) >=
            cfg_.maxOutstandingMisses) {
            begin = *std::min_element(missSlots_.begin(),
                                      missSlots_.end());
        }
        const Cycle done = begin + static_cast<Cycle>(res.cycles);
        missSlots_.push_back(done);
        return static_cast<int>(done - start);
    }

    // Herded read: a predicted-low load with encodable upper bits only
    // touches the top die; an unsafe prediction stalls the cache
    // pipeline one cycle and reads the hitting way's remaining bits.
    const bool pred_low = herding() && inst->predLow &&
        !inst->widthCorrected;
    if (pred_low && inst->actualLow) {
        act_.dl1ReadLow.inc();
    } else if (pred_low && !inst->actualLow) {
        act_.dl1ReadFull.inc();
        act_.dl1ReadFull.inc(); // second access for the upper bits
        perf_.dcacheWidthStalls.inc();
        lat += 1;
    } else {
        act_.dl1ReadFull.inc();
    }
    return lat;
}

bool
Core::issueMemOp(DynInst *inst)
{
    const TraceRecord &rec = inst->rec;

    if (rec.op == OpClass::Load) {
        const LsqSearchResult search =
            sq_.searchForLoad(inst->seq, rec.effAddr, rec.memSize, cycle_);
        if (search.mustWait)
            return false; // conservative disambiguation

        if (fus_.tryIssue(OpClass::Load, cycle_) < 0)
            return false;

        perf_.loads.inc();
        sq_.recordBroadcast(rec.effAddr, false, act_, perf_,
                            herding() && cfg_.pamEnabled);

        Cycle t = cycle_ + static_cast<Cycle>(fuLat_.agu);
        act_.dtlbAccess.inc();
        bool tlb_miss = false;
        t += static_cast<Cycle>(mem_.dtlbAccess(rec.effAddr, tlb_miss));
        if (tlb_miss)
            perf_.dtlbMisses.inc();

        if (search.forward) {
            perf_.storeForwards.inc();
            t += static_cast<Cycle>(fuLat_.storeFwd);
        } else {
            t += static_cast<Cycle>(dcacheLatency(inst, t));
        }

        // Loads feeding FP registers pay the extra forwarding cycle
        // in the planar floorplan (Section 3.8).
        if (isFpDest(*inst))
            t += static_cast<Cycle>(cfg_.fpLoadExtraCycles());

        finishIssue(inst, t);
        return true;
    }

    // Store: issue the AGU once address and data are ready.
    if (fus_.tryIssue(OpClass::Store, cycle_) < 0)
        return false;

    perf_.stores.inc();
    const Cycle done = cycle_ + static_cast<Cycle>(fuLat_.agu);
    sq_.setAddressKnown(inst->seq, done);
    sq_.recordBroadcast(rec.effAddr, true, act_, perf_,
                        herding() && cfg_.pamEnabled);

    act_.dtlbAccess.inc();
    bool tlb_miss = false;
    const int extra = mem_.dtlbAccess(rec.effAddr, tlb_miss);
    if (tlb_miss)
        perf_.dtlbMisses.inc();

    finishIssue(inst, done + static_cast<Cycle>(extra));
    return true;
}

void
Core::countExecActivity(const DynInst *inst)
{
    const bool gated = herding() && inst->predLow &&
        !inst->widthCorrected && inst->actualLow;
    switch (inst->rec.op) {
      case OpClass::IntAlu:
      case OpClass::Branch:
      case OpClass::Jump:
      case OpClass::IndirectJump:
        (gated ? act_.aluLow : act_.aluFull).inc();
        break;
      case OpClass::IntShift:
        (gated ? act_.shiftLow : act_.shiftFull).inc();
        break;
      case OpClass::IntMult:
        (gated ? act_.multLow : act_.multFull).inc();
        break;
      case OpClass::FpAdd:
      case OpClass::FpMult:
      case OpClass::FpDiv:
        act_.fpOps.inc();
        break;
      default:
        break;
    }
}

bool
Core::tryIssueInst(DynInst *inst, int &issued_this_cycle)
{
    if (!srcsReady(inst))
        return false;

    if (inst->rec.isMem()) {
        if (!issueMemOp(inst))
            return false;
        ++issued_this_cycle;
        return true;
    }

    const int lat = fus_.tryIssue(inst->rec.op, cycle_);
    if (lat < 0)
        return false;

    Cycle done = cycle_ + static_cast<Cycle>(lat);

    if (herding() && inst->widthPredicted && inst->predLow &&
        !inst->widthCorrected) {
        // Unsafe execution-stage mispredictions (Section 3.2): full
        // operands on a gated unit cost a one-cycle re-enable stall;
        // a full result from low operands is only discovered at the
        // output and forces re-execution.
        bool input_full = false;
        for (int s = 0; s < inst->rec.numSrcs; ++s) {
            if (classifyWidth(inst->rec.srcValues[s]) == Width::Full)
                input_full = true;
        }
        if (input_full) {
            perf_.execInputStalls.inc();
            done += 1;
        } else if (!inst->actualLow) {
            perf_.execReplays.inc();
            done += static_cast<Cycle>(lat);
        }
    }

    ++issued_this_cycle;
    finishIssue(inst, done);
    return true;
}

void
Core::finishIssue(DynInst *inst, Cycle complete_at)
{
    inst->issued = true;
    inst->issuedAt = cycle_;
    inst->completeAt = complete_at;

    act_.schedSelect.inc();
    countExecActivity(inst);

    // Release the RS entry: it holds instructions "dispatched but not
    // yet executed" (Section 3.4).
    if (inst->inRs) {
        sched_.release(inst->rsDie);
        inst->inRs = false;
    }

    // A mispredicted control instruction redirects the front end
    // redirectCycles after it resolves.
    if (inst->mispredicted) {
        waitingRedirect_ = false;
        fetchResumeAt_ = complete_at +
            static_cast<Cycle>(cfg_.redirectCycles());
    }
}

void
Core::issueStage()
{
    int issued = 0;
    for (DynInst *inst : rs_) {
        if (issued >= cfg_.issueWidth)
            break;
        if (inst->issued || inst->dispatchedAt >= cycle_)
            continue;
        tryIssueInst(inst, issued);
    }
    std::erase_if(rs_, [](const DynInst *i) { return i->issued; });
}

// --------------------------------------------------------------------
// Completion (writeback)
// --------------------------------------------------------------------

void
Core::completeStage()
{
    for (auto &up : rob_) {
        DynInst *inst = up.get();
        if (!inst->issued || inst->wbDone || inst->completeAt > cycle_)
            continue;
        inst->wbDone = true;
        if (!inst->rec.hasDst)
            continue;

        // Result broadcast: scheduler wakeup (gated per die) and
        // bypass network.
        sched_.recordBroadcast(act_);
        const bool low = herding() &&
            inst->rec.resultWidth() == Width::Low;
        (low ? act_.bypassLow : act_.bypassFull).inc();
        // Writing the physical register held in the ROB.
        (low ? act_.robWriteLow : act_.robWriteFull).inc();
    }
}

// --------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------

void
Core::commitStoreToCache(DynInst *inst)
{
    const TraceRecord &rec = inst->rec;
    const MemAccessResult res = mem_.dataAccess(rec.effAddr);
    if (!res.l1Hit) {
        perf_.dl1Misses.inc();
        act_.l2Access.inc();
        act_.dl1Fill.inc();
        if (!res.l2Hit)
            perf_.l2Misses.inc();
    }
    // Stores know their width at commit: no unsafe mispredictions
    // (Section 3.6).
    const bool low = herding() &&
        isTriviallyEncodable(rec.resultValue, rec.effAddr);
    (low ? act_.dl1WriteLow : act_.dl1WriteFull).inc();
}

void
Core::onCommitCleanup(DynInst *inst)
{
    if (inst->rec.hasDst && lastWriter_[inst->rec.dstReg] == inst)
        lastWriter_[inst->rec.dstReg] = nullptr;
    for (DynInst *r : rs_) {
        for (int s = 0; s < r->rec.numSrcs; ++s)
            if (r->producers[s] == inst)
                r->producers[s] = nullptr;
    }
}

void
Core::commitStage()
{
    for (int i = 0; i < cfg_.commitWidth; ++i) {
        if (rob_.empty())
            return;
        DynInst *inst = rob_.front().get();
        if (!inst->issued || inst->completeAt >= cycle_)
            return; // completes this cycle at the earliest: commit next

        const TraceRecord &rec = inst->rec;

        if (rec.op == OpClass::Store) {
            sq_.commitOldest();
            commitStoreToCache(inst);
        } else if (rec.op == OpClass::Load) {
            --lqCount_;
        }

        if (rec.op == OpClass::Branch)
            act_.bpredUpdate.inc();

        if (inst->widthPredicted) {
            wpred_.update(rec.pc, inst->actualLow ? Width::Low
                                                  : Width::Full);
        }

        // Commit copies the result from the ROB's physical register to
        // the architected register file.
        if (rec.hasDst && rec.dstReg < kFpRegBase &&
            !isControlOp(rec.op)) {
            // Offset by half a bit so an exactly-16-bit value falls in
            // the [12,16) bucket: buckets 0-3 are then precisely the
            // top-die-representable results.
            perf_.valueWidthBits.sample(
                static_cast<double>(significantBits(rec.resultValue)) -
                0.5);
        }
        if (rec.hasDst) {
            const bool low = herding() &&
                rec.resultWidth() == Width::Low;
            (low ? act_.robReadLow : act_.robReadFull).inc();
            (low ? act_.rfWriteLow : act_.rfWriteFull).inc();
        }

        act_.miscUops.inc();
        onCommitCleanup(inst);
        rob_.pop_front();
        ++committed_;
    }
}

} // namespace th
