#include "core/scheduler.h"

#include "common/log.h"

namespace th {

SchedulerEntries::SchedulerEntries(int total_entries,
                                   SchedAllocPolicy policy)
    : per_die_(total_entries / kNumDies), policy_(policy)
{
    if (total_entries % kNumDies != 0)
        fatal("RS entries (%d) must divide evenly across %d dies",
              total_entries, kNumDies);
}

int
SchedulerEntries::allocate()
{
    if (policy_ == SchedAllocPolicy::TopDieFirst) {
        // Herd to the die closest to the heat sink first (Section 3.4).
        for (int d = 0; d < kNumDies; ++d) {
            if (occupied_[static_cast<size_t>(d)] < per_die_) {
                ++occupied_[static_cast<size_t>(d)];
                return d;
            }
        }
        return -1;
    }

    // Round-robin baseline: spread entries evenly.
    for (int i = 0; i < kNumDies; ++i) {
        const int d = (rr_next_ + i) % kNumDies;
        if (occupied_[static_cast<size_t>(d)] < per_die_) {
            ++occupied_[static_cast<size_t>(d)];
            rr_next_ = (d + 1) % kNumDies;
            return d;
        }
    }
    return -1;
}

void
SchedulerEntries::release(int die)
{
    if (die < 0 || die >= kNumDies ||
        occupied_[static_cast<size_t>(die)] <= 0)
        panic("SchedulerEntries::release of unoccupied die %d", die);
    --occupied_[static_cast<size_t>(die)];
}

int
SchedulerEntries::occupancy(int die) const
{
    return occupied_[static_cast<size_t>(die)];
}

int
SchedulerEntries::totalOccupancy() const
{
    int total = 0;
    for (int d = 0; d < kNumDies; ++d)
        total += occupied_[static_cast<size_t>(d)];
    return total;
}

int
SchedulerEntries::freeEntries() const
{
    return per_die_ * kNumDies - totalOccupancy();
}

void
SchedulerEntries::recordBroadcast(ActivityStats &act) const
{
    for (int d = 0; d < kNumDies; ++d)
        if (occupied_[static_cast<size_t>(d)] > 0)
            act.schedWakeupDie[d].inc();
}

} // namespace th
