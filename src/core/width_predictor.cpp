#include "core/width_predictor.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace th {

const char *
widthPredKindName(WidthPredKind kind)
{
    switch (kind) {
      case WidthPredKind::TwoBit:      return "2-bit";
      case WidthPredKind::LastOutcome: return "last-outcome";
      case WidthPredKind::AlwaysFull:  return "always-full";
      case WidthPredKind::Oracle:      return "oracle";
      default:                         return "unknown";
    }
}

WidthPredictor::WidthPredictor(int entries, WidthPredKind kind)
    : kind_(kind)
{
    if (entries < 1 ||
        (static_cast<unsigned>(entries) & (entries - 1)) != 0) {
        fatal("WidthPredictor entries must be a power of two (got %d)",
              entries);
    }
    // Initialise weakly-full: safe until proven low. (For the
    // last-outcome policy, 0 encodes "full".)
    table_.assign(static_cast<size_t>(entries),
                  kind_ == WidthPredKind::TwoBit ? 1 : 0);
    mask_ = static_cast<size_t>(entries) - 1;
}

std::size_t
WidthPredictor::index(Addr pc) const
{
    return (pc >> 2) & mask_;
}

Width
WidthPredictor::predict(Addr pc, Width actual) const
{
    switch (kind_) {
      case WidthPredKind::TwoBit:
        return table_[index(pc)] >= 2 ? Width::Low : Width::Full;
      case WidthPredKind::LastOutcome:
        return table_[index(pc)] != 0 ? Width::Low : Width::Full;
      case WidthPredKind::AlwaysFull:
        return Width::Full;
      case WidthPredKind::Oracle:
        return actual;
    }
    return Width::Full;
}

void
WidthPredictor::update(Addr pc, Width actual)
{
    switch (kind_) {
      case WidthPredKind::TwoBit: {
        std::uint8_t &c = table_[index(pc)];
        if (actual == Width::Low) {
            if (c < 3)
                ++c;
        } else {
            if (c > 0)
                --c;
        }
        break;
      }
      case WidthPredKind::LastOutcome:
        table_[index(pc)] = actual == Width::Low ? 1 : 0;
        break;
      case WidthPredKind::AlwaysFull:
      case WidthPredKind::Oracle:
        break;
    }
}

void
WidthPredictor::correctToFull(Addr pc)
{
    if (kind_ == WidthPredKind::TwoBit ||
        kind_ == WidthPredKind::LastOutcome) {
        table_[index(pc)] = 0;
    }
}

} // namespace th
