#include "floorplan/floorplan.h"

#include "common/log.h"

namespace th {

const char *
blockName(BlockId id)
{
    switch (id) {
      case BlockId::ICache:    return "ICache";
      case BlockId::Fetch:     return "Fetch";
      case BlockId::BPred:     return "BPred";
      case BlockId::Btb:       return "BTB";
      case BlockId::Decode:    return "Decode";
      case BlockId::Rename:    return "Rename";
      case BlockId::Rob:       return "ROB";
      case BlockId::MiscLogic: return "Misc";
      case BlockId::Scheduler: return "Scheduler";
      case BlockId::RegFile:   return "RegFile";
      case BlockId::IntExec:   return "IntExec";
      case BlockId::FpExec:    return "FpExec";
      case BlockId::Lsq:       return "LSQ";
      case BlockId::Dtlb:      return "DTLB";
      case BlockId::DCache:    return "DCache";
      case BlockId::CoreBus:   return "CoreBus";
      case BlockId::L2:        return "L2";
      default:                 return "Unknown";
    }
}

double
Floorplan::blockArea() const
{
    double a = 0.0;
    for (const auto &b : blocks)
        a += b.area();
    return a;
}

const BlockRect *
Floorplan::find(BlockId id, int core) const
{
    for (const auto &b : blocks)
        if (b.id == id && b.core == core)
            return &b;
    return nullptr;
}

namespace {

/**
 * Core-internal layout, relative to the core origin; the core tile is
 * 6.0 mm wide x 7.0 mm tall in the planar chip. Areas are best-effort
 * Core-2-class estimates: the scheduler is deliberately compact (high
 * power density — the paper's planar hotspot), the D-cache region
 * includes its fill/victim machinery.
 */
struct RelBlock
{
    BlockId id;
    double x, y, w, h;
};

constexpr RelBlock kCoreLayout[] = {
    {BlockId::ICache,    0.0, 0.0, 2.0, 1.6},
    {BlockId::Fetch,     2.0, 0.0, 1.0, 1.6},
    {BlockId::BPred,     3.0, 0.0, 1.6, 1.6},
    {BlockId::Btb,       4.6, 0.0, 1.4, 1.6},
    {BlockId::Rob,       0.0, 1.6, 1.6, 1.4},
    {BlockId::Rename,    1.6, 1.6, 1.2, 1.4},
    {BlockId::Decode,    2.8, 1.6, 1.6, 1.4},
    {BlockId::MiscLogic, 4.4, 1.6, 1.6, 1.4},
    {BlockId::RegFile,   0.0, 3.0, 1.35, 1.4},
    {BlockId::Scheduler, 1.35, 3.0, 0.8, 1.0},
    {BlockId::IntExec,   2.2, 3.0, 2.0, 1.4},
    {BlockId::FpExec,    4.2, 3.0, 1.8, 1.4},
    {BlockId::Lsq,       0.0, 4.4, 1.5, 1.2},
    {BlockId::Dtlb,      1.5, 4.4, 1.0, 1.2},
    {BlockId::DCache,    2.5, 4.4, 2.6, 2.2},
    {BlockId::CoreBus,   0.0, 5.6, 2.5, 1.4},
};

constexpr double kCoreW = 6.0;
constexpr double kCoreH = 7.0;
constexpr double kChipW = 12.0;
constexpr double kChipH = 12.0;
constexpr double kL2H = 5.0;

void
placeCore(Floorplan &fp, int core, double ox, double oy, double scale)
{
    for (const RelBlock &rb : kCoreLayout) {
        BlockRect b;
        b.id = rb.id;
        b.core = core;
        b.x = ox + rb.x * scale;
        b.y = oy + rb.y * scale;
        b.w = rb.w * scale;
        b.h = rb.h * scale;
        fp.blocks.push_back(b);
    }
}

} // namespace

Floorplan
FloorplanBuilder::planar()
{
    Floorplan fp;
    fp.chipW = kChipW;
    fp.chipH = kChipH;
    fp.numCores = 2;

    // L2 across the bottom of the chip; cores side by side above it,
    // mirrored about the chip's vertical centerline would be typical —
    // a plain translation keeps the block map simple and does not
    // change any power density.
    BlockRect l2;
    l2.id = BlockId::L2;
    l2.core = -1;
    l2.x = 0.0;
    l2.y = 0.0;
    l2.w = kChipW;
    l2.h = kL2H;
    fp.blocks.push_back(l2);

    placeCore(fp, 0, 0.0, kL2H, 1.0);
    placeCore(fp, 1, kCoreW, kL2H, 1.0);
    return fp;
}

Floorplan
FloorplanBuilder::stacked()
{
    // Quarter footprint: every linear dimension halves; the same
    // relative layout appears on each of the four dies.
    Floorplan fp;
    fp.chipW = kChipW / 2.0;
    fp.chipH = kChipH / 2.0;
    fp.numCores = 2;

    BlockRect l2;
    l2.id = BlockId::L2;
    l2.core = -1;
    l2.x = 0.0;
    l2.y = 0.0;
    l2.w = kChipW / 2.0;
    l2.h = kL2H / 2.0;
    fp.blocks.push_back(l2);

    placeCore(fp, 0, 0.0, kL2H / 2.0, 0.5);
    placeCore(fp, 1, kCoreW / 2.0, kL2H / 2.0, 0.5);
    return fp;
}

} // namespace th
