#include "floorplan/floorplan.h"

#include "common/log.h"

namespace th {

const char *
blockName(BlockId id)
{
    switch (id) {
      case BlockId::ICache:    return "ICache";
      case BlockId::Fetch:     return "Fetch";
      case BlockId::BPred:     return "BPred";
      case BlockId::Btb:       return "BTB";
      case BlockId::Decode:    return "Decode";
      case BlockId::Rename:    return "Rename";
      case BlockId::Rob:       return "ROB";
      case BlockId::MiscLogic: return "Misc";
      case BlockId::Scheduler: return "Scheduler";
      case BlockId::RegFile:   return "RegFile";
      case BlockId::IntExec:   return "IntExec";
      case BlockId::FpExec:    return "FpExec";
      case BlockId::Lsq:       return "LSQ";
      case BlockId::Dtlb:      return "DTLB";
      case BlockId::DCache:    return "DCache";
      case BlockId::CoreBus:   return "CoreBus";
      case BlockId::L2:        return "L2";
      default:                 return "Unknown";
    }
}

double
Floorplan::blockArea() const
{
    double a = 0.0;
    for (const auto &b : blocks)
        a += b.area();
    return a;
}

const BlockRect *
Floorplan::find(BlockId id, int core) const
{
    for (const auto &b : blocks)
        if (b.id == id && b.core == core)
            return &b;
    return nullptr;
}

namespace {

/**
 * Core-internal layout, relative to the core origin; the core tile is
 * 6.0 mm wide x 7.0 mm tall in the planar chip. Areas are best-effort
 * Core-2-class estimates: the scheduler is deliberately compact (high
 * power density — the paper's planar hotspot), the D-cache region
 * includes its fill/victim machinery.
 */
struct RelBlock
{
    BlockId id;
    double x, y, w, h;
};

constexpr RelBlock kCoreLayout[] = {
    {BlockId::ICache,    0.0, 0.0, 2.0, 1.6},
    {BlockId::Fetch,     2.0, 0.0, 1.0, 1.6},
    {BlockId::BPred,     3.0, 0.0, 1.6, 1.6},
    {BlockId::Btb,       4.6, 0.0, 1.4, 1.6},
    {BlockId::Rob,       0.0, 1.6, 1.6, 1.4},
    {BlockId::Rename,    1.6, 1.6, 1.2, 1.4},
    {BlockId::Decode,    2.8, 1.6, 1.6, 1.4},
    {BlockId::MiscLogic, 4.4, 1.6, 1.6, 1.4},
    {BlockId::RegFile,   0.0, 3.0, 1.35, 1.4},
    {BlockId::Scheduler, 1.35, 3.0, 0.8, 1.0},
    {BlockId::IntExec,   2.2, 3.0, 2.0, 1.4},
    {BlockId::FpExec,    4.2, 3.0, 1.8, 1.4},
    {BlockId::Lsq,       0.0, 4.4, 1.5, 1.2},
    {BlockId::Dtlb,      1.5, 4.4, 1.0, 1.2},
    {BlockId::DCache,    2.5, 4.4, 2.6, 2.2},
    {BlockId::CoreBus,   0.0, 5.6, 2.5, 1.4},
};

constexpr double kCoreW = 6.0;
constexpr double kCoreH = 7.0;
constexpr double kL2H = 5.0;

void
placeCore(Floorplan &fp, int core, double ox, double oy, double scale)
{
    for (const RelBlock &rb : kCoreLayout) {
        BlockRect b;
        b.id = rb.id;
        b.core = core;
        b.x = ox + rb.x * scale;
        b.y = oy + rb.y * scale;
        b.w = rb.w * scale;
        b.h = rb.h * scale;
        fp.blocks.push_back(b);
    }
}

} // namespace

Floorplan
FloorplanBuilder::planar()
{
    // L2 across the bottom of the chip; cores side by side above it,
    // mirrored about the chip's vertical centerline would be typical —
    // a plain translation keeps the block map simple and does not
    // change any power density.
    return generate(2, 1, false);
}

Floorplan
FloorplanBuilder::stacked()
{
    // Quarter footprint: every linear dimension halves; the same
    // relative layout appears on each of the four dies.
    return generate(2, 1, true);
}

Floorplan
FloorplanBuilder::generate(int num_cores, int l2_banks, bool stacked)
{
    if (num_cores < 1)
        fatal("floorplan generator needs at least 1 core (got %d)",
              num_cores);
    if (l2_banks < 1)
        fatal("floorplan generator needs at least 1 L2 bank (got %d)",
              l2_banks);

    // Near-square tiling with no empty tile: rows is the largest
    // divisor of num_cores not exceeding sqrt(num_cores), so
    // rows * cols == num_cores exactly and every tile holds a core
    // (full-die coverage; primes degrade to a single row).
    int rows = 1;
    for (int r = 1; r * r <= num_cores; ++r)
        if (num_cores % r == 0)
            rows = r;
    const int cols = num_cores / rows;

    const double s = stacked ? 0.5 : 1.0;
    Floorplan fp;
    fp.numCores = num_cores;
    fp.chipW = static_cast<double>(cols) * kCoreW * s;
    const double l2_h = kL2H * static_cast<double>(rows) * s;
    fp.chipH = static_cast<double>(rows) * kCoreH * s + l2_h;

    // L2 strip across the bottom, split into equal-width banks (bank
    // order = block order). The strip height scales with the core
    // rows so the per-core L2 share of the dual-core chip (30 mm^2
    // planar) is conserved at every N.
    const double bank_w = fp.chipW / static_cast<double>(l2_banks);
    for (int b = 0; b < l2_banks; ++b) {
        BlockRect l2;
        l2.id = BlockId::L2;
        l2.core = -1;
        l2.x = static_cast<double>(b) * bank_w;
        l2.y = 0.0;
        l2.w = bank_w;
        l2.h = l2_h;
        fp.blocks.push_back(l2);
    }

    for (int k = 0; k < num_cores; ++k) {
        const int r = k / cols;
        const int c = k % cols;
        placeCore(fp, k, static_cast<double>(c) * kCoreW * s,
                  l2_h + static_cast<double>(r) * kCoreH * s, s);
    }
    return fp;
}

} // namespace th
