/**
 * @file
 * Processor floorplans (Figure 7 of the paper): a planar dual-core +
 * 4MB L2 baseline, and the 4-die stacked organisation whose footprint
 * is a quarter of the planar chip with every partitioned block present
 * on all four dies.
 */

#ifndef TH_FLOORPLAN_FLOORPLAN_H
#define TH_FLOORPLAN_FLOORPLAN_H

#include <string>
#include <vector>

#include "common/types.h"

namespace th {

/** Identifiers for the floorplanned functional blocks of one core. */
enum class BlockId : int {
    ICache,
    Fetch,     ///< Fetch control + I-TLB.
    BPred,
    Btb,
    Decode,
    Rename,
    Rob,       ///< Reorder buffer (holds the physical registers).
    MiscLogic, ///< Control/random logic and routing channels.
    Scheduler, ///< RS entries + wakeup/select (the 2D hotspot).
    RegFile,   ///< Architected register file.
    IntExec,   ///< Integer ALUs/shifters/multiplier + bypass.
    FpExec,
    Lsq,
    Dtlb,
    DCache,
    CoreBus,   ///< Core-side interconnect to the L2.
    L2,        ///< Shared cache (not per-core).
    NumBlocks
};

/** Number of per-core block kinds (excluding L2). */
inline constexpr int kNumCoreBlocks = static_cast<int>(BlockId::L2);

/** Human-readable block name. */
const char *blockName(BlockId id);

/** One placed rectangle (mm). */
struct BlockRect
{
    BlockId id = BlockId::MiscLogic;
    int core = -1; ///< Core index, or -1 for shared blocks (L2).
    double x = 0.0, y = 0.0, w = 0.0, h = 0.0;

    double area() const { return w * h; }
};

/** A full chip floorplan. */
struct Floorplan
{
    double chipW = 0.0; ///< Chip width (mm).
    double chipH = 0.0; ///< Chip height (mm).
    int numCores = 2;
    /**
     * Placed blocks. For the 3D floorplan the same (x, y, w, h) region
     * exists on every die (significance/entry-partitioned blocks
     * overlap vertically), so one set of rectangles describes all dies.
     */
    std::vector<BlockRect> blocks;

    /** Sum of block areas (mm^2); should cover the chip. */
    double blockArea() const;

    /** Find a block rect; nullptr when absent. */
    const BlockRect *find(BlockId id, int core) const;
};

/**
 * Builds the evaluation floorplans.
 *
 * The planar chip is 12 x 12 mm (Core-2-class dual core + 4MB L2 at
 * 65nm); the 3D chip folds the same layout onto a 6 x 6 mm, 4-die
 * footprint. Both are the N=2 single-bank case of the parameterized
 * generator below.
 */
struct FloorplanBuilder
{
    /** Planar dual-core baseline, Figure 7(a). */
    static Floorplan planar();

    /** 4-die stacked floorplan (per-die view), Figure 7(b). */
    static Floorplan stacked();

    /**
     * Generate an N-core floorplan: core tiles in a near-square
     * rows x cols grid (rows * cols == N exactly, so every tile holds
     * a core) above an L2 strip split into @p l2_banks equal-width
     * bank rectangles (bank order = block order; all banks have
     * core == -1). The L2 strip height scales with the core rows, so
     * the per-core L2 share of the Figure 7 chip is conserved at
     * every N and the layout is area-conserving with no overlap.
     * generate(2, 1, s) reproduces planar()/stacked() exactly.
     */
    static Floorplan generate(int num_cores, int l2_banks, bool stacked);
};

} // namespace th

#endif // TH_FLOORPLAN_FLOORPLAN_H
