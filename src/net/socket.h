/**
 * @file
 * Minimal TCP primitives for the th_serve protocol: an RAII socket, a
 * listener, and ByteSink/ByteSource adapters so the io/chunkio.h
 * ChunkWriter/ChunkReader machinery — CRC framing included — runs over
 * a connection exactly as it runs over a file. Dependency-free: POSIX
 * sockets only.
 */

#ifndef TH_NET_SOCKET_H
#define TH_NET_SOCKET_H

#include <atomic>
#include <cstdint>
#include <string>

#include "io/chunkio.h"

namespace th {

/** RAII file descriptor for a connected TCP socket. Move-only. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;
    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &operator=(Socket &&other) noexcept;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Shut down both directions without closing the descriptor —
     * unblocks a thread sitting in recv() on this socket (the server
     * uses this to kick idle connections during drain). Safe to call
     * from a thread other than the reader.
     */
    void shutdownBoth();

    void close();

    /** Connect to @p host:@p port; invalid Socket + @p err on failure. */
    static Socket connectTo(const std::string &host, std::uint16_t port,
                            std::string &err);

  private:
    int fd_ = -1;
};

/**
 * Listening TCP socket bound to one address. accept() runs on one
 * thread while close() may be called from another: close() shuts the
 * descriptor down (waking a blocked accept()) and retires it, but the
 * ::close happens in the destructor — after the owner has joined the
 * accept loop — so the kernel cannot reuse the fd number while
 * accept() still holds it.
 */
class Listener
{
  public:
    Listener() = default;
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Bind and listen on @p host:@p port. Port 0 picks an ephemeral
     * port; the bound port is readable via port() afterwards.
     */
    bool listenOn(const std::string &host, std::uint16_t port,
                  std::string &err);

    /**
     * Block until a client connects. An invalid Socket means the
     * listener was closed (shutdown path) or accept failed.
     */
    Socket accept();

    /** Unblock accept() and retire the socket. Idempotent. */
    void close();

    bool listening() const { return fd_.load() >= 0; }
    /** The listening descriptor (for event-loop registration); -1 when
     *  closed. Borrowed — the Listener keeps ownership. */
    int fd() const { return fd_.load(); }
    /** The bound port (resolved after listenOn with port 0). */
    std::uint16_t port() const { return port_; }

  private:
    std::atomic<int> fd_{-1};
    /** Shut-down descriptor awaiting its ::close in the destructor. */
    std::atomic<int> retired_fd_{-1};
    std::uint16_t port_ = 0;
};

/** ByteSink over a connected socket: full-write loop, EINTR-safe. */
class SocketSink : public ByteSink
{
  public:
    explicit SocketSink(const Socket &sock) : fd_(sock.fd()) {}
    bool write(const void *data, std::size_t len) override;

  private:
    int fd_;
};

/**
 * ByteSource over a connected socket. read() loops until it has the
 * full @p len or the peer closes — the chunk reader's fixed-size
 * header reads must not see TCP segmentation as truncation.
 */
class SocketSource : public ByteSource
{
  public:
    explicit SocketSource(const Socket &sock) : fd_(sock.fd()) {}
    std::size_t read(void *data, std::size_t len) override;
    /** Sockets cannot seek. */
    bool rewind() override { return false; }

  private:
    int fd_;
};

} // namespace th

#endif // TH_NET_SOCKET_H
