/**
 * @file
 * The th_serve server: accepts TSRV connections, validates requests,
 * coalesces identical simulations (single-flight), and pushes work
 * through a bounded admission queue into a worker pool driving one
 * shared System. Overload surfaces as structured Overloaded replies
 * (never unbounded queueing); shutdown() drains admitted work before
 * returning (never abandons a waiter).
 *
 * Concurrency shape:
 *  - one epoll event-loop thread (net/event_loop.h) owns every
 *    connection: idle connections cost a registered fd, not a thread,
 *    and replies are buffered/flushed on writability so a slow reader
 *    never blocks a worker;
 *  - a Flight per distinct simulation key; connections attach to the
 *    Flight as waiters, worker threads run it and publish the result
 *    back to each waiting connection through the loop;
 *  - deadline expiry is an event-loop timer; the underlying simulation
 *    is cancelled only when the last waiter gives up (a CancelToken
 *    polled by the cycle loop).
 */

#ifndef TH_NET_SERVER_H
#define TH_NET_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/cancel.h"
#include "common/thread_annotations.h"
#include "net/event_loop.h"
#include "net/metrics.h"
#include "net/protocol.h"
#include "sim/system.h"

namespace th {

/** Construction-time knobs of a SimServer. */
struct ServerOptions
{
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (read back via port()). */
    std::uint16_t port = 0;
    /** Simulation worker threads. */
    int workers = 2;
    /** Admission-queue capacity; a full queue rejects (Overloaded). */
    std::size_t queueCapacity = 16;
    /** Options of the server-owned System (window sizes, store dir). */
    SimOptions sim;
    /**
     * Test seam: start with the workers parked so a test can stack up
     * concurrent identical requests (dedup) or fill the queue
     * (backpressure) deterministically, then resumeWorkers().
     */
    bool startWorkersPaused = false;
};

class SimServer : public EventHandler
{
  public:
    explicit SimServer(const ServerOptions &opts);
    ~SimServer() override;

    SimServer(const SimServer &) = delete;
    SimServer &operator=(const SimServer &) = delete;

    /** Bind, listen, and launch the event loop + worker threads. */
    bool start(std::string &err);

    /** The bound port (after start(); resolves ephemeral requests). */
    std::uint16_t port() const;

    /**
     * Graceful drain: stop accepting connections and admitting work,
     * answer queued-behind requests with ShuttingDown, finish every
     * admitted simulation, wait (on a condition variable, not a spin)
     * until every reply — including error replies — is flushed, then
     * tear down connections. Idempotent; safe from a signal-watcher
     * thread.
     */
    void shutdown();

    /** Release parked workers (see ServerOptions::startWorkersPaused). */
    void resumeWorkers();

    const ServerMetrics &metrics() const { return metrics_; }
    /** The server-owned System (tests compare its counters). */
    System &system() { return *sys_; }
    /** Live connection count (tests assert no thread-per-connection). */
    std::uint64_t connCount() const { return loop_.connCount(); }

    // EventHandler interface (event-loop thread).
    Dispatch onRequest(std::uint64_t conn_id, SimRequest &&req,
                       SimResponse &rsp) override;
    void badFrameResponse(std::uint64_t conn_id, const std::string &err,
                          SimResponse &rsp) override;
    void onDeadline(std::uint64_t conn_id) override;
    void onConnClosed(std::uint64_t conn_id) override;

  private:
    /**
     * One coalesced simulation: the first request creates it, identical
     * concurrent requests attach as extra waiters, a worker publishes
     * the shared result to every waiting connection.
     */
    struct Flight
    {
        CancelToken cancel;
        Mutex mu;
        bool done TH_GUARDED_BY(mu) = false;
        /** Connections awaiting this flight's result. */
        std::vector<std::uint64_t> waiters TH_GUARDED_BY(mu);
    };

    /** One admitted work item: the flight plus its representative request. */
    struct Work
    {
        std::shared_ptr<Flight> flight;
        SimRequest request;
        std::string key;
    };

    /** Book-keeping for one connection's in-flight request. */
    struct Pending
    {
        std::shared_ptr<Flight> flight;
        std::string key;
        std::chrono::steady_clock::time_point t0;
    };

    void workerLoop();
    /** Park until resumeWorkers() when started paused. */
    void waitUntilResumed();

    /** Semantic validation; false fills @p err. */
    bool validate(const SimRequest &req, std::string &err) const;
    /** Execute the simulation behind @p req (worker thread). */
    SimResponse execute(const SimRequest &req, const CancelToken *cancel);
    /**
     * Unmap @p key, mark @p flight done, and deliver @p rsp to every
     * waiting connection (any thread).
     */
    void publishFlight(const std::shared_ptr<Flight> &flight,
                       const std::string &key, const SimResponse &rsp);
    /** Deliver @p rsp to @p conn_id, sampling served/latency metrics. */
    void finishRequest(std::uint64_t conn_id, const Pending &p,
                       const SimResponse &rsp);

    ServerOptions opts_;
    std::unique_ptr<System> sys_;
    ServerMetrics metrics_;
    Listener listener_;
    EventLoop loop_;
    BoundedQueue<Work> queue_;

    std::atomic<bool> draining_{false};
    std::atomic<std::uint64_t> in_flight_{0};

    Mutex pause_mu_;
    bool paused_ TH_GUARDED_BY(pause_mu_) = false;
    /// _any variant: waits on the annotated th::UniqueLock.
    // th_lint: guards(paused_, under pause_mu_)
    std::condition_variable_any pause_cv_;

    Mutex flights_mu_;
    std::map<std::string, std::shared_ptr<Flight>>
        flights_ TH_GUARDED_BY(flights_mu_);

    Mutex pending_mu_;
    std::map<std::uint64_t, Pending> pending_ TH_GUARDED_BY(pending_mu_);

    std::vector<std::thread> workers_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopped_{false};
};

} // namespace th

#endif // TH_NET_SERVER_H
