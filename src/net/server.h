/**
 * @file
 * The th_serve server: accepts TSRV connections, validates requests,
 * coalesces identical simulations (single-flight), and pushes work
 * through a bounded admission queue into a worker pool driving one
 * shared System. Overload surfaces as structured Overloaded replies
 * (never unbounded queueing); shutdown() drains admitted work before
 * returning (never abandons a waiter).
 *
 * Concurrency shape:
 *  - one acceptor thread, one thread per connection (requests on a
 *    connection are served in order, as the protocol requires);
 *  - a Flight per distinct simulation key; connection threads wait on
 *    the Flight, worker threads run it and publish the result;
 *  - deadline expiry cancels the underlying simulation only when the
 *    last waiter gives up (a CancelToken polled by the cycle loop).
 */

#ifndef TH_NET_SERVER_H
#define TH_NET_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/cancel.h"
#include "common/thread_annotations.h"
#include "net/metrics.h"
#include "net/protocol.h"
#include "sim/system.h"

namespace th {

/** Construction-time knobs of a SimServer. */
struct ServerOptions
{
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (read back via port()). */
    std::uint16_t port = 0;
    /** Simulation worker threads. */
    int workers = 2;
    /** Admission-queue capacity; a full queue rejects (Overloaded). */
    std::size_t queueCapacity = 16;
    /** Options of the server-owned System (window sizes, store dir). */
    SimOptions sim;
    /**
     * Test seam: start with the workers parked so a test can stack up
     * concurrent identical requests (dedup) or fill the queue
     * (backpressure) deterministically, then resumeWorkers().
     */
    bool startWorkersPaused = false;
};

class SimServer
{
  public:
    explicit SimServer(const ServerOptions &opts);
    ~SimServer();

    SimServer(const SimServer &) = delete;
    SimServer &operator=(const SimServer &) = delete;

    /** Bind, listen, and launch the worker/acceptor threads. */
    bool start(std::string &err);

    /** The bound port (after start(); resolves ephemeral requests). */
    std::uint16_t port() const;

    /**
     * Graceful drain: stop accepting connections and admitting work,
     * answer queued-behind requests with ShuttingDown, finish every
     * admitted simulation and deliver its responses, then tear down
     * connections. Idempotent; safe from a signal-watcher thread.
     */
    void shutdown();

    /** Release parked workers (see ServerOptions::startWorkersPaused). */
    void resumeWorkers();

    const ServerMetrics &metrics() const { return metrics_; }
    /** The server-owned System (tests compare its counters). */
    System &system() { return *sys_; }

  private:
    /**
     * One coalesced simulation: the first request creates it, identical
     * concurrent requests attach as extra waiters, a worker publishes
     * the shared result.
     */
    struct Flight
    {
        CancelToken cancel;
        Mutex mu;
        /// _any variant: waits on the annotated th::UniqueLock.
        std::condition_variable_any cv;
        bool done TH_GUARDED_BY(mu) = false;
        SimResponse result TH_GUARDED_BY(mu);
        int waiters TH_GUARDED_BY(mu) = 0;
    };

    /** One admitted work item: the flight plus its representative request. */
    struct Work
    {
        std::shared_ptr<Flight> flight;
        SimRequest request;
        std::string key;
    };

    /** One accepted connection and the thread serving it. */
    struct Conn
    {
        std::shared_ptr<WireConn> wire;
        std::thread thread;
        std::atomic<bool> finished{false};
        /** True between receiving a request and sending its response;
         *  shutdown() waits for this to clear before cutting the
         *  socket, so an in-flight reply is never truncated. */
        std::atomic<bool> busy{false};
    };

    void acceptLoop();
    void connLoop(Conn *conn);
    void workerLoop();
    /** Park until resumeWorkers() when started paused. */
    void waitUntilResumed();

    /** Full request lifecycle: validate, coalesce, wait, reply. */
    SimResponse handle(const SimRequest &req);
    /** Semantic validation; false fills @p err. */
    bool validate(const SimRequest &req, std::string &err) const;
    /** Execute the simulation behind @p req (worker thread). */
    SimResponse execute(const SimRequest &req, const CancelToken *cancel);

    /** Join and drop connection threads that have finished. */
    void reapConns(bool all);

    ServerOptions opts_;
    std::unique_ptr<System> sys_;
    ServerMetrics metrics_;
    Listener listener_;
    BoundedQueue<Work> queue_;

    std::atomic<bool> draining_{false};
    std::atomic<std::uint64_t> in_flight_{0};

    Mutex pause_mu_;
    bool paused_ TH_GUARDED_BY(pause_mu_) = false;
    /// _any variant: waits on the annotated th::UniqueLock.
    std::condition_variable_any pause_cv_;

    Mutex flights_mu_;
    std::map<std::string, std::shared_ptr<Flight>>
        flights_ TH_GUARDED_BY(flights_mu_);

    Mutex conns_mu_;
    std::list<std::unique_ptr<Conn>> conns_ TH_GUARDED_BY(conns_mu_);

    std::vector<std::thread> workers_;
    std::thread acceptor_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopped_{false};
};

} // namespace th

#endif // TH_NET_SERVER_H
