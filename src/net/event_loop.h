/**
 * @file
 * Readiness-driven connection front-end for the TSRV protocol. One
 * epoll thread owns every accepted connection: it accepts, performs
 * the handshake, assembles CRC-framed request chunks from the read
 * buffer, and hands complete SimRequests to an EventHandler. Replies
 * are appended to a per-connection write buffer and flushed on
 * writability, so a slow reader never blocks anything but its own
 * socket. An idle connection costs a registered fd and two small
 * buffers — never a thread.
 *
 * Threading contract:
 *  - handler callbacks (onRequest / onDeadline / onConnClosed /
 *    badFrameResponse) run on the loop thread and must not block;
 *  - postResponse() is thread-safe and is how worker threads deliver
 *    the result of an Async dispatch;
 *  - the busy/drain invariant: a connection is busy from the moment a
 *    complete frame is consumed (including a bad frame that provokes
 *    an error reply) until its reply bytes are fully flushed.
 *    waitQuiescent() blocks on a condition variable until no
 *    connection is busy, so drain can never truncate an in-flight
 *    reply and never spins.
 */

#ifndef TH_NET_EVENT_LOOP_H
#define TH_NET_EVENT_LOOP_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "io/request.h"
#include "net/socket.h"

namespace th {

/** Consumer of decoded requests arriving on an EventLoop. */
class EventHandler
{
  public:
    virtual ~EventHandler() = default;

    /** How onRequest disposed of a request. */
    enum class Dispatch {
        Reply, ///< @p rsp is filled; the loop sends it now.
        Async, ///< Handler will postResponse(conn_id) later.
    };

    /**
     * One complete request arrived on @p conn_id (loop thread; must
     * not block). Exactly one response per request: either fill
     * @p rsp and return Reply, or return Async and deliver through
     * EventLoop::postResponse.
     */
    virtual Dispatch onRequest(std::uint64_t conn_id, SimRequest &&req,
                               SimResponse &rsp) = 0;

    /**
     * A corrupt/unparseable frame arrived; fill the best-effort error
     * reply that is sent before the connection is hung up (the chunk
     * stream cannot be resynchronized).
     */
    virtual void badFrameResponse(std::uint64_t conn_id,
                                  const std::string &err,
                                  SimResponse &rsp) = 0;

    /**
     * The deadline armed for @p conn_id's pending request fired before
     * a response was posted (loop thread). The handler must eventually
     * postResponse for the connection (typically right here).
     */
    virtual void onDeadline(std::uint64_t /*conn_id*/) {}

    /**
     * @p conn_id closed (peer hung up or drain cut it) while a request
     * was pending; the handler should drop any waiter state it holds.
     * postResponse to a dead id is a safe no-op either way.
     */
    virtual void onConnClosed(std::uint64_t /*conn_id*/) {}
};

/**
 * The epoll loop. Lifecycle: construct, start() with a listening fd
 * (borrowed, not owned), then stopAccepting() / waitQuiescent() /
 * closeAllConns() / stop() in drain order. All public methods are
 * thread-safe.
 */
class EventLoop
{
  public:
    /**
     * @param handler  Receives decoded requests; outlives the loop.
     * @param build    Build string sent in this side's HELO.
     */
    EventLoop(EventHandler &handler, std::string build);
    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /**
     * Launch the loop thread over @p listen_fd (stays owned by the
     * caller's Listener; the loop only polls and accepts on it).
     */
    bool start(int listen_fd, std::string &err);

    /** Deregister the listener: no further connections are accepted. */
    void stopAccepting();

    /**
     * Deliver the response of an Async dispatch. Wakes the loop; a
     * no-op if the connection died in the meantime.
     */
    void postResponse(std::uint64_t conn_id, SimResponse rsp);

    /**
     * Arm a one-shot deadline for @p conn_id's pending request; fires
     * handler.onDeadline unless a response is posted first. Loop
     * thread only (call from inside onRequest).
     */
    void armDeadline(std::uint64_t conn_id, std::uint32_t ms);

    /**
     * Block until no connection is busy (no pending request, no
     * unflushed reply bytes) and no queued completions remain. CV-
     * based — drain does not burn a core waiting.
     */
    void waitQuiescent();

    /** Shut down and discard every connection (after waitQuiescent). */
    void closeAllConns();

    /** Stop and join the loop thread. Idempotent. */
    void stop();

    /** Live connection count (gauge; for tests and metrics). */
    std::uint64_t connCount() const { return conn_count_.load(); }

  private:
    /** Per-connection state; owned and touched by the loop thread only. */
    struct Conn
    {
        std::uint64_t id = 0;
        Socket sock;
        std::vector<std::uint8_t> inbuf;
        std::vector<std::uint8_t> outbuf;
        std::size_t out_off = 0; ///< Flushed prefix of outbuf.
        bool hello_done = false; ///< Peer's container header + HELO seen.
        bool header_done = false; ///< Peer's container header seen.
        bool pending = false;    ///< A dispatched request awaits its reply.
        bool close_after_flush = false;
        bool want_write = false; ///< EPOLLOUT currently armed.
        bool reading = true;     ///< EPOLLIN currently armed.
        std::uint64_t generation = 0; ///< Invalidates stale timers.
    };

    /** Cross-thread ops executed on the loop thread. */
    struct Op
    {
        enum class Kind { Response, StopAccept, CloseAll } kind;
        std::uint64_t conn_id = 0;
        SimResponse rsp;
    };

    /** An armed deadline (min-sorted scan; at most one per conn). */
    struct Timer
    {
        std::chrono::steady_clock::time_point when;
        std::uint64_t conn_id;
        std::uint64_t generation;
    };

    void loop();
    void wake();
    void acceptReady();
    void readReady(Conn &c);
    void writeReady(Conn &c);
    /** Parse complete frames out of c.inbuf; dispatch at most one. */
    void parseFrames(Conn &c);
    /** Serialize @p rsp and append its SRSP frame to c.outbuf. */
    void enqueueResponse(Conn &c, const SimResponse &rsp);
    void flush(Conn &c);
    void updateInterest(Conn &c);
    void destroyConn(std::uint64_t id, bool notify_handler);
    void runOps();
    void fireTimers();
    /** Next timer expiry as an epoll timeout (ms; -1 = none). */
    int timeoutMs() const;
    bool connBusy(const Conn &c) const;
    /** Notify waitQuiescent waiters if nothing is busy. */
    void checkQuiescent();

    EventHandler &handler_;
    const std::string build_;
    std::vector<std::uint8_t> hello_bytes_; ///< Header + HELO, precomputed.

    int epoll_fd_ = -1;
    int wake_fd_ = -1;
    int listen_fd_ = -1;
    bool accepting_ = false;

    std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
    std::uint64_t next_conn_id_ = 2; ///< 0/1 reserved for listener/wake.
    std::atomic<std::uint64_t> conn_count_{0};
    std::vector<Timer> timers_;

    Mutex ops_mu_;
    std::vector<Op> ops_ TH_GUARDED_BY(ops_mu_);

    Mutex quiesce_mu_;
    /// _any variant: waits on the annotated th::UniqueLock.
    // th_lint: guards(quiescent_, under quiesce_mu_)
    std::condition_variable_any quiesce_cv_;
    int quiesce_waiters_ TH_GUARDED_BY(quiesce_mu_) = 0;
    bool quiescent_ TH_GUARDED_BY(quiesce_mu_) = false;

    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopped_{false};
};

} // namespace th

#endif // TH_NET_EVENT_LOOP_H
