#include "net/client.h"

#include "common/version.h"

namespace th {

bool SimClient::connect(const std::string &host, std::uint16_t port,
                        std::string &err)
{
    close();
    Socket sock = Socket::connectTo(host, port, err);
    if (!sock.valid())
        return false;
    auto conn = std::make_unique<WireConn>(std::move(sock));
    if (!conn->helloAsClient(buildInfo(), server_build_, err))
        return false;
    conn_ = std::move(conn);
    return true;
}

bool SimClient::call(const SimRequest &req, SimResponse &rsp,
                     std::string &err)
{
    if (!conn_) {
        err = "not connected";
        return false;
    }
    if (!conn_->sendRequest(req)) {
        err = "failed to send request (connection lost?)";
        conn_.reset();
        return false;
    }
    if (!conn_->recvResponse(rsp, err)) {
        conn_.reset();
        return false;
    }
    return true;
}

} // namespace th
