#include "net/event_loop.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "io/serialize.h"
#include "net/protocol.h"

namespace th {

namespace {

/** epoll user-data ids of the two non-connection descriptors. */
constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;

bool setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Little-endian u32 at @p p (the chunk header's length field). */
std::uint32_t readLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

} // namespace

EventLoop::EventLoop(EventHandler &handler, std::string build)
    : handler_(handler), build_(std::move(build))
{
    // Precompute this side's container header + HELO so accepting a
    // connection is one buffer append. Built with the real ChunkWriter
    // so the bytes are identical to the thread-per-connection era.
    MemSink sink;
    ChunkWriter writer(sink);
    writer.begin(kServerFormatTag, kWireSchemaVersion);
    Encoder enc;
    enc.str(build_);
    writer.chunk(kHelloTag, enc);
    hello_bytes_ = sink.data();
}

EventLoop::~EventLoop()
{
    stop();
}

bool EventLoop::start(int listen_fd, std::string &err)
{
    if (running_.exchange(true)) {
        err = "event loop already started";
        return false;
    }
    listen_fd_ = listen_fd;
    if (!setNonBlocking(listen_fd_)) {
        err = std::string("fcntl(listener): ") + std::strerror(errno);
        return false;
    }
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
        err = std::string("epoll_create1: ") + std::strerror(errno);
        return false;
    }
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
        err = std::string("eventfd: ") + std::strerror(errno);
        ::close(epoll_fd_);
        epoll_fd_ = -1;
        return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerId;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
        err = std::string("epoll_ctl(listener): ") + std::strerror(errno);
        return false;
    }
    ev.data.u64 = kWakeId;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
        err = std::string("epoll_ctl(wake): ") + std::strerror(errno);
        return false;
    }
    accepting_ = true;
    thread_ = std::thread([this] { loop(); });
    return true;
}

void EventLoop::stopAccepting()
{
    LockGuard lock(ops_mu_);
    ops_.push_back(Op{Op::Kind::StopAccept, 0, SimResponse{}});
    wake();
}

void EventLoop::postResponse(std::uint64_t conn_id, SimResponse rsp)
{
    LockGuard lock(ops_mu_);
    ops_.push_back(Op{Op::Kind::Response, conn_id, std::move(rsp)});
    wake();
}

void EventLoop::closeAllConns()
{
    LockGuard lock(ops_mu_);
    ops_.push_back(Op{Op::Kind::CloseAll, 0, SimResponse{}});
    wake();
}

void EventLoop::armDeadline(std::uint64_t conn_id, std::uint32_t ms)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    timers_.push_back(Timer{std::chrono::steady_clock::now() +
                                std::chrono::milliseconds(ms),
                            conn_id, it->second->generation});
}

void EventLoop::waitQuiescent()
{
    if (!running_.load())
        return;
    UniqueLock lock(quiesce_mu_);
    ++quiesce_waiters_;
    quiescent_ = false;
    wake(); // the loop re-evaluates and answers via quiesce_cv_
    while (!quiescent_ && running_.load())
        quiesce_cv_.wait(lock);
    --quiesce_waiters_;
}

void EventLoop::stop()
{
    if (!running_.load() || stopped_.exchange(true))
        return;
    running_.store(false);
    {
        // A drain waiter must not outlive the loop thread.
        LockGuard lock(quiesce_mu_);
        quiescent_ = true;
    }
    quiesce_cv_.notify_all();
    wake();
    if (thread_.joinable())
        thread_.join();
    conns_.clear();
    conn_count_.store(0);
    if (wake_fd_ >= 0) {
        ::close(wake_fd_);
        wake_fd_ = -1;
    }
    if (epoll_fd_ >= 0) {
        ::close(epoll_fd_);
        epoll_fd_ = -1;
    }
}

void EventLoop::wake()
{
    if (wake_fd_ < 0)
        return;
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

int EventLoop::timeoutMs() const
{
    if (timers_.empty())
        return -1;
    auto next = timers_.front().when;
    for (const Timer &t : timers_)
        if (t.when < next)
            next = t.when;
    const auto now = std::chrono::steady_clock::now();
    if (next <= now)
        return 0;
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        next - now)
                        .count();
    return static_cast<int>(ms) + 1;
}

void EventLoop::loop()
{
    epoll_event events[64];
    while (running_.load()) {
        runOps();
        fireTimers();
        checkQuiescent();
        if (!running_.load())
            break;
        const int n =
            ::epoll_wait(epoll_fd_, events, 64, timeoutMs());
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            const std::uint64_t id = events[i].data.u64;
            if (id == kWakeId) {
                std::uint64_t drain;
                while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
                }
                continue;
            }
            if (id == kListenerId) {
                if (accepting_)
                    acceptReady();
                continue;
            }
            auto it = conns_.find(id);
            if (it == conns_.end())
                continue; // destroyed by an earlier event this round
            Conn &c = *it->second;
            if (events[i].events & (EPOLLERR | EPOLLHUP)) {
                destroyConn(id, true);
                continue;
            }
            if (events[i].events & EPOLLOUT)
                writeReady(c);
            // writeReady may destroy (flush error / close-after-flush).
            if (conns_.find(id) == conns_.end())
                continue;
            if (events[i].events & EPOLLIN)
                readReady(c);
        }
    }
}

void EventLoop::acceptReady()
{
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or listener gone
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (!setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }
        auto conn = std::make_unique<Conn>();
        conn->id = next_conn_id_++;
        conn->sock = Socket(fd);
        conn->outbuf = hello_bytes_; // both sides send before reading
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = conn->id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0)
            continue; // RAII closes the socket
        const std::uint64_t id = conn->id;
        conns_.emplace(id, std::move(conn));
        conn_count_.fetch_add(1);
        Conn &c = *conns_[id];
        flush(c);
        if (conns_.find(id) != conns_.end())
            updateInterest(c);
    }
}

void EventLoop::readReady(Conn &c)
{
    const std::uint64_t id = c.id;
    char buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::recv(c.sock.fd(), buf, sizeof(buf), 0);
        if (n > 0) {
            c.inbuf.insert(c.inbuf.end(), buf, buf + n);
            continue;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            destroyConn(id, true); // reset / transport error
            return;
        }
        // n == 0: orderly EOF. The peer may have half-closed after its
        // last request; any pending reply is still deliverable, so the
        // connection lives until its write side is drained.
        c.reading = false;
        c.close_after_flush = true;
        break;
    }
    parseFrames(c);
    if (conns_.find(id) == conns_.end())
        return;
    if (!connBusy(c) && c.close_after_flush) {
        destroyConn(id, false);
        return;
    }
    updateInterest(c);
}

void EventLoop::parseFrames(Conn &c)
{
    const std::uint64_t id = c.id;
    std::size_t off = 0;
    bool destroyed = false;
    while (!c.pending) {
        const std::size_t avail = c.inbuf.size() - off;
        if (!c.header_done) {
            if (avail < 16)
                break;
            MemSource src(c.inbuf.data() + off, 16);
            ChunkReader reader(src);
            std::uint32_t schema = 0;
            std::string err;
            if (!reader.readHeader(kServerFormatTag, schema, err) ||
                schema != kWireSchemaVersion) {
                // Handshake failure: the peer is not speaking our
                // protocol version; hang up without a reply (matching
                // the blocking server's helloAsServer behaviour).
                destroyConn(id, false);
                destroyed = true;
                break;
            }
            c.header_done = true;
            off += 16;
            continue;
        }
        if (avail < 12)
            break;
        const std::uint32_t len = readLe32(c.inbuf.data() + off + 4);
        if (len > kMaxRequestBytes) {
            // Reject the declared length before buffering it: the
            // hostile-length defence must hold per frame, not per read.
            SimResponse rsp;
            handler_.badFrameResponse(
                id, "request frame of " + std::to_string(len) +
                        " bytes exceeds cap " +
                        std::to_string(kMaxRequestBytes),
                rsp);
            enqueueResponse(c, rsp);
            c.reading = false;
            c.close_after_flush = true;
            break;
        }
        if (avail < 12 + static_cast<std::size_t>(len))
            break;
        MemSource src(c.inbuf.data() + off, 12 + len);
        ChunkReader reader(src);
        reader.setMaxChunkBytes(kMaxRequestBytes);
        std::string tag, err;
        std::vector<std::uint8_t> payload;
        const ChunkReader::Next r = reader.next(tag, payload, err);
        off += 12 + len;
        if (!c.hello_done) {
            // First chunk must be the peer's HELO.
            Decoder dec(payload);
            const std::string peer_build = dec.str();
            if (r != ChunkReader::Next::Chunk || tag != kHelloTag ||
                !dec.ok()) {
                destroyConn(id, false);
                destroyed = true;
                break;
            }
            c.hello_done = true;
            continue;
        }
        SimRequest req;
        std::string bad;
        if (r != ChunkReader::Next::Corrupt && tag != kRequestTag)
            bad = "expected chunk '" + std::string(kRequestTag) +
                  "', got '" + tag + "'";
        else if (r == ChunkReader::Next::Corrupt)
            bad = err;
        else {
            Decoder dec(payload);
            if (!decodeSimRequest(dec, req) || !dec.atEnd())
                bad = "malformed request payload";
        }
        if (!bad.empty()) {
            // The stream cannot be resynchronized past a bad frame:
            // say why, then hang up once the reply is flushed. The
            // connection counts as busy for the whole reply write, so
            // a concurrent drain waits instead of truncating it.
            SimResponse rsp;
            handler_.badFrameResponse(id, bad, rsp);
            enqueueResponse(c, rsp);
            c.reading = false;
            c.close_after_flush = true;
            break;
        }
        c.pending = true;
        ++c.generation;
        SimResponse rsp;
        const EventHandler::Dispatch d =
            handler_.onRequest(id, std::move(req), rsp);
        if (d == EventHandler::Dispatch::Reply) {
            c.pending = false;
            ++c.generation;
            enqueueResponse(c, rsp);
        }
        // Async: stop parsing; EPOLLIN is disarmed by updateInterest
        // until the response is posted, so a pipelining client cannot
        // grow the input buffer unboundedly.
    }
    if (destroyed)
        return;
    if (off > 0)
        c.inbuf.erase(c.inbuf.begin(),
                      c.inbuf.begin() + static_cast<std::ptrdiff_t>(off));
    flush(c);
}

void EventLoop::enqueueResponse(Conn &c, const SimResponse &rsp)
{
    MemSink sink;
    ChunkWriter writer(sink);
    Encoder enc;
    encodeSimResponse(enc, rsp);
    writer.chunk(kResponseTag, enc);
    c.outbuf.insert(c.outbuf.end(), sink.data().begin(), sink.data().end());
}

void EventLoop::flush(Conn &c)
{
    const std::uint64_t id = c.id;
    while (c.out_off < c.outbuf.size()) {
        const ssize_t n =
            ::send(c.sock.fd(), c.outbuf.data() + c.out_off,
                   c.outbuf.size() - c.out_off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return; // writability will resume the flush
            destroyConn(id, true);
            return;
        }
        c.out_off += static_cast<std::size_t>(n);
    }
    c.outbuf.clear();
    c.out_off = 0;
    if (c.close_after_flush && !c.pending)
        destroyConn(id, false);
}

void EventLoop::writeReady(Conn &c)
{
    flush(c);
    if (conns_.find(c.id) != conns_.end())
        updateInterest(c);
}

void EventLoop::updateInterest(Conn &c)
{
    std::uint32_t events = 0;
    if (c.reading && !c.pending)
        events |= EPOLLIN;
    const bool want_write = c.out_off < c.outbuf.size();
    if (want_write)
        events |= EPOLLOUT;
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = c.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.sock.fd(), &ev);
    c.want_write = want_write;
}

void EventLoop::destroyConn(std::uint64_t id, bool notify_handler)
{
    auto it = conns_.find(id);
    if (it == conns_.end())
        return;
    const bool was_pending = it->second->pending;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->sock.fd(), nullptr);
    conns_.erase(it);
    conn_count_.fetch_sub(1);
    if (notify_handler && was_pending)
        handler_.onConnClosed(id);
}

void EventLoop::runOps()
{
    std::vector<Op> ops;
    {
        LockGuard lock(ops_mu_);
        ops.swap(ops_);
    }
    for (Op &op : ops) {
        switch (op.kind) {
        case Op::Kind::StopAccept:
            if (accepting_) {
                ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
                accepting_ = false;
            }
            break;
        case Op::Kind::CloseAll: {
            std::vector<std::uint64_t> ids;
            ids.reserve(conns_.size());
            for (const auto &kv : conns_)
                ids.push_back(kv.first);
            for (std::uint64_t id : ids) {
                auto it = conns_.find(id);
                if (it == conns_.end())
                    continue;
                it->second->sock.shutdownBoth();
                destroyConn(id, true);
            }
            break;
        }
        case Op::Kind::Response: {
            auto it = conns_.find(op.conn_id);
            if (it == conns_.end())
                break; // connection died while the work ran
            Conn &c = *it->second;
            if (!c.pending)
                break; // duplicate completion; first one won
            c.pending = false;
            ++c.generation; // a stale deadline timer must not fire
            enqueueResponse(c, op.rsp);
            // The reply may unblock the next buffered request.
            parseFrames(c);
            if (conns_.find(op.conn_id) == conns_.end())
                break;
            if (!connBusy(c) && c.close_after_flush) {
                destroyConn(op.conn_id, false);
                break;
            }
            updateInterest(c);
            break;
        }
        }
    }
}

void EventLoop::fireTimers()
{
    if (timers_.empty())
        return;
    const auto now = std::chrono::steady_clock::now();
    std::vector<Timer> keep;
    std::vector<std::uint64_t> fire;
    keep.reserve(timers_.size());
    for (const Timer &t : timers_) {
        auto it = conns_.find(t.conn_id);
        const bool live = it != conns_.end() && it->second->pending &&
                          it->second->generation == t.generation;
        if (!live)
            continue; // answered or closed; the timer is stale
        if (t.when <= now)
            fire.push_back(t.conn_id);
        else
            keep.push_back(t);
    }
    timers_.swap(keep);
    for (std::uint64_t id : fire)
        handler_.onDeadline(id);
}

bool EventLoop::connBusy(const Conn &c) const
{
    return c.pending || c.out_off < c.outbuf.size();
}

void EventLoop::checkQuiescent()
{
    {
        LockGuard lock(quiesce_mu_);
        if (quiesce_waiters_ == 0)
            return;
    }
    bool busy;
    {
        LockGuard lock(ops_mu_);
        busy = !ops_.empty();
    }
    if (!busy)
        for (const auto &kv : conns_)
            if (connBusy(*kv.second)) {
                busy = true;
                break;
            }
    if (busy)
        return;
    {
        LockGuard lock(quiesce_mu_);
        quiescent_ = true;
    }
    quiesce_cv_.notify_all();
}

} // namespace th
