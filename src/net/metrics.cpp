#include "net/metrics.h"

#include <sstream>

#include "sim/system.h"

namespace th {

void ServerMetrics::sampleLatencyUs(std::uint64_t micros)
{
    LockGuard lock(latency_mu_);
    latency_.sample(micros);
}

std::string ServerMetrics::renderCounters(std::uint64_t in_flight,
                                          std::uint64_t queue_depth) const
{
    std::uint64_t count, p50, p99;
    {
        LockGuard lock(latency_mu_);
        count = latency_.count();
        p50 = latency_.quantileUpperBoundUs(0.50);
        p99 = latency_.quantileUpperBoundUs(0.99);
    }

    std::ostringstream os;
    os << "requests_served " << requests_served_.load() << '\n';
    os << "requests_in_flight " << in_flight << '\n';
    os << "queue_depth " << queue_depth << '\n';
    os << "dedup_hits " << dedup_hits_.load() << '\n';
    os << "simulations_run " << simulations_run_.load() << '\n';
    os << "rejected_overload " << rejected_overload_.load() << '\n';
    os << "rejected_shutdown " << rejected_shutdown_.load() << '\n';
    os << "deadline_expired " << deadline_expired_.load() << '\n';
    os << "bad_requests " << bad_requests_.load() << '\n';
    os << "latency_samples " << count << '\n';
    os << "latency_p50_us_le " << p50 << '\n';
    os << "latency_p99_us_le " << p99 << '\n';
    return os.str();
}

std::string ServerMetrics::renderText(const System &sys,
                                      std::uint64_t in_flight,
                                      std::uint64_t queue_depth) const
{
    std::ostringstream os;
    os << renderCounters(in_flight, queue_depth);

    System::CacheStats cache = sys.coreCacheStats();
    os << "core_cache_hits " << cache.hits << '\n';
    os << "core_cache_misses " << cache.misses << '\n';

    StoreStats store = sys.storeStats();
    os << "store_enabled " << (sys.storeEnabled() ? 1 : 0) << '\n';
    os << "store_hits " << store.hits << '\n';
    os << "store_misses " << store.misses << '\n';
    os << "store_stores " << store.stores << '\n';
    os << "store_evictions " << store.evictions << '\n';
    os << "store_corrupt " << store.corrupt << '\n';
    os << "store_touch_failures " << store.touchFailures << '\n';
    os << "store_race_lost " << store.raceLost << '\n';
    return os.str();
}

} // namespace th
