#include "net/server.h"

#include <climits>
#include <utility>

#include "common/version.h"
#include "dtm/engine.h"
#include "dtm/policy.h"
#include "io/serialize.h"
#include "sim/experiments.h"
#include "sim/report.h"
#include "trace/suites.h"

namespace th {

namespace {

/** Non-exiting configByName (th_run's variant calls usage()). */
bool configKindByName(const std::string &name, ConfigKind &out)
{
    for (ConfigKind k : {ConfigKind::Base, ConfigKind::TH, ConfigKind::Pipe,
                         ConfigKind::Fast, ConfigKind::ThreeD,
                         ConfigKind::ThreeDNoTH}) {
        if (name == configName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

/** Map request DTM knobs onto DtmOptions (0 / empty = defaults).
 *  The narrowing casts are safe because validate() rejected anything
 *  above INT_MAX before the request was admitted. */
DtmOptions dtmOptionsFrom(const SimRequest &req)
{
    DtmOptions opts;
    if (!req.dtmPolicy.empty())
        dtmPolicyByName(req.dtmPolicy, opts.policy); // validated upstream
    if (req.dtmTriggerK > 0.0)
        opts.triggers.triggerK = req.dtmTriggerK;
    if (req.dtmIntervals > 0)
        opts.maxIntervals = static_cast<int>(req.dtmIntervals);
    if (req.dtmIntervalCycles > 0)
        opts.intervalCycles = req.dtmIntervalCycles;
    if (req.dtmDilation > 0.0)
        opts.timeDilation = req.dtmDilation;
    if (req.dtmGridN > 0)
        opts.gridN = static_cast<int>(req.dtmGridN);
    if (!req.dtmSolver.empty())
        solverKindByName(req.dtmSolver, &opts.solver); // validated upstream
    return opts;
}

} // namespace

SimServer::SimServer(const ServerOptions &opts)
    : opts_(opts), loop_(*this, buildInfo()), queue_(opts.queueCapacity)
{
    LockGuard lock(pause_mu_);
    paused_ = opts.startWorkersPaused;
}

SimServer::~SimServer()
{
    shutdown();
}

bool SimServer::start(std::string &err)
{
    if (started_.exchange(true)) {
        err = "server already started";
        return false;
    }
    sys_ = std::make_unique<System>(opts_.sim);
    if (!listener_.listenOn(opts_.host, opts_.port, err))
        return false;
    if (!loop_.start(listener_.fd(), err))
        return false;
    const int n = opts_.workers < 1 ? 1 : opts_.workers;
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    return true;
}

std::uint16_t SimServer::port() const
{
    return listener_.port();
}

void SimServer::shutdown()
{
    if (!started_.load() || stopped_.exchange(true))
        return;
    // Ordering matters. (1) Flag the drain so request handlers answer
    // ShuttingDown; (2) stop accepting; (3) close the queue — workers
    // finish every already-admitted simulation, publish its result to
    // the waiting connections, then exit; (4) wait (CV, not a spin)
    // until the event loop has flushed every reply — structured error
    // replies included — then cut the sockets and stop the loop.
    draining_.store(true);
    loop_.stopAccepting();
    listener_.close();
    queue_.close();
    resumeWorkers(); // a paused pool must not deadlock the drain
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    // Every flight is resolved; its responses may still be queued or
    // buffered. The loop signals quiescence once nothing is pending
    // and every write buffer is empty, so no reply is ever truncated.
    loop_.waitQuiescent();
    loop_.closeAllConns();
    loop_.stop();
}

void SimServer::resumeWorkers()
{
    {
        LockGuard lock(pause_mu_);
        paused_ = false;
    }
    pause_cv_.notify_all();
}

void SimServer::waitUntilResumed()
{
    UniqueLock lock(pause_mu_);
    while (paused_)
        pause_cv_.wait(lock);
}

void SimServer::badFrameResponse(std::uint64_t, const std::string &err,
                                 SimResponse &rsp)
{
    // Corrupt/oversize/garbage frame: say why, then the loop hangs
    // up — the stream cannot be resynchronized.
    metrics_.noteBadRequest();
    rsp.status = SimStatus::BadRequest;
    rsp.error = err;
}

EventHandler::Dispatch SimServer::onRequest(std::uint64_t conn_id,
                                            SimRequest &&req,
                                            SimResponse &rsp)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    auto replied = [&] {
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - t0)
                            .count();
        metrics_.sampleLatencyUs(static_cast<std::uint64_t>(us));
        metrics_.noteServed();
        return Dispatch::Reply;
    };

    std::string verr;
    if (!validate(req, verr)) {
        metrics_.noteBadRequest();
        rsp.status = SimStatus::BadRequest;
        rsp.error = verr;
        return replied();
    }

    // Control-plane kinds are answered inline — they must work even
    // when the admission queue is full or the server is draining.
    if (req.kind == SimRequestKind::Ping) {
        rsp.text = std::string(buildInfo()) + "\n";
        return replied();
    }
    if (req.kind == SimRequestKind::Metrics) {
        rsp.text = metrics_.renderText(*sys_, in_flight_.load(),
                                       queue_.size());
        return replied();
    }

    if (draining_.load()) {
        metrics_.noteRejectedShutdown();
        rsp.status = SimStatus::ShuttingDown;
        rsp.error = "server is draining";
        return replied();
    }

    // Single-flight: identical requests (deadline aside) coalesce onto
    // one Flight; only its creator enqueues work.
    const std::vector<std::uint8_t> key_bytes = flightKeyOf(req);
    const std::string key(key_bytes.begin(), key_bytes.end());
    std::shared_ptr<Flight> flight;
    bool created = false;
    {
        LockGuard lock(flights_mu_);
        auto it = flights_.find(key);
        if (it != flights_.end()) {
            flight = it->second;
        } else {
            flight = std::make_shared<Flight>();
            flights_.emplace(key, flight);
            created = true;
        }
    }
    if (!created)
        metrics_.noteDedupHit();
    {
        LockGuard lock(pending_mu_);
        pending_.emplace(conn_id, Pending{flight, key, t0});
    }
    {
        LockGuard lock(flight->mu);
        flight->waiters.push_back(conn_id);
    }
    if (req.deadlineMs != 0)
        loop_.armDeadline(conn_id, req.deadlineMs);

    if (created) {
        Work work;
        work.flight = flight;
        work.request = std::move(req);
        work.key = key;
        if (!queue_.tryPush(std::move(work))) {
            // Admission failed. Other requests may already have
            // attached to this flight, so publish the rejection as the
            // flight's result instead of just erasing it — every
            // waiter (including this connection) receives the
            // structured reject and nobody waits on a flight that
            // never runs.
            SimResponse reject;
            if (draining_.load()) {
                metrics_.noteRejectedShutdown();
                reject.status = SimStatus::ShuttingDown;
                reject.error = "server is draining";
            } else {
                metrics_.noteRejectedOverload();
                reject.status = SimStatus::Overloaded;
                reject.error = "admission queue full (capacity " +
                               std::to_string(queue_.capacity()) +
                               "); retry later";
            }
            publishFlight(flight, key, reject);
        }
    }
    return Dispatch::Async;
}

void SimServer::onDeadline(std::uint64_t conn_id)
{
    std::shared_ptr<Flight> flight;
    Pending entry;
    bool last_waiter = false;
    {
        LockGuard lock(pending_mu_);
        auto it = pending_.find(conn_id);
        if (it == pending_.end())
            return; // answered in the same loop round
        flight = it->second.flight;
        {
            LockGuard flock(flight->mu);
            if (flight->done)
                return; // result published; delivery is on its way
            auto &w = flight->waiters;
            for (auto wit = w.begin(); wit != w.end(); ++wit) {
                if (*wit == conn_id) {
                    w.erase(wit);
                    break;
                }
            }
            last_waiter = w.empty();
        }
        entry = it->second;
        pending_.erase(it);
    }
    if (last_waiter) {
        // Nobody wants this result anymore: fire the token so the
        // cycle loop unwinds, and unmap the key immediately so a
        // fresh request starts a fresh (uncancelled) flight.
        flight->cancel.cancel();
        LockGuard lock(flights_mu_);
        auto it = flights_.find(entry.key);
        if (it != flights_.end() && it->second == flight)
            flights_.erase(it);
    }
    metrics_.noteDeadlineExpired();
    SimResponse rsp;
    rsp.status = SimStatus::DeadlineExceeded;
    rsp.error = "deadline expired before the simulation completed";
    finishRequest(conn_id, entry, rsp);
}

void SimServer::onConnClosed(std::uint64_t conn_id)
{
    // The peer vanished mid-flight: detach its waiter; if it was the
    // last one, cancel the simulation nobody is waiting for.
    std::shared_ptr<Flight> flight;
    std::string key;
    bool last_waiter = false;
    {
        LockGuard lock(pending_mu_);
        auto it = pending_.find(conn_id);
        if (it == pending_.end())
            return;
        flight = it->second.flight;
        key = it->second.key;
        {
            LockGuard flock(flight->mu);
            if (!flight->done) {
                auto &w = flight->waiters;
                for (auto wit = w.begin(); wit != w.end(); ++wit) {
                    if (*wit == conn_id) {
                        w.erase(wit);
                        break;
                    }
                }
                last_waiter = w.empty();
            }
        }
        pending_.erase(it);
    }
    if (last_waiter) {
        flight->cancel.cancel();
        LockGuard lock(flights_mu_);
        auto it = flights_.find(key);
        if (it != flights_.end() && it->second == flight)
            flights_.erase(it);
    }
}

void SimServer::finishRequest(std::uint64_t conn_id, const Pending &p,
                              const SimResponse &rsp)
{
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - p.t0)
                        .count();
    metrics_.sampleLatencyUs(static_cast<std::uint64_t>(us));
    metrics_.noteServed();
    loop_.postResponse(conn_id, rsp);
}

void SimServer::publishFlight(const std::shared_ptr<Flight> &flight,
                              const std::string &key,
                              const SimResponse &rsp)
{
    // Unmap BEFORE publishing: once a waiter sees its response it may
    // immediately send another identical request, and that one must
    // start a fresh flight (the System memo/store answers it
    // instantly) rather than attach to this finished one.
    {
        LockGuard lock(flights_mu_);
        auto it = flights_.find(key);
        if (it != flights_.end() && it->second == flight)
            flights_.erase(it);
    }
    std::vector<std::uint64_t> waiters;
    {
        LockGuard lock(flight->mu);
        flight->done = true;
        waiters.swap(flight->waiters);
    }
    for (std::uint64_t conn_id : waiters) {
        Pending entry;
        {
            LockGuard lock(pending_mu_);
            auto it = pending_.find(conn_id);
            if (it == pending_.end())
                continue; // deadline or disconnect beat us to it
            entry = it->second;
            pending_.erase(it);
        }
        finishRequest(conn_id, entry, rsp);
    }
}

bool SimServer::validate(const SimRequest &req, std::string &err) const
{
    for (const std::string &b : req.benchmarks) {
        if (!hasBenchmark(b)) {
            err = "unknown benchmark '" + b + "'";
            return false;
        }
    }
    // The store keys a result by (benchmark, config hash) only — the
    // simulation window is the server's to fix. Accept 0 ("use the
    // server's") or an exact match; anything else would silently serve
    // a result computed under a different window.
    if (req.insts != 0 && req.insts != opts_.sim.instructions) {
        err = "requested insts " + std::to_string(req.insts) +
              " != server window " +
              std::to_string(opts_.sim.instructions) +
              " (the server's simulation window is fixed)";
        return false;
    }
    if (req.warmup != 0 && req.warmup != opts_.sim.warmupInstructions) {
        err = "requested warmup " + std::to_string(req.warmup) +
              " != server window " +
              std::to_string(opts_.sim.warmupInstructions) +
              " (the server's simulation window is fixed)";
        return false;
    }
    if (req.kind == SimRequestKind::Core) {
        if (req.benchmarks.size() != 1) {
            err = "core requests take exactly one benchmark";
            return false;
        }
        ConfigKind kind;
        if (!configKindByName(req.config, kind)) {
            err = "unknown config '" + req.config +
                  "' (Base, TH, Pipe, Fast, 3D, 3D-noTH)";
            return false;
        }
    } else if (req.kind == SimRequestKind::Multicore) {
        ConfigKind kind;
        if (!req.config.empty() && !configKindByName(req.config, kind)) {
            err = "unknown config '" + req.config +
                  "' (Base, TH, Pipe, Fast, 3D, 3D-noTH)";
            return false;
        }
    } else if (!req.config.empty()) {
        err = "config is only meaningful for core and multicore "
              "requests";
        return false;
    }
    if (req.kind == SimRequestKind::Multicore) {
        // The generated floorplan and thermal grid scale with the core
        // count; cap both axes so a hostile request cannot ask for an
        // absurd stack (and so the int casts below never wrap).
        if (req.mcCores > 64) {
            err = "mcCores " + std::to_string(req.mcCores) +
                  " out of range (max 64)";
            return false;
        }
        if (req.mcL2Banks > 64) {
            err = "mcL2Banks " + std::to_string(req.mcL2Banks) +
                  " out of range (max 64)";
            return false;
        }
    } else if (req.mcCores != 0 || req.mcL2Banks != 0) {
        err = "mcCores/mcL2Banks are only meaningful for multicore "
              "requests";
        return false;
    }
    if (req.kind == SimRequestKind::Dtm &&
        req.benchmarks.size() > 1) {
        err = "dtm requests take at most one benchmark";
        return false;
    }
    // Multicore requests reuse the DTM knobs for their per-core
    // policies, so both kinds get the same validation.
    if (req.kind == SimRequestKind::Dtm ||
        req.kind == SimRequestKind::Multicore) {
        DtmPolicyKind policy;
        if (!req.dtmPolicy.empty() &&
            !dtmPolicyByName(req.dtmPolicy, policy)) {
            err = "unknown policy '" + req.dtmPolicy +
                  "' (none, clockgate, fetch)";
            return false;
        }
        SolverKind solver;
        if (!req.dtmSolver.empty() &&
            !solverKindByName(req.dtmSolver, &solver)) {
            err = "unknown solver '" + req.dtmSolver +
                  "' (sor, multigrid)";
            return false;
        }
        // The wire carries these as unsigned; DtmOptions holds ints. A
        // hostile value above INT_MAX would wrap negative through the
        // narrowing cast and sail past the > 0 default-selection
        // guards, so reject it here with a structured error.
        if (req.dtmIntervals > static_cast<std::uint32_t>(INT_MAX)) {
            err = "dtmIntervals " + std::to_string(req.dtmIntervals) +
                  " out of range (max " + std::to_string(INT_MAX) + ")";
            return false;
        }
        if (req.dtmGridN > static_cast<std::uint32_t>(INT_MAX)) {
            err = "dtmGridN " + std::to_string(req.dtmGridN) +
                  " out of range (max " + std::to_string(INT_MAX) + ")";
            return false;
        }
    }
    if (req.fastPath > 1) {
        err = "fastPath must be 0 or 1";
        return false;
    }
    if (req.fastPath != 0 && req.kind != SimRequestKind::Dtm) {
        err = "fastPath is only meaningful for dtm requests";
        return false;
    }
    return true;
}

SimResponse SimServer::execute(const SimRequest &req,
                               const CancelToken *cancel)
{
    SimResponse rsp;
    switch (req.kind) {
    case SimRequestKind::Fig8:
        rsp.text = renderFig8(runFigure8(*sys_, req.benchmarks, cancel));
        break;
    case SimRequestKind::Fig9:
        rsp.text = renderFig9(runFigure9(*sys_, req.benchmarks, cancel));
        break;
    case SimRequestKind::Fig10:
        rsp.text = renderFig10(runFigure10(*sys_, req.benchmarks, cancel));
        break;
    case SimRequestKind::Width:
        rsp.text = renderWidth(runWidthStudy(*sys_, req.benchmarks, cancel));
        break;
    case SimRequestKind::Dtm: {
        const DtmOptions opts = dtmOptionsFrom(req);
        const std::string benchmark = req.benchmarks.empty()
                                          ? System::kPowerReferenceBenchmark
                                          : req.benchmarks[0];
        // fastPath replays fitted interval models (with an exact anchor
        // backing the report's error line); requests differing only in
        // this flag never coalesce — flightKeyOf covers it.
        const DtmStudyData data = req.fastPath != 0
            ? runDtmStudyFast(*sys_, benchmark, opts, IntervalOptions{},
                              cancel)
            : runDtmStudy(*sys_, benchmark, opts, cancel);
        rsp.text = renderDtm(data, opts);
        break;
    }
    case SimRequestKind::Core: {
        ConfigKind kind = ConfigKind::Base;
        configKindByName(req.config, kind); // validated on admission
        const CoreResult r = sys_->runCore(req.benchmarks[0], kind, cancel);
        rsp.text = renderCoreRun(req.benchmarks[0], req.config, r);
        break;
    }
    case SimRequestKind::Multicore: {
        MulticoreConfig mc;
        mc.benchmarks = req.benchmarks;
        mc.dtm = dtmOptionsFrom(req);
        if (req.mcL2Banks > 0)
            mc.l2Banks = static_cast<int>(req.mcL2Banks);
        if (req.mcCores > 0) {
            // Single stack at the requested core count (config
            // defaults to the full 3D design).
            mc.numCores = static_cast<int>(req.mcCores);
            ConfigKind kind = ConfigKind::ThreeD;
            if (!req.config.empty())
                configKindByName(req.config, kind); // validated on admission
            rsp.text = renderMulticore(
                sys_->runMulticore(kind, mc, cancel));
        } else {
            // No core count: the full neighbor-coupling study.
            rsp.text = renderMulticoreStudy(
                runMulticoreStudy(*sys_, mc, {}, cancel));
        }
        break;
    }
    case SimRequestKind::Ping:
    case SimRequestKind::Metrics:
        rsp.status = SimStatus::Internal;
        rsp.error = "control-plane request reached the worker pool";
        break;
    }
    return rsp;
}

void SimServer::workerLoop()
{
    waitUntilResumed();
    Work work;
    while (queue_.pop(work)) {
        in_flight_.fetch_add(1);
        SimResponse rsp;
        if (work.flight->cancel.cancelled()) {
            // Every waiter timed out while this sat in the queue;
            // don't burn a simulation nobody is waiting for.
            rsp.status = SimStatus::DeadlineExceeded;
            rsp.error = "cancelled before execution";
        } else {
            metrics_.noteSimulationRun();
            try {
                rsp = execute(work.request, &work.flight->cancel);
            } catch (const Cancelled &) {
                rsp.status = SimStatus::DeadlineExceeded;
                rsp.error = "cancelled mid-run after every waiter's "
                            "deadline expired";
            } catch (const std::exception &e) {
                rsp.status = SimStatus::Internal;
                rsp.error = e.what();
            }
        }
        publishFlight(work.flight, work.key, rsp);
        in_flight_.fetch_sub(1);
    }
}

} // namespace th
