#include "net/server.h"

#include <chrono>
#include <utility>

#include "common/version.h"
#include "dtm/engine.h"
#include "dtm/policy.h"
#include "io/serialize.h"
#include "sim/experiments.h"
#include "sim/report.h"
#include "trace/suites.h"

namespace th {

namespace {

/** Non-exiting configByName (th_run's variant calls usage()). */
bool configKindByName(const std::string &name, ConfigKind &out)
{
    for (ConfigKind k : {ConfigKind::Base, ConfigKind::TH, ConfigKind::Pipe,
                         ConfigKind::Fast, ConfigKind::ThreeD,
                         ConfigKind::ThreeDNoTH}) {
        if (name == configName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

/** Map request DTM knobs onto DtmOptions (0 / empty = defaults). */
DtmOptions dtmOptionsFrom(const SimRequest &req)
{
    DtmOptions opts;
    if (!req.dtmPolicy.empty())
        dtmPolicyByName(req.dtmPolicy, opts.policy); // validated upstream
    if (req.dtmTriggerK > 0.0)
        opts.triggers.triggerK = req.dtmTriggerK;
    if (req.dtmIntervals > 0)
        opts.maxIntervals = static_cast<int>(req.dtmIntervals);
    if (req.dtmIntervalCycles > 0)
        opts.intervalCycles = req.dtmIntervalCycles;
    if (req.dtmDilation > 0.0)
        opts.timeDilation = req.dtmDilation;
    if (req.dtmGridN > 0)
        opts.gridN = static_cast<int>(req.dtmGridN);
    if (!req.dtmSolver.empty())
        solverKindByName(req.dtmSolver, &opts.solver); // validated upstream
    return opts;
}

} // namespace

SimServer::SimServer(const ServerOptions &opts)
    : opts_(opts), queue_(opts.queueCapacity)
{
    LockGuard lock(pause_mu_);
    paused_ = opts.startWorkersPaused;
}

SimServer::~SimServer()
{
    shutdown();
}

bool SimServer::start(std::string &err)
{
    if (started_.exchange(true)) {
        err = "server already started";
        return false;
    }
    sys_ = std::make_unique<System>(opts_.sim);
    if (!listener_.listenOn(opts_.host, opts_.port, err))
        return false;
    const int n = opts_.workers < 1 ? 1 : opts_.workers;
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    acceptor_ = std::thread([this] { acceptLoop(); });
    return true;
}

std::uint16_t SimServer::port() const
{
    return listener_.port();
}

void SimServer::shutdown()
{
    if (!started_.load() || stopped_.exchange(true))
        return;
    // Ordering matters. (1) Flag the drain so request handlers answer
    // ShuttingDown; (2) stop accepting; (3) close the queue — workers
    // finish every already-admitted simulation, publish its result,
    // then exit; (4) with all flights resolved, kick idle connection
    // reads and join the connection threads.
    draining_.store(true);
    listener_.close();
    if (acceptor_.joinable())
        acceptor_.join();
    queue_.close();
    resumeWorkers(); // a paused pool must not deadlock the drain
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    // Workers published every flight's result, but a connection thread
    // may still be between waking on its flight and writing the reply.
    // Wait for those replies to hit the wire before cutting sockets;
    // this terminates because every flight is resolved by now, so no
    // handler can block again.
    for (;;) {
        bool any_busy = false;
        {
            LockGuard lock(conns_mu_);
            for (const std::unique_ptr<Conn> &c : conns_)
                any_busy = any_busy || c->busy.load();
        }
        if (!any_busy)
            break;
        std::this_thread::yield();
    }
    {
        LockGuard lock(conns_mu_);
        for (const std::unique_ptr<Conn> &c : conns_)
            c->wire->shutdownBoth();
    }
    reapConns(true);
}

void SimServer::resumeWorkers()
{
    {
        LockGuard lock(pause_mu_);
        paused_ = false;
    }
    pause_cv_.notify_all();
}

void SimServer::waitUntilResumed()
{
    UniqueLock lock(pause_mu_);
    while (paused_)
        pause_cv_.wait(lock);
}

void SimServer::acceptLoop()
{
    for (;;) {
        Socket s = listener_.accept();
        if (!s.valid())
            break; // listener closed: drain in progress
        if (draining_.load())
            continue; // refuse late arrivals; RAII closes the socket
        auto conn = std::make_unique<Conn>();
        conn->wire = std::make_shared<WireConn>(std::move(s));
        Conn *c = conn.get();
        {
            LockGuard lock(conns_mu_);
            conns_.push_back(std::move(conn));
        }
        c->thread = std::thread([this, c] {
            connLoop(c);
            c->finished.store(true);
        });
        reapConns(false);
    }
}

void SimServer::connLoop(Conn *conn)
{
    using Clock = std::chrono::steady_clock;
    WireConn &wire = *conn->wire;
    std::string peer_build, err;
    if (!wire.helloAsServer(buildInfo(), peer_build, err))
        return;
    for (;;) {
        SimRequest req;
        bool clean_eof = false;
        if (!wire.recvRequest(req, clean_eof, err)) {
            if (!clean_eof) {
                // Corrupt/oversize/garbage frame: try to say why, then
                // hang up — the stream cannot be resynchronized.
                metrics_.noteBadRequest();
                SimResponse rsp;
                rsp.status = SimStatus::BadRequest;
                rsp.error = err;
                wire.sendResponse(rsp);
            }
            break;
        }
        conn->busy.store(true);
        const Clock::time_point t0 = Clock::now();
        const SimResponse rsp = handle(req);
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - t0)
                            .count();
        metrics_.sampleLatencyUs(static_cast<std::uint64_t>(us));
        metrics_.noteServed();
        const bool sent = wire.sendResponse(rsp);
        conn->busy.store(false);
        if (!sent)
            break;
    }
}

SimResponse SimServer::handle(const SimRequest &req)
{
    SimResponse rsp;

    std::string verr;
    if (!validate(req, verr)) {
        metrics_.noteBadRequest();
        rsp.status = SimStatus::BadRequest;
        rsp.error = verr;
        return rsp;
    }

    // Control-plane kinds are answered inline — they must work even
    // when the admission queue is full or the server is draining.
    if (req.kind == SimRequestKind::Ping) {
        rsp.text = std::string(buildInfo()) + "\n";
        return rsp;
    }
    if (req.kind == SimRequestKind::Metrics) {
        rsp.text = metrics_.renderText(*sys_, in_flight_.load(),
                                       queue_.size());
        return rsp;
    }

    if (draining_.load()) {
        metrics_.noteRejectedShutdown();
        rsp.status = SimStatus::ShuttingDown;
        rsp.error = "server is draining";
        return rsp;
    }

    // Single-flight: identical requests (deadline aside) coalesce onto
    // one Flight; only its creator enqueues work.
    const std::vector<std::uint8_t> key_bytes = flightKeyOf(req);
    const std::string key(key_bytes.begin(), key_bytes.end());
    std::shared_ptr<Flight> flight;
    bool created = false;
    {
        LockGuard lock(flights_mu_);
        auto it = flights_.find(key);
        if (it != flights_.end()) {
            flight = it->second;
        } else {
            flight = std::make_shared<Flight>();
            flights_.emplace(key, flight);
            created = true;
        }
    }
    if (!created)
        metrics_.noteDedupHit();
    {
        LockGuard lock(flight->mu);
        ++flight->waiters;
    }

    if (created) {
        Work work;
        work.flight = flight;
        work.request = req;
        work.key = key;
        if (!queue_.tryPush(std::move(work))) {
            // Admission failed. Other requests may already have
            // attached to this flight, so publish the rejection as the
            // flight's result instead of just erasing it — every
            // waiter (including us, below) receives the structured
            // reject and nobody blocks on a flight that never runs.
            {
                LockGuard lock(flights_mu_);
                auto it = flights_.find(key);
                if (it != flights_.end() && it->second == flight)
                    flights_.erase(it);
            }
            SimResponse reject;
            if (draining_.load()) {
                metrics_.noteRejectedShutdown();
                reject.status = SimStatus::ShuttingDown;
                reject.error = "server is draining";
            } else {
                metrics_.noteRejectedOverload();
                reject.status = SimStatus::Overloaded;
                reject.error = "admission queue full (capacity " +
                               std::to_string(queue_.capacity()) +
                               "); retry later";
            }
            {
                LockGuard lock(flight->mu);
                flight->result = std::move(reject);
                flight->done = true;
            }
            flight->cv.notify_all();
        }
    }

    // Wait for the flight's result, bounded by this request's deadline.
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(req.deadlineMs);
    bool expired = false;
    bool last_waiter = false;
    {
        UniqueLock lock(flight->mu);
        while (!flight->done) {
            if (req.deadlineMs == 0) {
                flight->cv.wait(lock);
            } else if (flight->cv.wait_until(lock, deadline) ==
                           std::cv_status::timeout &&
                       !flight->done) {
                --flight->waiters;
                last_waiter = flight->waiters == 0;
                expired = true;
                break;
            }
        }
        if (!expired) {
            rsp = flight->result;
            --flight->waiters;
        }
    }
    if (expired) {
        if (last_waiter) {
            // Nobody wants this result anymore: fire the token so the
            // cycle loop unwinds, and unmap the key immediately so a
            // fresh request starts a fresh (uncancelled) flight.
            flight->cancel.cancel();
            LockGuard lock(flights_mu_);
            auto it = flights_.find(key);
            if (it != flights_.end() && it->second == flight)
                flights_.erase(it);
        }
        metrics_.noteDeadlineExpired();
        rsp.status = SimStatus::DeadlineExceeded;
        rsp.error = "deadline of " + std::to_string(req.deadlineMs) +
                    " ms elapsed before the simulation completed";
        rsp.text.clear();
    }
    return rsp;
}

bool SimServer::validate(const SimRequest &req, std::string &err) const
{
    for (const std::string &b : req.benchmarks) {
        if (!hasBenchmark(b)) {
            err = "unknown benchmark '" + b + "'";
            return false;
        }
    }
    // The store keys a result by (benchmark, config hash) only — the
    // simulation window is the server's to fix. Accept 0 ("use the
    // server's") or an exact match; anything else would silently serve
    // a result computed under a different window.
    if (req.insts != 0 && req.insts != opts_.sim.instructions) {
        err = "requested insts " + std::to_string(req.insts) +
              " != server window " +
              std::to_string(opts_.sim.instructions) +
              " (the server's simulation window is fixed)";
        return false;
    }
    if (req.warmup != 0 && req.warmup != opts_.sim.warmupInstructions) {
        err = "requested warmup " + std::to_string(req.warmup) +
              " != server window " +
              std::to_string(opts_.sim.warmupInstructions) +
              " (the server's simulation window is fixed)";
        return false;
    }
    if (req.kind == SimRequestKind::Core) {
        if (req.benchmarks.size() != 1) {
            err = "core requests take exactly one benchmark";
            return false;
        }
        ConfigKind kind;
        if (!configKindByName(req.config, kind)) {
            err = "unknown config '" + req.config +
                  "' (Base, TH, Pipe, Fast, 3D, 3D-noTH)";
            return false;
        }
    } else if (!req.config.empty()) {
        err = "config is only meaningful for core requests";
        return false;
    }
    if (req.kind == SimRequestKind::Dtm) {
        if (req.benchmarks.size() > 1) {
            err = "dtm requests take at most one benchmark";
            return false;
        }
        DtmPolicyKind policy;
        if (!req.dtmPolicy.empty() &&
            !dtmPolicyByName(req.dtmPolicy, policy)) {
            err = "unknown policy '" + req.dtmPolicy +
                  "' (none, clockgate, fetch)";
            return false;
        }
        SolverKind solver;
        if (!req.dtmSolver.empty() &&
            !solverKindByName(req.dtmSolver, &solver)) {
            err = "unknown solver '" + req.dtmSolver +
                  "' (sor, multigrid)";
            return false;
        }
    }
    if (req.fastPath > 1) {
        err = "fastPath must be 0 or 1";
        return false;
    }
    if (req.fastPath != 0 && req.kind != SimRequestKind::Dtm) {
        err = "fastPath is only meaningful for dtm requests";
        return false;
    }
    return true;
}

SimResponse SimServer::execute(const SimRequest &req,
                               const CancelToken *cancel)
{
    SimResponse rsp;
    switch (req.kind) {
    case SimRequestKind::Fig8:
        rsp.text = renderFig8(runFigure8(*sys_, req.benchmarks, cancel));
        break;
    case SimRequestKind::Fig9:
        rsp.text = renderFig9(runFigure9(*sys_, req.benchmarks, cancel));
        break;
    case SimRequestKind::Fig10:
        rsp.text = renderFig10(runFigure10(*sys_, req.benchmarks, cancel));
        break;
    case SimRequestKind::Width:
        rsp.text = renderWidth(runWidthStudy(*sys_, req.benchmarks, cancel));
        break;
    case SimRequestKind::Dtm: {
        const DtmOptions opts = dtmOptionsFrom(req);
        const std::string benchmark = req.benchmarks.empty()
                                          ? System::kPowerReferenceBenchmark
                                          : req.benchmarks[0];
        // fastPath replays fitted interval models (with an exact anchor
        // backing the report's error line); requests differing only in
        // this flag never coalesce — flightKeyOf covers it.
        const DtmStudyData data = req.fastPath != 0
            ? runDtmStudyFast(*sys_, benchmark, opts, IntervalOptions{},
                              cancel)
            : runDtmStudy(*sys_, benchmark, opts, cancel);
        rsp.text = renderDtm(data, opts);
        break;
    }
    case SimRequestKind::Core: {
        ConfigKind kind = ConfigKind::Base;
        configKindByName(req.config, kind); // validated on admission
        const CoreResult r = sys_->runCore(req.benchmarks[0], kind, cancel);
        rsp.text = renderCoreRun(req.benchmarks[0], req.config, r);
        break;
    }
    case SimRequestKind::Ping:
    case SimRequestKind::Metrics:
        rsp.status = SimStatus::Internal;
        rsp.error = "control-plane request reached the worker pool";
        break;
    }
    return rsp;
}

void SimServer::workerLoop()
{
    waitUntilResumed();
    Work work;
    while (queue_.pop(work)) {
        in_flight_.fetch_add(1);
        SimResponse rsp;
        if (work.flight->cancel.cancelled()) {
            // Every waiter timed out while this sat in the queue;
            // don't burn a simulation nobody is waiting for.
            rsp.status = SimStatus::DeadlineExceeded;
            rsp.error = "cancelled before execution";
        } else {
            metrics_.noteSimulationRun();
            try {
                rsp = execute(work.request, &work.flight->cancel);
            } catch (const Cancelled &) {
                rsp.status = SimStatus::DeadlineExceeded;
                rsp.error = "cancelled mid-run after every waiter's "
                            "deadline expired";
            } catch (const std::exception &e) {
                rsp.status = SimStatus::Internal;
                rsp.error = e.what();
            }
        }
        {
            // Unmap BEFORE publishing: once a waiter sees done it may
            // immediately send another identical request, and that one
            // must start a fresh flight (the System memo/store answers
            // it instantly) rather than attach to this finished one.
            LockGuard lock(flights_mu_);
            auto it = flights_.find(work.key);
            if (it != flights_.end() && it->second == work.flight)
                flights_.erase(it);
        }
        {
            LockGuard lock(work.flight->mu);
            work.flight->result = std::move(rsp);
            work.flight->done = true;
        }
        work.flight->cv.notify_all();
        in_flight_.fetch_sub(1);
    }
}

void SimServer::reapConns(bool all)
{
    std::list<std::unique_ptr<Conn>> dead;
    {
        LockGuard lock(conns_mu_);
        for (auto it = conns_.begin(); it != conns_.end();) {
            if (all || (*it)->finished.load()) {
                dead.push_back(std::move(*it));
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const std::unique_ptr<Conn> &c : dead)
        if (c->thread.joinable())
            c->thread.join();
}

} // namespace th
