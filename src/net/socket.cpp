#include "net/socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace th {

namespace {

/** Build a sockaddr_in for @p host:@p port; false on a bad address. */
bool makeAddr(const std::string &host, std::uint16_t port,
              sockaddr_in &addr, std::string &err)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        err = "bad IPv4 address '" + host + "'";
        return false;
    }
    return true;
}

} // namespace

Socket &Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket Socket::connectTo(const std::string &host, std::uint16_t port,
                         std::string &err)
{
    sockaddr_in addr;
    if (!makeAddr(host, port, addr, err))
        return Socket();
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return Socket();
    }
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        err = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return Socket();
    }
    // Request/response frames are small; don't let Nagle add latency.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
}

Listener::~Listener()
{
    close();
    // By contract the accept loop has been joined before destruction,
    // so nothing can be blocked on the retired descriptor now.
    const int retired = retired_fd_.exchange(-1);
    if (retired >= 0)
        ::close(retired);
}

bool Listener::listenOn(const std::string &host, std::uint16_t port,
                        std::string &err)
{
    close();
    const int stale = retired_fd_.exchange(-1);
    if (stale >= 0)
        ::close(stale); // re-listen on a quiescent Listener only
    sockaddr_in addr;
    if (!makeAddr(host, port, addr, err))
        return false;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) < 0) {
        err = std::string("bind: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (::listen(fd, 64) < 0) {
        err = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    sockaddr_in bound;
    socklen_t blen = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &blen) == 0)
        port_ = ntohs(bound.sin_port);
    else
        port_ = port;
    fd_ = fd;
    return true;
}

Socket Listener::accept()
{
    for (;;) {
        int lfd = fd_.load();
        if (lfd < 0)
            return Socket();
        int fd = ::accept(lfd, nullptr, nullptr);
        if (fd >= 0) {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            return Socket(fd);
        }
        if (errno == EINTR)
            continue;
        return Socket();
    }
}

void Listener::close()
{
    const int fd = fd_.exchange(-1);
    if (fd >= 0) {
        // shutdown() wakes a blocked accept(); the descriptor itself
        // is retired, not closed — a concurrent accept() may still be
        // inside the syscall, and closing now would let the kernel
        // hand the fd number to someone else under it.
        ::shutdown(fd, SHUT_RDWR);
        retired_fd_.store(fd);
    }
}

bool SocketSink::write(const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        // MSG_NOSIGNAL: a peer that hung up must surface as a write
        // error on this thread, not a process-wide SIGPIPE.
        ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

std::size_t SocketSource::read(void *data, std::size_t len)
{
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < len) {
        ssize_t n = ::recv(fd_, p + got, len - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break; // orderly EOF
        got += static_cast<std::size_t>(n);
    }
    return got;
}

} // namespace th
