/**
 * @file
 * Server-side operational counters and their plain-text rendering (the
 * Metrics request kind). Counters are lock-free atomics updated on the
 * request path; the latency histogram is mutex-guarded because
 * LatencyHistogram itself is not atomic. None of this feeds any
 * simulation result — wall-clock sampling stays in src/net, outside
 * the deterministic result-producing layers.
 */

#ifndef TH_NET_METRICS_H
#define TH_NET_METRICS_H

#include <atomic>
#include <cstdint>
#include <string>

#include "common/stats.h"
#include "common/thread_annotations.h"

namespace th {

class System;

/** Counters for one SimServer. All methods are thread-safe. */
class ServerMetrics
{
  public:
    void noteServed() { requests_served_.fetch_add(1); }
    void noteDedupHit() { dedup_hits_.fetch_add(1); }
    void noteRejectedOverload() { rejected_overload_.fetch_add(1); }
    void noteRejectedShutdown() { rejected_shutdown_.fetch_add(1); }
    void noteDeadlineExpired() { deadline_expired_.fetch_add(1); }
    void noteBadRequest() { bad_requests_.fetch_add(1); }
    void noteSimulationRun() { simulations_run_.fetch_add(1); }

    /** Record one request's service time. */
    void sampleLatencyUs(std::uint64_t micros);

    std::uint64_t requestsServed() const { return requests_served_.load(); }
    std::uint64_t dedupHits() const { return dedup_hits_.load(); }
    std::uint64_t simulationsRun() const { return simulations_run_.load(); }
    std::uint64_t rejectedOverload() const
    {
        return rejected_overload_.load();
    }
    std::uint64_t rejectedShutdown() const
    {
        return rejected_shutdown_.load();
    }
    std::uint64_t deadlineExpired() const
    {
        return deadline_expired_.load();
    }
    std::uint64_t badRequests() const { return bad_requests_.load(); }

    /**
     * Render the metrics snapshot as "key value" lines: request
     * counters, latency quantile bounds, and the System's core-cache
     * and artifact-store counters. @p in_flight and @p queue_depth are
     * sampled by the server at render time.
     */
    std::string renderText(const System &sys, std::uint64_t in_flight,
                           std::uint64_t queue_depth) const;

    /**
     * The request-counter and latency block alone, without the System
     * cache/store lines — the router has no System of its own and
     * renders its backends' snapshots instead.
     */
    std::string renderCounters(std::uint64_t in_flight,
                               std::uint64_t queue_depth) const;

  private:
    std::atomic<std::uint64_t> requests_served_{0};
    std::atomic<std::uint64_t> dedup_hits_{0};
    std::atomic<std::uint64_t> rejected_overload_{0};
    std::atomic<std::uint64_t> rejected_shutdown_{0};
    std::atomic<std::uint64_t> deadline_expired_{0};
    std::atomic<std::uint64_t> bad_requests_{0};
    std::atomic<std::uint64_t> simulations_run_{0};

    mutable Mutex latency_mu_;
    LatencyHistogram latency_ TH_GUARDED_BY(latency_mu_);
};

} // namespace th

#endif // TH_NET_METRICS_H
