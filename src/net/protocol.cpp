#include "net/protocol.h"

#include <utility>

#include "io/serialize.h"

namespace th {

WireConn::WireConn(Socket sock)
    : sock_(std::move(sock)), sink_(sock_), src_(sock_), writer_(sink_),
      reader_(src_)
{
}

bool WireConn::sendHello(const std::string &build)
{
    if (!writer_.begin(kServerFormatTag, kWireSchemaVersion))
        return false;
    Encoder enc;
    enc.str(build);
    return writer_.chunk(kHelloTag, enc);
}

bool WireConn::recvHello(std::string &peer_build, std::string &err)
{
    std::uint32_t schema = 0;
    if (!reader_.readHeader(kServerFormatTag, schema, err))
        return false;
    if (schema != kWireSchemaVersion) {
        err = "peer speaks wire schema v" + std::to_string(schema) +
              ", this build speaks v" + std::to_string(kWireSchemaVersion);
        return false;
    }
    bool clean_eof = false;
    std::vector<std::uint8_t> payload;
    if (!recvChunk(kHelloTag, payload, clean_eof, err)) {
        if (clean_eof)
            err = "peer closed during handshake";
        return false;
    }
    Decoder dec(payload);
    peer_build = dec.str();
    if (!dec.ok()) {
        err = "malformed HELO payload";
        return false;
    }
    return true;
}

bool WireConn::helloAsClient(const std::string &build,
                             std::string &peer_build, std::string &err)
{
    // Both sides send before reading, so neither order deadlocks; the
    // frames are far smaller than any socket buffer.
    if (!sendHello(build)) {
        err = "failed to send handshake";
        return false;
    }
    return recvHello(peer_build, err);
}

bool WireConn::helloAsServer(const std::string &build,
                             std::string &peer_build, std::string &err)
{
    if (!sendHello(build)) {
        err = "failed to send handshake";
        return false;
    }
    // The server reads requests, so its reader caps at request size.
    reader_.setMaxChunkBytes(kMaxRequestBytes);
    return recvHello(peer_build, err);
}

bool WireConn::sendRequest(const SimRequest &req)
{
    Encoder enc;
    encodeSimRequest(enc, req);
    return writer_.chunk(kRequestTag, enc);
}

bool WireConn::sendResponse(const SimResponse &rsp)
{
    Encoder enc;
    encodeSimResponse(enc, rsp);
    return writer_.chunk(kResponseTag, enc);
}

bool WireConn::recvChunk(const char *want_tag,
                         std::vector<std::uint8_t> &payload, bool &clean_eof,
                         std::string &err)
{
    clean_eof = false;
    std::string tag;
    switch (reader_.next(tag, payload, err)) {
    case ChunkReader::Next::Chunk:
        break;
    case ChunkReader::Next::End:
        clean_eof = true;
        err = "connection closed";
        return false;
    case ChunkReader::Next::Corrupt:
        return false;
    }
    if (tag != want_tag) {
        err = "expected chunk '" + std::string(want_tag) + "', got '" + tag +
              "'";
        return false;
    }
    return true;
}

bool WireConn::recvRequest(SimRequest &req, bool &clean_eof, std::string &err)
{
    std::vector<std::uint8_t> payload;
    if (!recvChunk(kRequestTag, payload, clean_eof, err))
        return false;
    Decoder dec(payload);
    if (!decodeSimRequest(dec, req) || !dec.atEnd()) {
        err = "malformed request payload";
        return false;
    }
    return true;
}

bool WireConn::recvResponse(SimResponse &rsp, std::string &err)
{
    // Responses carry rendered sweep tables; allow the larger cap.
    reader_.setMaxChunkBytes(kMaxResponseBytes);
    bool clean_eof = false;
    std::vector<std::uint8_t> payload;
    if (!recvChunk(kResponseTag, payload, clean_eof, err))
        return false;
    Decoder dec(payload);
    if (!decodeSimResponse(dec, rsp) || !dec.atEnd()) {
        err = "malformed response payload";
        return false;
    }
    return true;
}

} // namespace th
