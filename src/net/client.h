/**
 * @file
 * Client side of the TSRV protocol: connect, handshake, then issue
 * SimRequests and collect SimResponses over one connection. Used by
 * th_run's --connect mode and the loopback tests. Not thread-safe —
 * one SimClient per thread.
 */

#ifndef TH_NET_CLIENT_H
#define TH_NET_CLIENT_H

#include <cstdint>
#include <memory>
#include <string>

#include "io/request.h"
#include "net/protocol.h"

namespace th {

class SimClient
{
  public:
    SimClient() = default;

    /** Connect and handshake; false + @p err on failure. */
    bool connect(const std::string &host, std::uint16_t port,
                 std::string &err);

    /** The server's build string (valid after connect()). */
    const std::string &serverBuild() const { return server_build_; }

    /**
     * Send one request and wait for its response. False on transport
     * failure (@p err filled); a structured error from the server is a
     * *successful* call with rsp.status != SimStatus::Ok.
     */
    bool call(const SimRequest &req, SimResponse &rsp, std::string &err);

    bool connected() const { return conn_ != nullptr; }
    void close() { conn_.reset(); }

  private:
    std::unique_ptr<WireConn> conn_;
    std::string server_build_;
};

} // namespace th

#endif // TH_NET_CLIENT_H
