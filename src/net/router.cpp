#include "net/router.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "common/version.h"
#include "io/serialize.h"

namespace th {

namespace {

/** FNV-1a 64-bit over @p n bytes, continuing from @p h. */
std::uint64_t fnv1a(const void *data, std::size_t n,
                    std::uint64_t h = 1469598103934665603ull)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

/** Split "host:port" (last colon wins); false on malformed input. */
bool parseHostPort(const std::string &addr, std::string &host,
                   std::uint16_t &port)
{
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == addr.size())
        return false;
    host = addr.substr(0, colon);
    const std::string digits = addr.substr(colon + 1);
    unsigned long value = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<unsigned long>(c - '0');
        if (value > 65535)
            return false;
    }
    if (value == 0)
        return false;
    port = static_cast<std::uint16_t>(value);
    return true;
}

/** Keep at most this many warm connections per backend. */
constexpr std::size_t kMaxIdlePerBackend = 4;

} // namespace

RouterServer::RouterServer(const RouterOptions &opts)
    : opts_(opts), loop_(*this, buildInfo()), queue_(opts.queueCapacity)
{
    // The ring only needs the address strings, so it is built here and
    // immutable afterwards — routeOf() is lock-free.
    const int vnodes = opts_.vnodes < 1 ? 1 : opts_.vnodes;
    for (std::size_t i = 0; i < opts_.backends.size(); ++i) {
        for (int v = 0; v < vnodes; ++v) {
            const std::string point =
                opts_.backends[i] + '#' + std::to_string(v);
            ring_.emplace_back(fnv1a(point.data(), point.size()), i);
        }
    }
    std::sort(ring_.begin(), ring_.end());
}

RouterServer::~RouterServer()
{
    shutdown();
}

bool RouterServer::start(std::string &err)
{
    if (started_.exchange(true)) {
        err = "router already started";
        return false;
    }
    if (opts_.backends.empty()) {
        err = "router needs at least one --backend host:port";
        return false;
    }
    for (const std::string &addr : opts_.backends) {
        auto backend = std::make_unique<Backend>();
        backend->addr = addr;
        if (!parseHostPort(addr, backend->host, backend->port)) {
            err = "bad backend address '" + addr + "' (want host:port)";
            return false;
        }
        backends_.push_back(std::move(backend));
    }
    if (!listener_.listenOn(opts_.host, opts_.port, err))
        return false;
    if (!loop_.start(listener_.fd(), err))
        return false;
    const int n = opts_.workers < 1 ? 1 : opts_.workers;
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    return true;
}

std::uint16_t RouterServer::port() const
{
    return listener_.port();
}

void RouterServer::shutdown()
{
    if (!started_.load() || stopped_.exchange(true))
        return;
    // Same drain order as SimServer::shutdown(): reject new work, let
    // the workers finish every admitted forward, wait until every
    // reply has left the write buffers, then cut the sockets.
    draining_.store(true);
    loop_.stopAccepting();
    listener_.close();
    queue_.close();
    for (std::thread &w : workers_)
        if (w.joinable())
            w.join();
    loop_.waitQuiescent();
    loop_.closeAllConns();
    loop_.stop();
    for (auto &b : backends_) {
        LockGuard lock(b->mu);
        b->idle.clear();
    }
}

std::size_t RouterServer::routeOf(const SimRequest &req) const
{
    const std::vector<std::uint8_t> key = flightKeyOf(req);
    const std::uint64_t h = fnv1a(key.data(), key.size());
    auto it = std::upper_bound(
        ring_.begin(), ring_.end(),
        std::make_pair(h, std::numeric_limits<std::size_t>::max()));
    if (it == ring_.end())
        it = ring_.begin(); // wrap: first point clockwise from h
    return it->second;
}

void RouterServer::badFrameResponse(std::uint64_t, const std::string &err,
                                    SimResponse &rsp)
{
    metrics_.noteBadRequest();
    rsp.status = SimStatus::BadRequest;
    rsp.error = err;
}

EventHandler::Dispatch RouterServer::onRequest(std::uint64_t conn_id,
                                               SimRequest &&req,
                                               SimResponse &rsp)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    auto replied = [&] {
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - t0)
                            .count();
        metrics_.sampleLatencyUs(static_cast<std::uint64_t>(us));
        metrics_.noteServed();
        return Dispatch::Reply;
    };

    // Ping is answered locally (liveness of the router itself); every
    // other kind — Metrics included, it does blocking shard calls — is
    // forwarded from a worker. Semantic validation is the backend's:
    // it owns the System whose windows the request must match.
    if (req.kind == SimRequestKind::Ping) {
        rsp.text = std::string(buildInfo()) + "\n";
        return replied();
    }
    if (draining_.load()) {
        metrics_.noteRejectedShutdown();
        rsp.status = SimStatus::ShuttingDown;
        rsp.error = "router is draining";
        return replied();
    }
    Work work;
    work.conn_id = conn_id;
    work.request = std::move(req);
    work.t0 = t0;
    if (!queue_.tryPush(std::move(work))) {
        if (draining_.load()) {
            metrics_.noteRejectedShutdown();
            rsp.status = SimStatus::ShuttingDown;
            rsp.error = "router is draining";
        } else {
            metrics_.noteRejectedOverload();
            rsp.status = SimStatus::Overloaded;
            rsp.error = "router queue full (capacity " +
                        std::to_string(queue_.capacity()) + "); retry later";
        }
        return replied();
    }
    return Dispatch::Async;
}

void RouterServer::finishRequest(std::uint64_t conn_id,
                                 std::chrono::steady_clock::time_point t0,
                                 const SimResponse &rsp)
{
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    metrics_.sampleLatencyUs(static_cast<std::uint64_t>(us));
    metrics_.noteServed();
    loop_.postResponse(conn_id, rsp);
}

void RouterServer::workerLoop()
{
    Work work;
    while (queue_.pop(work)) {
        in_flight_.fetch_add(1);
        SimResponse rsp;
        if (work.request.kind == SimRequestKind::Metrics) {
            rsp.text = aggregateMetrics();
        } else {
            forward(*backends_[routeOf(work.request)], work.request, rsp);
        }
        finishRequest(work.conn_id, work.t0, rsp);
        in_flight_.fetch_sub(1);
    }
}

void RouterServer::forward(Backend &b, const SimRequest &req,
                           SimResponse &rsp)
{
    using Clock = std::chrono::steady_clock;
    std::unique_ptr<SimClient> cli;
    {
        LockGuard lock(b.mu);
        if (Clock::now() < b.down_until) {
            rsp.status = SimStatus::Unavailable;
            rsp.error = "backend " + b.addr +
                        " is down; retrying after backoff";
            return;
        }
        if (!b.idle.empty()) {
            cli = std::move(b.idle.back());
            b.idle.pop_back();
        }
    }

    std::string err;
    if (cli) {
        // A pooled connection may have idled out (the shard restarted,
        // dropped it, ...) — a transport failure here is retried once
        // on a fresh connection before the shard is declared down.
        if (!cli->call(req, rsp, err))
            cli.reset();
    }
    if (!cli) {
        cli = std::make_unique<SimClient>();
        if (!cli->connect(b.host, b.port, err) ||
            !cli->call(req, rsp, err)) {
            LockGuard lock(b.mu);
            b.backoff_ms = b.backoff_ms == 0
                               ? opts_.backoffInitialMs
                               : std::min(opts_.backoffMaxMs,
                                          b.backoff_ms * 2);
            b.down_until =
                Clock::now() + std::chrono::milliseconds(b.backoff_ms);
            b.idle.clear(); // its siblings are dead too
            rsp = SimResponse{};
            rsp.status = SimStatus::Unavailable;
            rsp.error = "backend " + b.addr + " unavailable: " + err;
            return;
        }
    }
    LockGuard lock(b.mu);
    b.backoff_ms = 0;
    b.down_until = Clock::time_point{};
    if (b.idle.size() < kMaxIdlePerBackend)
        b.idle.push_back(std::move(cli));
}

std::string RouterServer::aggregateMetrics()
{
    std::ostringstream os;
    os << metrics_.renderCounters(in_flight_.load(), queue_.size());
    os << "backends " << backends_.size() << '\n';
    SimRequest probe;
    probe.kind = SimRequestKind::Metrics;
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        SimResponse brsp;
        forward(*backends_[i], probe, brsp);
        const std::string prefix = "backend_" + std::to_string(i) + '_';
        if (brsp.status != SimStatus::Ok) {
            os << prefix << "up 0\n";
            continue;
        }
        os << prefix << "up 1\n";
        std::istringstream lines(brsp.text);
        std::string line;
        while (std::getline(lines, line))
            if (!line.empty())
                os << prefix << line << '\n';
    }
    return os.str();
}

} // namespace th
