/**
 * @file
 * Cluster front-end for th_serve: a RouterServer accepts the same TSRV
 * protocol as a SimServer but owns no System — it consistent-hashes
 * each request's flight key across a set of backend th_serve shards
 * and forwards over the same wire. Because the hash is over
 * flightKeyOf() (deadline excluded), every identical request lands on
 * the same shard, which makes the backend's single-flight dedup
 * cluster-wide. Shard outages surface as structured Unavailable
 * replies (with reconnect backoff), never hangs.
 */

#ifndef TH_NET_ROUTER_H
#define TH_NET_ROUTER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/thread_annotations.h"
#include "net/client.h"
#include "net/event_loop.h"
#include "net/metrics.h"

namespace th {

/** Construction-time knobs of a RouterServer. */
struct RouterOptions
{
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (read back via port()). */
    std::uint16_t port = 0;
    /** Forwarding worker threads (each does blocking backend I/O). */
    int workers = 4;
    /** Admission-queue capacity; a full queue rejects (Overloaded). */
    std::size_t queueCapacity = 64;
    /** Backend shards as "host:port"; at least one is required. */
    std::vector<std::string> backends;
    /** Virtual nodes per backend on the hash ring. */
    int vnodes = 64;
    /** Reconnect backoff after a shard failure (doubles to the max). */
    std::uint32_t backoffInitialMs = 100;
    std::uint32_t backoffMaxMs = 5000;
};

class RouterServer : public EventHandler
{
  public:
    explicit RouterServer(const RouterOptions &opts);
    ~RouterServer() override;

    RouterServer(const RouterServer &) = delete;
    RouterServer &operator=(const RouterServer &) = delete;

    /** Bind, listen, and launch the event loop + forwarding workers. */
    bool start(std::string &err);

    /** The bound port (after start(); resolves ephemeral requests). */
    std::uint16_t port() const;

    /**
     * Graceful drain: stop accepting, finish forwarding every admitted
     * request, flush every reply, then tear down. Idempotent.
     */
    void shutdown();

    const ServerMetrics &metrics() const { return metrics_; }
    /** Live client connection count. */
    std::uint64_t connCount() const { return loop_.connCount(); }

    /**
     * The backend index @p req routes to (pure ring lookup, no I/O).
     * Tests use it to predict placement and to target a specific shard.
     */
    std::size_t routeOf(const SimRequest &req) const;

    // EventHandler interface (event-loop thread).
    Dispatch onRequest(std::uint64_t conn_id, SimRequest &&req,
                       SimResponse &rsp) override;
    void badFrameResponse(std::uint64_t conn_id, const std::string &err,
                          SimResponse &rsp) override;

  private:
    /** One backend shard: its address, connection pool, and health. */
    struct Backend
    {
        std::string addr;
        std::string host;
        std::uint16_t port = 0;

        Mutex mu;
        /** Warm connections returned by finished forwards. */
        std::vector<std::unique_ptr<SimClient>> idle TH_GUARDED_BY(mu);
        /** Until this instant the shard is considered down. */
        std::chrono::steady_clock::time_point down_until TH_GUARDED_BY(mu);
        /** Current backoff span; 0 = healthy, doubles per failure. */
        std::uint32_t backoff_ms TH_GUARDED_BY(mu) = 0;
    };

    /** One admitted forward: the connection it answers and its request. */
    struct Work
    {
        std::uint64_t conn_id = 0;
        SimRequest request;
        std::chrono::steady_clock::time_point t0;
    };

    void workerLoop();
    /**
     * Forward @p req to @p b: reuse a pooled connection (one retry on
     * a fresh one — the pooled socket may have idled out), else
     * connect. Failure marks the shard down for the current backoff
     * span and fills a structured Unavailable reply.
     */
    void forward(Backend &b, const SimRequest &req, SimResponse &rsp);
    /** Aggregate local counters + every shard's metrics snapshot. */
    std::string aggregateMetrics();
    /** Deliver @p rsp for @p conn_id, sampling served/latency. */
    void finishRequest(std::uint64_t conn_id,
                       std::chrono::steady_clock::time_point t0,
                       const SimResponse &rsp);

    RouterOptions opts_;
    ServerMetrics metrics_;
    Listener listener_;
    EventLoop loop_;
    BoundedQueue<Work> queue_;

    std::vector<std::unique_ptr<Backend>> backends_;
    /** Consistent-hash ring: (point, backend index), sorted by point. */
    std::vector<std::pair<std::uint64_t, std::size_t>> ring_;

    std::atomic<bool> draining_{false};
    std::atomic<std::uint64_t> in_flight_{0};

    std::vector<std::thread> workers_;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopped_{false};
};

} // namespace th

#endif // TH_NET_ROUTER_H
