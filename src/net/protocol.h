/**
 * @file
 * Wire protocol for th_serve. A connection is a pair of THIO chunk
 * streams, one per direction, each beginning with the standard
 * container header (format tag "TSRV", schema kWireSchemaVersion)
 * followed by a HELO chunk carrying the sender's build string. After
 * the handshake the client sends SREQ chunks (encoded SimRequest) and
 * the server answers each with one SRSP chunk (encoded SimResponse).
 * Every frame rides the existing CRC-32 chunk machinery, so a
 * corrupted or truncated frame is detected exactly like a corrupted
 * artifact file.
 */

#ifndef TH_NET_PROTOCOL_H
#define TH_NET_PROTOCOL_H

#include <memory>
#include <string>

#include "io/chunkio.h"
#include "io/request.h"
#include "net/socket.h"

namespace th {

/** Container format tag for the serving protocol. */
inline constexpr char kServerFormatTag[] = "TSRV";

/** Chunk tags: handshake, request, response. */
inline constexpr char kHelloTag[] = "HELO";
inline constexpr char kRequestTag[] = "SREQ";
inline constexpr char kResponseTag[] = "SRSP";

/**
 * Per-chunk caps, applied by whichever side is reading. Requests are
 * tiny (a few strings and scalars), so the server caps hard; response
 * text can carry multi-benchmark sweep tables, so clients allow more.
 */
inline constexpr std::uint32_t kMaxRequestBytes = 1u << 20;
inline constexpr std::uint32_t kMaxResponseBytes = 16u << 20;

/**
 * One side of an established connection: owns the socket plus the
 * chunk writer/reader running over it. Created by helloAsClient /
 * helloAsServer, which perform the handshake. Not thread-safe; the
 * server guards each connection with its own thread, the client is
 * single-threaded by construction.
 */
class WireConn
{
  public:
    explicit WireConn(Socket sock);

    /**
     * Handshake from the client side: send header+HELO, then read and
     * validate the server's. On success @p peer_build holds the
     * server's build string.
     */
    bool helloAsClient(const std::string &build, std::string &peer_build,
                       std::string &err);
    /** Handshake from the server side (sends first, then validates). */
    bool helloAsServer(const std::string &build, std::string &peer_build,
                       std::string &err);

    bool sendRequest(const SimRequest &req);
    bool sendResponse(const SimResponse &rsp);

    /**
     * Read one SREQ chunk. Returns false on EOF/corruption; EOF with
     * no partial frame (a client hanging up between requests) sets
     * @p clean_eof so the server can drop the connection silently.
     */
    bool recvRequest(SimRequest &req, bool &clean_eof, std::string &err);
    bool recvResponse(SimResponse &rsp, std::string &err);

    /** Unblock a blocked read/write from another thread. */
    void shutdownBoth() { sock_.shutdownBoth(); }
    void close() { sock_.close(); }

  private:
    bool sendHello(const std::string &build);
    bool recvHello(std::string &peer_build, std::string &err);
    /** Read one chunk and require @p want_tag. */
    bool recvChunk(const char *want_tag, std::vector<std::uint8_t> &payload,
                   bool &clean_eof, std::string &err);

    Socket sock_;
    SocketSink sink_;
    SocketSource src_;
    ChunkWriter writer_;
    ChunkReader reader_;
};

} // namespace th

#endif // TH_NET_PROTOCOL_H
