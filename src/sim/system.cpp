#include "sim/system.h"

#include <cstdlib>

#include "common/log.h"
#include "interval/fitter.h"
#include "interval/replay.h"
#include "trace/suites.h"

namespace th {

namespace {

/** Resolve the store directory: explicit option, else TH_STORE_DIR. */
std::string
resolveStoreDir(const SimOptions &opts)
{
    if (!opts.storeDir.empty())
        return opts.storeDir;
    const char *env = std::getenv("TH_STORE_DIR");
    return env ? env : "";
}

} // namespace

System::System(const SimOptions &opts)
    : opts_(opts), lib_(), power_(lib_), hotspot_(),
      planar_fp_(FloorplanBuilder::planar()),
      stacked_fp_(FloorplanBuilder::stacked())
{
    const std::string dir = resolveStoreDir(opts_);
    if (!dir.empty()) {
        StoreOptions sopts;
        sopts.dir = dir;
        sopts.maxBytes = opts_.storeMaxBytes;
        store_ = std::make_unique<ArtifactStore>(sopts);
        if (!store_->enabled())
            store_.reset(); // Directory creation failed (warned).
    }
}

CoreResult
System::simulate(const std::string &benchmark, const CoreConfig &cfg,
                 const CancelToken *cancel) const
{
    SyntheticTrace trace(benchmarkByName(benchmark));
    Core core(cfg);
    return core.run(trace, opts_.instructions, opts_.warmupInstructions,
                    cancel);
}

CoreResult
System::runCore(const std::string &benchmark, ConfigKind kind,
                const CancelToken *cancel) const
{
    return runCore(benchmark, makeConfig(kind, lib_), cancel);
}

CoreResult
System::runCore(const std::string &benchmark, const CoreConfig &cfg,
                const CancelToken *cancel) const
{
    // Memoize on (benchmark, config hash): traces are seeded by the
    // benchmark profile and the core is deterministic, so a repeat of
    // the same pair is bit-identical to the first run.
    const std::uint64_t hash = configHash(cfg);
    const std::string key = benchmark + '\0' + std::to_string(hash);
    {
        LockGuard lock(cache_mu_);
        auto it = core_cache_.find(key);
        if (it != core_cache_.end()) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);

    // Between the in-memory cache and a fresh simulation sits the
    // persistent store: a warm process finds every (benchmark, config)
    // pair of a previous sweep on disk and skips simulation entirely.
    // A corrupt entry is quarantined inside loadCoreResult and falls
    // through to recomputation.
    CoreResult result;
    const bool from_store =
        store_ && store_->loadCoreResult(benchmark, hash, result);
    if (!from_store) {
        result = simulate(benchmark, cfg, cancel);
        if (store_)
            store_->storeCoreResult(benchmark, hash, result);
    }
    {
        LockGuard lock(cache_mu_);
        core_cache_.emplace(key, result);
    }
    return result;
}

CoreResult
System::runTrace(TraceSource &trace, const CoreConfig &cfg) const
{
    Core core(cfg);
    return core.run(trace, opts_.instructions,
                    opts_.warmupInstructions);
}

System::CacheStats
System::coreCacheStats() const
{
    CacheStats s;
    s.hits = cache_hits_.load(std::memory_order_relaxed);
    s.misses = cache_misses_.load(std::memory_order_relaxed);
    return s;
}

void
System::clearCoreCache()
{
    LockGuard lock(cache_mu_);
    core_cache_.clear();
    cache_hits_.store(0, std::memory_order_relaxed);
    cache_misses_.store(0, std::memory_order_relaxed);
}

StoreStats
System::storeStats() const
{
    return store_ ? store_->stats() : StoreStats{};
}

bool
System::storeEnabled() const
{
    return store_ != nullptr;
}

std::string
System::storeDir() const
{
    return store_ ? store_->dir() : std::string();
}

void
System::ensureCalibrated(const CancelToken *cancel) const
{
    // call_once makes the lazy calibration safe when the experiment
    // pool issues the first evaluate() calls concurrently. A Cancelled
    // throw leaves the flag unset, so the next caller recalibrates.
    std::call_once(calibrate_once_, [this, cancel] {
        const CoreConfig base_cfg = makeConfig(ConfigKind::Base, lib_);
        const CoreResult base_run =
            runCore(kPowerReferenceBenchmark, base_cfg, cancel);
        power_.calibrate(base_run, base_cfg);
    });
}

PowerModel &
System::power()
{
    ensureCalibrated();
    return power_;
}

Evaluation
System::evaluate(const std::string &benchmark, ConfigKind kind,
                 const CancelToken *cancel)
{
    ensureCalibrated(cancel);
    Evaluation ev;
    ev.benchmark = benchmark;
    ev.config = kind;
    const CoreConfig cfg = makeConfig(kind, lib_);
    ev.core = runCore(benchmark, cfg, cancel);
    ev.power = power_.compute(ev.core, cfg);
    return ev;
}

DtmReport
System::runDtm(const std::string &benchmark, ConfigKind kind,
               const DtmOptions &dtm_opts, const CancelToken *cancel)
{
    const CoreConfig cfg = makeConfig(kind, lib_);
    const std::uint64_t key_hash = dtmConfigHash(cfg, dtm_opts);
    const std::string key = benchmark + '\0' + std::to_string(key_hash);
    {
        LockGuard lock(dtm_mu_);
        auto it = dtm_cache_.find(key);
        if (it != dtm_cache_.end())
            return it->second;
    }

    // Check the persistent store before touching the power model: on a
    // warm rerun even the calibration core run is skipped, so a cached
    // DTM sweep performs zero core simulations.
    DtmReport rep;
    const bool from_store =
        store_ && store_->loadDtmReport(benchmark, key_hash, rep);
    if (!from_store) {
        ensureCalibrated(cancel);
        const DtmEngine engine(power_, hotspot_, planar_fp_,
                               stacked_fp_);
        rep = engine.run(benchmarkByName(benchmark), cfg,
                         configName(kind), dtm_opts, cancel);
        if (store_)
            store_->storeDtmReport(benchmark, key_hash, rep);
    }
    {
        LockGuard lock(dtm_mu_);
        dtm_cache_.emplace(key, rep);
    }
    return rep;
}

MulticoreReport
System::runMulticore(ConfigKind kind, const MulticoreConfig &mc,
                     const CancelToken *cancel)
{
    if (mc.numCores < 1)
        fatal("runMulticore: numCores must be >= 1 (got %d)",
              mc.numCores);
    // Resolve the per-core mix up front so the cache key, the store
    // key, and the report rows all see the same canonical list: the
    // requested mix cycled over the cores, or the power-reference
    // benchmark everywhere when no mix is given.
    MulticoreConfig resolved = mc;
    resolved.benchmarks.clear();
    resolved.benchmarks.reserve(static_cast<std::size_t>(mc.numCores));
    for (int c = 0; c < mc.numCores; ++c) {
        std::string name = kPowerReferenceBenchmark;
        if (!mc.benchmarks.empty())
            name = mc.benchmarks[static_cast<std::size_t>(c) %
                                 mc.benchmarks.size()];
        if (!hasBenchmark(name))
            fatal("runMulticore: unknown benchmark '%s'", name.c_str());
        resolved.benchmarks.push_back(std::move(name));
    }
    std::string mix;
    for (std::size_t i = 0; i < resolved.benchmarks.size(); ++i) {
        if (i != 0)
            mix += '+';
        mix += resolved.benchmarks[i];
    }

    const CoreConfig cfg = makeConfig(kind, lib_);
    const std::uint64_t key_hash = multicoreConfigHash(cfg, resolved);
    const std::string key = mix + '\0' + std::to_string(key_hash);
    {
        LockGuard lock(multicore_mu_);
        auto it = multicore_cache_.find(key);
        if (it != multicore_cache_.end())
            return it->second;
    }

    // Like runDtm: the persistent lookup precedes power calibration,
    // so a warm rerun of a many-core sweep performs zero simulations.
    MulticoreReport rep;
    const bool from_store =
        store_ && store_->loadMulticoreReport(mix, key_hash, rep);
    if (!from_store) {
        ensureCalibrated(cancel);
        std::vector<BenchmarkProfile> profiles;
        profiles.reserve(resolved.benchmarks.size());
        for (const std::string &b : resolved.benchmarks)
            profiles.push_back(benchmarkByName(b));
        const MulticoreSystem engine(power_, hotspot_);
        rep = engine.run(profiles, cfg, configName(kind), resolved,
                         cancel);
        if (store_)
            store_->storeMulticoreReport(mix, key_hash, rep);
    }
    {
        LockGuard lock(multicore_mu_);
        multicore_cache_.emplace(key, rep);
    }
    return rep;
}

IntervalModel
System::runIntervalFit(const std::string &benchmark, ConfigKind kind,
                       const IntervalOptions &iopts,
                       const CancelToken *cancel)
{
    const CoreConfig cfg = makeConfig(kind, lib_);
    const std::uint64_t key_hash = intervalModelKey(cfg, iopts);
    const std::string key = benchmark + '\0' + std::to_string(key_hash);
    {
        LockGuard lock(interval_mu_);
        auto it = interval_cache_.find(key);
        if (it != interval_cache_.end())
            return it->second;
    }

    // Fitting needs no power model, so (like runDtm) the store lookup
    // comes first: a warm fast-path run performs zero core simulations
    // for the models themselves.
    IntervalModel model;
    const bool from_store =
        store_ && store_->loadIntervalModel(benchmark, key_hash, model);
    if (!from_store) {
        model = fitIntervalModel(benchmarkByName(benchmark), cfg, iopts,
                                 intervalFamilyHash(cfg),
                                 configHash(cfg), cancel);
        if (store_)
            store_->storeIntervalModel(benchmark, key_hash, model);
    }
    {
        LockGuard lock(interval_mu_);
        interval_cache_.emplace(key, model);
    }
    return model;
}

DtmReport
System::runIntervalDtm(const std::string &benchmark, ConfigKind kind,
                       const DtmOptions &dtm_opts,
                       const IntervalOptions &iopts,
                       const CancelToken *cancel)
{
    const IntervalModel model = runIntervalFit(benchmark, kind, iopts,
                                               cancel);
    // Replay still needs the calibrated power model (the calibration
    // core run is itself store-cached, so warm runs stay sim-free).
    ensureCalibrated(cancel);
    const CoreConfig cfg = makeConfig(kind, lib_);
    ReplayIntervalSource src(model, cfg);
    const DtmEngine engine(power_, hotspot_, planar_fp_, stacked_fp_);
    // Replay pairs the table-lookup core with the vertical-implicit
    // transient scheme: with the core cost gone, the explicit
    // stepper's stability-bound microsecond steps would dominate the
    // fast path, and the implicit scheme removes them for ~100x less
    // thermal work. Exact anchors measure the combined model +
    // integrator error, so the substitution is bounded, not assumed.
    return engine.run(src, benchmark, cfg, configName(kind), dtm_opts,
                      cancel, TransientScheme::VerticalImplicit);
}

ThermalReport
System::thermal(const Evaluation &eval, double power_scale) const
{
    const CoreConfig cfg = makeConfig(eval.config, lib_);
    const Floorplan &fp = cfg.stacked ? stacked_fp_ : planar_fp_;
    return hotspot_.analyze(fp, eval.power, cfg.stacked, power_scale);
}

} // namespace th
