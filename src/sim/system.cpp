#include "sim/system.h"

#include "common/log.h"
#include "trace/suites.h"

namespace th {

System::System(const SimOptions &opts)
    : opts_(opts), lib_(), power_(lib_), hotspot_(),
      planar_fp_(FloorplanBuilder::planar()),
      stacked_fp_(FloorplanBuilder::stacked())
{
}

CoreResult
System::simulate(const std::string &benchmark,
                 const CoreConfig &cfg) const
{
    SyntheticTrace trace(benchmarkByName(benchmark));
    Core core(cfg);
    return core.run(trace, opts_.instructions, opts_.warmupInstructions);
}

CoreResult
System::runCore(const std::string &benchmark, ConfigKind kind) const
{
    return runCore(benchmark, makeConfig(kind, lib_));
}

CoreResult
System::runCore(const std::string &benchmark, const CoreConfig &cfg) const
{
    // Memoize on (benchmark, config hash): traces are seeded by the
    // benchmark profile and the core is deterministic, so a repeat of
    // the same pair is bit-identical to the first run.
    const std::string key =
        benchmark + '\0' + std::to_string(configHash(cfg));
    {
        std::lock_guard<std::mutex> lock(cache_mu_);
        auto it = core_cache_.find(key);
        if (it != core_cache_.end()) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    CoreResult result = simulate(benchmark, cfg);
    {
        std::lock_guard<std::mutex> lock(cache_mu_);
        core_cache_.emplace(key, result);
    }
    return result;
}

System::CacheStats
System::coreCacheStats() const
{
    CacheStats s;
    s.hits = cache_hits_.load(std::memory_order_relaxed);
    s.misses = cache_misses_.load(std::memory_order_relaxed);
    return s;
}

void
System::clearCoreCache()
{
    std::lock_guard<std::mutex> lock(cache_mu_);
    core_cache_.clear();
    cache_hits_.store(0, std::memory_order_relaxed);
    cache_misses_.store(0, std::memory_order_relaxed);
}

void
System::ensureCalibrated() const
{
    // call_once makes the lazy calibration safe when the experiment
    // pool issues the first evaluate() calls concurrently.
    std::call_once(calibrate_once_, [this] {
        const CoreConfig base_cfg = makeConfig(ConfigKind::Base, lib_);
        const CoreResult base_run =
            runCore(kPowerReferenceBenchmark, base_cfg);
        power_.calibrate(base_run, base_cfg);
    });
}

PowerModel &
System::power()
{
    ensureCalibrated();
    return power_;
}

Evaluation
System::evaluate(const std::string &benchmark, ConfigKind kind)
{
    ensureCalibrated();
    Evaluation ev;
    ev.benchmark = benchmark;
    ev.config = kind;
    const CoreConfig cfg = makeConfig(kind, lib_);
    ev.core = runCore(benchmark, cfg);
    ev.power = power_.compute(ev.core, cfg);
    return ev;
}

ThermalReport
System::thermal(const Evaluation &eval, double power_scale) const
{
    const CoreConfig cfg = makeConfig(eval.config, lib_);
    const Floorplan &fp = cfg.stacked ? stacked_fp_ : planar_fp_;
    return hotspot_.analyze(fp, eval.power, cfg.stacked, power_scale);
}

} // namespace th
