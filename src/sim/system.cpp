#include "sim/system.h"

#include "common/log.h"
#include "trace/suites.h"

namespace th {

System::System(const SimOptions &opts)
    : opts_(opts), lib_(), power_(lib_), hotspot_(),
      planar_fp_(FloorplanBuilder::planar()),
      stacked_fp_(FloorplanBuilder::stacked())
{
}

CoreResult
System::runCore(const std::string &benchmark, ConfigKind kind) const
{
    return runCore(benchmark, makeConfig(kind, lib_));
}

CoreResult
System::runCore(const std::string &benchmark, const CoreConfig &cfg) const
{
    SyntheticTrace trace(benchmarkByName(benchmark));
    Core core(cfg);
    return core.run(trace, opts_.instructions, opts_.warmupInstructions);
}

void
System::ensureCalibrated()
{
    if (calibrated_)
        return;
    const CoreConfig base_cfg = makeConfig(ConfigKind::Base, lib_);
    const CoreResult base_run =
        runCore(kPowerReferenceBenchmark, base_cfg);
    power_.calibrate(base_run, base_cfg);
    calibrated_ = true;
}

PowerModel &
System::power()
{
    ensureCalibrated();
    return power_;
}

Evaluation
System::evaluate(const std::string &benchmark, ConfigKind kind)
{
    ensureCalibrated();
    Evaluation ev;
    ev.benchmark = benchmark;
    ev.config = kind;
    const CoreConfig cfg = makeConfig(kind, lib_);
    ev.core = runCore(benchmark, cfg);
    ev.power = power_.compute(ev.core, cfg);
    return ev;
}

ThermalReport
System::thermal(const Evaluation &eval, double power_scale) const
{
    const CoreConfig cfg = makeConfig(eval.config, lib_);
    const Floorplan &fp = cfg.stacked ? stacked_fp_ : planar_fp_;
    return hotspot_.analyze(fp, eval.power, cfg.stacked, power_scale);
}

} // namespace th
