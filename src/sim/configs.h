/**
 * @file
 * The five processor configurations evaluated in Section 5.1.2, plus
 * the "3D without Thermal Herding" variant used by the power and
 * thermal studies (Figures 9 and 10).
 */

#ifndef TH_SIM_CONFIGS_H
#define TH_SIM_CONFIGS_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/blocks.h"
#include "core/params.h"
#include "dtm/engine.h"
#include "interval/model.h"
#include "multicore/multicore.h"

namespace th {

/** Named evaluation configurations (Figure 8). */
enum class ConfigKind {
    Base,     ///< Planar baseline at 2.66 GHz.
    TH,       ///< Thermal Herding mechanisms, baseline clock.
    Pipe,     ///< 3D pipeline optimisations, baseline clock.
    Fast,     ///< Baseline microarchitecture at the 3D clock.
    ThreeD,   ///< Full 3D: herding + pipe opts + 3D clock.
    ThreeDNoTH ///< 3D clock + pipe opts, herding disabled (Fig. 9/10).
};

/** Display name ("Base", "TH", ...). */
const char *configName(ConfigKind kind);

/** All Figure 8 configurations in presentation order. */
std::vector<ConfigKind> figure8Configs();

/**
 * Build a core configuration. Clock frequencies come from the circuit
 * library's critical-loop analysis (2.66 GHz planar; ~3.9 GHz 3D).
 */
CoreConfig makeConfig(ConfigKind kind, const BlockLibrary &lib);

/**
 * Stable hash over every behaviour-affecting CoreConfig field — the
 * key of the System-level CoreResult cache AND of the persistent
 * artifact store (store/artifact_store.h). Two configs with equal
 * hashes are treated as the same simulation input, so any new field
 * added to CoreConfig must be folded in here. Because these hashes
 * name on-disk artifacts, any intentional change to the hashed field
 * set must bump kStoreSchemaVersion (store/artifact_store.h) and
 * update the golden-hash table in tests/test_configs.cpp.
 */
std::uint64_t configHash(const CoreConfig &cfg);

/**
 * Store key of a DTM run: configHash(cfg) folded with every DtmOptions
 * knob (interval length/count, warm-up, policy, triggers, dilation,
 * grid) and the DtmReport schema version — two DTM runs share a
 * persisted artifact iff every input that shapes the report matches.
 */
std::uint64_t dtmConfigHash(const CoreConfig &cfg,
                            const DtmOptions &opts);

/**
 * Config-family identity for the interval fast path: configHash's
 * field set minus the axes replay retargets analytically — clock
 * frequency, stacking, and the fetch/decode/issue/commit widths. Two
 * configs with equal family hashes share one fitted IntervalModel;
 * everything that changes the core's cycle-level behaviour in ways
 * replay cannot correct (cache geometry, predictors, herding, queue
 * sizes, ...) keeps its own family.
 */
std::uint64_t intervalFamilyHash(const CoreConfig &cfg);

/**
 * Store key of a fitted IntervalModel: intervalFamilyHash(cfg) folded
 * with every IntervalOptions knob and the IMDL schema version — two
 * fits share a persisted model iff every input that shapes the fit
 * matches. th_lint enforces the IntervalOptions field coverage.
 */
std::uint64_t intervalModelKey(const CoreConfig &cfg,
                               const IntervalOptions &opts);

/**
 * Store key of a many-core run: configHash(cfg) folded with every
 * MulticoreConfig field (core count, bank geometry, queue model, the
 * per-core benchmark mix, and the embedded DtmOptions via
 * dtmConfigHash's knob set) and the MulticoreReport schema version —
 * two runs share a persisted artifact iff every input that shapes the
 * report matches. th_lint enforces the MulticoreConfig field coverage.
 */
std::uint64_t multicoreConfigHash(const CoreConfig &cfg,
                                  const MulticoreConfig &mc);

} // namespace th

#endif // TH_SIM_CONFIGS_H
