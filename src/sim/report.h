/**
 * @file
 * Text renderers for the experiment results — the exact report bodies
 * th_run prints locally. th_serve renders responses through the same
 * functions, which is what makes a served report byte-identical to a
 * local run of the same request (the loopback smoke test diffs them).
 */

#ifndef TH_SIM_REPORT_H
#define TH_SIM_REPORT_H

#include <string>

#include "sim/experiments.h"
#include "sim/system.h"

namespace th {

/** "=== Figure 8: performance ===" header + table + summary line. */
std::string renderFig8(const Fig8Data &data);

/** "=== Figure 9: power ===" header + table + saving range. */
std::string renderFig9(const Fig9Data &data);

/** "=== Figure 10: thermal ===" header + table + ROB delta. */
std::string renderFig10(const Fig10Data &data);

/** "=== Width prediction study ===" header + accuracy line. */
std::string renderWidth(const WidthStudyData &data);

/**
 * "=== Closed-loop DTM ... ===" header + per-config table. Fast-path
 * studies (data.fast) append the measured error-bound line; exact
 * studies render byte-identically to before the fast path existed.
 */
std::string renderDtm(const DtmStudyData &data, const DtmOptions &opts);

/**
 * "=== Family sweep ... ===" header + per-policy aggregate table. Fast
 * sweeps end with the stable error line
 * "error vs exact anchors: ipc X%, peak Y K, duty Z pp (N anchors)"
 * that CI greps its accuracy assertion from.
 */
std::string renderFamilySweep(const FamilySweepData &data,
                              const FamilySweepOptions &opts);

/**
 * "=== Many-core stack ... ===" header + per-core DTM-outcome rows, a
 * "stack" aggregate row, the per-core contention table, and the L2
 * bank table. The DTM-outcome rows come from the same core-count-aware
 * renderer renderDtm uses, so the single-core study's output stays
 * byte-identical while many-core reports scale rows with the stack.
 */
std::string renderMulticore(const MulticoreReport &rep);

/**
 * "=== Many-core neighbor coupling ===" header + one summary row per
 * (core count, config) cell, ending with the stable line
 * "neighbor coupling (no herding): hottest core ... (delta X K)"
 * that CI greps its coupling assertion from.
 */
std::string renderMulticoreStudy(const MulticoreStudyData &data);

/** One-line summary of a single (benchmark, config) core run. */
std::string renderCoreRun(const std::string &benchmark,
                          const std::string &config,
                          const CoreResult &r);

/** Cache/store counter footer ("core cache: ...\nstore ...: ..."). */
std::string renderCounters(const System &sys);

} // namespace th

#endif // TH_SIM_REPORT_H
